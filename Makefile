GO ?= go

# VERSION is stamped into every binary via the linker so -version (and
# the daemon's /healthz) report which build is running.
VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)
LDFLAGS := -ldflags "-X repro/internal/version.Version=$(VERSION)"

# ci is the tier-1 gate: build, vet, lint, tests, and a race pass over
# the packages that run simulations concurrently (the sweep engine, the
# figure drivers, and the daemon's job manager).
.PHONY: ci
ci: build vet lint test race

.PHONY: build
build:
	$(GO) build $(LDFLAGS) ./...

.PHONY: vet
vet:
	$(GO) vet ./...

# lint runs the project's own analyzer suite (cmd/ccsimlint: engine
# determinism, sweep cache-key completeness, lock discipline, zero-alloc
# hot paths) plus staticcheck. Both run here and in the CI lint job;
# neither installs anything into the module.
.PHONY: lint
lint: ccsimlint staticcheck

.PHONY: ccsimlint
ccsimlint:
	$(GO) run $(LDFLAGS) ./cmd/ccsimlint ./...

# staticcheck is pinned and fetched by the Go toolchain at run time, so
# go.mod stays dependency-free. Offline environments (no module proxy)
# skip it with a warning — the CI lint job always runs it for real.
STATICCHECK := honnef.co/go/tools/cmd/staticcheck@2025.1.1
.PHONY: staticcheck
staticcheck:
	@if $(GO) run $(STATICCHECK) -version >/dev/null 2>&1; then \
		$(GO) run $(STATICCHECK) ./...; \
	else \
		echo "staticcheck: $(STATICCHECK) not available (offline?); skipped — the CI lint job runs it"; \
	fi

# test shuffles test order so inter-test state dependencies surface
# locally instead of only under CI's shuffled runs.
.PHONY: test
test:
	$(GO) test -shuffle=on ./...

.PHONY: race
race:
	$(GO) test -race ./internal/sweep ./internal/experiments ./internal/server ./internal/client ./internal/dispatch ./internal/analysis ./internal/trace
	$(GO) test -race ./internal/sim -run 'TestDifferential'
	$(GO) test -race ./internal/memctrl ./internal/dram
	$(GO) test -race ./internal/cache ./internal/core ./internal/cpu ./internal/prof

# fuzz-smoke runs a short coverage-guided fuzz session over the trace
# reader (malformed lines, huge tokens, truncated files), pinning the
# wrapped-error line attribution the daemon relies on when a 2 GB
# trace has one bad line. Corpus finds land in internal/trace/testdata.
.PHONY: fuzz-smoke
fuzz-smoke:
	$(GO) test -fuzz=FuzzReader -fuzztime=20s -run '^$$' ./internal/trace

# gateway-e2e runs the multi-tenant fault-injection suite headlessly
# under the race detector: the 3-tenant / 3-daemon campaign with a peer
# killed mid-flight, auth/429 storms, half-written SSE streams, and
# journal corruption. On failure each test dumps its job journal and a
# metrics snapshot into CCSIMD_FAULT_ARTIFACTS for upload.
CCSIMD_FAULT_ARTIFACTS ?= $(CURDIR)/fault-artifacts
.PHONY: gateway-e2e
gateway-e2e: soak
	CCSIMD_FAULT_ARTIFACTS=$(CCSIMD_FAULT_ARTIFACTS) $(GO) test -race -count=1 \
		-run 'TestFleetFaultCampaign|TestGatewayAuthStorm|TestChaosClientStorms|TestSSETruncationHeals|TestJournalCorruptionRecovery|TestJournalProperty|TestMetricsTenantConcurrency' \
		./internal/server

# soak is the self-healing acceptance campaign under the race detector:
# a three-daemon fleet per seed where one peer crashes mid-submission
# and a restarted incarnation rejoins through the circuit breaker, a
# permanent straggler forces hedged execution, and a dead journal disk
# degrades storage to memory-only without failing a single job — with
# byte-identical results across four seeds. The deadline-propagation,
# quarantine, and degraded-storage unit campaigns ride along. Failures
# dump forensics into CCSIMD_FAULT_ARTIFACTS.
.PHONY: soak
soak:
	CCSIMD_FAULT_ARTIFACTS=$(CCSIMD_FAULT_ARTIFACTS) $(GO) test -race -count=1 \
		-run 'TestSelfHealingSoak|TestDispatchWorkerRejoinsMidCampaign|TestDispatchHedgesStragglers|TestDispatchPoisonQuarantine' \
		./internal/dispatch
	CCSIMD_FAULT_ARTIFACTS=$(CCSIMD_FAULT_ARTIFACTS) $(GO) test -race -count=1 \
		-run 'TestManagerDeadline|TestSubmitDeadlineHeaderSheds|TestManagerHedgesStragglerPeer|TestManagerPoisonQuarantine|TestManagerStorageDegradedMode' \
		./internal/server

# serve runs the simulation daemon locally with the version stamp.
# Override flags with CCSIMD_FLAGS, e.g.
#   make serve CCSIMD_FLAGS="-addr :9000 -workers 4"
CCSIMD_FLAGS ?= -addr :8344 -results ccsimd-results.json
.PHONY: serve
serve:
	$(GO) run $(LDFLAGS) ./cmd/ccsimd $(CCSIMD_FLAGS)

# serve-fleet spins up FLEET_N local daemons on consecutive ports for
# manual fleet testing (each with its own result cache), then waits;
# Ctrl+C stops them all. Point clients at the whole fleet with e.g.
#   ccsim ... -servers localhost:8344,localhost:8345,localhost:8346
# or front it with one dispatcher:
#   ccsimd -addr :9000 -workers -1 -peers localhost:8344,localhost:8345,localhost:8346
FLEET_N ?= 3
FLEET_BASE_PORT ?= 8344
.PHONY: serve-fleet
serve-fleet: build
	@trap 'kill 0' INT TERM; \
	for i in $$(seq 0 $$(( $(FLEET_N) - 1 ))); do \
		port=$$(( $(FLEET_BASE_PORT) + i )); \
		echo "serve-fleet: daemon on :$$port"; \
		$(GO) run $(LDFLAGS) ./cmd/ccsimd -addr :$$port -results ccsimd-results-$$port.json & \
	done; wait

# bench regenerates the evaluation's headline numbers and the sweep
# scaling curve. CCSIM_BENCH_SCALE=default selects the paper-sized
# Figure 7a campaign for the worker-scaling benchmark.
.PHONY: bench
bench: bench-simcore
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./internal/sweep ./internal/experiments

# bench-simcore measures the two execution engines (event-driven vs the
# reference stepper) on the Quick-scale Figure 7a campaign and records
# the numbers in BENCH_simcore.json, so engine-performance history
# accumulates across PRs. The run fails if any workload's event engine
# is slower than the reference stepper (-min-speedup 1.0, the default).
.PHONY: bench-simcore
bench-simcore:
	$(GO) run $(LDFLAGS) ./cmd/benchrecord -out BENCH_simcore.json

# bench-check reruns the campaign without touching the committed file
# and fails on a per-workload speedup below 1x or a >10% aggregate
# configs_per_sec regression against the committed BENCH_simcore.json.
# The zero-alloc gate first proves the perf-analyzer probe hooks stay
# allocation-free on the simulation hot paths, disabled and enabled.
.PHONY: bench-check
bench-check: zero-alloc-check
	$(GO) run $(LDFLAGS) ./cmd/benchrecord -out /tmp/BENCH_simcore.fresh.json -compare BENCH_simcore.json

# zero-alloc-check runs the testing.AllocsPerRun gates for the probe
# hooks at every layer: DRAM command issue, ChargeCache operations, the
# analysis collector's steady state, and the phase timer. The same
# functions carry //ccsim:zeroalloc, so `make lint` rejects allocating
# constructs in them at analysis time too.
.PHONY: zero-alloc-check
zero-alloc-check:
	$(GO) test -run 'ZeroAlloc' -count=1 ./internal/dram ./internal/core ./internal/analysis ./internal/prof

# dashboard-smoke boots a scratch daemon headlessly and checks the
# whole observability surface end to end: the embedded page (and its
# script, via node when available), a phase-profiled run through
# ccsim -server, the analysis report + SSE stream endpoints, and the
# per-worker phase breakdown on /metrics.
.PHONY: dashboard-smoke
dashboard-smoke:
	./scripts/dashboard_smoke.sh

# dashboard opens the daemon's embedded live dashboard (start one with
# `make serve` first).
DASHBOARD_URL ?= http://localhost:8344/dashboard
.PHONY: dashboard
dashboard:
	@echo "dashboard: $(DASHBOARD_URL)"
	@xdg-open $(DASHBOARD_URL) 2>/dev/null || open $(DASHBOARD_URL) 2>/dev/null || \
		echo "dashboard: open $(DASHBOARD_URL) in a browser"

# golden-update deliberately rewrites the experiment-layer regression
# snapshot after an intended change to reproduced paper numbers.
.PHONY: golden-update
golden-update:
	$(GO) test ./internal/experiments -run TestGoldenQuickFig3Fig7 -update
