GO ?= go

# ci is the tier-1 gate: build, vet, tests, and a race pass over the
# packages that run simulations concurrently (the sweep engine and the
# figure drivers submitting to it).
.PHONY: ci
ci: build vet test race

.PHONY: build
build:
	$(GO) build ./...

.PHONY: vet
vet:
	$(GO) vet ./...

.PHONY: test
test:
	$(GO) test ./...

.PHONY: race
race:
	$(GO) test -race ./internal/sweep ./internal/experiments

# bench regenerates the evaluation's headline numbers and the sweep
# scaling curve. CCSIM_BENCH_SCALE=default selects the paper-sized
# Figure 7a campaign for the worker-scaling benchmark.
.PHONY: bench
bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./internal/sweep ./internal/experiments

# golden-update deliberately rewrites the experiment-layer regression
# snapshot after an intended change to reproduced paper numbers.
.PHONY: golden-update
golden-update:
	$(GO) test ./internal/experiments -run TestGoldenQuickFig3Fig7 -update
