// Package ccsim is a from-scratch Go reproduction of ChargeCache (Hassan
// et al., HPCA 2016): a memory-controller mechanism that lowers DRAM
// activation timings (tRCD/tRAS) for rows that were precharged recently
// and are therefore still highly charged.
//
// The package bundles the full evaluation stack behind a small facade:
//
//   - a cycle-accurate DDR3-1600 device timing model,
//   - per-channel memory controllers (FR-FCFS, open/closed row policies,
//     refresh) hosting a latency Mechanism,
//   - the ChargeCache mechanism itself plus the NUAT and LL-DRAM
//     comparison points,
//   - trace-driven cores, a shared LLC, and synthetic workloads standing
//     in for the paper's SPEC/TPC/STREAM traces,
//   - a circuit-level bitline model (the SPICE substitute) and a
//     DRAMPower-style energy model.
//
// Quick start:
//
//	cfg := ccsim.DefaultConfig("lbm")
//	cfg.Mechanism = ccsim.ChargeCache
//	res, err := ccsim.Run(cfg)
//	if err != nil { ... }
//	fmt.Println(res.PerCore[0].IPC, res.HitRate())
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured comparison of every figure and table.
package ccsim

import (
	"context"

	"repro/internal/analysis"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// Core simulation types.
type (
	// Config describes one simulation (Table 1 defaults via
	// DefaultConfig).
	Config = sim.Config
	// Result is the outcome of one simulation run.
	Result = sim.Result
	// CoreResult is one core's measured performance.
	CoreResult = sim.CoreResult
	// RLTLResult summarizes the row-level temporal locality measurement.
	RLTLResult = sim.RLTLResult
	// MechanismKind selects the activation-latency mechanism under test.
	MechanismKind = sim.MechanismKind
	// RowPolicy selects the row-buffer management policy.
	RowPolicy = memctrl.RowPolicy
	// WorkloadProfile describes one synthetic workload.
	WorkloadProfile = workload.Profile
	// TimingClass is the (tRCD, tRAS) pair applied to one activation.
	TimingClass = dram.TimingClass
	// Spec bundles DRAM geometry, timing and clock.
	Spec = dram.Spec
	// BitlineModel is the circuit-level sense-amplifier model.
	BitlineModel = circuit.Model
	// DRAMEnergy is the per-run DRAM energy breakdown in picojoules.
	DRAMEnergy = power.DRAMEnergy
	// Overhead summarizes ChargeCache hardware cost (Section 6.3).
	Overhead = power.Overhead
	// MechanismStats counts mechanism lookups/hits/inserts.
	MechanismStats = core.Stats
	// Mechanism is the per-channel activation-latency decision interface;
	// implement it and set Config.Mechanism = Custom to plug in your own
	// policy (see examples/custommech).
	Mechanism = core.Mechanism
	// RowKey identifies a DRAM row within one channel.
	RowKey = core.RowKey
	// Cycle is a point in time in DRAM bus cycles.
	Cycle = dram.Cycle
	// ChargeCacheConfig parameterizes a standalone ChargeCache instance.
	ChargeCacheConfig = core.ChargeCacheConfig
	// ChargeCacheMechanism is the concrete ChargeCache implementation,
	// usable as a building block inside custom mechanisms.
	ChargeCacheMechanism = core.ChargeCache
	// AnalysisConfig switches on the opt-in perf analyzer
	// (Config.Analysis): bounded epoch-bucketed timelines of per-bank
	// DRAM commands, queue depths, row-buffer outcomes and ChargeCache
	// events, surfaced as Result.Analysis.
	AnalysisConfig = analysis.Config
	// AnalysisReport is the perf analyzer's output (Result.Analysis).
	AnalysisReport = analysis.Report
	// AnalysisPhaseReport is the sampled per-access phase attribution
	// attached to an AnalysisReport when AnalysisConfig.PhaseProfile is
	// set (AnalysisReport.Phases).
	AnalysisPhaseReport = analysis.PhaseReport
)

// Mechanisms under evaluation.
const (
	// Baseline is commodity DDR3.
	Baseline = sim.Baseline
	// ChargeCache is the paper's proposal.
	ChargeCache = sim.ChargeCache
	// NUAT is the refresh-based comparison point (HPCA 2014).
	NUAT = sim.NUAT
	// ChargeCacheNUAT combines ChargeCache and NUAT.
	ChargeCacheNUAT = sim.ChargeCacheNUAT
	// LLDRAM is the idealized 100%-hit-rate bound.
	LLDRAM = sim.LLDRAM
	// Custom delegates to Config.CustomMechanism.
	Custom = sim.Custom
)

// NewChargeCache builds a standalone ChargeCache mechanism instance, the
// building block for custom combinations (Config.Mechanism = Custom).
func NewChargeCache(cfg ChargeCacheConfig) (*core.ChargeCache, error) {
	return core.NewChargeCache(cfg)
}

// Row-buffer policies.
const (
	// OpenRow keeps rows open until a conflict (single-core default).
	OpenRow = memctrl.OpenRow
	// ClosedRow closes rows once no queued request needs them
	// (multi-core default).
	ClosedRow = memctrl.ClosedRow
)

// DefaultConfig returns the paper's Table 1 system for the given
// per-core workloads: 4 GHz 3-wide cores, 4 MB LLC, DDR3-1600 with one
// channel + open-row for a single core, two channels + closed-row
// otherwise, and a 128-entry/core, 1 ms ChargeCache.
func DefaultConfig(workloads ...string) Config {
	return sim.DefaultConfig(workloads...)
}

// Run builds the system described by cfg and simulates it (warm-up
// followed by the measured window).
func Run(cfg Config) (Result, error) {
	s, err := sim.New(cfg)
	if err != nil {
		return Result{}, err
	}
	return s.Run()
}

// Parallel sweep engine (see internal/sweep): batches of independent
// simulations fanned out across a worker pool, with results in input
// order and content identical to a serial run.
type (
	// SweepJob is one simulation of a sweep: a config plus a label.
	SweepJob = sweep.Job
	// SweepOptions sets worker count, result cache and progress sink.
	SweepOptions = sweep.Options
	// SweepEvent reports one finished sweep job.
	SweepEvent = sweep.Event
	// SweepCache is a disk-backed JSON result store keyed by config
	// hash; it lets interrupted campaigns resume.
	SweepCache = sweep.Cache
)

// RunSweep executes jobs across a worker pool and returns results in
// input order. The first failure cancels the remaining jobs.
func RunSweep(ctx context.Context, jobs []SweepJob, opts SweepOptions) ([]Result, error) {
	return sweep.Run(ctx, jobs, opts)
}

// OpenSweepCache loads (or initializes) the JSON results file backing
// sweep caching.
func OpenSweepCache(path string) (*SweepCache, error) {
	return sweep.OpenCache(path)
}

// Workloads returns the names of the 22 built-in synthetic workloads
// (the paper's SPEC CPU2006 / TPC / STREAM set).
func Workloads() []string { return workload.Names() }

// WorkloadByName returns the named workload's profile.
func WorkloadByName(name string) (WorkloadProfile, error) { return workload.ByName(name) }

// EightCoreMixes returns n multiprogrammed 8-workload mixes composed
// deterministically from seed, as in the paper's Section 5.
func EightCoreMixes(seed uint64, n int) [][]string { return workload.EightCoreMixes(seed, n) }

// DDR31600 returns the evaluated DDR3-1600 specification (Table 1).
func DDR31600(channels int) Spec { return dram.DDR31600(channels) }

// LPDDR31600 returns an LPDDR3-1600 style specification (Section 7.2:
// ChargeCache applies to DDR-derived standards unchanged; select it with
// Config.Standard = "lpddr3").
func LPDDR31600(channels int) Spec { return dram.LPDDR31600(channels) }

// DDR31600LowVoltage returns a DDR3L-1600 style specification
// (Config.Standard = "ddr3l").
func DDR31600LowVoltage(channels int) Spec { return dram.DDR31600LowVoltage(channels) }

// NewBitlineModel returns the calibrated circuit model used to derive
// Table 2 and Figure 6.
func NewBitlineModel() (*BitlineModel, error) {
	return circuit.NewModel(circuit.DefaultParams())
}

// TimingsForDuration returns the lowered (tRCD, tRAS) class that is safe
// for rows precharged at most durationMs ago, on spec (Table 2).
func TimingsForDuration(spec Spec, durationMs float64) (TimingClass, error) {
	m, err := NewBitlineModel()
	if err != nil {
		return TimingClass{}, err
	}
	row, err := m.TimingsFor(spec, durationMs)
	if err != nil {
		return TimingClass{}, err
	}
	return row.Class, nil
}

// HCRACOverhead evaluates the Section 6.3 hardware cost of a
// ChargeCache with entriesPerCore entries on a system with the given
// core count and LLC size. accessesPerSec is the expected lookup+insert
// rate (the ACT+PRE rate).
func HCRACOverhead(spec Spec, entriesPerCore, cores, llcBytes int, accessesPerSec float64) (Overhead, error) {
	return power.HCRACOverhead(spec, entriesPerCore, cores, llcBytes, accessesPerSec)
}

// WeightedSpeedup computes the multiprogrammed performance metric used
// for the 8-core results.
func WeightedSpeedup(shared, alone []float64) (float64, error) {
	return stats.WeightedSpeedup(shared, alone)
}
