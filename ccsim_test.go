package ccsim

import "testing"

func TestFacadeQuickRun(t *testing.T) {
	cfg := DefaultConfig("tpch17")
	cfg.WarmupInstructions = 20_000
	cfg.RunInstructions = 50_000
	cfg.Mechanism = ChargeCache
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerCore[0].IPC <= 0 {
		t.Errorf("IPC = %g", res.PerCore[0].IPC)
	}
	if res.Config.Mechanism != ChargeCache {
		t.Error("config not echoed in result")
	}
}

func TestFacadeRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	cfg := DefaultConfig("nonesuch")
	cfg.RunInstructions = 1000
	if _, err := Run(cfg); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestFacadeWorkloads(t *testing.T) {
	names := Workloads()
	if len(names) != 22 {
		t.Fatalf("workloads = %d, want 22", len(names))
	}
	p, err := WorkloadByName(names[0])
	if err != nil || p.Name != names[0] {
		t.Errorf("WorkloadByName(%s) = %+v, %v", names[0], p, err)
	}
	mixes := EightCoreMixes(1, 3)
	if len(mixes) != 3 || len(mixes[0]) != 8 {
		t.Errorf("mixes shape wrong: %v", mixes)
	}
}

func TestFacadeSpecAndTimings(t *testing.T) {
	spec := DDR31600(2)
	if spec.Geometry.Channels != 2 {
		t.Errorf("channels = %d", spec.Geometry.Channels)
	}
	cls, err := TimingsForDuration(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cls.RCD >= spec.Timing.RCD || cls.RAS >= spec.Timing.RAS {
		t.Errorf("1ms class %+v not lowered vs spec %d/%d", cls, spec.Timing.RCD, spec.Timing.RAS)
	}
	if _, err := TimingsForDuration(spec, -1); err == nil {
		t.Error("negative duration accepted")
	}
}

func TestFacadeOverhead(t *testing.T) {
	ov, err := HCRACOverhead(DDR31600(2), 128, 8, 4<<20, 60e6)
	if err != nil {
		t.Fatal(err)
	}
	if ov.StorageBytes != 5376 {
		t.Errorf("storage = %d", ov.StorageBytes)
	}
}

func TestFacadeWeightedSpeedup(t *testing.T) {
	ws, err := WeightedSpeedup([]float64{1, 1}, []float64{2, 2})
	if err != nil || ws != 1 {
		t.Errorf("WeightedSpeedup = %g, %v", ws, err)
	}
}

func TestFacadeCustomMechanism(t *testing.T) {
	cfg := DefaultConfig("lbm")
	cfg.WarmupInstructions = 50_000
	cfg.RunInstructions = 50_000
	cfg.Mechanism = Custom
	cfg.CustomMechanism = func(channel int, spec Spec, fast, def TimingClass) (Mechanism, error) {
		return NewChargeCache(ChargeCacheConfig{
			Entries:  64,
			Assoc:    2,
			Duration: spec.MillisecondsToCycles(1),
			Fast:     fast,
			Default:  def,
		})
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mechanism.Lookups == 0 {
		t.Error("custom mechanism saw no lookups")
	}
	// Custom without a factory must be rejected.
	bad := DefaultConfig("lbm")
	bad.Mechanism = Custom
	if _, err := Run(bad); err == nil {
		t.Error("Custom without factory accepted")
	}
}

func TestFacadeBitlineModel(t *testing.T) {
	m, err := NewBitlineModel()
	if err != nil {
		t.Fatal(err)
	}
	rcd, ras := m.ActivateLatency(1)
	if rcd <= 0 || ras <= rcd {
		t.Errorf("latencies = %g, %g", rcd, ras)
	}
}
