// Command ccsim runs one or more simulations of the evaluated system
// and prints their measurements: IPC, RMPKC, row-buffer behaviour,
// ChargeCache hit rate and DRAM energy.
//
// -analysis switches on the opt-in perf analyzer: every run then also
// prints bounded per-epoch timelines of row-buffer outcomes,
// ChargeCache hit rates, refreshes and queue pressure per channel
// (-analysis-epoch adjusts the bucket width in DRAM bus cycles).
// -phase-profile additionally attributes sampled wall-clock time to the
// phases of each access (LLC lookup, enqueue, scheduling, issue,
// completion, callback) and prints the attribution table
// (-phase-sample adjusts the sampling stride).
//
// -mechanism accepts a comma-separated list; with more than one entry
// the configs fan out across -workers goroutines through the sweep
// engine and print as a comparison table. -results names a JSON cache
// file so repeated invocations reuse finished runs.
//
// -server URL executes remotely on a ccsimd daemon instead of this
// machine: jobs are submitted to its shared queue, deduplicated
// against identical in-flight configs from other clients, and served
// from the daemon's persistent result cache (-workers and -results
// then configure the daemon, not this process, and are ignored here).
//
// -servers a,b,c shards the jobs across a whole fleet of daemons
// (internal/dispatch): endpoints are health-probed and weighted by
// capacity, identical configs simulate once fleet-wide, and a job
// whose worker dies is retried on another endpoint. -local N adds N
// in-process slots to the fleet, and -results names the local cache
// consulted first and written back, so interrupted campaigns resume.
//
// Examples:
//
//	ccsim -workloads lbm -mechanism chargecache
//	ccsim -workloads "libquantum,mcf,lbm,sjeng" -mechanism chargecache+nuat -instructions 2000000
//	ccsim -workloads tpch17 -mechanism chargecache -entries 1024 -duration 4
//	ccsim -workloads lbm -mechanism baseline,nuat,chargecache,lldram -workers 4 -results runs.json
//	ccsim -workloads lbm -mechanism baseline,chargecache -server http://localhost:8344
//	ccsim -workloads lbm -mechanism baseline,nuat,chargecache,lldram -servers host1:8344,host2:8344 -results runs.json
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"

	ccsim "repro"
	"repro/internal/client"
	"repro/internal/dispatch"
	"repro/internal/prof"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/version"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ccsim: ")

	workloads := flag.String("workloads", "lbm", "comma-separated workload names (one per core); see -list")
	mechanism := flag.String("mechanism", "chargecache", "comma-separated mechanisms to run: baseline, chargecache, nuat, chargecache+nuat, lldram")
	instructions := flag.Uint64("instructions", 1_000_000, "instructions to simulate per core")
	warmup := flag.Uint64("warmup", 1_000_000, "warm-up instructions per core")
	entries := flag.Int("entries", 128, "ChargeCache entries per core")
	duration := flag.Float64("duration", 1, "caching duration in milliseconds")
	unlimited := flag.Bool("unlimited", false, "unbounded ChargeCache")
	seed := flag.Uint64("seed", 1, "workload generator seed")
	rltl := flag.Bool("rltl", false, "track row-level temporal locality")
	analysisOn := flag.Bool("analysis", false, "enable the perf analyzer: per-epoch bank/queue/row-hit/ChargeCache timelines")
	analysisEpoch := flag.Int("analysis-epoch", 0, "analyzer epoch width in DRAM bus cycles (0 = default)")
	phaseProfile := flag.Bool("phase-profile", false, "with -analysis: sampled wall-clock attribution per access phase (llc-lookup .. callback)")
	phaseSample := flag.Int("phase-sample", 0, "phase profiler sampling stride: time 1 in N crossings (0 = default)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "parallel simulations when several mechanisms are given")
	results := flag.String("results", "", "JSON results-cache file reused across invocations")
	serverURL := flag.String("server", "", "ccsimd daemon URL: run remotely on its shared queue instead of locally")
	serversList := flag.String("servers", "", "comma-separated ccsimd URLs: shard jobs across the fleet with capacity weighting and failover")
	localSlots := flag.Int("local", 0, "in-process worker slots joining the -servers fleet (0 = none)")
	reprobe := flag.Duration("reprobe-interval", 0, "with -servers: how often an open endpoint circuit breaker grants a rejoin probe (0 = default 3s)")
	hedgeAfter := flag.Duration("hedge-after", 0, "with -servers: hedge a straggling attempt on a second endpoint after this long (0 = off unless -hedge-adaptive)")
	hedgeAdaptive := flag.Bool("hedge-adaptive", false, "with -servers: derive the hedge threshold from observed attempt latencies (3x p95) instead of a fixed -hedge-after")
	poison := flag.Int("poison-threshold", 0, "with -servers: quarantine a config after its execution kills this many workers (0 = default 3, negative = never)")
	token := flag.String("token", "", "bearer token for -server/-servers daemons with tenant auth (defaults to $CCSIM_TOKEN)")
	list := flag.Bool("list", false, "list available workloads and exit")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Printf("ccsim %s\n", version.String())
		return
	}
	if err := validateWorkers(*workers); err != nil {
		log.Fatal(err)
	}
	if err := validateAnalysisFlags(*analysisEpoch, *phaseSample); err != nil {
		log.Fatal(err)
	}
	if *list {
		for _, n := range ccsim.Workloads() {
			p, _ := ccsim.WorkloadByName(n)
			fmt.Printf("%-12s %-12v bubbles=%-4d footprint=%dMB\n", n, p.Pattern, p.Bubbles, p.FootprintMB)
		}
		return
	}

	names := strings.Split(*workloads, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	base := ccsim.DefaultConfig(names...)
	base.RunInstructions = *instructions
	base.WarmupInstructions = *warmup
	base.CCEntriesPerCore = *entries
	base.CCDurationMs = *duration
	base.CCUnlimited = *unlimited
	base.Seed = *seed
	base.TrackRLTL = *rltl
	if *analysisOn || *analysisEpoch > 0 || *phaseProfile {
		base.Analysis = &ccsim.AnalysisConfig{
			Enabled:           true,
			EpochCycles:       *analysisEpoch,
			PhaseProfile:      *phaseProfile,
			PhaseSamplePeriod: *phaseSample,
		}
	}

	var jobs []ccsim.SweepJob
	for _, m := range strings.Split(*mechanism, ",") {
		kind, err := parseMechanism(strings.TrimSpace(m))
		if err != nil {
			log.Fatal(err)
		}
		cfg := base
		cfg.Mechanism = kind
		jobs = append(jobs, ccsim.SweepJob{Label: kind.String(), Config: cfg})
	}

	if *serverURL != "" && *serversList != "" {
		log.Fatal("-server and -servers are mutually exclusive (use -servers for a fleet)")
	}

	var res []ccsim.Result
	var err error
	switch {
	case *serversList != "":
		workersSet := false
		flag.Visit(func(f *flag.Flag) { workersSet = workersSet || f.Name == "workers" })
		if workersSet {
			fmt.Fprintln(os.Stderr, "ccsim: -workers has no effect with -servers (endpoint capacity is probed); use -local N for in-process slots")
		}
		opts := dispatch.Options{
			Endpoints:       dispatch.SplitEndpoints(*serversList),
			LocalWorkers:    *localSlots,
			Token:           bearerToken(*token),
			ReprobeInterval: *reprobe,
			HedgeAfter:      *hedgeAfter,
			HedgeAdaptive:   *hedgeAdaptive,
			PoisonThreshold: *poison,
		}
		if *results != "" {
			cache, cerr := ccsim.OpenSweepCache(*results)
			if cerr != nil {
				log.Fatal(cerr)
			}
			if note := cache.RecoveryNote(); note != "" {
				fmt.Fprintf(os.Stderr, "ccsim: WARNING: %s\n", note)
			}
			opts.Cache = cache
		}
		if len(jobs) > 1 {
			opts.Progress = sweep.StderrProgress
		}
		var stats dispatch.Stats
		opts.Stats = &stats
		// A SIGINT-aware context lets Ctrl+C cancel the outstanding
		// jobs on the fleet instead of abandoning them.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		res, err = dispatch.Run(ctx, jobs, opts)
		fmt.Fprintf(os.Stderr, "ccsim: fleet: %d endpoint(s) + %d local slot(s), %d simulated, %d cached, %d deduped, %d retried, %d rejoined, %d/%d hedges won, %d quarantined, %d endpoint(s) lost\n",
			stats.Endpoints, *localSlots, stats.Simulations, stats.CacheHits, stats.Deduped, stats.Retries,
			stats.Rejoins, stats.HedgesWon, stats.HedgesLaunched, stats.Quarantined, stats.DeadEndpoints)
	case *serverURL != "":
		workersSet := false
		flag.Visit(func(f *flag.Flag) { workersSet = workersSet || f.Name == "workers" })
		if workersSet || *results != "" {
			fmt.Fprintln(os.Stderr, "ccsim: -workers and -results configure the daemon, not this process; ignoring them with -server")
		}
		var progress func(sweep.Event)
		if len(jobs) > 1 {
			progress = sweep.StderrProgress
		}
		// A SIGINT-aware context lets Ctrl+C cancel the outstanding
		// jobs on the shared daemon instead of abandoning them.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		cli := client.New(*serverURL)
		cli.Token = bearerToken(*token)
		res, err = cli.RunSweep(ctx, jobs, progress)
	default:
		opts := ccsim.SweepOptions{Workers: *workers}
		if *results != "" {
			cache, cerr := ccsim.OpenSweepCache(*results)
			if cerr != nil {
				log.Fatal(cerr)
			}
			if note := cache.RecoveryNote(); note != "" {
				fmt.Fprintf(os.Stderr, "ccsim: WARNING: %s\n", note)
			}
			opts.Cache = cache
		}
		if len(jobs) > 1 {
			opts.Progress = sweep.StderrProgress
		}
		res, err = ccsim.RunSweep(context.Background(), jobs, opts)
	}
	if err != nil {
		log.Fatal(err)
	}
	if len(res) == 1 {
		report(res[0])
		reportAnalysis(res[0])
		return
	}
	compare(res)
	for _, r := range res {
		reportAnalysis(r)
	}
}

// bearerToken resolves the daemon credential: the -token flag, falling
// back to the CCSIM_TOKEN environment variable so credentials stay out
// of shell history and process listings.
func bearerToken(flagValue string) string {
	if flagValue != "" {
		return flagValue
	}
	return os.Getenv("CCSIM_TOKEN")
}

// validateAnalysisFlags rejects explicitly-set non-positive analyzer
// knobs up front. The analysis layer would silently normalize them to
// defaults, which turns a typo like `-analysis-epoch -100000` into an
// unintended epoch width instead of an error; leaving the flags at
// their zero defaults still means "use the default".
func validateAnalysisFlags(epoch, sample int) error {
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if set["analysis-epoch"] && epoch <= 0 {
		return fmt.Errorf("-analysis-epoch must be > 0, got %d (omit the flag for the default width)", epoch)
	}
	if set["phase-sample"] && sample <= 0 {
		return fmt.Errorf("-phase-sample must be > 0, got %d (omit the flag for the default stride)", sample)
	}
	return nil
}

// validateWorkers rejects non-positive worker counts up front. The
// sweep engine would silently reinterpret them as "use GOMAXPROCS",
// which turns a typo like `-workers -4` or a misrendered shell variable
// into an unintended parallelism level instead of an error.
func validateWorkers(n int) error {
	if n < 1 {
		return fmt.Errorf("-workers must be >= 1, got %d (default: GOMAXPROCS = %d)",
			n, runtime.GOMAXPROCS(0))
	}
	return nil
}

// parseMechanism maps a CLI name to its mechanism kind.
func parseMechanism(name string) (ccsim.MechanismKind, error) {
	switch strings.ToLower(name) {
	case "baseline":
		return ccsim.Baseline, nil
	case "chargecache", "cc":
		return ccsim.ChargeCache, nil
	case "nuat":
		return ccsim.NUAT, nil
	case "chargecache+nuat", "cc+nuat":
		return ccsim.ChargeCacheNUAT, nil
	case "lldram", "ll-dram":
		return ccsim.LLDRAM, nil
	default:
		return ccsim.Baseline, fmt.Errorf("unknown mechanism %q", name)
	}
}

// compare prints one summary line per mechanism, with speedups relative
// to the first entry.
func compare(results []ccsim.Result) {
	ref := avgIPC(results[0])
	fmt.Printf("%-18s %8s %8s %7s %7s %8s %11s\n",
		"mechanism", "avg IPC", "speedup", "rmpkc", "hit", "fastACT", "energy(mJ)")
	for _, res := range results {
		c := res.Controller
		fmt.Printf("%-18v %8.3f %+7.2f%% %7.2f %7.2f %7.1f%% %11.3f%s\n",
			res.Config.Mechanism, avgIPC(res), 100*(avgIPC(res)/ref-1),
			res.RMPKC(), res.HitRate(), percent(c.FastActivations, c.Activations),
			res.Energy.TotalMJ(), saturated(res))
	}
}

func avgIPC(res ccsim.Result) float64 {
	return stats.Mean(res.IPCs())
}

func report(res ccsim.Result) {
	fmt.Printf("mechanism:    %v\n", res.Config.Mechanism)
	fmt.Printf("row policy:   %v, %d channel(s)\n", res.Config.RowPolicy, res.Config.Channels)
	for _, pc := range res.PerCore {
		fmt.Printf("core %-12s IPC %.3f  (%d instructions, %d cycles)\n",
			pc.Workload, pc.IPC, pc.Instructions, pc.Cycles)
	}
	fmt.Printf("window:       %d CPU cycles%s\n", res.CPUCycles, saturated(res))
	c := res.Controller
	fmt.Printf("memory:       %d reads, %d writes, avg read latency %.1f bus cycles\n",
		c.ReadsServed, c.WritesServed, c.AvgReadLatency())
	fmt.Printf("row buffer:   %d hits / %d misses / %d conflicts (hit rate %.1f%%)\n",
		c.RowHits, c.RowMisses, c.RowConflicts, 100*c.RowHitRate())
	fmt.Printf("activations:  %d (%d fast, %.1f%%), RMPKC %.2f\n",
		c.Activations, c.FastActivations,
		percent(c.FastActivations, c.Activations), res.RMPKC())
	m := res.Mechanism
	fmt.Printf("mechanism:    %d lookups, %d hits (%.1f%%), %d inserts, %d evictions, %d invalidations\n",
		m.Lookups, m.Hits, 100*m.HitRate(), m.Inserts, m.Evictions, m.Invalidations)
	fmt.Printf("LLC:          %d hits, %d misses, %d writebacks\n",
		res.LLC.Hits, res.LLC.Misses, res.LLC.Writebacks)
	e := res.Energy
	fmt.Printf("DRAM energy:  %.3f mJ (act/pre %.1f%%, rd %.1f%%, wr %.1f%%, ref %.1f%%, background %.1f%%)\n",
		e.TotalMJ(), 100*e.ActPre/e.Total(), 100*e.Read/e.Total(),
		100*e.Write/e.Total(), 100*e.Refresh/e.Total(), 100*e.Background/e.Total())
	if res.RLTL != nil {
		fmt.Printf("RLTL:         ")
		for i, ms := range res.RLTL.IntervalsMs {
			fmt.Printf("%gms=%.1f%% ", ms, 100*res.RLTL.Fractions[i])
		}
		fmt.Printf("| after-refresh(8ms)=%.1f%%\n", 100*res.RLTL.RefreshFraction)
	}
}

// reportAnalysis renders the perf analyzer's epoch tables: run totals,
// then a per-channel timeline with command mix, row-buffer outcomes,
// ChargeCache hit rate and queue pressure per epoch. No-op when the
// run carried no report (-analysis off).
func reportAnalysis(res ccsim.Result) {
	rep := res.Analysis
	if rep == nil {
		return
	}
	t := rep.Totals
	fmt.Printf("\nanalysis (%v):  epoch = %d bus cycles, ring = %d epochs\n",
		res.Config.Mechanism, rep.EpochCycles, rep.MaxEpochs)
	fmt.Printf("  totals:     %d ACT (%d fast), %d PRE, %d RD, %d WR, %d REF, %d tFAW stall cycles\n",
		t.ACT, t.FastACT, t.PRE, t.RD, t.WR, t.REF, t.FAWStallCycles)
	fmt.Printf("  row buffer: %d hits / %d misses / %d conflicts (hit rate %.1f%%)\n",
		t.RowHits, t.RowMisses, t.RowConflicts, 100*t.RowHitRate())
	if t.CCLookups > 0 {
		fmt.Printf("  chargecache: %d lookups, %d hits (%.1f%%), %d inserts, %d evictions, %d expiries\n",
			t.CCLookups, t.CCHits, 100*t.CCHitRate(), t.CCInserts, t.CCEvictions, t.CCExpiries)
	}
	if t.QueueSamples > 0 {
		fmt.Printf("  queue:      %.2f avg depth, %d peak (%d samples)\n",
			float64(t.QueueDepthSum)/float64(t.QueueSamples), t.QueueDepthPeak, t.QueueSamples)
	}
	for _, ch := range rep.Channels {
		fmt.Printf("  channel %d (%d bank timeline(s)", ch.Channel, len(ch.Banks))
		if ch.DroppedEpochs > 0 {
			fmt.Printf(", %d epochs evicted from the ring", ch.DroppedEpochs)
		}
		fmt.Printf("):\n")
		fmt.Printf("    %8s %8s %8s %8s %8s %7s %7s %8s\n",
			"epoch", "rowhit", "rowmiss", "rowconf", "hit%", "cc-hit%", "ref", "avg-q")
		for _, e := range ch.Epochs {
			ccHit := "-"
			if e.CCLookups > 0 {
				ccHit = fmt.Sprintf("%.1f", 100*float64(e.CCHits)/float64(e.CCLookups))
			}
			avgQ := "-"
			if e.QueueSamples > 0 {
				avgQ = fmt.Sprintf("%.2f", float64(e.ReadDepthSum+e.WriteDepthSum)/float64(e.QueueSamples))
			}
			fmt.Printf("    %8d %8d %8d %8d %7.1f%% %7s %7d %8s\n",
				e.Epoch, e.RowHits, e.RowMisses, e.RowConflicts,
				100*e.RowHitRate(), ccHit, e.REF, avgQ)
		}
	}
	reportPhases(rep.Phases)
}

// reportPhases renders the per-access phase-attribution table: every
// phase's crossing count, how many the sampler timed, the mean sampled
// wall-clock cost and its extrapolation over all crossings. No-op when
// the run carried no profile (-phase-profile off).
func reportPhases(ph *ccsim.AnalysisPhaseReport) {
	if ph == nil {
		return
	}
	fmt.Printf("  phases (1 in %d crossings timed):\n", ph.SamplePeriod)
	fmt.Printf("    %-12s %12s %10s %10s %10s\n",
		"phase", "calls", "samples", "avg-ns", "est-ms")
	for p := prof.Phase(0); p < prof.NumPhases; p++ {
		if ph.Calls[p] == 0 && ph.Totals[p].Samples == 0 {
			continue
		}
		fmt.Printf("    %-12s %12d %10d %10.1f %10.3f\n",
			p, ph.Calls[p], ph.Totals[p].Samples, ph.AvgNs(p), ph.EstimatedNs(p)/1e6)
	}
}

func percent(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}

func saturated(res ccsim.Result) string {
	if res.Saturated {
		return " (SATURATED: hit cycle cap)"
	}
	return ""
}
