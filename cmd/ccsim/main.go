// Command ccsim runs one simulation of the evaluated system and prints
// its measurements: IPC, RMPKC, row-buffer behaviour, ChargeCache hit
// rate and DRAM energy.
//
// Examples:
//
//	ccsim -workloads lbm -mechanism chargecache
//	ccsim -workloads "libquantum,mcf,lbm,sjeng" -mechanism chargecache+nuat -instructions 2000000
//	ccsim -workloads tpch17 -mechanism chargecache -entries 1024 -duration 4
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	ccsim "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ccsim: ")

	workloads := flag.String("workloads", "lbm", "comma-separated workload names (one per core); see -list")
	mechanism := flag.String("mechanism", "chargecache", "baseline, chargecache, nuat, chargecache+nuat or lldram")
	instructions := flag.Uint64("instructions", 1_000_000, "instructions to simulate per core")
	warmup := flag.Uint64("warmup", 1_000_000, "warm-up instructions per core")
	entries := flag.Int("entries", 128, "ChargeCache entries per core")
	duration := flag.Float64("duration", 1, "caching duration in milliseconds")
	unlimited := flag.Bool("unlimited", false, "unbounded ChargeCache")
	seed := flag.Uint64("seed", 1, "workload generator seed")
	rltl := flag.Bool("rltl", false, "track row-level temporal locality")
	list := flag.Bool("list", false, "list available workloads and exit")
	flag.Parse()

	if *list {
		for _, n := range ccsim.Workloads() {
			p, _ := ccsim.WorkloadByName(n)
			fmt.Printf("%-12s %-12v bubbles=%-4d footprint=%dMB\n", n, p.Pattern, p.Bubbles, p.FootprintMB)
		}
		return
	}

	names := strings.Split(*workloads, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	cfg := ccsim.DefaultConfig(names...)
	cfg.RunInstructions = *instructions
	cfg.WarmupInstructions = *warmup
	cfg.CCEntriesPerCore = *entries
	cfg.CCDurationMs = *duration
	cfg.CCUnlimited = *unlimited
	cfg.Seed = *seed
	cfg.TrackRLTL = *rltl

	switch strings.ToLower(*mechanism) {
	case "baseline":
		cfg.Mechanism = ccsim.Baseline
	case "chargecache", "cc":
		cfg.Mechanism = ccsim.ChargeCache
	case "nuat":
		cfg.Mechanism = ccsim.NUAT
	case "chargecache+nuat", "cc+nuat":
		cfg.Mechanism = ccsim.ChargeCacheNUAT
	case "lldram", "ll-dram":
		cfg.Mechanism = ccsim.LLDRAM
	default:
		log.Fatalf("unknown mechanism %q", *mechanism)
	}

	res, err := ccsim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	report(res)
}

func report(res ccsim.Result) {
	fmt.Printf("mechanism:    %v\n", res.Config.Mechanism)
	fmt.Printf("row policy:   %v, %d channel(s)\n", res.Config.RowPolicy, res.Config.Channels)
	for _, pc := range res.PerCore {
		fmt.Printf("core %-12s IPC %.3f  (%d instructions, %d cycles)\n",
			pc.Workload, pc.IPC, pc.Instructions, pc.Cycles)
	}
	fmt.Printf("window:       %d CPU cycles%s\n", res.CPUCycles, saturated(res))
	c := res.Controller
	fmt.Printf("memory:       %d reads, %d writes, avg read latency %.1f bus cycles\n",
		c.ReadsServed, c.WritesServed, c.AvgReadLatency())
	fmt.Printf("row buffer:   %d hits / %d misses / %d conflicts (hit rate %.1f%%)\n",
		c.RowHits, c.RowMisses, c.RowConflicts, 100*c.RowHitRate())
	fmt.Printf("activations:  %d (%d fast, %.1f%%), RMPKC %.2f\n",
		c.Activations, c.FastActivations,
		percent(c.FastActivations, c.Activations), res.RMPKC())
	m := res.Mechanism
	fmt.Printf("mechanism:    %d lookups, %d hits (%.1f%%), %d inserts, %d evictions, %d invalidations\n",
		m.Lookups, m.Hits, 100*m.HitRate(), m.Inserts, m.Evictions, m.Invalidations)
	fmt.Printf("LLC:          %d hits, %d misses, %d writebacks\n",
		res.LLC.Hits, res.LLC.Misses, res.LLC.Writebacks)
	e := res.Energy
	fmt.Printf("DRAM energy:  %.3f mJ (act/pre %.1f%%, rd %.1f%%, wr %.1f%%, ref %.1f%%, background %.1f%%)\n",
		e.TotalMJ(), 100*e.ActPre/e.Total(), 100*e.Read/e.Total(),
		100*e.Write/e.Total(), 100*e.Refresh/e.Total(), 100*e.Background/e.Total())
	if res.RLTL != nil {
		fmt.Printf("RLTL:         ")
		for i, ms := range res.RLTL.IntervalsMs {
			fmt.Printf("%gms=%.1f%% ", ms, 100*res.RLTL.Fractions[i])
		}
		fmt.Printf("| after-refresh(8ms)=%.1f%%\n", 100*res.RLTL.RefreshFraction)
	}
}

func percent(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}

func saturated(res ccsim.Result) string {
	if res.Saturated {
		return " (SATURATED: hit cycle cap)"
	}
	return ""
}
