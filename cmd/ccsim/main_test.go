package main

import (
	"testing"

	ccsim "repro"
)

func TestParseMechanism(t *testing.T) {
	cases := map[string]ccsim.MechanismKind{
		"baseline":         ccsim.Baseline,
		"chargecache":      ccsim.ChargeCache,
		"CC":               ccsim.ChargeCache,
		"nuat":             ccsim.NUAT,
		"ChargeCache+NUAT": ccsim.ChargeCacheNUAT,
		"cc+nuat":          ccsim.ChargeCacheNUAT,
		"lldram":           ccsim.LLDRAM,
		"ll-dram":          ccsim.LLDRAM,
	}
	for name, want := range cases {
		got, err := parseMechanism(name)
		if err != nil {
			t.Errorf("parseMechanism(%q): %v", name, err)
			continue
		}
		if got != want {
			t.Errorf("parseMechanism(%q) = %v, want %v", name, got, want)
		}
	}
	if _, err := parseMechanism("warp-drive"); err == nil {
		t.Error("unknown mechanism accepted")
	}
}
