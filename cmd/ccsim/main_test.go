package main

import (
	"strings"
	"testing"

	ccsim "repro"
)

func TestParseMechanism(t *testing.T) {
	cases := map[string]ccsim.MechanismKind{
		"baseline":         ccsim.Baseline,
		"chargecache":      ccsim.ChargeCache,
		"CC":               ccsim.ChargeCache,
		"nuat":             ccsim.NUAT,
		"ChargeCache+NUAT": ccsim.ChargeCacheNUAT,
		"cc+nuat":          ccsim.ChargeCacheNUAT,
		"lldram":           ccsim.LLDRAM,
		"ll-dram":          ccsim.LLDRAM,
	}
	for name, want := range cases {
		got, err := parseMechanism(name)
		if err != nil {
			t.Errorf("parseMechanism(%q): %v", name, err)
			continue
		}
		if got != want {
			t.Errorf("parseMechanism(%q) = %v, want %v", name, got, want)
		}
	}
	if _, err := parseMechanism("warp-drive"); err == nil {
		t.Error("unknown mechanism accepted")
	}
}

// TestValidateWorkers pins the -workers contract: any count below 1 is
// rejected with a clear error (the sweep engine would otherwise
// silently reinterpret it as GOMAXPROCS), and sane counts pass.
func TestValidateWorkers(t *testing.T) {
	for _, n := range []int{1, 2, 64} {
		if err := validateWorkers(n); err != nil {
			t.Errorf("validateWorkers(%d): unexpected error %v", n, err)
		}
	}
	for _, n := range []int{0, -1, -100} {
		err := validateWorkers(n)
		if err == nil {
			t.Errorf("validateWorkers(%d): want error", n)
			continue
		}
		if got := err.Error(); !strings.Contains(got, "-workers") || !strings.Contains(got, ">= 1") {
			t.Errorf("validateWorkers(%d) error %q lacks guidance", n, got)
		}
	}
}
