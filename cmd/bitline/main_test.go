package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// TestTable2AndPlot smoke-tests the full default output: the Table 2
// rows for the requested durations plus the baseline, and the Figure 6
// ASCII plot with both voltage curves.
func TestTable2AndPlot(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-durations", "1,4"}, &out, &errOut); code != 0 {
		t.Fatalf("bitline exited %d; stderr:\n%s", code, errOut.String())
	}
	s := out.String()
	for _, want := range []string{"Table 2", "baseline", "1 ms", "4 ms", "tRCD(ns)", "Figure 6", "ready-to-access", "tRCD reduction"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if !strings.Contains(s, "#") || !strings.Contains(s, "o") {
		t.Error("plot lacks the fresh-cell/worst-case curves")
	}
}

// TestNoPlot renders the table only.
func TestNoPlot(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-plot=false"}, &out, io.Discard); code != 0 {
		t.Fatalf("bitline exited %d", code)
	}
	if strings.Contains(out.String(), "Figure 6") {
		t.Error("-plot=false still rendered the plot")
	}
	if !strings.Contains(out.String(), "Table 2") {
		t.Error("table missing")
	}
}

// TestBadDuration rejects unparsable durations with a usage exit code.
func TestBadDuration(t *testing.T) {
	var errOut bytes.Buffer
	if code := run([]string{"-durations", "1,forever"}, io.Discard, &errOut); code != 2 {
		t.Fatalf("bad duration exited %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "forever") {
		t.Errorf("error %q does not name the bad token", errOut.String())
	}
}
