// Command bitline runs the circuit-level sense-amplifier model (the
// paper's SPICE substitute): it prints the Figure 6 bitline-voltage
// series as an ASCII plot and the Table 2 caching-duration timings.
//
// Usage:
//
//	bitline [-table2] [-durations 1,4,16] [-plot]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	ccsim "repro"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without the process-global bits, so tests can exercise
// the table and plot rendering.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bitline", flag.ContinueOnError)
	fs.SetOutput(stderr)
	durations := fs.String("durations", "1,4,16", "caching durations (ms) for the Table 2 view")
	plot := fs.Bool("plot", true, "render the Figure 6 ASCII plot")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	model, err := ccsim.NewBitlineModel()
	if err != nil {
		fmt.Fprintf(stderr, "bitline: %v\n", err)
		return 1
	}
	spec := ccsim.DDR31600(1)

	var durs []float64
	for _, tok := range strings.Split(*durations, ",") {
		d, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			fmt.Fprintf(stderr, "bitline: bad duration %q: %v\n", tok, err)
			return 2
		}
		durs = append(durs, d)
	}

	rows, err := model.Table2(spec, durs)
	if err != nil {
		fmt.Fprintf(stderr, "bitline: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, "Table 2: activation timings by caching duration")
	fmt.Fprintf(stdout, "%-10s %10s %10s %10s %10s\n", "duration", "tRCD(ns)", "tRAS(ns)", "tRCD(cyc)", "tRAS(cyc)")
	for _, r := range rows {
		name := fmt.Sprintf("%g ms", r.DurationMs)
		if r.DurationMs == 0 {
			name = "baseline"
		}
		fmt.Fprintf(stdout, "%-10s %10.2f %10.2f %10d %10d\n", name, r.TRCDNs, r.TRASNs, r.Class.RCD, r.Class.RAS)
	}

	if !*plot {
		return 0
	}
	fmt.Fprintln(stdout, "\nFigure 6: bitline voltage during activation ('#' fresh cell, 'o' worst-case cell, '-' ready level)")
	const (
		width  = 61 // samples across 30 ns
		height = 20 // voltage rows
		maxNs  = 30.0
	)
	fresh := model.BitlineSeries(0.001, maxNs/(width-1), maxNs)
	worst := model.BitlineSeries(64, maxNs/(width-1), maxNs)
	vdd := model.Params().Vdd
	ready := 0.75 * vdd
	grid := make([][]byte, height)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(" ", width))
	}
	yOf := func(v float64) int {
		frac := (v - vdd/2) / (vdd / 2)
		y := height - 1 - int(frac*float64(height-1)+0.5)
		if y < 0 {
			y = 0
		}
		if y >= height {
			y = height - 1
		}
		return y
	}
	for x := 0; x < width; x++ {
		grid[yOf(ready)][x] = '-'
	}
	for x := 0; x < width && x < len(fresh); x++ {
		grid[yOf(worst[x].Volts)][x] = 'o'
		grid[yOf(fresh[x].Volts)][x] = '#'
	}
	for y, row := range grid {
		label := "        "
		switch y {
		case 0:
			label = fmt.Sprintf("%5.2fV  ", vdd)
		case yOf(ready):
			label = fmt.Sprintf("%5.2fV  ", ready)
		case height - 1:
			label = fmt.Sprintf("%5.2fV  ", vdd/2)
		}
		fmt.Fprintf(stdout, "%s%s\n", label, row)
	}
	fmt.Fprintf(stdout, "        0ns%sns\n", strings.Repeat(" ", width-6)+fmt.Sprintf("%.0f", maxNs))

	rcdF, rasF := model.ActivateLatency(0.001)
	rcdW, rasW := model.ActivateLatency(64)
	fmt.Fprintf(stdout, "\nready-to-access: fresh %.1f ns, worst-case %.1f ns (tRCD reduction %.1f ns)\n", rcdF, rcdW, rcdW-rcdF)
	fmt.Fprintf(stdout, "fully restored:  fresh %.1f ns, worst-case %.1f ns (tRAS reduction %.1f ns)\n", rasF, rasW, rasW-rasF)
	return 0
}
