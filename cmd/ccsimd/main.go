// Command ccsimd is the simulation daemon: it serves the ChargeCache
// simulator as a JSON HTTP API so many clients share one worker pool,
// one dedup index, and one persistent result cache.
//
//	ccsimd -addr :8344 -workers 8 -results ccsimd-results.json
//
// Endpoints (see the README for the full reference and curl examples):
// POST /v1/jobs, GET /v1/jobs[/{id}], GET /v1/jobs/{id}/events (SSE),
// DELETE /v1/jobs/{id}, GET /v1/results/{key}, GET /v1/analysis/{id}
// (perf-analyzer report of a done job, resolvable after restarts and
// retention eviction through the durable job journal next to -results),
// GET /v1/analysis/{id}/stream (live SSE per-epoch feed with
// Last-Event-ID resume), GET /healthz, GET /metrics (including fleet
// perf-analyzer aggregates and per-worker phase attribution), and
// GET /dashboard — an embedded live HTML dashboard with campaign
// progress, throughput and live row-hit-rate sparklines.
//
// -peers b:8344,c:8344 makes this daemon front a fleet: each reachable
// peer contributes its advertised worker capacity to this daemon's
// pool, so clients keep talking to one address while jobs execute
// across every machine. A peer that dies mid-job hands the job back to
// the queue; a crashed-then-restarted peer rejoins through its circuit
// breaker, -hedge-after races a local backup against straggling peer
// flights, -poison-threshold quarantines jobs that keep killing
// workers, and result-cache/journal write failures degrade to
// memory-only storage (see README "Resilience") instead of failing
// jobs. -workers -1 turns the front into a pure dispatcher that
// runs nothing locally. -trace-root DIR advertises a directory shared
// with clients (and peers), enabling trace-file configs whose absolute
// paths live under it.
//
// SIGINT/SIGTERM trigger a graceful shutdown: intake stops, queued
// jobs are canceled, running simulations drain within -grace.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/client"
	"repro/internal/dispatch"
	"repro/internal/server"
	"repro/internal/sweep"
	"repro/internal/version"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without the process-global bits, so tests can boot the
// daemon on a scratch port and stop it through ctx.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ccsimd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8344", "HTTP listen address")
	workers := fs.Int("workers", 0, "concurrent local simulations (0 = GOMAXPROCS, -1 = none: pure dispatch front, needs -peers)")
	queue := fs.Int("queue", 64, "max queued simulations before submissions get HTTP 429")
	retain := fs.Int("retain", 1024, "finished jobs kept queryable; older ones are evicted (results stay in the cache)")
	results := fs.String("results", "ccsimd-results.json", "persistent JSON result cache; empty disables persistence")
	peers := fs.String("peers", "", "comma-separated peer ccsimd URLs: this daemon fronts them, dispatching queued jobs to their worker pools")
	peerToken := fs.String("peer-token", "", "bearer token sent to -peers daemons (defaults to $CCSIMD_PEER_TOKEN)")
	tenants := fs.String("tenants", "", "tenant registry JSON file ({\"tenants\":[{\"name\":...,\"token\":...,\"weight\":...,...}]}); enables bearer-token auth, per-tenant quotas and fair-share scheduling")
	hotResults := fs.Int("hot-results", 0, "hot in-memory LRU entries fronting the result cache (0 = 256)")
	traceRoot := fs.String("trace-root", "", "advertise DIR as a trace directory shared with clients: trace-file configs under it are accepted")
	hedgeAfter := fs.Duration("hedge-after", 0, "hedge a straggling peer flight with a local backup after this long (0 = off; needs local workers)")
	poison := fs.Int("poison-threshold", 0, "quarantine a job after its execution kills this many workers (0 = default 3, negative = never)")
	storageProbe := fs.Duration("storage-probe-interval", 0, "how often degraded (memory-only) storage re-probes the disk for automatic restore (0 = default 1s)")
	grace := fs.Duration("grace", time.Minute, "graceful-shutdown budget for draining running jobs")
	showVersion := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVersion {
		fmt.Fprintf(stdout, "ccsimd %s\n", version.String())
		return 0
	}
	if *workers < 0 && *workers != server.NoLocalWorkers {
		fmt.Fprintf(stderr, "ccsimd: -workers must be >= 0, or -1 for a pure dispatch front\n")
		return 2
	}
	if *workers == server.NoLocalWorkers && *peers == "" {
		fmt.Fprintf(stderr, "ccsimd: -workers -1 (no local execution) needs -peers to have any capacity\n")
		return 2
	}

	// Tenant registry: -tenants file plus CCSIMD_TENANT_TOKENS
	// ("name=token,name=token") overrides/additions, so quotas can live
	// in a checked-in file and credentials in the environment. Both
	// empty: open mode, the pre-gateway behavior.
	registry, err := server.LoadRegistry(*tenants, os.Getenv("CCSIMD_TENANT_TOKENS"))
	if err != nil {
		fmt.Fprintf(stderr, "ccsimd: %v\n", err)
		return 1
	}
	if registry != nil {
		fmt.Fprintf(stderr, "ccsimd: tenant registry: %d tenant(s), bearer auth required on /v1\n", len(registry.TenantNames()))
	}

	if *peerToken == "" {
		*peerToken = os.Getenv("CCSIMD_PEER_TOKEN")
	}
	var remotes []server.Remote
	for _, p := range dispatch.SplitEndpoints(*peers) {
		peer := client.New(p)
		peer.Token = *peerToken
		pctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		h, err := peer.Health(pctx)
		cancel()
		if err != nil {
			fmt.Fprintf(stderr, "ccsimd: WARNING: peer %s failed its health probe, skipping: %v\n", p, err)
			continue
		}
		slots := h.Workers
		if slots < 1 {
			slots = 1
		}
		pr := client.NewPeer(p, slots)
		pr.Token = *peerToken
		remotes = append(remotes, pr)
		fmt.Fprintf(stderr, "ccsimd: peer %s: %d slot(s), version %s\n", peer.Base(), slots, h.Version)
	}
	if *workers == server.NoLocalWorkers && len(remotes) == 0 {
		fmt.Fprintf(stderr, "ccsimd: no local workers and no reachable peers; refusing to accept jobs that would never run\n")
		return 1
	}

	root := *traceRoot
	if root != "" {
		abs, err := filepath.Abs(root)
		if err != nil {
			fmt.Fprintf(stderr, "ccsimd: -trace-root: %v\n", err)
			return 1
		}
		root = abs
	}

	var cache *sweep.Cache
	if *results != "" {
		var err error
		cache, err = sweep.OpenCache(*results)
		if err != nil {
			fmt.Fprintf(stderr, "ccsimd: %v\n", err)
			return 1
		}
		if note := cache.RecoveryNote(); note != "" {
			fmt.Fprintf(stderr, "ccsimd: WARNING: %s\n", note)
		}
		fmt.Fprintf(stderr, "ccsimd: result cache %s: %d finished configs\n", *results, cache.Len())
	}

	manager := server.NewManager(server.ManagerConfig{
		Workers:              *workers,
		QueueDepth:           *queue,
		Cache:                cache,
		Retention:            *retain,
		Remotes:              remotes,
		Tenants:              registry,
		HotResults:           *hotResults,
		TraceRoot:            root,
		HedgeAfter:           *hedgeAfter,
		PoisonThreshold:      *poison,
		StorageProbeInterval: *storageProbe,
	})
	httpSrv := &http.Server{Handler: server.New(manager)}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "ccsimd: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "ccsimd %s listening on http://%s\n", version.String(), ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintf(stderr, "ccsimd: %v\n", err)
		return 1
	case <-ctx.Done():
	}

	fmt.Fprintf(stderr, "ccsimd: shutting down, draining running jobs (budget %v)\n", *grace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	code := 0
	// Drain first: it rejects new submissions, cancels queued jobs and
	// waits for running simulations, which also ends their SSE streams —
	// so the HTTP shutdown afterwards finds only idle connections.
	if err := manager.Drain(shutdownCtx); err != nil {
		fmt.Fprintf(stderr, "ccsimd: %v\n", err)
		code = 1
	}
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(stderr, "ccsimd: http shutdown: %v\n", err)
		code = 1
	}
	fmt.Fprintln(stderr, "ccsimd: bye")
	return code
}
