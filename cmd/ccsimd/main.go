// Command ccsimd is the simulation daemon: it serves the ChargeCache
// simulator as a JSON HTTP API so many clients share one worker pool,
// one dedup index, and one persistent result cache.
//
//	ccsimd -addr :8344 -workers 8 -results ccsimd-results.json
//
// Endpoints (see the README for the full reference and curl examples):
// POST /v1/jobs, GET /v1/jobs[/{id}], GET /v1/jobs/{id}/events (SSE),
// DELETE /v1/jobs/{id}, GET /v1/results/{key}, GET /healthz,
// GET /metrics.
//
// SIGINT/SIGTERM trigger a graceful shutdown: intake stops, queued
// jobs are canceled, running simulations drain within -grace.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/internal/sweep"
	"repro/internal/version"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without the process-global bits, so tests can boot the
// daemon on a scratch port and stop it through ctx.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ccsimd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8344", "HTTP listen address")
	workers := fs.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 64, "max queued simulations before submissions get HTTP 429")
	retain := fs.Int("retain", 1024, "finished jobs kept queryable; older ones are evicted (results stay in the cache)")
	results := fs.String("results", "ccsimd-results.json", "persistent JSON result cache; empty disables persistence")
	grace := fs.Duration("grace", time.Minute, "graceful-shutdown budget for draining running jobs")
	showVersion := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVersion {
		fmt.Fprintf(stdout, "ccsimd %s\n", version.String())
		return 0
	}

	var cache *sweep.Cache
	if *results != "" {
		var err error
		cache, err = sweep.OpenCache(*results)
		if err != nil {
			fmt.Fprintf(stderr, "ccsimd: %v\n", err)
			return 1
		}
		if note := cache.RecoveryNote(); note != "" {
			fmt.Fprintf(stderr, "ccsimd: WARNING: %s\n", note)
		}
		fmt.Fprintf(stderr, "ccsimd: result cache %s: %d finished configs\n", *results, cache.Len())
	}

	manager := server.NewManager(server.ManagerConfig{
		Workers:    *workers,
		QueueDepth: *queue,
		Cache:      cache,
		Retention:  *retain,
	})
	httpSrv := &http.Server{Handler: server.New(manager)}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "ccsimd: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "ccsimd %s listening on http://%s\n", version.String(), ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintf(stderr, "ccsimd: %v\n", err)
		return 1
	case <-ctx.Done():
	}

	fmt.Fprintf(stderr, "ccsimd: shutting down, draining running jobs (budget %v)\n", *grace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	code := 0
	// Drain first: it rejects new submissions, cancels queued jobs and
	// waits for running simulations, which also ends their SSE streams —
	// so the HTTP shutdown afterwards finds only idle connections.
	if err := manager.Drain(shutdownCtx); err != nil {
		fmt.Fprintf(stderr, "ccsimd: %v\n", err)
		code = 1
	}
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(stderr, "ccsimd: http shutdown: %v\n", err)
		code = 1
	}
	fmt.Fprintln(stderr, "ccsimd: bye")
	return code
}
