package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a bytes.Buffer safe for the writer (the daemon
// goroutine) and reader (the test) to share.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestVersionFlag(t *testing.T) {
	var out bytes.Buffer
	if code := run(context.Background(), []string{"-version"}, &out, io.Discard); code != 0 {
		t.Fatalf("-version exited %d", code)
	}
	if !strings.HasPrefix(out.String(), "ccsimd ") {
		t.Errorf("version output %q", out.String())
	}
}

func TestBadFlag(t *testing.T) {
	if code := run(context.Background(), []string{"-no-such-flag"}, io.Discard, io.Discard); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
}

// TestServeAndShutdown boots the daemon on a scratch port, hits
// /healthz, and checks a context cancellation (the SIGINT path) shuts
// it down cleanly.
func TestServeAndShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stderr syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-results", filepath.Join(t.TempDir(), "results.json"),
			"-grace", "60s",
		}, io.Discard, &stderr)
	}()

	re := regexp.MustCompile(`listening on (http://[^\s]+)`)
	var base string
	deadline := time.Now().Add(30 * time.Second)
	for base == "" {
		if m := re.FindStringSubmatch(stderr.String()); m != nil {
			base = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never reported its address; stderr:\n%s", stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || health.Status != "ok" {
		t.Fatalf("healthz: HTTP %d, %+v", resp.StatusCode, health)
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("daemon exited %d; stderr:\n%s", code, stderr.String())
		}
	case <-time.After(90 * time.Second):
		t.Fatalf("daemon never shut down; stderr:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "draining") {
		t.Errorf("shutdown log missing drain message:\n%s", stderr.String())
	}
}
