package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/sim"
)

// syncBuffer is a bytes.Buffer safe for the writer (the daemon
// goroutine) and reader (the test) to share.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestVersionFlag(t *testing.T) {
	var out bytes.Buffer
	if code := run(context.Background(), []string{"-version"}, &out, io.Discard); code != 0 {
		t.Fatalf("-version exited %d", code)
	}
	if !strings.HasPrefix(out.String(), "ccsimd ") {
		t.Errorf("version output %q", out.String())
	}
}

func TestBadFlag(t *testing.T) {
	if code := run(context.Background(), []string{"-no-such-flag"}, io.Discard, io.Discard); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
}

// startDaemon boots the daemon via run() with extra args and returns
// its base URL plus a shutdown func that asserts a clean exit.
func startDaemon(t *testing.T, args ...string) (string, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var stderr syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, append([]string{"-addr", "127.0.0.1:0", "-grace", "60s"}, args...), io.Discard, &stderr)
	}()
	re := regexp.MustCompile(`listening on (http://[^\s]+)`)
	deadline := time.Now().Add(30 * time.Second)
	for {
		if m := re.FindStringSubmatch(stderr.String()); m != nil {
			return m[1], func() {
				cancel()
				select {
				case code := <-done:
					if code != 0 {
						t.Errorf("daemon exited %d; stderr:\n%s", code, stderr.String())
					}
				case <-time.After(90 * time.Second):
					t.Errorf("daemon never shut down; stderr:\n%s", stderr.String())
				}
			}
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("daemon never reported its address; stderr:\n%s", stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPureFrontNeedsPeers pins the -workers -1 guardrails: a dispatch
// front with no peers would accept jobs that never run.
func TestPureFrontNeedsPeers(t *testing.T) {
	if code := run(context.Background(), []string{"-workers", "-1"}, io.Discard, io.Discard); code != 2 {
		t.Fatalf("-workers -1 without -peers exited %d, want 2", code)
	}
	if code := run(context.Background(), []string{"-workers", "-7"}, io.Discard, io.Discard); code != 2 {
		t.Fatalf("-workers -7 exited %d, want 2", code)
	}
	// Unreachable peers leave a pure front with zero capacity: refuse.
	var stderr bytes.Buffer
	if code := run(context.Background(), []string{"-workers", "-1", "-peers", "http://127.0.0.1:1"}, io.Discard, &stderr); code != 1 {
		t.Fatalf("pure front with dead peer exited %d, want 1; stderr:\n%s", code, stderr.String())
	}
}

// TestPeersFleet boots a backend daemon and a pure dispatch front
// pointed at it, submits a job to the front, and expects the backend to
// execute it.
func TestPeersFleet(t *testing.T) {
	backendURL, stopBackend := startDaemon(t, "-results", filepath.Join(t.TempDir(), "backend.json"), "-workers", "2")
	defer stopBackend()
	frontURL, stopFront := startDaemon(t, "-results", filepath.Join(t.TempDir(), "front.json"), "-workers", "-1", "-peers", backendURL)
	defer stopFront()

	cfg := sim.DefaultConfig("lbm")
	cfg.WarmupInstructions = 10_000
	cfg.RunInstructions = 20_000
	blob, err := json.Marshal(map[string]any{"label": "fleet", "config": cfg})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(frontURL+"/v1/jobs", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		Jobs []struct {
			ID string `json:"id"`
		} `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || len(sub.Jobs) != 1 {
		t.Fatalf("submit: HTTP %d, %+v", resp.StatusCode, sub)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(frontURL + "/v1/jobs/" + sub.Jobs[0].ID)
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			State  string          `json:"state"`
			Error  string          `json:"error"`
			Result json.RawMessage `json:"result"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		switch st.State {
		case "done":
			if len(st.Result) == 0 {
				t.Fatal("done job has no result")
			}
			// The front ran nothing locally: the simulation happened on
			// the backend.
			var met struct {
				Remote uint64 `json:"remote_simulations"`
				Local  uint64 `json:"simulations_run"`
			}
			mresp, err := http.Get(frontURL + "/metrics")
			if err != nil {
				t.Fatal(err)
			}
			if err := json.NewDecoder(mresp.Body).Decode(&met); err != nil {
				t.Fatal(err)
			}
			mresp.Body.Close()
			if met.Remote != 1 || met.Local != 0 {
				t.Errorf("front metrics: remote=%d local=%d, want 1/0", met.Remote, met.Local)
			}
			return
		case "failed", "canceled":
			t.Fatalf("job %s: %s", st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAnalysisCampaign drives the observability surface end to end: a
// quick two-mechanism campaign with the perf analyzer enabled runs on
// a real daemon, each job's /v1/analysis/{id} report must exist and
// its epoch timelines must sum to the result's own row-outcome stats,
// the fleet aggregates must appear in /metrics, and /dashboard must
// serve the embedded page.
func TestAnalysisCampaign(t *testing.T) {
	base, stop := startDaemon(t, "-results", filepath.Join(t.TempDir(), "results.json"), "-workers", "2")
	defer stop()

	var specs []map[string]any
	for _, mech := range []sim.MechanismKind{sim.Baseline, sim.ChargeCache} {
		cfg := sim.DefaultConfig("lbm")
		cfg.WarmupInstructions = 10_000
		cfg.RunInstructions = 50_000
		cfg.Mechanism = mech
		cfg.Analysis = &analysis.Config{Enabled: true, EpochCycles: 5_000, MaxEpochs: 1024}
		specs = append(specs, map[string]any{"label": mech.String(), "config": cfg})
	}
	blob, err := json.Marshal(map[string]any{"jobs": specs})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		Jobs []struct {
			ID string `json:"id"`
		} `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || len(sub.Jobs) != len(specs) {
		t.Fatalf("submit: HTTP %d, %+v", resp.StatusCode, sub)
	}

	for _, j := range sub.Jobs {
		// Poll the job to completion and keep its result stats.
		var res sim.Result
		deadline := time.Now().Add(120 * time.Second)
		for {
			r, err := http.Get(base + "/v1/jobs/" + j.ID)
			if err != nil {
				t.Fatal(err)
			}
			var st struct {
				State  string      `json:"state"`
				Error  string      `json:"error"`
				Result *sim.Result `json:"result"`
			}
			if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
				t.Fatal(err)
			}
			r.Body.Close()
			if st.State == "done" {
				if st.Result == nil {
					t.Fatal("done job has no result")
				}
				res = *st.Result
				break
			}
			if st.State == "failed" || st.State == "canceled" {
				t.Fatalf("job %s: %s", st.State, st.Error)
			}
			if time.Now().After(deadline) {
				t.Fatal("job never finished")
			}
			time.Sleep(10 * time.Millisecond)
		}

		r, err := http.Get(base + "/v1/analysis/" + j.ID)
		if err != nil {
			t.Fatal(err)
		}
		var rep analysis.Report
		if err := json.NewDecoder(r.Body).Decode(&rep); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("analysis %s: HTTP %d", j.ID, r.StatusCode)
		}
		// The acceptance check: per-epoch row outcomes summed over every
		// channel equal the simulation's own controller stats.
		var hits, misses, conflicts uint64
		for _, ch := range rep.Channels {
			if ch.DroppedEpochs > 0 || ch.Clamped > 0 {
				t.Errorf("channel %d dropped %d epochs, clamped %d events at this ring size",
					ch.Channel, ch.DroppedEpochs, ch.Clamped)
			}
			for _, e := range ch.Epochs {
				hits += e.RowHits
				misses += e.RowMisses
				conflicts += e.RowConflicts
			}
		}
		if hits != res.Controller.RowHits || misses != res.Controller.RowMisses ||
			conflicts != res.Controller.RowConflicts {
			t.Errorf("epoch sums h/m/c = %d/%d/%d, result stats %d/%d/%d",
				hits, misses, conflicts,
				res.Controller.RowHits, res.Controller.RowMisses, res.Controller.RowConflicts)
		}
	}

	// Fleet aggregates: both reports folded into /metrics.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var met struct {
		Analysis *struct {
			Reports    uint64  `json:"reports"`
			RowHitRate float64 `json:"row_hit_rate"`
		} `json:"analysis"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&met); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if met.Analysis == nil || met.Analysis.Reports != 2 {
		t.Errorf("fleet analysis block = %+v, want 2 reports", met.Analysis)
	}

	dresp, err := http.Get(base + "/dashboard")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("<title>ccsimd dashboard</title>")) {
		t.Errorf("dashboard: HTTP %d, %d bytes", dresp.StatusCode, len(body))
	}
}

// TestServeAndShutdown boots the daemon on a scratch port, hits
// /healthz, and checks a context cancellation (the SIGINT path) shuts
// it down cleanly.
func TestServeAndShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stderr syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-results", filepath.Join(t.TempDir(), "results.json"),
			"-grace", "60s",
		}, io.Discard, &stderr)
	}()

	re := regexp.MustCompile(`listening on (http://[^\s]+)`)
	var base string
	deadline := time.Now().Add(30 * time.Second)
	for base == "" {
		if m := re.FindStringSubmatch(stderr.String()); m != nil {
			base = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never reported its address; stderr:\n%s", stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || health.Status != "ok" {
		t.Fatalf("healthz: HTTP %d, %+v", resp.StatusCode, health)
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("daemon exited %d; stderr:\n%s", code, stderr.String())
		}
	case <-time.After(90 * time.Second):
		t.Fatalf("daemon never shut down; stderr:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "draining") {
		t.Errorf("shutdown log missing drain message:\n%s", stderr.String())
	}
}
