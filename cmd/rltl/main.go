// Command rltl measures Row-Level Temporal Locality (Section 3 of the
// paper): for each workload, the fraction of row activations that occur
// within t after the same row's previous precharge, for the paper's
// interval set, against the fraction occurring within 8 ms of a refresh.
//
// Usage:
//
//	rltl [-workloads all|name,name,...] [-instructions N] [-policy open|closed]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	ccsim "repro"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without the process-global bits, so tests can exercise
// the measurement table end to end.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rltl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workloads := fs.String("workloads", "all", "comma-separated workload names, or 'all'")
	instructions := fs.Uint64("instructions", 500_000, "instructions per run")
	warmup := fs.Uint64("warmup", 1_000_000, "warm-up instructions")
	policy := fs.String("policy", "open", "row policy: open or closed")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *policy != "open" && *policy != "closed" {
		fmt.Fprintf(stderr, "rltl: unknown row policy %q (want open or closed)\n", *policy)
		return 2
	}

	names := ccsim.Workloads()
	if *workloads != "all" {
		names = strings.Split(*workloads, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
	}

	header := fmt.Sprintf("%-12s", "workload")
	cfg0 := ccsim.DefaultConfig(names[0])
	for _, ms := range cfg0.RLTLIntervalsMs {
		header += fmt.Sprintf(" %8.3gms", ms)
	}
	header += fmt.Sprintf(" %10s", "refresh8ms")
	fmt.Fprintln(stdout, header)

	for _, name := range names {
		cfg := ccsim.DefaultConfig(name)
		cfg.RunInstructions = *instructions
		cfg.WarmupInstructions = *warmup
		cfg.TrackRLTL = true
		if *policy == "closed" {
			cfg.RowPolicy = ccsim.ClosedRow
		}
		res, err := ccsim.Run(cfg)
		if err != nil {
			fmt.Fprintf(stderr, "rltl: %s: %v\n", name, err)
			return 1
		}
		line := fmt.Sprintf("%-12s", name)
		for _, f := range res.RLTL.Fractions {
			line += fmt.Sprintf(" %9.1f%%", 100*f)
		}
		line += fmt.Sprintf(" %9.1f%%", 100*res.RLTL.RefreshFraction)
		fmt.Fprintln(stdout, line)
	}
	return 0
}
