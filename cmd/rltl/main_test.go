package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// TestRLTLTable smoke-tests the measurement end to end on one small
// workload: a header with the paper's interval set and one data row
// with percentages.
func TestRLTLTable(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-workloads", "lbm", "-instructions", "30000", "-warmup", "20000"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("rltl exited %d; stderr:\n%s", code, errOut.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d output lines, want header + 1 row:\n%s", len(lines), out.String())
	}
	for _, want := range []string{"workload", "8ms", "refresh8ms"} {
		if !strings.Contains(lines[0], want) {
			t.Errorf("header %q missing %q", lines[0], want)
		}
	}
	if !strings.HasPrefix(lines[1], "lbm") || !strings.Contains(lines[1], "%") {
		t.Errorf("data row %q lacks workload name or percentages", lines[1])
	}
}

// TestRLTLClosedPolicy runs the closed-row variant and rejects unknown
// policies.
func TestRLTLClosedPolicy(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-workloads", "lbm", "-instructions", "30000", "-warmup", "20000", "-policy", "closed"}, &out, io.Discard); code != 0 {
		t.Fatalf("closed policy exited %d", code)
	}
	if code := run([]string{"-policy", "sideways"}, io.Discard, io.Discard); code != 2 {
		t.Fatalf("unknown policy exited %d, want 2", code)
	}
}

func TestBadFlag(t *testing.T) {
	if code := run([]string{"-no-such-flag"}, io.Discard, io.Discard); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
}
