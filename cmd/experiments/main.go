// Command experiments regenerates the paper's evaluation: every figure
// and table of Section 6 (plus the Section 3 motivation figures and the
// Section 4.3 circuit results), printed as text tables.
//
// Usage:
//
//	experiments [-scale quick|default|long] [-fig all|3|4|6|7a|7b|8|9|10|11|table2|overhead]
//	            [-workers N] [-results FILE] [-quiet]
//	            [-servers host1:8344,host2:8344] [-local N]
//
// Sweeps fan out across -workers goroutines (default: GOMAXPROCS) with
// results identical to a serial run. -results names a JSON cache file:
// finished configs are persisted as they complete, so an interrupted
// campaign resumes where it stopped and repeated runs reuse earlier
// work.
//
// -servers shards every figure's campaign across a fleet of ccsimd
// daemons (capacity-weighted, with failover; see internal/dispatch)
// instead of simulating in this process; -local N adds N in-process
// slots to the fleet, and -results keeps its resume semantics — the
// local cache is consulted first and every remote result lands in it.
//
// Absolute numbers depend on the synthetic workload substitution (see
// DESIGN.md); the shapes — who wins, by what rough factor, where
// crossovers fall — are the reproduction target.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/circuit"
	"repro/internal/dispatch"
	"repro/internal/dram"
	"repro/internal/experiments"
	"repro/internal/memctrl"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/version"
)

var mechOrder = []sim.MechanismKind{sim.NUAT, sim.ChargeCache, sim.ChargeCacheNUAT, sim.LLDRAM}

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	scaleFlag := flag.String("scale", "default", "simulation budget: quick, default or long")
	figFlag := flag.String("fig", "all", "which experiment: all, 3, 4, 6, 7a, 7b, 8, 9, 10, 11, table2, overhead")
	workersFlag := flag.Int("workers", 0, "parallel simulations per sweep (0 = GOMAXPROCS)")
	serversFlag := flag.String("servers", "", "comma-separated ccsimd URLs: dispatch every campaign across the fleet")
	localFlag := flag.Int("local", 0, "in-process worker slots joining the -servers fleet (0 = none)")
	resultsFlag := flag.String("results", "", "JSON results-cache file: resumes interrupted campaigns, reuses finished configs")
	quietFlag := flag.Bool("quiet", false, "suppress per-config progress on stderr")
	versionFlag := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *versionFlag {
		fmt.Printf("experiments %s\n", version.String())
		return
	}

	var scale experiments.Scale
	switch *scaleFlag {
	case "quick":
		scale = experiments.Quick()
	case "default":
		scale = experiments.Default()
	case "long":
		scale = experiments.Long()
	default:
		log.Fatalf("unknown scale %q", *scaleFlag)
	}
	scale.Workers = *workersFlag
	if *serversFlag != "" {
		scale.Servers = dispatch.SplitEndpoints(*serversFlag)
		scale.LocalWorkers = *localFlag
	}
	if *resultsFlag != "" {
		cache, err := sweep.OpenCache(*resultsFlag)
		if err != nil {
			log.Fatal(err)
		}
		if note := cache.RecoveryNote(); note != "" {
			fmt.Fprintf(os.Stderr, "WARNING: %s\n", note)
		}
		fmt.Fprintf(os.Stderr, "results cache %s: %d finished configs\n", *resultsFlag, cache.Len())
		scale.Cache = cache
	}
	if !*quietFlag {
		scale.Progress = sweep.StderrProgress
	}

	start := time.Now()
	if err := run(scale, *figFlag); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "total: %v\n", time.Since(start).Round(time.Second))
}

func run(scale experiments.Scale, fig string) error {
	all := fig == "all"
	type step struct {
		name string
		fn   func(experiments.Scale) error
	}
	steps := []step{
		{"table2", func(experiments.Scale) error { return table2() }},
		{"6", func(experiments.Scale) error { return fig6() }},
		{"3", fig3},
		{"4", fig4},
		{"7a", fig7a},
		{"7b", fig7b8},
		{"9", fig9and10},
		{"10", nil}, // rendered together with 9
		{"11", fig11},
		{"overhead", func(experiments.Scale) error { return overhead() }},
	}
	matched := false
	for _, st := range steps {
		if st.fn == nil {
			continue
		}
		if all || fig == st.name || (st.name == "7b" && fig == "8") || (st.name == "9" && fig == "10") {
			matched = true
			if err := st.fn(scale); err != nil {
				return err
			}
		}
	}
	if !matched {
		return fmt.Errorf("unknown figure %q", fig)
	}
	return nil
}

// table2 prints the circuit-derived caching-duration timings (Table 2).
func table2() error {
	model, err := circuit.NewModel(circuit.DefaultParams())
	if err != nil {
		return err
	}
	spec := dram.DDR31600(1)
	rows, err := model.Table2(spec, []float64{1, 4, 16})
	if err != nil {
		return err
	}
	fmt.Println("== Table 2: tRCD and tRAS for caching durations (SPICE substitute) ==")
	fmt.Printf("%-14s %10s %10s %8s %8s\n", "duration", "tRCD(ns)", "tRAS(ns)", "tRCD(c)", "tRAS(c)")
	for _, r := range rows {
		name := fmt.Sprintf("%g ms", r.DurationMs)
		if r.DurationMs == 0 {
			name = "baseline"
		}
		fmt.Printf("%-14s %10.2f %10.2f %8d %8d\n", name, r.TRCDNs, r.TRASNs, r.Class.RCD, r.Class.RAS)
	}
	fmt.Println()
	return nil
}

// fig6 prints the bitline voltage curves and the headline reductions.
func fig6() error {
	model, err := circuit.NewModel(circuit.DefaultParams())
	if err != nil {
		return err
	}
	fmt.Println("== Figure 6: bitline voltage during activation ==")
	full := model.BitlineSeries(0.001, 2.0, 30)
	worst := model.BitlineSeries(64, 2.0, 30)
	fmt.Printf("%8s %14s %14s\n", "t(ns)", "fresh cell(V)", "worst case(V)")
	for i := range full {
		fmt.Printf("%8.1f %14.3f %14.3f\n", full[i].TimeNs, full[i].Volts, worst[i].Volts)
	}
	rcdF, rasF := model.ActivateLatency(0.001)
	rcdW, rasW := model.ActivateLatency(64)
	fmt.Printf("ready-to-access: fresh %.1f ns vs worst %.1f ns -> tRCD reduction %.1f ns\n", rcdF, rcdW, rcdW-rcdF)
	fmt.Printf("fully restored:  fresh %.1f ns vs worst %.1f ns -> tRAS reduction %.1f ns\n\n", rasF, rasW, rasW-rasF)
	return nil
}

// fig3 prints the 8ms-RLTL vs accessed-8ms-after-refresh comparison.
func fig3(scale experiments.Scale) error {
	for _, eight := range []bool{false, true} {
		rows, err := scale.Fig3(eight)
		if err != nil {
			return err
		}
		label := "3a (single-core)"
		if eight {
			label = "3b (eight-core)"
		}
		fmt.Printf("== Figure %s: activations within 8ms of precharge vs refresh ==\n", label)
		fmt.Printf("%-12s %12s %14s\n", "workload", "8ms-RLTL", "after-refresh")
		idx8 := indexOf(rows[0].IntervalsMs, 8)
		var rl, rf []float64
		for _, r := range rows {
			fmt.Printf("%-12s %11.1f%% %13.1f%%\n", r.Name, 100*r.Fractions[idx8], 100*r.RefreshFraction)
			rl = append(rl, r.Fractions[idx8])
			rf = append(rf, r.RefreshFraction)
		}
		fmt.Printf("%-12s %11.1f%% %13.1f%%\n\n", "AVG", 100*stats.Mean(rl), 100*stats.Mean(rf))
	}
	return nil
}

// fig4 prints the RLTL interval stacks for both row policies.
func fig4(scale experiments.Scale) error {
	for _, eight := range []bool{false, true} {
		label := "4a (single-core)"
		if eight {
			label = "4b (eight-core)"
		}
		fmt.Printf("== Figure %s: RLTL per interval, open-row vs closed-row ==\n", label)
		for _, policy := range []memctrl.RowPolicy{memctrl.OpenRow, memctrl.ClosedRow} {
			rows, err := scale.Fig4(eight, policy)
			if err != nil {
				return err
			}
			fmt.Printf("-- %v --\n", policy)
			header := fmt.Sprintf("%-12s", "workload")
			for _, ms := range rows[0].IntervalsMs {
				header += fmt.Sprintf(" %8.3gms", ms)
			}
			fmt.Println(header)
			avg := make([]float64, len(rows[0].Fractions))
			for _, r := range rows {
				line := fmt.Sprintf("%-12s", r.Name)
				for i, f := range r.Fractions {
					line += fmt.Sprintf(" %9.1f%%", 100*f)
					avg[i] += f
				}
				fmt.Println(line)
			}
			line := fmt.Sprintf("%-12s", "AVG")
			for _, a := range avg {
				line += fmt.Sprintf(" %9.1f%%", 100*a/float64(len(rows)))
			}
			fmt.Println(line)
		}
		fmt.Println()
	}
	return nil
}

func speedupTable(title string, rows []experiments.SpeedupRow) {
	fmt.Println(title)
	fmt.Printf("%-12s %7s %8s %8s %8s %8s %6s\n",
		"workload", "rmpkc", "NUAT", "CC", "CC+NUAT", "LL-DRAM", "hit")
	avg := map[sim.MechanismKind]float64{}
	for _, r := range rows {
		fmt.Printf("%-12s %7.2f %+7.2f%% %+7.2f%% %+7.2f%% %+7.2f%% %6.2f\n",
			r.Name, r.RMPKC,
			100*r.Speedup[sim.NUAT], 100*r.Speedup[sim.ChargeCache],
			100*r.Speedup[sim.ChargeCacheNUAT], 100*r.Speedup[sim.LLDRAM], r.HitRate)
		for _, m := range mechOrder {
			avg[m] += r.Speedup[m]
		}
	}
	n := float64(len(rows))
	fmt.Printf("%-12s %7s %+7.2f%% %+7.2f%% %+7.2f%% %+7.2f%%\n\n", "AVG", "",
		100*avg[sim.NUAT]/n, 100*avg[sim.ChargeCache]/n,
		100*avg[sim.ChargeCacheNUAT]/n, 100*avg[sim.LLDRAM]/n)
}

func fig7a(scale experiments.Scale) error {
	rows, err := scale.Fig7Single()
	if err != nil {
		return err
	}
	speedupTable("== Figure 7a: single-core speedup (sorted by RMPKC) ==", rows)
	printEnergy("== Figure 8 (single-core): DRAM energy reduction ==", rows)
	return nil
}

func fig7b8(scale experiments.Scale) error {
	rows, err := scale.Fig7Eight()
	if err != nil {
		return err
	}
	speedupTable("== Figure 7b: eight-core weighted speedup (sorted by RMPKC) ==", rows)
	printEnergy("== Figure 8 (eight-core): DRAM energy reduction ==", rows)
	return nil
}

func printEnergy(title string, rows []experiments.SpeedupRow) {
	sum := experiments.Fig8(rows)
	fmt.Println(title)
	fmt.Printf("%-18s %9s %9s\n", "mechanism", "average", "maximum")
	for _, m := range mechOrder {
		fmt.Printf("%-18s %8.1f%% %8.1f%%\n", m, 100*sum.AvgReduction[m], 100*sum.MaxReduction[m])
	}
	fmt.Println()
}

func fig9and10(scale experiments.Scale) error {
	for _, eight := range []bool{false, true} {
		rows, err := scale.Fig9And10(eight, experiments.DefaultCapacitySweep)
		if err != nil {
			return err
		}
		label := "single-core"
		if eight {
			label = "eight-core"
		}
		fmt.Printf("== Figures 9 and 10 (%s): hit rate and speedup vs capacity ==\n", label)
		fmt.Printf("%-12s %10s %10s\n", "entries/core", "hit rate", "speedup")
		for _, r := range rows {
			name := fmt.Sprintf("%d", r.Entries)
			if r.Entries == 0 {
				name = "unlimited"
			}
			fmt.Printf("%-12s %9.1f%% %+9.2f%%\n", name, 100*r.HitRate, 100*r.Speedup)
		}
		fmt.Println()
	}
	return nil
}

func fig11(scale experiments.Scale) error {
	for _, eight := range []bool{false, true} {
		rows, err := scale.Fig11(eight, experiments.DefaultDurationSweepMs)
		if err != nil {
			return err
		}
		label := "single-core"
		if eight {
			label = "eight-core"
		}
		fmt.Printf("== Figure 11 (%s): speedup and hit rate vs caching duration ==\n", label)
		fmt.Printf("%-10s %10s %10s\n", "duration", "hit rate", "speedup")
		for _, r := range rows {
			fmt.Printf("%-10s %9.1f%% %+9.2f%%\n", fmt.Sprintf("%gms", r.DurationMs), 100*r.HitRate, 100*r.Speedup)
		}
		fmt.Println()
	}
	return nil
}

// overhead prints the Section 6.3 hardware-cost numbers.
func overhead() error {
	spec := dram.DDR31600(2)
	ov, err := power.HCRACOverhead(spec, 128, 8, 4<<20, 60e6)
	if err != nil {
		return err
	}
	fmt.Println("== Section 6.3: ChargeCache hardware overhead (128 entries/core, 8 cores, 2 channels) ==")
	fmt.Printf("storage:        %d bytes (%d per core)\n", ov.StorageBytes, ov.StorageBytes/8)
	fmt.Printf("area:           %.4f mm^2 (%.2f%% of a 4MB LLC)\n", ov.AreaMM2, 100*ov.FractionOfLLCArea)
	fmt.Printf("average power:  %.3f mW\n\n", ov.PowerMW)
	return nil
}

func indexOf(xs []float64, v float64) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return len(xs) - 1
}
