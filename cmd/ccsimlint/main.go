// Command ccsimlint runs the project's static analyzers (internal/lint)
// over Go package patterns and exits nonzero on findings. It is the
// compile-time half of invariants the test suite checks at runtime:
// engine determinism (detcore), sweep.Key cache-key completeness
// (keyfield), no blocking I/O under mutexes (lockio), and zero-alloc
// hot paths (hotalloc).
//
// Usage:
//
//	ccsimlint [-list] [-only detcore,keyfield] [packages...]
//
// With no packages, ./... is linted. Deliberate exceptions are
// annotated in the source as //lint:allow <analyzer> <reason>; the run
// honors them and prints how many it honored, so exceptions stay
// visible instead of silently accumulating.
//
// The suite is wired as `make lint` and the CI lint job. It is built
// on the standard library alone (the module has no external
// dependencies), mirroring the golang.org/x/tools/go/analysis API so
// the analyzers can move onto a multichecker vettool wholesale if the
// dependency policy ever changes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/lint"
	"repro/internal/version"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ccsimlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("only", "", "comma-separated subset of analyzers to run")
	showVersion := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVersion {
		fmt.Fprintln(stdout, "ccsimlint", version.Version)
		return 0
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "ccsimlint: unknown analyzer %q (see -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	sum, err := lint.Run(".", analyzers, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "ccsimlint: %v\n", err)
		return 2
	}

	for _, d := range sum.Diagnostics {
		fmt.Fprintln(stdout, d.String())
	}
	reportSuppressions(stderr, sum)
	if len(sum.Diagnostics) > 0 {
		fmt.Fprintf(stderr, "ccsimlint: %d finding(s) in %d package(s)\n", len(sum.Diagnostics), sum.Packages)
		return 1
	}
	fmt.Fprintf(stderr, "ccsimlint: clean (%d packages)\n", sum.Packages)
	return 0
}

// reportSuppressions prints honored //lint:allow counts per analyzer,
// keeping deliberate exceptions visible on every run.
func reportSuppressions(stderr io.Writer, sum lint.Summary) {
	counts := sum.SuppressedByAnalyzer()
	if len(counts) == 0 {
		return
	}
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	var parts []string
	for _, name := range names {
		parts = append(parts, fmt.Sprintf("%s=%d", name, counts[name]))
	}
	fmt.Fprintf(stderr, "ccsimlint: honored suppressions: %s\n", strings.Join(parts, " "))
}
