package main

import (
	"strings"
	"testing"
)

func TestListNamesEveryAnalyzer(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	for _, name := range []string{"detcore", "keyfield", "lockio", "hotalloc"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-only", "nope"}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown analyzer") {
		t.Errorf("stderr: %s", errOut.String())
	}
}

func TestOwnPackageIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list")
	}
	var out, errOut strings.Builder
	if code := run([]string{"."}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if !strings.Contains(errOut.String(), "clean") {
		t.Errorf("stderr missing clean verdict: %s", errOut.String())
	}
}
