// Command tracegen dumps a synthetic workload's trace in Ramulator's
// cpu-trace text format, so the streams this reproduction evaluates can
// be replayed by other simulators (or fed back via ccsim's TraceFiles).
//
// Usage:
//
//	tracegen -workload lbm -records 100000 > lbm.trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	ccsim "repro"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without the process-global bits, so tests can drive the
// generator and capture its stream.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	name := fs.String("workload", "lbm", "workload name; see 'ccsim -list'")
	records := fs.Int("records", 100_000, "number of trace records to emit")
	seed := fs.Uint64("seed", 1, "generator seed")
	region := fs.Uint64("region", 4<<30, "address region size in bytes")
	base := fs.Uint64("base", 0, "address region base")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	prof, err := workload.ByName(*name)
	if err != nil {
		fmt.Fprintf(stderr, "tracegen: %v (available: %v)\n", err, ccsim.Workloads())
		return 1
	}
	gen, err := workload.NewGenerator(prof, *seed, *base, *region)
	if err != nil {
		fmt.Fprintf(stderr, "tracegen: %v\n", err)
		return 1
	}
	w := trace.NewWriter(stdout)
	for i := 0; i < *records; i++ {
		if err := w.Write(gen.Next()); err != nil {
			fmt.Fprintf(stderr, "tracegen: %v\n", err)
			return 1
		}
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintf(stderr, "tracegen: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "wrote %d records of %s\n", w.Records(), *name)
	return 0
}
