// Command tracegen dumps a synthetic workload's trace in Ramulator's
// cpu-trace text format, so the streams this reproduction evaluates can
// be replayed by other simulators (or fed back via ccsim's TraceFiles).
//
// Usage:
//
//	tracegen -workload lbm -records 100000 > lbm.trace
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	ccsim "repro"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")

	name := flag.String("workload", "lbm", "workload name; see 'ccsim -list'")
	records := flag.Int("records", 100_000, "number of trace records to emit")
	seed := flag.Uint64("seed", 1, "generator seed")
	region := flag.Uint64("region", 4<<30, "address region size in bytes")
	base := flag.Uint64("base", 0, "address region base")
	flag.Parse()

	prof, err := workload.ByName(*name)
	if err != nil {
		names := ccsim.Workloads()
		log.Fatalf("%v (available: %v)", err, names)
	}
	gen, err := workload.NewGenerator(prof, *seed, *base, *region)
	if err != nil {
		log.Fatal(err)
	}
	w := trace.NewWriter(os.Stdout)
	for i := 0; i < *records; i++ {
		if err := w.Write(gen.Next()); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d records of %s\n", w.Records(), *name)
}
