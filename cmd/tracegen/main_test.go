package main

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

// TestEmitAndReread is the round-trip smoke test: the emitted stream
// must parse back into exactly the records the generator produced.
func TestEmitAndReread(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-workload", "lbm", "-records", "200", "-seed", "7"}, &out, &errOut); code != 0 {
		t.Fatalf("tracegen exited %d; stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "wrote 200 records") {
		t.Errorf("summary line missing: %q", errOut.String())
	}

	got, err := trace.ReadAll(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatalf("emitted trace does not re-read: %v", err)
	}
	if len(got) != 200 {
		t.Fatalf("re-read %d records, want 200", len(got))
	}

	// The stream must match the generator record for record (same
	// profile, seed, and region defaults as the command).
	prof, err := workload.ByName("lbm")
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(prof, 7, 0, 4<<30)
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range got {
		if want := gen.Next(); !reflect.DeepEqual(rec, want) {
			t.Fatalf("record %d = %+v, want %+v", i, rec, want)
		}
	}
}

func TestUnknownWorkload(t *testing.T) {
	var errOut bytes.Buffer
	if code := run([]string{"-workload", "no-such"}, io.Discard, &errOut); code != 1 {
		t.Fatalf("unknown workload exited %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "available") {
		t.Errorf("error %q does not list available workloads", errOut.String())
	}
}

func TestBadFlag(t *testing.T) {
	if code := run([]string{"-no-such-flag"}, io.Discard, io.Discard); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
}
