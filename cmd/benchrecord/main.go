// Command benchrecord measures the simulation core's two execution
// engines on the Quick-scale Figure 7a campaign (22 single-core
// workloads × 5 mechanisms) and writes the numbers to a JSON file
// (default BENCH_simcore.json), so every PR that touches the hot path
// leaves a comparable data point behind.
//
// Each config is run under both engines back to back (stepper, then
// event), so per-workload speedups compare measurements taken moments
// apart — robust against machine-load drift over the campaign, which
// two separate full passes are not.
//
// Recorded per engine: campaign wall clock, ns per simulated
// megacycle, and sweep throughput (configs/sec); for the event-driven
// engine additionally the fraction of cycles it actually executed.
// The headline "speedup" is stepper wall clock over event wall clock
// for the identical campaign — both engines produce bit-identical
// Results (see internal/sim/differential_test.go), so the comparison
// is pure engine overhead.
//
// The run doubles as a regression gate:
//
//   - -min-speedup R (default 1.0) fails the run if any workload's
//     event-vs-stepper speedup drops below R — an event engine slower
//     than the reference stepper on any workload is a perf bug, not a
//     data point. Set R <= 0 to disable.
//
//   - -compare FILE diffs the fresh numbers against a committed
//     BENCH_simcore.json and fails on a >10% (-max-regress) drop in
//     either engine's aggregate configs_per_sec.
//
//     benchrecord                  # full campaign, writes BENCH_simcore.json
//     benchrecord -quick           # 6-workload subset (CI smoke)
//     benchrecord -out bench.json  # alternate output path
//     benchrecord -compare BENCH_simcore.json -out /tmp/bench.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/version"
	"repro/internal/workload"
)

// engineStats summarizes one engine's pass over the campaign.
type engineStats struct {
	WallMS            float64 `json:"wall_ms"`
	SimMegacycles     float64 `json:"sim_megacycles"`
	NsPerMegacycle    float64 `json:"ns_per_megacycle"`
	ConfigsPerSec     float64 `json:"configs_per_sec"`
	ExecutedFraction  float64 `json:"executed_cycle_fraction,omitempty"`
	ExecutedCycles    int64   `json:"executed_cycles"`
	TotalCycles       int64   `json:"total_cycles"`
	InstructionsTotal uint64  `json:"instructions_total"`
}

// workloadRow is the per-workload breakdown (5 configs each).
type workloadRow struct {
	Workload     string  `json:"workload"`
	StepperMS    float64 `json:"stepper_ms"`
	EventMS      float64 `json:"event_ms"`
	Speedup      float64 `json:"speedup"`
	ExecFraction float64 `json:"event_executed_cycle_fraction"`
}

// record is the BENCH_simcore.json schema.
type record struct {
	Generated   string                 `json:"generated"`
	Version     string                 `json:"version"`
	Campaign    string                 `json:"campaign"`
	Scale       string                 `json:"scale"`
	Jobs        int                    `json:"jobs"`
	GoVersion   string                 `json:"go_version"`
	GOOS        string                 `json:"goos"`
	GOARCH      string                 `json:"goarch"`
	GOMAXPROCS  int                    `json:"gomaxprocs"`
	Engines     map[string]engineStats `json:"engines"`
	Speedup     float64                `json:"speedup_event_vs_stepper"`
	PerWorkload []workloadRow          `json:"per_workload"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchrecord: ")

	out := flag.String("out", "BENCH_simcore.json", "output JSON path")
	quick := flag.Bool("quick", false, "run a 6-workload subset instead of the full 22 (CI smoke)")
	minSpeedup := flag.Float64("min-speedup", 1.0,
		"fail if any workload's event-vs-stepper speedup is below this (<=0 disables)")
	compare := flag.String("compare", "",
		"committed BENCH_simcore.json to diff against; fail on aggregate throughput regression")
	maxRegress := flag.Float64("max-regress", 0.10,
		"maximum tolerated fractional configs_per_sec regression for -compare")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Printf("benchrecord %s\n", version.String())
		return
	}

	scale := experiments.Quick()
	names := workload.Names()
	if *quick {
		names = names[:6]
	}

	// The Figure 7a per-row config group: baseline plus the four
	// evaluated mechanisms, mirroring experiments.Fig7Single.
	mechs := []sim.MechanismKind{
		sim.Baseline, sim.NUAT, sim.ChargeCache, sim.ChargeCacheNUAT, sim.LLDRAM,
	}
	type job struct {
		workload string
		cfg      sim.Config
	}
	var jobs []job
	for _, name := range names {
		base := sim.DefaultConfig(name)
		base.WarmupInstructions = scale.WarmupInstructions
		base.RunInstructions = scale.RunInstructions
		for _, m := range mechs {
			cfg := base
			cfg.Mechanism = m
			jobs = append(jobs, job{workload: name, cfg: cfg})
		}
	}

	rec := record{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Version:    version.String(),
		Campaign:   "fig7a",
		Scale:      "quick",
		Jobs:       len(jobs),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Engines:    map[string]engineStats{},
	}

	perWorkload := map[string]*workloadRow{}
	for _, name := range names {
		perWorkload[name] = &workloadRow{Workload: name}
	}

	runOne := func(cfg sim.Config, stepper bool) (time.Duration, sim.Result, *sim.System) {
		cfg.Stepper = stepper
		sys, err := sim.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := sys.Run()
		if err != nil {
			log.Fatal(err)
		}
		return time.Since(start), res, sys
	}
	retired := func(res sim.Result) uint64 {
		var n uint64
		for _, pc := range res.PerCore {
			n += pc.Instructions
		}
		return n
	}

	var stStats, evStats engineStats
	var stTotal, evTotal time.Duration
	for _, j := range jobs {
		row := perWorkload[j.workload]

		wall, res, sys := runOne(j.cfg, true)
		stTotal += wall
		stStats.TotalCycles += sys.TotalCycles()
		stStats.ExecutedCycles += sys.ExecutedCycles()
		stStats.InstructionsTotal += retired(res)
		row.StepperMS += float64(wall) / float64(time.Millisecond)

		wall, res, sys = runOne(j.cfg, false)
		evTotal += wall
		evStats.TotalCycles += sys.TotalCycles()
		evStats.ExecutedCycles += sys.ExecutedCycles()
		evStats.InstructionsTotal += retired(res)
		row.EventMS += float64(wall) / float64(time.Millisecond)
		// Running weighted mean over the workload's five configs.
		row.ExecFraction += float64(sys.ExecutedCycles()) / float64(sys.TotalCycles()) / float64(len(mechs))
	}

	finish := func(st *engineStats, total time.Duration, name string) {
		st.WallMS = float64(total) / float64(time.Millisecond)
		st.SimMegacycles = float64(st.TotalCycles) / 1e6
		st.NsPerMegacycle = float64(total.Nanoseconds()) / st.SimMegacycles
		st.ConfigsPerSec = float64(len(jobs)) / total.Seconds()
		log.Printf("%-7s %7.0f ms  %8.0f ns/Mcycle  %6.2f configs/s",
			name, st.WallMS, st.NsPerMegacycle, st.ConfigsPerSec)
	}
	finish(&stStats, stTotal, "stepper")
	evStats.ExecutedFraction = float64(evStats.ExecutedCycles) / float64(evStats.TotalCycles)
	finish(&evStats, evTotal, "event")
	rec.Engines["stepper"] = stStats
	rec.Engines["event"] = evStats

	rec.Speedup = stStats.WallMS / evStats.WallMS
	slow := 0
	for _, name := range names {
		row := perWorkload[name]
		row.Speedup = row.StepperMS / row.EventMS
		rec.PerWorkload = append(rec.PerWorkload, *row)
		if *minSpeedup > 0 && row.Speedup < *minSpeedup {
			log.Printf("FAIL: %s event engine speedup %.3fx below floor %.2fx (stepper %.1f ms, event %.1f ms)",
				name, row.Speedup, *minSpeedup, row.StepperMS, row.EventMS)
			slow++
		}
	}
	log.Printf("campaign speedup (event vs stepper): %.2fx", rec.Speedup)

	blob, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)

	if slow > 0 {
		log.Fatalf("%d workload(s) below the per-workload speedup floor", slow)
	}
	if *compare != "" {
		if err := compareAgainst(*compare, rec, *maxRegress); err != nil {
			log.Fatal(err)
		}
	}
}

// compareAgainst diffs the fresh record's aggregate throughput against a
// committed baseline and errors on a regression beyond tolerance.
func compareAgainst(path string, fresh record, tolerance float64) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("compare: %w", err)
	}
	var base record
	if err := json.Unmarshal(blob, &base); err != nil {
		return fmt.Errorf("compare %s: %w", path, err)
	}
	for _, engine := range []string{"stepper", "event"} {
		was := base.Engines[engine].ConfigsPerSec
		now := fresh.Engines[engine].ConfigsPerSec
		if was <= 0 {
			continue
		}
		drop := 1 - now/was
		log.Printf("compare %-7s configs/s: committed %.2f, fresh %.2f (%+.1f%%)",
			engine, was, now, 100*(now/was-1))
		if drop > tolerance {
			return fmt.Errorf("compare: %s engine configs_per_sec regressed %.1f%% (> %.0f%% tolerated) against %s",
				engine, 100*drop, 100*tolerance, path)
		}
	}
	return nil
}
