// Command benchrecord measures the simulation core's two execution
// engines on the Quick-scale Figure 7a campaign (22 single-core
// workloads × 5 mechanisms) and writes the numbers to a JSON file
// (default BENCH_simcore.json), so every PR that touches the hot path
// leaves a comparable data point behind.
//
// Recorded per engine: campaign wall clock, ns per simulated
// megacycle, and sweep throughput (configs/sec); for the event-driven
// engine additionally the fraction of cycles it actually executed.
// The headline "speedup" is stepper wall clock over event wall clock
// for the identical campaign — both engines produce bit-identical
// Results (see internal/sim/differential_test.go), so the comparison
// is pure engine overhead.
//
//	benchrecord                  # full campaign, writes BENCH_simcore.json
//	benchrecord -quick           # 6-workload subset (CI smoke)
//	benchrecord -out bench.json  # alternate output path
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/version"
	"repro/internal/workload"
)

// engineStats summarizes one engine's pass over the campaign.
type engineStats struct {
	WallMS            float64 `json:"wall_ms"`
	SimMegacycles     float64 `json:"sim_megacycles"`
	NsPerMegacycle    float64 `json:"ns_per_megacycle"`
	ConfigsPerSec     float64 `json:"configs_per_sec"`
	ExecutedFraction  float64 `json:"executed_cycle_fraction,omitempty"`
	ExecutedCycles    int64   `json:"executed_cycles"`
	TotalCycles       int64   `json:"total_cycles"`
	InstructionsTotal uint64  `json:"instructions_total"`
}

// workloadRow is the per-workload breakdown (5 configs each).
type workloadRow struct {
	Workload     string  `json:"workload"`
	StepperMS    float64 `json:"stepper_ms"`
	EventMS      float64 `json:"event_ms"`
	Speedup      float64 `json:"speedup"`
	ExecFraction float64 `json:"event_executed_cycle_fraction"`
}

// record is the BENCH_simcore.json schema.
type record struct {
	Generated   string                 `json:"generated"`
	Version     string                 `json:"version"`
	Campaign    string                 `json:"campaign"`
	Scale       string                 `json:"scale"`
	Jobs        int                    `json:"jobs"`
	GoVersion   string                 `json:"go_version"`
	GOOS        string                 `json:"goos"`
	GOARCH      string                 `json:"goarch"`
	GOMAXPROCS  int                    `json:"gomaxprocs"`
	Engines     map[string]engineStats `json:"engines"`
	Speedup     float64                `json:"speedup_event_vs_stepper"`
	PerWorkload []workloadRow          `json:"per_workload"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchrecord: ")

	out := flag.String("out", "BENCH_simcore.json", "output JSON path")
	quick := flag.Bool("quick", false, "run a 6-workload subset instead of the full 22 (CI smoke)")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Printf("benchrecord %s\n", version.String())
		return
	}

	scale := experiments.Quick()
	names := workload.Names()
	if *quick {
		names = names[:6]
	}

	// The Figure 7a per-row config group: baseline plus the four
	// evaluated mechanisms, mirroring experiments.Fig7Single.
	mechs := []sim.MechanismKind{
		sim.Baseline, sim.NUAT, sim.ChargeCache, sim.ChargeCacheNUAT, sim.LLDRAM,
	}
	type job struct {
		workload string
		cfg      sim.Config
	}
	var jobs []job
	for _, name := range names {
		base := sim.DefaultConfig(name)
		base.WarmupInstructions = scale.WarmupInstructions
		base.RunInstructions = scale.RunInstructions
		for _, m := range mechs {
			cfg := base
			cfg.Mechanism = m
			jobs = append(jobs, job{workload: name, cfg: cfg})
		}
	}

	rec := record{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Version:    version.String(),
		Campaign:   "fig7a",
		Scale:      "quick",
		Jobs:       len(jobs),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Engines:    map[string]engineStats{},
	}

	perWorkload := map[string]*workloadRow{}
	for _, name := range names {
		perWorkload[name] = &workloadRow{Workload: name}
	}

	for _, engine := range []string{"stepper", "event"} {
		var st engineStats
		start := time.Now()
		for _, j := range jobs {
			cfg := j.cfg
			cfg.Stepper = engine == "stepper"
			sys, err := sim.New(cfg)
			if err != nil {
				log.Fatal(err)
			}
			jobStart := time.Now()
			res, err := sys.Run()
			if err != nil {
				log.Fatal(err)
			}
			wallMS := float64(time.Since(jobStart)) / float64(time.Millisecond)
			st.TotalCycles += sys.TotalCycles()
			st.ExecutedCycles += sys.ExecutedCycles()
			for _, pc := range res.PerCore {
				st.InstructionsTotal += pc.Instructions
			}
			row := perWorkload[j.workload]
			if engine == "stepper" {
				row.StepperMS += wallMS
			} else {
				row.EventMS += wallMS
				// Running weighted mean over the workload's five configs.
				row.ExecFraction += float64(sys.ExecutedCycles()) / float64(sys.TotalCycles()) / float64(len(mechs))
			}
		}
		elapsed := time.Since(start)
		st.WallMS = float64(elapsed) / float64(time.Millisecond)
		st.SimMegacycles = float64(st.TotalCycles) / 1e6
		st.NsPerMegacycle = float64(elapsed.Nanoseconds()) / st.SimMegacycles
		st.ConfigsPerSec = float64(len(jobs)) / elapsed.Seconds()
		if engine == "event" {
			st.ExecutedFraction = float64(st.ExecutedCycles) / float64(st.TotalCycles)
		}
		rec.Engines[engine] = st
		log.Printf("%-7s %7.0f ms  %8.0f ns/Mcycle  %6.2f configs/s",
			engine, st.WallMS, st.NsPerMegacycle, st.ConfigsPerSec)
	}

	rec.Speedup = rec.Engines["stepper"].WallMS / rec.Engines["event"].WallMS
	for _, name := range names {
		row := perWorkload[name]
		row.Speedup = row.StepperMS / row.EventMS
		rec.PerWorkload = append(rec.PerWorkload, *row)
	}
	log.Printf("campaign speedup (event vs stepper): %.2fx", rec.Speedup)

	blob, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)
}
