package sim

import (
	"os"

	"repro/internal/trace"
	"repro/internal/workload"
)

// writeTestTrace dumps count records of the named workload to path
// (shared test helper).
func writeTestTrace(path, name string, count int) error {
	prof, err := workload.ByName(name)
	if err != nil {
		return err
	}
	gen, err := workload.NewGenerator(prof, 5, 0, 1<<30)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := trace.NewWriter(f)
	for i := 0; i < count; i++ {
		if err := w.Write(gen.Next()); err != nil {
			return err
		}
	}
	return w.Flush()
}
