package sim

import (
	"testing"

	"repro/internal/dram"
)

// TestFullSystemObeysDDR3Protocol attaches the independent protocol
// checker to every channel and runs full workloads under each mechanism:
// the controller must never issue a command a real DDR3 device would
// reject, including lowered-timing activations.
func TestFullSystemObeysDDR3Protocol(t *testing.T) {
	for _, mech := range MechanismKinds() {
		cfg := quickConfig("STREAMcopy", "tpch17")
		cfg.Mechanism = mech
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var checkers []*dram.Checker
		for _, ctrl := range s.ctrls {
			chk := dram.NewChecker(s.spec)
			ctrl.Channel().SetTracer(chk.Observe)
			checkers = append(checkers, chk)
		}
		if _, err := s.Run(); err != nil {
			t.Fatalf("%v: %v", mech, err)
		}
		for ch, chk := range checkers {
			if v := chk.Violations(); len(v) != 0 {
				t.Errorf("%v channel %d: %d protocol violations, first: %s",
					mech, ch, len(v), v[0])
			}
		}
	}
}

// TestFixedRCProtocol repeats the check under the fixed-tRC ablation.
func TestFixedRCProtocol(t *testing.T) {
	cfg := quickConfig("lbm")
	cfg.Mechanism = ChargeCache
	cfg.FixedRC = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	chk := dram.NewChecker(s.spec)
	s.ctrls[0].Channel().SetTracer(chk.Observe)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if v := chk.Violations(); len(v) != 0 {
		t.Errorf("fixed-tRC run: %d violations, first: %s", len(v), v[0])
	}
}

// TestTraceFileRun feeds a dumped synthetic trace back through the
// trace-file path and checks it behaves like a normal run.
func TestTraceFileRun(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/w.trace"
	// Dump a short trace using the generator via tracegen's machinery.
	if err := writeTestTrace(path, "soplex", 4000); err != nil {
		t.Fatal(err)
	}
	cfg := quickConfig("soplex")
	cfg.TraceFiles = []string{path}
	cfg.WarmupInstructions = 5_000
	cfg.RunInstructions = 20_000
	res, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := res.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.PerCore[0].IPC <= 0 {
		t.Errorf("IPC = %g", r.PerCore[0].IPC)
	}
	// Length mismatch must be rejected.
	bad := quickConfig("soplex", "mcf")
	bad.TraceFiles = []string{path}
	if _, err := New(bad); err == nil {
		t.Error("mismatched TraceFiles length accepted")
	}
	// Missing file must be rejected.
	missing := quickConfig("soplex")
	missing.TraceFiles = []string{dir + "/nonesuch.trace"}
	if _, err := New(missing); err == nil {
		t.Error("missing trace file accepted")
	}
}
