package sim

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/power"
	"repro/internal/stats"
)

// CoreResult is one core's measured performance.
type CoreResult struct {
	Workload     string
	Instructions uint64
	Cycles       uint64 // CPU cycles until the instruction target
	IPC          float64
}

// RLTLResult summarizes the Figures 3-4 measurements.
type RLTLResult struct {
	IntervalsMs     []float64
	Fractions       []float64 // t-RLTL per interval
	RefreshFraction float64   // activations within 8 ms of refresh
	Activations     uint64
}

// Result is the outcome of one simulation run.
type Result struct {
	Config Config

	PerCore []CoreResult

	// CPUCycles is the measured-window length (until the last core hit
	// its instruction target).
	CPUCycles uint64

	Mechanism  core.Stats    // aggregated over channels
	Controller memctrl.Stats // aggregated over channels
	LLC        cache.Stats
	Counts     dram.CommandCounts // aggregated over channels
	Energy     power.DRAMEnergy   // aggregated over channels

	RLTL *RLTLResult

	// Analysis carries the perf-analyzer timelines when Config.Analysis
	// enabled them (measured window only; warm-up is discarded).
	Analysis *analysis.Report `json:",omitempty"`

	// Saturated reports the run hit MaxCycles before every core reached
	// its target (results then cover a truncated window).
	Saturated bool
}

// RMPKC returns row misses (activations) per kilo-CPU-cycle over the
// measured window (the Figure 7 intensity metric).
func (r Result) RMPKC() float64 {
	return stats.RMPKC(r.Controller.Activations, r.CPUCycles)
}

// IPCs returns the per-core IPC vector.
func (r Result) IPCs() []float64 {
	out := make([]float64, len(r.PerCore))
	for i, c := range r.PerCore {
		out[i] = c.IPC
	}
	return out
}

// HitRate returns the mechanism hit rate (HCRAC hit rate for
// ChargeCache).
func (r Result) HitRate() float64 { return r.Mechanism.HitRate() }

// Run executes warm-up and the measured window and returns the results.
func (s *System) Run() (Result, error) {
	if s.ran {
		return Result{}, fmt.Errorf("sim: System.Run called twice")
	}
	s.ran = true

	if s.cfg.WarmupInstructions > 0 {
		warmCap := s.cycleCap(s.cfg.WarmupInstructions)
		s.runUntil(s.cfg.WarmupInstructions, warmCap)
		s.resetAfterWarmup()
	}

	capCycles := s.cycleCap(s.cfg.RunInstructions)
	if s.cfg.MaxCycles > 0 {
		capCycles = int64(s.cfg.MaxCycles)
	}
	start := s.nowCPU
	doneAt, saturated := s.runUntil(s.cfg.RunInstructions, capCycles)

	res := Result{
		Config:    s.cfg,
		CPUCycles: uint64(s.nowCPU - start),
		Saturated: saturated,
	}
	for i, c := range s.cores {
		cycles := doneAt[i]
		instr := c.Retired()
		if instr > s.cfg.RunInstructions {
			instr = s.cfg.RunInstructions
		}
		ipc := 0.0
		if cycles > 0 {
			ipc = float64(instr) / float64(cycles)
		}
		res.PerCore = append(res.PerCore, CoreResult{
			Workload:     s.cfg.Workloads[i],
			Instructions: instr,
			Cycles:       uint64(cycles),
			IPC:          ipc,
		})
	}

	busNow := s.nowCPU / int64(s.cfg.ClockRatio)
	currents := power.DDR3Currents()
	for _, ctrl := range s.ctrls {
		cs := ctrl.Stats()
		res.Controller.ReadsServed += cs.ReadsServed
		res.Controller.WritesServed += cs.WritesServed
		res.Controller.ReadLatencySum += cs.ReadLatencySum
		for b := range cs.ReadLatencyHist {
			res.Controller.ReadLatencyHist[b] += cs.ReadLatencyHist[b]
		}
		res.Controller.Activations += cs.Activations
		res.Controller.FastActivations += cs.FastActivations
		res.Controller.RowHits += cs.RowHits
		res.Controller.RowMisses += cs.RowMisses
		res.Controller.RowConflicts += cs.RowConflicts
		res.Controller.Refreshes += cs.Refreshes

		ms := ctrl.Mechanism().Stats()
		res.Mechanism.Lookups += ms.Lookups
		res.Mechanism.Hits += ms.Hits
		res.Mechanism.Inserts += ms.Inserts
		res.Mechanism.Evictions += ms.Evictions
		res.Mechanism.Invalidations += ms.Invalidations

		chDev := ctrl.Channel()
		chDev.SyncAccounting(dram.Cycle(busNow))
		counts := chDev.Counts()
		res.Counts.ACT += counts.ACT
		res.Counts.FastACT += counts.FastACT
		res.Counts.PRE += counts.PRE
		res.Counts.RD += counts.RD
		res.Counts.WR += counts.WR
		res.Counts.REF += counts.REF
		res.Counts.RASCycles += counts.RASCycles

		e, err := power.ComputeDRAMEnergy(s.spec, counts, chDev.Occupancy(), currents)
		if err != nil {
			return Result{}, err
		}
		res.Energy.ActPre += e.ActPre
		res.Energy.Read += e.Read
		res.Energy.Write += e.Write
		res.Energy.Refresh += e.Refresh
		res.Energy.Background += e.Background
	}
	res.LLC = s.llc.Stats()

	if s.collector != nil {
		res.Analysis = s.collector.Report()
	}

	if s.rltl != nil {
		rr := &RLTLResult{
			IntervalsMs:     append([]float64(nil), s.cfg.RLTLIntervalsMs...),
			RefreshFraction: s.rltl.RefreshFraction(),
			Activations:     s.rltl.Activations(),
		}
		for i := range s.cfg.RLTLIntervalsMs {
			rr.Fractions = append(rr.Fractions, s.rltl.Fraction(i))
		}
		res.RLTL = rr
	}
	return res, nil
}

// nowCPU is the master clock in CPU cycles.
// (field lives on System; declared in system.go)

// cycleCap derives a safety cap for an instruction budget: even a fully
// memory-bound core makes progress within ~500 cycles per instruction.
func (s *System) cycleCap(instr uint64) int64 {
	return s.nowCPU + int64(instr)*500 + 50_000_000
}

// runUntil advances the system until every core has retired target
// instructions (since its last reset) or the cycle cap is reached. It
// returns each core's cycle count at its target and whether the cap was
// hit. The work is delegated to one of two engines that produce
// bit-identical results: the event-driven scheduler (default) and the
// cycle-by-cycle reference stepper (Config.Stepper).
func (s *System) runUntil(target uint64, capCycles int64) ([]int64, bool) {
	if s.cfg.Stepper {
		return s.runUntilStepper(target, capCycles)
	}
	return s.runUntilEvents(target, capCycles)
}

// runUntilStepper is the reference execution model: tick every
// component on every CPU cycle (controllers on bus-aligned cycles).
func (s *System) runUntilStepper(target uint64, capCycles int64) ([]int64, bool) {
	n := len(s.cores)
	doneAt := make([]int64, n)
	remaining := n
	start := s.nowCPU
	ratio := int64(s.cfg.ClockRatio)
	for remaining > 0 && s.nowCPU < capCycles {
		now := s.nowCPU
		s.execCycles++
		for _, c := range s.cores {
			c.Tick()
		}
		s.llc.Tick(now)
		if now%ratio == 0 {
			bus := dram.Cycle(now / ratio)
			for _, ctrl := range s.ctrls {
				ctrl.Tick(bus)
			}
		}
		s.nowCPU++
		for i, c := range s.cores {
			if doneAt[i] == 0 && c.Retired() >= target {
				doneAt[i] = s.nowCPU - start
				remaining--
			}
		}
	}
	saturated := remaining > 0
	for i := range doneAt {
		if doneAt[i] == 0 {
			doneAt[i] = s.nowCPU - start
		}
	}
	return doneAt, saturated
}

// runUntilEvents is the event-driven engine: it executes exactly the
// cycles in which some component can change state and jumps the master
// clock across the provably idle stretches in between. Executed cycles
// run the same component sequence as the stepper, so the interleaving
// of core issue, LLC delivery and controller scheduling — and with it
// every Result bit — is identical; skipped cycles are accounted into
// the cores' cycle/stall counters in bulk (see cpu.Core.AdvanceIdle).
func (s *System) runUntilEvents(target uint64, capCycles int64) ([]int64, bool) {
	for _, ctrl := range s.ctrls {
		ctrl.SetEventDriven(true)
	}
	if s.memCtrlWake == nil {
		s.memCtrlWake = make([]int64, len(s.ctrls))
	}
	s.memDirty = true
	if len(s.cores) == 1 && len(s.ctrls) == 1 {
		return s.runUntilEventsSingle(target, capCycles)
	}
	n := len(s.cores)
	doneAt := make([]int64, n)
	remaining := n
	start := s.nowCPU
	ratio := int64(s.cfg.ClockRatio)
	blocked := make([]bool, n)
	for remaining > 0 && s.nowCPU < capCycles {
		now := s.nowCPU
		s.execCycles++
		// Keep the controllers' arrival clock where the stepper would
		// have it: the bus cycle of the last bus-aligned tick before
		// this cycle's core phase.
		if now > 0 {
			bus := dram.Cycle((now - 1) / ratio)
			for _, ctrl := range s.ctrls {
				ctrl.SyncClock(bus)
			}
		}
		for _, c := range s.cores {
			c.Tick()
		}
		// Component ticks are gated on their own event estimates: a tick
		// strictly before a component's NextEvent is a no-op by the
		// estimate's contract (the reference stepper still ticks every
		// cycle), so executed cycles driven by one component skip the
		// others' scheduling work entirely.
		if s.llc.NextEvent() <= now {
			s.llc.Tick(now)
		}
		if now%ratio == 0 {
			bus := dram.Cycle(now / ratio)
			for _, ctrl := range s.ctrls {
				if ctrl.NeedsTick(bus) {
					ctrl.Tick(bus)
					s.memDirty = true
				}
			}
		}
		s.nowCPU = now + 1
		for i, c := range s.cores {
			if doneAt[i] == 0 && c.Retired() >= target {
				doneAt[i] = s.nowCPU - start
				remaining--
			}
		}
		if remaining == 0 {
			break
		}
		s.skipAhead(target, capCycles, blocked)
	}
	saturated := remaining > 0
	for i := range doneAt {
		if doneAt[i] == 0 {
			doneAt[i] = s.nowCPU - start
		}
	}
	s.finishSweeps(ratio)
	return doneAt, saturated
}

// finishSweeps settles deferred classification sweeps at the end of a
// measurement window: the stepper ticks every bus cycle of the window,
// so a sweep deferred to a bus cycle inside it must still be counted,
// and one deferred past it must not be.
func (s *System) finishSweeps(ratio int64) {
	if s.nowCPU == 0 {
		return
	}
	lastBus := dram.Cycle((s.nowCPU - 1) / ratio)
	for _, ctrl := range s.ctrls {
		ctrl.FinishSweeps(lastBus)
	}
}

// runUntilEventsSingle is runUntilEvents specialized for one core and
// one controller — every single-core configuration, including the whole
// benchmark campaign. Identical cycle-for-cycle behaviour; it only
// strips the multi-component loops and scratch slices off the hot path.
func (s *System) runUntilEventsSingle(target uint64, capCycles int64) ([]int64, bool) {
	core := s.cores[0]
	ctrl := s.ctrls[0]
	start := s.nowCPU
	ratio := int64(s.cfg.ClockRatio)
	doneCPU := int64(0)
	for s.nowCPU < capCycles {
		now := s.nowCPU
		s.execCycles++
		if now > 0 {
			ctrl.SyncClock(dram.Cycle((now - 1) / ratio))
		}
		core.Tick()
		if s.llc.NextEvent() <= now {
			s.llc.Tick(now)
		}
		if now%ratio == 0 {
			bus := dram.Cycle(now / ratio)
			if ctrl.NeedsTick(bus) {
				ctrl.Tick(bus)
				s.memDirty = true
			}
		}
		s.nowCPU = now + 1
		if core.Retired() >= target {
			doneCPU = s.nowCPU - start
			break
		}
		s.skipAheadSingle(target, capCycles, core, ctrl, ratio)
	}
	saturated := doneCPU == 0
	if saturated {
		doneCPU = s.nowCPU - start
	}
	s.finishSweeps(ratio)
	return []int64{doneCPU}, saturated
}

// skipAheadSingle is skipAhead for the one-core, one-controller shape.
func (s *System) skipAheadSingle(target uint64, capCycles int64, core *cpu.Core, ctrl *memctrl.Controller, ratio int64) {
	now := s.nowCPU
	bulk := capCycles - now
	if bulk <= 0 {
		return
	}
	if stamp := s.llc.Stamp(); s.memDirty || stamp != s.memStamp {
		s.memStamp = stamp
		s.memDirty = false
		s.memLLCWake = s.llc.NextEvent()
		s.memCtrlWake[0] = int64(ctrl.NextEvent())
	}
	if e := s.memLLCWake; e-now < bulk {
		bulk = e - now
		if bulk <= 0 {
			return
		}
	}
	if ev := s.memCtrlWake[0]; ev < int64(dram.NoEvent) {
		w := ev * ratio
		if w < now {
			w = (now + ratio - 1) / ratio * ratio
		}
		if w-now < bulk {
			bulk = w - now
			if bulk <= 0 {
				return
			}
		}
	}
	if bulk == 1 {
		return
	}
	isBlocked, pure := core.SkipBudget(target, bulk)
	if !isBlocked {
		if pure <= 0 {
			return
		}
		if pure < bulk {
			bulk = pure
		}
		core.RunAhead(bulk)
	} else {
		core.AdvanceIdle(bulk)
	}
	s.nowCPU = now + bulk
}

// skipAhead jumps s.nowCPU past cycles that are provably no-ops for
// every component: the next executed cycle is bounded by the earliest
// LLC delivery, the earliest controller event (aligned to the CPU:bus
// clock ratio), the cycle cap, and each core's own skip budget. Cores
// consume the jump either as accounted idle time (blocked on memory)
// or as bulk bubble flow (RunAhead); both are bit-identical to ticking
// them cycle by cycle.
func (s *System) skipAhead(target uint64, capCycles int64, blocked []bool) {
	now := s.nowCPU // first not-yet-executed cycle
	bulk := capCycles - now
	if bulk <= 0 {
		return
	}
	// Timed horizons first: they cap how far the cores' budget checks
	// need to look. The component estimates move only when the LLC was
	// accessed or ticked (its stamp) or a controller ticked (memDirty) —
	// enqueues always ride an LLC access — so executed cycles without
	// memory activity reuse the horizon snapshot wholesale. A snapshot
	// taken while a controller had fresh arrivals can only be earlier
	// than the live estimate, which at worst wakes a no-op cycle.
	if stamp := s.llc.Stamp(); s.memDirty || stamp != s.memStamp {
		s.memStamp = stamp
		s.memDirty = false
		s.memLLCWake = s.llc.NextEvent()
		for i, ctrl := range s.ctrls {
			s.memCtrlWake[i] = int64(ctrl.NextEvent())
		}
	}
	if e := s.memLLCWake; e-now < bulk {
		bulk = e - now
		if bulk <= 0 {
			return
		}
	}
	ratio := int64(s.cfg.ClockRatio)
	for _, ev := range s.memCtrlWake {
		if ev >= int64(dram.NoEvent) {
			continue
		}
		w := ev * ratio
		if w < now {
			// Overdue relative to a stale controller clock: the next
			// bus-aligned cycle is the earliest it can be serviced.
			w = (now + ratio - 1) / ratio * ratio
		}
		if w-now < bulk {
			bulk = w - now
			if bulk <= 0 {
				return
			}
		}
	}
	if bulk == 1 {
		// A one-cycle jump saves nothing: executing the cycle costs less
		// than the per-core budget queries and bulk-advance calls, and
		// executing a skippable cycle is always bit-identical (the skip
		// is an optimization, never a requirement).
		return
	}
	if len(s.cores) == 1 {
		c := s.cores[0]
		isBlocked, pure := c.SkipBudget(target, bulk)
		if !isBlocked {
			if pure <= 0 {
				return
			}
			if pure < bulk {
				bulk = pure
			}
			c.RunAhead(bulk)
		} else {
			c.AdvanceIdle(bulk)
		}
		s.nowCPU = now + bulk
		return
	}
	for i, c := range s.cores {
		isBlocked, pure := c.SkipBudget(target, bulk)
		blocked[i] = isBlocked
		if !isBlocked && pure < bulk {
			bulk = pure
			if bulk <= 0 {
				return
			}
		}
	}
	for i, c := range s.cores {
		if blocked[i] {
			c.AdvanceIdle(bulk)
		} else {
			c.RunAhead(bulk)
		}
	}
	s.nowCPU = now + bulk
}

// resetAfterWarmup clears all statistics while keeping architectural
// state (caches, HCRAC contents, open rows).
func (s *System) resetAfterWarmup() {
	for _, c := range s.cores {
		c.ResetStats()
	}
	s.llc.ResetStats()
	busNow := dram.Cycle(s.nowCPU / int64(s.cfg.ClockRatio))
	for _, ctrl := range s.ctrls {
		ctrl.ResetStats()
		ctrl.Mechanism().ResetStats()
		ctrl.Channel().ResetAccounting(busNow)
	}
	if s.rltl != nil {
		s.rltl.Reset()
	}
	if s.collector != nil {
		s.collector.Reset()
	}
}
