package sim

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/power"
	"repro/internal/stats"
)

// CoreResult is one core's measured performance.
type CoreResult struct {
	Workload     string
	Instructions uint64
	Cycles       uint64 // CPU cycles until the instruction target
	IPC          float64
}

// RLTLResult summarizes the Figures 3-4 measurements.
type RLTLResult struct {
	IntervalsMs     []float64
	Fractions       []float64 // t-RLTL per interval
	RefreshFraction float64   // activations within 8 ms of refresh
	Activations     uint64
}

// Result is the outcome of one simulation run.
type Result struct {
	Config Config

	PerCore []CoreResult

	// CPUCycles is the measured-window length (until the last core hit
	// its instruction target).
	CPUCycles uint64

	Mechanism  core.Stats    // aggregated over channels
	Controller memctrl.Stats // aggregated over channels
	LLC        cache.Stats
	Counts     dram.CommandCounts // aggregated over channels
	Energy     power.DRAMEnergy   // aggregated over channels

	RLTL *RLTLResult

	// Saturated reports the run hit MaxCycles before every core reached
	// its target (results then cover a truncated window).
	Saturated bool
}

// RMPKC returns row misses (activations) per kilo-CPU-cycle over the
// measured window (the Figure 7 intensity metric).
func (r Result) RMPKC() float64 {
	return stats.RMPKC(r.Controller.Activations, r.CPUCycles)
}

// IPCs returns the per-core IPC vector.
func (r Result) IPCs() []float64 {
	out := make([]float64, len(r.PerCore))
	for i, c := range r.PerCore {
		out[i] = c.IPC
	}
	return out
}

// HitRate returns the mechanism hit rate (HCRAC hit rate for
// ChargeCache).
func (r Result) HitRate() float64 { return r.Mechanism.HitRate() }

// Run executes warm-up and the measured window and returns the results.
func (s *System) Run() (Result, error) {
	if s.ran {
		return Result{}, fmt.Errorf("sim: System.Run called twice")
	}
	s.ran = true

	if s.cfg.WarmupInstructions > 0 {
		warmCap := s.cycleCap(s.cfg.WarmupInstructions)
		s.runUntil(s.cfg.WarmupInstructions, warmCap)
		s.resetAfterWarmup()
	}

	capCycles := s.cycleCap(s.cfg.RunInstructions)
	if s.cfg.MaxCycles > 0 {
		capCycles = int64(s.cfg.MaxCycles)
	}
	start := s.nowCPU
	doneAt, saturated := s.runUntil(s.cfg.RunInstructions, capCycles)

	res := Result{
		Config:    s.cfg,
		CPUCycles: uint64(s.nowCPU - start),
		Saturated: saturated,
	}
	for i, c := range s.cores {
		cycles := doneAt[i]
		instr := c.Retired()
		if instr > s.cfg.RunInstructions {
			instr = s.cfg.RunInstructions
		}
		ipc := 0.0
		if cycles > 0 {
			ipc = float64(instr) / float64(cycles)
		}
		res.PerCore = append(res.PerCore, CoreResult{
			Workload:     s.cfg.Workloads[i],
			Instructions: instr,
			Cycles:       uint64(cycles),
			IPC:          ipc,
		})
	}

	busNow := s.nowCPU / int64(s.cfg.ClockRatio)
	currents := power.DDR3Currents()
	for _, ctrl := range s.ctrls {
		cs := ctrl.Stats()
		res.Controller.ReadsServed += cs.ReadsServed
		res.Controller.WritesServed += cs.WritesServed
		res.Controller.ReadLatencySum += cs.ReadLatencySum
		for b := range cs.ReadLatencyHist {
			res.Controller.ReadLatencyHist[b] += cs.ReadLatencyHist[b]
		}
		res.Controller.Activations += cs.Activations
		res.Controller.FastActivations += cs.FastActivations
		res.Controller.RowHits += cs.RowHits
		res.Controller.RowMisses += cs.RowMisses
		res.Controller.RowConflicts += cs.RowConflicts
		res.Controller.Refreshes += cs.Refreshes

		ms := ctrl.Mechanism().Stats()
		res.Mechanism.Lookups += ms.Lookups
		res.Mechanism.Hits += ms.Hits
		res.Mechanism.Inserts += ms.Inserts
		res.Mechanism.Evictions += ms.Evictions
		res.Mechanism.Invalidations += ms.Invalidations

		chDev := ctrl.Channel()
		chDev.SyncAccounting(dram.Cycle(busNow))
		counts := chDev.Counts()
		res.Counts.ACT += counts.ACT
		res.Counts.FastACT += counts.FastACT
		res.Counts.PRE += counts.PRE
		res.Counts.RD += counts.RD
		res.Counts.WR += counts.WR
		res.Counts.REF += counts.REF
		res.Counts.RASCycles += counts.RASCycles

		e, err := power.ComputeDRAMEnergy(s.spec, counts, chDev.Occupancy(), currents)
		if err != nil {
			return Result{}, err
		}
		res.Energy.ActPre += e.ActPre
		res.Energy.Read += e.Read
		res.Energy.Write += e.Write
		res.Energy.Refresh += e.Refresh
		res.Energy.Background += e.Background
	}
	res.LLC = s.llc.Stats()

	if s.rltl != nil {
		rr := &RLTLResult{
			IntervalsMs:     append([]float64(nil), s.cfg.RLTLIntervalsMs...),
			RefreshFraction: s.rltl.RefreshFraction(),
			Activations:     s.rltl.Activations(),
		}
		for i := range s.cfg.RLTLIntervalsMs {
			rr.Fractions = append(rr.Fractions, s.rltl.Fraction(i))
		}
		res.RLTL = rr
	}
	return res, nil
}

// nowCPU is the master clock in CPU cycles.
// (field lives on System; declared in system.go)

// cycleCap derives a safety cap for an instruction budget: even a fully
// memory-bound core makes progress within ~500 cycles per instruction.
func (s *System) cycleCap(instr uint64) int64 {
	return s.nowCPU + int64(instr)*500 + 50_000_000
}

// runUntil advances the system until every core has retired target
// instructions (since its last reset) or the cycle cap is reached. It
// returns each core's cycle count at its target and whether the cap was
// hit. The work is delegated to one of two engines that produce
// bit-identical results: the event-driven scheduler (default) and the
// cycle-by-cycle reference stepper (Config.Stepper).
func (s *System) runUntil(target uint64, capCycles int64) ([]int64, bool) {
	if s.cfg.Stepper {
		return s.runUntilStepper(target, capCycles)
	}
	return s.runUntilEvents(target, capCycles)
}

// runUntilStepper is the reference execution model: tick every
// component on every CPU cycle (controllers on bus-aligned cycles).
func (s *System) runUntilStepper(target uint64, capCycles int64) ([]int64, bool) {
	n := len(s.cores)
	doneAt := make([]int64, n)
	remaining := n
	start := s.nowCPU
	ratio := int64(s.cfg.ClockRatio)
	for remaining > 0 && s.nowCPU < capCycles {
		now := s.nowCPU
		s.execCycles++
		for _, c := range s.cores {
			c.Tick()
		}
		s.llc.Tick(now)
		if now%ratio == 0 {
			bus := dram.Cycle(now / ratio)
			for _, ctrl := range s.ctrls {
				ctrl.Tick(bus)
			}
		}
		s.nowCPU++
		for i, c := range s.cores {
			if doneAt[i] == 0 && c.Retired() >= target {
				doneAt[i] = s.nowCPU - start
				remaining--
			}
		}
	}
	saturated := remaining > 0
	for i := range doneAt {
		if doneAt[i] == 0 {
			doneAt[i] = s.nowCPU - start
		}
	}
	return doneAt, saturated
}

// runUntilEvents is the event-driven engine: it executes exactly the
// cycles in which some component can change state and jumps the master
// clock across the provably idle stretches in between. Executed cycles
// run the same component sequence as the stepper, so the interleaving
// of core issue, LLC delivery and controller scheduling — and with it
// every Result bit — is identical; skipped cycles are accounted into
// the cores' cycle/stall counters in bulk (see cpu.Core.AdvanceIdle).
func (s *System) runUntilEvents(target uint64, capCycles int64) ([]int64, bool) {
	n := len(s.cores)
	doneAt := make([]int64, n)
	remaining := n
	start := s.nowCPU
	ratio := int64(s.cfg.ClockRatio)
	blocked := make([]bool, n)
	for remaining > 0 && s.nowCPU < capCycles {
		now := s.nowCPU
		s.execCycles++
		// Keep the controllers' arrival clock where the stepper would
		// have it: the bus cycle of the last bus-aligned tick before
		// this cycle's core phase.
		if now > 0 {
			bus := dram.Cycle((now - 1) / ratio)
			for _, ctrl := range s.ctrls {
				ctrl.SyncClock(bus)
			}
		}
		for _, c := range s.cores {
			c.Tick()
		}
		s.llc.Tick(now)
		if now%ratio == 0 {
			bus := dram.Cycle(now / ratio)
			for _, ctrl := range s.ctrls {
				ctrl.Tick(bus)
			}
		}
		s.nowCPU = now + 1
		for i, c := range s.cores {
			if doneAt[i] == 0 && c.Retired() >= target {
				doneAt[i] = s.nowCPU - start
				remaining--
			}
		}
		if remaining == 0 {
			break
		}
		s.skipAhead(target, capCycles, blocked)
	}
	saturated := remaining > 0
	for i := range doneAt {
		if doneAt[i] == 0 {
			doneAt[i] = s.nowCPU - start
		}
	}
	return doneAt, saturated
}

// skipAhead jumps s.nowCPU past cycles that are provably no-ops for
// every component: the next executed cycle is bounded by the earliest
// LLC delivery, the earliest controller event (aligned to the CPU:bus
// clock ratio), the cycle cap, and each core's own skip budget. Cores
// consume the jump either as accounted idle time (blocked on memory)
// or as bulk bubble flow (RunAhead); both are bit-identical to ticking
// them cycle by cycle.
func (s *System) skipAhead(target uint64, capCycles int64, blocked []bool) {
	now := s.nowCPU // first not-yet-executed cycle
	bulk := capCycles - now
	if bulk <= 0 {
		return
	}
	// Timed horizons first: the LLC and controller estimates are cached
	// or O(1), and bounding the jump early caps how far the cores'
	// budget checks need to look.
	if e := s.llc.NextEvent(); e-now < bulk {
		bulk = e - now
		if bulk <= 0 {
			return
		}
	}
	ratio := int64(s.cfg.ClockRatio)
	for _, ctrl := range s.ctrls {
		ev := int64(ctrl.NextEvent())
		if ev >= int64(dram.NoEvent) {
			continue
		}
		w := ev * ratio
		if w < now {
			// Overdue relative to a stale controller clock: the next
			// bus-aligned cycle is the earliest it can be serviced.
			w = (now + ratio - 1) / ratio * ratio
		}
		if w-now < bulk {
			bulk = w - now
			if bulk <= 0 {
				return
			}
		}
	}
	for i, c := range s.cores {
		isBlocked, pure := c.SkipBudget(target, bulk)
		blocked[i] = isBlocked
		if !isBlocked && pure < bulk {
			bulk = pure
			if bulk <= 0 {
				return
			}
		}
	}
	for i, c := range s.cores {
		if blocked[i] {
			c.AdvanceIdle(bulk)
		} else {
			c.RunAhead(bulk)
		}
	}
	s.nowCPU = now + bulk
}

// resetAfterWarmup clears all statistics while keeping architectural
// state (caches, HCRAC contents, open rows).
func (s *System) resetAfterWarmup() {
	for _, c := range s.cores {
		c.ResetStats()
	}
	s.llc.ResetStats()
	busNow := dram.Cycle(s.nowCPU / int64(s.cfg.ClockRatio))
	for _, ctrl := range s.ctrls {
		ctrl.ResetStats()
		ctrl.Mechanism().ResetStats()
		ctrl.Channel().ResetAccounting(busNow)
	}
	if s.rltl != nil {
		s.rltl.Reset()
	}
}
