package sim

import (
	"testing"

	"repro/internal/analysis"
)

// The engine benchmarks below run one representative workload config
// end to end under each engine, so per-workload regressions show up
// without the full campaign (cmd/benchrecord measures that). The
// workloads bracket the spectrum: tpch6 is low-MPKI (the event engine's
// best case), tpch17 and STREAMcopy are the memory-intensive tail that
// bounds campaign throughput.
func benchEngine(b *testing.B, workload string, stepper bool) {
	benchEngineAnalysis(b, workload, stepper, nil)
}

func benchEngineAnalysis(b *testing.B, workload string, stepper bool, an *analysis.Config) {
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig(workload)
		cfg.WarmupInstructions = 0
		cfg.RunInstructions = 300_000
		cfg.Stepper = stepper
		cfg.Analysis = an
		sys, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineEventSTREAMcopy(b *testing.B)   { benchEngine(b, "STREAMcopy", false) }
func BenchmarkEngineStepperSTREAMcopy(b *testing.B) { benchEngine(b, "STREAMcopy", true) }
func BenchmarkEngineEventTpch17(b *testing.B)       { benchEngine(b, "tpch17", false) }
func BenchmarkEngineStepperTpch17(b *testing.B)     { benchEngine(b, "tpch17", true) }
func BenchmarkEngineEventTpch6(b *testing.B)        { benchEngine(b, "tpch6", false) }
func BenchmarkEngineStepperTpch6(b *testing.B)      { benchEngine(b, "tpch6", true) }

// The analysis-enabled variants measure the perf-analyzer's worst-case
// overhead (memory-intensive workload, every probe firing). Compare
// against BenchmarkEngineEventSTREAMcopy; the disabled path is the same
// benchmark with Analysis nil, and the delta there must stay within
// noise — the probe sites reduce to one nil check each.
func BenchmarkEngineEventAnalysisSTREAMcopy(b *testing.B) {
	benchEngineAnalysis(b, "STREAMcopy", false, &analysis.Config{Enabled: true})
}

func BenchmarkEngineEventAnalysisTpch17(b *testing.B) {
	benchEngineAnalysis(b, "tpch17", false, &analysis.Config{Enabled: true})
}

// BenchmarkSystemNew measures simulation construction: campaigns build
// one System per config, so construction cost dilutes both engines'
// throughput equally (the circuit-model and Zipf-table caches keep it
// off the numeric-integration path).
func BenchmarkSystemNew(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig("tpch6")
		cfg.RunInstructions = 1
		if _, err := New(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
