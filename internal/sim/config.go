// Package sim assembles the full evaluated system — trace-driven cores,
// shared LLC, per-channel memory controllers with a latency mechanism,
// and the DDR3 device model — and runs it to produce the measurements
// the paper reports (IPC, weighted speedup, RMPKC, hit rates, DRAM
// energy, RLTL).
package sim

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/memctrl"
)

// MechanismKind selects the activation-latency mechanism under test.
type MechanismKind uint8

const (
	// Baseline is commodity DDR3.
	Baseline MechanismKind = iota
	// ChargeCache is the paper's proposal.
	ChargeCache
	// NUAT is the HPCA'14 comparison point.
	NUAT
	// ChargeCacheNUAT combines both.
	ChargeCacheNUAT
	// LLDRAM is the idealized 100%-hit-rate bound.
	LLDRAM
	// Custom delegates to Config.CustomMechanism.
	Custom
)

// String implements fmt.Stringer.
func (k MechanismKind) String() string {
	switch k {
	case Baseline:
		return "Baseline"
	case ChargeCache:
		return "ChargeCache"
	case NUAT:
		return "NUAT"
	case ChargeCacheNUAT:
		return "ChargeCache+NUAT"
	case LLDRAM:
		return "LL-DRAM"
	case Custom:
		return "Custom"
	default:
		return fmt.Sprintf("MechanismKind(%d)", uint8(k))
	}
}

// MechanismKinds lists all evaluated mechanisms in presentation order.
func MechanismKinds() []MechanismKind {
	return []MechanismKind{Baseline, NUAT, ChargeCache, ChargeCacheNUAT, LLDRAM}
}

// Config describes one simulation (Table 1 defaults via DefaultConfig).
type Config struct {
	// Workloads names one workload per core.
	Workloads []string

	// TraceFiles, if non-empty, gives one Ramulator-format cpu trace
	// file per core, used instead of the synthetic generator for that
	// core (an empty string keeps the generator). Must match Workloads
	// in length; traces loop when exhausted.
	TraceFiles []string

	// Channels is the memory channel count (Table 1: 1 for single-core,
	// 2 for eight-core).
	Channels int

	// Standard selects the DRAM standard: "ddr3" (default), "lpddr3" or
	// "ddr3l" (Section 7.2: ChargeCache applies to any DDR-derived
	// interface unchanged).
	Standard string

	// RowPolicy is the row-buffer policy (paper: open-row single-core,
	// closed-row multi-core).
	RowPolicy memctrl.RowPolicy

	Mechanism MechanismKind

	// ChargeCache parameters.
	CCEntriesPerCore int     // HCRAC entries per core (128)
	CCAssoc          int     // 2
	CCDurationMs     float64 // caching duration (1 ms)
	CCUnlimited      bool    // unbounded HCRAC (Figure 9 dashed lines)
	CCInvalidation   core.InvalidationPolicy

	// Instruction budgets, per core.
	WarmupInstructions uint64
	RunInstructions    uint64

	// MaxCycles caps the run (CPU cycles; 0 = derived from budgets).
	MaxCycles uint64

	Seed uint64

	// LLC configuration (zero value = Table 1 defaults).
	LLC cache.Config

	// ClockRatio is CPU cycles per DRAM bus cycle (4 GHz / 800 MHz = 5).
	ClockRatio int

	// TrackRLTL enables the Figures 3-4 tracker (adds overhead).
	TrackRLTL bool
	// RLTLIntervalsMs are the tracked intervals (default: the paper's
	// 0.125, 0.25, 0.5, 1, 8, 32 ms).
	RLTLIntervalsMs []float64
	// RLTLRefreshMs is the refresh-distance threshold (8 ms).
	RLTLRefreshMs float64

	// MapperOrder is the address interleaving (default RoBaRaCoCh).
	MapperOrder string

	// FixedRC keeps the spec tRC for every timing class instead of the
	// restore-bounded class tRAS + tRP (ablation; see DESIGN.md §4).
	FixedRC bool

	// Stepper selects the legacy cycle-by-cycle execution engine
	// instead of the default event-driven scheduler. Both produce
	// bit-identical Results (the differential suite in
	// internal/sim/differential_test.go enforces it); the stepper is
	// kept as the reference model and for debugging, at roughly an
	// order of magnitude more wall clock on memory-bound configs.
	// key: omitempty aliases false with absence so default configs keep
	// their historical sweep-cache keys; both engines are bit-identical,
	// so the engine choice can never invalidate a cached Result.
	Stepper bool `json:",omitempty"`

	// Analysis, when non-nil with Enabled set, attaches the perf-analyzer
	// probes (internal/analysis) and populates Result.Analysis with
	// epoch-bucketed bank/queue/row-outcome/ChargeCache timelines.
	// key: pointer-with-omitempty so default configs keep their
	// historical sweep-cache keys; the probes never change simulated
	// behaviour (the differential suite runs with analysis on and off),
	// and non-nil configs still feed the digest.
	Analysis *analysis.Config `json:",omitempty"`

	// CustomMechanism builds the per-channel mechanism when Mechanism is
	// Custom. It receives the channel index, the device spec, and the
	// lowered/default timing classes derived from the circuit model for
	// the configured caching duration.
	// key: arbitrary code cannot be content-addressed; sweep.Key rejects
	// configs that set it, so a custom mechanism can never serve a stale
	// cached Result — such configs are simply not cacheable.
	CustomMechanism func(channel int, spec dram.Spec, fast, def dram.TimingClass) (core.Mechanism, error) `json:"-"`
}

// DefaultConfig returns the Table 1 system for the given per-core
// workloads: open-row with one channel for a single core, closed-row
// with two channels otherwise.
func DefaultConfig(workloads ...string) Config {
	cfg := Config{
		Workloads:          workloads,
		Channels:           2,
		RowPolicy:          memctrl.ClosedRow,
		Mechanism:          Baseline,
		CCEntriesPerCore:   128,
		CCAssoc:            2,
		CCDurationMs:       1,
		WarmupInstructions: 100_000,
		RunInstructions:    1_000_000,
		Seed:               1,
		LLC: cache.Config{
			SizeBytes:  4 << 20,
			Ways:       16,
			LineBytes:  64,
			HitLatency: 26,
			MSHRs:      32,
		},
		ClockRatio:      5,
		RLTLIntervalsMs: []float64{0.125, 0.25, 0.5, 1, 8, 32},
		RLTLRefreshMs:   8,
		MapperOrder:     "RoBaRaCoCh",
	}
	if len(workloads) == 1 {
		cfg.Channels = 1
		cfg.RowPolicy = memctrl.OpenRow
	}
	return cfg
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if len(c.Workloads) == 0 {
		return fmt.Errorf("sim: need at least one workload")
	}
	if len(c.TraceFiles) != 0 && len(c.TraceFiles) != len(c.Workloads) {
		return fmt.Errorf("sim: %d trace files for %d workloads", len(c.TraceFiles), len(c.Workloads))
	}
	if c.Channels <= 0 || c.Channels&(c.Channels-1) != 0 {
		return fmt.Errorf("sim: channels must be a positive power of two, got %d", c.Channels)
	}
	if c.CCEntriesPerCore <= 0 || c.CCAssoc <= 0 {
		return fmt.Errorf("sim: ChargeCache entries/assoc must be positive")
	}
	if c.CCDurationMs <= 0 {
		return fmt.Errorf("sim: caching duration must be positive")
	}
	if c.RunInstructions == 0 {
		return fmt.Errorf("sim: RunInstructions must be positive")
	}
	if c.Mechanism == Custom && c.CustomMechanism == nil {
		return fmt.Errorf("sim: Custom mechanism requires CustomMechanism")
	}
	if c.ClockRatio <= 0 {
		return fmt.Errorf("sim: clock ratio must be positive")
	}
	if err := c.LLC.Validate(); err != nil {
		return err
	}
	if c.Analysis != nil {
		if err := c.Analysis.Validate(); err != nil {
			return err
		}
	}
	return nil
}
