package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/memctrl"
)

// quickConfig returns a small configuration that runs in well under a
// second, for tests.
func quickConfig(workloads ...string) Config {
	cfg := DefaultConfig(workloads...)
	cfg.WarmupInstructions = 20_000
	cfg.RunInstructions = 60_000
	return cfg
}

func mustRun(t *testing.T, cfg Config) Result {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Saturated {
		t.Fatalf("run saturated: %+v", res.Config)
	}
	return res
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	bad := quickConfig("mcf")
	bad.Channels = 3
	if _, err := New(bad); err == nil {
		t.Error("non-power-of-two channels accepted")
	}
	bad = quickConfig("mcf")
	bad.RunInstructions = 0
	if _, err := New(bad); err == nil {
		t.Error("zero instructions accepted")
	}
	bad = quickConfig("nonesuch")
	if _, err := New(bad); err == nil {
		t.Error("unknown workload accepted")
	}
	bad = quickConfig("mcf")
	bad.CCDurationMs = 0
	if _, err := New(bad); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestDefaultConfigMatchesTable1(t *testing.T) {
	single := DefaultConfig("mcf")
	if single.Channels != 1 || single.RowPolicy != memctrl.OpenRow {
		t.Errorf("single-core defaults: %d channels, %v", single.Channels, single.RowPolicy)
	}
	multi := DefaultConfig("mcf", "lbm", "sjeng", "astar", "milc", "tonto", "bzip2", "soplex")
	if multi.Channels != 2 || multi.RowPolicy != memctrl.ClosedRow {
		t.Errorf("8-core defaults: %d channels, %v", multi.Channels, multi.RowPolicy)
	}
	if multi.LLC.SizeBytes != 4<<20 || multi.LLC.Ways != 16 {
		t.Errorf("LLC defaults: %+v", multi.LLC)
	}
	if multi.CCEntriesPerCore != 128 || multi.CCAssoc != 2 || multi.CCDurationMs != 1 {
		t.Errorf("ChargeCache defaults: %+v", multi)
	}
	if multi.ClockRatio != 5 {
		t.Errorf("clock ratio = %d", multi.ClockRatio)
	}
}

func TestSingleCoreRunProducesSaneResult(t *testing.T) {
	res := mustRun(t, quickConfig("libquantum"))
	if len(res.PerCore) != 1 {
		t.Fatalf("per-core results = %d", len(res.PerCore))
	}
	pc := res.PerCore[0]
	if pc.Workload != "libquantum" || pc.Instructions != 60_000 {
		t.Errorf("per-core = %+v", pc)
	}
	if pc.IPC <= 0 || pc.IPC > 3 {
		t.Errorf("IPC = %g out of (0,3]", pc.IPC)
	}
	if res.Controller.ReadsServed == 0 || res.Controller.Activations == 0 {
		t.Errorf("no DRAM activity: %+v", res.Controller)
	}
	if res.Counts.ACT == 0 || res.Counts.RD == 0 {
		t.Errorf("channel counts empty: %+v", res.Counts)
	}
	if res.Energy.Total() <= 0 {
		t.Error("energy not positive")
	}
	if res.RMPKC() <= 0 {
		t.Error("RMPKC not positive")
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := mustRun(t, quickConfig("omnetpp"))
	b := mustRun(t, quickConfig("omnetpp"))
	if a.PerCore[0].Cycles != b.PerCore[0].Cycles {
		t.Errorf("cycles differ: %d vs %d", a.PerCore[0].Cycles, b.PerCore[0].Cycles)
	}
	if a.Controller.Activations != b.Controller.Activations {
		t.Error("activations differ between identical runs")
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	cfg := quickConfig("omnetpp")
	a := mustRun(t, cfg)
	cfg2 := quickConfig("omnetpp")
	cfg2.Seed = 999
	b := mustRun(t, cfg2)
	if a.PerCore[0].Cycles == b.PerCore[0].Cycles && a.Controller.Activations == b.Controller.Activations {
		t.Error("different seeds produced identical runs")
	}
}

func TestChargeCacheNeverSlower(t *testing.T) {
	// The paper: "As ChargeCache can only reduce the latency of certain
	// accesses, it does not degrade performance."
	for _, name := range []string{"libquantum", "tpch17", "lbm"} {
		base := mustRun(t, quickConfig(name))
		cc := quickConfig(name)
		cc.Mechanism = ChargeCache
		r := mustRun(t, cc)
		if r.PerCore[0].IPC < base.PerCore[0].IPC*0.995 {
			t.Errorf("%s: ChargeCache IPC %.4f below baseline %.4f",
				name, r.PerCore[0].IPC, base.PerCore[0].IPC)
		}
	}
}

func TestLLDRAMIsUpperBound(t *testing.T) {
	name := "lbm"
	cc := quickConfig(name)
	cc.Mechanism = ChargeCache
	ll := quickConfig(name)
	ll.Mechanism = LLDRAM
	rcc := mustRun(t, cc)
	rll := mustRun(t, ll)
	if rll.PerCore[0].IPC < rcc.PerCore[0].IPC*0.998 {
		t.Errorf("LL-DRAM IPC %.4f below ChargeCache %.4f", rll.PerCore[0].IPC, rcc.PerCore[0].IPC)
	}
	if rll.HitRate() != 1 {
		t.Errorf("LL-DRAM hit rate = %g", rll.HitRate())
	}
}

func TestChargeCacheSpeedsUpHighRLTLWorkload(t *testing.T) {
	base := mustRun(t, quickConfig("lbm"))
	cc := quickConfig("lbm")
	cc.Mechanism = ChargeCache
	r := mustRun(t, cc)
	if r.PerCore[0].IPC <= base.PerCore[0].IPC {
		t.Errorf("no speedup on lbm: %.4f vs %.4f", r.PerCore[0].IPC, base.PerCore[0].IPC)
	}
	if r.Controller.FastActivations == 0 {
		t.Error("no fast activations recorded")
	}
	if r.Counts.FastACT == 0 {
		t.Error("channel saw no fast ACTs")
	}
}

func TestMechanismKindsAndStrings(t *testing.T) {
	kinds := MechanismKinds()
	if len(kinds) != 5 {
		t.Fatalf("kinds = %d", len(kinds))
	}
	want := map[MechanismKind]string{
		Baseline: "Baseline", ChargeCache: "ChargeCache", NUAT: "NUAT",
		ChargeCacheNUAT: "ChargeCache+NUAT", LLDRAM: "LL-DRAM",
	}
	for k, w := range want {
		if k.String() != w {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if MechanismKind(99).String() == "" {
		t.Error("unknown kind string empty")
	}
}

func TestAllMechanismsRun(t *testing.T) {
	for _, k := range MechanismKinds() {
		cfg := quickConfig("tpch17")
		cfg.Mechanism = k
		res := mustRun(t, cfg)
		if res.PerCore[0].IPC <= 0 {
			t.Errorf("%v: IPC = %g", k, res.PerCore[0].IPC)
		}
	}
}

func TestMultiCoreRun(t *testing.T) {
	cfg := quickConfig("libquantum", "mcf", "lbm", "sjeng")
	cfg.Mechanism = ChargeCache
	res := mustRun(t, cfg)
	if len(res.PerCore) != 4 {
		t.Fatalf("per-core = %d", len(res.PerCore))
	}
	for i, pc := range res.PerCore {
		if pc.IPC <= 0 {
			t.Errorf("core %d IPC = %g", i, pc.IPC)
		}
	}
	if len(res.IPCs()) != 4 {
		t.Error("IPCs() wrong length")
	}
}

func TestRLTLTracking(t *testing.T) {
	cfg := quickConfig("STREAMcopy")
	// RLTL needs a warm LLC: cold-miss streams are row hits, not
	// conflicts, so the conflict-driven locality only appears once
	// evictions and writebacks flow.
	cfg.WarmupInstructions = 1_500_000
	cfg.RunInstructions = 500_000
	cfg.TrackRLTL = true
	res := mustRun(t, cfg)
	if res.RLTL == nil {
		t.Fatal("RLTL result missing")
	}
	if len(res.RLTL.Fractions) != len(cfg.RLTLIntervalsMs) {
		t.Fatalf("fractions = %d", len(res.RLTL.Fractions))
	}
	// Fractions are cumulative in the interval: wider interval >= narrower.
	for i := 1; i < len(res.RLTL.Fractions); i++ {
		if res.RLTL.Fractions[i] < res.RLTL.Fractions[i-1] {
			t.Errorf("RLTL not monotone at %d: %v", i, res.RLTL.Fractions)
		}
	}
	// STREAMcopy interleaves streams in the same bank: high RLTL.
	if res.RLTL.Fractions[0] < 0.5 {
		t.Errorf("STREAMcopy 0.125ms-RLTL = %g, want high", res.RLTL.Fractions[0])
	}
	// Without tracking, no RLTL result.
	cfg2 := quickConfig("STREAMcopy")
	if r2 := mustRun(t, cfg2); r2.RLTL != nil {
		t.Error("RLTL present without tracking")
	}
}

func TestUnlimitedChargeCacheHitRateAtLeastBounded(t *testing.T) {
	bounded := quickConfig("tpch17")
	bounded.Mechanism = ChargeCache
	rb := mustRun(t, bounded)
	unlimited := quickConfig("tpch17")
	unlimited.Mechanism = ChargeCache
	unlimited.CCUnlimited = true
	ru := mustRun(t, unlimited)
	if ru.HitRate() < rb.HitRate() {
		t.Errorf("unlimited hit rate %.3f below bounded %.3f", ru.HitRate(), rb.HitRate())
	}
}

func TestExactExpiryInvalidation(t *testing.T) {
	cfg := quickConfig("lbm")
	cfg.Mechanism = ChargeCache
	cfg.CCInvalidation = core.ExactExpiry
	res := mustRun(t, cfg)
	if res.Mechanism.Hits == 0 {
		t.Error("exact-expiry variant recorded no hits")
	}
}

func TestFixedRCAblationWeakerThanDerived(t *testing.T) {
	base := mustRun(t, quickConfig("lbm"))
	derived := quickConfig("lbm")
	derived.Mechanism = ChargeCache
	rd := mustRun(t, derived)
	fixed := quickConfig("lbm")
	fixed.Mechanism = ChargeCache
	fixed.FixedRC = true
	rf := mustRun(t, fixed)
	spDerived := rd.PerCore[0].IPC / base.PerCore[0].IPC
	spFixed := rf.PerCore[0].IPC / base.PerCore[0].IPC
	if spFixed > spDerived+0.001 {
		t.Errorf("fixed-tRC speedup %.4f exceeds derived-tRC %.4f", spFixed, spDerived)
	}
}

func TestRunTwiceFails(t *testing.T) {
	s, err := New(quickConfig("hmmer"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil {
		t.Error("second Run did not fail")
	}
}

func TestRegionSize(t *testing.T) {
	cases := []struct {
		total uint64
		cores int
		want  uint64
	}{
		{8 << 30, 8, 1 << 30},
		{4 << 30, 1, 4 << 30},
		{8 << 30, 3, 2 << 30},
		{8 << 30, 5, 1 << 30},
	}
	for _, c := range cases {
		if got := regionSize(c.total, c.cores); got != c.want {
			t.Errorf("regionSize(%d,%d) = %d, want %d", c.total, c.cores, got, c.want)
		}
	}
}

func TestSaturationDetected(t *testing.T) {
	cfg := quickConfig("mcf")
	cfg.MaxCycles = 10_000 // far too few for 60k instructions
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Saturated {
		t.Error("saturation not reported")
	}
}

func TestHmmerStaysInLLC(t *testing.T) {
	// hmmer's footprint fits in the 4MB LLC: after warm-up it generates
	// almost no DRAM traffic (the paper's footnote 1).
	cfg := quickConfig("hmmer")
	// One full sweep of hmmer's 2MB footprint is ~32K records of ~250
	// bubbles each; warm up past it so the LLC holds the working set.
	cfg.WarmupInstructions = 9_000_000
	cfg.RunInstructions = 300_000
	res := mustRun(t, cfg)
	missRate := float64(res.LLC.Misses) / float64(res.LLC.Accesses())
	if missRate > 0.05 {
		t.Errorf("hmmer LLC miss rate = %.3f, want ~0", missRate)
	}
}

// TestOtherDRAMStandards exercises the Section 7.2 claim: ChargeCache
// plugs into any DDR-derived standard unchanged and still speeds up a
// high-RLTL workload.
func TestOtherDRAMStandards(t *testing.T) {
	for _, standard := range []string{"ddr3", "lpddr3", "ddr3l"} {
		base := quickConfig("lbm")
		base.Standard = standard
		rb := mustRun(t, base)
		cc := quickConfig("lbm")
		cc.Standard = standard
		cc.Mechanism = ChargeCache
		rc := mustRun(t, cc)
		if rc.PerCore[0].IPC < rb.PerCore[0].IPC*0.999 {
			t.Errorf("%s: ChargeCache slower than baseline (%.4f vs %.4f)",
				standard, rc.PerCore[0].IPC, rb.PerCore[0].IPC)
		}
		if rc.Controller.FastActivations == 0 {
			t.Errorf("%s: no fast activations", standard)
		}
	}
	bad := quickConfig("lbm")
	bad.Standard = "rldram"
	if _, err := New(bad); err == nil {
		t.Error("unknown standard accepted")
	}
}
