package sim

import (
	"encoding/json"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
)

// analysisOn returns cfg with the perf-analyzer enabled at a bucket
// width small enough to produce several epochs at differential scale,
// and a ring large enough to never drop.
func analysisOn(cfg Config) Config {
	cfg.Analysis = &analysis.Config{Enabled: true, EpochCycles: 2_000, MaxEpochs: 512}
	return cfg
}

// TestDifferentialAnalysis extends the engine-equivalence guarantee to
// the analysis timelines: with probes attached, both engines must
// produce bit-identical Results including every epoch bucket. This is
// the strongest statement that the probes observe engine-invariant
// event streams.
func TestDifferentialAnalysis(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"baseline", func(c *Config) { c.Mechanism = Baseline }},
		{"chargecache", func(c *Config) { c.Mechanism = ChargeCache }},
		{"cc-nuat", func(c *Config) { c.Mechanism = ChargeCacheNUAT }},
		{"cc-exact-expiry", func(c *Config) {
			c.Mechanism = ChargeCache
			c.CCInvalidation = core.ExactExpiry
			c.CCDurationMs = 0.05
		}},
		{"cc-unlimited", func(c *Config) {
			c.Mechanism = ChargeCache
			c.CCUnlimited = true
			c.CCDurationMs = 0.05
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := analysisOn(diffScale(DefaultConfig("lbm")))
			tc.mut(&cfg)
			assertEngineEquivalence(t, cfg)
		})
	}
	t.Run("multicore-2ch", func(t *testing.T) {
		if testing.Short() {
			t.Skip("multi-core analysis differential skipped in -short mode")
		}
		cfg := analysisOn(diffScale(DefaultConfig("lbm", "sjeng", "tpch17", "hmmer")))
		cfg.Mechanism = ChargeCache
		assertEngineEquivalence(t, cfg)
	})
}

// TestAnalysisDoesNotPerturb runs the same config with analysis off and
// on: every simulated quantity must be byte-identical, with the Report
// and the Analysis config the only differences.
func TestAnalysisDoesNotPerturb(t *testing.T) {
	base := diffScale(DefaultConfig("libquantum"))
	base.Mechanism = ChargeCache
	off := runEngine(t, base, false)
	on := runEngine(t, analysisOn(base), false)

	if on.Analysis == nil {
		t.Fatal("enabled run produced no analysis report")
	}
	on.Analysis = nil
	on.Config.Analysis = nil
	if a, b := canonical(t, off), canonical(t, on); a != b {
		t.Errorf("analysis perturbed the simulation:\n off %s\n on  %s", a, b)
	}
}

// TestDifferentialStreamingAndPhases is the full-stack live-telemetry
// guarantee: with a stream sink installed AND the phase profiler on,
// (a) both engines still produce bit-identical results (phase profile
// excluded — it is host wall-clock by design), and (b) for each engine,
// replaying its streamed batches reconstructs its final report
// byte-identically, including the phase epochs.
func TestDifferentialStreamingAndPhases(t *testing.T) {
	base := analysisOn(diffScale(DefaultConfig("lbm")))
	base.Mechanism = ChargeCache
	base.Analysis.PhaseProfile = true
	base.Analysis.PhaseSamplePeriod = 4

	run := func(stepper bool) (Result, []analysis.StreamBatch) {
		cfg := base
		ac := *base.Analysis
		var batches []analysis.StreamBatch
		ac.Stream = func(b analysis.StreamBatch) { batches = append(batches, b) }
		cfg.Analysis = &ac
		return runEngine(t, cfg, stepper), batches
	}
	evRes, evBatches := run(false)
	stRes, stBatches := run(true)

	if a, b := canonical(t, evRes), canonical(t, stRes); a != b {
		t.Error("engines diverged with streaming and phase profiling enabled")
	}
	if evRes.Analysis.Phases == nil || evRes.Analysis.Phases.Calls[0] == 0 {
		t.Error("phase profile missing or empty on the event engine")
	}
	for _, tc := range []struct {
		name    string
		res     Result
		batches []analysis.StreamBatch
	}{{"event", evRes, evBatches}, {"stepper", stRes, stBatches}} {
		if len(tc.batches) < 2 {
			t.Fatalf("%s: only %d stream batches", tc.name, len(tc.batches))
		}
		rec, err := analysis.ReconstructReport(tc.batches)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		want, _ := json.Marshal(tc.res.Analysis)
		have, _ := json.Marshal(rec)
		if string(want) != string(have) {
			t.Errorf("%s: streamed reconstruction differs from final report", tc.name)
		}
	}
}

// TestAnalysisTotalsMatchStats cross-checks the probe totals against
// the simulator's own counters, and the epoch sums against the totals
// (the ring was sized to cover the whole run, so nothing may drop).
func TestAnalysisTotalsMatchStats(t *testing.T) {
	cfg := analysisOn(diffScale(DefaultConfig("lbm")))
	cfg.Mechanism = ChargeCache
	res := runEngine(t, cfg, false)
	rep := res.Analysis
	if rep == nil {
		t.Fatal("no analysis report")
	}

	tot := rep.Totals
	if tot.ACT != res.Counts.ACT || tot.FastACT != res.Counts.FastACT ||
		tot.PRE != res.Counts.PRE || tot.RD != res.Counts.RD ||
		tot.WR != res.Counts.WR || tot.REF != res.Counts.REF {
		t.Errorf("command totals %+v disagree with channel counts %+v", tot, res.Counts)
	}
	if tot.RowHits != res.Controller.RowHits || tot.RowMisses != res.Controller.RowMisses ||
		tot.RowConflicts != res.Controller.RowConflicts {
		t.Errorf("row outcomes (%d/%d/%d) disagree with controller stats (%d/%d/%d)",
			tot.RowHits, tot.RowMisses, tot.RowConflicts,
			res.Controller.RowHits, res.Controller.RowMisses, res.Controller.RowConflicts)
	}
	if tot.CCLookups != res.Mechanism.Lookups || tot.CCHits != res.Mechanism.Hits ||
		tot.CCInserts != res.Mechanism.Inserts || tot.CCEvictions != res.Mechanism.Evictions {
		t.Errorf("ChargeCache totals (%d/%d/%d/%d) disagree with mechanism stats %+v",
			tot.CCLookups, tot.CCHits, tot.CCInserts, tot.CCEvictions, res.Mechanism)
	}
	if want := res.Controller.ReadsServed + res.Controller.WritesServed; tot.QueueSamples < want {
		t.Errorf("queue samples = %d, want >= %d served requests", tot.QueueSamples, want)
	}

	// Epoch sums must reproduce the totals exactly when nothing dropped.
	var sum analysis.Totals
	for _, ch := range rep.Channels {
		if ch.DroppedEpochs != 0 || ch.Clamped != 0 {
			t.Errorf("channel %d dropped %d epochs, clamped %d events", ch.Channel, ch.DroppedEpochs, ch.Clamped)
		}
		for _, e := range ch.Epochs {
			sum.REF += e.REF
			sum.CCLookups += e.CCLookups
			sum.CCHits += e.CCHits
			sum.CCInserts += e.CCInserts
			sum.CCEvictions += e.CCEvictions
			sum.CCExpiries += e.CCExpiries
		}
		for _, b := range ch.Banks {
			if b.DroppedEpochs != 0 || b.Clamped != 0 {
				t.Errorf("bank (%d,%d) dropped %d epochs, clamped %d events",
					b.Rank, b.Bank, b.DroppedEpochs, b.Clamped)
			}
			for _, e := range b.Epochs {
				sum.ACT += e.ACT
				sum.FastACT += e.FastACT
				sum.PRE += e.PRE
				sum.RD += e.RD
				sum.WR += e.WR
				sum.FAWStallCycles += e.FAWStallCycles
				sum.RowHits += e.RowHits
				sum.RowMisses += e.RowMisses
				sum.RowConflicts += e.RowConflicts
			}
		}
	}
	if sum.ACT != tot.ACT || sum.FastACT != tot.FastACT || sum.PRE != tot.PRE ||
		sum.RD != tot.RD || sum.WR != tot.WR || sum.REF != tot.REF ||
		sum.FAWStallCycles != tot.FAWStallCycles ||
		sum.RowHits != tot.RowHits || sum.RowMisses != tot.RowMisses ||
		sum.RowConflicts != tot.RowConflicts ||
		sum.CCLookups != tot.CCLookups || sum.CCHits != tot.CCHits ||
		sum.CCInserts != tot.CCInserts || sum.CCEvictions != tot.CCEvictions ||
		sum.CCExpiries != tot.CCExpiries {
		t.Errorf("epoch sums %+v disagree with totals %+v", sum, tot)
	}
}

// TestAnalysisBoundedRings shrinks the ring far below the run length:
// totals must stay exact (they bypass the rings) while the report
// window stays within MaxEpochs and accounts for the evictions.
func TestAnalysisBoundedRings(t *testing.T) {
	cfg := diffScale(DefaultConfig("lbm"))
	cfg.Mechanism = ChargeCache
	cfg.Analysis = &analysis.Config{Enabled: true, EpochCycles: 500, MaxEpochs: 4}
	res := runEngine(t, cfg, false)
	rep := res.Analysis
	if rep == nil {
		t.Fatal("no analysis report")
	}
	if rep.Totals.ACT != res.Counts.ACT || rep.Totals.RowHits != res.Controller.RowHits {
		t.Errorf("bounded rings corrupted totals: %+v vs counts %+v / controller %+v",
			rep.Totals, res.Counts, res.Controller)
	}
	dropped := uint64(0)
	for _, ch := range rep.Channels {
		if len(ch.Epochs) > 4 {
			t.Errorf("channel %d reports %d epochs, ring capacity is 4", ch.Channel, len(ch.Epochs))
		}
		dropped += ch.DroppedEpochs
		for _, b := range ch.Banks {
			if len(b.Epochs) > 4 {
				t.Errorf("bank (%d,%d) reports %d epochs, ring capacity is 4", b.Rank, b.Bank, len(b.Epochs))
			}
		}
	}
	if dropped == 0 {
		t.Error("run spanned many epochs but nothing was dropped; eviction untested")
	}
}

// TestAnalysisReportSerializes round-trips the report through JSON (the
// path the server and client use).
func TestAnalysisReportSerializes(t *testing.T) {
	cfg := analysisOn(diffScale(DefaultConfig("lbm")))
	cfg.Mechanism = ChargeCache
	res := runEngine(t, cfg, false)
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Analysis == nil || back.Analysis.Totals != res.Analysis.Totals {
		t.Errorf("analysis report did not survive a JSON round trip")
	}
}

// TestAnalysisValidation: out-of-range analysis sizing knobs are not
// config errors — they normalize to documented defaults at collector
// construction, so the full config still validates and runs.
func TestAnalysisValidation(t *testing.T) {
	cfg := DefaultConfig("lbm")
	cfg.Analysis = &analysis.Config{Enabled: true, EpochCycles: -5, MaxEpochs: -2}
	if err := cfg.Validate(); err != nil {
		t.Errorf("negative analysis knobs should normalize, got validation error: %v", err)
	}
	sys, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Analysis == nil {
		t.Fatal("no analysis report")
	}
	if res.Analysis.EpochCycles != analysis.DefaultEpochCycles || res.Analysis.MaxEpochs != analysis.DefaultMaxEpochs {
		t.Errorf("report echoes %d/%d, want normalized defaults", res.Analysis.EpochCycles, res.Analysis.MaxEpochs)
	}
}
