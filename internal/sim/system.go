package sim

import (
	"fmt"
	"os"
	"sync"

	"repro/internal/analysis"
	"repro/internal/cache"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/prof"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// The circuit model's numeric integrations (the lowered timing class for
// a caching duration, the NUAT age bins) are pure functions of the model
// parameters and the spec, yet were re-derived for every System — a
// couple of milliseconds of math.Exp/Pow per config that campaigns pay
// hundreds of times with identical inputs. The caches below memoize
// them; entries are immutable once stored, so concurrently constructed
// Systems (the sweep worker pool) share them safely.
var (
	fastClassCache sync.Map // fastClassKey -> circuit.TimingRow
	nuatBinsCache  sync.Map // nuatBinsKey -> []core.NUATBin (read-only)
)

type fastClassKey struct {
	p    circuit.Params
	spec dram.Spec
	ms   float64
}

type nuatBinsKey struct {
	p    circuit.Params
	spec dram.Spec
}

// cachedTimingsFor memoizes model.TimingsFor.
func cachedTimingsFor(model *circuit.Model, spec dram.Spec, ms float64) (circuit.TimingRow, error) {
	key := fastClassKey{p: model.Params(), spec: spec, ms: ms}
	if row, ok := fastClassCache.Load(key); ok {
		return row.(circuit.TimingRow), nil
	}
	row, err := model.TimingsFor(spec, ms)
	if err != nil {
		return circuit.TimingRow{}, err
	}
	fastClassCache.Store(key, row)
	return row, nil
}

// cachedNUATBins memoizes model.NUATBins for the default bin bounds
// (the only bounds the simulator uses).
func cachedNUATBins(model *circuit.Model, spec dram.Spec) ([]core.NUATBin, error) {
	key := nuatBinsKey{p: model.Params(), spec: spec}
	if bins, ok := nuatBinsCache.Load(key); ok {
		return bins.([]core.NUATBin), nil
	}
	bins, err := model.NUATBins(spec, circuit.DefaultNUATBoundsMs)
	if err != nil {
		return nil, err
	}
	nuatBinsCache.Store(key, bins)
	return bins, nil
}

// System is one assembled simulation instance. Build with New, run with
// Run. A System is single-use: Run may be called once.
type System struct {
	cfg  Config
	spec dram.Spec

	cores  []*cpu.Core
	gens   []*workload.Generator
	llc    *cache.LLC
	ctrls  []*memctrl.Controller
	mapper *memctrl.BitSliceMapper
	rltl   *stats.RLTL

	fastClass dram.TimingClass
	addrMask  uint64

	// collector gathers the opt-in perf-analyzer timelines; nil unless
	// Config.Analysis enables them.
	collector *analysis.Collector

	nowCPU int64 // master clock, CPU cycles
	ran    bool

	// execCycles counts cycles the engine actually executed; the
	// event-driven engine skips the rest. Diagnostic for benchmarks
	// (ExecutedCycles); always equals nowCPU under the stepper.
	execCycles int64

	// Memory-event horizon snapshot for skipAhead: the LLC and
	// controller wake-ups, valid while the LLC stamp matches and no
	// controller ticked (memDirty).
	memStamp    uint64
	memDirty    bool
	memLLCWake  int64
	memCtrlWake []int64
}

// ExecutedCycles reports how many cycles the engine executed component
// ticks for, as opposed to skipping. The ratio against the total cycle
// count is the event-driven engine's work reduction.
func (s *System) ExecutedCycles() int64 { return s.execCycles }

// TotalCycles reports the master clock after Run: every simulated CPU
// cycle including warm-up, identical between engines.
func (s *System) TotalCycles() int64 { return s.nowCPU }

// New assembles a system from cfg.
func New(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	spec, err := specFor(cfg.Standard, cfg.Channels)
	if err != nil {
		return nil, err
	}
	if cfg.FixedRC {
		spec.Timing.RCFromClass = false
	}
	s := &System{
		cfg:      cfg,
		spec:     spec,
		addrMask: spec.Geometry.TotalBytes() - 1,
	}

	mapper, err := memctrl.NewBitSliceMapper(spec.Geometry, cfg.MapperOrder)
	if err != nil {
		return nil, err
	}
	s.mapper = mapper

	if cfg.TrackRLTL {
		intervals := make([]dram.Cycle, len(cfg.RLTLIntervalsMs))
		for i, ms := range cfg.RLTLIntervalsMs {
			intervals[i] = spec.MillisecondsToCycles(ms)
		}
		tracker, err := stats.NewRLTL(intervals, spec.MillisecondsToCycles(cfg.RLTLRefreshMs))
		if err != nil {
			return nil, err
		}
		s.rltl = tracker
	}

	model, err := circuit.NewModel(circuit.DefaultParams())
	if err != nil {
		return nil, err
	}
	fastRow, err := cachedTimingsFor(model, spec, cfg.CCDurationMs)
	if err != nil {
		return nil, err
	}
	s.fastClass = fastRow.Class

	if cfg.Analysis != nil && cfg.Analysis.Enabled {
		s.collector = analysis.NewCollector(*cfg.Analysis, cfg.Channels,
			spec.Geometry.Ranks, spec.Geometry.Banks)
	}
	// ptimer is nil unless Analysis.PhaseProfile was set; every hook
	// site treats a nil timer as a single-branch no-op.
	var ptimer *prof.Timer
	if s.collector != nil {
		ptimer = s.collector.PhaseTimer()
	}

	for ch := 0; ch < cfg.Channels; ch++ {
		mech, err := s.buildMechanism(ch, model)
		if err != nil {
			return nil, err
		}
		var obs memctrl.Observer
		if s.rltl != nil {
			obs = s.rltl
		}
		mcfg := memctrl.Config{
			Spec:          spec,
			Channel:       ch,
			ReadQueueCap:  64,
			WriteQueueCap: 64,
			RowPolicy:     cfg.RowPolicy,
			WriteHigh:     48,
			WriteLow:      16,
			Mechanism:     mech,
			Observer:      obs,
		}
		// Assign the probe interfaces only from a non-nil collector so
		// the disabled path stays a nil-interface check, never a
		// typed-nil call.
		if s.collector != nil {
			mcfg.Probe = s.collector.Channel(ch)
		}
		mcfg.Profiler = ptimer
		ctrl, err := memctrl.NewController(mcfg)
		if err != nil {
			return nil, err
		}
		if ptimer != nil {
			ctrl.Channel().SetProfiler(ptimer)
		}
		if s.collector != nil {
			probe := s.collector.Channel(ch)
			ctrl.Channel().SetProbe(probe)
			switch m := mech.(type) {
			case *core.ChargeCache:
				m.SetProbe(probe)
			case *core.ChargeCacheNUAT:
				m.SetProbe(probe)
			}
		}
		s.ctrls = append(s.ctrls, ctrl)
	}

	llc, err := cache.New(cfg.LLC, &memBackend{s: s, timer: ptimer})
	if err != nil {
		return nil, err
	}
	if ptimer != nil {
		llc.SetProfiler(ptimer, cfg.ClockRatio)
	}
	s.llc = llc

	if err := s.buildCores(); err != nil {
		return nil, err
	}
	return s, nil
}

// specFor resolves a DRAM standard name to its specification.
func specFor(standard string, channels int) (dram.Spec, error) {
	switch standard {
	case "", "ddr3":
		return dram.DDR31600(channels), nil
	case "lpddr3":
		return dram.LPDDR31600(channels), nil
	case "ddr3l":
		return dram.DDR31600LowVoltage(channels), nil
	default:
		return dram.Spec{}, fmt.Errorf("sim: unknown DRAM standard %q", standard)
	}
}

// buildMechanism constructs one per-channel mechanism instance.
func (s *System) buildMechanism(channel int, model *circuit.Model) (core.Mechanism, error) {
	defaultClass := s.spec.Timing.DefaultClass()
	newCC := func() (*core.ChargeCache, error) {
		return core.NewChargeCache(core.ChargeCacheConfig{
			Entries:      s.cfg.CCEntriesPerCore * len(s.cfg.Workloads),
			Assoc:        s.cfg.CCAssoc,
			Duration:     s.spec.MillisecondsToCycles(s.cfg.CCDurationMs),
			Fast:         s.fastClass,
			Default:      defaultClass,
			Unlimited:    s.cfg.CCUnlimited,
			Invalidation: s.cfg.CCInvalidation,
		})
	}
	newNUAT := func() (*core.NUAT, error) {
		bins, err := cachedNUATBins(model, s.spec)
		if err != nil {
			return nil, err
		}
		return core.NewNUAT(core.NUATConfig{Bins: bins, Default: defaultClass})
	}
	switch s.cfg.Mechanism {
	case Baseline:
		return core.NewBaseline(defaultClass), nil
	case ChargeCache:
		return newCC()
	case NUAT:
		return newNUAT()
	case ChargeCacheNUAT:
		cc, err := newCC()
		if err != nil {
			return nil, err
		}
		n, err := newNUAT()
		if err != nil {
			return nil, err
		}
		return core.NewChargeCacheNUAT(cc, n), nil
	case LLDRAM:
		return core.NewLLDRAM(s.fastClass), nil
	case Custom:
		return s.cfg.CustomMechanism(channel, s.spec, s.fastClass, defaultClass)
	default:
		return nil, fmt.Errorf("sim: unknown mechanism %v", s.cfg.Mechanism)
	}
}

// buildCores constructs one generator + core per workload, each in its
// own address region.
func (s *System) buildCores() error {
	n := len(s.cfg.Workloads)
	region := regionSize(s.spec.Geometry.TotalBytes(), n)
	for i, name := range s.cfg.Workloads {
		reader, err := s.coreTrace(i, name, region)
		if err != nil {
			return err
		}
		c, err := cpu.New(cpu.DefaultConfig(i), reader, &memPort{s: s})
		if err != nil {
			return err
		}
		s.cores = append(s.cores, c)
	}
	return nil
}

// coreTrace builds core i's instruction stream: a trace-file replay when
// configured, the named synthetic generator otherwise.
func (s *System) coreTrace(i int, name string, region uint64) (cpu.TraceReader, error) {
	if len(s.cfg.TraceFiles) > i && s.cfg.TraceFiles[i] != "" {
		f, err := os.Open(s.cfg.TraceFiles[i])
		if err != nil {
			return nil, fmt.Errorf("sim: core %d trace: %w", i, err)
		}
		defer f.Close()
		recs, err := trace.ReadAll(f)
		if err != nil {
			return nil, fmt.Errorf("sim: core %d trace: %w", i, err)
		}
		return trace.NewReplay(recs)
	}
	prof, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewGenerator(prof, s.cfg.Seed+uint64(i)*7919, uint64(i)*region, region)
	if err != nil {
		return nil, err
	}
	s.gens = append(s.gens, gen)
	return gen, nil
}

// regionSize returns the largest power-of-two region such that cores
// regions fit in total bytes.
func regionSize(total uint64, cores int) uint64 {
	r := total / uint64(cores)
	// Round down to a power of two.
	for r&(r-1) != 0 {
		r &= r - 1
	}
	return r
}

// memPort adapts the LLC to the cpu.MemPort interface.
type memPort struct {
	s *System
}

// Load implements cpu.MemPort.
func (p *memPort) Load(addr uint64, coreID int, done func()) bool {
	res := p.s.llc.Access(p.s.nowCPU, addr&p.s.addrMask, false, coreID, done)
	return res != cache.Retry
}

// Store implements cpu.MemPort.
func (p *memPort) Store(addr uint64, coreID int) bool {
	res := p.s.llc.Access(p.s.nowCPU, addr&p.s.addrMask, true, coreID, nil)
	return res != cache.Retry
}

// memBackend adapts the memory controllers to the cache.Backend
// interface. Requests are drawn from a free list and recycled when the
// controller reports completion, so the steady-state access path does
// not allocate: each pool entry carries a permanently-bound OnComplete
// closure that forwards to the entry's per-use callback and then
// returns the entry to the pool.
type memBackend struct {
	s     *System
	free  []*pooledReq
	timer *prof.Timer // nil unless phase profiling is on
}

// pooledReq is one recyclable request plus its per-use completion hook.
type pooledReq struct {
	req    memctrl.Request
	onDone func()
}

// get prepares a pool entry for one request. All request fields the
// controller reads or mutates are reset here.
func (b *memBackend) get(kind memctrl.RequestKind, addr uint64, coord memctrl.Coord, coreID int, onDone func()) *pooledReq {
	var e *pooledReq
	if n := len(b.free); n > 0 {
		e = b.free[n-1]
		b.free[n-1] = nil
		b.free = b.free[:n-1]
	} else {
		e = &pooledReq{}
		entry := e
		e.req.OnComplete = func(at dram.Cycle) {
			var pt int64
			if b.timer != nil {
				pt = b.timer.Begin(prof.Callback)
			}
			if entry.onDone != nil {
				entry.onDone()
				entry.onDone = nil
			}
			b.free = append(b.free, entry)
			if b.timer != nil {
				b.timer.End(prof.Callback, pt, int64(at))
			}
		}
	}
	e.onDone = onDone
	e.req.Reset(kind, addr, coord, coreID)
	return e
}

// ReadLine implements cache.Backend.
func (b *memBackend) ReadLine(addr uint64, coreID int, onDone func()) bool {
	coord := b.s.mapper.Map(addr)
	e := b.get(memctrl.ReadReq, addr, coord, coreID, onDone)
	if !b.s.ctrls[coord.Channel].EnqueueRead(&e.req) {
		e.onDone = nil
		b.free = append(b.free, e)
		return false
	}
	return true
}

// WriteLine implements cache.Backend.
func (b *memBackend) WriteLine(addr uint64, coreID int) bool {
	coord := b.s.mapper.Map(addr)
	e := b.get(memctrl.WriteReq, addr, coord, coreID, nil)
	if !b.s.ctrls[coord.Channel].EnqueueWrite(&e.req) {
		b.free = append(b.free, e)
		return false
	}
	return true
}
