package sim

import (
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/memctrl"
)

// canonical returns the byte-exact JSON form of a Result with the
// engine-selection flag cleared, so results from the two engines can be
// compared field by field. Everything else — per-core IPC, cycle
// counts, controller/mechanism/LLC/DRAM counters, energy, RLTL — must
// match bit for bit.
func canonical(t *testing.T, res Result) string {
	t.Helper()
	res.Config.Stepper = false
	// The phase profile is host wall-clock (and its call counts depend
	// on how often each engine enters the hook sites), so it is
	// excluded from the bit-identity contract by design.
	if res.Analysis != nil && res.Analysis.Phases != nil {
		rep := *res.Analysis
		rep.Phases = nil
		res.Analysis = &rep
	}
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

// runEngine executes cfg with the selected engine.
func runEngine(t *testing.T, cfg Config, stepper bool) Result {
	t.Helper()
	cfg.Stepper = stepper
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// assertEngineEquivalence fails the test when the event-driven engine
// and the reference stepper disagree on any Result bit for cfg.
func assertEngineEquivalence(t *testing.T, cfg Config) {
	t.Helper()
	event := canonical(t, runEngine(t, cfg, false))
	step := canonical(t, runEngine(t, cfg, true))
	if event == step {
		return
	}
	// Locate the first divergence for a readable failure.
	var ev, st map[string]json.RawMessage
	if err := json.Unmarshal([]byte(event), &ev); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(step), &st); err != nil {
		t.Fatal(err)
	}
	for k, v := range st {
		if string(ev[k]) != string(v) {
			t.Errorf("field %s diverged:\n event   %s\n stepper %s", k, ev[k], v)
		}
	}
	t.Fatalf("event-driven engine diverged from reference stepper")
}

// diffScale shrinks a config to differential-suite budgets: big enough
// to cross refresh windows, LLC evictions and ChargeCache expiry, small
// enough to run the whole matrix quickly.
func diffScale(cfg Config) Config {
	cfg.WarmupInstructions = 6_000
	cfg.RunInstructions = 30_000
	return cfg
}

// TestDifferentialMechanisms runs every mechanism through both engines
// on a memory-intensive workload and demands bit-identical results.
// This is the PR's primary safety net: any scheduler event the
// event-driven engine misses shifts a command by at least one cycle,
// which shows up in the latency histogram, the cycle counts or the
// energy integrals.
func TestDifferentialMechanisms(t *testing.T) {
	for _, mech := range MechanismKinds() {
		t.Run(mech.String(), func(t *testing.T) {
			cfg := diffScale(DefaultConfig("lbm"))
			cfg.Mechanism = mech
			assertEngineEquivalence(t, cfg)
		})
	}
}

// TestDifferentialWorkloadMatrix sweeps workload patterns spanning the
// simulator's behaviours: streaming (bank conflicts), random (row
// misses), Zipf (LLC + HCRAC hits), a cache-resident workload (pure
// bubble flow), and the most memory-intensive profile (MSHR pressure).
func TestDifferentialWorkloadMatrix(t *testing.T) {
	workloads := []string{"libquantum", "sjeng", "tpch6", "hmmer", "STREAMcopy"}
	if testing.Short() {
		workloads = workloads[:2]
	}
	for _, name := range workloads {
		t.Run(name, func(t *testing.T) {
			cfg := diffScale(DefaultConfig(name))
			cfg.Mechanism = ChargeCache
			assertEngineEquivalence(t, cfg)
		})
	}
}

// TestDifferentialLongHorizon runs a few memory-intensive configs far
// past the short suite's budget. The short configs cross only one or
// two refresh windows, which once let a one-cycle race slip through:
// the event engine's eager classification sweep ran against
// pre-refresh bank state when a refresh became due on the very next
// cycle, drifting RowHits/RowMisses while every command stayed
// identical. Dozens of refresh windows make that coincidence reliable
// (the original reproducers were STREAMcopy seed 7 and tpch17 seed 1
// at this scale).
func TestDifferentialLongHorizon(t *testing.T) {
	if testing.Short() {
		t.Skip("long-horizon differential skipped in -short mode")
	}
	cases := []struct {
		workload string
		seed     uint64
	}{
		{"STREAMcopy", 7},
		{"tpch17", 1},
		{"soplex", 3},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%s-seed%d", tc.workload, tc.seed), func(t *testing.T) {
			cfg := DefaultConfig(tc.workload)
			cfg.WarmupInstructions = 0
			cfg.RunInstructions = 400_000
			cfg.Seed = tc.seed
			cfg.Mechanism = ChargeCache
			assertEngineEquivalence(t, cfg)
		})
	}
}

// TestDifferentialChannelsAndPolicies covers the scheduling dimensions:
// row policy × channel count (multi-channel exercises per-channel
// mechanism instances and request interleaving), plus a multi-core mix
// where cores contend for the LLC and MSHRs.
func TestDifferentialChannelsAndPolicies(t *testing.T) {
	cases := []struct {
		name     string
		policy   memctrl.RowPolicy
		channels int
		cores    []string
	}{
		{"open-1ch", memctrl.OpenRow, 1, []string{"lbm"}},
		{"closed-1ch", memctrl.ClosedRow, 1, []string{"lbm"}},
		{"open-2ch", memctrl.OpenRow, 2, []string{"mcf"}},
		{"closed-2ch-4core", memctrl.ClosedRow, 2, []string{"lbm", "sjeng", "tpch17", "hmmer"}},
	}
	if testing.Short() {
		cases = cases[:2]
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := diffScale(DefaultConfig(tc.cores...))
			cfg.RowPolicy = tc.policy
			cfg.Channels = tc.channels
			cfg.Mechanism = ChargeCache
			assertEngineEquivalence(t, cfg)
		})
	}
}

// TestDifferentialInvalidationModes covers both ChargeCache expiry
// schemes plus the unlimited table: the IIC/EC walk is the component
// the tentpole converts from per-cycle ticking to lazy catch-up, so a
// missed invalidation here would directly flip activation classes.
func TestDifferentialInvalidationModes(t *testing.T) {
	cases := []struct {
		name      string
		policy    core.InvalidationPolicy
		unlimited bool
	}{
		{"iic-ec", core.PeriodicIICEC, false},
		{"exact-expiry", core.ExactExpiry, false},
		{"unlimited", core.PeriodicIICEC, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := diffScale(DefaultConfig("libquantum"))
			cfg.Mechanism = ChargeCache
			cfg.CCInvalidation = tc.policy
			cfg.CCUnlimited = tc.unlimited
			// A short duration forces expiries inside the run window.
			cfg.CCDurationMs = 0.05
			assertEngineEquivalence(t, cfg)
		})
	}
}

// TestDifferentialEdges covers the remaining Result-shaping paths: RLTL
// tracking (observer event times), saturation (the cycle cap must bound
// jumps exactly), the FixedRC ablation, and non-DDR3 standards.
func TestDifferentialEdges(t *testing.T) {
	t.Run("rltl", func(t *testing.T) {
		cfg := diffScale(DefaultConfig("lbm"))
		cfg.TrackRLTL = true
		assertEngineEquivalence(t, cfg)
	})
	t.Run("saturated", func(t *testing.T) {
		cfg := diffScale(DefaultConfig("lbm"))
		cfg.MaxCycles = 40_000
		assertEngineEquivalence(t, cfg)
	})
	if testing.Short() {
		return
	}
	t.Run("fixed-rc", func(t *testing.T) {
		cfg := diffScale(DefaultConfig("lbm"))
		cfg.Mechanism = ChargeCache
		cfg.FixedRC = true
		assertEngineEquivalence(t, cfg)
	})
	t.Run("lpddr3", func(t *testing.T) {
		cfg := diffScale(DefaultConfig("lbm"))
		cfg.Standard = "lpddr3"
		assertEngineEquivalence(t, cfg)
	})
	t.Run("seed-variation", func(t *testing.T) {
		cfg := diffScale(DefaultConfig("sjeng"))
		cfg.Seed = 12345
		assertEngineEquivalence(t, cfg)
	})
}

// TestDifferentialSweepShape mirrors the figure campaigns' sweep axes
// on a reduced grid: ChargeCache capacity and caching duration, the
// knobs Figures 9-11 vary.
func TestDifferentialSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep-shape differential runs many configs")
	}
	for _, entries := range []int{32, 512} {
		for _, durMs := range []float64{0.1, 1} {
			name := fmt.Sprintf("entries=%d/dur=%gms", entries, durMs)
			t.Run(name, func(t *testing.T) {
				cfg := diffScale(DefaultConfig("mcf"))
				cfg.Mechanism = ChargeCache
				cfg.CCEntriesPerCore = entries
				cfg.CCDurationMs = durMs
				assertEngineEquivalence(t, cfg)
			})
		}
	}
}
