// Package trace reads and writes CPU traces in Ramulator's cpu-trace
// text format, the format the paper's evaluation consumes:
//
//	<num-cpu-instructions> <read-address> [<writeback-address>]
//
// one record per line, addresses in decimal or 0x-prefixed hex. This
// lets the simulator run real collected traces interchangeably with the
// synthetic generators (package workload), and lets the generators dump
// their streams for use by other simulators (cmd/tracegen).
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/cpu"
)

// Writer emits trace records in Ramulator text format.
type Writer struct {
	w   *bufio.Writer
	n   int
	err error
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Write emits one record.
func (t *Writer) Write(rec cpu.TraceRecord) error {
	if t.err != nil {
		return t.err
	}
	if rec.HasWriteback {
		_, t.err = fmt.Fprintf(t.w, "%d %#x %#x\n", rec.Bubbles, rec.Addr, rec.WBAddr)
	} else {
		_, t.err = fmt.Fprintf(t.w, "%d %#x\n", rec.Bubbles, rec.Addr)
	}
	if t.err == nil {
		t.n++
	}
	return t.err
}

// Flush flushes buffered output.
func (t *Writer) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// Records returns the number of records written.
func (t *Writer) Records() int { return t.n }

// Reader parses trace records from an io.Reader.
type Reader struct {
	s    *bufio.Scanner
	line int
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	return &Reader{s: s}
}

// Read parses the next record; it returns io.EOF at end of input.
func (t *Reader) Read() (cpu.TraceRecord, error) {
	for t.s.Scan() {
		t.line++
		line := strings.TrimSpace(t.s.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rec, err := parseLine(line)
		if err != nil {
			return cpu.TraceRecord{}, fmt.Errorf("trace: line %d: %w", t.line, err)
		}
		return rec, nil
	}
	if err := t.s.Err(); err != nil {
		// Scanner failures (an over-long line tripping the buffer cap,
		// an I/O error mid-file) happen on the line after the last one
		// scanned; wrap them with that position like parse errors, so a
		// 2 GB trace with one bad line names it instead of surfacing a
		// naked bufio.ErrTooLong.
		return cpu.TraceRecord{}, fmt.Errorf("trace: line %d: %w", t.line+1, err)
	}
	return cpu.TraceRecord{}, io.EOF
}

func parseLine(line string) (cpu.TraceRecord, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 || len(fields) > 3 {
		return cpu.TraceRecord{}, fmt.Errorf("want 2 or 3 fields, got %d", len(fields))
	}
	bubbles, err := strconv.Atoi(fields[0])
	if err != nil || bubbles < 0 {
		return cpu.TraceRecord{}, fmt.Errorf("bad bubble count %q", fields[0])
	}
	addr, err := parseAddr(fields[1])
	if err != nil {
		return cpu.TraceRecord{}, err
	}
	rec := cpu.TraceRecord{Bubbles: bubbles, Addr: addr}
	if len(fields) == 3 {
		wb, err := parseAddr(fields[2])
		if err != nil {
			return cpu.TraceRecord{}, err
		}
		rec.HasWriteback = true
		rec.WBAddr = wb
	}
	return rec, nil
}

func parseAddr(s string) (uint64, error) {
	v, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad address %q", s)
	}
	return v, nil
}

// ReadAll parses every record from r.
func ReadAll(r io.Reader) ([]cpu.TraceRecord, error) {
	tr := NewReader(r)
	var recs []cpu.TraceRecord
	for {
		rec, err := tr.Read()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
	}
}

// Replay adapts a finite record slice to cpu.TraceReader, looping when
// exhausted (cores need an endless stream; looping a SimPoint-style
// representative slice is the conventional treatment).
type Replay struct {
	recs []cpu.TraceRecord
	i    int

	// Loops counts completed passes over the trace.
	Loops int
}

// NewReplay builds a looping reader over recs, which must be non-empty.
func NewReplay(recs []cpu.TraceRecord) (*Replay, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("trace: empty trace")
	}
	return &Replay{recs: recs}, nil
}

// Next implements cpu.TraceReader.
func (r *Replay) Next() cpu.TraceRecord {
	rec := r.recs[r.i]
	r.i++
	if r.i == len(r.recs) {
		r.i = 0
		r.Loops++
	}
	return rec
}

// Len returns the trace length in records.
func (r *Replay) Len() int { return len(r.recs) }
