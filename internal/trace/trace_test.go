package trace

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cpu"
	"repro/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	recs := []cpu.TraceRecord{
		{Bubbles: 10, Addr: 0x1000},
		{Bubbles: 0, Addr: 0x2040, HasWriteback: true, WBAddr: 0x8000},
		{Bubbles: 999, Addr: 0},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Records() != 3 {
		t.Errorf("Records = %d", w.Records())
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records", len(got))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d: got %+v want %+v", i, got[i], recs[i])
		}
	}
}

func TestReaderAcceptsRamulatorStyle(t *testing.T) {
	in := `# comment line
37 0x7f1a2b3c4000
5 123456 0x8000

12 0xdeadbeef40 0xcafebab080
`
	recs, err := ReadAll(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0].Bubbles != 37 || recs[0].Addr != 0x7f1a2b3c4000 || recs[0].HasWriteback {
		t.Errorf("rec0 = %+v", recs[0])
	}
	if recs[1].Addr != 123456 || !recs[1].HasWriteback || recs[1].WBAddr != 0x8000 {
		t.Errorf("rec1 = %+v", recs[1])
	}
}

func TestReaderRejectsMalformed(t *testing.T) {
	for _, in := range []string{
		"x 0x10",
		"-3 0x10",
		"5",
		"5 0x10 0x20 0x30",
		"5 nothex",
		"5 0x10 nothex",
	} {
		if _, err := ReadAll(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

// TestReaderOverlongLine pins the scanner-error context fix: a line
// exceeding the 1 MiB buffer must surface as a positioned trace error
// wrapping bufio.ErrTooLong, not as the naked scanner error.
func TestReaderOverlongLine(t *testing.T) {
	in := "1 0x10\n2 0x20\n# comment\n3 0x" + strings.Repeat("3", 2<<20) + "\n"
	r := NewReader(strings.NewReader(in))
	for i := 0; i < 2; i++ {
		if _, err := r.Read(); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	_, err := r.Read()
	if err == nil || err == io.EOF {
		t.Fatalf("over-long line read returned %v, want an error", err)
	}
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Errorf("error %v does not wrap bufio.ErrTooLong", err)
	}
	// The failing line follows the two records and the comment: line 4.
	if got := err.Error(); !strings.Contains(got, "line 4") {
		t.Errorf("error %q does not name the failing line", got)
	}
}

func TestReaderEOF(t *testing.T) {
	r := NewReader(strings.NewReader(""))
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("empty input: err = %v, want EOF", err)
	}
}

func TestReplayLoops(t *testing.T) {
	recs := []cpu.TraceRecord{{Addr: 1}, {Addr: 2}}
	r, err := NewReplay(recs)
	if err != nil {
		t.Fatal(err)
	}
	seq := []uint64{1, 2, 1, 2, 1}
	for i, want := range seq {
		if got := r.Next().Addr; got != want {
			t.Fatalf("Next %d = %d, want %d", i, got, want)
		}
	}
	if r.Loops != 2 {
		t.Errorf("Loops = %d", r.Loops)
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d", r.Len())
	}
	if _, err := NewReplay(nil); err == nil {
		t.Error("empty replay accepted")
	}
}

// Property: any generator output round-trips through the text format.
func TestGeneratorRoundTripProperty(t *testing.T) {
	prof, err := workload.ByName("soplex")
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(prof, 3, 0, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	f := func(n uint8) bool {
		count := int(n%32) + 1
		var recs []cpu.TraceRecord
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for i := 0; i < count; i++ {
			rec := gen.Next()
			recs = append(recs, rec)
			if err := w.Write(rec); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		got, err := ReadAll(&buf)
		if err != nil || len(got) != count {
			return false
		}
		for i := range recs {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
