package trace

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/cpu"
)

// FuzzReader throws arbitrary bytes at the trace reader and pins its
// error contract: it never panics, every parse failure is wrapped as
// "trace: line N" with N pointing at the offending 1-indexed line
// (comments and blanks counted, so the number matches an editor), an
// over-long token surfaces bufio.ErrTooLong with a position instead of
// naked, and accepted records round-trip bit-exactly through Writer.
func FuzzReader(f *testing.F) {
	f.Add([]byte("4 0x1234\n0 0x88 0x90\n"))
	f.Add([]byte("# comment\n\n7 512\n"))
	f.Add([]byte("-1 0x10\n"))
	f.Add([]byte("2 0xzz\n"))
	f.Add([]byte("1 2 3 4\n"))
	f.Add([]byte("9999999999999999999999 0x1\n"))
	f.Add([]byte("1 0x10 0x20")) // truncated: no trailing newline
	f.Add([]byte("\xff\xfe garbage \x00\n1 0x4\n"))
	f.Add(bytes.Repeat([]byte("8"), 2<<20)) // one token past the 1 MiB line cap

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		var recs []cpu.TraceRecord
		for {
			rec, err := r.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				msg := err.Error()
				var line int
				if _, serr := fmt.Sscanf(msg, "trace: line %d:", &line); serr != nil {
					t.Fatalf("error without line attribution: %v", err)
				}
				lines := bytes.Count(data, []byte("\n")) + 1
				if line < 1 || line > lines {
					t.Fatalf("error names line %d of %d: %v", line, lines, err)
				}
				if errors.Is(err, bufio.ErrTooLong) && maxTokenLen(data) <= 1024*1024 {
					// The scanner cap must never be blamed on inputs
					// whose lines all fit within it.
					t.Fatalf("ErrTooLong on input with max line %d: %v", maxTokenLen(data), err)
				}
				break
			}
			recs = append(recs, rec)
		}

		// Accepted records must survive a write/re-read round trip.
		if len(recs) == 0 {
			return
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, rec := range recs {
			if err := w.Write(rec); err != nil {
				t.Fatalf("re-write: %v", err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		again, err := ReadAll(&buf)
		if err != nil {
			t.Fatalf("re-read of re-written trace: %v\ntrace:\n%s", err, buf.String())
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip lost records: %d -> %d", len(recs), len(again))
		}
		for i := range recs {
			if recs[i] != again[i] {
				t.Fatalf("record %d changed in round trip: %+v -> %+v", i, recs[i], again[i])
			}
		}
	})
}

// maxTokenLen returns the longest newline-delimited line in data.
func maxTokenLen(data []byte) int {
	max := 0
	for _, ln := range bytes.Split(data, []byte("\n")) {
		if len(ln) > max {
			max = len(ln)
		}
	}
	return max
}

// TestReaderErrorLineNumbers pins exact line attribution for the
// malformed inputs the fuzzer's seeds cover, so a refactor that
// miscounts comment or blank lines fails loudly rather than only under
// -fuzz.
func TestReaderErrorLineNumbers(t *testing.T) {
	cases := []struct {
		name  string
		input string
		line  int
	}{
		{"first line", "bogus\n", 1},
		{"after valid", "1 0x10\n2 0x20\nnope nope nope nope\n", 3},
		{"comments counted", "# header\n\n# more\n-3 0x10\n", 4},
		{"bad writeback", "1 0x10\n1 0x10 zzz\n", 2},
		{"huge bubbles", "18446744073709551616 0x1\n", 1},
		{"truncated file", "1 0x10\n2", 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadAll(strings.NewReader(tc.input))
			if err == nil {
				t.Fatal("malformed trace accepted")
			}
			want := fmt.Sprintf("trace: line %d:", tc.line)
			if !strings.HasPrefix(err.Error(), want) {
				t.Fatalf("error = %q, want prefix %q", err, want)
			}
		})
	}

	// The over-long-line path: a 2 MiB single-token "line" overflows the
	// scanner's 1 MiB cap and must name the line after the last good one.
	big := "1 0x10\n" + strings.Repeat("9", 2<<20)
	_, err := ReadAll(strings.NewReader(big))
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("huge token error = %v, want bufio.ErrTooLong", err)
	}
	if !strings.HasPrefix(err.Error(), "trace: line 2:") {
		t.Fatalf("huge token error = %q, want line 2 attribution", err)
	}
}
