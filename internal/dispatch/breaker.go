package dispatch

import "time"

// breakerState is the lifecycle of one worker's circuit breaker.
//
//	closed ──(threshold transport failures)──▶ open
//	open ──(reprobe interval elapses)──▶ half-open
//	half-open ──(probe succeeds)──▶ closed   (the worker rejoins)
//	half-open ──(probe fails)──▶ open        (or dead after probeLimit)
//
// Unlike the permanent dead flag it replaces, an open breaker is a
// *temporary* verdict: a daemon that crashed and restarted mid-campaign
// is re-probed on an interval and rejoins the fleet, picking up pending
// units again. Only probeLimit consecutive failed probes retire the
// worker for good.
type breakerState uint8

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
	breakerDead
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "dead"
	}
}

// breaker tracks one worker's transport health. All fields are guarded
// by dispatcher.mu — the breaker itself is not safe for unsynchronized
// use, which keeps it allocation-free and branch-cheap on the claim
// path.
type breaker struct {
	state    breakerState
	failures int  // consecutive transport failures while closed
	probes   int  // consecutive failed half-open probes
	probing  bool // a half-open probe attempt is currently in flight
	openedAt time.Time

	threshold  int           // failures that open the breaker (≥1)
	reprobe    time.Duration // open → half-open delay
	probeLimit int           // failed probes before dead; <0 = never
}

// allow reports whether the worker may take a unit now. probe is true
// when the grant is the single half-open re-probe attempt — its outcome
// decides whether the worker rejoins or goes back to open.
//
//ccsim:zeroalloc
func (b *breaker) allow(now time.Time) (ok, probe bool) {
	switch b.state {
	case breakerClosed:
		return true, false
	case breakerOpen:
		if now.Sub(b.openedAt) < b.reprobe {
			return false, false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true, true
	case breakerHalfOpen:
		if b.probing {
			return false, false
		}
		b.probing = true
		return true, true
	default:
		return false, false
	}
}

// success records an attempt that proved the transport healthy and
// reports whether it closed a non-closed breaker (a rejoin).
//
//ccsim:zeroalloc
func (b *breaker) success() (rejoined bool) {
	rejoined = b.state == breakerHalfOpen || b.state == breakerOpen
	if b.state == breakerDead {
		return false
	}
	b.state = breakerClosed
	b.failures = 0
	b.probes = 0
	b.probing = false
	return rejoined
}

// failure records a transport-class failure (connection loss, 5xx — not
// timeouts while closed, which keep the breaker untouched).
//
//ccsim:zeroalloc
func (b *breaker) failure(now time.Time) {
	switch b.state {
	case breakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.state = breakerOpen
			b.openedAt = now
		}
	case breakerHalfOpen:
		b.probes++
		b.probing = false
		if b.probeLimit >= 0 && b.probes >= b.probeLimit {
			b.state = breakerDead
		} else {
			b.state = breakerOpen
			b.openedAt = now
		}
	case breakerOpen:
		// A concurrent slot's attempt that was already in flight when
		// the breaker opened; push the re-probe window out.
		b.openedAt = now
	case breakerDead:
	}
}
