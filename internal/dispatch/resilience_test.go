package dispatch

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// writeTestTrace writes a small deterministic trace file and returns
// its path.
func writeTestTrace(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "core0.trace")
	var blob []byte
	for i := 0; i < 64; i++ {
		blob = append(blob, []byte(fmt.Sprintf("%d %#x\n", i%3, uint64(i)*64))...)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestDispatchWorkerRejoinsMidCampaign is the circuit-breaker rejoin
// contract: a daemon that crashes mid-campaign and restarts must be
// re-probed, rejoin the fleet, and receive new units — not stay marked
// dead for the rest of the campaign. The crashed daemon is the only
// worker eligible for two trace-file units, so the campaign can only
// complete through its rejoin; the restarted incarnation's /metrics
// prove it executed work after coming back.
func TestDispatchWorkerRejoinsMidCampaign(t *testing.T) {
	shared := t.TempDir()
	trace := writeTestTrace(t, shared)

	var jobs []sweep.Job
	for seed := uint64(0); seed < 8; seed++ {
		jobs = append(jobs, sweep.Job{Label: fmt.Sprintf("plain-%d", seed), Config: tinyCfg("lbm", seed)})
	}
	for seed := uint64(0); seed < 2; seed++ {
		cfg := tinyCfg("mcf", 100+seed)
		cfg.TraceFiles = []string{trace}
		jobs = append(jobs, sweep.Job{Label: fmt.Sprintf("trace-%d", seed), Config: cfg})
	}
	distinct := distinctKeys(t, jobs)
	want, err := sweep.Run(context.Background(), jobs, sweep.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}

	// Worker A is healthy throughout but cannot run the trace units.
	aTS, aM := startWorker(t, server.ManagerConfig{Workers: 2, QueueDepth: 32})

	// Worker B crashes on its first job submission — the connection dies
	// mid-request, every open connection is severed, and the address
	// refuses work — then "restarts" 150ms later as a fresh manager (new
	// process state, same address), exactly like a supervised daemon.
	bCfg := server.ManagerConfig{Workers: 2, QueueDepth: 32, TraceRoot: shared}
	b1 := server.NewManager(bCfg)
	h1 := server.New(b1)
	var phase atomic.Int32 // 0 = first incarnation, 1 = down, 2 = restarted
	var restartMu sync.Mutex
	var b2 *server.Manager
	var h2 http.Handler
	restarted := make(chan struct{})
	var bTS *httptest.Server
	bTS = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch phase.Load() {
		case 0:
			if r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/v1/jobs") {
				if phase.CompareAndSwap(0, 1) {
					go func() {
						time.Sleep(150 * time.Millisecond)
						restartMu.Lock()
						b2 = server.NewManager(bCfg)
						h2 = server.New(b2)
						restartMu.Unlock()
						phase.Store(2)
						close(restarted)
					}()
					bTS.CloseClientConnections()
				}
				panic(http.ErrAbortHandler) // no submission ever reaches b1
			}
			h1.ServeHTTP(w, r)
		case 1:
			panic(http.ErrAbortHandler) // dead process: connections reset
		default:
			restartMu.Lock()
			h := h2
			restartMu.Unlock()
			h.ServeHTTP(w, r)
		}
	}))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		_ = b1.Drain(ctx)
		restartMu.Lock()
		if b2 != nil {
			_ = b2.Drain(ctx)
		}
		restartMu.Unlock()
		bTS.Close()
	})

	var stats Stats
	got, err := Run(context.Background(), jobs, Options{
		Endpoints:         []string{aTS.URL, bTS.URL},
		PollInterval:      2 * time.Millisecond,
		ReprobeInterval:   50 * time.Millisecond,
		BreakerProbeLimit: -1, // keep probing: the campaign cannot end without B
		PoisonThreshold:   -1, // failed probes on the trace units are not poison
		Stats:             &stats,
	})
	if err != nil {
		t.Fatalf("campaign failed despite worker restart: %v", err)
	}
	if phase.Load() != 2 {
		t.Fatal("worker B never crashed (campaign too small?)")
	}

	if gb, wb := mustJSON(t, got), mustJSON(t, want); string(gb) != string(wb) {
		t.Error("post-rejoin results are not byte-identical to the local sweep")
	}
	if stats.Rejoins < 1 {
		t.Errorf("stats.Rejoins = %d, want >= 1", stats.Rejoins)
	}
	if stats.Quarantined != 0 {
		t.Errorf("stats.Quarantined = %d, want 0", stats.Quarantined)
	}
	if stats.DeadEndpoints != 0 {
		t.Errorf("stats.DeadEndpoints = %d, want 0 (B rejoined and ended healthy)", stats.DeadEndpoints)
	}

	// The restarted incarnation must have received and executed units:
	// its metrics are the per-worker proof of the rejoin.
	restartMu.Lock()
	bM := b2
	restartMu.Unlock()
	bMetrics := bM.Metrics()
	if bMetrics.JobsSubmitted < 1 {
		t.Errorf("restarted worker received %d submissions, want >= 1", bMetrics.JobsSubmitted)
	}
	if bMetrics.SimulationsRun < 2 {
		t.Errorf("restarted worker ran %d simulations, want >= 2 (both trace units)", bMetrics.SimulationsRun)
	}
	if n := b1.Metrics().JobsSubmitted; n != 0 {
		t.Errorf("crashed incarnation accepted %d submissions after the crash", n)
	}
	if total := aM.Metrics().SimulationsRun + bMetrics.SimulationsRun; total != uint64(distinct) {
		t.Errorf("fleet ran %d simulations for %d distinct configs", total, distinct)
	}
}

// TestDispatchHedgesStragglers: a unit stuck on a stalled worker past
// HedgeAfter gets a second attempt on another worker, the first result
// wins, and the loser is discarded without double-counting simulations
// or indicting the stalled worker's breaker.
func TestDispatchHedgesStragglers(t *testing.T) {
	jobs := []sweep.Job{
		{Label: "a", Config: tinyCfg("lbm", 1)},
		{Label: "b", Config: tinyCfg("lbm", 2)},
		{Label: "c", Config: tinyCfg("mcf", 3)},
		{Label: "d", Config: tinyCfg("mcf", 4)},
	}
	want, err := sweep.Run(context.Background(), jobs, sweep.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	fastTS, _ := startWorker(t, server.ManagerConfig{Workers: 2, QueueDepth: 32})

	// The slow worker stalls its first submission far past the hedge
	// threshold — a straggler, not a crash: the connection stays open.
	slowM := server.NewManager(server.ManagerConfig{Workers: 1, QueueDepth: 32})
	slowH := server.New(slowM)
	var stalledOnce atomic.Bool
	slowTS := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/v1/jobs") && stalledOnce.CompareAndSwap(false, true) {
			time.Sleep(600 * time.Millisecond)
		}
		slowH.ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		_ = slowM.Drain(ctx)
		slowTS.Close()
	})

	var stats Stats
	got, err := Run(context.Background(), jobs, Options{
		Endpoints:    []string{fastTS.URL, slowTS.URL},
		PollInterval: 2 * time.Millisecond,
		HedgeAfter:   120 * time.Millisecond,
		Stats:        &stats,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stalledOnce.Load() {
		t.Fatal("the slow worker never received a submission to stall")
	}

	if gb, wb := mustJSON(t, got), mustJSON(t, want); string(gb) != string(wb) {
		t.Error("hedged campaign results are not byte-identical to the local sweep")
	}
	if stats.HedgesLaunched < 1 {
		t.Errorf("stats.HedgesLaunched = %d, want >= 1", stats.HedgesLaunched)
	}
	if stats.HedgesWon < 1 {
		t.Errorf("stats.HedgesWon = %d, want >= 1 (the stalled attempt cannot win)", stats.HedgesWon)
	}
	if stats.HedgesWon > stats.HedgesLaunched {
		t.Errorf("HedgesWon (%d) > HedgesLaunched (%d)", stats.HedgesWon, stats.HedgesLaunched)
	}
	// The no-double-count contract: exactly one simulation per distinct
	// config is credited, no matter how many hedges raced.
	if stats.Simulations != len(jobs) {
		t.Errorf("stats.Simulations = %d, want %d", stats.Simulations, len(jobs))
	}
	// A straggler is not a dead daemon: the stall must not have tripped
	// the slow worker's breaker.
	if stats.DeadEndpoints != 0 {
		t.Errorf("stats.DeadEndpoints = %d, want 0 (hedging must not indict the slow worker)", stats.DeadEndpoints)
	}
}

// TestDispatchPoisonQuarantine: a unit whose every attempt kills its
// worker is quarantined after PoisonThreshold crashes instead of
// cycling through re-probes forever.
func TestDispatchPoisonQuarantine(t *testing.T) {
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, `{"status":"ok","version":"test","workers":1}`)
			return
		}
		http.Error(w, "crashed", http.StatusInternalServerError)
	}))
	defer broken.Close()

	jobs := []sweep.Job{{Label: "poison", Config: tinyCfg("lbm", 1)}}
	var stats Stats
	_, err := Run(context.Background(), jobs, Options{
		Endpoints:         []string{broken.URL},
		PollInterval:      2 * time.Millisecond,
		ReprobeInterval:   20 * time.Millisecond,
		BreakerProbeLimit: -1, // quarantine, not probe exhaustion, must end this
		Stats:             &stats,
	})
	var jerr *sweep.JobError
	if !errors.As(err, &jerr) {
		t.Fatalf("error %v is not a *sweep.JobError", err)
	}
	if jerr.Index != 0 {
		t.Errorf("JobError.Index = %d, want 0", jerr.Index)
	}
	if !strings.Contains(err.Error(), "quarantined") {
		t.Errorf("error %q does not mention quarantine", err)
	}
	if stats.Quarantined != 1 {
		t.Errorf("stats.Quarantined = %d, want 1", stats.Quarantined)
	}
	if stats.Retries != 3 {
		t.Errorf("stats.Retries = %d, want 3 (the default poison threshold)", stats.Retries)
	}
}

// TestDispatchIneligibleDoesNotConsumeTried pins the satellite contract
// of retry(): an ErrIneligible rejection records permanent
// ineligibility but must not consume the unit's per-worker tried
// budget, feed the worker's breaker, or count toward poison quarantine
// — the worker is healthy, it just cannot see the trace files.
func TestDispatchIneligibleDoesNotConsumeTried(t *testing.T) {
	newDispatcher := func() (*dispatcher, *worker, *unit) {
		u := &unit{
			job:        sweep.Job{Label: "x", Config: tinyCfg("lbm", 1)},
			indices:    []int{0},
			tried:      map[int]bool{},
			ineligible: map[int]bool{},
			holders:    map[int]bool{0: true},
			cancels:    map[int]context.CancelFunc{},
			attempts:   1,
		}
		remote := &worker{id: 0, name: "remote", cli: client.New("http://127.0.0.1:1"), slots: 1,
			breaker: breaker{threshold: 1, reprobe: time.Second, probeLimit: 4}}
		local := &worker{id: 1, name: "local", slots: 1}
		d := &dispatcher{
			ctx:         context.Background(),
			jobs:        []sweep.Job{u.job},
			results:     make([]sim.Result, 1),
			workers:     []*worker{remote, local},
			stats:       &Stats{},
			units:       []*unit{u},
			outstanding: 1,
		}
		d.cond = sync.NewCond(&d.mu)
		return d, remote, u
	}

	// An eligibility rejection: permanent mark, everything else intact.
	d, remote, u := newDispatcher()
	alive := d.retry(remote, u, fmt.Errorf("client: job 0: %w", server.ErrIneligible), false)
	if !alive {
		t.Error("worker retired after an eligibility rejection")
	}
	if u.tried[remote.id] {
		t.Error("ErrIneligible consumed the unit's tried budget")
	}
	if !u.ineligible[remote.id] {
		t.Error("ErrIneligible not recorded as permanent ineligibility")
	}
	if u.crashes != 0 {
		t.Errorf("u.crashes = %d after ErrIneligible, want 0", u.crashes)
	}
	if remote.breaker.state != breakerClosed {
		t.Errorf("breaker state = %v after ErrIneligible, want closed", remote.breaker.state)
	}
	if !u.queued {
		t.Error("unit not requeued for the remaining candidate")
	}

	// A transport failure on the same shape: tried consumed, breaker
	// fed, crash counted.
	d, remote, u = newDispatcher()
	d.retry(remote, u, errors.New("connection refused"), false)
	if !u.tried[remote.id] {
		t.Error("transport failure did not consume the tried budget")
	}
	if u.ineligible[remote.id] {
		t.Error("transport failure recorded as ineligibility")
	}
	if u.crashes != 1 {
		t.Errorf("u.crashes = %d after transport failure, want 1", u.crashes)
	}
	if remote.breaker.state != breakerOpen {
		t.Errorf("breaker state = %v after transport failure, want open", remote.breaker.state)
	}
}

// TestAdaptiveHedgeThreshold pins the HedgeAdaptive cutoff: undefined
// below the sample floor, then 3× the p95 latency with a 250ms floor.
func TestAdaptiveHedgeThreshold(t *testing.T) {
	var lat []time.Duration
	for i := 0; i < 7; i++ {
		lat = append(lat, 10*time.Millisecond)
	}
	if _, ok := adaptiveHedgeThreshold(lat); ok {
		t.Error("threshold defined with fewer than 8 samples")
	}

	lat = append(lat, 10*time.Millisecond)
	thr, ok := adaptiveHedgeThreshold(lat)
	if !ok || thr != 250*time.Millisecond {
		t.Errorf("uniform fast latencies: threshold = %v/%v, want 250ms floor", thr, ok)
	}

	lat[len(lat)-1] = 200 * time.Millisecond // p95 of 8 samples = max
	thr, ok = adaptiveHedgeThreshold(lat)
	if !ok || thr != 600*time.Millisecond {
		t.Errorf("threshold = %v/%v, want 3×p95 = 600ms", thr, ok)
	}
}
