package dispatch

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/workload"
)

func tinyCfg(name string, seed uint64) sim.Config {
	cfg := sim.DefaultConfig(name)
	cfg.WarmupInstructions = 10_000
	cfg.RunInstructions = 20_000
	cfg.Seed = seed
	return cfg
}

// fig7aJobs builds the Quick-scale Figure 7a campaign shape: every
// mechanism for the first n single-core workloads, at the Quick()
// budgets (300k warmup / 150k run).
func fig7aJobs(n int) []sweep.Job {
	var jobs []sweep.Job
	for _, name := range workload.Names()[:n] {
		for _, mech := range sim.MechanismKinds() {
			cfg := sim.DefaultConfig(name)
			cfg.WarmupInstructions = 300_000
			cfg.RunInstructions = 150_000
			cfg.Mechanism = mech
			jobs = append(jobs, sweep.Job{Label: name + "/" + mech.String(), Config: cfg})
		}
	}
	return jobs
}

// startWorker boots one in-process ccsimd worker (manager + HTTP) and
// registers its drain/close.
func startWorker(t *testing.T, cfg server.ManagerConfig) (*httptest.Server, *server.Manager) {
	t.Helper()
	m := server.NewManager(cfg)
	ts := httptest.NewServer(server.New(m))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		_ = m.Drain(ctx)
		ts.Close()
	})
	return ts, m
}

// distinctKeys counts the singleflight units a job list collapses to.
func distinctKeys(t *testing.T, jobs []sweep.Job) int {
	t.Helper()
	keys := map[string]bool{}
	for _, j := range jobs {
		k, err := sweep.Key(j.Config)
		if err != nil {
			t.Fatal(err)
		}
		keys[k] = true
	}
	return len(keys)
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	blob, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestDistributedCampaignMatchesLocalRun is the core e2e contract: a
// Quick Fig7a campaign (with duplicated jobs thrown in) dispatched over
// three workers must return byte-identical results to a local
// sweep.Run, simulate each distinct config exactly once fleet-wide, and
// write every result back to the local cache.
func TestDistributedCampaignMatchesLocalRun(t *testing.T) {
	jobs := fig7aJobs(4)
	jobs = append(jobs, jobs[0], jobs[7], jobs[13]) // duplicates exercise fleet-wide dedup
	distinct := distinctKeys(t, jobs)

	want, err := sweep.Run(context.Background(), jobs, sweep.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}

	var managers []*server.Manager
	var endpoints []string
	for i := 0; i < 3; i++ {
		ts, m := startWorker(t, server.ManagerConfig{Workers: 2, QueueDepth: 32})
		managers = append(managers, m)
		endpoints = append(endpoints, ts.URL)
	}

	cache, err := sweep.OpenCache(filepath.Join(t.TempDir(), "results.json"))
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	var events []sweep.Event
	got, err := Run(context.Background(), jobs, Options{
		Endpoints:    endpoints,
		Cache:        cache,
		PollInterval: 2 * time.Millisecond,
		Stats:        &stats,
		Progress:     func(ev sweep.Event) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}

	if gb, wb := mustJSON(t, got), mustJSON(t, want); string(gb) != string(wb) {
		t.Error("distributed campaign results are not byte-identical to the local sweep")
	}

	var totalSims uint64
	for _, m := range managers {
		totalSims += m.Metrics().SimulationsRun
	}
	if totalSims != uint64(distinct) {
		t.Errorf("fleet ran %d simulations for %d distinct configs", totalSims, distinct)
	}
	if stats.Simulations != distinct {
		t.Errorf("stats.Simulations = %d, want %d", stats.Simulations, distinct)
	}
	if stats.Deduped != len(jobs)-distinct {
		t.Errorf("stats.Deduped = %d, want %d", stats.Deduped, len(jobs)-distinct)
	}
	if cache.Len() != distinct {
		t.Errorf("local cache holds %d results, want every distinct config (%d)", cache.Len(), distinct)
	}

	if len(events) != len(jobs) {
		t.Fatalf("%d progress events for %d jobs", len(events), len(jobs))
	}
	fresh := 0
	for i, ev := range events {
		if ev.Done != i+1 || ev.Total != len(jobs) {
			t.Errorf("event %d: Done=%d Total=%d", i, ev.Done, ev.Total)
		}
		if !ev.Cached && !ev.Deduped && ev.Err == nil {
			fresh++
		}
	}
	if fresh != distinct {
		t.Errorf("%d fresh completions, want exactly one per distinct config (%d)", fresh, distinct)
	}
}

// TestDistributedCampaignSurvivesWorkerLoss kills one of three workers
// mid-campaign — while it holds jobs in flight — and demands the
// campaign still complete with results byte-identical to a local run,
// with exactly one successful simulation per distinct config.
func TestDistributedCampaignSurvivesWorkerLoss(t *testing.T) {
	jobs := fig7aJobs(6)
	jobs = append(jobs, jobs[2], jobs[11])
	distinct := distinctKeys(t, jobs)

	want, err := sweep.Run(context.Background(), jobs, sweep.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}

	// Two healthy workers.
	var endpoints []string
	for i := 0; i < 2; i++ {
		ts, _ := startWorker(t, server.ManagerConfig{Workers: 2, QueueDepth: 32})
		endpoints = append(endpoints, ts.URL)
	}

	// The third dies during its third job submission: the submission in
	// flight fails on the wire, every open connection (including polls
	// for its running jobs) is severed, and all later requests get 500s
	// — the harshest realistic loss short of a network partition.
	victim := server.NewManager(server.ManagerConfig{Workers: 2, QueueDepth: 32})
	inner := server.New(victim)
	var submits atomic.Int64
	var killed atomic.Bool
	var victimTS *httptest.Server
	victimTS = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if killed.Load() {
			http.Error(w, "killed", http.StatusInternalServerError)
			return
		}
		if r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/v1/jobs") && submits.Add(1) == 3 {
			killed.Store(true)
			victimTS.CloseClientConnections()
			http.Error(w, "killed", http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		_ = victim.Drain(ctx)
		victimTS.Close()
	})
	endpoints = append(endpoints, victimTS.URL)

	var stats Stats
	var events []sweep.Event
	got, err := Run(context.Background(), jobs, Options{
		Endpoints:    endpoints,
		PollInterval: 2 * time.Millisecond,
		Stats:        &stats,
		Progress:     func(ev sweep.Event) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatalf("campaign failed after worker loss: %v", err)
	}
	if !killed.Load() {
		t.Fatal("test never killed the victim worker (campaign too small?)")
	}

	if gb, wb := mustJSON(t, got), mustJSON(t, want); string(gb) != string(wb) {
		t.Error("post-failover results are not byte-identical to the local sweep")
	}
	if stats.DeadEndpoints != 1 {
		t.Errorf("stats.DeadEndpoints = %d, want 1", stats.DeadEndpoints)
	}
	if stats.Retries < 1 {
		t.Errorf("stats.Retries = %d, want >= 1 (the killed submission must be retried elsewhere)", stats.Retries)
	}
	fresh := 0
	for _, ev := range events {
		if ev.Err != nil {
			t.Errorf("event %q carries error %v after successful failover", ev.Label, ev.Err)
		}
		if !ev.Cached && !ev.Deduped {
			fresh++
		}
	}
	if fresh != distinct {
		t.Errorf("%d fresh completions, want exactly one per distinct config (%d)", fresh, distinct)
	}
}

// TestDispatchFailoverFromBrokenEndpoint pins the failover path
// deterministically: an endpoint that probes healthy but fails every
// API call must be marked dead after its first assignment, with its
// units retried on the healthy endpoint.
func TestDispatchFailoverFromBrokenEndpoint(t *testing.T) {
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, `{"status":"ok","version":"test","workers":2}`)
			return
		}
		http.Error(w, "broken", http.StatusInternalServerError)
	}))
	defer broken.Close()
	ts, m := startWorker(t, server.ManagerConfig{Workers: 1, QueueDepth: 32})

	jobs := []sweep.Job{
		{Label: "a", Config: tinyCfg("lbm", 1)},
		{Label: "b", Config: tinyCfg("lbm", 2)},
		{Label: "c", Config: tinyCfg("mcf", 3)},
		{Label: "d", Config: tinyCfg("mcf", 4)},
	}
	want, err := sweep.Run(context.Background(), jobs, sweep.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	got, err := Run(context.Background(), jobs, Options{
		Endpoints:    []string{broken.URL, ts.URL},
		PollInterval: 2 * time.Millisecond,
		Stats:        &stats,
	})
	if err != nil {
		t.Fatal(err)
	}
	if gb, wb := mustJSON(t, got), mustJSON(t, want); string(gb) != string(wb) {
		t.Error("failover results differ from the local sweep")
	}
	if stats.DeadEndpoints != 1 || stats.Retries < 1 {
		t.Errorf("DeadEndpoints=%d Retries=%d, want 1/>=1", stats.DeadEndpoints, stats.Retries)
	}
	if m.Metrics().SimulationsRun != 4 {
		t.Errorf("healthy worker ran %d simulations, want all 4", m.Metrics().SimulationsRun)
	}
}

// TestDispatchServesLocalCacheFirst: a resumed campaign whose results
// are all cached locally must not touch the fleet at all.
func TestDispatchServesLocalCacheFirst(t *testing.T) {
	jobs := []sweep.Job{
		{Label: "a", Config: tinyCfg("lbm", 5)},
		{Label: "b", Config: tinyCfg("mcf", 6)},
	}
	cache, err := sweep.OpenCache(filepath.Join(t.TempDir(), "results.json"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := sweep.Run(context.Background(), jobs, sweep.Options{Workers: 2, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}

	ts, m := startWorker(t, server.ManagerConfig{Workers: 1})
	var stats Stats
	var events []sweep.Event
	got, err := Run(context.Background(), jobs, Options{
		Endpoints: []string{ts.URL},
		Cache:     cache,
		Stats:     &stats,
		Progress:  func(ev sweep.Event) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if gb, wb := mustJSON(t, got), mustJSON(t, want); string(gb) != string(wb) {
		t.Error("cache-served results differ")
	}
	if mt := m.Metrics(); mt.JobsSubmitted != 0 {
		t.Errorf("fleet received %d submissions for a fully cached campaign", mt.JobsSubmitted)
	}
	if stats.CacheHits != 2 || stats.Simulations != 0 {
		t.Errorf("CacheHits=%d Simulations=%d, want 2/0", stats.CacheHits, stats.Simulations)
	}
	for _, ev := range events {
		if !ev.Cached {
			t.Errorf("event %q not marked cached", ev.Label)
		}
	}
}

// TestDispatchTraceConfigs covers both trace-file paths: rejection with
// a clear error when no fleet worker shares the files, and execution on
// local workers / root-sharing endpoints when one does.
func TestDispatchTraceConfigs(t *testing.T) {
	shared := t.TempDir()
	path := filepath.Join(shared, "core0.trace")
	var blob []byte
	for i := 0; i < 64; i++ {
		blob = append(blob, []byte(fmt.Sprintf("%d %#x\n", i%3, uint64(i)*64))...)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := tinyCfg("lbm", 1)
	cfg.TraceFiles = []string{path}
	jobs := []sweep.Job{{Label: "trace", Config: cfg}}
	want, err := sweep.Run(context.Background(), jobs, sweep.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	// No shared root, no local workers: reject before running anything.
	plain, plainM := startWorker(t, server.ManagerConfig{Workers: 1})
	_, err = Run(context.Background(), jobs, Options{Endpoints: []string{plain.URL}, PollInterval: 2 * time.Millisecond})
	if err == nil || !strings.Contains(err.Error(), "trace") {
		t.Fatalf("trace config with no eligible worker: err = %v", err)
	}
	if plainM.Metrics().JobsSubmitted != 0 {
		t.Error("ineligible trace config reached the fleet")
	}

	// Local workers can always run it.
	got, err := Run(context.Background(), jobs, Options{Endpoints: []string{plain.URL}, LocalWorkers: 1, PollInterval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if gb, wb := mustJSON(t, got), mustJSON(t, want); string(gb) != string(wb) {
		t.Error("locally executed trace config differs from direct run")
	}

	// An endpoint advertising a covering shared root runs it remotely.
	rooted, rootedM := startWorker(t, server.ManagerConfig{Workers: 1, TraceRoot: shared})
	got, err = Run(context.Background(), jobs, Options{Endpoints: []string{rooted.URL}, PollInterval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if gb, wb := mustJSON(t, got), mustJSON(t, want); string(gb) != string(wb) {
		t.Error("remotely executed trace config differs from direct run")
	}
	if rootedM.Metrics().SimulationsRun != 1 {
		t.Errorf("root-sharing worker ran %d simulations, want 1", rootedM.Metrics().SimulationsRun)
	}
}

// TestDispatchSimulationFailure: a deterministic simulation error is a
// campaign failure carrying the input position — never retried on
// other workers.
func TestDispatchSimulationFailure(t *testing.T) {
	ts, _ := startWorker(t, server.ManagerConfig{Workers: 2})
	bad := tinyCfg("lbm", 1)
	bad.Workloads = []string{"no-such-workload"}
	jobs := []sweep.Job{
		{Label: "good", Config: tinyCfg("lbm", 1)},
		{Label: "bad", Config: bad},
	}
	var stats Stats
	_, err := Run(context.Background(), jobs, Options{
		Endpoints:    []string{ts.URL},
		PollInterval: 2 * time.Millisecond,
		Stats:        &stats,
	})
	var jerr *sweep.JobError
	if !errors.As(err, &jerr) {
		t.Fatalf("error %v is not a *sweep.JobError", err)
	}
	if jerr.Index != 1 || jerr.Label != "bad" {
		t.Errorf("JobError = index %d label %q, want 1/bad", jerr.Index, jerr.Label)
	}
	if stats.Retries != 0 {
		t.Errorf("deterministic failure was retried %d times", stats.Retries)
	}
}

// TestDispatchContextCancel: cancelling the campaign context stops
// dispatch and surfaces ctx.Err().
func TestDispatchContextCancel(t *testing.T) {
	ts, _ := startWorker(t, server.ManagerConfig{Workers: 1})
	var jobs []sweep.Job
	for seed := uint64(0); seed < 8; seed++ {
		cfg := tinyCfg("mcf", seed)
		cfg.RunInstructions = 4_000_000 // hundreds of ms each
		jobs = append(jobs, sweep.Job{Label: "slow", Config: cfg})
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	_, err := Run(ctx, jobs, Options{Endpoints: []string{ts.URL}, PollInterval: 2 * time.Millisecond})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled campaign returned %v, want context.Canceled", err)
	}
}

// TestSplitEndpoints pins the shared -servers/-peers flag parsing:
// whitespace-tolerant, empty entries dropped.
func TestSplitEndpoints(t *testing.T) {
	got := SplitEndpoints(" a:8344, b:8344 ,,c ")
	want := []string{"a:8344", "b:8344", "c"}
	if len(got) != len(want) {
		t.Fatalf("SplitEndpoints = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("SplitEndpoints[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if got := SplitEndpoints(""); got != nil {
		t.Errorf("SplitEndpoints(\"\") = %v, want nil", got)
	}
}

// TestDispatchNoUsableWorkers: a fleet where every endpoint fails its
// probe and no local pool exists is an immediate, explicit error.
func TestDispatchNoUsableWorkers(t *testing.T) {
	_, err := Run(context.Background(), []sweep.Job{{Label: "x", Config: tinyCfg("lbm", 1)}}, Options{
		Endpoints:    []string{"http://127.0.0.1:1"},
		ProbeTimeout: 500 * time.Millisecond,
	})
	if err == nil || !strings.Contains(err.Error(), "no usable workers") {
		t.Fatalf("err = %v, want a no-usable-workers error", err)
	}
}
