package dispatch

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/sweep"
)

// TestSelfHealingSoak is the self-healing acceptance soak: one
// campaign over a three-daemon fleet where every resilience mechanism
// fires at once, repeated across seeds to pin determinism.
//
//   - Daemon A completes jobs on a dead journal disk (degraded
//     memory-only storage, zero failed jobs, probe-and-restore after
//     the disk returns).
//   - Daemon B crashes mid-submission, its address refuses connections,
//     and a fresh incarnation binds the same address 120ms later. Two
//     trace-file units only B can run gate campaign completion on the
//     circuit-breaker re-probe actually rejoining it.
//   - Daemon C stalls every submission past the hedge threshold, so
//     straggler hedging fires and the first result wins.
//
// The campaign must return byte-identical results to a local
// sweep.Run, credit exactly one simulation per distinct config (hedges
// never double-count), and the restarted incarnation must execute
// units. `make soak` runs this under -race; go test -short trims the
// seed sweep.
func TestSelfHealingSoak(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) { soakOnce(t, seed) })
	}
}

func soakOnce(t *testing.T, seed uint64) {
	shared := t.TempDir()
	trace := writeTestTrace(t, shared)

	var jobs []sweep.Job
	for i := uint64(0); i < 12; i++ {
		jobs = append(jobs, sweep.Job{Label: fmt.Sprintf("plain-%d", i), Config: tinyCfg("lbm", seed*1000+i)})
	}
	for i := uint64(0); i < 2; i++ {
		cfg := tinyCfg("mcf", seed*1000+500+i)
		cfg.TraceFiles = []string{trace}
		jobs = append(jobs, sweep.Job{Label: fmt.Sprintf("trace-%d", i), Config: cfg})
	}
	distinct := distinctKeys(t, jobs)
	want, err := sweep.Run(context.Background(), jobs, sweep.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}

	// Daemon A: healthy transport, dead journal disk (a directory squats
	// on the journal's atomic-write temp path).
	aCachePath := filepath.Join(t.TempDir(), "results.json")
	aCache, err := sweep.OpenCache(aCachePath)
	if err != nil {
		t.Fatal(err)
	}
	journalBlock := aCachePath + ".jobs.tmp"
	if err := os.Mkdir(journalBlock, 0o755); err != nil {
		t.Fatal(err)
	}
	aM := server.NewManager(server.ManagerConfig{
		Workers: 2, QueueDepth: 32,
		Cache:                aCache,
		StorageProbeInterval: time.Millisecond,
	})
	aTS := httptest.NewServer(server.New(aM))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		_ = aM.Drain(ctx)
		aTS.Close()
	})

	// Daemon B: real process-style crash and restart on the same address.
	bCfg := server.ManagerConfig{Workers: 2, QueueDepth: 32, TraceRoot: shared}
	b1 := server.NewManager(bCfg)
	h1 := server.New(b1)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	var crashed atomic.Bool
	var restartMu sync.Mutex
	var b2 *server.Manager
	var srv2 *http.Server
	restarted := make(chan struct{})
	srv1 := &http.Server{}
	srv1.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/v1/jobs") {
			if crashed.CompareAndSwap(false, true) {
				go func() {
					_ = srv1.Close() // listener and every connection die
					time.Sleep(120 * time.Millisecond)
					var ln2 net.Listener
					for i := 0; i < 200; i++ {
						var lerr error
						if ln2, lerr = net.Listen("tcp", addr); lerr == nil {
							break
						}
						time.Sleep(5 * time.Millisecond)
					}
					if ln2 == nil {
						t.Errorf("could not rebind %s for the restart", addr)
						return
					}
					restartMu.Lock()
					b2 = server.NewManager(bCfg)
					srv2 = &http.Server{Handler: server.New(b2)}
					restartMu.Unlock()
					go func() { _ = srv2.Serve(ln2) }()
					close(restarted)
				}()
			}
			panic(http.ErrAbortHandler) // the crashing process never answers
		}
		h1.ServeHTTP(w, r)
	})
	go func() { _ = srv1.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		_ = b1.Drain(ctx)
		restartMu.Lock()
		if b2 != nil {
			_ = b2.Drain(ctx)
		}
		if srv2 != nil {
			_ = srv2.Close()
		}
		restartMu.Unlock()
		_ = srv1.Close()
	})

	// Daemon C: healthy but stalls every submission past the hedge
	// threshold — a permanent straggler.
	cM := server.NewManager(server.ManagerConfig{Workers: 2, QueueDepth: 32})
	cH := server.New(cM)
	cTS := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/v1/jobs") {
			time.Sleep(250 * time.Millisecond)
		}
		cH.ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		_ = cM.Drain(ctx)
		cTS.Close()
	})

	// Forensics for a red CI soak run.
	var stats Stats
	t.Cleanup(func() {
		dir := os.Getenv("CCSIMD_FAULT_ARTIFACTS")
		if !t.Failed() || dir == "" {
			return
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Logf("artifacts: %v", err)
			return
		}
		name := strings.ReplaceAll(t.Name(), "/", "_")
		snap := map[string]any{"stats": stats, "a": aM.Metrics(), "c": cM.Metrics()}
		restartMu.Lock()
		if b2 != nil {
			snap["b-restarted"] = b2.Metrics()
		}
		restartMu.Unlock()
		if blob, err := json.MarshalIndent(snap, "", "  "); err == nil {
			_ = os.WriteFile(filepath.Join(dir, name+"-soak.json"), blob, 0o644)
		}
		t.Logf("fault artifacts written to %s", dir)
	})

	// The campaign context carries a deadline, so every submission
	// propagates it to the daemons (generous enough never to shed).
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	got, err := Run(ctx, jobs, Options{
		Endpoints:         []string{aTS.URL, "http://" + addr, cTS.URL},
		PollInterval:      3 * time.Millisecond,
		ReprobeInterval:   40 * time.Millisecond,
		BreakerProbeLimit: -1, // B must be probed until it returns
		PoisonThreshold:   -1, // failed probes on B-only units are not poison
		HedgeAfter:        100 * time.Millisecond,
		Stats:             &stats,
	})
	if err != nil {
		t.Fatalf("soak campaign failed: %v", err)
	}
	if !crashed.Load() {
		t.Fatal("daemon B never crashed")
	}
	select {
	case <-restarted:
	default:
		t.Fatal("daemon B never restarted")
	}

	// Byte-identical results despite crash, restart, hedges, and a dead
	// journal disk.
	if gb, wb := mustJSON(t, got), mustJSON(t, want); string(gb) != string(wb) {
		t.Error("soak results are not byte-identical to the local sweep")
	}
	if stats.Rejoins < 1 {
		t.Errorf("stats.Rejoins = %d, want >= 1", stats.Rejoins)
	}
	if stats.HedgesLaunched < 1 {
		t.Errorf("stats.HedgesLaunched = %d, want >= 1", stats.HedgesLaunched)
	}
	if stats.Quarantined != 0 {
		t.Errorf("stats.Quarantined = %d, want 0", stats.Quarantined)
	}
	// One credited simulation per distinct config, no matter how many
	// hedges raced.
	if stats.Simulations != distinct {
		t.Errorf("stats.Simulations = %d, want %d", stats.Simulations, distinct)
	}

	// The restarted incarnation received and executed units (the trace
	// units can run nowhere else); the crashed one accepted nothing.
	restartMu.Lock()
	bM := b2
	restartMu.Unlock()
	bMetrics := bM.Metrics()
	if bMetrics.JobsSubmitted < 1 {
		t.Errorf("restarted daemon received %d submissions, want >= 1", bMetrics.JobsSubmitted)
	}
	if bMetrics.SimulationsRun < 2 {
		t.Errorf("restarted daemon ran %d simulations, want >= 2 (both trace units)", bMetrics.SimulationsRun)
	}
	if n := b1.Metrics().JobsSubmitted; n != 0 {
		t.Errorf("crashed incarnation accepted %d submissions", n)
	}

	// Daemon A ran the whole campaign on a dead journal disk: degraded,
	// but zero failed jobs. (Journal writes land asynchronously after
	// job completion, hence the poll.)
	var aMetrics server.Metrics
	deadline := time.Now().Add(10 * time.Second)
	for {
		aMetrics = aM.Metrics()
		if aMetrics.Storage != nil && aMetrics.Storage.JournalDegraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon A never reported a degraded journal: %+v", aMetrics.Storage)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !aMetrics.StorageDegraded {
		t.Error("daemon A StorageDegraded flag not set")
	}
	if aMetrics.JobsFailed != 0 {
		t.Errorf("daemon A failed %d jobs while degraded, want 0", aMetrics.JobsFailed)
	}

	// The disk returns: the next journaled completion probes, restores
	// the full snapshot, and the degraded flag clears.
	if err := os.Remove(journalBlock); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond) // let the probe window lapse
	sts, err := aM.Submit([]server.JobSpec{{Label: "restore-probe", Config: tinyCfg("lbm", seed*1000+900)}})
	if err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		st, err := aM.Job(sts[0].ID)
		if err != nil {
			t.Fatal(err)
		}
		aMetrics = aM.Metrics()
		if st.State.Terminal() && aMetrics.Storage != nil && !aMetrics.Storage.JournalDegraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon A journal never recovered: %+v", aMetrics.Storage)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if aMetrics.Storage.JournalRestores < 1 {
		t.Errorf("journal restores = %d, want >= 1", aMetrics.Storage.JournalRestores)
	}
	if _, err := os.Stat(aCachePath + ".jobs"); err != nil {
		t.Errorf("restored journal file missing: %v", err)
	}
}
