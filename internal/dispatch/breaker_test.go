package dispatch

import (
	"testing"
	"time"
)

// newTestBreaker returns a breaker with explicit knobs, mirroring how
// probe() arms per-worker breakers from Options.
func newTestBreaker(threshold int, reprobe time.Duration, probeLimit int) breaker {
	return breaker{threshold: threshold, reprobe: reprobe, probeLimit: probeLimit}
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newTestBreaker(3, time.Second, 4)

	for i := 0; i < 2; i++ {
		b.failure(now)
		if b.state != breakerClosed {
			t.Fatalf("after %d/3 failures: state = %v, want closed", i+1, b.state)
		}
		if ok, _ := b.allow(now); !ok {
			t.Fatalf("closed breaker denied an attempt after %d failures", i+1)
		}
	}
	b.failure(now)
	if b.state != breakerOpen {
		t.Fatalf("after threshold failures: state = %v, want open", b.state)
	}
	if ok, _ := b.allow(now); ok {
		t.Fatal("open breaker granted an attempt before the reprobe window")
	}
}

func TestBreakerSuccessResetsFailureBudget(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newTestBreaker(2, time.Second, 4)

	b.failure(now)
	if rejoined := b.success(); rejoined {
		t.Fatal("success on a closed breaker reported a rejoin")
	}
	// The budget is consecutive failures: one more must not open it.
	b.failure(now)
	if b.state != breakerClosed {
		t.Fatalf("state = %v, want closed (failure budget should have reset)", b.state)
	}
}

func TestBreakerReprobeGrantsSingleProbe(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newTestBreaker(1, time.Second, 4)

	b.failure(now)
	if b.state != breakerOpen {
		t.Fatalf("state = %v, want open", b.state)
	}
	if ok, _ := b.allow(now.Add(999 * time.Millisecond)); ok {
		t.Fatal("open breaker granted an attempt inside the reprobe window")
	}

	later := now.Add(time.Second)
	ok, probe := b.allow(later)
	if !ok || !probe {
		t.Fatalf("allow after reprobe window = (%v, %v), want (true, true)", ok, probe)
	}
	if b.state != breakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.state)
	}
	// Only one probe may be in flight: a second slot asking is denied.
	if ok, _ := b.allow(later); ok {
		t.Fatal("half-open breaker granted a second concurrent probe")
	}
}

func TestBreakerProbeSuccessRejoins(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newTestBreaker(1, time.Second, 4)

	b.failure(now)
	b.allow(now.Add(time.Second)) // half-open probe granted
	if rejoined := b.success(); !rejoined {
		t.Fatal("successful probe did not report a rejoin")
	}
	if b.state != breakerClosed {
		t.Fatalf("state = %v, want closed after successful probe", b.state)
	}
	if ok, probe := b.allow(now.Add(time.Second)); !ok || probe {
		t.Fatalf("allow after rejoin = (%v, %v), want (true, false)", ok, probe)
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newTestBreaker(1, time.Second, 4)

	b.failure(now)
	probeAt := now.Add(time.Second)
	b.allow(probeAt)
	b.failure(probeAt)
	if b.state != breakerOpen {
		t.Fatalf("state = %v, want open after failed probe", b.state)
	}
	if b.probing {
		t.Fatal("probing flag still set after the probe resolved")
	}
	// The reprobe window restarts from the failed probe, not the
	// original opening.
	if ok, _ := b.allow(probeAt.Add(999 * time.Millisecond)); ok {
		t.Fatal("reopened breaker granted an attempt inside the new reprobe window")
	}
	if ok, probe := b.allow(probeAt.Add(time.Second)); !ok || !probe {
		t.Fatal("reopened breaker denied the next reprobe")
	}
}

func TestBreakerDiesAfterProbeLimit(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newTestBreaker(1, time.Second, 2)

	b.failure(now)
	for i := 0; i < 2; i++ {
		now = now.Add(time.Second)
		ok, probe := b.allow(now)
		if !ok || !probe {
			t.Fatalf("probe %d not granted (state %v)", i+1, b.state)
		}
		b.failure(now)
	}
	if b.state != breakerDead {
		t.Fatalf("state = %v, want dead after %d failed probes", b.state, 2)
	}
	if ok, _ := b.allow(now.Add(time.Hour)); ok {
		t.Fatal("dead breaker granted an attempt")
	}
	// Dead is final: even a late success (a racing in-flight attempt
	// that happened to land) must not resurrect the worker.
	if rejoined := b.success(); rejoined {
		t.Fatal("success on a dead breaker reported a rejoin")
	}
	if b.state != breakerDead {
		t.Fatalf("state = %v, want dead after late success", b.state)
	}
}

func TestBreakerUnlimitedProbes(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newTestBreaker(1, time.Second, -1)

	b.failure(now)
	for i := 0; i < 50; i++ {
		now = now.Add(time.Second)
		ok, probe := b.allow(now)
		if !ok || !probe {
			t.Fatalf("probe %d not granted with unlimited probe budget (state %v)", i+1, b.state)
		}
		b.failure(now)
		if b.state == breakerDead {
			t.Fatalf("breaker died after %d probes despite probeLimit < 0", i+1)
		}
	}
	// And the 51st probe still rejoins.
	now = now.Add(time.Second)
	b.allow(now)
	if rejoined := b.success(); !rejoined {
		t.Fatal("probe success after many failures did not rejoin")
	}
}

func TestBreakerInFlightSuccessWhileOpenRejoins(t *testing.T) {
	// A concurrent slot's attempt that was already running when the
	// breaker opened may still succeed; that is live proof of health.
	now := time.Unix(1000, 0)
	b := newTestBreaker(1, time.Second, 4)

	b.failure(now)
	if rejoined := b.success(); !rejoined {
		t.Fatal("in-flight success while open did not rejoin")
	}
	if b.state != breakerClosed {
		t.Fatalf("state = %v, want closed", b.state)
	}
}

func TestBreakerFailureWhileOpenExtendsWindow(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newTestBreaker(1, time.Second, 4)

	b.failure(now)
	// A straggling in-flight attempt fails 800ms later: the reprobe
	// window pushes out so the probe reflects the newest evidence.
	b.failure(now.Add(800 * time.Millisecond))
	if ok, _ := b.allow(now.Add(time.Second)); ok {
		t.Fatal("breaker granted a probe measured from the stale opening time")
	}
	if ok, probe := b.allow(now.Add(1800 * time.Millisecond)); !ok || !probe {
		t.Fatal("breaker denied the probe after the extended window elapsed")
	}
}

func TestBreakerStateStrings(t *testing.T) {
	want := map[breakerState]string{
		breakerClosed:   "closed",
		breakerOpen:     "open",
		breakerHalfOpen: "half-open",
		breakerDead:     "dead",
	}
	for s, str := range want {
		if got := s.String(); got != str {
			t.Errorf("state %d String() = %q, want %q", s, got, str)
		}
	}
}
