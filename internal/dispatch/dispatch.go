// Package dispatch shards a sweep campaign across a fleet of ccsimd
// daemons plus an optional local worker pool, turning the single-node
// campaign engine (internal/sweep) into a horizontally scalable one
// while preserving sweep.Run's contract exactly:
//
//   - results come back in input order, bit-identical to a local run
//     (every worker executes the same deterministic simulator),
//   - the first failing simulation stops dispatch and is returned as a
//     *sweep.JobError carrying the lowest failed input index,
//   - cancelling ctx stops dispatch, cancels outstanding remote jobs
//     best-effort, and returns ctx.Err(),
//   - a local sweep.Cache is consulted before any dispatch and every
//     completed result is written back to it, so an interrupted
//     distributed campaign resumes locally (or on a different fleet).
//
// The dispatcher handles real fleet behaviour: endpoints are health
// probed up front and weighted by their advertised worker capacity
// (each endpoint holds at most that many jobs in flight), identical
// configs are singleflighted on sweep.Key so each distinct config
// simulates exactly once per campaign, and a job whose worker dies or
// times out is retried transparently on another endpoint.
//
// The fleet self-heals. Each endpoint runs behind a circuit breaker
// (see breaker.go): transport failures open it, and on an interval the
// worker is re-probed with a real unit — a daemon that crashed and
// restarted mid-campaign rejoins and receives new units. Straggling
// units can be hedged: once an attempt outlives the straggler
// threshold, a second attempt launches on another eligible worker and
// the first result wins, without double-counting simulations. A unit
// whose attempts keep killing workers is quarantined after
// PoisonThreshold crashes instead of cascading through the fleet. Only
// a unit with no live or recoverable worker left fails the campaign.
package dispatch

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// Options configures a distributed campaign.
type Options struct {
	// Endpoints are ccsimd base URLs. Each live endpoint contributes
	// in-flight capacity equal to its advertised worker count.
	Endpoints []string

	// LocalWorkers adds that many in-process simulation slots to the
	// fleet (0 = none). Local slots can always run trace-file configs.
	LocalWorkers int

	// Cache, when non-nil, is consulted before dispatch and receives
	// every completed result, so interrupted campaigns resume locally.
	Cache *sweep.Cache

	// Progress, when non-nil, observes one event per input job, with
	// monotonically increasing Done (see sweep.Options.Progress).
	Progress func(sweep.Event)

	// ProbeTimeout bounds the initial health probe per endpoint
	// (default 5s). Endpoints failing the probe are dropped for the
	// whole campaign.
	ProbeTimeout time.Duration

	// JobTimeout bounds one remote execution attempt (0 = none). An
	// attempt hitting it is retried on another worker, covering
	// workers that hang without closing connections.
	JobTimeout time.Duration

	// PollInterval is the remote status-poll period (0 = client
	// default). Tests shrink it.
	PollInterval time.Duration

	// MaxPerEndpoint clamps the probed per-endpoint capacity (0 = no
	// clamp), for sharing a fleet politely.
	MaxPerEndpoint int

	// Token is the bearer credential sent to every endpoint — required
	// against daemons with a tenant registry (ccsimd -tenants).
	Token string

	// ReprobeInterval is how long an open circuit breaker waits before
	// re-probing its endpoint with a real unit (default 3s). Crashed
	// daemons that restart within the campaign rejoin on this cadence.
	ReprobeInterval time.Duration

	// BreakerThreshold is the consecutive transport failures that open
	// an endpoint's breaker (default 1 — one connection loss pulls the
	// endpoint out of rotation until a probe succeeds).
	BreakerThreshold int

	// BreakerProbeLimit retires an endpoint permanently after that many
	// consecutive failed re-probes (default 4; negative = keep probing
	// for the whole campaign).
	BreakerProbeLimit int

	// HedgeAfter enables straggler hedging: an in-flight unit older
	// than this is attempted a second time on another eligible worker,
	// first result wins. 0 disables fixed-threshold hedging (see
	// HedgeAdaptive).
	HedgeAfter time.Duration

	// HedgeAdaptive, when HedgeAfter is 0, derives the straggler
	// threshold from the campaign itself: 3× the p95 of fresh unit
	// latencies, once at least 8 units have completed.
	HedgeAdaptive bool

	// PoisonThreshold quarantines a unit after that many attempts that
	// each ended in a worker-killing transport failure (default 3;
	// negative = never quarantine).
	PoisonThreshold int

	// Stats, when non-nil, is filled with campaign totals before Run
	// returns.
	Stats *Stats
}

func (o Options) reprobeInterval() time.Duration {
	if o.ReprobeInterval > 0 {
		return o.ReprobeInterval
	}
	return 3 * time.Second
}

func (o Options) breakerThreshold() int {
	if o.BreakerThreshold > 0 {
		return o.BreakerThreshold
	}
	return 1
}

func (o Options) breakerProbeLimit() int {
	if o.BreakerProbeLimit != 0 {
		return o.BreakerProbeLimit
	}
	return 4
}

func (o Options) poisonThreshold() int {
	if o.PoisonThreshold != 0 {
		return o.PoisonThreshold
	}
	return 3
}

// Stats summarizes how a campaign used the fleet.
type Stats struct {
	Endpoints      int // endpoints that passed the probe and ended the campaign healthy
	DeadEndpoints  int // endpoints that failed the probe or ended with a non-closed breaker
	Slots          int // total in-flight capacity at start, local slots included
	Simulations    int // distinct configs freshly simulated fleet-wide
	CacheHits      int // jobs served from a cache (local or a daemon's)
	Deduped        int // jobs that shared another identical job's simulation
	Retries        int // assignments retried on another worker after a loss or timeout
	Rejoins        int // circuit-breaker re-probes that brought an endpoint back
	HedgesLaunched int // second attempts started for straggling units
	HedgesWon      int // hedged attempts that beat the original
	Quarantined    int // units failed for killing PoisonThreshold workers
}

// unit is one distinct simulation: all input jobs sharing a sweep.Key
// collapse onto it (singleflight). At most two attempts run at a time
// (the original and one hedge), and exactly one terminal outcome wins.
type unit struct {
	key     string // content address; "" for uncacheable configs
	job     sweep.Job
	indices []int // input positions served by this unit

	tried      map[int]bool // workers that lost/timed out on it; cleared when a worker rejoins
	ineligible map[int]bool // workers that rejected it as ineligible — permanent, unlike tried

	holders map[int]bool               // workers with an attempt in flight
	cancels map[int]context.CancelFunc // per-attempt cancels, for first-result-wins

	attempts    int       // attempts currently in flight
	crashes     int       // attempts that ended in a worker-killing transport failure
	hedged      bool      // a hedge attempt was launched (at most one per unit)
	hedgeWorker int       // worker that launched the hedge
	queued      bool      // sitting in dispatcher.pending
	lastClaim   time.Time // when the newest attempt was claimed

	err  error // terminal failure
	done bool
}

// hasTraces reports whether the unit's config replays trace files.
func (u *unit) hasTraces() bool {
	for _, p := range u.job.Config.TraceFiles {
		if p != "" {
			return true
		}
	}
	return false
}

// worker is one execution backend: a probed endpoint or the local
// pool. Its slot count many goroutines each hold at most one unit in
// flight, which both bounds per-worker load and realizes
// capacity-weighted assignment — a 16-worker daemon pulls units four
// times as fast as a 4-worker one.
type worker struct {
	id        int
	name      string
	cli       *client.Client // nil for the local pool
	traceRoot string
	slots     int
	breaker   breaker // guarded by dispatcher.mu
}

// Run executes jobs across the fleet described by opts and returns
// results in input order. See the package comment for the contract.
func Run(ctx context.Context, jobs []sweep.Job, opts Options) ([]sim.Result, error) {
	if len(jobs) == 0 {
		return nil, nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers, probeErrs := probe(ctx, opts)
	stats := Stats{DeadEndpoints: len(probeErrs)}
	for _, w := range workers {
		if w.cli != nil {
			stats.Endpoints++
		}
		stats.Slots += w.slots
	}
	defer func() {
		if opts.Stats != nil {
			*opts.Stats = stats
		}
	}()
	if len(workers) == 0 {
		return nil, fmt.Errorf("dispatch: no usable workers: every endpoint failed its health probe (%s) and no local workers are configured", errJoin(probeErrs))
	}

	d := &dispatcher{
		ctx:     ctx,
		jobs:    jobs,
		results: make([]sim.Result, len(jobs)),
		workers: workers,
		opts:    opts,
		stats:   &stats,
	}
	d.cond = sync.NewCond(&d.mu)

	units := d.buildUnits()
	if err := d.checkTraceEligibility(units); err != nil {
		return nil, err
	}
	d.units = units
	d.pending = append(d.pending, units...)
	for _, u := range units {
		u.queued = true
	}
	d.outstanding = len(units)

	// Wake blocked workers when the caller cancels.
	runDone := make(chan struct{})
	defer close(runDone)
	go func() {
		select {
		case <-ctx.Done():
		case <-runDone:
		}
		d.mu.Lock()
		d.cond.Broadcast()
		d.mu.Unlock()
	}()

	var wg sync.WaitGroup
	for _, w := range d.workers {
		for s := 0; s < w.slots; s++ {
			wg.Add(1)
			go func(w *worker) {
				defer wg.Done()
				d.serve(w)
			}(w)
		}
	}
	wg.Wait()

	// An endpoint that ends the campaign with a non-closed breaker died
	// mid-campaign (and never rejoined): report it dead.
	d.mu.Lock()
	for _, w := range d.workers {
		if w.cli != nil && w.breaker.state != breakerClosed {
			stats.Endpoints--
			stats.DeadEndpoints++
		}
	}
	d.mu.Unlock()

	// Mirror sweep.Run: the recorded failure with the lowest input
	// index wins; an external cancellation with no recorded failure
	// surfaces as ctx.Err().
	var firstErr *sweep.JobError
	for _, u := range units {
		if u.err == nil {
			continue
		}
		idx := u.indices[0]
		if firstErr == nil || idx < firstErr.Index {
			firstErr = &sweep.JobError{Index: idx, Label: jobs[idx].Label, Err: u.err}
		}
	}
	if firstErr != nil {
		return d.results, firstErr
	}
	if err := ctx.Err(); err != nil {
		return d.results, err
	}
	return d.results, nil
}

// dispatcher is the shared coordination state of one Run call.
type dispatcher struct {
	ctx     context.Context
	jobs    []sweep.Job
	results []sim.Result
	workers []*worker
	opts    Options
	stats   *Stats

	mu          sync.Mutex
	cond        *sync.Cond
	units       []*unit
	pending     []*unit
	outstanding int // units not yet terminal
	failed      bool
	latencies   []time.Duration // fresh unit latencies, for the adaptive hedge threshold

	progMu sync.Mutex
	done   int // finished input jobs; guarded by progMu
}

// probe health-checks every endpoint concurrently and returns the live
// workers (capacity-weighted) plus the local pool.
func probe(ctx context.Context, opts Options) ([]*worker, []error) {
	timeout := opts.ProbeTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	type outcome struct {
		w   *worker
		err error
	}
	outcomes := make([]outcome, len(opts.Endpoints))
	var wg sync.WaitGroup
	for i, ep := range opts.Endpoints {
		wg.Add(1)
		go func(i int, ep string) {
			defer wg.Done()
			cli := client.New(ep)
			cli.Token = opts.Token
			if opts.PollInterval > 0 {
				cli.PollInterval = opts.PollInterval
			}
			pctx, cancel := context.WithTimeout(ctx, timeout)
			defer cancel()
			h, err := cli.Health(pctx)
			if err != nil {
				outcomes[i] = outcome{err: fmt.Errorf("dispatch: endpoint %s: %w", ep, err)}
				return
			}
			slots := h.Workers
			if slots < 1 {
				slots = 1
			}
			if opts.MaxPerEndpoint > 0 && slots > opts.MaxPerEndpoint {
				slots = opts.MaxPerEndpoint
			}
			outcomes[i] = outcome{w: &worker{
				name:      cli.Base(),
				cli:       cli,
				traceRoot: h.TraceRoot,
				slots:     slots,
			}}
		}(i, ep)
	}
	wg.Wait()

	var workers []*worker
	var errs []error
	for _, o := range outcomes {
		switch {
		case o.w != nil:
			workers = append(workers, o.w)
		case o.err != nil:
			errs = append(errs, o.err)
		}
	}
	if opts.LocalWorkers > 0 {
		workers = append(workers, &worker{name: "local", slots: opts.LocalWorkers})
	}
	for i, w := range workers {
		w.id = i
		w.breaker = breaker{
			threshold:  opts.breakerThreshold(),
			reprobe:    opts.reprobeInterval(),
			probeLimit: opts.breakerProbeLimit(),
		}
	}
	return workers, errs
}

// buildUnits collapses the input jobs onto distinct units (singleflight
// on sweep.Key) and completes cache hits immediately. Uncacheable
// configs each get their own unit.
func (d *dispatcher) buildUnits() []*unit {
	var units []*unit
	byKey := map[string]*unit{}
	for i, job := range d.jobs {
		key, _ := sweep.Key(job.Config) // "" when uncacheable
		if key != "" {
			if u, ok := byKey[key]; ok {
				u.indices = append(u.indices, i)
				continue
			}
		}
		u := &unit{
			key:        key,
			job:        job,
			indices:    []int{i},
			tried:      map[int]bool{},
			ineligible: map[int]bool{},
			holders:    map[int]bool{},
			cancels:    map[int]context.CancelFunc{},
		}
		units = append(units, u)
		if key != "" {
			byKey[key] = u
		}
	}
	// Serve local cache hits before any dispatch, so resumed campaigns
	// touch the fleet only for missing configs.
	if d.opts.Cache == nil {
		return units
	}
	live := units[:0]
	for _, u := range units {
		if u.key == "" {
			live = append(live, u)
			continue
		}
		res, ok := d.opts.Cache.Lookup(u.key)
		if !ok {
			live = append(live, u)
			continue
		}
		u.done = true
		d.stats.CacheHits += len(u.indices)
		d.fill(u, res)
		d.report(u, res, true, true, 0, nil)
	}
	return live
}

// checkTraceEligibility rejects, up front and with a clear error, any
// trace-file config that no fleet worker can faithfully execute: remote
// daemons open trace paths on their own filesystem, so only endpoints
// advertising a shared trace root covering the paths (or local
// workers) qualify.
func (d *dispatcher) checkTraceEligibility(units []*unit) error {
	for _, u := range units {
		if !u.hasTraces() || u.done {
			continue
		}
		eligible := false
		var lastErr error
		for _, w := range d.workers {
			if err := eligibleErr(u, w); err == nil {
				eligible = true
				break
			} else {
				lastErr = err
			}
		}
		if !eligible {
			return fmt.Errorf("dispatch: job %q cannot run anywhere in the fleet: %w (add local workers, or endpoints started with -trace-root over a shared directory)", u.job.Label, lastErr)
		}
	}
	return nil
}

// eligibleErr reports whether w can faithfully execute u ("" error).
func eligibleErr(u *unit, w *worker) error {
	if w.cli == nil || !u.hasTraces() {
		return nil
	}
	return client.ValidateTraceFiles(u.job.Config, w.traceRoot)
}

// serve is one worker slot's loop: claim the next eligible unit,
// execute it, repeat until the campaign ends or the worker's breaker
// goes permanently dead.
func (d *dispatcher) serve(w *worker) {
	for {
		u, probe := d.next(w)
		if u == nil {
			return
		}
		if !d.execute(w, u, probe) {
			return
		}
	}
}

// next blocks until w may take work — a pending unit, or a straggling
// in-flight unit worth hedging — and claims it. probe marks the claim
// as the worker's half-open re-probe. Returns nil when the campaign is
// over for this worker.
func (d *dispatcher) next(w *worker) (u *unit, probe bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.ctx.Err() != nil || d.failed || d.outstanding == 0 || w.breaker.state == breakerDead {
			return nil, false
		}
		ok, probeAttempt := w.breaker.allow(time.Now())
		if ok {
			if probeAttempt {
				// The re-probe runs a real unit. Give this worker a
				// fresh slate: tried marks recorded against its dead
				// incarnation no longer apply.
				d.clearTriedLocked(w)
			}
			for i, p := range d.pending {
				if p.tried[w.id] || p.ineligible[w.id] || eligibleErr(p, w) != nil {
					continue
				}
				d.pending = append(d.pending[:i], d.pending[i+1:]...)
				p.queued = false
				d.claimLocked(w, p)
				return p, probeAttempt
			}
			if h := d.hedgeCandidateLocked(w); h != nil {
				d.stats.HedgesLaunched++
				h.hedged = true
				h.hedgeWorker = w.id
				d.claimLocked(w, h)
				return h, probeAttempt
			}
			if probeAttempt {
				// Nothing claimable: release the probe slot so a later
				// wake-up can retry it.
				w.breaker.probing = false
			}
		} else if w.breaker.state == breakerOpen {
			// Wake this slot when the re-probe window opens.
			d.scheduleWake(time.Until(w.breaker.openedAt.Add(w.breaker.reprobe)))
		}
		d.cond.Wait()
	}
}

// claimLocked books an attempt of u on w and, when hedging is on, arms
// a wake-up at the straggler threshold so idle slots re-evaluate.
func (d *dispatcher) claimLocked(w *worker, u *unit) {
	u.attempts++
	u.holders[w.id] = true
	u.lastClaim = time.Now()
	if thr, ok := d.hedgeThresholdLocked(); ok && !u.hedged {
		d.scheduleWake(thr + time.Millisecond)
	}
}

// scheduleWake broadcasts the dispatcher condition after delay, waking
// slots parked in next() for time-based transitions (breaker re-probe
// windows, hedge thresholds).
func (d *dispatcher) scheduleWake(delay time.Duration) {
	if delay < time.Millisecond {
		delay = time.Millisecond
	}
	time.AfterFunc(delay, func() {
		d.mu.Lock()
		d.cond.Broadcast()
		d.mu.Unlock()
	})
}

// hedgeCandidateLocked picks the oldest straggling in-flight unit w
// could usefully run a second attempt of, or nil.
func (d *dispatcher) hedgeCandidateLocked(w *worker) *unit {
	thr, ok := d.hedgeThresholdLocked()
	if !ok {
		return nil
	}
	now := time.Now()
	var best *unit
	for _, u := range d.units {
		if u.done || u.queued || u.attempts != 1 || u.hedged {
			continue
		}
		if u.holders[w.id] || u.tried[w.id] || u.ineligible[w.id] || eligibleErr(u, w) != nil {
			continue
		}
		if now.Sub(u.lastClaim) < thr {
			continue
		}
		if best == nil || u.lastClaim.Before(best.lastClaim) {
			best = u
		}
	}
	return best
}

// hedgeThresholdLocked resolves the straggler threshold: the fixed
// HedgeAfter, or (HedgeAdaptive) 3× the p95 of fresh unit latencies
// once enough samples exist.
func (d *dispatcher) hedgeThresholdLocked() (time.Duration, bool) {
	if d.opts.HedgeAfter > 0 {
		return d.opts.HedgeAfter, true
	}
	if !d.opts.HedgeAdaptive {
		return 0, false
	}
	thr, ok := adaptiveHedgeThreshold(d.latencies)
	return thr, ok
}

// adaptiveHedgeThreshold derives a straggler cutoff from observed
// fresh-simulation latencies: 3× p95 with a 250ms floor, defined only
// once hedgeMinSamples latencies exist.
func adaptiveHedgeThreshold(latencies []time.Duration) (time.Duration, bool) {
	const hedgeMinSamples = 8
	if len(latencies) < hedgeMinSamples {
		return 0, false
	}
	sorted := append([]time.Duration(nil), latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	p95 := sorted[(len(sorted)*95+99)/100-1]
	thr := 3 * p95
	if thr < 250*time.Millisecond {
		thr = 250 * time.Millisecond
	}
	return thr, true
}

// execute runs one claimed attempt of u on w. It returns false when the
// slot must retire (campaign cancelled or breaker permanently dead).
func (d *dispatcher) execute(w *worker, u *unit, probe bool) bool {
	actx, acancel := context.WithCancel(d.ctx)
	defer acancel()
	d.mu.Lock()
	if u.done {
		// The unit resolved between claim and start (hedge partner won).
		d.endAttemptLocked(w, u)
		d.mu.Unlock()
		return true
	}
	if w.cli != nil {
		u.cancels[w.id] = acancel
	}
	d.mu.Unlock()

	start := time.Now()
	var (
		res    sim.Result
		cached bool
		err    error
	)
	if w.cli == nil {
		sys, nerr := sim.New(u.job.Config)
		if nerr == nil {
			res, err = sys.Run()
		} else {
			err = nerr
		}
	} else {
		jctx, jcancel := actx, func() {}
		if d.opts.JobTimeout > 0 {
			jctx, jcancel = context.WithTimeout(actx, d.opts.JobTimeout)
		}
		var st server.JobStatus
		st, err = w.cli.RunJob(jctx, server.JobSpec{Label: u.job.Label, Config: u.job.Config})
		jcancel()
		if err == nil {
			if st.Result == nil {
				err = fmt.Errorf("dispatch: %s finished job without a result", w.name)
			} else {
				res, cached = *st.Result, st.Cached
			}
		}
	}
	elapsed := time.Since(start)

	// An attempt cancelled because its hedge partner already landed the
	// unit is not evidence about this worker: discard it quietly.
	if err != nil && d.ctx.Err() == nil {
		d.mu.Lock()
		lost := u.done
		if lost {
			d.endAttemptLocked(w, u)
		}
		d.mu.Unlock()
		if lost {
			return w.cli == nil || !d.breakerDead(w)
		}
	}

	switch {
	case err == nil:
		d.breakerOK(w)
		d.complete(w, u, res, cached, elapsed)
		return true
	case isPermanent(w, err) && !isDeadlineFailure(err):
		d.breakerOK(w)
		d.fail(w, u, err, elapsed)
		return true
	case d.ctx.Err() != nil:
		d.abandon(w, u)
		return false
	default:
		// The worker died, the attempt timed out, or the daemon shed the
		// job for an unmeetable deadline: retry the unit on another
		// worker. Timeouts and deadline sheds keep the breaker closed —
		// one slow or over-committed daemon is not evidence it is gone.
		return d.retry(w, u, err, probe)
	}
}

// breakerDead reports (under the lock) whether w is permanently gone.
func (d *dispatcher) breakerDead(w *worker) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return w.breaker.state == breakerDead
}

// breakerOK records a transport-healthy attempt outcome. When it closes
// a previously open breaker, the worker has rejoined: its stale tried
// marks are already cleared (the probe grant did it) and every parked
// slot re-evaluates.
func (d *dispatcher) breakerOK(w *worker) {
	d.mu.Lock()
	if w.breaker.success() {
		d.stats.Rejoins++
		d.clearTriedLocked(w)
		d.cond.Broadcast()
	}
	d.mu.Unlock()
}

// clearTriedLocked forgets every tried mark recorded against w — used
// when w rejoins, since the marks indict a previous incarnation of the
// daemon. Ineligibility marks persist: trace roots don't resurrect.
func (d *dispatcher) clearTriedLocked(w *worker) {
	for _, u := range d.units {
		delete(u.tried, w.id)
	}
}

// isPermanent classifies failures that would recur identically on any
// worker: the simulation itself failed (locally, or remotely reported
// via *server.RemoteJobError), or the daemon rejected the config as
// invalid (HTTP 400).
func isPermanent(w *worker, err error) bool {
	if w.cli == nil {
		return true // local simulation errors are deterministic
	}
	var remoteErr *server.RemoteJobError
	if errors.As(err, &remoteErr) {
		return true
	}
	var apiErr *client.APIError
	return errors.As(err, &apiErr) && apiErr.Status == 400
}

// isDeadlineFailure classifies outcomes caused by deadline enforcement
// somewhere downstream — the daemon failed the job queue-side (reason
// "deadline") or shed it at admission. They are retryable on a less
// loaded worker and say nothing about transport health.
func isDeadlineFailure(err error) bool {
	var remoteErr *server.RemoteJobError
	if errors.As(err, &remoteErr) && remoteErr.Reason == server.ReasonDeadline {
		return true
	}
	var apiErr *client.APIError
	return errors.As(err, &apiErr) && apiErr.Code == server.ErrCodeDeadlineUnmeetable
}

// endAttemptLocked books the end of w's attempt on u.
func (d *dispatcher) endAttemptLocked(w *worker, u *unit) {
	if u.holders[w.id] {
		u.attempts--
	}
	delete(u.holders, w.id)
	delete(u.cancels, w.id)
}

// complete lands one attempt's result. The first terminal attempt wins:
// it writes the cache, fills results, and counts stats exactly once; a
// hedge partner finishing later is discarded.
func (d *dispatcher) complete(w *worker, u *unit, res sim.Result, cached bool, elapsed time.Duration) {
	d.mu.Lock()
	if u.done {
		d.endAttemptLocked(w, u)
		d.mu.Unlock()
		return
	}
	d.mu.Unlock()
	if d.opts.Cache != nil && u.key != "" {
		if err := d.opts.Cache.PutKeyed(u.key, res); err != nil {
			d.fail(w, u, err, elapsed)
			return
		}
	}
	d.mu.Lock()
	d.endAttemptLocked(w, u)
	if u.done {
		d.mu.Unlock()
		return
	}
	u.done = true
	if u.hedged && u.hedgeWorker == w.id {
		d.stats.HedgesWon++
	}
	for _, cancel := range u.cancels {
		cancel()
	}
	d.fill(u, res)
	d.outstanding--
	if cached {
		d.stats.CacheHits++
	} else {
		d.stats.Simulations++
		d.latencies = append(d.latencies, elapsed)
	}
	d.stats.Deduped += len(u.indices) - 1
	d.cond.Broadcast()
	d.mu.Unlock()
	d.report(u, res, cached, false, elapsed, nil)
}

// fail records a terminal unit failure and stops further dispatch
// (first-error cancellation; in-flight units still finish and record
// their results, exactly like sweep.Run).
func (d *dispatcher) fail(w *worker, u *unit, err error, elapsed time.Duration) {
	d.mu.Lock()
	d.endAttemptLocked(w, u)
	if u.done {
		d.mu.Unlock()
		return
	}
	u.err = err
	u.done = true
	for _, cancel := range u.cancels {
		cancel()
	}
	d.outstanding--
	d.failed = true
	d.cond.Broadcast()
	d.mu.Unlock()
	d.report(u, sim.Result{}, false, false, elapsed, err)
}

// abandon drops an attempt that died with the campaign context: nobody
// will retry it, and Run reports ctx.Err().
func (d *dispatcher) abandon(w *worker, u *unit) {
	d.mu.Lock()
	d.endAttemptLocked(w, u)
	if !u.done {
		u.done = true
		d.outstanding--
	}
	d.cond.Broadcast()
	d.mu.Unlock()
}

// retry hands a unit back after w lost it. Transport failures feed the
// worker's circuit breaker (and the unit's crash count, for poison
// quarantine); eligibility rejections are recorded separately and do
// not consume the unit's per-worker tried budget. The unit either
// requeues for the remaining candidates, stays with a live hedge
// partner, or — when no live or recoverable worker is left — fails the
// campaign. Returns whether this slot may keep serving.
func (d *dispatcher) retry(w *worker, u *unit, err error, probe bool) bool {
	ineligible := errors.Is(err, server.ErrIneligible)
	timeoutish := errors.Is(err, context.DeadlineExceeded) || isDeadlineFailure(err)
	transport := !ineligible && !timeoutish

	d.mu.Lock()
	d.endAttemptLocked(w, u)
	d.stats.Retries++
	if ineligible {
		u.ineligible[w.id] = true
	} else {
		u.tried[w.id] = true
	}
	if transport {
		u.crashes++
		w.breaker.failure(time.Now())
	} else if probe && w.cli != nil {
		// A re-probe that timed out or was shed did not prove the
		// worker healthy; send the breaker back to open rather than
		// wedging half-open forever.
		w.breaker.failure(time.Now())
	}
	if w.breaker.state == breakerOpen {
		d.scheduleWake(w.breaker.reprobe + time.Millisecond)
	}

	var failedUnits []*unit
	quarantine := d.opts.poisonThreshold()
	if !u.done && quarantine > 0 && u.crashes >= quarantine {
		d.stats.Quarantined++
		u.err = fmt.Errorf("dispatch: job %q quarantined: %d consecutive attempts each killed their worker (last: %v)", u.job.Label, u.crashes, err)
		d.terminateLocked(u)
		failedUnits = append(failedUnits, u)
	}

	// Fail every unit — this one and pending ones — that no live or
	// recoverable worker can take anymore, so campaigns never hang on a
	// shrinking fleet.
	requeue := d.pending[:0]
	for _, p := range d.pending {
		if d.hasCandidateLocked(p) {
			requeue = append(requeue, p)
			continue
		}
		p.queued = false
		p.err = fmt.Errorf("dispatch: no live worker left for %q (last endpoint lost: %v)", p.job.Label, err)
		d.terminateLocked(p)
	}
	d.pending = requeue
	if !u.done {
		switch {
		case u.attempts > 0:
			// A hedge partner still runs this unit; its outcome decides.
		case d.hasCandidateLocked(u):
			if !u.queued {
				u.queued = true
				d.pending = append(d.pending, u)
			}
		default:
			u.err = fmt.Errorf("dispatch: job %q failed on every live worker: %w", u.job.Label, err)
			d.terminateLocked(u)
			failedUnits = append(failedUnits, u)
		}
	}
	alive := w.breaker.state != breakerDead
	d.cond.Broadcast()
	d.mu.Unlock()
	for _, fu := range failedUnits {
		d.report(fu, sim.Result{}, false, false, 0, fu.err)
	}
	return alive
}

// terminateLocked marks u terminally failed and cancels any attempt
// still in flight.
func (d *dispatcher) terminateLocked(u *unit) {
	u.done = true
	for _, cancel := range u.cancels {
		cancel()
	}
	d.outstanding--
	d.failed = true
}

// hasCandidateLocked reports whether any worker can still take u. An
// open (but not dead) breaker counts: its daemon may rejoin, and the
// unit's tried mark against it is cleared on the re-probe.
func (d *dispatcher) hasCandidateLocked(u *unit) bool {
	for _, w := range d.workers {
		if w.breaker.state == breakerDead || u.ineligible[w.id] || eligibleErr(u, w) != nil {
			continue
		}
		if u.tried[w.id] && w.breaker.state == breakerClosed {
			continue
		}
		return true
	}
	return false
}

// fill writes one result into every input slot the unit serves. Called
// with dispatcher.mu held when attempts may race (hedges), so exactly
// one attempt writes.
func (d *dispatcher) fill(u *unit, res sim.Result) {
	for _, idx := range u.indices {
		d.results[idx] = res
	}
}

// report emits one progress event per input job of the unit, under the
// same monotonic Done counter sweep.Run guarantees. The first index is
// the representative; the others are marked Deduped.
func (d *dispatcher) report(u *unit, res sim.Result, cached, fromLocalCache bool, elapsed time.Duration, err error) {
	if d.opts.Progress == nil {
		d.progMu.Lock()
		d.done += len(u.indices)
		d.progMu.Unlock()
		return
	}
	d.progMu.Lock()
	defer d.progMu.Unlock()
	for n, idx := range u.indices {
		d.done++
		ev := sweep.Event{
			Index:   idx,
			Total:   len(d.jobs),
			Done:    d.done,
			Label:   d.jobs[idx].Label,
			Key:     u.key,
			Cached:  cached,
			Deduped: n > 0 && !fromLocalCache,
			Err:     err,
		}
		if n == 0 && !cached {
			ev.Elapsed = elapsed
		}
		d.opts.Progress(ev)
	}
}

// SplitEndpoints parses a comma-separated endpoint list flag
// ("host1:8344, host2:8344") into trimmed, non-empty entries — the
// shared parser behind ccsim -servers, experiments -servers, and
// ccsimd -peers.
func SplitEndpoints(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// errJoin renders probe failures compactly.
func errJoin(errs []error) string {
	if len(errs) == 0 {
		return "no endpoints given"
	}
	parts := make([]string, len(errs))
	for i, err := range errs {
		parts[i] = err.Error()
	}
	return strings.Join(parts, "; ")
}
