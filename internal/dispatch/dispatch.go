// Package dispatch shards a sweep campaign across a fleet of ccsimd
// daemons plus an optional local worker pool, turning the single-node
// campaign engine (internal/sweep) into a horizontally scalable one
// while preserving sweep.Run's contract exactly:
//
//   - results come back in input order, bit-identical to a local run
//     (every worker executes the same deterministic simulator),
//   - the first failing simulation stops dispatch and is returned as a
//     *sweep.JobError carrying the lowest failed input index,
//   - cancelling ctx stops dispatch, cancels outstanding remote jobs
//     best-effort, and returns ctx.Err(),
//   - a local sweep.Cache is consulted before any dispatch and every
//     completed result is written back to it, so an interrupted
//     distributed campaign resumes locally (or on a different fleet).
//
// The dispatcher handles real fleet behaviour: endpoints are health
// probed up front and weighted by their advertised worker capacity
// (each endpoint holds at most that many jobs in flight), identical
// configs are singleflighted on sweep.Key so each distinct config
// simulates exactly once fleet-wide, and a job whose worker dies or
// times out is retried transparently on another endpoint — only a job
// with no live worker left to run it fails the campaign.
package dispatch

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// Options configures a distributed campaign.
type Options struct {
	// Endpoints are ccsimd base URLs. Each live endpoint contributes
	// in-flight capacity equal to its advertised worker count.
	Endpoints []string

	// LocalWorkers adds that many in-process simulation slots to the
	// fleet (0 = none). Local slots can always run trace-file configs.
	LocalWorkers int

	// Cache, when non-nil, is consulted before dispatch and receives
	// every completed result, so interrupted campaigns resume locally.
	Cache *sweep.Cache

	// Progress, when non-nil, observes one event per input job, with
	// monotonically increasing Done (see sweep.Options.Progress).
	Progress func(sweep.Event)

	// ProbeTimeout bounds the initial health probe per endpoint
	// (default 5s). Endpoints failing the probe are dropped for the
	// whole campaign.
	ProbeTimeout time.Duration

	// JobTimeout bounds one remote execution attempt (0 = none). An
	// attempt hitting it is retried on another worker, covering
	// workers that hang without closing connections.
	JobTimeout time.Duration

	// PollInterval is the remote status-poll period (0 = client
	// default). Tests shrink it.
	PollInterval time.Duration

	// MaxPerEndpoint clamps the probed per-endpoint capacity (0 = no
	// clamp), for sharing a fleet politely.
	MaxPerEndpoint int

	// Token is the bearer credential sent to every endpoint — required
	// against daemons with a tenant registry (ccsimd -tenants).
	Token string

	// Stats, when non-nil, is filled with campaign totals before Run
	// returns.
	Stats *Stats
}

// Stats summarizes how a campaign used the fleet.
type Stats struct {
	Endpoints     int // endpoints that passed the health probe
	DeadEndpoints int // endpoints that failed the probe or died mid-campaign
	Slots         int // total in-flight capacity at start, local slots included
	Simulations   int // distinct configs freshly simulated fleet-wide
	CacheHits     int // jobs served from a cache (local or a daemon's)
	Deduped       int // jobs that shared another identical job's simulation
	Retries       int // assignments retried on another worker after a loss or timeout
}

// unit is one distinct simulation: all input jobs sharing a sweep.Key
// collapse onto it (singleflight), and exactly one worker holds it at
// a time.
type unit struct {
	key     string // content address; "" for uncacheable configs
	job     sweep.Job
	indices []int        // input positions served by this unit
	tried   map[int]bool // worker IDs that lost or timed out on this unit
	err     error        // terminal failure
	done    bool
}

// hasTraces reports whether the unit's config replays trace files.
func (u *unit) hasTraces() bool {
	for _, p := range u.job.Config.TraceFiles {
		if p != "" {
			return true
		}
	}
	return false
}

// worker is one execution backend: a probed endpoint or the local
// pool. Its slot count many goroutines each hold at most one unit in
// flight, which both bounds per-worker load and realizes
// capacity-weighted assignment — a 16-worker daemon pulls units four
// times as fast as a 4-worker one.
type worker struct {
	id        int
	name      string
	cli       *client.Client // nil for the local pool
	traceRoot string
	slots     int
	dead      bool // guarded by dispatcher.mu
}

// Run executes jobs across the fleet described by opts and returns
// results in input order. See the package comment for the contract.
func Run(ctx context.Context, jobs []sweep.Job, opts Options) ([]sim.Result, error) {
	if len(jobs) == 0 {
		return nil, nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers, probeErrs := probe(ctx, opts)
	stats := Stats{DeadEndpoints: len(probeErrs)}
	for _, w := range workers {
		if w.cli != nil {
			stats.Endpoints++
		}
		stats.Slots += w.slots
	}
	defer func() {
		if opts.Stats != nil {
			*opts.Stats = stats
		}
	}()
	if len(workers) == 0 {
		return nil, fmt.Errorf("dispatch: no usable workers: every endpoint failed its health probe (%s) and no local workers are configured", errJoin(probeErrs))
	}

	d := &dispatcher{
		ctx:     ctx,
		jobs:    jobs,
		results: make([]sim.Result, len(jobs)),
		workers: workers,
		opts:    opts,
		stats:   &stats,
	}
	d.cond = sync.NewCond(&d.mu)

	units := d.buildUnits()
	if err := d.checkTraceEligibility(units); err != nil {
		return nil, err
	}
	d.pending = units
	d.outstanding = len(units)

	// Wake blocked workers when the caller cancels.
	probeDone := make(chan struct{})
	defer close(probeDone)
	go func() {
		select {
		case <-ctx.Done():
		case <-probeDone:
		}
		d.mu.Lock()
		d.cond.Broadcast()
		d.mu.Unlock()
	}()

	var wg sync.WaitGroup
	for _, w := range d.workers {
		for s := 0; s < w.slots; s++ {
			wg.Add(1)
			go func(w *worker) {
				defer wg.Done()
				d.serve(w)
			}(w)
		}
	}
	wg.Wait()

	// Mirror sweep.Run: the recorded failure with the lowest input
	// index wins; an external cancellation with no recorded failure
	// surfaces as ctx.Err().
	var firstErr *sweep.JobError
	for _, u := range units {
		if u.err == nil {
			continue
		}
		idx := u.indices[0]
		if firstErr == nil || idx < firstErr.Index {
			firstErr = &sweep.JobError{Index: idx, Label: jobs[idx].Label, Err: u.err}
		}
	}
	if firstErr != nil {
		return d.results, firstErr
	}
	if err := ctx.Err(); err != nil {
		return d.results, err
	}
	return d.results, nil
}

// dispatcher is the shared coordination state of one Run call.
type dispatcher struct {
	ctx     context.Context
	jobs    []sweep.Job
	results []sim.Result
	workers []*worker
	opts    Options
	stats   *Stats

	mu          sync.Mutex
	cond        *sync.Cond
	pending     []*unit
	outstanding int // units not yet terminal
	failed      bool

	progMu sync.Mutex
	done   int // finished input jobs; guarded by progMu
}

// probe health-checks every endpoint concurrently and returns the live
// workers (capacity-weighted) plus the local pool.
func probe(ctx context.Context, opts Options) ([]*worker, []error) {
	timeout := opts.ProbeTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	type outcome struct {
		w   *worker
		err error
	}
	outcomes := make([]outcome, len(opts.Endpoints))
	var wg sync.WaitGroup
	for i, ep := range opts.Endpoints {
		wg.Add(1)
		go func(i int, ep string) {
			defer wg.Done()
			cli := client.New(ep)
			cli.Token = opts.Token
			if opts.PollInterval > 0 {
				cli.PollInterval = opts.PollInterval
			}
			pctx, cancel := context.WithTimeout(ctx, timeout)
			defer cancel()
			h, err := cli.Health(pctx)
			if err != nil {
				outcomes[i] = outcome{err: fmt.Errorf("dispatch: endpoint %s: %w", ep, err)}
				return
			}
			slots := h.Workers
			if slots < 1 {
				slots = 1
			}
			if opts.MaxPerEndpoint > 0 && slots > opts.MaxPerEndpoint {
				slots = opts.MaxPerEndpoint
			}
			outcomes[i] = outcome{w: &worker{
				name:      cli.Base(),
				cli:       cli,
				traceRoot: h.TraceRoot,
				slots:     slots,
			}}
		}(i, ep)
	}
	wg.Wait()

	var workers []*worker
	var errs []error
	for _, o := range outcomes {
		switch {
		case o.w != nil:
			workers = append(workers, o.w)
		case o.err != nil:
			errs = append(errs, o.err)
		}
	}
	if opts.LocalWorkers > 0 {
		workers = append(workers, &worker{name: "local", slots: opts.LocalWorkers})
	}
	for i, w := range workers {
		w.id = i
	}
	return workers, errs
}

// buildUnits collapses the input jobs onto distinct units (singleflight
// on sweep.Key) and completes cache hits immediately. Uncacheable
// configs each get their own unit.
func (d *dispatcher) buildUnits() []*unit {
	var units []*unit
	byKey := map[string]*unit{}
	for i, job := range d.jobs {
		key, _ := sweep.Key(job.Config) // "" when uncacheable
		if key != "" {
			if u, ok := byKey[key]; ok {
				u.indices = append(u.indices, i)
				continue
			}
		}
		u := &unit{key: key, job: job, indices: []int{i}, tried: map[int]bool{}}
		units = append(units, u)
		if key != "" {
			byKey[key] = u
		}
	}
	// Serve local cache hits before any dispatch, so resumed campaigns
	// touch the fleet only for missing configs.
	if d.opts.Cache == nil {
		return units
	}
	live := units[:0]
	for _, u := range units {
		if u.key == "" {
			live = append(live, u)
			continue
		}
		res, ok := d.opts.Cache.Lookup(u.key)
		if !ok {
			live = append(live, u)
			continue
		}
		u.done = true
		d.stats.CacheHits += len(u.indices)
		d.fill(u, res)
		d.report(u, res, true, true, 0, nil)
	}
	return live
}

// checkTraceEligibility rejects, up front and with a clear error, any
// trace-file config that no fleet worker can faithfully execute: remote
// daemons open trace paths on their own filesystem, so only endpoints
// advertising a shared trace root covering the paths (or local
// workers) qualify.
func (d *dispatcher) checkTraceEligibility(units []*unit) error {
	for _, u := range units {
		if !u.hasTraces() || u.done {
			continue
		}
		eligible := false
		var lastErr error
		for _, w := range d.workers {
			if err := eligibleErr(u, w); err == nil {
				eligible = true
				break
			} else {
				lastErr = err
			}
		}
		if !eligible {
			return fmt.Errorf("dispatch: job %q cannot run anywhere in the fleet: %w (add local workers, or endpoints started with -trace-root over a shared directory)", u.job.Label, lastErr)
		}
	}
	return nil
}

// eligibleErr reports whether w can faithfully execute u ("" error).
func eligibleErr(u *unit, w *worker) error {
	if w.cli == nil || !u.hasTraces() {
		return nil
	}
	return client.ValidateTraceFiles(u.job.Config, w.traceRoot)
}

// serve is one worker slot's loop: claim the next eligible unit,
// execute it, repeat until the campaign ends or the worker dies.
func (d *dispatcher) serve(w *worker) {
	for {
		u := d.next(w)
		if u == nil {
			return
		}
		if !d.execute(w, u) {
			return
		}
	}
}

// next blocks until an eligible pending unit exists (claiming it) or
// the campaign is over for this worker (nil).
func (d *dispatcher) next(w *worker) *unit {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.ctx.Err() != nil || d.failed || w.dead || d.outstanding == 0 {
			return nil
		}
		for i, u := range d.pending {
			if u.tried[w.id] || eligibleErr(u, w) != nil {
				continue
			}
			d.pending = append(d.pending[:i], d.pending[i+1:]...)
			return u
		}
		d.cond.Wait()
	}
}

// execute runs one claimed unit on w. It returns false when the worker
// died (transport failure) and the slot must retire.
func (d *dispatcher) execute(w *worker, u *unit) bool {
	start := time.Now()
	var (
		res    sim.Result
		cached bool
		err    error
	)
	if w.cli == nil {
		sys, nerr := sim.New(u.job.Config)
		if nerr == nil {
			res, err = sys.Run()
		} else {
			err = nerr
		}
	} else {
		actx := d.ctx
		cancel := func() {}
		if d.opts.JobTimeout > 0 {
			actx, cancel = context.WithTimeout(d.ctx, d.opts.JobTimeout)
		}
		var st server.JobStatus
		st, err = w.cli.RunJob(actx, server.JobSpec{Label: u.job.Label, Config: u.job.Config})
		cancel()
		if err == nil {
			if st.Result == nil {
				err = fmt.Errorf("dispatch: %s finished job without a result", w.name)
			} else {
				res, cached = *st.Result, st.Cached
			}
		}
	}
	elapsed := time.Since(start)

	switch {
	case err == nil:
		d.complete(u, res, cached, elapsed)
		return true
	case isPermanent(w, err):
		d.fail(u, err, elapsed)
		return true
	case d.ctx.Err() != nil:
		d.abandon(u)
		return false
	default:
		// The worker died or the attempt timed out: retry the unit on
		// another worker. A plain timeout (or an eligibility rejection
		// the pre-check somehow missed) keeps the endpoint alive — one
		// slow or unrunnable job is not evidence the daemon is gone.
		markDead := !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, server.ErrIneligible)
		return d.retry(w, u, err, markDead)
	}
}

// isPermanent classifies failures that would recur identically on any
// worker: the simulation itself failed (locally, or remotely reported
// via *server.RemoteJobError), or the daemon rejected the config as
// invalid (HTTP 400).
func isPermanent(w *worker, err error) bool {
	if w.cli == nil {
		return true // local simulation errors are deterministic
	}
	var remoteErr *server.RemoteJobError
	if errors.As(err, &remoteErr) {
		return true
	}
	var apiErr *client.APIError
	return errors.As(err, &apiErr) && apiErr.Status == 400
}

// complete lands one unit's result: cache write-back first (a failing
// write fails the unit, mirroring sweep.Run), then results and events
// for every input index it serves.
func (d *dispatcher) complete(u *unit, res sim.Result, cached bool, elapsed time.Duration) {
	if d.opts.Cache != nil && u.key != "" {
		if err := d.opts.Cache.PutKeyed(u.key, res); err != nil {
			d.fail(u, err, elapsed)
			return
		}
	}
	d.fill(u, res)
	d.mu.Lock()
	u.done = true
	d.outstanding--
	if cached {
		d.stats.CacheHits++
	} else {
		d.stats.Simulations++
	}
	d.stats.Deduped += len(u.indices) - 1
	d.cond.Broadcast()
	d.mu.Unlock()
	d.report(u, res, cached, false, elapsed, nil)
}

// fail records a terminal unit failure and stops further dispatch
// (first-error cancellation; in-flight units still finish and record
// their results, exactly like sweep.Run).
func (d *dispatcher) fail(u *unit, err error, elapsed time.Duration) {
	d.mu.Lock()
	u.err = err
	u.done = true
	d.outstanding--
	d.failed = true
	d.cond.Broadcast()
	d.mu.Unlock()
	d.report(u, sim.Result{}, false, false, elapsed, err)
}

// abandon drops a unit whose attempt died with the campaign context:
// nobody will retry it, and Run reports ctx.Err().
func (d *dispatcher) abandon(u *unit) {
	d.mu.Lock()
	d.outstanding--
	d.cond.Broadcast()
	d.mu.Unlock()
}

// retry hands a unit back after w lost it. The worker is marked dead
// on transport failures (all its slots retire); the unit either
// requeues for the remaining candidates or, when none is left, fails
// the campaign with the underlying error. Returns whether this slot
// may keep serving.
func (d *dispatcher) retry(w *worker, u *unit, err error, markDead bool) bool {
	d.mu.Lock()
	u.tried[w.id] = true
	d.stats.Retries++
	if markDead && !w.dead {
		w.dead = true
		d.stats.DeadEndpoints++
		d.stats.Endpoints--
	}
	// Fail every unit — this one and pending ones — that no live
	// worker can take anymore, so campaigns never hang on a shrinking
	// fleet.
	requeue := d.pending[:0]
	for _, p := range d.pending {
		if d.hasCandidateLocked(p) {
			requeue = append(requeue, p)
			continue
		}
		p.err = fmt.Errorf("dispatch: no live worker left for %q (last endpoint lost: %v)", p.job.Label, err)
		p.done = true
		d.outstanding--
		d.failed = true
	}
	d.pending = requeue
	if d.hasCandidateLocked(u) {
		d.pending = append(d.pending, u)
	} else {
		u.err = fmt.Errorf("dispatch: job %q failed on every live worker: %w", u.job.Label, err)
		u.done = true
		d.outstanding--
		d.failed = true
	}
	alive := !w.dead
	d.cond.Broadcast()
	d.mu.Unlock()
	return alive
}

// hasCandidateLocked reports whether any live worker can still take u.
func (d *dispatcher) hasCandidateLocked(u *unit) bool {
	for _, w := range d.workers {
		if !w.dead && !u.tried[w.id] && eligibleErr(u, w) == nil {
			return true
		}
	}
	return false
}

// fill writes one result into every input slot the unit serves.
func (d *dispatcher) fill(u *unit, res sim.Result) {
	for _, idx := range u.indices {
		d.results[idx] = res
	}
}

// report emits one progress event per input job of the unit, under the
// same monotonic Done counter sweep.Run guarantees. The first index is
// the representative; the others are marked Deduped.
func (d *dispatcher) report(u *unit, res sim.Result, cached, fromLocalCache bool, elapsed time.Duration, err error) {
	if d.opts.Progress == nil {
		d.progMu.Lock()
		d.done += len(u.indices)
		d.progMu.Unlock()
		return
	}
	d.progMu.Lock()
	defer d.progMu.Unlock()
	for n, idx := range u.indices {
		d.done++
		ev := sweep.Event{
			Index:   idx,
			Total:   len(d.jobs),
			Done:    d.done,
			Label:   d.jobs[idx].Label,
			Key:     u.key,
			Cached:  cached,
			Deduped: n > 0 && !fromLocalCache,
			Err:     err,
		}
		if n == 0 && !cached {
			ev.Elapsed = elapsed
		}
		d.opts.Progress(ev)
	}
}

// SplitEndpoints parses a comma-separated endpoint list flag
// ("host1:8344, host2:8344") into trimmed, non-empty entries — the
// shared parser behind ccsim -servers, experiments -servers, and
// ccsimd -peers.
func SplitEndpoints(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// errJoin renders probe failures compactly.
func errJoin(errs []error) string {
	if len(errs) == 0 {
		return "no endpoints given"
	}
	parts := make([]string, len(errs))
	for i, err := range errs {
		parts[i] = err.Error()
	}
	return strings.Join(parts, "; ")
}
