package client

import (
	"context"
	"errors"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/sweep"
)

func tinyCfg(workload string, seed uint64) sim.Config {
	cfg := sim.DefaultConfig(workload)
	cfg.WarmupInstructions = 10_000
	cfg.RunInstructions = 20_000
	cfg.Seed = seed
	return cfg
}

// startDaemon boots a manager + HTTP server and returns a client
// pointed at it.
func startDaemon(t *testing.T, cachePath string) (*Client, *server.Manager) {
	t.Helper()
	var cache *sweep.Cache
	if cachePath != "" {
		var err error
		cache, err = sweep.OpenCache(cachePath)
		if err != nil {
			t.Fatal(err)
		}
	}
	m := server.NewManager(server.ManagerConfig{Workers: 2, QueueDepth: 16, Cache: cache})
	ts := httptest.NewServer(server.New(m))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		_ = m.Drain(ctx)
		ts.Close()
	})
	c := New(ts.URL)
	c.PollInterval = 5 * time.Millisecond
	return c, m
}

// TestRunSweepRemote checks the remote sweep matches a local one
// bit-for-bit, in input order, with a progress event per job.
func TestRunSweepRemote(t *testing.T) {
	c, _ := startDaemon(t, filepath.Join(t.TempDir(), "results.json"))
	jobs := []sweep.Job{
		{Label: "a", Config: tinyCfg("lbm", 1)},
		{Label: "b", Config: tinyCfg("mcf", 2)},
		{Label: "a-dup", Config: tinyCfg("lbm", 1)},
	}
	want, err := sweep.Run(context.Background(), jobs, sweep.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	var events []sweep.Event
	got, err := c.RunSweep(context.Background(), jobs, func(ev sweep.Event) { events = append(events, ev) })
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("remote sweep differs from local sweep")
	}
	if len(events) != len(jobs) {
		t.Fatalf("%d progress events, want %d", len(events), len(jobs))
	}
	for i, ev := range events {
		if ev.Done != i+1 || ev.Total != len(jobs) {
			t.Errorf("event %d: Done=%d Total=%d", i, ev.Done, ev.Total)
		}
	}

	// Identical re-run: everything must now come from the daemon cache.
	var cachedEvents int
	again, err := c.RunSweep(context.Background(), jobs, func(ev sweep.Event) {
		if ev.Cached {
			cachedEvents++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, want) {
		t.Error("cached remote sweep differs")
	}
	if cachedEvents != len(jobs) {
		t.Errorf("%d cached events on re-run, want %d", cachedEvents, len(jobs))
	}
}

// TestRunSweepLargerThanQueue: a sweep with more distinct configs than
// the daemon's queue depth must still complete — the client chunks its
// submissions and waits for capacity instead of failing on HTTP 429.
func TestRunSweepLargerThanQueue(t *testing.T) {
	m := server.NewManager(server.ManagerConfig{Workers: 1, QueueDepth: 2})
	ts := httptest.NewServer(server.New(m))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		_ = m.Drain(ctx)
		ts.Close()
	})
	c := New(ts.URL)
	c.PollInterval = 5 * time.Millisecond

	var jobs []sweep.Job
	for seed := uint64(0); seed < 6; seed++ {
		jobs = append(jobs, sweep.Job{Label: "j", Config: tinyCfg("lbm", 500+seed)})
	}
	want, err := sweep.Run(context.Background(), jobs, sweep.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.RunSweep(context.Background(), jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("over-capacity remote sweep differs from local sweep")
	}
}

// TestClientEndpoints covers the thin wrappers: Submit/Wait/Result/
// Health/Metrics and the typed APIError on 404s.
func TestClientEndpoints(t *testing.T) {
	c, _ := startDaemon(t, filepath.Join(t.TempDir(), "results.json"))
	cfg := tinyCfg("lbm", 33)

	sts, err := c.Submit(context.Background(), []server.JobSpec{{Label: "x", Config: cfg}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Wait(context.Background(), sts[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != server.StateDone || st.Result == nil {
		t.Fatalf("waited job = %s (result %v)", st.State, st.Result != nil)
	}

	res, err := c.Result(context.Background(), st.Key)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, *st.Result) {
		t.Error("Result(key) differs from the job result")
	}

	h, err := c.Health(context.Background())
	if err != nil || h.Status != "ok" {
		t.Fatalf("health = %+v, %v", h, err)
	}
	met, err := c.Metrics(context.Background())
	if err != nil || met.JobsCompleted != 1 {
		t.Fatalf("metrics = %+v, %v", met, err)
	}

	_, err = c.Job(context.Background(), "job-424242")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 404 {
		t.Fatalf("unknown job error = %v, want APIError 404", err)
	}
}

// TestClientCancel cancels a queued remote job through the client.
func TestClientCancel(t *testing.T) {
	c, m := startDaemon(t, "")
	blocker := tinyCfg("mcf", 90)
	blocker.RunInstructions = 8_000_000
	// Two blockers occupy both workers; the target queues behind them.
	if _, err := c.Submit(context.Background(), []server.JobSpec{
		{Label: "b1", Config: blocker},
		{Label: "b2", Config: func() sim.Config { b := blocker; b.Seed = 91; return b }()},
	}); err != nil {
		t.Fatal(err)
	}
	sts, err := c.Submit(context.Background(), []server.JobSpec{{Label: "target", Config: tinyCfg("lbm", 92)}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Cancel(context.Background(), sts[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != server.StateCanceled {
		t.Fatalf("canceled job is %s", st.State)
	}
	_ = m
}

// TestRunSweepFailure propagates a remote failure as a *sweep.JobError
// carrying the input position.
func TestRunSweepFailure(t *testing.T) {
	c, _ := startDaemon(t, "")
	good := tinyCfg("lbm", 1)
	jobs := []sweep.Job{{Label: "good", Config: good}}
	// A config that validates but fails at run time: an unknown
	// workload name passes Validate (resolution happens in sim.New).
	bad := good
	bad.Workloads = []string{"no-such-workload"}
	jobs = append(jobs, sweep.Job{Label: "bad", Config: bad})

	_, err := c.RunSweep(context.Background(), jobs, nil)
	if err == nil {
		t.Fatal("remote sweep with a failing job succeeded")
	}
	var jerr *sweep.JobError
	if !errors.As(err, &jerr) {
		t.Fatalf("error %v is not a *sweep.JobError", err)
	}
	if jerr.Index != 1 || jerr.Label != "bad" {
		t.Errorf("JobError = index %d label %q, want 1/bad", jerr.Index, jerr.Label)
	}
}
