package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/sweep"
)

func tinyCfg(workload string, seed uint64) sim.Config {
	cfg := sim.DefaultConfig(workload)
	cfg.WarmupInstructions = 10_000
	cfg.RunInstructions = 20_000
	cfg.Seed = seed
	return cfg
}

// startDaemon boots a manager + HTTP server and returns a client
// pointed at it.
func startDaemon(t *testing.T, cachePath string) (*Client, *server.Manager) {
	t.Helper()
	var cache *sweep.Cache
	if cachePath != "" {
		var err error
		cache, err = sweep.OpenCache(cachePath)
		if err != nil {
			t.Fatal(err)
		}
	}
	m := server.NewManager(server.ManagerConfig{Workers: 2, QueueDepth: 16, Cache: cache})
	ts := httptest.NewServer(server.New(m))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		_ = m.Drain(ctx)
		ts.Close()
	})
	c := New(ts.URL)
	c.PollInterval = 5 * time.Millisecond
	return c, m
}

// TestRunSweepRemote checks the remote sweep matches a local one
// bit-for-bit, in input order, with a progress event per job.
func TestRunSweepRemote(t *testing.T) {
	c, _ := startDaemon(t, filepath.Join(t.TempDir(), "results.json"))
	jobs := []sweep.Job{
		{Label: "a", Config: tinyCfg("lbm", 1)},
		{Label: "b", Config: tinyCfg("mcf", 2)},
		{Label: "a-dup", Config: tinyCfg("lbm", 1)},
	}
	want, err := sweep.Run(context.Background(), jobs, sweep.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	var events []sweep.Event
	got, err := c.RunSweep(context.Background(), jobs, func(ev sweep.Event) { events = append(events, ev) })
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("remote sweep differs from local sweep")
	}
	if len(events) != len(jobs) {
		t.Fatalf("%d progress events, want %d", len(events), len(jobs))
	}
	for i, ev := range events {
		if ev.Done != i+1 || ev.Total != len(jobs) {
			t.Errorf("event %d: Done=%d Total=%d", i, ev.Done, ev.Total)
		}
	}

	// Identical re-run: everything must now come from the daemon cache.
	var cachedEvents int
	again, err := c.RunSweep(context.Background(), jobs, func(ev sweep.Event) {
		if ev.Cached {
			cachedEvents++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, want) {
		t.Error("cached remote sweep differs")
	}
	if cachedEvents != len(jobs) {
		t.Errorf("%d cached events on re-run, want %d", cachedEvents, len(jobs))
	}
}

// TestRunSweepLargerThanQueue: a sweep with more distinct configs than
// the daemon's queue depth must still complete — the client chunks its
// submissions and waits for capacity instead of failing on HTTP 429.
func TestRunSweepLargerThanQueue(t *testing.T) {
	m := server.NewManager(server.ManagerConfig{Workers: 1, QueueDepth: 2})
	ts := httptest.NewServer(server.New(m))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		_ = m.Drain(ctx)
		ts.Close()
	})
	c := New(ts.URL)
	c.PollInterval = 5 * time.Millisecond

	var jobs []sweep.Job
	for seed := uint64(0); seed < 6; seed++ {
		jobs = append(jobs, sweep.Job{Label: "j", Config: tinyCfg("lbm", 500+seed)})
	}
	want, err := sweep.Run(context.Background(), jobs, sweep.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.RunSweep(context.Background(), jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("over-capacity remote sweep differs from local sweep")
	}
}

// TestClientEndpoints covers the thin wrappers: Submit/Wait/Result/
// Health/Metrics and the typed APIError on 404s.
func TestClientEndpoints(t *testing.T) {
	c, _ := startDaemon(t, filepath.Join(t.TempDir(), "results.json"))
	cfg := tinyCfg("lbm", 33)

	sts, err := c.Submit(context.Background(), []server.JobSpec{{Label: "x", Config: cfg}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Wait(context.Background(), sts[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != server.StateDone || st.Result == nil {
		t.Fatalf("waited job = %s (result %v)", st.State, st.Result != nil)
	}

	res, err := c.Result(context.Background(), st.Key)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, *st.Result) {
		t.Error("Result(key) differs from the job result")
	}

	h, err := c.Health(context.Background())
	if err != nil || h.Status != "ok" {
		t.Fatalf("health = %+v, %v", h, err)
	}
	met, err := c.Metrics(context.Background())
	if err != nil || met.JobsCompleted != 1 {
		t.Fatalf("metrics = %+v, %v", met, err)
	}

	_, err = c.Job(context.Background(), "job-424242")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 404 {
		t.Fatalf("unknown job error = %v, want APIError 404", err)
	}
}

// TestClientAnalysis fetches a perf-analyzer report through the typed
// wrapper and checks the 404 cases surface as APIErrors.
func TestClientAnalysis(t *testing.T) {
	c, _ := startDaemon(t, "")
	cfg := tinyCfg("lbm", 44)
	cfg.Analysis = &analysis.Config{Enabled: true}

	sts, err := c.Submit(context.Background(), []server.JobSpec{{Label: "an", Config: cfg}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Wait(context.Background(), sts[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Analysis(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Result == nil || st.Result.Analysis == nil || rep.Totals != st.Result.Analysis.Totals {
		t.Error("Analysis(id) differs from the job result's report")
	}

	var apiErr *APIError
	if _, err := c.Analysis(context.Background(), "job-424242"); !errors.As(err, &apiErr) || apiErr.Status != 404 {
		t.Fatalf("unknown job analysis error = %v, want APIError 404", err)
	}
	// A done job that ran without analysis is also a 404.
	plain, err := c.Submit(context.Background(), []server.JobSpec{{Config: tinyCfg("lbm", 45)}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(context.Background(), plain[0].ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Analysis(context.Background(), plain[0].ID); !errors.As(err, &apiErr) || apiErr.Status != 404 {
		t.Fatalf("analysis-less job error = %v, want APIError 404", err)
	}
}

// TestClientCancel cancels a queued remote job through the client.
func TestClientCancel(t *testing.T) {
	c, m := startDaemon(t, "")
	blocker := tinyCfg("mcf", 90)
	blocker.RunInstructions = 8_000_000
	// Two blockers occupy both workers; the target queues behind them.
	if _, err := c.Submit(context.Background(), []server.JobSpec{
		{Label: "b1", Config: blocker},
		{Label: "b2", Config: func() sim.Config { b := blocker; b.Seed = 91; return b }()},
	}); err != nil {
		t.Fatal(err)
	}
	sts, err := c.Submit(context.Background(), []server.JobSpec{{Label: "target", Config: tinyCfg("lbm", 92)}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Cancel(context.Background(), sts[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != server.StateCanceled {
		t.Fatalf("canceled job is %s", st.State)
	}
	_ = m
}

// startDaemonWithRoot boots a daemon advertising traceRoot as a shared
// trace directory.
func startDaemonWithRoot(t *testing.T, traceRoot string) *Client {
	t.Helper()
	m := server.NewManager(server.ManagerConfig{Workers: 2, QueueDepth: 16, TraceRoot: traceRoot})
	ts := httptest.NewServer(server.New(m))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		_ = m.Drain(ctx)
		ts.Close()
	})
	c := New(ts.URL)
	c.PollInterval = 5 * time.Millisecond
	return c
}

// writeClientTrace writes a small valid Ramulator-format trace.
func writeClientTrace(t *testing.T, path string) {
	t.Helper()
	var blob []byte
	for i := 0; i < 32; i++ {
		blob = append(blob, []byte(fmt.Sprintf("%d %#x\n", i%3, uint64(i)*64))...)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
}

// traceCfg builds a tiny config replaying path on its single core.
func traceCfg(path string) sim.Config {
	cfg := tinyCfg("lbm", 1)
	cfg.TraceFiles = []string{path}
	return cfg
}

// TestSubmitRejectsTraceConfigWithoutSharedRoot pins the remote
// trace-file bug: a daemon with no shared trace root would open the
// path on *its* filesystem (failing, or silently reading whatever file
// happens to live there), so the client must refuse to submit.
func TestSubmitRejectsTraceConfigWithoutSharedRoot(t *testing.T) {
	c, m := startDaemon(t, "")
	path := filepath.Join(t.TempDir(), "core0.trace")
	writeClientTrace(t, path)

	_, err := c.Submit(context.Background(), []server.JobSpec{{Label: "t", Config: traceCfg(path)}})
	if err == nil {
		t.Fatal("trace-file config was submitted to a daemon with no shared trace root")
	}
	if !strings.Contains(err.Error(), "trace root") {
		t.Errorf("rejection %q does not explain the missing trace root", err)
	}
	if !errors.Is(err, server.ErrIneligible) {
		t.Errorf("rejection %v is not marked server.ErrIneligible (fleet schedulers rely on it)", err)
	}
	if mt := m.Metrics(); mt.JobsSubmitted != 0 {
		t.Errorf("daemon recorded %d submissions, want 0 (rejection must be client-side)", mt.JobsSubmitted)
	}

	// Generator configs are unaffected.
	if _, err := c.Submit(context.Background(), []server.JobSpec{{Label: "g", Config: tinyCfg("lbm", 2)}}); err != nil {
		t.Errorf("generator config rejected: %v", err)
	}
}

// TestSubmitTraceConfigUnderSharedRoot covers the allowed path — the
// daemon advertises a root, the file lives under it, and the job runs —
// plus the still-rejected escapes (outside the root, relative paths).
func TestSubmitTraceConfigUnderSharedRoot(t *testing.T) {
	shared := t.TempDir()
	c := startDaemonWithRoot(t, shared)
	path := filepath.Join(shared, "core0.trace")
	writeClientTrace(t, path)

	st, err := c.RunJob(context.Background(), server.JobSpec{Label: "t", Config: traceCfg(path)})
	if err != nil {
		t.Fatalf("trace config under the shared root failed: %v", err)
	}
	if st.State != server.StateDone || st.Result == nil {
		t.Fatalf("job = %s (result %v)", st.State, st.Result != nil)
	}

	outside := filepath.Join(t.TempDir(), "core0.trace")
	writeClientTrace(t, outside)
	if _, err := c.Submit(context.Background(), []server.JobSpec{{Config: traceCfg(outside)}}); err == nil || !strings.Contains(err.Error(), "outside") {
		t.Errorf("path outside the shared root: err = %v", err)
	}
	if _, err := c.Submit(context.Background(), []server.JobSpec{{Config: traceCfg("relative/core0.trace")}}); err == nil || !strings.Contains(err.Error(), "relative") {
		t.Errorf("relative path: err = %v", err)
	}
}

// TestRunJob covers the single-job fleet primitive: a success matches a
// local run; a failing simulation surfaces as *server.RemoteJobError
// (the signal that retrying on another worker is pointless).
func TestRunJob(t *testing.T) {
	c, _ := startDaemon(t, filepath.Join(t.TempDir(), "results.json"))
	cfg := tinyCfg("lbm", 77)

	st, err := c.RunJob(context.Background(), server.JobSpec{Label: "ok", Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	want, err := sweep.Run(context.Background(), []sweep.Job{{Config: cfg}}, sweep.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Result == nil || !reflect.DeepEqual(*st.Result, want[0]) {
		t.Error("RunJob result differs from a local run")
	}

	bad := cfg
	bad.Workloads = []string{"no-such-workload"}
	_, err = c.RunJob(context.Background(), server.JobSpec{Label: "bad", Config: bad})
	var remoteErr *server.RemoteJobError
	if !errors.As(err, &remoteErr) {
		t.Fatalf("failing job returned %v, want *server.RemoteJobError", err)
	}
	if remoteErr.State != server.StateFailed || remoteErr.Message == "" {
		t.Errorf("RemoteJobError = %+v", remoteErr)
	}
}

// TestRunSweepFailure propagates a remote failure as a *sweep.JobError
// carrying the input position.
func TestRunSweepFailure(t *testing.T) {
	c, _ := startDaemon(t, "")
	good := tinyCfg("lbm", 1)
	jobs := []sweep.Job{{Label: "good", Config: good}}
	// A config that validates but fails at run time: an unknown
	// workload name passes Validate (resolution happens in sim.New).
	bad := good
	bad.Workloads = []string{"no-such-workload"}
	jobs = append(jobs, sweep.Job{Label: "bad", Config: bad})

	_, err := c.RunSweep(context.Background(), jobs, nil)
	if err == nil {
		t.Fatal("remote sweep with a failing job succeeded")
	}
	var jerr *sweep.JobError
	if !errors.As(err, &jerr) {
		t.Fatalf("error %v is not a *sweep.JobError", err)
	}
	if jerr.Index != 1 || jerr.Label != "bad" {
		t.Errorf("JobError = index %d label %q, want 1/bad", jerr.Index, jerr.Label)
	}
}

// TestStreamAnalysis is the client half of the live-telemetry proof:
// StreamAnalysis delivers batches that an analysis.StreamAccumulator
// folds into exactly the report Analysis(id) serves afterwards, both
// when the subscription rides the live run and when it replays a
// finished one; and afterSeq at the final cursor yields nothing new.
func TestStreamAnalysis(t *testing.T) {
	c, _ := startDaemon(t, "")
	cfg := tinyCfg("lbm", 46)
	cfg.Analysis = &analysis.Config{Enabled: true, EpochCycles: 10_000, MaxEpochs: 1024, PhaseProfile: true}

	sts, err := c.Submit(context.Background(), []server.JobSpec{{Label: "stream", Config: cfg}})
	if err != nil {
		t.Fatal(err)
	}
	id := sts[0].ID

	// Stream concurrently with the run (whatever fraction of it this
	// subscriber catches live, the snapshot frame covers the rest).
	acc := analysis.NewStreamAccumulator()
	var batches int
	if err := c.StreamAnalysis(context.Background(), id, 0, func(b analysis.StreamBatch) {
		acc.Apply(b)
		batches++
	}); err != nil {
		t.Fatal(err)
	}
	if batches == 0 {
		t.Fatal("stream delivered no batches")
	}
	got, err := acc.Report()
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.Analysis(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := json.Marshal(got)
	wantJSON, _ := json.Marshal(want)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("streamed reconstruction differs from final report:\nstream: %s\nfinal:  %s", gotJSON, wantJSON)
	}

	// A fresh subscription to the finished job replays to the same bytes.
	acc2 := analysis.NewStreamAccumulator()
	if err := c.StreamAnalysis(context.Background(), id, 0, func(b analysis.StreamBatch) { acc2.Apply(b) }); err != nil {
		t.Fatal(err)
	}
	rep2, err := acc2.Report()
	if err != nil {
		t.Fatal(err)
	}
	if rep2JSON, _ := json.Marshal(rep2); !bytes.Equal(rep2JSON, wantJSON) {
		t.Error("terminal replay differs from final report")
	}

	// Resuming past the final sequence delivers no batches at all.
	var extra int
	if err := c.StreamAnalysis(context.Background(), id, acc2.Seq(), func(analysis.StreamBatch) { extra++ }); err != nil {
		t.Fatal(err)
	}
	if extra != 0 {
		t.Errorf("resume past the end delivered %d batches, want 0", extra)
	}

	// Streaming an analysis-less job fails with the endpoint's 404.
	plain, err := c.Submit(context.Background(), []server.JobSpec{{Config: tinyCfg("lbm", 47)}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(context.Background(), plain[0].ID); err != nil {
		t.Fatal(err)
	}
	var apiErr *APIError
	if err := c.StreamAnalysis(context.Background(), plain[0].ID, 0, func(analysis.StreamBatch) {}); !errors.As(err, &apiErr) || apiErr.Status != 404 {
		t.Fatalf("analysis-less stream error = %v, want APIError 404", err)
	}
}
