// Package clienttest provides fault-injection support for testing the
// ccsimd client/server stack: a ChaosTransport that wraps any
// http.RoundTripper and deterministically drops connections, stalls
// responses, truncates bodies mid-stream, or synthesizes status storms
// (401/403/429) at the wire level — the failure modes a fleet client
// must absorb without corrupting results.
package clienttest

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Rule is one fault to inject. The first matching rule with remaining
// applications wins; exactly one of the fault fields should be set.
type Rule struct {
	// Name labels the rule in the injection counters.
	Name string
	// Match selects requests the rule applies to (nil matches all).
	Match func(r *http.Request) bool
	// Times bounds how often the rule fires (0 = unlimited).
	Times int

	// Drop fails the round trip outright, as if the connection died
	// before a response arrived.
	Drop bool
	// Stall delays the round trip before forwarding. The request's
	// context is honored, so a canceled caller is not held hostage.
	Stall time.Duration
	// TruncateBody forwards the request but cuts the response body
	// after N bytes, simulating a half-written response/SSE stream
	// followed by a dropped connection.
	TruncateBody int64
	// Status synthesizes a response with this code (plus Header/Body)
	// without forwarding anything — 401/403/429 storms.
	Status int
	// Header decorates a synthesized Status response (e.g. Retry-After).
	Header http.Header
	// Body is the synthesized Status response body.
	Body string

	hits int
}

// ChaosTransport injects Rules into requests before delegating to Base.
// Safe for concurrent use; rule application order and counts are
// deterministic per matching request sequence.
type ChaosTransport struct {
	// Base handles non-faulted traffic (http.DefaultTransport when nil).
	Base http.RoundTripper

	mu    sync.Mutex
	rules []*Rule
	count map[string]int
}

// NewChaosTransport wraps base (nil = http.DefaultTransport).
func NewChaosTransport(base http.RoundTripper) *ChaosTransport {
	return &ChaosTransport{Base: base, count: map[string]int{}}
}

// Add registers a rule. Rules are consulted in registration order.
func (t *ChaosTransport) Add(r Rule) *ChaosTransport {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rules = append(t.rules, &r)
	return t
}

// Clear removes every rule, keeping the injection counters.
func (t *ChaosTransport) Clear() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rules = nil
}

// Injected returns how many times each named rule fired.
func (t *ChaosTransport) Injected() map[string]int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int, len(t.count))
	for k, v := range t.count {
		out[k] = v
	}
	return out
}

// pick selects and consumes the first applicable rule for r.
func (t *ChaosTransport) pick(r *http.Request) *Rule {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, rule := range t.rules {
		if rule.Times > 0 && rule.hits >= rule.Times {
			continue
		}
		if rule.Match != nil && !rule.Match(r) {
			continue
		}
		rule.hits++
		t.count[rule.Name]++
		return rule
	}
	return nil
}

// RoundTrip implements http.RoundTripper.
func (t *ChaosTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	rule := t.pick(r)
	if rule == nil {
		return base.RoundTrip(r)
	}
	switch {
	case rule.Drop:
		return nil, fmt.Errorf("chaos(%s): connection dropped", rule.Name)
	case rule.Status != 0:
		resp := &http.Response{
			StatusCode: rule.Status,
			Status:     fmt.Sprintf("%d %s", rule.Status, http.StatusText(rule.Status)),
			Proto:      r.Proto,
			ProtoMajor: r.ProtoMajor,
			ProtoMinor: r.ProtoMinor,
			Header:     http.Header{},
			Body:       io.NopCloser(strings.NewReader(rule.Body)),
			Request:    r,
		}
		for k, vs := range rule.Header {
			for _, v := range vs {
				resp.Header.Add(k, v)
			}
		}
		return resp, nil
	case rule.Stall > 0:
		select {
		case <-r.Context().Done():
			return nil, r.Context().Err()
		case <-time.After(rule.Stall):
		}
		return base.RoundTrip(r)
	case rule.TruncateBody > 0:
		resp, err := base.RoundTrip(r)
		if err != nil {
			return nil, err
		}
		resp.Body = &truncatedBody{rc: resp.Body, remaining: rule.TruncateBody, name: rule.Name}
		return resp, nil
	default:
		return base.RoundTrip(r)
	}
}

// truncatedBody delivers the first remaining bytes of the wrapped body,
// then fails like a connection cut mid-response.
type truncatedBody struct {
	rc        io.ReadCloser
	remaining int64
	name      string
}

// Read implements io.Reader.
func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, fmt.Errorf("chaos(%s): connection cut mid-body: %w", b.name, io.ErrUnexpectedEOF)
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.rc.Read(p)
	b.remaining -= int64(n)
	return n, err
}

// Close implements io.Closer.
func (b *truncatedBody) Close() error { return b.rc.Close() }
