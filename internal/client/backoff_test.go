package client

import (
	"testing"
	"time"
)

// TestBackoffFullJitterBounds: retry waits are uniform full jitter in
// (0, base·2^attempt], never zero, never above the exponential ceiling
// for that attempt.
func TestBackoffFullJitterBounds(t *testing.T) {
	c := New("http://example.invalid")
	c.PollInterval = 10 * time.Millisecond
	c.MaxBackoff = time.Second

	for attempt := 0; attempt < 6; attempt++ {
		ceil := c.PollInterval << uint(attempt)
		if ceil > c.MaxBackoff {
			ceil = c.MaxBackoff
		}
		for i := 0; i < 200; i++ {
			d := c.backoff(attempt, nil)
			if d <= 0 {
				t.Fatalf("attempt %d: backoff %v <= 0", attempt, d)
			}
			if d > ceil {
				t.Fatalf("attempt %d: backoff %v exceeds ceiling %v", attempt, d, ceil)
			}
		}
	}
}

// TestBackoffCapsAtMaxBackoff: arbitrarily late attempts never exceed
// MaxBackoff (and the default cap applies when unset).
func TestBackoffCapsAtMaxBackoff(t *testing.T) {
	c := New("http://example.invalid")
	c.PollInterval = 50 * time.Millisecond
	c.MaxBackoff = 200 * time.Millisecond
	for i := 0; i < 200; i++ {
		if d := c.backoff(30, nil); d > 200*time.Millisecond {
			t.Fatalf("backoff %v exceeds MaxBackoff", d)
		}
	}

	c.MaxBackoff = 0 // default cap: 5s
	for i := 0; i < 50; i++ {
		if d := c.backoff(62, nil); d > 5*time.Second {
			t.Fatalf("backoff %v exceeds the 5s default cap", d)
		}
	}
}

// TestBackoffJitters: the waits actually spread out instead of
// retrying in lockstep — that is the point of full jitter.
func TestBackoffJitters(t *testing.T) {
	c := New("http://example.invalid")
	c.PollInterval = 100 * time.Millisecond
	seen := map[time.Duration]bool{}
	for i := 0; i < 50; i++ {
		seen[c.backoff(4, nil)] = true
	}
	if len(seen) < 10 {
		t.Errorf("50 backoff draws produced only %d distinct values; jitter looks broken", len(seen))
	}
}

// TestBackoffHonorsRetryAfterFloor: when the daemon names the wait it
// needs, the backoff never undercuts it — jitter is added on top, and
// the exponential cap does not clip the server's floor.
func TestBackoffHonorsRetryAfterFloor(t *testing.T) {
	c := New("http://example.invalid")
	c.PollInterval = 10 * time.Millisecond
	c.MaxBackoff = 50 * time.Millisecond

	apiErr := &APIError{Status: 429, RetryAfter: 2 * time.Second}
	for i := 0; i < 100; i++ {
		d := c.backoff(0, apiErr)
		if d < 2*time.Second {
			t.Fatalf("backoff %v undercuts the Retry-After floor of 2s", d)
		}
		if d > 2*time.Second+c.PollInterval {
			t.Fatalf("backoff %v exceeds floor + one base interval of jitter", d)
		}
	}

	// An error without a hint changes nothing.
	for i := 0; i < 50; i++ {
		if d := c.backoff(0, &APIError{Status: 429}); d > c.PollInterval {
			t.Fatalf("hint-less backoff %v exceeds the attempt-0 ceiling", d)
		}
	}
}
