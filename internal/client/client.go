// Package client is the Go client of the ccsimd daemon: typed wrappers
// over the /v1 JSON API plus RunSweep, a drop-in remote counterpart of
// sweep.Run used by `ccsim -server` to execute on a shared daemon
// instead of the local machine.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// Client talks to one ccsimd daemon.
type Client struct {
	base   string
	http   *http.Client
	stream *http.Client // no overall timeout: carries SSE streams

	// PollInterval is the status-poll period of Wait and RunSweep
	// (default 250ms). It is also the base of the retry backoff.
	PollInterval time.Duration

	// MaxBackoff caps the exponential retry/reconnect backoff of
	// RunJob, RunSweep, and StreamAnalysis (default 5s). The daemon's
	// Retry-After hint is always honored as a floor, never clipped.
	MaxBackoff time.Duration

	// Token, when set, is sent as a bearer credential (Authorization:
	// Bearer <token>) on every request — required against daemons with a
	// tenant registry (ccsimd -tenants).
	Token string

	// rootMu guards the lazily probed trace-root advertisement.
	rootMu    sync.Mutex
	root      string
	rootKnown bool
}

// SetTransport replaces the underlying HTTP transport of both the
// request and streaming clients. Test support: fault-injection
// harnesses wrap the default transport to drop, stall, or corrupt
// traffic at the wire level.
func (c *Client) SetTransport(rt http.RoundTripper) {
	c.http.Transport = rt
	c.stream.Transport = rt
}

// New returns a client for the daemon at baseURL (e.g.
// "http://localhost:8344"). The URL may include a path prefix; a
// missing scheme defaults to http. Requests carry a generous overall
// timeout so a daemon that vanishes without closing its connections
// (power loss, network partition) surfaces as an error instead of
// hanging Wait/RunSweep forever; none of the client's calls stream.
func New(baseURL string) *Client {
	base := strings.TrimSuffix(baseURL, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{
		base: base,
		http: &http.Client{Timeout: 2 * time.Minute},
		// SSE streams outlive any sensible overall timeout; ctx
		// cancellation and server-side completion bound them instead.
		stream:       &http.Client{},
		PollInterval: 250 * time.Millisecond,
	}
}

// Base returns the normalized daemon URL this client talks to.
func (c *Client) Base() string { return c.base }

// TraceRoot returns the daemon's advertised shared trace directory (""
// when it has none), probed from /healthz once and cached for the
// client's lifetime.
func (c *Client) TraceRoot(ctx context.Context) (string, error) {
	c.rootMu.Lock()
	defer c.rootMu.Unlock()
	if c.rootKnown {
		return c.root, nil
	}
	//lint:allow lockio single-flight probe: rootMu exists to let exactly one caller hit /healthz while the rest wait for the cached answer; nothing else ever takes it
	h, err := c.Health(ctx)
	if err != nil {
		return "", err
	}
	c.root = h.TraceRoot
	c.rootKnown = true
	return c.root, nil
}

// ValidateTraceFiles reports whether cfg may run on a daemon
// advertising traceRoot as its shared trace directory. Trace paths are
// opened on the daemon's filesystem, so a config referencing files the
// daemon cannot see would fail remotely — or, worse, silently read a
// different file that happens to exist at that path on the server.
// Only absolute paths under the advertised root are allowed; a daemon
// with no root accepts no trace-file configs at all.
func ValidateTraceFiles(cfg sim.Config, traceRoot string) error {
	for _, p := range cfg.TraceFiles {
		if p == "" {
			continue
		}
		if traceRoot == "" {
			return fmt.Errorf("client: config reads trace file %s, but the daemon advertises no shared trace root: the path would be opened on the daemon's filesystem, not this one — run locally, or start the daemon with -trace-root over a shared directory: %w", p, server.ErrIneligible)
		}
		if !filepath.IsAbs(p) {
			return fmt.Errorf("client: trace file %s is a relative path, which resolves against the daemon's working directory — use an absolute path under the shared trace root %s: %w", p, traceRoot, server.ErrIneligible)
		}
		rel, err := filepath.Rel(traceRoot, filepath.Clean(p))
		if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
			return fmt.Errorf("client: trace file %s is outside the daemon's shared trace root %s: %w", p, traceRoot, server.ErrIneligible)
		}
	}
	return nil
}

// checkTraceFiles rejects trace-driven specs the daemon cannot faithfully
// execute, probing the daemon's trace-root advertisement on first need.
func (c *Client) checkTraceFiles(ctx context.Context, specs []server.JobSpec) error {
	probed := false
	var root string
	for i, spec := range specs {
		if !hasTraceFiles(spec.Config) {
			continue
		}
		if !probed {
			var err error
			if root, err = c.TraceRoot(ctx); err != nil {
				return err
			}
			probed = true
		}
		if err := ValidateTraceFiles(spec.Config, root); err != nil {
			return fmt.Errorf("client: job %d (%s): %w", i, spec.Label, err)
		}
	}
	return nil
}

// hasTraceFiles reports whether any core of cfg replays a trace file.
func hasTraceFiles(cfg sim.Config) bool {
	for _, p := range cfg.TraceFiles {
		if p != "" {
			return true
		}
	}
	return false
}

// Submit sends a batch of specs and returns the accepted job statuses
// (IDs included) in submission order. Trace-driven configs are rejected
// client-side unless the daemon advertises a shared trace root covering
// their paths (see ValidateTraceFiles).
func (c *Client) Submit(ctx context.Context, specs []server.JobSpec) ([]server.JobStatus, error) {
	if err := c.checkTraceFiles(ctx, specs); err != nil {
		return nil, err
	}
	// An anonymous body, not server.SubmitRequest: its embedded
	// single-spec fields would serialize a zero sim.Config alongside
	// "jobs" on every request.
	body := struct {
		Jobs []server.JobSpec `json:"jobs"`
	}{Jobs: specs}
	var resp server.SubmitResponse
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", body, &resp); err != nil {
		return nil, err
	}
	return resp.Jobs, nil
}

// Job fetches one job's status, result included when done.
func (c *Client) Job(ctx context.Context, id string) (server.JobStatus, error) {
	var st server.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &st)
	return st, err
}

// Jobs lists jobs on the daemon (statuses only, no result payloads).
// With ids it returns only those jobs, omitting evicted/unknown IDs;
// without arguments it lists every retained job.
func (c *Client) Jobs(ctx context.Context, ids ...string) ([]server.JobStatus, error) {
	path := "/v1/jobs"
	if len(ids) > 0 {
		path += "?ids=" + url.QueryEscape(strings.Join(ids, ","))
	}
	var resp server.SubmitResponse
	err := c.do(ctx, http.MethodGet, path, nil, &resp)
	return resp.Jobs, err
}

// Cancel requests cancellation and returns the resulting status.
func (c *Client) Cancel(ctx context.Context, id string) (server.JobStatus, error) {
	var st server.JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, &st)
	return st, err
}

// Result fetches a result by its content-address key.
func (c *Client) Result(ctx context.Context, key string) (sim.Result, error) {
	var res sim.Result
	err := c.do(ctx, http.MethodGet, "/v1/results/"+url.PathEscape(key), nil, &res)
	return res, err
}

// Analysis fetches a done job's perf-analyzer report. The daemon
// answers 404 (an *APIError here) when the job is unknown, not
// finished yet, or ran with analysis disabled.
func (c *Client) Analysis(ctx context.Context, id string) (*analysis.Report, error) {
	var rep analysis.Report
	if err := c.do(ctx, http.MethodGet, "/v1/analysis/"+url.PathEscape(id), nil, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// StreamAnalysis follows a job's live analysis stream
// (GET /v1/analysis/{id}/stream), invoking onBatch for every batch —
// catch-up snapshot, live epoch deltas, final summary — until the
// daemon signals completion. afterSeq resumes after an already
// processed batch sequence (0 streams from the start). A connection
// dropped mid-stream reconnects automatically with Last-Event-ID set
// to the last delivered sequence, so onBatch sees no gaps: applying
// every batch to an analysis.StreamAccumulator reconstructs the job's
// final report byte-identically. A failed flight surfaces as the
// stream's error frame, returned after the frames received so far.
func (c *Client) StreamAnalysis(ctx context.Context, id string, afterSeq uint64, onBatch func(analysis.StreamBatch)) error {
	last := afterSeq
	attempt := 0
	for {
		complete, progressed, err := c.streamAnalysisOnce(ctx, id, &last, onBatch)
		if complete || (err != nil && !progressed) {
			// Finished, or failed without receiving a single frame (a
			// dead daemon is not retried; a dropped stream is).
			return err
		}
		if progressed {
			attempt = 0 // the stream is alive; reconnect promptly
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(c.backoff(attempt, err)):
		}
		attempt++
	}
}

// streamAnalysisOnce runs one SSE connection. It reports whether the
// stream reached its done frame and whether any frame arrived (a
// progressed-but-incomplete connection is retried by the caller with
// the updated cursor).
func (c *Client) streamAnalysisOnce(ctx context.Context, id string, last *uint64, onBatch func(analysis.StreamBatch)) (complete, progressed bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/analysis/"+url.PathEscape(id)+"/stream", nil)
	if err != nil {
		return false, false, fmt.Errorf("client: building stream request: %w", err)
	}
	req.Header.Set("Accept", "text/event-stream")
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
	if *last > 0 {
		req.Header.Set("Last-Event-ID", fmt.Sprint(*last))
	}
	resp, err := c.stream.Do(req)
	if err != nil {
		return false, false, fmt.Errorf("client: analysis stream %s: %w", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		apiErr := decodeAPIError(resp)
		return false, false, fmt.Errorf("client: analysis stream %s: %w", id, apiErr)
	}

	var streamErr error
	var event string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "epochs", "summary":
				var b analysis.StreamBatch
				if err := json.Unmarshal([]byte(data), &b); err != nil {
					return false, progressed, fmt.Errorf("client: decoding stream batch: %w", err)
				}
				progressed = true
				*last = b.Seq
				onBatch(b)
			case "error":
				var e struct {
					Error string `json:"error"`
				}
				if json.Unmarshal([]byte(data), &e) == nil && e.Error != "" {
					streamErr = fmt.Errorf("client: job %s analysis stream: %s", id, e.Error)
				}
			case "done":
				return true, true, streamErr
			}
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return false, progressed, fmt.Errorf("client: analysis stream %s interrupted: %w", id, err)
	}
	if ctx.Err() != nil {
		return false, progressed, ctx.Err()
	}
	return false, progressed, nil
}

// Health fetches /healthz.
func (c *Client) Health(ctx context.Context) (server.Health, error) {
	var h server.Health
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &h)
	return h, err
}

// Metrics fetches /metrics.
func (c *Client) Metrics(ctx context.Context) (server.Metrics, error) {
	var m server.Metrics
	err := c.do(ctx, http.MethodGet, "/metrics", nil, &m)
	return m, err
}

// Wait polls until the job reaches a terminal state and returns it.
func (c *Client) Wait(ctx context.Context, id string) (server.JobStatus, error) {
	ticker := time.NewTicker(c.pollInterval())
	defer ticker.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-ticker.C:
		}
	}
}

// RunJob executes one job on the daemon to a terminal state and
// returns its final status, result included. It is the unit of work of
// fleet execution (internal/dispatch, ccsimd -peers): submission backs
// off while the daemon's queue is full, a job evicted from the
// retention window falls back to the content-addressed result cache,
// and cancelling ctx cancels the remote job best-effort. A job that
// finishes failed or canceled returns a *server.RemoteJobError so
// callers can tell "the simulation failed" (not retryable elsewhere)
// from "the daemon is unreachable" (retryable).
func (c *Client) RunJob(ctx context.Context, spec server.JobSpec) (server.JobStatus, error) {
	var sub server.JobStatus
	for attempt := 0; ; attempt++ {
		sts, err := c.Submit(ctx, []server.JobSpec{spec})
		if err == nil {
			sub = sts[0]
			break
		}
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
			return server.JobStatus{}, err
		}
		select { // queue full or rate-limited: wait for capacity/tokens
		case <-ctx.Done():
			return server.JobStatus{}, ctx.Err()
		case <-time.After(c.backoff(attempt, err)):
		}
	}

	st, err := c.waitOrRecover(ctx, sub)
	if err != nil {
		if ctx.Err() != nil {
			// Don't abandon the job on the shared daemon: cancel it so
			// the fleet stops spending cycles on a result nobody wants.
			cctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 5*time.Second)
			_, _ = c.Cancel(cctx, sub.ID)
			cancel()
		}
		return st, err
	}
	switch st.State {
	case server.StateDone:
		return st, nil
	default:
		return st, &server.RemoteJobError{
			Endpoint: c.base,
			JobID:    sub.ID,
			State:    st.State,
			Message:  st.Error,
			Reason:   st.Reason,
		}
	}
}

// waitOrRecover waits for a terminal status, recovering a job evicted
// from the daemon's bounded retention window through the
// content-addressed cache (same trade-off as RunSweep's eviction
// fallback: a success is bit-identical; an evicted failure surfaces as
// a generic eviction error).
func (c *Client) waitOrRecover(ctx context.Context, sub server.JobStatus) (server.JobStatus, error) {
	st, err := c.Wait(ctx, sub.ID)
	var apiErr *APIError
	if err == nil || !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound || sub.Key == "" {
		return st, err
	}
	res, rerr := c.Result(ctx, sub.Key)
	if rerr != nil {
		return st, fmt.Errorf("client: job %s evicted and its result is not cached: %w", sub.ID, err)
	}
	st = sub
	st.State = server.StateDone
	st.Cached = true
	st.Result = &res
	return st, nil
}

// Peer adapts a Client to the server.Remote interface, letting one
// ccsimd daemon front a fleet (-peers): the front daemon's manager
// dedicates Slots concurrent executions to this peer.
type Peer struct {
	*Client
	slots int
}

// NewPeer wraps the daemon at baseURL as a fleet backend contributing
// slots concurrent executions (at least 1).
func NewPeer(baseURL string, slots int) *Peer {
	if slots < 1 {
		slots = 1
	}
	return &Peer{Client: New(baseURL), slots: slots}
}

// Name implements server.Remote.
func (p *Peer) Name() string { return p.Base() }

// Slots implements server.Remote.
func (p *Peer) Slots() int { return p.slots }

// Run implements server.Remote.
func (p *Peer) Run(ctx context.Context, spec server.JobSpec) (server.JobStatus, error) {
	return p.RunJob(ctx, spec)
}

// RunSweep executes jobs on the daemon and returns results in input
// order, mirroring sweep.Run's contract: the first failure (or a
// server-side cancellation) aborts with a *sweep.JobError, and
// progress, when non-nil, receives one event per finished job with
// monotonically increasing Done. On error or context cancellation the
// outstanding remote jobs are canceled best-effort.
func (c *Client) RunSweep(ctx context.Context, jobs []sweep.Job, progress func(sweep.Event)) ([]sim.Result, error) {
	if len(jobs) == 0 {
		return nil, nil
	}
	specs := make([]server.JobSpec, len(jobs))
	for i, j := range jobs {
		specs[i] = server.JobSpec{Label: j.Label, Config: j.Config}
	}

	results := make([]sim.Result, len(jobs))
	pending := map[int]server.JobStatus{} // input index -> submitted job
	abort := func(index int, cause error) ([]sim.Result, error) {
		for _, st := range pending {
			cctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 5*time.Second)
			_, _ = c.Cancel(cctx, st.ID)
			cancel()
		}
		if index < 0 {
			return results, cause
		}
		return results, &sweep.JobError{Index: index, Label: jobs[index].Label, Err: cause}
	}

	// Submit in chunks, shrinking and backing off while the daemon's
	// bounded queue is full, so sweeps larger than the queue depth
	// still complete: capacity frees as earlier chunks finish.
	chunk := 16
	attempt := 0
	for start := 0; start < len(specs); {
		size := chunk
		if rest := len(specs) - start; size > rest {
			size = rest
		}
		sts, err := c.Submit(ctx, specs[start:start+size])
		if err != nil {
			var apiErr *APIError
			if errors.As(err, &apiErr) && apiErr.Status == http.StatusTooManyRequests {
				// A Retry-After hint means a rate limit, which shrinking
				// cannot fix — only waiting can. Without one the queue is
				// full: shrink the batch first, then wait for capacity.
				if apiErr.RetryAfter == 0 && size > 1 {
					chunk = size / 2
					continue
				}
				select {
				case <-ctx.Done():
					return abort(-1, ctx.Err())
				case <-time.After(c.backoff(attempt, err)):
				}
				attempt++
				continue
			}
			return abort(-1, err)
		}
		attempt = 0
		for i, st := range sts {
			pending[start+i] = st
		}
		start += size
		if chunk < 16 {
			// Recover batch size after a transient queue-full, capped
			// so non-power-of-two shrinks never overshoot the design
			// maximum (7 -> 14 -> 16, not 28).
			if chunk *= 2; chunk > 16 {
				chunk = 16
			}
		}
	}

	ticker := time.NewTicker(c.pollInterval())
	defer ticker.Stop()
	done := 0
	for len(pending) > 0 {
		// One ID-filtered list call per tick detects terminal jobs;
		// only those get a detail fetch for the result — O(1 +
		// finished) requests per tick instead of one per outstanding
		// job, and no payload for other clients' jobs.
		ids := make([]string, 0, len(pending))
		for _, st := range pending {
			ids = append(ids, st.ID)
		}
		listed, err := c.Jobs(ctx, ids...)
		if err != nil {
			return abort(-1, err)
		}
		byID := make(map[string]server.JobStatus, len(listed))
		for _, st := range listed {
			byID[st.ID] = st
		}
		for i := 0; i < len(jobs); i++ {
			sub, ok := pending[i]
			if !ok {
				continue
			}
			st, terminal, err := c.finishedStatus(ctx, sub, byID)
			if err != nil {
				return abort(-1, err)
			}
			if !terminal {
				continue
			}
			delete(pending, i)
			done++
			ev := sweep.Event{
				Index:   i,
				Total:   len(jobs),
				Done:    done,
				Label:   jobs[i].Label,
				Key:     st.Key,
				Cached:  st.Cached,
				Elapsed: time.Duration(st.ElapsedMs * float64(time.Millisecond)),
			}
			switch {
			case st.State == server.StateDone && st.Result != nil:
				results[i] = *st.Result
			case st.State == server.StateCanceled:
				ev.Err = fmt.Errorf("client: job %s canceled on the server: %s", sub.ID, st.Error)
			default:
				ev.Err = fmt.Errorf("client: job %s failed: %s", sub.ID, st.Error)
			}
			if progress != nil {
				progress(ev)
			}
			if ev.Err != nil {
				return abort(i, ev.Err)
			}
		}
		if len(pending) == 0 {
			break
		}
		select {
		case <-ctx.Done():
			return abort(-1, ctx.Err())
		case <-ticker.C:
		}
	}
	return results, nil
}

// finishedStatus resolves one outstanding job against the latest
// listing: still-live jobs return terminal=false; terminal ones are
// detail-fetched for the result. A job evicted from the daemon's
// bounded retention window falls back to the content-addressed cache
// (its key came with the submit response), so long sweeps survive
// eviction races. The fallback trades fidelity for liveness: a job
// that failed or was canceled and then evicted either reports as a
// cached success (a bit-identical result exists, which is what the
// sweep wanted) or surfaces a generic eviction error in place of the
// original failure reason, which eviction has discarded.
func (c *Client) finishedStatus(ctx context.Context, sub server.JobStatus, byID map[string]server.JobStatus) (server.JobStatus, bool, error) {
	if listed, ok := byID[sub.ID]; ok && !listed.State.Terminal() {
		return server.JobStatus{}, false, nil
	}
	st, err := c.Job(ctx, sub.ID)
	var apiErr *APIError
	if err == nil {
		return st, true, nil
	}
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound || sub.Key == "" {
		return server.JobStatus{}, false, err
	}
	res, rerr := c.Result(ctx, sub.Key)
	if rerr != nil {
		return server.JobStatus{}, false, fmt.Errorf("client: job %s evicted and its result is not cached: %w", sub.ID, err)
	}
	st = sub
	st.State = server.StateDone
	st.Cached = true
	st.Result = &res
	return st, true, nil
}

func (c *Client) pollInterval() time.Duration {
	if c.PollInterval > 0 {
		return c.PollInterval
	}
	return 250 * time.Millisecond
}

// do performs one JSON round trip. Non-2xx responses decode the
// {"error": ...} body into an *APIError.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		blob, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
		rd = bytes.NewReader(blob)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("client: building request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
	// Propagate the caller's deadline so the daemon can enforce it
	// queue-side: a job that cannot start before the client gives up
	// fails fast instead of occupying a scheduler slot.
	if dl, ok := ctx.Deadline(); ok {
		req.Header.Set(server.DeadlineHeader, strconv.FormatInt(dl.UnixMilli(), 10))
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("client: %s %s: %w", method, path, decodeAPIError(resp))
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding %s %s response: %w", method, path, err)
	}
	return nil
}

// APIError is a non-2xx daemon response.
type APIError struct {
	Status  int
	Message string
	// Code is the daemon's machine-readable error code when it sent one
	// (e.g. server.ErrCodeDeadlineUnmeetable for admission-time load
	// shedding); "" otherwise.
	Code string
	// RetryAfter is the daemon's Retry-After hint on 429 responses
	// (zero when absent): how long the tenant's token bucket needs to
	// admit one more submission.
	RetryAfter time.Duration
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("HTTP %d: %s", e.Status, e.Message)
}

// decodeAPIError reads a non-2xx response into an *APIError, decoding
// the {"error": ...} body and the Retry-After header when present.
func decodeAPIError(resp *http.Response) *APIError {
	apiErr := &APIError{Status: resp.StatusCode}
	blob, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var e struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if json.Unmarshal(blob, &e) == nil && e.Error != "" {
		apiErr.Message = e.Error
		apiErr.Code = e.Code
	} else {
		apiErr.Message = strings.TrimSpace(string(blob))
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return apiErr
}

// backoff picks the wait before retry number attempt (0-based):
// exponential with full jitter — uniform in (0, pollInterval·2^attempt],
// capped at MaxBackoff — so a fleet of clients hammering a saturated
// daemon decorrelates instead of retrying in lockstep. The daemon's
// Retry-After hint is a floor: when the server names the wait it needs,
// jitter is added on top of it, never subtracted.
func (c *Client) backoff(attempt int, err error) time.Duration {
	base := c.pollInterval()
	ceil := c.MaxBackoff
	if ceil <= 0 {
		ceil = 5 * time.Second
	}
	if ceil < base {
		ceil = base
	}
	d := base
	for i := 0; i < attempt && d < ceil; i++ {
		d *= 2
	}
	if d > ceil {
		d = ceil
	}
	d = time.Duration(1 + rand.Int63n(int64(d))) // full jitter: (0, d]
	var apiErr *APIError
	if errors.As(err, &apiErr) && apiErr.RetryAfter > 0 {
		// Retry-After is the server's admission estimate; retrying
		// sooner is guaranteed to be rejected again.
		floor := apiErr.RetryAfter
		if d < floor {
			d = floor + time.Duration(rand.Int63n(int64(base)+1))
		}
	}
	return d
}
