// Package client is the Go client of the ccsimd daemon: typed wrappers
// over the /v1 JSON API plus RunSweep, a drop-in remote counterpart of
// sweep.Run used by `ccsim -server` to execute on a shared daemon
// instead of the local machine.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// Client talks to one ccsimd daemon.
type Client struct {
	base string
	http *http.Client

	// PollInterval is the status-poll period of Wait and RunSweep
	// (default 250ms).
	PollInterval time.Duration
}

// New returns a client for the daemon at baseURL (e.g.
// "http://localhost:8344"). The URL may include a path prefix; a
// missing scheme defaults to http. Requests carry a generous overall
// timeout so a daemon that vanishes without closing its connections
// (power loss, network partition) surfaces as an error instead of
// hanging Wait/RunSweep forever; none of the client's calls stream.
func New(baseURL string) *Client {
	base := strings.TrimSuffix(baseURL, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{
		base:         base,
		http:         &http.Client{Timeout: 2 * time.Minute},
		PollInterval: 250 * time.Millisecond,
	}
}

// Submit sends a batch of specs and returns the accepted job statuses
// (IDs included) in submission order.
func (c *Client) Submit(ctx context.Context, specs []server.JobSpec) ([]server.JobStatus, error) {
	// An anonymous body, not server.SubmitRequest: its embedded
	// single-spec fields would serialize a zero sim.Config alongside
	// "jobs" on every request.
	body := struct {
		Jobs []server.JobSpec `json:"jobs"`
	}{Jobs: specs}
	var resp server.SubmitResponse
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", body, &resp); err != nil {
		return nil, err
	}
	return resp.Jobs, nil
}

// Job fetches one job's status, result included when done.
func (c *Client) Job(ctx context.Context, id string) (server.JobStatus, error) {
	var st server.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &st)
	return st, err
}

// Jobs lists jobs on the daemon (statuses only, no result payloads).
// With ids it returns only those jobs, omitting evicted/unknown IDs;
// without arguments it lists every retained job.
func (c *Client) Jobs(ctx context.Context, ids ...string) ([]server.JobStatus, error) {
	path := "/v1/jobs"
	if len(ids) > 0 {
		path += "?ids=" + url.QueryEscape(strings.Join(ids, ","))
	}
	var resp server.SubmitResponse
	err := c.do(ctx, http.MethodGet, path, nil, &resp)
	return resp.Jobs, err
}

// Cancel requests cancellation and returns the resulting status.
func (c *Client) Cancel(ctx context.Context, id string) (server.JobStatus, error) {
	var st server.JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, &st)
	return st, err
}

// Result fetches a result by its content-address key.
func (c *Client) Result(ctx context.Context, key string) (sim.Result, error) {
	var res sim.Result
	err := c.do(ctx, http.MethodGet, "/v1/results/"+url.PathEscape(key), nil, &res)
	return res, err
}

// Health fetches /healthz.
func (c *Client) Health(ctx context.Context) (server.Health, error) {
	var h server.Health
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &h)
	return h, err
}

// Metrics fetches /metrics.
func (c *Client) Metrics(ctx context.Context) (server.Metrics, error) {
	var m server.Metrics
	err := c.do(ctx, http.MethodGet, "/metrics", nil, &m)
	return m, err
}

// Wait polls until the job reaches a terminal state and returns it.
func (c *Client) Wait(ctx context.Context, id string) (server.JobStatus, error) {
	ticker := time.NewTicker(c.pollInterval())
	defer ticker.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-ticker.C:
		}
	}
}

// RunSweep executes jobs on the daemon and returns results in input
// order, mirroring sweep.Run's contract: the first failure (or a
// server-side cancellation) aborts with a *sweep.JobError, and
// progress, when non-nil, receives one event per finished job with
// monotonically increasing Done. On error or context cancellation the
// outstanding remote jobs are canceled best-effort.
func (c *Client) RunSweep(ctx context.Context, jobs []sweep.Job, progress func(sweep.Event)) ([]sim.Result, error) {
	if len(jobs) == 0 {
		return nil, nil
	}
	specs := make([]server.JobSpec, len(jobs))
	for i, j := range jobs {
		specs[i] = server.JobSpec{Label: j.Label, Config: j.Config}
	}

	results := make([]sim.Result, len(jobs))
	pending := map[int]server.JobStatus{} // input index -> submitted job
	abort := func(index int, cause error) ([]sim.Result, error) {
		for _, st := range pending {
			cctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 5*time.Second)
			_, _ = c.Cancel(cctx, st.ID)
			cancel()
		}
		if index < 0 {
			return results, cause
		}
		return results, &sweep.JobError{Index: index, Label: jobs[index].Label, Err: cause}
	}

	// Submit in chunks, shrinking and backing off while the daemon's
	// bounded queue is full, so sweeps larger than the queue depth
	// still complete: capacity frees as earlier chunks finish.
	chunk := 16
	for start := 0; start < len(specs); {
		size := chunk
		if rest := len(specs) - start; size > rest {
			size = rest
		}
		sts, err := c.Submit(ctx, specs[start:start+size])
		if err != nil {
			var apiErr *APIError
			if errors.As(err, &apiErr) && apiErr.Status == http.StatusTooManyRequests {
				if size > 1 {
					chunk = size / 2 // batch may exceed the queue: shrink
					continue
				}
				select { // queue genuinely full: wait for capacity
				case <-ctx.Done():
					return abort(-1, ctx.Err())
				case <-time.After(c.pollInterval()):
				}
				continue
			}
			return abort(-1, err)
		}
		for i, st := range sts {
			pending[start+i] = st
		}
		start += size
		if chunk < 16 {
			// Recover batch size after a transient queue-full, capped
			// so non-power-of-two shrinks never overshoot the design
			// maximum (7 -> 14 -> 16, not 28).
			if chunk *= 2; chunk > 16 {
				chunk = 16
			}
		}
	}

	ticker := time.NewTicker(c.pollInterval())
	defer ticker.Stop()
	done := 0
	for len(pending) > 0 {
		// One ID-filtered list call per tick detects terminal jobs;
		// only those get a detail fetch for the result — O(1 +
		// finished) requests per tick instead of one per outstanding
		// job, and no payload for other clients' jobs.
		ids := make([]string, 0, len(pending))
		for _, st := range pending {
			ids = append(ids, st.ID)
		}
		listed, err := c.Jobs(ctx, ids...)
		if err != nil {
			return abort(-1, err)
		}
		byID := make(map[string]server.JobStatus, len(listed))
		for _, st := range listed {
			byID[st.ID] = st
		}
		for i := 0; i < len(jobs); i++ {
			sub, ok := pending[i]
			if !ok {
				continue
			}
			st, terminal, err := c.finishedStatus(ctx, sub, byID)
			if err != nil {
				return abort(-1, err)
			}
			if !terminal {
				continue
			}
			delete(pending, i)
			done++
			ev := sweep.Event{
				Index:   i,
				Total:   len(jobs),
				Done:    done,
				Label:   jobs[i].Label,
				Key:     st.Key,
				Cached:  st.Cached,
				Elapsed: time.Duration(st.ElapsedMs * float64(time.Millisecond)),
			}
			switch {
			case st.State == server.StateDone && st.Result != nil:
				results[i] = *st.Result
			case st.State == server.StateCanceled:
				ev.Err = fmt.Errorf("client: job %s canceled on the server: %s", sub.ID, st.Error)
			default:
				ev.Err = fmt.Errorf("client: job %s failed: %s", sub.ID, st.Error)
			}
			if progress != nil {
				progress(ev)
			}
			if ev.Err != nil {
				return abort(i, ev.Err)
			}
		}
		if len(pending) == 0 {
			break
		}
		select {
		case <-ctx.Done():
			return abort(-1, ctx.Err())
		case <-ticker.C:
		}
	}
	return results, nil
}

// finishedStatus resolves one outstanding job against the latest
// listing: still-live jobs return terminal=false; terminal ones are
// detail-fetched for the result. A job evicted from the daemon's
// bounded retention window falls back to the content-addressed cache
// (its key came with the submit response), so long sweeps survive
// eviction races. The fallback trades fidelity for liveness: a job
// that failed or was canceled and then evicted either reports as a
// cached success (a bit-identical result exists, which is what the
// sweep wanted) or surfaces a generic eviction error in place of the
// original failure reason, which eviction has discarded.
func (c *Client) finishedStatus(ctx context.Context, sub server.JobStatus, byID map[string]server.JobStatus) (server.JobStatus, bool, error) {
	if listed, ok := byID[sub.ID]; ok && !listed.State.Terminal() {
		return server.JobStatus{}, false, nil
	}
	st, err := c.Job(ctx, sub.ID)
	var apiErr *APIError
	if err == nil {
		return st, true, nil
	}
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound || sub.Key == "" {
		return server.JobStatus{}, false, err
	}
	res, rerr := c.Result(ctx, sub.Key)
	if rerr != nil {
		return server.JobStatus{}, false, fmt.Errorf("client: job %s evicted and its result is not cached: %w", sub.ID, err)
	}
	st = sub
	st.State = server.StateDone
	st.Cached = true
	st.Result = &res
	return st, true, nil
}

func (c *Client) pollInterval() time.Duration {
	if c.PollInterval > 0 {
		return c.PollInterval
	}
	return 250 * time.Millisecond
}

// do performs one JSON round trip. Non-2xx responses decode the
// {"error": ...} body into an *APIError.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		blob, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
		rd = bytes.NewReader(blob)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("client: building request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		apiErr := &APIError{Status: resp.StatusCode}
		blob, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(blob, &e) == nil && e.Error != "" {
			apiErr.Message = e.Error
		} else {
			apiErr.Message = strings.TrimSpace(string(blob))
		}
		return fmt.Errorf("client: %s %s: %w", method, path, apiErr)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding %s %s response: %w", method, path, err)
	}
	return nil
}

// APIError is a non-2xx daemon response.
type APIError struct {
	Status  int
	Message string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("HTTP %d: %s", e.Status, e.Message)
}
