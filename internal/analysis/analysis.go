// Package analysis is the simulator's opt-in perf-analyzer: probe
// implementations for the DRAM channel (per-bank command utilization,
// tFAW stall attribution), the memory controller (queue-depth samples
// and row-buffer-outcome timelines off the FR-FCFS selector), and the
// ChargeCache (lookup/insert/expiry event traces), all folded into
// bounded epoch-bucketed ring buffers.
//
// The layer is built to observe without perturbing: probes never touch
// scheduler state, every event is bucketed by an engine-invariant cycle
// (command issue time, request arrival, nominal IIC rollover), and the
// differential suite runs bit-identically with analysis on or off. When
// analysis is disabled the hot paths pay a single nil check per probe
// site and allocate nothing (see zeroalloc tests in internal/sim).
//
// Memory is bounded up front: every timeline is a fixed-capacity ring
// of epoch buckets preallocated at construction. Epochs beyond the
// window evict the oldest buckets (counted in DroppedEpochs); events
// older than the window fold into the oldest live bucket (Clamped).
// Totals accumulate independently of the rings, so they stay exact even
// after eviction.
package analysis

import "fmt"

// Defaults for Config fields left zero.
const (
	// DefaultEpochCycles is the timeline bucket width in DRAM bus
	// cycles: 50k bus cycles is 62.5 µs at DDR3-1600, a few refresh
	// intervals per bucket.
	DefaultEpochCycles = 50_000
	// DefaultMaxEpochs bounds each timeline ring; with the default
	// epoch width a ring covers 12.8M bus cycles (64M CPU cycles).
	DefaultMaxEpochs = 256
)

// Config enables and sizes the perf-analyzer for one simulation. The
// zero value (and a nil *Config) means disabled; sim.Config carries it
// as a pointer with omitempty so historical sweep-cache keys are
// unaffected.
type Config struct {
	// Enabled turns the probes on.
	Enabled bool

	// EpochCycles is the timeline bucket width in DRAM bus cycles
	// (0 = DefaultEpochCycles).
	EpochCycles int `json:",omitempty"`

	// MaxEpochs bounds every timeline ring buffer (0 =
	// DefaultMaxEpochs). Memory per channel is
	// O((ranks*banks + 1) * MaxEpochs) fixed-size buckets.
	MaxEpochs int `json:",omitempty"`
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.EpochCycles < 0 {
		return fmt.Errorf("analysis: EpochCycles must be >= 0, got %d", c.EpochCycles)
	}
	if c.MaxEpochs < 0 {
		return fmt.Errorf("analysis: MaxEpochs must be >= 0, got %d", c.MaxEpochs)
	}
	return nil
}

// withDefaults resolves zero fields to their defaults.
func (c Config) withDefaults() Config {
	if c.EpochCycles <= 0 {
		c.EpochCycles = DefaultEpochCycles
	}
	if c.MaxEpochs <= 0 {
		c.MaxEpochs = DefaultMaxEpochs
	}
	return c
}

// BankEpoch is one (rank, bank) timeline bucket: command utilization,
// row-buffer outcomes (bucketed by request arrival), and bank-queue
// depth samples taken at enqueue.
type BankEpoch struct {
	Epoch uint64

	ACT     uint64
	FastACT uint64 // ACTs issued with a lowered timing class
	PRE     uint64
	RD      uint64
	WR      uint64

	// FAWStallCycles attributes tFAW pressure: for each ACT issued
	// while the rank's four-activate window was full, the cycles the
	// window head extended beyond the bank's own tRC/tRP readiness.
	FAWStallCycles uint64

	RowHits      uint64
	RowMisses    uint64
	RowConflicts uint64

	QueueSamples   uint64
	QueueDepthSum  uint64 // sum of (bank reads + bank writes) at sample
	QueueDepthPeak uint64
}

// ChannelEpoch is one channel-level timeline bucket: refreshes,
// channel-wide outcome and queue aggregates, and ChargeCache events.
type ChannelEpoch struct {
	Epoch uint64

	REF uint64

	RowHits      uint64
	RowMisses    uint64
	RowConflicts uint64

	// ChargeCache (HCRAC) events; zero for non-ChargeCache mechanisms.
	CCLookups   uint64
	CCHits      uint64
	CCInserts   uint64
	CCEvictions uint64 // capacity replacements
	CCExpiries  uint64 // timed invalidations (IIC/EC walk or exact expiry)

	QueueSamples   uint64
	ReadDepthSum   uint64 // controller read-queue depth at sample
	WriteDepthSum  uint64
	QueueDepthPeak uint64 // peak reads+writes at sample
}

// RowHitRate returns the epoch's row-buffer hit fraction.
func (e ChannelEpoch) RowHitRate() float64 {
	total := e.RowHits + e.RowMisses + e.RowConflicts
	if total == 0 {
		return 0
	}
	return float64(e.RowHits) / float64(total)
}

// Totals aggregates every probe event of a run, independent of the ring
// windows: sums over epochs equal the matching Totals field whenever no
// epochs were dropped.
type Totals struct {
	ACT            uint64
	FastACT        uint64
	PRE            uint64
	RD             uint64
	WR             uint64
	REF            uint64
	FAWStallCycles uint64

	RowHits      uint64
	RowMisses    uint64
	RowConflicts uint64

	CCLookups   uint64
	CCHits      uint64
	CCInserts   uint64
	CCEvictions uint64
	CCExpiries  uint64

	QueueSamples   uint64
	QueueDepthSum  uint64
	QueueDepthPeak uint64
}

// RowHitRate returns the run's overall row-buffer hit fraction.
func (t Totals) RowHitRate() float64 {
	total := t.RowHits + t.RowMisses + t.RowConflicts
	if total == 0 {
		return 0
	}
	return float64(t.RowHits) / float64(total)
}

// CCHitRate returns the ChargeCache hit fraction over its lookups.
func (t Totals) CCHitRate() float64 {
	if t.CCLookups == 0 {
		return 0
	}
	return float64(t.CCHits) / float64(t.CCLookups)
}

// BankReport is one bank's timeline in a Report.
type BankReport struct {
	Rank int
	Bank int
	// DroppedEpochs counts buckets evicted from the ring; Clamped
	// counts events older than the ring window folded into its oldest
	// bucket. Both zero when MaxEpochs covered the run.
	DroppedEpochs uint64
	Clamped       uint64 `json:",omitempty"`
	Epochs        []BankEpoch
}

// ChannelReport is one channel's timelines in a Report.
type ChannelReport struct {
	Channel       int
	DroppedEpochs uint64
	Clamped       uint64 `json:",omitempty"`
	Epochs        []ChannelEpoch
	// Banks holds the per-(rank, bank) timelines that saw events,
	// ordered by (rank, bank).
	Banks []BankReport
}

// Report is the per-run analysis output, attached to sim.Result.
type Report struct {
	// EpochCycles and MaxEpochs echo the effective configuration.
	EpochCycles int
	MaxEpochs   int
	Totals      Totals
	Channels    []ChannelReport
}

// Collector owns one run's probe state: one ChannelCollector per
// channel, all feeding shared totals. Collectors are single-threaded,
// like the simulator that drives them.
type Collector struct {
	cfg    Config
	totals Totals
	chans  []*ChannelCollector
}

// NewCollector builds a collector for a system with the given channel
// count and per-channel geometry. All ring buffers are preallocated
// here; steady-state probe calls do not allocate.
func NewCollector(cfg Config, channels, ranks, banks int) *Collector {
	cfg = cfg.withDefaults()
	c := &Collector{cfg: cfg}
	for ch := 0; ch < channels; ch++ {
		cc := &ChannelCollector{
			channel:     ch,
			banks:       banks,
			epochCycles: uint64(cfg.EpochCycles),
			totals:      &c.totals,
			bankRings:   make([]ring[BankEpoch], ranks*banks),
			chRing:      newRing[ChannelEpoch](cfg.MaxEpochs),
		}
		for i := range cc.bankRings {
			cc.bankRings[i] = newRing[BankEpoch](cfg.MaxEpochs)
		}
		c.chans = append(c.chans, cc)
	}
	return c
}

// Channel returns channel ch's probe sink, to be installed on that
// channel's controller, DRAM device and mechanism.
func (c *Collector) Channel(ch int) *ChannelCollector { return c.chans[ch] }

// Reset clears every timeline and the totals (after simulation warm-up)
// without releasing the preallocated rings.
func (c *Collector) Reset() {
	c.totals = Totals{}
	for _, cc := range c.chans {
		cc.chRing.reset()
		for i := range cc.bankRings {
			cc.bankRings[i].reset()
		}
	}
}

// Report snapshots the collected timelines. Channels and banks are
// emitted in index order; all-zero intermediate buckets are skipped.
func (c *Collector) Report() *Report {
	rep := &Report{
		EpochCycles: c.cfg.EpochCycles,
		MaxEpochs:   c.cfg.MaxEpochs,
		Totals:      c.totals,
	}
	for _, cc := range c.chans {
		chRep := ChannelReport{
			Channel:       cc.channel,
			DroppedEpochs: cc.chRing.dropped,
			Clamped:       cc.chRing.clamped,
			Epochs: snapshot(&cc.chRing, func(b *ChannelEpoch, e uint64) {
				b.Epoch = e
			}),
		}
		for i := range cc.bankRings {
			r := &cc.bankRings[i]
			if r.n == 0 {
				continue
			}
			chRep.Banks = append(chRep.Banks, BankReport{
				Rank:          i / cc.banks,
				Bank:          i % cc.banks,
				DroppedEpochs: r.dropped,
				Clamped:       r.clamped,
				Epochs: snapshot(r, func(b *BankEpoch, e uint64) {
					b.Epoch = e
				}),
			})
		}
		rep.Channels = append(rep.Channels, chRep)
	}
	return rep
}
