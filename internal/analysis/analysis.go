// Package analysis is the simulator's opt-in perf-analyzer: probe
// implementations for the DRAM channel (per-bank command utilization,
// tFAW stall attribution), the memory controller (queue-depth samples
// and row-buffer-outcome timelines off the FR-FCFS selector), and the
// ChargeCache (lookup/insert/expiry event traces), all folded into
// bounded epoch-bucketed ring buffers.
//
// The layer is built to observe without perturbing: probes never touch
// scheduler state, every event is bucketed by an engine-invariant cycle
// (command issue time, request arrival, nominal IIC rollover), and the
// differential suite runs bit-identically with analysis on or off. When
// analysis is disabled the hot paths pay a single nil check per probe
// site and allocate nothing (see zeroalloc tests in internal/sim).
//
// Memory is bounded up front: every timeline is a fixed-capacity ring
// of epoch buckets preallocated at construction. Epochs beyond the
// window evict the oldest buckets (counted in DroppedEpochs); events
// older than the window fold into the oldest live bucket (Clamped).
// Totals accumulate independently of the rings, so they stay exact even
// after eviction.
package analysis

import "repro/internal/prof"

// Defaults for Config fields left zero.
const (
	// DefaultEpochCycles is the timeline bucket width in DRAM bus
	// cycles: 50k bus cycles is 62.5 µs at DDR3-1600, a few refresh
	// intervals per bucket.
	DefaultEpochCycles = 50_000
	// DefaultMaxEpochs bounds each timeline ring; with the default
	// epoch width a ring covers 12.8M bus cycles (64M CPU cycles).
	DefaultMaxEpochs = 256
)

// Config enables and sizes the perf-analyzer for one simulation. The
// zero value (and a nil *Config) means disabled; sim.Config carries it
// as a pointer with omitempty so historical sweep-cache keys are
// unaffected.
type Config struct {
	// Enabled turns the probes on.
	Enabled bool

	// EpochCycles is the timeline bucket width in DRAM bus cycles.
	// Values <= 0 select DefaultEpochCycles.
	EpochCycles int `json:",omitempty"`

	// MaxEpochs bounds every timeline ring buffer; values <= 0
	// select DefaultMaxEpochs. Memory per channel is
	// O((ranks*banks + 1) * MaxEpochs) fixed-size buckets.
	MaxEpochs int `json:",omitempty"`

	// PhaseProfile turns on the per-access phase profiler: sampled
	// wall-clock attribution across the LLC/controller/DRAM path
	// (see internal/prof), reported per epoch in Report.Phases.
	// It changes report content, so — unlike Stream — it is part of
	// the serialized config and of sweep-cache keys.
	PhaseProfile bool `json:",omitempty"`

	// PhaseSamplePeriod is the profiler's sampling stride (one timed
	// crossing per period calls; <= 0 = prof.DefaultSamplePeriod).
	PhaseSamplePeriod int `json:",omitempty"`

	// Stream, when non-nil, receives a delta batch each time the
	// collector's epoch frontier advances, plus a final summary
	// batch (see StreamBatch). Like sim.Config.CustomMechanism it is
	// excluded from serialization: a config arriving over the wire
	// always has it nil, and the daemon injects its own sink for the
	// executions it runs. Streaming does not alter bucket contents,
	// so results stay byte-identical with or without a sink.
	Stream StreamSink `json:"-"`
}

// Validate reports configuration errors. Out-of-range sizing knobs are
// not errors: EpochCycles, MaxEpochs and PhaseSamplePeriod values <= 0
// are normalized to their documented defaults when the collector is
// built, so every Config is usable as given.
func (c Config) Validate() error {
	return nil
}

// withDefaults resolves out-of-range fields to their defaults.
func (c Config) withDefaults() Config {
	if c.EpochCycles <= 0 {
		c.EpochCycles = DefaultEpochCycles
	}
	if c.MaxEpochs <= 0 {
		c.MaxEpochs = DefaultMaxEpochs
	}
	if c.PhaseSamplePeriod <= 0 {
		c.PhaseSamplePeriod = prof.DefaultSamplePeriod
	}
	return c
}

// BankEpoch is one (rank, bank) timeline bucket: command utilization,
// row-buffer outcomes (bucketed by request arrival), and bank-queue
// depth samples taken at enqueue.
type BankEpoch struct {
	Epoch uint64

	ACT     uint64
	FastACT uint64 // ACTs issued with a lowered timing class
	PRE     uint64
	RD      uint64
	WR      uint64

	// FAWStallCycles attributes tFAW pressure: for each ACT issued
	// while the rank's four-activate window was full, the cycles the
	// window head extended beyond the bank's own tRC/tRP readiness.
	FAWStallCycles uint64

	RowHits      uint64
	RowMisses    uint64
	RowConflicts uint64

	QueueSamples   uint64
	QueueDepthSum  uint64 // sum of (bank reads + bank writes) at sample
	QueueDepthPeak uint64
}

// ChannelEpoch is one channel-level timeline bucket: refreshes,
// channel-wide outcome and queue aggregates, and ChargeCache events.
type ChannelEpoch struct {
	Epoch uint64

	REF uint64

	RowHits      uint64
	RowMisses    uint64
	RowConflicts uint64

	// ChargeCache (HCRAC) events; zero for non-ChargeCache mechanisms.
	CCLookups   uint64
	CCHits      uint64
	CCInserts   uint64
	CCEvictions uint64 // capacity replacements
	CCExpiries  uint64 // timed invalidations (IIC/EC walk or exact expiry)

	QueueSamples   uint64
	ReadDepthSum   uint64 // controller read-queue depth at sample
	WriteDepthSum  uint64
	QueueDepthPeak uint64 // peak reads+writes at sample
}

// RowHitRate returns the epoch's row-buffer hit fraction.
func (e ChannelEpoch) RowHitRate() float64 {
	total := e.RowHits + e.RowMisses + e.RowConflicts
	if total == 0 {
		return 0
	}
	return float64(e.RowHits) / float64(total)
}

// Totals aggregates every probe event of a run, independent of the ring
// windows: sums over epochs equal the matching Totals field whenever no
// epochs were dropped.
type Totals struct {
	ACT            uint64
	FastACT        uint64
	PRE            uint64
	RD             uint64
	WR             uint64
	REF            uint64
	FAWStallCycles uint64

	RowHits      uint64
	RowMisses    uint64
	RowConflicts uint64

	CCLookups   uint64
	CCHits      uint64
	CCInserts   uint64
	CCEvictions uint64
	CCExpiries  uint64

	QueueSamples   uint64
	QueueDepthSum  uint64
	QueueDepthPeak uint64
}

// RowHitRate returns the run's overall row-buffer hit fraction.
func (t Totals) RowHitRate() float64 {
	total := t.RowHits + t.RowMisses + t.RowConflicts
	if total == 0 {
		return 0
	}
	return float64(t.RowHits) / float64(total)
}

// CCHitRate returns the ChargeCache hit fraction over its lookups.
func (t Totals) CCHitRate() float64 {
	if t.CCLookups == 0 {
		return 0
	}
	return float64(t.CCHits) / float64(t.CCLookups)
}

// BankReport is one bank's timeline in a Report.
type BankReport struct {
	Rank int
	Bank int
	// DroppedEpochs counts buckets evicted from the ring; Clamped
	// counts events older than the ring window folded into its oldest
	// bucket. Both zero when MaxEpochs covered the run.
	DroppedEpochs uint64
	Clamped       uint64 `json:",omitempty"`
	// FirstEpoch is the ring window's oldest retained epoch; stream
	// consumers drop reconstructed buckets below it (only relevant
	// when DroppedEpochs > 0).
	FirstEpoch uint64 `json:",omitempty"`
	Epochs     []BankEpoch
}

// ChannelReport is one channel's timelines in a Report.
type ChannelReport struct {
	Channel       int
	DroppedEpochs uint64
	Clamped       uint64 `json:",omitempty"`
	FirstEpoch    uint64 `json:",omitempty"`
	Epochs        []ChannelEpoch
	// Banks holds the per-(rank, bank) timelines that saw events,
	// ordered by (rank, bank).
	Banks []BankReport
}

// Report is the per-run analysis output, attached to sim.Result.
type Report struct {
	// EpochCycles and MaxEpochs echo the effective configuration.
	EpochCycles int
	MaxEpochs   int
	Totals      Totals
	Channels    []ChannelReport
	// Phases is the per-access phase profile, present only when
	// Config.PhaseProfile was set. Its wall-clock numbers are
	// host-dependent: bit-identity comparisons (the differential
	// suite, cache-key round trips) must strip it.
	Phases *PhaseReport `json:",omitempty"`
}

// Collector owns one run's probe state: one ChannelCollector per
// channel, all feeding shared totals. Collectors are single-threaded,
// like the simulator that drives them.
type Collector struct {
	cfg    Config
	totals Totals
	chans  []*ChannelCollector

	// Streaming state; stream is nil (and every per-event check a
	// single branch) unless Config.Stream was set.
	stream    StreamSink
	seq       uint64
	curEpoch  uint64
	epochSeen bool

	// Phase-profiler state; nil unless Config.PhaseProfile.
	timer       *prof.Timer
	phaseRing   *ring[PhaseEpoch]
	phaseTotals [prof.NumPhases]PhaseCell
}

// NewCollector builds a collector for a system with the given channel
// count and per-channel geometry. All ring buffers are preallocated
// here; steady-state probe calls do not allocate (the streaming flush
// path may, but only when a sink is installed).
func NewCollector(cfg Config, channels, ranks, banks int) *Collector {
	cfg = cfg.withDefaults()
	c := &Collector{cfg: cfg, stream: cfg.Stream}
	for ch := 0; ch < channels; ch++ {
		cc := &ChannelCollector{
			coll:        c,
			channel:     ch,
			banks:       banks,
			epochCycles: uint64(cfg.EpochCycles),
			totals:      &c.totals,
			bankRings:   make([]ring[BankEpoch], ranks*banks),
			chRing:      newRing[ChannelEpoch](cfg.MaxEpochs),
		}
		for i := range cc.bankRings {
			cc.bankRings[i] = newRing[BankEpoch](cfg.MaxEpochs)
		}
		if c.stream != nil {
			cc.chRing.trackDirty()
			for i := range cc.bankRings {
				cc.bankRings[i].trackDirty()
			}
		}
		c.chans = append(c.chans, cc)
	}
	if cfg.PhaseProfile {
		r := newRing[PhaseEpoch](cfg.MaxEpochs)
		if c.stream != nil {
			r.trackDirty()
		}
		c.phaseRing = &r
		c.timer = prof.NewTimer(cfg.PhaseSamplePeriod, c.observePhase)
	}
	return c
}

// PhaseTimer returns the sampled phase timer to install on the
// simulator's hook sites, or nil when phase profiling is off (a nil
// *prof.Timer is valid and inert at every hook site).
func (c *Collector) PhaseTimer() *prof.Timer { return c.timer }

// Channel returns channel ch's probe sink, to be installed on that
// channel's controller, DRAM device and mechanism.
func (c *Collector) Channel(ch int) *ChannelCollector { return c.chans[ch] }

// Reset clears every timeline and the totals (after simulation warm-up)
// without releasing the preallocated rings. A streaming sink is told to
// discard what it has accumulated so far via a Reset batch, so warm-up
// epochs never leak into reconstructed reports.
func (c *Collector) Reset() {
	c.totals = Totals{}
	for _, cc := range c.chans {
		cc.chRing.reset()
		for i := range cc.bankRings {
			cc.bankRings[i].reset()
		}
	}
	if c.phaseRing != nil {
		c.phaseRing.reset()
		c.phaseTotals = [prof.NumPhases]PhaseCell{}
		c.timer.ResetCalls()
	}
	c.epochSeen = false
	c.curEpoch = 0
	if c.stream != nil && c.seq > 0 {
		c.seq++
		c.stream(StreamBatch{Seq: c.seq, Reset: true})
	}
}

// Report snapshots the collected timelines. Channels and banks are
// emitted in index order; all-zero intermediate buckets are skipped.
// When streaming, the remaining dirty buckets are flushed first and the
// report itself goes out as a final Summary batch, so a consumer that
// applied every batch holds exactly this report's epochs.
func (c *Collector) Report() *Report {
	if c.stream != nil {
		c.flush()
	}
	rep := &Report{
		EpochCycles: c.cfg.EpochCycles,
		MaxEpochs:   c.cfg.MaxEpochs,
		Totals:      c.totals,
	}
	for _, cc := range c.chans {
		chRep := ChannelReport{
			Channel:       cc.channel,
			DroppedEpochs: cc.chRing.dropped,
			Clamped:       cc.chRing.clamped,
			FirstEpoch:    windowStart(&cc.chRing),
			Epochs: snapshot(&cc.chRing, func(b *ChannelEpoch, e uint64) {
				b.Epoch = e
			}),
		}
		for i := range cc.bankRings {
			r := &cc.bankRings[i]
			if r.n == 0 {
				continue
			}
			chRep.Banks = append(chRep.Banks, BankReport{
				Rank:          i / cc.banks,
				Bank:          i % cc.banks,
				DroppedEpochs: r.dropped,
				Clamped:       r.clamped,
				FirstEpoch:    windowStart(r),
				Epochs: snapshot(r, func(b *BankEpoch, e uint64) {
					b.Epoch = e
				}),
			})
		}
		rep.Channels = append(rep.Channels, chRep)
	}
	if c.phaseRing != nil {
		pr := &PhaseReport{
			SamplePeriod:  c.timer.SamplePeriod(),
			Totals:        c.phaseTotals,
			DroppedEpochs: c.phaseRing.dropped,
			Clamped:       c.phaseRing.clamped,
			FirstEpoch:    windowStart(c.phaseRing),
			Epochs: snapshot(c.phaseRing, func(b *PhaseEpoch, e uint64) {
				b.Epoch = e
			}),
		}
		for p := prof.Phase(0); p < prof.NumPhases; p++ {
			pr.Calls[p] = c.timer.Calls(p)
		}
		rep.Phases = pr
	}
	if c.stream != nil {
		c.seq++
		c.stream(StreamBatch{Seq: c.seq, Summary: rep})
	}
	return rep
}

// windowStart is the ring's oldest retained epoch (0 when empty — only
// meaningful alongside a nonzero DroppedEpochs, matching FirstEpoch's
// omitempty serialization).
func windowStart[T comparable](r *ring[T]) uint64 {
	if r.n == 0 || r.dropped == 0 {
		return 0
	}
	return r.first
}
