package analysis

import (
	"encoding/json"
	"testing"

	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/prof"
)

// reconstructMatches replays batches and requires the rebuilt report to
// marshal byte-identically to the collector's own.
func reconstructMatches(t *testing.T, rep *Report, batches []StreamBatch) {
	t.Helper()
	got, err := ReconstructReport(batches)
	if err != nil {
		t.Fatalf("ReconstructReport: %v", err)
	}
	want, _ := json.Marshal(rep)
	have, _ := json.Marshal(got)
	if string(want) != string(have) {
		t.Fatalf("reconstructed report differs\nwant %s\nhave %s", want, have)
	}
}

// checkSeq requires batch sequence numbers 1..n with no gaps.
func checkSeq(t *testing.T, batches []StreamBatch) {
	t.Helper()
	for i, b := range batches {
		if b.Seq != uint64(i+1) {
			t.Fatalf("batch %d has seq %d, want %d", i, b.Seq, i+1)
		}
	}
}

// TestStreamReconstruction drives a mixed event stream — including
// events landing in long-closed epochs, the shape the event engine's
// deferred classification produces — and proves LWW reconstruction.
func TestStreamReconstruction(t *testing.T) {
	var batches []StreamBatch
	cfg := Config{
		Enabled: true, EpochCycles: 100, MaxEpochs: 8,
		Stream: func(b StreamBatch) { batches = append(batches, b) },
	}
	c := NewCollector(cfg, 2, 2, 4)
	ch := c.Channel(0)
	coord := memctrl.Coord{Rank: 1, Bank: 2}
	act := dram.Command{Kind: dram.CmdACT, Rank: 1, Bank: 2}

	var now dram.Cycle
	for i := 0; i < 50; i++ {
		ch.ObserveCommand(act, now, 0, i%2 == 0)
		ch.ObserveEnqueue(coord, true, 1, 0, 1, 0, now)
		now += 37
	}
	// Deferred classification: outcomes for arrivals many epochs back,
	// after the frontier has advanced past them.
	for back := dram.Cycle(0); back < 300; back += 90 {
		ch.ObserveRowOutcome(coord, memctrl.RowMiss, now-1-back)
	}
	// Second channel joins late.
	c.Channel(1).ObserveCommand(dram.Command{Kind: dram.CmdREF}, now, 0, false)
	if len(batches) == 0 {
		t.Fatal("no batches streamed before Report")
	}
	rep := c.Report()
	last := batches[len(batches)-1]
	if last.Summary == nil {
		t.Fatal("final batch carries no summary")
	}
	checkSeq(t, batches)
	reconstructMatches(t, rep, batches)
}

// TestStreamResetDiscardsWarmup: batches emitted before Reset (the
// warm-up phase) must not leak into the reconstruction.
func TestStreamResetDiscardsWarmup(t *testing.T) {
	var batches []StreamBatch
	cfg := Config{
		Enabled: true, EpochCycles: 100, MaxEpochs: 8,
		Stream: func(b StreamBatch) { batches = append(batches, b) },
	}
	c := NewCollector(cfg, 1, 1, 1)
	ch := c.Channel(0)
	coord := memctrl.Coord{}
	for now := dram.Cycle(0); now < 500; now += 50 {
		ch.ObserveRowOutcome(coord, memctrl.RowConflict, now)
	}
	c.Reset() // end of warm-up
	for now := dram.Cycle(500); now < 900; now += 50 {
		ch.ObserveRowOutcome(coord, memctrl.RowHit, now)
	}
	rep := c.Report()
	if rep.Totals.RowConflicts != 0 {
		t.Fatalf("warm-up conflicts survived reset: %+v", rep.Totals)
	}
	checkSeq(t, batches)
	reconstructMatches(t, rep, batches)
}

// TestStreamWindowEviction: epochs evicted from the ring window after
// being streamed are trimmed by the summary's FirstEpoch on rebuild.
func TestStreamWindowEviction(t *testing.T) {
	var batches []StreamBatch
	cfg := Config{
		Enabled: true, EpochCycles: 10, MaxEpochs: 4,
		Stream: func(b StreamBatch) { batches = append(batches, b) },
	}
	c := NewCollector(cfg, 1, 1, 1)
	ch := c.Channel(0)
	for now := dram.Cycle(0); now < 200; now += 10 {
		ch.ObserveRowOutcome(memctrl.Coord{}, memctrl.RowMiss, now)
	}
	// One clamped event, older than the shrunken window.
	ch.ObserveRowOutcome(memctrl.Coord{}, memctrl.RowMiss, 0)
	rep := c.Report()
	if rep.Channels[0].DroppedEpochs == 0 {
		t.Fatal("test expected window eviction")
	}
	if rep.Channels[0].Clamped == 0 {
		t.Fatal("test expected a clamped event")
	}
	checkSeq(t, batches)
	reconstructMatches(t, rep, batches)
}

// TestStreamWithPhaseProfile streams phase-profile epochs alongside the
// channel timelines and reconstructs both.
func TestStreamWithPhaseProfile(t *testing.T) {
	var batches []StreamBatch
	cfg := Config{
		Enabled: true, EpochCycles: 100, MaxEpochs: 16,
		PhaseProfile: true, PhaseSamplePeriod: 1,
		Stream: func(b StreamBatch) { batches = append(batches, b) },
	}
	c := NewCollector(cfg, 1, 1, 2)
	tm := c.PhaseTimer()
	if tm == nil {
		t.Fatal("PhaseProfile set but no timer")
	}
	ch := c.Channel(0)
	for now := dram.Cycle(0); now < 1000; now += 30 {
		ch.ObserveRowOutcome(memctrl.Coord{}, memctrl.RowHit, now)
		tm.End(prof.Select, tm.Begin(prof.Select), int64(now))
		tm.End(prof.Issue, tm.Begin(prof.Issue), int64(now))
	}
	rep := c.Report()
	if rep.Phases == nil {
		t.Fatal("no phase report")
	}
	if got := rep.Phases.Calls[prof.Select]; got != 34 {
		t.Fatalf("Select calls = %d, want 34", got)
	}
	if rep.Phases.Totals[prof.Select].Samples != 34 {
		t.Fatalf("Select samples = %d, want 34 (period 1)", rep.Phases.Totals[prof.Select].Samples)
	}
	if len(rep.Phases.Epochs) == 0 {
		t.Fatal("no phase epochs")
	}
	checkSeq(t, batches)
	reconstructMatches(t, rep, batches)
}

// TestDeltasFromReport: the synthesized single-batch stream of a
// finished report reconstructs exactly that report.
func TestDeltasFromReport(t *testing.T) {
	cfg := Config{Enabled: true, EpochCycles: 100, MaxEpochs: 8, PhaseProfile: true, PhaseSamplePeriod: 1}
	c := NewCollector(cfg, 2, 1, 2)
	ch := c.Channel(1)
	for now := dram.Cycle(0); now < 700; now += 40 {
		ch.ObserveRowOutcome(memctrl.Coord{Bank: 1}, memctrl.RowMiss, now)
	}
	tm := c.PhaseTimer()
	tm.End(prof.Complete, tm.Begin(prof.Complete), 250)
	rep := c.Report()
	reconstructMatches(t, rep, []StreamBatch{DeltasFromReport(rep, 1)})
}

// TestStreamingOffCostsNothing: without a sink the collector keeps its
// zero-allocation steady state (the main zero-alloc gate also covers
// this; here we pin the noteEpoch/mark fast paths specifically).
func TestStreamingOffCostsNothing(t *testing.T) {
	c := NewCollector(Config{Enabled: true, EpochCycles: 100, MaxEpochs: 8}, 1, 1, 1)
	ch := c.Channel(0)
	var now dram.Cycle
	allocs := testing.AllocsPerRun(2000, func() {
		ch.ObserveRowOutcome(memctrl.Coord{}, memctrl.RowHit, now)
		now += 37
	})
	if allocs != 0 {
		t.Errorf("non-streaming probe path allocated %.1f per op, want 0", allocs)
	}
}
