package analysis

import (
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/memctrl"
)

// ChannelCollector is one channel's probe sink. It implements
// dram.CommandProbe, memctrl.Probe and core.MechProbe, so a single
// value wires all three probe points of a channel. Every method is a
// handful of ring-bucket increments; none allocates after construction
// (streaming flushes, triggered via noteEpoch, may allocate — but only
// when a stream sink is installed).
type ChannelCollector struct {
	coll        *Collector
	channel     int
	banks       int // banks per rank
	epochCycles uint64
	totals      *Totals

	bankRings []ring[BankEpoch] // index rank*banks+bank
	chRing    ring[ChannelEpoch]
}

// Interface conformance checks.
var (
	_ dram.CommandProbe = (*ChannelCollector)(nil)
	_ memctrl.Probe     = (*ChannelCollector)(nil)
	_ core.MechProbe    = (*ChannelCollector)(nil)
)

//ccsim:zeroalloc
func (cc *ChannelCollector) epoch(at dram.Cycle) uint64 {
	return uint64(at) / cc.epochCycles
}

//ccsim:zeroalloc
func (cc *ChannelCollector) bankAt(rank, bank int, e uint64) *BankEpoch {
	return cc.bankRings[rank*cc.banks+bank].at(e)
}

// ObserveCommand implements dram.CommandProbe: every issued command,
// bucketed by issue cycle (bit-identical between engines). fawStall is
// nonzero only for ACTs held by a full tFAW window; fast marks a
// lowered timing class.
//
//ccsim:zeroalloc
func (cc *ChannelCollector) ObserveCommand(cmd dram.Command, now, fawStall dram.Cycle, fast bool) {
	e := cc.epoch(now)
	cc.coll.noteEpoch(e)
	switch cmd.Kind {
	case dram.CmdACT:
		b := cc.bankAt(cmd.Rank, cmd.Bank, e)
		b.ACT++
		cc.totals.ACT++
		if fast {
			b.FastACT++
			cc.totals.FastACT++
		}
		b.FAWStallCycles += uint64(fawStall)
		cc.totals.FAWStallCycles += uint64(fawStall)
	case dram.CmdPRE:
		cc.bankAt(cmd.Rank, cmd.Bank, e).PRE++
		cc.totals.PRE++
	case dram.CmdRD:
		cc.bankAt(cmd.Rank, cmd.Bank, e).RD++
		cc.totals.RD++
	case dram.CmdWR:
		cc.bankAt(cmd.Rank, cmd.Bank, e).WR++
		cc.totals.WR++
	case dram.CmdREF:
		cc.chRing.at(e).REF++
		cc.totals.REF++
	}
}

// ObserveEnqueue implements memctrl.Probe: a queue-depth sample per
// request arrival (depths measured after the push), bucketed by the
// arrival cycle.
//
//ccsim:zeroalloc
func (cc *ChannelCollector) ObserveEnqueue(coord memctrl.Coord, isRead bool, bankReads, bankWrites, reads, writes int, now dram.Cycle) {
	ep := cc.epoch(now)
	cc.coll.noteEpoch(ep)
	b := cc.bankAt(coord.Rank, coord.Bank, ep)
	depth := uint64(bankReads + bankWrites)
	b.QueueSamples++
	b.QueueDepthSum += depth
	if depth > b.QueueDepthPeak {
		b.QueueDepthPeak = depth
	}

	e := cc.chRing.at(ep)
	total := uint64(reads + writes)
	e.QueueSamples++
	e.ReadDepthSum += uint64(reads)
	e.WriteDepthSum += uint64(writes)
	if total > e.QueueDepthPeak {
		e.QueueDepthPeak = total
	}
	cc.totals.QueueSamples++
	cc.totals.QueueDepthSum += total
	if total > cc.totals.QueueDepthPeak {
		cc.totals.QueueDepthPeak = total
	}
}

// ObserveRowOutcome implements memctrl.Probe: the scheduler's
// row-buffer classification of one request, bucketed by the request's
// arrival cycle. Classification call time differs between the engines
// (the event engine defers pure sweeps); the per-request outcome and
// arrival stamp do not — which is also why the stream protocol is
// last-write-wins rather than epoch-sealed (see stream.go).
//
//ccsim:zeroalloc
func (cc *ChannelCollector) ObserveRowOutcome(coord memctrl.Coord, outcome memctrl.RowOutcome, arrive dram.Cycle) {
	ep := cc.epoch(arrive)
	cc.coll.noteEpoch(ep)
	b := cc.bankAt(coord.Rank, coord.Bank, ep)
	e := cc.chRing.at(ep)
	switch outcome {
	case memctrl.RowHit:
		b.RowHits++
		e.RowHits++
		cc.totals.RowHits++
	case memctrl.RowMiss:
		b.RowMisses++
		e.RowMisses++
		cc.totals.RowMisses++
	case memctrl.RowConflict:
		b.RowConflicts++
		e.RowConflicts++
		cc.totals.RowConflicts++
	}
}

// ObserveLookup implements core.MechProbe: one HCRAC lookup (per ACT).
//
//ccsim:zeroalloc
func (cc *ChannelCollector) ObserveLookup(key core.RowKey, hit bool, now dram.Cycle) {
	ep := cc.epoch(now)
	cc.coll.noteEpoch(ep)
	e := cc.chRing.at(ep)
	e.CCLookups++
	cc.totals.CCLookups++
	if hit {
		e.CCHits++
		cc.totals.CCHits++
	}
}

// ObserveInsert implements core.MechProbe: one HCRAC insert (per PRE);
// evicted marks a capacity replacement.
//
//ccsim:zeroalloc
func (cc *ChannelCollector) ObserveInsert(key core.RowKey, evicted bool, now dram.Cycle) {
	ep := cc.epoch(now)
	cc.coll.noteEpoch(ep)
	e := cc.chRing.at(ep)
	e.CCInserts++
	cc.totals.CCInserts++
	if evicted {
		e.CCEvictions++
		cc.totals.CCEvictions++
	}
}

// ObserveExpiry implements core.MechProbe: a timed invalidation,
// bucketed at its nominal cycle — for the IIC/EC walk the rollover
// cycle (a multiple of the invalidation interval, engine-invariant by
// construction), for exact expiry the detecting lookup's cycle.
//
//ccsim:zeroalloc
func (cc *ChannelCollector) ObserveExpiry(key core.RowKey, at dram.Cycle) {
	ep := cc.epoch(at)
	cc.coll.noteEpoch(ep)
	cc.chRing.at(ep).CCExpiries++
	cc.totals.CCExpiries++
}
