package analysis

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/prof"
)

func testCollector() *Collector {
	return NewCollector(Config{Enabled: true, EpochCycles: 100, MaxEpochs: 8}, 2, 2, 4)
}

func defClass() dram.TimingClass { return dram.TimingClass{RCD: 11, RAS: 28} }

// TestCollectorReport drives a small mixed event stream through channel
// 0 and checks the report's structure and bucketing.
func TestCollectorReport(t *testing.T) {
	c := testCollector()
	ch := c.Channel(0)

	coord := memctrl.Coord{Channel: 0, Rank: 0, Bank: 1, Row: 5}
	key := core.MakeRowKey(0, 1, 5)

	// Epoch 0: an ACT (with tFAW stall and an HCRAC miss) + RD on
	// (rank 0, bank 1), with a queue sample and a row hit.
	ch.ObserveCommand(dram.Act(0, 1, 5, defClass()), 10, 7, false)
	ch.ObserveLookup(key, false, 10)
	ch.ObserveEnqueue(coord, true, 2, 1, 4, 3, 15)
	ch.ObserveRowOutcome(coord, memctrl.RowHit, 15)
	ch.ObserveCommand(dram.Read(0, 1, 0), 30, 0, false)
	ch.ObserveInsert(key, false, 40)

	// Epoch 2: a row conflict, an HCRAC hit and expiry, a fast ACT on
	// (rank 1, bank 3) and a refresh.
	ch.ObserveRowOutcome(coord, memctrl.RowConflict, 220)
	ch.ObserveLookup(key, true, 230)
	ch.ObserveCommand(dram.Act(1, 3, 9, defClass()), 250, 0, true)
	ch.ObserveExpiry(key, 250)
	ch.ObserveCommand(dram.Refresh(0), 260, 0, false)

	rep := c.Report()
	if rep.EpochCycles != 100 || rep.MaxEpochs != 8 {
		t.Errorf("report config echo = %d/%d, want 100/8", rep.EpochCycles, rep.MaxEpochs)
	}
	if len(rep.Channels) != 2 {
		t.Fatalf("report has %d channels, want 2", len(rep.Channels))
	}
	ch1 := rep.Channels[1]
	if len(ch1.Epochs) != 0 || len(ch1.Banks) != 0 {
		t.Errorf("idle channel 1 reported %d epochs, %d banks", len(ch1.Epochs), len(ch1.Banks))
	}

	ch0 := rep.Channels[0]
	if len(ch0.Banks) != 2 {
		t.Fatalf("channel 0 has %d bank timelines, want 2 (got %+v)", len(ch0.Banks), ch0.Banks)
	}
	b01 := ch0.Banks[0]
	if b01.Rank != 0 || b01.Bank != 1 {
		t.Fatalf("first bank timeline is (%d,%d), want (0,1)", b01.Rank, b01.Bank)
	}
	if len(b01.Epochs) != 2 {
		t.Fatalf("bank (0,1) has %d epochs, want 2 (idle epoch 1 skipped): %+v", len(b01.Epochs), b01.Epochs)
	}
	e0 := b01.Epochs[0]
	if e0.Epoch != 0 || e0.ACT != 1 || e0.RD != 1 || e0.FAWStallCycles != 7 ||
		e0.RowHits != 1 || e0.QueueSamples != 1 || e0.QueueDepthSum != 3 || e0.QueueDepthPeak != 3 {
		t.Errorf("bank (0,1) epoch 0 = %+v", e0)
	}
	if e2 := b01.Epochs[1]; e2.Epoch != 2 || e2.RowConflicts != 1 {
		t.Errorf("bank (0,1) epoch 2 = %+v, want the conflict bucketed by arrival", e2)
	}
	b13 := ch0.Banks[1]
	if b13.Rank != 1 || b13.Bank != 3 || len(b13.Epochs) != 1 ||
		b13.Epochs[0].Epoch != 2 || b13.Epochs[0].FastACT != 1 {
		t.Errorf("bank (1,3) = %+v, want one epoch-2 fast ACT", b13)
	}

	if len(ch0.Epochs) != 2 {
		t.Fatalf("channel 0 has %d epochs, want 2 (idle epoch 1 skipped): %+v", len(ch0.Epochs), ch0.Epochs)
	}
	ce0 := ch0.Epochs[0]
	if ce0.CCLookups != 1 || ce0.CCInserts != 1 || ce0.RowHits != 1 ||
		ce0.QueueSamples != 1 || ce0.ReadDepthSum != 4 || ce0.WriteDepthSum != 3 || ce0.QueueDepthPeak != 7 {
		t.Errorf("channel epoch 0 = %+v", ce0)
	}
	ce2 := ch0.Epochs[1]
	if ce2.REF != 1 || ce2.CCHits != 1 || ce2.CCExpiries != 1 || ce2.RowConflicts != 1 {
		t.Errorf("channel epoch 2 = %+v", ce2)
	}

	tot := rep.Totals
	if tot.ACT != 2 || tot.FastACT != 1 || tot.RD != 1 || tot.REF != 1 ||
		tot.FAWStallCycles != 7 || tot.RowHits != 1 || tot.RowConflicts != 1 ||
		tot.CCLookups != 2 || tot.CCHits != 1 || tot.CCInserts != 1 || tot.CCExpiries != 1 ||
		tot.QueueSamples != 1 || tot.QueueDepthSum != 7 || tot.QueueDepthPeak != 7 {
		t.Errorf("totals = %+v", tot)
	}
	if got := tot.RowHitRate(); got != 0.5 {
		t.Errorf("RowHitRate = %g, want 0.5", got)
	}
	if got := tot.CCHitRate(); got != 0.5 {
		t.Errorf("CCHitRate = %g, want 0.5", got)
	}
}

// TestCollectorReset clears totals and timelines for reuse after
// simulation warm-up.
func TestCollectorReset(t *testing.T) {
	c := testCollector()
	ch := c.Channel(1)
	ch.ObserveCommand(dram.Act(0, 0, 1, defClass()), 10, 0, false)
	c.Reset()
	rep := c.Report()
	if rep.Totals != (Totals{}) {
		t.Errorf("totals after reset = %+v", rep.Totals)
	}
	if got := rep.Channels[1]; len(got.Epochs) != 0 || len(got.Banks) != 0 {
		t.Errorf("channel 1 after reset still reports %+v", got)
	}
	ch.ObserveCommand(dram.Act(0, 0, 1, defClass()), 910, 0, false)
	rep = c.Report()
	if rep.Totals.ACT != 1 || rep.Channels[1].Banks[0].Epochs[0].Epoch != 9 {
		t.Errorf("post-reset event misreported: %+v", rep.Channels[1])
	}
}

// TestCollectorZeroAllocSteadyState proves that no probe callback
// allocates once the collector is constructed — the enabled-path cost is
// ring-bucket arithmetic only.
func TestCollectorZeroAllocSteadyState(t *testing.T) {
	c := testCollector()
	ch := c.Channel(0)
	coord := memctrl.Coord{Rank: 1, Bank: 2, Row: 3}
	key := core.MakeRowKey(1, 2, 3)
	act := dram.Act(1, 2, 3, defClass())
	now := dram.Cycle(0)
	allocs := testing.AllocsPerRun(500, func() {
		ch.ObserveCommand(act, now, 1, true)
		ch.ObserveEnqueue(coord, true, 1, 0, 1, 0, now)
		ch.ObserveRowOutcome(coord, memctrl.RowMiss, now)
		ch.ObserveLookup(key, false, now)
		ch.ObserveInsert(key, true, now)
		ch.ObserveExpiry(key, now)
		now += 37 // drifts across epochs, exercising ring advances
	})
	if allocs != 0 {
		t.Errorf("probe callbacks allocated %.1f times per round, want 0", allocs)
	}
}

// TestConfigValidate accepts any sizing values — out-of-range knobs
// normalize to the documented defaults instead of erroring.
func TestConfigValidate(t *testing.T) {
	for _, cfg := range []Config{
		{},
		{EpochCycles: -1},
		{MaxEpochs: -1},
		{PhaseSamplePeriod: -7},
	} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", cfg, err)
		}
	}
	for _, cfg := range []Config{
		{Enabled: true},
		{Enabled: true, EpochCycles: -1, MaxEpochs: -9, PhaseSamplePeriod: -7},
	} {
		got := cfg.withDefaults()
		if got.EpochCycles != DefaultEpochCycles || got.MaxEpochs != DefaultMaxEpochs || got.PhaseSamplePeriod != prof.DefaultSamplePeriod {
			t.Errorf("withDefaults(%+v) = %+v", cfg, got)
		}
	}
}

// TestNegativeKnobsNormalize is the regression test for the collector
// built from a config with nonpositive sizing knobs: it must come up
// with default-sized rings rather than panicking or erroring.
func TestNegativeKnobsNormalize(t *testing.T) {
	c := NewCollector(Config{Enabled: true, EpochCycles: -3, MaxEpochs: -1}, 1, 1, 1)
	ch := c.Channel(0)
	ch.ObserveRowOutcome(memctrl.Coord{}, memctrl.RowHit, 12345)
	rep := c.Report()
	if rep.EpochCycles != DefaultEpochCycles || rep.MaxEpochs != DefaultMaxEpochs {
		t.Fatalf("report echoes %d/%d, want defaults %d/%d",
			rep.EpochCycles, rep.MaxEpochs, DefaultEpochCycles, DefaultMaxEpochs)
	}
	if rep.Totals.RowHits != 1 {
		t.Fatalf("RowHits = %d, want 1", rep.Totals.RowHits)
	}
}
