package analysis

import "testing"

type bucket struct {
	Epoch uint64
	N     uint64
}

func stamp(b *bucket, e uint64) { b.Epoch = e }

// TestRingSequential fills consecutive epochs and snapshots them back.
func TestRingSequential(t *testing.T) {
	r := newRing[bucket](8)
	for e := uint64(0); e < 4; e++ {
		r.at(e).N = e + 1
	}
	got := snapshot(&r, stamp)
	if len(got) != 4 {
		t.Fatalf("snapshot has %d buckets, want 4", len(got))
	}
	for i, b := range got {
		if b.Epoch != uint64(i) || b.N != uint64(i)+1 {
			t.Errorf("bucket %d = %+v, want epoch %d n %d", i, b, i, i+1)
		}
	}
	if r.dropped != 0 || r.clamped != 0 {
		t.Errorf("dropped/clamped = %d/%d, want 0/0", r.dropped, r.clamped)
	}
}

// TestRingGapSkipsZeroBuckets leaves a gap; the intermediate all-zero
// buckets must be zero-filled in the window but absent from snapshots.
func TestRingGapSkipsZeroBuckets(t *testing.T) {
	r := newRing[bucket](8)
	r.at(0).N = 1
	r.at(5).N = 6
	if r.n != 6 {
		t.Errorf("window spans %d epochs, want 6", r.n)
	}
	got := snapshot(&r, stamp)
	if len(got) != 2 || got[0].Epoch != 0 || got[1].Epoch != 5 {
		t.Fatalf("snapshot = %+v, want epochs 0 and 5 only", got)
	}
}

// TestRingEviction overflows the capacity and expects the oldest epochs
// dropped, with old-epoch events clamped into the new oldest bucket.
func TestRingEviction(t *testing.T) {
	r := newRing[bucket](4)
	for e := uint64(0); e < 6; e++ {
		r.at(e).N = e + 1
	}
	if r.dropped != 2 || r.first != 2 {
		t.Fatalf("dropped=%d first=%d, want 2/2", r.dropped, r.first)
	}
	// An event from evicted epoch 0 folds into the oldest live bucket.
	r.at(0).N += 100
	if r.clamped != 1 {
		t.Errorf("clamped = %d, want 1", r.clamped)
	}
	got := snapshot(&r, stamp)
	if len(got) != 4 || got[0].Epoch != 2 || got[0].N != 3+100 || got[3].Epoch != 5 {
		t.Fatalf("snapshot = %+v, want epochs 2..5 with clamp folded into epoch 2", got)
	}
}

// TestRingRestart jumps wholly past the window: the ring restarts at
// the new epoch instead of zero-filling its way there.
func TestRingRestart(t *testing.T) {
	r := newRing[bucket](4)
	r.at(0).N = 1
	r.at(1).N = 2
	r.at(1000).N = 3
	if r.dropped != 2 || r.first != 1000 || r.n != 1 {
		t.Fatalf("dropped=%d first=%d n=%d, want 2/1000/1", r.dropped, r.first, r.n)
	}
	got := snapshot(&r, stamp)
	if len(got) != 1 || got[0].Epoch != 1000 || got[0].N != 3 {
		t.Fatalf("snapshot = %+v, want single epoch-1000 bucket", got)
	}
}

// TestRingReset empties the ring and restarts the window cleanly.
func TestRingReset(t *testing.T) {
	r := newRing[bucket](4)
	for e := uint64(0); e < 6; e++ {
		r.at(e).N = 1
	}
	r.reset()
	if r.n != 0 || r.dropped != 0 || r.clamped != 0 {
		t.Fatalf("reset left n=%d dropped=%d clamped=%d", r.n, r.dropped, r.clamped)
	}
	r.at(7).N = 9
	got := snapshot(&r, stamp)
	if len(got) != 1 || got[0].Epoch != 7 || got[0].N != 9 {
		t.Fatalf("snapshot after reset = %+v, want single epoch-7 bucket", got)
	}
}

// TestRingAtZeroAlloc proves the bucket path never allocates after
// construction, including across evictions and clamps.
func TestRingAtZeroAlloc(t *testing.T) {
	r := newRing[bucket](4)
	e := uint64(0)
	allocs := testing.AllocsPerRun(500, func() {
		r.at(e).N++
		r.at(e/2).N++ // alternates live and clamped epochs
		e++
	})
	if allocs != 0 {
		t.Errorf("ring.at allocated %.1f times per call pair, want 0", allocs)
	}
}
