package analysis

import (
	"fmt"
	"sort"
)

// Streaming protocol. The collector cannot seal epochs: the event
// engine defers row-outcome classification (and clamps fold late events
// into the oldest bucket), so a bucket emitted once may grow afterwards.
// Instead the stream is last-write-wins: whenever the epoch frontier
// advances, every bucket touched since the previous flush is emitted
// with its CURRENT value, and a consumer that replaces older copies by
// (channel, rank, bank, epoch) key converges on the final report's
// contents. Bucket counters only increase while live, so re-emission is
// monotone; evicted epochs are trimmed by the summary's FirstEpoch.
// Report() flushes the remaining dirty buckets and then emits the full
// report as a final Summary batch. Seq increases by exactly 1 per
// batch, giving SSE transports a gap-free resume cursor.

// StreamSink receives the collector's stream batches, in order, on the
// simulation goroutine (sinks that fan out must do their own locking).
type StreamSink func(StreamBatch)

// StreamBatch is one unit of the analysis stream.
type StreamBatch struct {
	// Seq numbers batches 1, 2, 3, ... with no gaps.
	Seq uint64 `json:"seq"`
	// Reset tells the consumer to discard everything accumulated so
	// far (emitted when warm-up state is cleared).
	Reset bool `json:"reset,omitempty"`
	// Channels carries the dirty channel/bank buckets, in channel
	// order, each stamped with its epoch.
	Channels []ChannelDelta `json:"channels,omitempty"`
	// Phases carries the dirty phase-profile buckets.
	Phases []PhaseEpoch `json:"phases,omitempty"`
	// Summary, set only on the final batch, is the complete report.
	Summary *Report `json:"summary,omitempty"`
}

// ChannelDelta is one channel's dirty buckets in a batch.
type ChannelDelta struct {
	Channel int            `json:"channel"`
	Epochs  []ChannelEpoch `json:"epochs,omitempty"`
	Banks   []BankDelta    `json:"banks,omitempty"`
}

// BankDelta is one bank's dirty buckets in a batch.
type BankDelta struct {
	Rank   int         `json:"rank"`
	Bank   int         `json:"bank"`
	Epochs []BankEpoch `json:"epochs,omitempty"`
}

// noteEpoch tracks the stream's epoch frontier: the first event of a
// newer epoch flushes everything dirtied before it. Events landing in
// older epochs (deferred classification, clamps) just dirty their
// buckets and ride the next flush.
func (c *Collector) noteEpoch(e uint64) {
	if c.stream == nil {
		return
	}
	if !c.epochSeen {
		c.epochSeen = true
		c.curEpoch = e
		return
	}
	if e > c.curEpoch {
		c.flush()
		c.curEpoch = e
	}
}

// flush emits one batch holding every dirty bucket's current value.
// Batches with nothing to say are suppressed (Seq stays gap-free).
func (c *Collector) flush() {
	var batch StreamBatch
	for _, cc := range c.chans {
		var cd ChannelDelta
		flushDirty(&cc.chRing, func(e uint64, b ChannelEpoch) {
			b.Epoch = e
			cd.Epochs = append(cd.Epochs, b)
		})
		for i := range cc.bankRings {
			var bd BankDelta
			flushDirty(&cc.bankRings[i], func(e uint64, b BankEpoch) {
				b.Epoch = e
				bd.Epochs = append(bd.Epochs, b)
			})
			if len(bd.Epochs) > 0 {
				bd.Rank = i / cc.banks
				bd.Bank = i % cc.banks
				cd.Banks = append(cd.Banks, bd)
			}
		}
		if len(cd.Epochs) > 0 || len(cd.Banks) > 0 {
			cd.Channel = cc.channel
			batch.Channels = append(batch.Channels, cd)
		}
	}
	if c.phaseRing != nil {
		flushDirty(c.phaseRing, func(e uint64, b PhaseEpoch) {
			b.Epoch = e
			batch.Phases = append(batch.Phases, b)
		})
	}
	if len(batch.Channels) == 0 && len(batch.Phases) == 0 {
		return
	}
	c.seq++
	batch.Seq = c.seq
	c.stream(batch)
}

// bankKey identifies a bank timeline within a channel.
type bankKey struct{ rank, bank int }

// StreamAccumulator folds stream batches last-write-wins, mirroring
// what a live dashboard or the daemon's stream broker keeps per job.
// The zero value is not usable; see NewStreamAccumulator.
type StreamAccumulator struct {
	channels map[int]*channelAcc
	phases   map[uint64]PhaseEpoch
	summary  *Report
	seq      uint64
}

type channelAcc struct {
	epochs map[uint64]ChannelEpoch
	banks  map[bankKey]map[uint64]BankEpoch
}

// NewStreamAccumulator returns an empty accumulator.
func NewStreamAccumulator() *StreamAccumulator {
	return &StreamAccumulator{
		channels: map[int]*channelAcc{},
		phases:   map[uint64]PhaseEpoch{},
	}
}

// Apply folds one batch in. Batches must arrive in Seq order; a Reset
// batch discards everything accumulated before it.
func (a *StreamAccumulator) Apply(b StreamBatch) {
	if b.Reset {
		a.channels = map[int]*channelAcc{}
		a.phases = map[uint64]PhaseEpoch{}
		a.summary = nil
	}
	for _, cd := range b.Channels {
		ca := a.channels[cd.Channel]
		if ca == nil {
			ca = &channelAcc{
				epochs: map[uint64]ChannelEpoch{},
				banks:  map[bankKey]map[uint64]BankEpoch{},
			}
			a.channels[cd.Channel] = ca
		}
		for _, e := range cd.Epochs {
			ca.epochs[e.Epoch] = e
		}
		for _, bd := range cd.Banks {
			k := bankKey{bd.Rank, bd.Bank}
			be := ca.banks[k]
			if be == nil {
				be = map[uint64]BankEpoch{}
				ca.banks[k] = be
			}
			for _, e := range bd.Epochs {
				be[e.Epoch] = e
			}
		}
	}
	for _, e := range b.Phases {
		a.phases[e.Epoch] = e
	}
	if b.Summary != nil {
		a.summary = b.Summary
	}
	a.seq = b.Seq
}

// Seq returns the last applied batch's sequence number.
func (a *StreamAccumulator) Seq() uint64 { return a.seq }

// Summary returns the final report if its batch arrived, else nil.
func (a *StreamAccumulator) Summary() *Report { return a.summary }

// Report rebuilds the final analysis report from the accumulated
// stream: the summary's metadata and structure, with every epoch array
// refilled from the last-write-wins buckets. It errors if the summary
// batch has not arrived. The result marshals byte-identically to the
// collector's own Report() — the streamed-equals-final contract.
func (a *StreamAccumulator) Report() (*Report, error) {
	if a.summary == nil {
		return nil, fmt.Errorf("analysis: stream incomplete: no summary batch")
	}
	sum := a.summary
	rep := &Report{
		EpochCycles: sum.EpochCycles,
		MaxEpochs:   sum.MaxEpochs,
		Totals:      sum.Totals,
	}
	for _, chSum := range sum.Channels {
		ca := a.channels[chSum.Channel]
		chRep := ChannelReport{
			Channel:       chSum.Channel,
			DroppedEpochs: chSum.DroppedEpochs,
			Clamped:       chSum.Clamped,
			FirstEpoch:    chSum.FirstEpoch,
		}
		if ca != nil {
			chRep.Epochs = fillEpochs(ca.epochs, chSum.FirstEpoch, func(b *ChannelEpoch) uint64 { return b.Epoch })
		}
		for _, bSum := range chSum.Banks {
			bRep := BankReport{
				Rank:          bSum.Rank,
				Bank:          bSum.Bank,
				DroppedEpochs: bSum.DroppedEpochs,
				Clamped:       bSum.Clamped,
				FirstEpoch:    bSum.FirstEpoch,
			}
			if ca != nil {
				bRep.Epochs = fillEpochs(ca.banks[bankKey{bSum.Rank, bSum.Bank}], bSum.FirstEpoch, func(b *BankEpoch) uint64 { return b.Epoch })
			}
			chRep.Banks = append(chRep.Banks, bRep)
		}
		rep.Channels = append(rep.Channels, chRep)
	}
	if sum.Phases != nil {
		pr := *sum.Phases
		pr.Epochs = fillEpochs(a.phases, sum.Phases.FirstEpoch, func(b *PhaseEpoch) uint64 { return b.Epoch })
		rep.Phases = &pr
	}
	return rep, nil
}

// fillEpochs sorts the accumulated buckets by epoch, dropping those the
// final window evicted (below first). The result is nil when empty, so
// it marshals like snapshot()'s output.
func fillEpochs[T any](m map[uint64]T, first uint64, epochOf func(*T) uint64) []T {
	var out []T
	for _, b := range m {
		if epochOf(&b) < first {
			continue
		}
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return epochOf(&out[i]) < epochOf(&out[j]) })
	return out
}

// Snapshot packages everything accumulated so far as one batch stamped
// with seq: the catch-up frame the daemon sends a subscriber joining
// (or resuming) a live stream. Reset is set because a resuming consumer
// may have missed deltas that will never be re-sent — replacing its
// state wholesale with this last-write-wins image is the only correct
// continuation, and for a fresh consumer the Reset is a no-op.
func (a *StreamAccumulator) Snapshot(seq uint64) StreamBatch {
	b := StreamBatch{Seq: seq, Reset: true, Summary: a.summary}
	ids := make([]int, 0, len(a.channels))
	for id := range a.channels {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		ca := a.channels[id]
		cd := ChannelDelta{
			Channel: id,
			Epochs:  fillEpochs(ca.epochs, 0, func(e *ChannelEpoch) uint64 { return e.Epoch }),
		}
		keys := make([]bankKey, 0, len(ca.banks))
		for k := range ca.banks {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].rank != keys[j].rank {
				return keys[i].rank < keys[j].rank
			}
			return keys[i].bank < keys[j].bank
		})
		for _, k := range keys {
			if eps := fillEpochs(ca.banks[k], 0, func(e *BankEpoch) uint64 { return e.Epoch }); len(eps) > 0 {
				cd.Banks = append(cd.Banks, BankDelta{Rank: k.rank, Bank: k.bank, Epochs: eps})
			}
		}
		if len(cd.Epochs) > 0 || len(cd.Banks) > 0 {
			b.Channels = append(b.Channels, cd)
		}
	}
	b.Phases = fillEpochs(a.phases, 0, func(e *PhaseEpoch) uint64 { return e.Epoch })
	return b
}

// ReconstructReport replays an ordered batch sequence and rebuilds the
// final report; see StreamAccumulator.Report.
func ReconstructReport(batches []StreamBatch) (*Report, error) {
	acc := NewStreamAccumulator()
	for _, b := range batches {
		acc.Apply(b)
	}
	return acc.Report()
}

// DeltasFromReport synthesizes the stream a finished report would have
// produced, as a single batch carrying every epoch bucket plus the
// summary. The daemon uses it to serve stream subscribers of jobs that
// finished before they connected (cached, remote, or recovered from the
// durable store): applying the batch to an empty accumulator
// reconstructs exactly rep.
func DeltasFromReport(rep *Report, seq uint64) StreamBatch {
	b := StreamBatch{Seq: seq, Summary: rep}
	for _, ch := range rep.Channels {
		cd := ChannelDelta{Channel: ch.Channel, Epochs: ch.Epochs}
		for _, bk := range ch.Banks {
			cd.Banks = append(cd.Banks, BankDelta{Rank: bk.Rank, Bank: bk.Bank, Epochs: bk.Epochs})
		}
		if len(cd.Epochs) > 0 || len(cd.Banks) > 0 {
			b.Channels = append(b.Channels, cd)
		}
	}
	if rep.Phases != nil {
		b.Phases = rep.Phases.Epochs
	}
	return b
}
