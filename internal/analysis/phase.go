package analysis

import "repro/internal/prof"

// PhaseCell is one phase's accumulated samples in an epoch or total:
// how many crossings the sampler timed and their summed wall-clock
// nanoseconds. Scale Ns by the report's SamplePeriod (and compare to
// Calls) to estimate the phase's full-run cost.
type PhaseCell struct {
	Samples uint64 `json:",omitempty"`
	Ns      uint64 `json:",omitempty"`
}

// PhaseEpoch is one epoch bucket of the phase profile, indexed by
// prof.Phase.
type PhaseEpoch struct {
	Epoch uint64
	Cells [prof.NumPhases]PhaseCell
}

// PhaseReport is the per-access phase profile attached to a Report when
// Config.PhaseProfile is set. Calls counts every crossing (sampled or
// not) and is deterministic for a given engine; Samples/Ns come from
// the host's wall clock and are not — strip the whole PhaseReport
// before any bit-identity comparison.
type PhaseReport struct {
	// SamplePeriod is the profiler's effective sampling stride.
	SamplePeriod int
	// Calls counts every crossing of each phase.
	Calls [prof.NumPhases]uint64
	// Totals accumulates sampled durations independent of the ring
	// window, like Report.Totals.
	Totals        [prof.NumPhases]PhaseCell
	DroppedEpochs uint64 `json:",omitempty"`
	Clamped       uint64 `json:",omitempty"`
	FirstEpoch    uint64 `json:",omitempty"`
	Epochs        []PhaseEpoch
}

// AvgNs returns phase p's mean sampled duration in nanoseconds.
func (r *PhaseReport) AvgNs(p prof.Phase) float64 {
	if r == nil || r.Totals[p].Samples == 0 {
		return 0
	}
	return float64(r.Totals[p].Ns) / float64(r.Totals[p].Samples)
}

// EstimatedNs extrapolates phase p's full-run cost: mean sampled
// duration times every crossing, sampled or not.
func (r *PhaseReport) EstimatedNs(p prof.Phase) float64 {
	if r == nil {
		return 0
	}
	return r.AvgNs(p) * float64(r.Calls[p])
}

// observePhase is the prof.Sink behind the collector's timer: it
// buckets one sampled duration by the hook site's bus cycle.
func (c *Collector) observePhase(p prof.Phase, ns, at int64) {
	e := uint64(at) / uint64(c.cfg.EpochCycles)
	c.noteEpoch(e)
	b := c.phaseRing.at(e)
	b.Cells[p].Samples++
	b.Cells[p].Ns += uint64(ns)
	c.phaseTotals[p].Samples++
	c.phaseTotals[p].Ns += uint64(ns)
}
