package analysis

import "math/bits"

// ring is a fixed-capacity window of consecutive epoch buckets. The
// window follows the (mostly monotonic) event stream: a bucket for a
// newer epoch than the window covers evicts the oldest buckets; an
// event older than the window folds into the oldest live bucket. All
// storage is allocated at construction — at() never allocates.
//
// Bucket assignment is deterministic in the event sequence alone, and
// every probe event sequence is engine-invariant (see the package
// comment), so rings — and the Reports built from them — compare
// bit-identical between the event-driven engine and the stepper.
type ring[T comparable] struct {
	buckets []T // slot (head+i)%cap holds epoch first+i, for i < n
	head    int
	first   uint64
	n       int
	started bool
	dropped uint64 // epochs evicted off the window's trailing edge
	clamped uint64 // events folded into the oldest bucket

	// dirty marks physical slots touched since the last stream flush,
	// one bit per slot. nil (and all marking skipped) unless the
	// collector streams; see trackDirty.
	dirty []uint64
}

func newRing[T comparable](capacity int) ring[T] {
	return ring[T]{buckets: make([]T, capacity)}
}

//ccsim:zeroalloc
func (r *ring[T]) slot(i int) *T {
	return &r.buckets[(r.head+i)%len(r.buckets)]
}

// trackDirty enables per-slot dirty marking for delta streaming.
func (r *ring[T]) trackDirty() {
	r.dirty = make([]uint64, (len(r.buckets)+63)/64)
}

// mark flags the slot holding logical index i as dirty.
//
//ccsim:zeroalloc
func (r *ring[T]) mark(i int) {
	if r.dirty == nil {
		return
	}
	s := (r.head + i) % len(r.buckets)
	r.dirty[s>>6] |= 1 << uint(s&63)
}

// at returns the bucket for epoch, materializing it (zeroing any
// intermediate epochs) and advancing the window when needed.
//
//ccsim:zeroalloc
func (r *ring[T]) at(epoch uint64) *T {
	var zero T
	if !r.started {
		r.started = true
		r.first = epoch
		r.n = 1
		*r.slot(0) = zero
		r.mark(0)
		return r.slot(0)
	}
	if epoch < r.first {
		r.clamped++
		r.mark(0)
		return r.slot(0)
	}
	delta := epoch - r.first
	capN := uint64(len(r.buckets))
	if delta < uint64(r.n) {
		r.mark(int(delta))
		return r.slot(int(delta))
	}
	if delta >= capN {
		drop := delta - capN + 1
		if drop >= uint64(r.n) {
			// The window jumped wholly past the live buckets (a long
			// idle stretch): restart it at the new epoch rather than
			// filling the ring with empty leading buckets.
			r.dropped += uint64(r.n)
			r.first = epoch
			r.n = 1
			*r.slot(0) = zero
			r.mark(0)
			return r.slot(0)
		}
		r.dropped += drop
		r.head = (r.head + int(drop)) % len(r.buckets)
		r.first += drop
		r.n -= int(drop)
		delta = epoch - r.first
	}
	for uint64(r.n) <= delta {
		*r.slot(r.n) = zero
		r.n++
	}
	r.mark(int(delta))
	return r.slot(int(delta))
}

// reset empties the ring without releasing its storage.
func (r *ring[T]) reset() {
	r.started = false
	r.head = 0
	r.first = 0
	r.n = 0
	r.dropped = 0
	r.clamped = 0
	for i := range r.dirty {
		r.dirty[i] = 0
	}
}

// flushDirty visits every dirty, live, nonzero bucket in slot order,
// clearing the dirty bits as it goes. Nonzero matters for the streaming
// contract: bucket counters only ever increase while a bucket is live,
// so consumers applying emitted buckets last-write-wins converge on the
// ring's final contents, and all-zero buckets (which snapshot skips)
// are simply never emitted. Stale bits — slots zeroed for intermediate
// epochs or evicted from the window — are dropped silently.
func flushDirty[T comparable](r *ring[T], emit func(epoch uint64, b T)) {
	if r.dirty == nil {
		return
	}
	var zero T
	for w := range r.dirty {
		word := r.dirty[w]
		if word == 0 {
			continue
		}
		r.dirty[w] = 0
		for word != 0 {
			bit := bits.TrailingZeros64(word)
			word &^= 1 << uint(bit)
			s := w*64 + bit
			if s >= len(r.buckets) {
				continue
			}
			logical := s - r.head
			if logical < 0 {
				logical += len(r.buckets)
			}
			if logical >= r.n {
				continue
			}
			b := r.buckets[s]
			if b == zero {
				continue
			}
			emit(r.first+uint64(logical), b)
		}
	}
}

// snapshot copies the live buckets in epoch order, skipping all-zero
// intermediate buckets, and stamps each copy with its epoch number via
// setEpoch (the stored buckets keep Epoch zero so the zero-skip
// comparison stays valid).
func snapshot[T comparable](r *ring[T], setEpoch func(*T, uint64)) []T {
	var zero T
	var out []T
	for i := 0; i < r.n; i++ {
		b := *r.slot(i)
		if b == zero {
			continue
		}
		setEpoch(&b, r.first+uint64(i))
		out = append(out, b)
	}
	return out
}
