package analysis

// ring is a fixed-capacity window of consecutive epoch buckets. The
// window follows the (mostly monotonic) event stream: a bucket for a
// newer epoch than the window covers evicts the oldest buckets; an
// event older than the window folds into the oldest live bucket. All
// storage is allocated at construction — at() never allocates.
//
// Bucket assignment is deterministic in the event sequence alone, and
// every probe event sequence is engine-invariant (see the package
// comment), so rings — and the Reports built from them — compare
// bit-identical between the event-driven engine and the stepper.
type ring[T comparable] struct {
	buckets []T // slot (head+i)%cap holds epoch first+i, for i < n
	head    int
	first   uint64
	n       int
	started bool
	dropped uint64 // epochs evicted off the window's trailing edge
	clamped uint64 // events folded into the oldest bucket
}

func newRing[T comparable](capacity int) ring[T] {
	return ring[T]{buckets: make([]T, capacity)}
}

func (r *ring[T]) slot(i int) *T {
	return &r.buckets[(r.head+i)%len(r.buckets)]
}

// at returns the bucket for epoch, materializing it (zeroing any
// intermediate epochs) and advancing the window when needed.
func (r *ring[T]) at(epoch uint64) *T {
	var zero T
	if !r.started {
		r.started = true
		r.first = epoch
		r.n = 1
		*r.slot(0) = zero
		return r.slot(0)
	}
	if epoch < r.first {
		r.clamped++
		return r.slot(0)
	}
	delta := epoch - r.first
	capN := uint64(len(r.buckets))
	if delta < uint64(r.n) {
		return r.slot(int(delta))
	}
	if delta >= capN {
		drop := delta - capN + 1
		if drop >= uint64(r.n) {
			// The window jumped wholly past the live buckets (a long
			// idle stretch): restart it at the new epoch rather than
			// filling the ring with empty leading buckets.
			r.dropped += uint64(r.n)
			r.first = epoch
			r.n = 1
			*r.slot(0) = zero
			return r.slot(0)
		}
		r.dropped += drop
		r.head = (r.head + int(drop)) % len(r.buckets)
		r.first += drop
		r.n -= int(drop)
		delta = epoch - r.first
	}
	for uint64(r.n) <= delta {
		*r.slot(r.n) = zero
		r.n++
	}
	return r.slot(int(delta))
}

// reset empties the ring without releasing its storage.
func (r *ring[T]) reset() {
	r.started = false
	r.head = 0
	r.first = 0
	r.n = 0
	r.dropped = 0
	r.clamped = 0
}

// snapshot copies the live buckets in epoch order, skipping all-zero
// intermediate buckets, and stamps each copy with its epoch number via
// setEpoch (the stored buckets keep Epoch zero so the zero-skip
// comparison stays valid).
func snapshot[T comparable](r *ring[T], setEpoch func(*T, uint64)) []T {
	var zero T
	var out []T
	for i := 0; i < r.n; i++ {
		b := *r.slot(i)
		if b == zero {
			continue
		}
		setEpoch(&b, r.first+uint64(i))
		out = append(out, b)
	}
	return out
}
