package power

import (
	"math"
	"testing"

	"repro/internal/dram"
)

func TestCurrentsValidate(t *testing.T) {
	good := DDR3Currents()
	if err := good.Validate(); err != nil {
		t.Fatalf("default currents rejected: %v", err)
	}
	bad := good
	bad.IDD0 = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero IDD0 accepted")
	}
	bad = good
	bad.IDD3N = bad.IDD2N - 1
	if err := bad.Validate(); err == nil {
		t.Error("IDD3N < IDD2N accepted")
	}
	bad = good
	bad.ChipsPerRank = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero chips accepted")
	}
}

func TestDRAMEnergyComponents(t *testing.T) {
	spec := dram.DDR31600(1)
	cur := DDR3Currents()
	counts := dram.CommandCounts{
		ACT:       100,
		RASCycles: 100 * uint64(spec.Timing.RAS),
		RD:        300,
		WR:        100,
		REF:       10,
	}
	occ := dram.Occupancy{ActiveCycles: 50_000, RefreshCycles: 2_080, TotalCycles: 100_000}
	e, err := ComputeDRAMEnergy(spec, counts, occ, cur)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]float64{
		"ActPre": e.ActPre, "Read": e.Read, "Write": e.Write,
		"Refresh": e.Refresh, "Background": e.Background,
	} {
		if v <= 0 {
			t.Errorf("%s energy = %g, want positive", name, v)
		}
	}
	if e.Total() <= e.Background {
		t.Error("total not larger than background")
	}
	if e.TotalMJ() != e.Total()*1e-9 {
		t.Error("TotalMJ conversion wrong")
	}
}

func TestReducedRASLowersActEnergy(t *testing.T) {
	spec := dram.DDR31600(1)
	cur := DDR3Currents()
	occ := dram.Occupancy{ActiveCycles: 1000, TotalCycles: 10_000}
	normal := dram.CommandCounts{ACT: 100, RASCycles: 100 * uint64(spec.Timing.RAS)}
	fast := dram.CommandCounts{ACT: 100, FastACT: 100, RASCycles: 100 * 20}
	en, err := ComputeDRAMEnergy(spec, normal, occ, cur)
	if err != nil {
		t.Fatal(err)
	}
	ef, err := ComputeDRAMEnergy(spec, fast, occ, cur)
	if err != nil {
		t.Fatal(err)
	}
	if ef.ActPre >= en.ActPre {
		t.Errorf("fast ACT energy %g >= normal %g", ef.ActPre, en.ActPre)
	}
}

func TestDRAMEnergyRejectsBadInput(t *testing.T) {
	spec := dram.DDR31600(1)
	bad := DDR3Currents()
	bad.VDD = 0
	if _, err := ComputeDRAMEnergy(spec, dram.CommandCounts{}, dram.Occupancy{}, bad); err == nil {
		t.Error("bad currents accepted")
	}
	occ := dram.Occupancy{ActiveCycles: 10, TotalCycles: 5} // inconsistent
	if _, err := ComputeDRAMEnergy(spec, dram.CommandCounts{}, occ, DDR3Currents()); err == nil {
		t.Error("inconsistent occupancy accepted")
	}
	badSpec := spec
	badSpec.BusMHz = 0
	if _, err := ComputeDRAMEnergy(badSpec, dram.CommandCounts{}, dram.Occupancy{}, DDR3Currents()); err == nil {
		t.Error("bad spec accepted")
	}
}

func TestHCRACEntryBits(t *testing.T) {
	// Table 1 geometry: 1 rank (0 bits) + 8 banks (3) + 64K rows (16)
	// + 1 valid = 20 bits.
	spec := dram.DDR31600(2)
	if got := HCRACEntryBits(spec); got != 20 {
		t.Errorf("entry bits = %d, want 20", got)
	}
}

// TestPaperStorageNumbers checks Section 6.3: a 128-entry per-core
// ChargeCache on 8 cores and 2 channels stores 5376 bytes total and
// 672 bytes per core.
func TestPaperStorageNumbers(t *testing.T) {
	spec := dram.DDR31600(2)
	bits := HCRACStorageBits(spec, 128, 8)
	if bits/8 != 5376 {
		t.Errorf("storage = %d bytes, paper says 5376", bits/8)
	}
	perCore := bits / 8 / 8
	if perCore != 672 {
		t.Errorf("per-core storage = %d bytes, paper says 672", perCore)
	}
}

// TestPaperOverheadNumbers checks the Section 6.3 area and power against
// the paper's McPAT results.
func TestPaperOverheadNumbers(t *testing.T) {
	spec := dram.DDR31600(2)
	// ~60M HCRAC accesses/s is the evaluated systems' ballpark ACT+PRE
	// rate; the calibration constant was chosen against it.
	ov, err := HCRACOverhead(spec, 128, 8, 4<<20, 60e6)
	if err != nil {
		t.Fatal(err)
	}
	if ov.StorageBytes != 5376 {
		t.Errorf("storage = %d, want 5376", ov.StorageBytes)
	}
	if math.Abs(ov.AreaMM2-0.022) > 0.001 {
		t.Errorf("area = %g mm^2, paper says 0.022", ov.AreaMM2)
	}
	if ov.PowerMW < 0.10 || ov.PowerMW > 0.20 {
		t.Errorf("power = %g mW, paper says 0.149", ov.PowerMW)
	}
	if math.Abs(ov.FractionOfLLCArea-0.0024) > 0.0005 {
		t.Errorf("LLC fraction = %g, paper says 0.0024", ov.FractionOfLLCArea)
	}
}

func TestHCRACOverheadRejectsBadInput(t *testing.T) {
	spec := dram.DDR31600(2)
	if _, err := HCRACOverhead(spec, 0, 8, 4<<20, 0); err == nil {
		t.Error("zero entries accepted")
	}
	if _, err := HCRACOverhead(spec, 128, 8, 4<<20, -1); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := HCRACOverhead(spec, 128, 8, 0, 0); err == nil {
		t.Error("zero LLC accepted")
	}
}

func TestCacheAreaScalesLinearly(t *testing.T) {
	a := CacheAreaMM2(4 << 20)
	b := CacheAreaMM2(8 << 20)
	if math.Abs(b-2*a) > 1e-9 {
		t.Errorf("area not linear: %g vs %g", a, b)
	}
	if a < 8 || a > 11 {
		t.Errorf("4MB LLC area = %g mm^2, want ~9.2", a)
	}
}

func TestIlog2(t *testing.T) {
	for v, want := range map[int]int{1: 0, 2: 1, 8: 3, 65536: 16} {
		if got := ilog2(v); got != want {
			t.Errorf("ilog2(%d) = %d, want %d", v, got, want)
		}
	}
}
