package power

import (
	"fmt"
	"math"

	"repro/internal/dram"
)

// Area and power calibration constants for 22 nm SRAM arrays, fitted to
// the paper's McPAT results (Section 6.3: a 5376 B HCRAC occupies
// 0.022 mm^2 — 0.24% of a 4 MB LLC — and consumes 0.149 mW on average).
const (
	// smallArrayMM2PerBit is the effective area of small, periphery-
	// dominated arrays such as the HCRAC.
	smallArrayMM2PerBit = 0.022 / 43008.0

	// denseArrayMM2PerBit is the effective area of large SRAM arrays
	// (the 4 MB LLC at ~9.2 mm^2).
	denseArrayMM2PerBit = 9.17e6 / (4.0 * 1024 * 1024 * 8) * 1e-6

	// leakageNWPerBit is static power per bit.
	leakageNWPerBit = 2.0

	// dynamicPJPerAccess is the energy of one HCRAC lookup or insert.
	dynamicPJPerAccess = 1.0
)

// HCRACEntryBits returns the tag-entry size for spec per the paper's
// Equation 2: log2(ranks) + log2(banks) + log2(rows) + 1 valid bit.
func HCRACEntryBits(spec dram.Spec) int {
	g := spec.Geometry
	return ilog2(g.Ranks) + ilog2(g.Banks) + ilog2(g.Rows) + 1
}

// HCRACStorageBits returns the total ChargeCache storage per the paper's
// Equation 1: cores x channels x entries x (entry + LRU bits). With
// 2-way associativity one LRU bit covers each entry pair; the paper
// charges one bit per entry, which we follow.
func HCRACStorageBits(spec dram.Spec, entriesPerCore, cores int) int {
	const lruBitsPerEntry = 1
	return cores * spec.Geometry.Channels * entriesPerCore *
		(HCRACEntryBits(spec) + lruBitsPerEntry)
}

// Overhead summarizes the HCRAC hardware cost.
type Overhead struct {
	StorageBytes      int
	AreaMM2           float64
	PowerMW           float64
	FractionOfLLCArea float64
}

// HCRACOverhead evaluates the Section 6.3 overhead numbers for a system
// with the given per-core entry count. accessesPerSec is the HCRAC
// lookup+insert rate (roughly the ACT+PRE rate across channels).
func HCRACOverhead(spec dram.Spec, entriesPerCore, cores, llcBytes int, accessesPerSec float64) (Overhead, error) {
	if entriesPerCore <= 0 || cores <= 0 || llcBytes <= 0 {
		return Overhead{}, fmt.Errorf("power: entries/cores/llc must be positive")
	}
	if accessesPerSec < 0 {
		return Overhead{}, fmt.Errorf("power: negative access rate")
	}
	bits := HCRACStorageBits(spec, entriesPerCore, cores)
	area := float64(bits) * smallArrayMM2PerBit
	llcArea := CacheAreaMM2(llcBytes)
	powerMW := float64(bits)*leakageNWPerBit*1e-6 +
		accessesPerSec*dynamicPJPerAccess*1e-9
	return Overhead{
		StorageBytes:      bits / 8,
		AreaMM2:           area,
		PowerMW:           powerMW,
		FractionOfLLCArea: area / llcArea,
	}, nil
}

// CacheAreaMM2 estimates the area of a large SRAM cache.
func CacheAreaMM2(bytes int) float64 {
	return float64(bytes) * 8 * denseArrayMM2PerBit
}

func ilog2(v int) int {
	return int(math.Round(math.Log2(float64(v))))
}
