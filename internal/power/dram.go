// Package power implements the paper's two measurement backends that are
// external tools in the original evaluation:
//
//   - a DRAMPower-style DRAM energy model driven by the simulator's
//     command counts and bank-state occupancy (Section 6.2), built on
//     DDR3 datasheet current profiles (IDD values), and
//   - a McPAT-style area/power model for the HCRAC storage in the memory
//     controller (Section 6.3), calibrated at 22 nm.
package power

import (
	"fmt"

	"repro/internal/dram"
)

// DRAMCurrents are DDR3 datasheet current profiles, in mA per chip.
type DRAMCurrents struct {
	IDD0  float64 // one-bank ACT/PRE cycling
	IDD2N float64 // precharge standby
	IDD3N float64 // active standby
	IDD4R float64 // read burst
	IDD4W float64 // write burst
	IDD5B float64 // burst refresh

	VDD          float64 // volts
	ChipsPerRank int
}

// DDR3Currents returns representative values for a 4 Gb x8 DDR3-1600
// device (Micron datasheet class).
func DDR3Currents() DRAMCurrents {
	return DRAMCurrents{
		IDD0:  55,
		IDD2N: 32,
		IDD3N: 38,
		IDD4R: 157,
		IDD4W: 128,
		IDD5B: 215,

		VDD:          1.5,
		ChipsPerRank: 8,
	}
}

// Validate reports current-profile errors.
func (c DRAMCurrents) Validate() error {
	if c.IDD0 <= 0 || c.IDD2N <= 0 || c.IDD3N <= 0 || c.IDD4R <= 0 || c.IDD4W <= 0 || c.IDD5B <= 0 {
		return fmt.Errorf("power: all IDD values must be positive: %+v", c)
	}
	if c.IDD3N < c.IDD2N {
		return fmt.Errorf("power: IDD3N (%g) must be >= IDD2N (%g)", c.IDD3N, c.IDD2N)
	}
	if c.VDD <= 0 || c.ChipsPerRank <= 0 {
		return fmt.Errorf("power: VDD and ChipsPerRank must be positive")
	}
	return nil
}

// DRAMEnergy is the per-channel energy breakdown, in picojoules.
type DRAMEnergy struct {
	ActPre     float64
	Read       float64
	Write      float64
	Refresh    float64
	Background float64
}

// Total returns the summed energy in picojoules.
func (e DRAMEnergy) Total() float64 {
	return e.ActPre + e.Read + e.Write + e.Refresh + e.Background
}

// TotalMJ returns the total in millijoules.
func (e DRAMEnergy) TotalMJ() float64 { return e.Total() * 1e-9 }

// RestoreEnergyShare is the fraction of the per-activation surcharge
// spent restoring cell charge (as opposed to wordline/decoder switching,
// which is independent of the cell's state). A highly-charged row needs
// proportionally less restore charge — the same physics that permits the
// lowered tRAS — so that share is scaled by the applied tRAS.
const RestoreEnergyShare = 0.5

// ComputeDRAMEnergy evaluates the DRAMPower methodology over one
// channel's command counts and occupancy:
//
//	E_act   = VDD surcharge(tRAS_applied) per ACT (see below)
//	E_rd/wr = VDD (IDD4x - IDD3N) tBL per burst
//	E_ref   = VDD (IDD5B - IDD2N) tRFC per REF
//	E_bg    = VDD (IDD3N t_active + IDD2N t_idle)
//
// The per-activation surcharge beyond standby is the DRAMPower term
// IDD0 tRC - IDD3N tRAS - IDD2N (tRC - tRAS) evaluated at the spec tRAS,
// with its restore share (RestoreEnergyShare) scaled by the applied tRAS
// (counts.RASCycles): activations of highly-charged rows pump back less
// charge. Background energy uses the measured bank occupancy, so the
// earlier precharges enabled by a lowered tRAS also show up there.
func ComputeDRAMEnergy(spec dram.Spec, counts dram.CommandCounts, occ dram.Occupancy, cur DRAMCurrents) (DRAMEnergy, error) {
	if err := cur.Validate(); err != nil {
		return DRAMEnergy{}, err
	}
	if err := spec.Validate(); err != nil {
		return DRAMEnergy{}, err
	}
	tck := 1000.0 / float64(spec.BusMHz) // ns
	chips := float64(cur.ChipsPerRank)
	scale := cur.VDD * tck * chips // mA * V * ns = pJ

	t := spec.Timing
	nACT := float64(counts.ACT)
	rasSpec := float64(t.RAS)
	surcharge := cur.IDD0*float64(t.RC) - cur.IDD3N*rasSpec - cur.IDD2N*float64(t.RC-t.RAS)
	restoreScale := 1.0
	if nACT > 0 {
		restoreScale = float64(counts.RASCycles) / (nACT * rasSpec)
	}
	actTerm := surcharge * nACT * (1 - RestoreEnergyShare + RestoreEnergyShare*restoreScale)

	idle := float64(occ.TotalCycles - occ.ActiveCycles - occ.RefreshCycles)
	if idle < 0 {
		return DRAMEnergy{}, fmt.Errorf("power: inconsistent occupancy %+v", occ)
	}

	return DRAMEnergy{
		ActPre:  scale * actTerm,
		Read:    scale * float64(counts.RD) * (cur.IDD4R - cur.IDD3N) * float64(t.BL),
		Write:   scale * float64(counts.WR) * (cur.IDD4W - cur.IDD3N) * float64(t.BL),
		Refresh: scale * float64(counts.REF) * (cur.IDD5B - cur.IDD2N) * float64(t.RFC),
		Background: scale * (cur.IDD3N*float64(occ.ActiveCycles) +
			cur.IDD2N*(idle+float64(occ.RefreshCycles))),
	}, nil
}
