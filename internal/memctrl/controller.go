package memctrl

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dram"
)

// Observer receives row-level command events, used by the RLTL analysis
// (Figures 3 and 4) without coupling the controller to the stats package.
type Observer interface {
	// ObserveActivate fires when an ACT issues. refreshAge is the time
	// since the activated row's last refresh; fast reports whether the
	// activation used a lowered timing class.
	ObserveActivate(channel int, key core.RowKey, now, refreshAge dram.Cycle, fast bool)
	// ObservePrecharge fires when a PRE (or refresh-forced PRE) closes
	// the row identified by key.
	ObservePrecharge(channel int, key core.RowKey, now dram.Cycle)
}

// Config parameterizes one per-channel controller.
type Config struct {
	Spec    dram.Spec
	Channel int // channel index served by this controller

	ReadQueueCap  int // Table 1: 64
	WriteQueueCap int // Table 1: 64

	RowPolicy RowPolicy

	// Write drain watermarks: the controller switches to draining writes
	// when the write queue reaches WriteHigh and back to reads at
	// WriteLow (or when the read queue is empty).
	WriteHigh int
	WriteLow  int

	// Mechanism chooses the activation timing class (package core).
	Mechanism core.Mechanism

	// Observer, if non-nil, receives ACT/PRE events.
	Observer Observer
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Spec.Validate(); err != nil {
		return err
	}
	if c.Channel < 0 || c.Channel >= c.Spec.Geometry.Channels {
		return fmt.Errorf("memctrl: channel %d out of range", c.Channel)
	}
	if c.Spec.Geometry.Ranks > maxRanks {
		return fmt.Errorf("memctrl: %d ranks exceed the supported maximum %d",
			c.Spec.Geometry.Ranks, maxRanks)
	}
	if c.ReadQueueCap <= 0 || c.WriteQueueCap <= 0 {
		return fmt.Errorf("memctrl: queue capacities must be positive")
	}
	if c.WriteHigh <= c.WriteLow || c.WriteHigh > c.WriteQueueCap {
		return fmt.Errorf("memctrl: bad drain watermarks low=%d high=%d cap=%d",
			c.WriteLow, c.WriteHigh, c.WriteQueueCap)
	}
	if c.Mechanism == nil {
		return fmt.Errorf("memctrl: mechanism must be set")
	}
	return nil
}

// latencyBuckets is the number of read-latency histogram buckets; each
// bucket is latencyBucketWidth controller cycles wide, the last bucket
// collects the tail.
const (
	latencyBuckets     = 64
	latencyBucketWidth = 8
)

// maxRanks bounds per-tick stack scratch (DDR3 DIMMs top out at 4
// ranks; the specs in this repo use 1 or 2).
const maxRanks = 8

// Stats aggregates controller-level counters.
type Stats struct {
	ReadsServed  uint64
	WritesServed uint64

	// ReadLatencySum accumulates (completion - arrival) over served
	// reads, in controller cycles.
	ReadLatencySum uint64

	// ReadLatencyHist is a fixed-width histogram of read latencies
	// (bucket i covers [i*8, i*8+8) cycles; the last bucket is open).
	ReadLatencyHist [latencyBuckets]uint64

	Activations     uint64
	FastActivations uint64
	RowHits         uint64 // request found its row open
	RowMisses       uint64 // request found the bank precharged
	RowConflicts    uint64 // request found another row open

	Refreshes uint64
}

// AvgReadLatency returns the mean read latency in controller cycles.
func (s Stats) AvgReadLatency() float64 {
	if s.ReadsServed == 0 {
		return 0
	}
	return float64(s.ReadLatencySum) / float64(s.ReadsServed)
}

// ReadLatencyPercentile returns an upper bound on the p-quantile
// (0 < p <= 1) of read latency in controller cycles, from the histogram.
func (s Stats) ReadLatencyPercentile(p float64) float64 {
	if s.ReadsServed == 0 || p <= 0 {
		return 0
	}
	target := uint64(p * float64(s.ReadsServed))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i, n := range s.ReadLatencyHist {
		seen += n
		if seen >= target {
			return float64((i + 1) * latencyBucketWidth)
		}
	}
	return float64(latencyBuckets * latencyBucketWidth)
}

// RowHitRate returns the fraction of classified requests that hit an
// open row.
func (s Stats) RowHitRate() float64 {
	total := s.RowHits + s.RowMisses + s.RowConflicts
	if total == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(total)
}

// completion is a scheduled read-data delivery.
type completion struct {
	at  dram.Cycle
	req *Request
}

// Controller schedules requests for one channel using FR-FCFS: ready
// column (row-hit) commands first, then the oldest request's next
// required command. Refresh has priority over everything; writes are
// serviced in drain mode governed by queue watermarks.
type Controller struct {
	cfg Config
	ch  *dram.Channel

	readQ  []*Request
	writeQ []*Request
	drain  bool

	refresh []*refreshEngine // per rank

	// closeIntent marks banks the closed-row policy wants to precharge
	// (indexed rank*banks+bank); closeIntents counts the marks so the
	// event scan knows precharge work is still outstanding.
	closeIntent  []bool
	closeIntents int

	// completions is a FIFO ring (reads complete in issue order):
	// compHead is advanced on delivery and the buffer reused once
	// drained, so steady-state operation does not allocate.
	completions []completion
	compHead    int

	// dirty records that a request arrived since the last Tick, so the
	// cached NextEvent estimate no longer bounds the next state change.
	dirty bool
	// nextWake is the event estimate computed on demand after the last
	// Tick; needScan marks it stale (see NextEvent). Keeping the scan
	// lazy means the reference stepper, which never asks, never pays
	// for it.
	nextWake dram.Cycle
	needScan bool
	scanFrom dram.Cycle

	stats Stats
	now   dram.Cycle
}

// NewController builds a controller and its channel device.
func NewController(cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ch, err := dram.NewChannel(cfg.Spec)
	if err != nil {
		return nil, err
	}
	c := &Controller{
		cfg:         cfg,
		ch:          ch,
		closeIntent: make([]bool, cfg.Spec.Geometry.BanksPerChannel()),
	}
	for r := 0; r < cfg.Spec.Geometry.Ranks; r++ {
		c.refresh = append(c.refresh, newRefreshEngine(cfg.Spec, cfg.Channel, r))
	}
	return c, nil
}

// Channel exposes the underlying DRAM channel (counts, occupancy).
func (c *Controller) Channel() *dram.Channel { return c.ch }

// Stats returns the controller counters.
func (c *Controller) Stats() Stats { return c.stats }

// ResetStats clears counters (after warm-up). Queue contents and DRAM
// state are preserved.
func (c *Controller) ResetStats() { c.stats = Stats{} }

// Mechanism returns the latency mechanism in use.
func (c *Controller) Mechanism() core.Mechanism { return c.cfg.Mechanism }

// QueuedReads returns the current read queue depth.
func (c *Controller) QueuedReads() int { return len(c.readQ) }

// QueuedWrites returns the current write queue depth.
func (c *Controller) QueuedWrites() int { return len(c.writeQ) }

// Pending reports whether any request is queued or awaiting completion.
func (c *Controller) Pending() bool {
	return len(c.readQ) > 0 || len(c.writeQ) > 0 || len(c.completions) > c.compHead
}

// EnqueueRead adds a read request; it reports false when the queue is
// full (the caller must retry later).
func (c *Controller) EnqueueRead(req *Request) bool {
	if len(c.readQ) >= c.cfg.ReadQueueCap {
		return false
	}
	req.Arrive = c.now
	c.readQ = append(c.readQ, req)
	c.dirty = true
	return true
}

// EnqueueWrite adds a write request; it reports false when full.
func (c *Controller) EnqueueWrite(req *Request) bool {
	if len(c.writeQ) >= c.cfg.WriteQueueCap {
		return false
	}
	req.Arrive = c.now
	c.writeQ = append(c.writeQ, req)
	c.dirty = true
	return true
}

// SyncClock advances the controller's notion of "now" — the arrival
// stamp given to enqueued requests — without running the scheduler.
// The event-driven engine calls it before the core phase of every
// executed cycle so arrival stamps match the reference stepper, whose
// per-bus-cycle Tick keeps the clock current even when nothing issues.
func (c *Controller) SyncClock(bus dram.Cycle) {
	if bus > c.now {
		c.now = bus
	}
}

// NextEvent returns a lower bound on the next bus cycle at which a Tick
// could change observable state: deliver a completion, issue a command,
// or classify a request. Ticking the controller at (or before) every
// cycle NextEvent reports, instead of every cycle, is behaviourally
// identical to the reference stepper — intermediate ticks are no-ops.
// Enqueues invalidate the cached estimate: new work may be issuable on
// the very next bus cycle.
func (c *Controller) NextEvent() dram.Cycle {
	if c.dirty {
		return c.now + 1
	}
	if c.needScan {
		c.nextWake = c.nextEventScan(c.scanFrom)
		c.needScan = false
	}
	return c.nextWake
}

// Tick advances the controller by one cycle: delivers finished reads,
// then issues at most one command on the channel's command bus. It
// reports whether any state changed (a completion delivered, a command
// issued, or a refresh owning the channel) — informational for callers
// and tests; the event-driven engine schedules through NextEvent,
// which Tick refreshes as a side effect.
func (c *Controller) Tick(now dram.Cycle) bool {
	c.now = now
	c.dirty = false
	c.cfg.Mechanism.Tick(now)
	progressed := c.deliverCompletions(now)

	issued := false
	if busy, refIssued := c.serviceRefresh(now); busy {
		// Refresh has the channel: either a command issued or the rank
		// is mid-preparation waiting on a timing expiry.
		progressed = true
		issued = refIssued
	} else {
		c.updateDrainMode()
		switch {
		case c.issueColumnHit(now):
			issued = true
		case c.cfg.RowPolicy == ClosedRow && c.issueCloseIntent(now):
			issued = true
		case c.issueForOldest(now):
			issued = true
		}
		progressed = progressed || issued
	}
	// Only an issued command forces the very next cycle to run, and only
	// while work remains queued: an issue mutates bank/bus state and
	// cuts the scheduler walk short, so requests behind the issue point
	// may be both classifiable and issuable at now+1 without any timing
	// register showing it. When the issue drained the last request (and
	// no close intent or due refresh is outstanding), nothing is
	// shadowed: the next change is bounded by the ordinary event scan.
	// Completion delivery and refresh-preparation stalls never force
	// now+1 — they leave the scheduling state exactly as this tick's
	// (completed or skipped) walk saw it. Fresh arrivals (dirty) always
	// force now+1.
	wake := c.dirty
	if issued && !wake {
		wake = len(c.readQ) > 0 || len(c.writeQ) > 0 || c.closeIntents > 0
		if !wake {
			for _, eng := range c.refresh {
				if eng.pending {
					wake = true
					break
				}
			}
		}
	}
	if wake {
		c.nextWake = now + 1
		c.needScan = false
	} else {
		c.needScan = true
		c.scanFrom = now
	}
	return progressed
}

// nextEventScan computes NextEvent the slow way, after a tick in which
// nothing happened: the next completion, refresh deadline, or — when
// requests, close intents, or a pending refresh are waiting on DRAM
// timing — the channel's earliest constraint expiry.
func (c *Controller) nextEventScan(now dram.Cycle) dram.Cycle {
	next := dram.NoEvent
	add := func(t dram.Cycle) {
		if t > now && t < next {
			next = t
		}
	}
	if len(c.completions) > c.compHead {
		add(c.completions[c.compHead].at)
	}
	busy := len(c.readQ) > 0 || len(c.writeQ) > 0 || c.closeIntents > 0
	for _, eng := range c.refresh {
		add(eng.nextDue)
		if eng.pending {
			busy = true
		}
	}
	if busy {
		add(c.ch.NextTimingExpiry(now))
	}
	return next
}

func (c *Controller) deliverCompletions(now dram.Cycle) bool {
	delivered := false
	for c.compHead < len(c.completions) && c.completions[c.compHead].at <= now {
		delivered = true
		comp := c.completions[c.compHead]
		c.completions[c.compHead].req = nil
		c.compHead++
		lat := uint64(comp.at - comp.req.Arrive)
		c.stats.ReadLatencySum += lat
		bucket := lat / latencyBucketWidth
		if bucket >= latencyBuckets {
			bucket = latencyBuckets - 1
		}
		c.stats.ReadLatencyHist[bucket]++
		if comp.req.OnComplete != nil {
			comp.req.OnComplete(comp.at)
		}
	}
	if delivered && c.compHead == len(c.completions) {
		c.completions = c.completions[:0]
		c.compHead = 0
	}
	return delivered
}

// markCloseIntent flags (rank, bank) for a closed-row precharge.
func (c *Controller) markCloseIntent(idx int) {
	if !c.closeIntent[idx] {
		c.closeIntent[idx] = true
		c.closeIntents++
	}
}

// clearCloseIntent drops the flag on (rank, bank).
func (c *Controller) clearCloseIntent(idx int) {
	if c.closeIntent[idx] {
		c.closeIntent[idx] = false
		c.closeIntents--
	}
}

// serviceRefresh gives absolute priority to due refreshes: it closes open
// banks of the rank and issues REF when possible. busy reports that a
// due refresh owns the channel this cycle (blocking normal scheduling);
// issued distinguishes an actual REF/PRE issue from a pure stall
// waiting on a timing expiry.
func (c *Controller) serviceRefresh(now dram.Cycle) (busy, issued bool) {
	for rank, eng := range c.refresh {
		if !eng.due(now) {
			continue
		}
		if c.ch.CanIssue(dram.Refresh(rank), now) {
			c.ch.Issue(dram.Refresh(rank), now)
			eng.issued(now)
			c.stats.Refreshes++
			return true, true
		}
		// Close any open bank so REF can issue.
		for b := 0; b < c.cfg.Spec.Geometry.Banks; b++ {
			row, open := c.ch.OpenRow(rank, b)
			if !open {
				continue
			}
			pre := dram.Pre(rank, b)
			if c.ch.CanIssue(pre, now) {
				c.issuePrecharge(pre, row, now)
				return true, true
			}
		}
		// Refresh pending but nothing issuable yet (e.g. tRAS running):
		// stall this rank. With a single rank per channel this blocks
		// the channel, which matches real controllers' refresh priority.
		return true, false
	}
	return false, false
}

func (c *Controller) updateDrainMode() {
	switch {
	case len(c.writeQ) >= c.cfg.WriteHigh:
		c.drain = true
	case c.drain && len(c.writeQ) <= c.cfg.WriteLow:
		c.drain = false
	case !c.drain && len(c.readQ) == 0 && len(c.writeQ) > 0:
		// Opportunistic drain when there is nothing else to do.
		c.drain = true
	case c.drain && len(c.writeQ) == 0:
		c.drain = false
	}
}

func (c *Controller) activeQueue() *[]*Request {
	if c.drain {
		return &c.writeQ
	}
	return &c.readQ
}

// issueColumnHit performs the FR (first-ready) pass: the oldest request
// whose row is open and whose column command is issuable. Rank-level
// column gates (tCCD/turnaround, refresh, data bus) are hoisted out of
// the walk: when a rank cannot accept any column this cycle, matching
// requests are still classified (exactly as the per-request attempt
// would) but the doomed per-command legality checks are skipped.
func (c *Controller) issueColumnHit(now dram.Cycle) bool {
	q := c.activeQueue()
	// The active queue is homogeneous (reads outside drain mode, writes
	// inside), so the per-rank column gate is computed once.
	isRead := !c.drain
	var ready [maxRanks]bool
	for r := 0; r < c.cfg.Spec.Geometry.Ranks; r++ {
		ready[r] = c.ch.RankColumnReady(r, isRead, now)
	}
	for i, req := range *q {
		row, open := c.ch.OpenRow(req.Coord.Rank, req.Coord.Bank)
		if !open || row != req.Coord.Row {
			continue
		}
		c.classify(req, row, open)
		if !ready[req.Coord.Rank] {
			continue
		}
		if c.issueColumn(req, now) {
			c.removeAt(q, i)
			if c.cfg.RowPolicy == ClosedRow &&
				!c.anyPendingFor(req.Coord.Rank, req.Coord.Bank, req.Coord.Row) {
				c.markCloseIntent(req.Coord.Rank*c.cfg.Spec.Geometry.Banks + req.Coord.Bank)
			}
			return true
		}
	}
	return false
}

// issueCloseIntent precharges banks the closed-row policy marked, unless
// a queued request now wants the open row again.
func (c *Controller) issueCloseIntent(now dram.Cycle) bool {
	for idx, want := range c.closeIntent {
		if !want {
			continue
		}
		rank := idx / c.cfg.Spec.Geometry.Banks
		bankID := idx % c.cfg.Spec.Geometry.Banks
		row, open := c.ch.OpenRow(rank, bankID)
		if !open {
			c.clearCloseIntent(idx)
			continue
		}
		if c.anyPendingFor(rank, bankID, row) {
			c.clearCloseIntent(idx)
			continue
		}
		pre := dram.Pre(rank, bankID)
		if c.ch.CanIssue(pre, now) && c.preUseful(rank, bankID, now) {
			c.clearCloseIntent(idx)
			c.issuePrecharge(pre, row, now)
			return true
		}
	}
	return false
}

// preUseful reports whether precharging (rank, bank) now can shorten the
// next activation. Precharging earlier than tRP before the bank's
// same-bank ACT bound only sacrifices potential row hits: the reopen
// cannot start sooner anyway.
func (c *Controller) preUseful(rank, bankID int, now dram.Cycle) bool {
	return now+dram.Cycle(c.cfg.Spec.Timing.RP) >= c.ch.EarliestActivate(rank, bankID)
}

// issueForOldest performs the FCFS pass: walk requests oldest-first and
// issue the first legal command that makes progress for one of them. It
// reports whether a command was issued.
func (c *Controller) issueForOldest(now dram.Cycle) bool {
	q := c.activeQueue()
	// Rank-level ACT readiness (tRRD, tFAW, refresh) is hoisted out of
	// the walk: when false, every activate probe for that rank would
	// fail, so the attempts are skipped (classification still runs).
	var actReady [maxRanks]bool
	for r := 0; r < c.cfg.Spec.Geometry.Ranks; r++ {
		actReady[r] = c.ch.RankActReady(r, now)
	}
	for _, req := range *q {
		row, open := c.ch.OpenRow(req.Coord.Rank, req.Coord.Bank)
		switch {
		case open && row == req.Coord.Row:
			// Column command not ready yet (tRCD or bus); wait.
			continue
		case open:
			// Conflict: close the aggressor row. If the PRE is not yet
			// legal (tRAS still running), try younger requests.
			c.classify(req, row, open)
			pre := dram.Pre(req.Coord.Rank, req.Coord.Bank)
			if c.ch.CanIssue(pre, now) && c.preUseful(req.Coord.Rank, req.Coord.Bank, now) {
				c.issuePrecharge(pre, row, now)
				return true
			}
			continue
		default:
			c.classify(req, 0, false)
			if actReady[req.Coord.Rank] && c.issueActivate(req, now) {
				return true
			}
		}
	}
	return false
}

// classify counts the row-buffer outcome of a request exactly once, at
// the moment the scheduler first processes it.
func (c *Controller) classify(req *Request, openRow int, open bool) {
	if req.classified {
		return
	}
	req.classified = true
	switch {
	case open && openRow == req.Coord.Row:
		c.stats.RowHits++
	case open:
		c.stats.RowConflicts++
	default:
		c.stats.RowMisses++
	}
}

func (c *Controller) issueActivate(req *Request, now dram.Cycle) bool {
	key := core.MakeRowKey(req.Coord.Rank, req.Coord.Bank, req.Coord.Row)
	age := c.refresh[req.Coord.Rank].ageOf(req.Coord.Row, now)
	// Probe legality with the spec class first: the mechanism must only
	// observe activations that actually issue.
	probe := dram.Act(req.Coord.Rank, req.Coord.Bank, req.Coord.Row, c.cfg.Spec.Timing.DefaultClass())
	if !c.ch.CanIssue(probe, now) {
		return false
	}
	class := c.cfg.Mechanism.OnActivate(key, now, age)
	fast := class.RCD < c.cfg.Spec.Timing.RCD || class.RAS < c.cfg.Spec.Timing.RAS
	c.ch.Issue(dram.Act(req.Coord.Rank, req.Coord.Bank, req.Coord.Row, class), now)
	c.stats.Activations++
	if fast {
		c.stats.FastActivations++
	}
	if c.cfg.Observer != nil {
		c.cfg.Observer.ObserveActivate(c.cfg.Channel, key, now, age, fast)
	}
	return true
}

func (c *Controller) issuePrecharge(pre dram.Command, row int, now dram.Cycle) {
	c.ch.Issue(pre, now)
	key := core.MakeRowKey(pre.Rank, pre.Bank, row)
	c.cfg.Mechanism.OnPrecharge(key, now)
	if c.cfg.Observer != nil {
		c.cfg.Observer.ObservePrecharge(c.cfg.Channel, key, now)
	}
}

// issueColumn issues RD or WR for req if legal; on success the request is
// considered served (reads complete after the data burst).
func (c *Controller) issueColumn(req *Request, now dram.Cycle) bool {
	if req.Kind == ReadReq {
		cmd := dram.Read(req.Coord.Rank, req.Coord.Bank, req.Coord.Col)
		if !c.ch.CanIssue(cmd, now) {
			return false
		}
		c.ch.Issue(cmd, now)
		c.completions = append(c.completions, completion{at: c.ch.ReadDataAt(now), req: req})
		c.stats.ReadsServed++
	} else {
		cmd := dram.Write(req.Coord.Rank, req.Coord.Bank, req.Coord.Col)
		if !c.ch.CanIssue(cmd, now) {
			return false
		}
		c.ch.Issue(cmd, now)
		c.stats.WritesServed++
		if req.OnComplete != nil {
			req.OnComplete(now)
		}
	}
	return true
}

// anyPendingFor reports whether any queued request targets (rank, bank,
// row) — consulted by the closed-row policy.
func (c *Controller) anyPendingFor(rank, bankID, row int) bool {
	for _, r := range c.readQ {
		if r.Coord.Rank == rank && r.Coord.Bank == bankID && r.Coord.Row == row {
			return true
		}
	}
	for _, r := range c.writeQ {
		if r.Coord.Rank == rank && r.Coord.Bank == bankID && r.Coord.Row == row {
			return true
		}
	}
	return false
}

func (c *Controller) removeAt(q *[]*Request, i int) {
	s := *q
	copy(s[i:], s[i+1:])
	s[len(s)-1] = nil
	*q = s[:len(s)-1]
}

// RefreshAge exposes the refresh engine's age for a row (tests, tools).
func (c *Controller) RefreshAge(rank, row int, now dram.Cycle) dram.Cycle {
	return c.refresh[rank].ageOf(row, now)
}
