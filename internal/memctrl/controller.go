package memctrl

import (
	"fmt"
	"math/bits"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/prof"
)

// Observer receives row-level command events, used by the RLTL analysis
// (Figures 3 and 4) without coupling the controller to the stats package.
type Observer interface {
	// ObserveActivate fires when an ACT issues. refreshAge is the time
	// since the activated row's last refresh; fast reports whether the
	// activation used a lowered timing class.
	ObserveActivate(channel int, key core.RowKey, now, refreshAge dram.Cycle, fast bool)
	// ObservePrecharge fires when a PRE (or refresh-forced PRE) closes
	// the row identified by key.
	ObservePrecharge(channel int, key core.RowKey, now dram.Cycle)
}

// Config parameterizes one per-channel controller.
type Config struct {
	Spec    dram.Spec
	Channel int // channel index served by this controller

	ReadQueueCap  int // Table 1: 64
	WriteQueueCap int // Table 1: 64

	RowPolicy RowPolicy

	// Write drain watermarks: the controller switches to draining writes
	// when the write queue reaches WriteHigh and back to reads at
	// WriteLow (or when the read queue is empty).
	WriteHigh int
	WriteLow  int

	// Mechanism chooses the activation timing class (package core).
	Mechanism core.Mechanism

	// Observer, if non-nil, receives ACT/PRE events.
	Observer Observer

	// Probe, if non-nil, receives perf-analyzer events (queue-depth
	// samples, row-outcome classifications); see probe.go. The hot path
	// pays one nil check per event when unset.
	Probe Probe

	// Profiler, if non-nil, attributes sampled wall-clock time to the
	// controller's phases (enqueue, FR-FCFS select, completion drain);
	// see internal/prof. Like Probe, unset costs one nil check per
	// crossing. Completion-drain time includes the nested request
	// callbacks (they run inside the drain).
	Profiler *prof.Timer
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Spec.Validate(); err != nil {
		return err
	}
	if c.Channel < 0 || c.Channel >= c.Spec.Geometry.Channels {
		return fmt.Errorf("memctrl: channel %d out of range", c.Channel)
	}
	if c.Spec.Geometry.Ranks > maxRanks {
		return fmt.Errorf("memctrl: %d ranks exceed the supported maximum %d",
			c.Spec.Geometry.Ranks, maxRanks)
	}
	if c.ReadQueueCap <= 0 || c.WriteQueueCap <= 0 {
		return fmt.Errorf("memctrl: queue capacities must be positive")
	}
	if c.WriteHigh <= c.WriteLow || c.WriteHigh > c.WriteQueueCap {
		return fmt.Errorf("memctrl: bad drain watermarks low=%d high=%d cap=%d",
			c.WriteLow, c.WriteHigh, c.WriteQueueCap)
	}
	if c.Mechanism == nil {
		return fmt.Errorf("memctrl: mechanism must be set")
	}
	return nil
}

// latencyBuckets is the number of read-latency histogram buckets; each
// bucket is latencyBucketWidth controller cycles wide, the last bucket
// collects the tail.
const (
	latencyBuckets     = 64
	latencyBucketWidth = 8
)

// maxRanks bounds per-tick stack scratch (DDR3 DIMMs top out at 4
// ranks; the specs in this repo use 1 or 2).
const maxRanks = 8

// Stats aggregates controller-level counters.
type Stats struct {
	ReadsServed  uint64
	WritesServed uint64

	// ReadLatencySum accumulates (completion - arrival) over served
	// reads, in controller cycles.
	ReadLatencySum uint64

	// ReadLatencyHist is a fixed-width histogram of read latencies
	// (bucket i covers [i*8, i*8+8) cycles; the last bucket is open).
	ReadLatencyHist [latencyBuckets]uint64

	Activations     uint64
	FastActivations uint64
	RowHits         uint64 // request found its row open
	RowMisses       uint64 // request found the bank precharged
	RowConflicts    uint64 // request found another row open

	Refreshes uint64
}

// AvgReadLatency returns the mean read latency in controller cycles.
func (s Stats) AvgReadLatency() float64 {
	if s.ReadsServed == 0 {
		return 0
	}
	return float64(s.ReadLatencySum) / float64(s.ReadsServed)
}

// ReadLatencyPercentile returns an upper bound on the p-quantile
// (0 < p <= 1) of read latency in controller cycles, from the histogram.
func (s Stats) ReadLatencyPercentile(p float64) float64 {
	if s.ReadsServed == 0 || p <= 0 {
		return 0
	}
	target := uint64(p * float64(s.ReadsServed))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i, n := range s.ReadLatencyHist {
		seen += n
		if seen >= target {
			return float64((i + 1) * latencyBucketWidth)
		}
	}
	return float64(latencyBuckets * latencyBucketWidth)
}

// RowHitRate returns the fraction of classified requests that hit an
// open row.
func (s Stats) RowHitRate() float64 {
	total := s.RowHits + s.RowMisses + s.RowConflicts
	if total == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(total)
}

// completion is a scheduled read-data delivery.
type completion struct {
	at  dram.Cycle
	req *Request
}

// Controller schedules requests for one channel using FR-FCFS: ready
// column (row-hit) commands first, then the oldest request's next
// required command. Refresh has priority over everything; writes are
// serviced in drain mode governed by queue watermarks.
//
// Requests are queued per (rank, bank); arrival sequence numbers
// recover the global FCFS order. Each scheduling pass visits only the
// banks with queued work (a bitmask per kind), takes each bank's single
// candidate, and picks the oldest among the banks whose next-allowed
// registers have expired — identical decisions to a flat-queue walk,
// without touching requests that cannot make progress this cycle.
type Controller struct {
	cfg Config
	ch  *dram.Channel

	banks      []bankQ // per (rank, bank), index rank*banks+bank
	readBanks  bankSet // banks with queued reads
	writeBanks bankSet // banks with queued writes
	nReads     int
	nWrites    int
	nextSeq    uint64 // next arrival sequence number

	// unclassReads/unclassWrites hold requests whose row-buffer outcome
	// has not been counted yet, in arrival order. The reference walk
	// classified a request the first time the scheduler's queue scan
	// reached it; these lists replay exactly that — each scheduling pass
	// classifies the unclassified requests older than the pass's issue
	// point against current bank state (see classifyHits/classifyRest).
	unclassReads  []*Request
	unclassWrites []*Request

	drain bool

	refresh []*refreshEngine // per rank

	// closeIntent marks banks the closed-row policy wants to precharge
	// (indexed rank*banks+bank); closeIntents counts the marks so the
	// event scan knows precharge work is still outstanding.
	closeIntent  []bool
	closeIntents int

	// completions is a FIFO ring (reads complete in issue order):
	// compHead is advanced on delivery and the buffer reused once
	// drained, so steady-state operation does not allocate.
	completions []completion
	compHead    int

	// dirty records that a request arrived since the last Tick, so the
	// cached NextEvent estimate no longer bounds the next state change.
	dirty bool
	// nextWake is the event estimate computed on demand after the last
	// Tick; needScan marks it stale (see NextEvent). Keeping the scan
	// lazy means the reference stepper, which never asks, never pays
	// for it; keeping a still-future estimate across no-op ticks means
	// the event engine rescans only after actual controller activity.
	nextWake dram.Cycle
	needScan bool
	scanFrom dram.Cycle

	// pendingSweep records that the reference stepper's next tick would
	// be a pure classification sweep (nothing issuable, no completion or
	// refresh due): the sweep is deferred until this controller's next
	// Tick — bank state cannot change in between, so the outcome is
	// identical — or canceled by an arrival, whose forced tick replays
	// the stepper's walk (any issue it enables is younger than every
	// deferred request, so the walk's cut still classifies them all).
	// pendingSweepAt is the bus cycle of the stepper tick being stood in
	// for, so a run ending before it can discard the sweep exactly when
	// the stepper would never have performed it (see FinishSweeps).
	pendingSweep   bool
	pendingSweepAt dram.Cycle

	// schedEpoch increments whenever the inputs of nextIssueTime can
	// have changed: a command issued (registers, bank states, close
	// intents) or a request arrived (queues, projected drain mode).
	// Completion deliveries leave them untouched, so delivery ticks
	// reuse the cached value.
	schedEpoch     uint64
	issueTimeEpoch uint64
	issueTimeCache dram.Cycle

	// eventDriven enables the wake-estimate bookkeeping (the exact
	// next-issue-time computation and the classification sweep that
	// lets the event engine skip pure-sweep cycles). The reference
	// stepper never reads NextEvent, so it never pays for estimate
	// work — the same principle that keeps the event scan lazy.
	eventDriven bool

	stats Stats
	now   dram.Cycle
}

// NewController builds a controller and its channel device.
func NewController(cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ch, err := dram.NewChannel(cfg.Spec)
	if err != nil {
		return nil, err
	}
	nb := cfg.Spec.Geometry.BanksPerChannel()
	c := &Controller{
		cfg:         cfg,
		ch:          ch,
		banks:       make([]bankQ, nb),
		readBanks:   newBankSet(nb),
		writeBanks:  newBankSet(nb),
		closeIntent: make([]bool, nb),
	}
	for r := 0; r < cfg.Spec.Geometry.Ranks; r++ {
		c.refresh = append(c.refresh, newRefreshEngine(cfg.Spec, cfg.Channel, r))
	}
	return c, nil
}

// Channel exposes the underlying DRAM channel (counts, occupancy).
func (c *Controller) Channel() *dram.Channel { return c.ch }

// Stats returns the controller counters.
func (c *Controller) Stats() Stats { return c.stats }

// ResetStats clears counters (after warm-up). Queue contents and DRAM
// state are preserved.
func (c *Controller) ResetStats() { c.stats = Stats{} }

// Mechanism returns the latency mechanism in use.
func (c *Controller) Mechanism() core.Mechanism { return c.cfg.Mechanism }

// QueuedReads returns the current read queue depth.
func (c *Controller) QueuedReads() int { return c.nReads }

// QueuedWrites returns the current write queue depth.
func (c *Controller) QueuedWrites() int { return c.nWrites }

// Pending reports whether any request is queued or awaiting completion.
func (c *Controller) Pending() bool {
	return c.nReads > 0 || c.nWrites > 0 || len(c.completions) > c.compHead
}

// bankIndex maps a request's coordinates to its bank queue index.
func (c *Controller) bankIndex(coord Coord) int {
	return coord.Rank*c.cfg.Spec.Geometry.Banks + coord.Bank
}

// EnqueueRead adds a read request; it reports false when the queue is
// full (the caller must retry later). The request's DRAM coordinates
// must be in range for the spec (the address mapper guarantees this).
func (c *Controller) EnqueueRead(req *Request) bool {
	if c.nReads >= c.cfg.ReadQueueCap {
		return false
	}
	var pt int64
	if c.cfg.Profiler != nil {
		pt = c.cfg.Profiler.Begin(prof.Enqueue)
		defer c.cfg.Profiler.End(prof.Enqueue, pt, int64(c.now))
	}
	c.settleSweep()
	req.Arrive = c.now
	req.seq = c.nextSeq
	c.nextSeq++
	idx := c.bankIndex(req.Coord)
	c.banks[idx].reads.push(req)
	c.readBanks.set(idx)
	c.nReads++
	c.unclassReads = append(c.unclassReads, req)
	c.dirty = true
	c.schedEpoch++
	if c.cfg.Probe != nil {
		bq := &c.banks[idx]
		c.cfg.Probe.ObserveEnqueue(req.Coord, true,
			len(bq.reads.q), len(bq.writes.q), c.nReads, c.nWrites, c.now)
	}
	return true
}

// EnqueueWrite adds a write request; it reports false when full.
func (c *Controller) EnqueueWrite(req *Request) bool {
	if c.nWrites >= c.cfg.WriteQueueCap {
		return false
	}
	var pt int64
	if c.cfg.Profiler != nil {
		pt = c.cfg.Profiler.Begin(prof.Enqueue)
		defer c.cfg.Profiler.End(prof.Enqueue, pt, int64(c.now))
	}
	c.settleSweep()
	req.Arrive = c.now
	req.seq = c.nextSeq
	c.nextSeq++
	idx := c.bankIndex(req.Coord)
	c.banks[idx].writes.push(req)
	c.writeBanks.set(idx)
	c.nWrites++
	c.unclassWrites = append(c.unclassWrites, req)
	c.dirty = true
	c.schedEpoch++
	if c.cfg.Probe != nil {
		bq := &c.banks[idx]
		c.cfg.Probe.ObserveEnqueue(req.Coord, false,
			len(bq.reads.q), len(bq.writes.q), c.nReads, c.nWrites, c.now)
	}
	return true
}

// settleSweep resolves a deferred classification sweep against an
// arriving request. An arrival is first seen by the reference stepper's
// walk at bus cycle now+1. If that is at or before the deferred sweep's
// tick, the sweep as a separate action never happens in the reference —
// its walk covers the old requests itself (an issue it enables is
// younger than all of them, so the cut still classifies every old
// open-row hit, and the FCFS pass or later ticks handle the rest
// exactly as this engine's forced tick will): cancel. If the arrival
// lands after the sweep's tick, the reference already swept, against
// state that has not changed since: perform it now, before the new
// request joins the lists.
func (c *Controller) settleSweep() {
	if !c.pendingSweep {
		return
	}
	c.pendingSweep = false
	if c.now >= c.pendingSweepAt {
		c.sweepClassify(!nextDrain(c.drain, c.nReads, c.nWrites,
			c.cfg.WriteHigh, c.cfg.WriteLow))
	}
}

// SyncClock advances the controller's notion of "now" — the arrival
// stamp given to enqueued requests — without running the scheduler.
// The event-driven engine calls it before the core phase of every
// executed cycle so arrival stamps match the reference stepper, whose
// per-bus-cycle Tick keeps the clock current even when nothing issues.
func (c *Controller) SyncClock(bus dram.Cycle) {
	if bus > c.now {
		c.now = bus
	}
}

// NextEvent returns a lower bound on the next bus cycle at which a Tick
// could change observable state: deliver a completion, issue a command,
// or classify a request. Ticking the controller at (or before) every
// cycle NextEvent reports, instead of every cycle, is behaviourally
// identical to the reference stepper — intermediate ticks are no-ops.
// Enqueues invalidate the cached estimate: new work may be issuable on
// the very next bus cycle.
func (c *Controller) NextEvent() dram.Cycle {
	if c.dirty {
		return c.now + 1
	}
	if c.needScan {
		c.nextWake = c.nextEventScan(c.scanFrom)
		c.needScan = false
	}
	return c.nextWake
}

// SetEventDriven declares that the caller schedules ticks through
// NextEvent (the event-driven engine). It enables the exact
// next-issue-time bookkeeping and the eager classification sweep that
// let the engine skip cycles in which the reference stepper's walk only
// classifies; a per-cycle (stepper) driver leaves it off and pays
// nothing for estimates it never reads.
func (c *Controller) SetEventDriven(v bool) { c.eventDriven = v }

// NeedsTick reports whether a Tick at bus cycle bus could change state.
// The event-driven engine consults it on executed cycles to skip
// provably idle controller ticks; skipped ticks are exactly the ones
// NextEvent's contract already declares no-ops.
func (c *Controller) NeedsTick(bus dram.Cycle) bool {
	return c.dirty || c.NextEvent() <= bus
}

// Tick advances the controller by one cycle: delivers finished reads,
// then issues at most one command on the channel's command bus. It
// reports whether any state changed (a completion delivered, a command
// issued, or a refresh owning the channel) — informational for callers
// and tests; the event-driven engine schedules through NextEvent,
// which Tick refreshes as a side effect.
func (c *Controller) Tick(now dram.Cycle) bool {
	c.now = now
	if c.pendingSweep {
		// Stand in for the stepper's deferred classification sweep
		// before anything else this tick can change: no arrival
		// canceled it, so queues and bank state are exactly as that
		// tick would have seen them.
		c.pendingSweep = false
		c.sweepClassify(!nextDrain(c.drain, c.nReads, c.nWrites,
			c.cfg.WriteHigh, c.cfg.WriteLow))
	}
	arrived := c.dirty
	c.dirty = false
	c.cfg.Mechanism.Tick(now)
	progressed := c.deliverCompletions(now)

	issued := false
	if busy, refIssued := c.serviceRefresh(now); busy {
		// Refresh has the channel: either a command issued or the rank
		// is mid-preparation waiting on a timing expiry.
		progressed = true
		issued = refIssued
	} else {
		c.updateDrainMode()
		switch {
		case c.issueTimeEpoch == c.schedEpoch+1 && c.issueTimeCache > now:
			// The cached exact next-issue time is ahead and still valid
			// (no issue or arrival since it was computed, and computing
			// it implies the classification walks have already swept
			// everything pending): nothing to schedule this cycle.
			// Delivery-only ticks take this path.
		default:
			issued = c.runScheduler(now)
		}
		progressed = progressed || issued
	}
	if issued {
		c.schedEpoch++
	}
	// Only an issued command can force the very next cycle to run, and
	// only while work remains queued: an issue mutates bank/bus state
	// and cuts the scheduler's pick short, so a request behind the issue
	// point may already be issuable at now+1. The exact next-issue time,
	// read off the per-bank registers, settles it: at or before now+1,
	// the next cycle must execute; later, the only thing the reference
	// stepper's intervening ticks do is classify — that sweep is
	// performed here against the identical bank state, and the wake-up
	// comes from the event scan. Completion delivery and
	// refresh-preparation stalls never force now+1 — but they do
	// invalidate the cached estimate. Fresh arrivals (dirty) always
	// force now+1.
	wake := c.dirty
	if issued && !wake {
		work := c.nReads > 0 || c.nWrites > 0 || c.closeIntents > 0
		pendingRefresh := false
		for _, eng := range c.refresh {
			// A refresh due at now+1 blocks the stepper's next
			// scheduling pass before it can classify: the eager sweep
			// below would run against pre-refresh bank state while the
			// stepper classifies only after the refresh's forced
			// precharges. Execute the next cycle instead.
			if eng.pending || now+1 >= eng.nextDue {
				pendingRefresh = true
				break
			}
		}
		switch {
		case !work && !pendingRefresh:
		case !c.eventDriven || pendingRefresh:
			// The stepper ticks every cycle regardless; a mid-stall
			// refresh re-evaluates its preparation every cycle.
			wake = true
		case c.nextIssueTime() <= now+1:
			wake = true
		default:
			// No command can issue at now+1: the stepper's next ticks
			// only classify until the computed issue time. Defer that
			// sweep to this controller's next tick (or cancel it on an
			// arrival) and let the event scan place the wake-up.
			c.pendingSweep = true
			c.pendingSweepAt = now + 1
		}
	}
	switch {
	case wake:
		c.nextWake = now + 1
		c.needScan = false
	case progressed || arrived || c.needScan || c.nextWake <= now:
		// The estimate is stale: state changed (an issue, a delivery, a
		// refresh owning the channel), an arrival was consumed (the
		// queues changed since the estimate was computed, which may have
		// been while idle, without the timing-expiry bound), a scan was
		// already owed, or the cached bound has been reached. Recompute
		// lazily from this cycle.
		c.needScan = true
		c.scanFrom = now
	default:
		// Nothing happened and the cached estimate still lies in the
		// future. Registers, queues and completions are exactly as the
		// estimate saw them, so it remains a valid bound: keep it. This
		// makes the no-op ticks the event engine cannot avoid (cycles
		// executed for other components) O(1) for the controller.
	}
	return progressed
}

// nextEventScan computes NextEvent the slow way, after a tick in which
// something happened (or the previous estimate expired): the next
// completion, refresh deadline, the exact next-issue time read off the
// bank registers, or — during a refresh-preparation stall — the
// channel's earliest constraint expiry (the stall re-evaluates at every
// register flip of the refreshing rank).
func (c *Controller) nextEventScan(now dram.Cycle) dram.Cycle {
	next := dram.NoEvent
	add := func(t dram.Cycle) {
		if t > now && t < next {
			next = t
		}
	}
	if len(c.completions) > c.compHead {
		add(c.completions[c.compHead].at)
	}
	stalled := false
	for _, eng := range c.refresh {
		add(eng.nextDue)
		if eng.pending {
			stalled = true
		}
	}
	if stalled {
		// A due refresh owns the channel: normal scheduling is blocked
		// and the preparation (forced precharges, then REF) advances at
		// the next register expiry.
		add(c.ch.NextTimingExpiry(now))
		return next
	}
	if c.nReads > 0 || c.nWrites > 0 || c.closeIntents > 0 {
		add(c.nextIssueTime())
	}
	return next
}

func (c *Controller) deliverCompletions(now dram.Cycle) bool {
	delivered := false
	if c.cfg.Profiler != nil && c.compHead < len(c.completions) && c.completions[c.compHead].at <= now {
		pt := c.cfg.Profiler.Begin(prof.Complete)
		defer c.cfg.Profiler.End(prof.Complete, pt, int64(now))
	}
	for c.compHead < len(c.completions) && c.completions[c.compHead].at <= now {
		delivered = true
		comp := c.completions[c.compHead]
		c.completions[c.compHead].req = nil
		c.compHead++
		lat := uint64(comp.at - comp.req.Arrive)
		c.stats.ReadLatencySum += lat
		bucket := lat / latencyBucketWidth
		if bucket >= latencyBuckets {
			bucket = latencyBuckets - 1
		}
		c.stats.ReadLatencyHist[bucket]++
		if comp.req.OnComplete != nil {
			comp.req.OnComplete(comp.at)
		}
	}
	if delivered && c.compHead == len(c.completions) {
		c.completions = c.completions[:0]
		c.compHead = 0
	}
	return delivered
}

// markCloseIntent flags (rank, bank) for a closed-row precharge.
func (c *Controller) markCloseIntent(idx int) {
	if !c.closeIntent[idx] {
		c.closeIntent[idx] = true
		c.closeIntents++
	}
}

// clearCloseIntent drops the flag on (rank, bank).
func (c *Controller) clearCloseIntent(idx int) {
	if c.closeIntent[idx] {
		c.closeIntent[idx] = false
		c.closeIntents--
	}
}

// serviceRefresh gives absolute priority to due refreshes: it closes open
// banks of the rank and issues REF when possible. busy reports that a
// due refresh owns the channel this cycle (blocking normal scheduling);
// issued distinguishes an actual REF/PRE issue from a pure stall
// waiting on a timing expiry.
func (c *Controller) serviceRefresh(now dram.Cycle) (busy, issued bool) {
	for rank, eng := range c.refresh {
		if !eng.due(now) {
			continue
		}
		if c.ch.CanIssue(dram.Refresh(rank), now) {
			c.ch.Issue(dram.Refresh(rank), now)
			eng.issued(now)
			c.stats.Refreshes++
			return true, true
		}
		// Close any open bank so REF can issue.
		for b := 0; b < c.cfg.Spec.Geometry.Banks; b++ {
			row, open := c.ch.OpenRow(rank, b)
			if !open {
				continue
			}
			pre := dram.Pre(rank, b)
			if c.ch.CanIssue(pre, now) {
				c.issuePrecharge(pre, row, now)
				return true, true
			}
		}
		// Refresh pending but nothing issuable yet (e.g. tRAS running):
		// stall this rank. With a single rank per channel this blocks
		// the channel, which matches real controllers' refresh priority.
		return true, false
	}
	return false, false
}

func (c *Controller) updateDrainMode() {
	c.drain = nextDrain(c.drain, c.nReads, c.nWrites, c.cfg.WriteHigh, c.cfg.WriteLow)
}

// nextDrain is updateDrainMode as a pure function, so the next cycle's
// mode can be projected without mutating (see nextIssueTime).
func nextDrain(cur bool, reads, writes, high, low int) bool {
	switch {
	case writes >= high:
		return true
	case cur && writes <= low:
		return false
	case !cur && reads == 0 && writes > 0:
		// Opportunistic drain when there is nothing else to do.
		return true
	case cur && writes == 0:
		return false
	}
	return cur
}

// activeSet returns the bank bitmask of the queue kind being serviced.
func (c *Controller) activeSet(isRead bool) *bankSet {
	if isRead {
		return &c.readBanks
	}
	return &c.writeBanks
}

// runScheduler performs one cycle of FR-FCFS scheduling: selection,
// the classification the reference walk interleaves with it, and at
// most one command issue. It reports whether a command issued.
func (c *Controller) runScheduler(now dram.Cycle) bool {
	issued := false
	isRead := !c.drain
	pt := c.cfg.Profiler.Begin(prof.Select)
	sel := c.schedule(isRead, now)
	c.cfg.Profiler.End(prof.Select, pt, int64(now))
	// The first-ready pass classifies the open-row hits up to its
	// issue point whether or not it issues, exactly like the
	// reference walk (which visited every request up to the cut).
	cut := noSeq
	if sel.hit != nil {
		cut = sel.hit.seq
	}
	c.classifyHits(isRead, cut)
	switch {
	case sel.hit != nil:
		c.issueColumnAt(sel.hit, sel.hitIdx, sel.hitPos, isRead, now)
		issued = true
	case c.cfg.RowPolicy == ClosedRow && c.issueCloseIntent(now):
		issued = true
	default:
		// FCFS pass: classify conflicts and misses up to its issue
		// point, then issue the pick if there is one.
		cut = noSeq
		if sel.old != nil {
			cut = sel.old.seq
		}
		c.classifyRest(isRead, cut)
		switch {
		case sel.old == nil:
		case sel.oldPre:
			c.issuePrecharge(dram.Pre(sel.old.Coord.Rank, sel.old.Coord.Bank), sel.oldRow, now)
			issued = true
		default:
			if !c.issueActivate(sel.old, now) {
				panic("memctrl: selected activate became illegal")
			}
			issued = true
		}
	}
	return issued
}

// sched is one cycle's FR-FCFS selection: the first-ready pick (the
// oldest open-row hit whose column is issuable) and the FCFS pick (the
// oldest request needing its bank's row changed whose command is
// issuable), computed side-effect-free in a single pass over the banks
// with queued work.
type sched struct {
	hit    *Request // first-ready pick, nil if none
	hitIdx int
	hitPos int
	old    *Request // FCFS pick, nil if none
	oldPre bool     // precharge (conflict) vs activate (miss)
	oldRow int      // open row the precharge closes
}

// schedule runs both selection passes over the active banks in one
// loop. Each bank contributes at most one candidate per pass — the
// oldest open-row hit, and the oldest row-changer (or the queue head of
// a closed bank) — and each pick is the minimum arrival sequence among
// banks whose command is legal this cycle. Identical decisions to the
// reference flat-queue walk: legality at a fixed cycle does not depend
// on walk order, so first-legal-in-age-order equals min-seq-among-legal.
// Rank-level gates (tCCD/turnaround/bus for columns, tRRD/tFAW/refresh
// for activates) are evaluated once per touched rank and prune whole
// banks.
func (c *Controller) schedule(isRead bool, now dram.Cycle) sched {
	set := c.activeSet(isRead)
	geomBanks := c.cfg.Spec.Geometry.Banks
	var colReady, colKnown, actReady, actKnown [maxRanks]bool
	var out sched
	hitSeq := noSeq
	// First-ready pass: the oldest request on an open row whose column
	// is issuable. The rank gate is checked before the bank's queue is
	// touched — it is closed on most cycles between bursts.
	for w, word := range set.words {
		for word != 0 {
			bit := bits.TrailingZeros64(word)
			word &^= 1 << uint(bit)
			idx := w*64 + bit
			rank := idx / geomBanks
			bank := idx % geomBanks
			if !colKnown[rank] {
				colKnown[rank] = true
				colReady[rank] = c.ch.RankColumnReady(rank, isRead, now)
			}
			if !colReady[rank] {
				continue
			}
			row, open := c.ch.OpenRow(rank, bank)
			if !open {
				continue
			}
			req, pos := c.banks[idx].kind(isRead).oldestRowHit(row)
			if req == nil || req.seq >= hitSeq {
				continue
			}
			if c.ch.BankColumnIssuable(rank, bank, isRead, now) {
				out.hit, hitSeq, out.hitIdx, out.hitPos = req, req.seq, idx, pos
			}
		}
	}
	if out.hit != nil {
		return out
	}
	// FCFS pass, only when no column hit issues: the oldest request
	// needing its bank's row changed.
	oldSeq := noSeq
	for w, word := range set.words {
		for word != 0 {
			bit := bits.TrailingZeros64(word)
			word &^= 1 << uint(bit)
			idx := w*64 + bit
			rank := idx / geomBanks
			bank := idx % geomBanks
			kq := c.banks[idx].kind(isRead)
			row, open := c.ch.OpenRow(rank, bank)
			if !open {
				// Miss: the head request wants an ACT. ACT legality is
				// row-independent, so only the head can be the pick.
				cand := kq.q[0]
				if cand.seq >= oldSeq {
					continue
				}
				if !actKnown[rank] {
					actKnown[rank] = true
					actReady[rank] = c.ch.RankActReady(rank, now)
				}
				if actReady[rank] && c.ch.BankActIssuable(rank, bank, now) {
					out.old, oldSeq, out.oldPre = cand, cand.seq, false
				}
				continue
			}
			// Conflict: close the row on behalf of the oldest request
			// wanting a different one.
			if cand := kq.oldestRowChanger(row); cand != nil && cand.seq < oldSeq {
				if c.ch.PreIssuable(rank, bank, now) && c.preUseful(rank, bank, now) {
					out.old, oldSeq, out.oldPre, out.oldRow = cand, cand.seq, true, row
				}
			}
		}
	}
	return out
}

// classifyHits counts the open-row hits among the not-yet-classified
// requests with arrival sequence <= cut, exactly as the reference
// flat-queue walk did: it visited every queued request up to (and
// including) the issue point each cycle, counting those whose row was
// open. Non-hits stay unclassified — the walk's second pass (or a later
// cycle) counts them.
func (c *Controller) classifyHits(isRead bool, cut uint64) {
	lp := &c.unclassReads
	if !isRead {
		lp = &c.unclassWrites
	}
	l := *lp
	if len(l) == 0 || l[0].seq > cut {
		return
	}
	out := l[:0]
	i := 0
	for ; i < len(l); i++ {
		req := l[i]
		if req.seq > cut {
			break
		}
		row, open := c.ch.OpenRow(req.Coord.Rank, req.Coord.Bank)
		if open && row == req.Coord.Row {
			c.classify(req, row, open)
			continue
		}
		out = append(out, req)
	}
	out = append(out, l[i:]...)
	for j := len(out); j < len(l); j++ {
		l[j] = nil
	}
	*lp = out
}

// classifyRest counts conflicts and misses among the not-yet-classified
// requests with arrival sequence <= cut, mirroring the reference walk's
// second (FCFS) pass. Open-row hits cannot appear here: this runs only
// when the first-ready pass issued nothing, which classified every
// current hit.
func (c *Controller) classifyRest(isRead bool, cut uint64) {
	lp := &c.unclassReads
	if !isRead {
		lp = &c.unclassWrites
	}
	l := *lp
	if len(l) == 0 || l[0].seq > cut {
		return
	}
	out := l[:0]
	i := 0
	for ; i < len(l); i++ {
		req := l[i]
		if req.seq > cut {
			break
		}
		row, open := c.ch.OpenRow(req.Coord.Rank, req.Coord.Bank)
		if open && row == req.Coord.Row {
			out = append(out, req)
			continue
		}
		c.classify(req, row, open)
	}
	out = append(out, l[i:]...)
	for j := len(out); j < len(l); j++ {
		l[j] = nil
	}
	*lp = out
}

// issueCloseIntent precharges banks the closed-row policy marked, unless
// a queued request now wants the open row again.
func (c *Controller) issueCloseIntent(now dram.Cycle) bool {
	if c.closeIntents == 0 {
		return false
	}
	for idx, want := range c.closeIntent {
		if !want {
			continue
		}
		rank := idx / c.cfg.Spec.Geometry.Banks
		bankID := idx % c.cfg.Spec.Geometry.Banks
		row, open := c.ch.OpenRow(rank, bankID)
		if !open {
			c.clearCloseIntent(idx)
			continue
		}
		if c.anyPendingFor(rank, bankID, row) {
			c.clearCloseIntent(idx)
			continue
		}
		pre := dram.Pre(rank, bankID)
		if c.ch.CanIssue(pre, now) && c.preUseful(rank, bankID, now) {
			c.clearCloseIntent(idx)
			c.issuePrecharge(pre, row, now)
			return true
		}
	}
	return false
}

// nextIssueTime returns the exact earliest cycle at which the
// scheduler could issue a command, read off the per-bank next-allowed
// registers: for every bank with queued work of the (projected) active
// kind, the ready time of its first-ready candidate (oldest open-row
// hit) and its FCFS candidate (conflict precharge or miss activate),
// plus any closed-row precharge intents. Exact because nothing the
// computation depends on — queues, bank states, registers, drain mode —
// can change before that cycle without an executed event (arrivals mark
// the controller dirty, which overrides the estimate).
func (c *Controller) nextIssueTime() dram.Cycle {
	if c.issueTimeEpoch == c.schedEpoch+1 {
		return c.issueTimeCache
	}
	v := c.computeNextIssueTime()
	c.issueTimeEpoch = c.schedEpoch + 1
	c.issueTimeCache = v
	return v
}

func (c *Controller) computeNextIssueTime() dram.Cycle {
	drain := nextDrain(c.drain, c.nReads, c.nWrites, c.cfg.WriteHigh, c.cfg.WriteLow)
	isRead := !drain
	set := c.activeSet(isRead)
	geomBanks := c.cfg.Spec.Geometry.Banks
	rp := dram.Cycle(c.cfg.Spec.Timing.RP)
	at := dram.NoEvent
	for w, word := range set.words {
		for word != 0 {
			bit := bits.TrailingZeros64(word)
			word &^= 1 << uint(bit)
			idx := w*64 + bit
			rank := idx / geomBanks
			bank := idx % geomBanks
			kq := c.banks[idx].kind(isRead)
			row, open := c.ch.OpenRow(rank, bank)
			if !open {
				if t := c.ch.ActIssueAt(rank, bank); t < at {
					at = t
				}
				continue
			}
			if hit, _ := kq.oldestRowHit(row); hit != nil {
				if t := c.ch.ColumnIssueAt(rank, bank, isRead); t < at {
					at = t
				}
			}
			if kq.oldestRowChanger(row) != nil {
				// Conflict precharge: legality plus the preUseful bound
				// (a PRE earlier than tRP before the bank's ACT window
				// cannot help).
				t := c.ch.PreIssueAt(rank, bank)
				if u := c.ch.EarliestActivate(rank, bank) - rp; u > t {
					t = u
				}
				if t < at {
					at = t
				}
			}
		}
	}
	if c.cfg.RowPolicy == ClosedRow && c.closeIntents > 0 {
		for idx, want := range c.closeIntent {
			if !want {
				continue
			}
			rank := idx / geomBanks
			bank := idx % geomBanks
			row, open := c.ch.OpenRow(rank, bank)
			if !open || c.anyPendingFor(rank, bank, row) {
				continue // will be cleared, not issued
			}
			t := c.ch.PreIssueAt(rank, bank)
			if u := c.ch.EarliestActivate(rank, bank) - rp; u > t {
				t = u
			}
			if t < at {
				at = t
			}
		}
	}
	return at
}

// sweepClassify classifies every not-yet-classified request of the
// given kind against current bank state. It stands in for the reference
// stepper's next tick when that tick provably issues nothing: such a
// tick's two walks classify the whole active queue (no issue point cuts
// them short), and since no command issues in between, the bank states
// they observe are identical to the current ones.
func (c *Controller) sweepClassify(isRead bool) {
	lp := &c.unclassReads
	if !isRead {
		lp = &c.unclassWrites
	}
	l := *lp
	for i, req := range l {
		row, open := c.ch.OpenRow(req.Coord.Rank, req.Coord.Bank)
		c.classify(req, row, open)
		l[i] = nil
	}
	*lp = l[:0]
}

// preUseful reports whether precharging (rank, bank) now can shorten the
// next activation. Precharging earlier than tRP before the bank's
// same-bank ACT bound only sacrifices potential row hits: the reopen
// cannot start sooner anyway.
func (c *Controller) preUseful(rank, bankID int, now dram.Cycle) bool {
	return now+dram.Cycle(c.cfg.Spec.Timing.RP) >= c.ch.EarliestActivate(rank, bankID)
}

// classify counts the row-buffer outcome of a request exactly once, at
// the moment the scheduler first processes it.
func (c *Controller) classify(req *Request, openRow int, open bool) {
	if req.classified {
		return
	}
	req.classified = true
	var outcome RowOutcome
	switch {
	case open && openRow == req.Coord.Row:
		c.stats.RowHits++
		outcome = RowHit
	case open:
		c.stats.RowConflicts++
		outcome = RowConflict
	default:
		c.stats.RowMisses++
		outcome = RowMiss
	}
	if c.cfg.Probe != nil {
		c.cfg.Probe.ObserveRowOutcome(req.Coord, outcome, req.Arrive)
	}
}

func (c *Controller) issueActivate(req *Request, now dram.Cycle) bool {
	key := core.MakeRowKey(req.Coord.Rank, req.Coord.Bank, req.Coord.Row)
	age := c.refresh[req.Coord.Rank].ageOf(req.Coord.Row, now)
	// Probe legality with the spec class first: the mechanism must only
	// observe activations that actually issue.
	probe := dram.Act(req.Coord.Rank, req.Coord.Bank, req.Coord.Row, c.cfg.Spec.Timing.DefaultClass())
	if !c.ch.CanIssue(probe, now) {
		return false
	}
	class := c.cfg.Mechanism.OnActivate(key, now, age)
	fast := class.RCD < c.cfg.Spec.Timing.RCD || class.RAS < c.cfg.Spec.Timing.RAS
	c.ch.Issue(dram.Act(req.Coord.Rank, req.Coord.Bank, req.Coord.Row, class), now)
	c.stats.Activations++
	if fast {
		c.stats.FastActivations++
	}
	if c.cfg.Observer != nil {
		c.cfg.Observer.ObserveActivate(c.cfg.Channel, key, now, age, fast)
	}
	return true
}

func (c *Controller) issuePrecharge(pre dram.Command, row int, now dram.Cycle) {
	c.ch.Issue(pre, now)
	key := core.MakeRowKey(pre.Rank, pre.Bank, row)
	c.cfg.Mechanism.OnPrecharge(key, now)
	if c.cfg.Observer != nil {
		c.cfg.Observer.ObservePrecharge(c.cfg.Channel, key, now)
	}
}

// issueColumnAt issues the RD/WR serving req (legality already checked
// by the selection pass) and dequeues it.
func (c *Controller) issueColumnAt(req *Request, idx, pos int, isRead bool, now dram.Cycle) {
	if req.Kind == ReadReq {
		c.ch.Issue(dram.Read(req.Coord.Rank, req.Coord.Bank, req.Coord.Col), now)
		c.completions = append(c.completions, completion{at: c.ch.ReadDataAt(now), req: req})
		c.stats.ReadsServed++
	} else {
		c.ch.Issue(dram.Write(req.Coord.Rank, req.Coord.Bank, req.Coord.Col), now)
		c.stats.WritesServed++
		if req.OnComplete != nil {
			req.OnComplete(now)
		}
	}
	c.banks[idx].kind(isRead).remove(pos)
	if isRead {
		c.nReads--
		if len(c.banks[idx].reads.q) == 0 {
			c.readBanks.clear(idx)
		}
	} else {
		c.nWrites--
		if len(c.banks[idx].writes.q) == 0 {
			c.writeBanks.clear(idx)
		}
	}
	if c.cfg.RowPolicy == ClosedRow &&
		!c.anyPendingFor(req.Coord.Rank, req.Coord.Bank, req.Coord.Row) {
		c.markCloseIntent(idx)
	}
}

// anyPendingFor reports whether any queued request targets (rank, bank,
// row) — consulted by the closed-row policy. Only the one bank's queues
// need scanning.
func (c *Controller) anyPendingFor(rank, bankID, row int) bool {
	bq := &c.banks[rank*c.cfg.Spec.Geometry.Banks+bankID]
	return bq.reads.anyFor(row) || bq.writes.anyFor(row)
}

// FinishSweeps applies a still-pending deferred classification sweep at
// the end of a measurement window. lastBus is the last bus cycle the
// reference stepper would have ticked (it ticks every bus cycle of the
// window): a sweep deferred past it never happens in the reference
// either and is discarded, keeping end-of-run classification counters
// bit-identical.
func (c *Controller) FinishSweeps(lastBus dram.Cycle) {
	if !c.pendingSweep {
		return
	}
	c.pendingSweep = false
	if lastBus >= c.pendingSweepAt {
		c.sweepClassify(!nextDrain(c.drain, c.nReads, c.nWrites,
			c.cfg.WriteHigh, c.cfg.WriteLow))
	}
}

// RefreshAge exposes the refresh engine's age for a row (tests, tools).
func (c *Controller) RefreshAge(rank, row int, now dram.Cycle) dram.Cycle {
	return c.refresh[rank].ageOf(row, now)
}
