package memctrl

import (
	"fmt"

	"repro/internal/dram"
)

// RequestKind distinguishes reads from writes.
type RequestKind uint8

const (
	// ReadReq is a demand read (LLC miss fill).
	ReadReq RequestKind = iota
	// WriteReq is a writeback.
	WriteReq
)

// String implements fmt.Stringer.
func (k RequestKind) String() string {
	if k == WriteReq {
		return "write"
	}
	return "read"
}

// Request is one memory request as seen by the controller.
type Request struct {
	Kind   RequestKind
	Addr   uint64
	Coord  Coord
	CoreID int

	// Arrive is the controller cycle the request was enqueued.
	Arrive dram.Cycle

	// OnComplete, if non-nil, is invoked when the request's data burst
	// finishes (reads) or its WR command issues (writes).
	OnComplete func(now dram.Cycle)

	// seq is the controller-assigned arrival sequence number; FR-FCFS
	// age order across the per-bank queues is recovered from it.
	seq uint64

	classified bool // row hit/miss/conflict already counted
}

// Reset prepares a recycled Request for a new use, clearing every field
// the controller reads or mutates except OnComplete (pooled callers
// bind that once for the request's lifetime).
func (r *Request) Reset(kind RequestKind, addr uint64, coord Coord, coreID int) {
	r.Kind = kind
	r.Addr = addr
	r.Coord = coord
	r.CoreID = coreID
	r.Arrive = 0
	r.seq = 0
	r.classified = false
}

// String implements fmt.Stringer.
func (r *Request) String() string {
	return fmt.Sprintf("%s %#x @%s core%d", r.Kind, r.Addr, r.Coord, r.CoreID)
}

// RowPolicy selects the row-buffer management policy.
type RowPolicy uint8

const (
	// OpenRow keeps a row open until a conflicting request is scheduled
	// (paper: best for single-core).
	OpenRow RowPolicy = iota
	// ClosedRow proactively precharges once no queued request targets
	// the open row (paper: best for multi-core).
	ClosedRow
)

// String implements fmt.Stringer.
func (p RowPolicy) String() string {
	if p == ClosedRow {
		return "closed-row"
	}
	return "open-row"
}
