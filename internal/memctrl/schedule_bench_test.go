package memctrl

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dram"
)

// BenchmarkControllerSchedule measures the controller's per-cycle
// scheduling cost on a sustained random-row request stream: the queue
// stays populated (row misses, conflicts, and hits mixed over all
// banks), so every Tick runs the selection machinery — the path that
// bounds simulator throughput on memory-intensive workloads.
func BenchmarkControllerSchedule(b *testing.B) {
	spec := dram.DDR31600(1)
	ctrl, err := NewController(Config{
		Spec:          spec,
		Channel:       0,
		ReadQueueCap:  64,
		WriteQueueCap: 64,
		RowPolicy:     OpenRow,
		WriteHigh:     48,
		WriteLow:      16,
		Mechanism:     core.NewBaseline(spec.Timing.DefaultClass()),
	})
	if err != nil {
		b.Fatal(err)
	}
	rng := uint64(7)
	next := func(mod int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(mod))
	}
	inFlight := 0
	newReq := func() *Request {
		req := &Request{
			Kind:  ReadReq,
			Coord: Coord{Bank: next(8), Row: next(64), Col: next(128)},
		}
		req.OnComplete = func(dram.Cycle) { inFlight-- }
		return req
	}
	b.ResetTimer()
	now := dram.Cycle(0)
	for i := 0; i < b.N; i++ {
		if inFlight < 24 {
			if ctrl.EnqueueRead(newReq()) {
				inFlight++
			}
		}
		ctrl.Tick(now)
		now++
	}
}
