package memctrl

import (
	"testing"

	"repro/internal/dram"
)

// fuzzGeometries are the shapes the fuzz targets exercise: the two real
// spec geometries plus a deliberately skewed one.
func fuzzGeometries() []dram.Geometry {
	return []dram.Geometry{
		dram.DDR31600(1).Geometry,
		dram.DDR31600(4).Geometry,
		{Channels: 2, Ranks: 2, Banks: 8, Rows: 1 << 15, Columns: 128, LineBytes: 64},
	}
}

// fuzzOrders covers distinct interleavings of the five fields.
var fuzzOrders = []string{"RoBaRaCoCh", "ChRaBaRoCo", "RoCoBaRaCh", "BaRoRaCoCh"}

// FuzzBitSliceMapperRoundTrip checks Map/Unmap are inverse bijections
// over the addressable range: Unmap(Map(addr)) must reproduce the
// line-aligned address, and Map(Unmap(coord)) must reproduce any
// in-range coordinate. The mapper underpins every simulated access —
// a collision would silently alias two lines onto one DRAM location.
func FuzzBitSliceMapperRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint8(0), uint8(0))
	f.Add(uint64(0xdeadbeef), uint8(1), uint8(2))
	f.Add(^uint64(0), uint8(2), uint8(3))
	f.Fuzz(func(t *testing.T, addr uint64, geomSel, orderSel uint8) {
		geom := fuzzGeometries()[int(geomSel)%len(fuzzGeometries())]
		order := fuzzOrders[int(orderSel)%len(fuzzOrders)]
		m, err := NewBitSliceMapper(geom, order)
		if err != nil {
			t.Fatalf("mapper %v/%s: %v", geom, order, err)
		}
		// Clamp into the addressable range and align to a line, as the
		// simulator does before mapping.
		addr &= geom.TotalBytes() - 1
		line := addr &^ uint64(geom.LineBytes-1)

		c := m.Map(line)
		if c.Channel < 0 || c.Channel >= geom.Channels ||
			c.Rank < 0 || c.Rank >= geom.Ranks ||
			c.Bank < 0 || c.Bank >= geom.Banks ||
			c.Row < 0 || c.Row >= geom.Rows ||
			c.Col < 0 || c.Col >= geom.Columns {
			t.Fatalf("Map(%#x) out of range: %v (geom %+v)", line, c, geom)
		}
		if back := m.Unmap(c); back != line {
			t.Fatalf("Unmap(Map(%#x)) = %#x (order %s)", line, back, order)
		}

		// Reverse direction: reinterpret the address bits as a coord.
		c2 := Coord{
			Channel: int(addr) % geom.Channels,
			Rank:    int(addr>>8) % geom.Ranks,
			Bank:    int(addr>>16) % geom.Banks,
			Row:     int(addr>>24) % geom.Rows,
			Col:     int(addr>>44) % geom.Columns,
		}
		if got := m.Map(m.Unmap(c2)); got != c2 {
			t.Fatalf("Map(Unmap(%v)) = %v (order %s)", c2, got, order)
		}
	})
}

// FuzzBitSliceMapperOrders feeds arbitrary order strings to the parser:
// it must either reject them or build a mapper that round-trips.
func FuzzBitSliceMapperOrders(f *testing.F) {
	for _, o := range fuzzOrders {
		f.Add(o)
	}
	f.Add("RoRoRoRoRo")
	f.Add("XxYyZz")
	f.Add("")
	f.Fuzz(func(t *testing.T, order string) {
		geom := dram.DDR31600(2).Geometry
		m, err := NewBitSliceMapper(geom, order)
		if err != nil {
			return // rejected: fine
		}
		const probe = uint64(0x123456780)
		line := (probe & (geom.TotalBytes() - 1)) &^ uint64(geom.LineBytes-1)
		if back := m.Unmap(m.Map(line)); back != line {
			t.Fatalf("accepted order %q does not round-trip: %#x -> %#x", order, line, back)
		}
	})
}
