// Package memctrl implements the memory controller of the evaluated
// system (Table 1 of the paper): per-channel 64-entry read/write request
// queues, FR-FCFS scheduling, open-row and closed-row policies, a
// tREFI/tRFC refresh engine with row rotation, and the hook points where
// a latency mechanism (package core) chooses the timing class of every
// activation.
package memctrl

import (
	"fmt"
	"strings"

	"repro/internal/dram"
)

// Coord locates one cache line in the DRAM hierarchy.
type Coord struct {
	Channel int
	Rank    int
	Bank    int
	Row     int
	Col     int
}

// String implements fmt.Stringer.
func (c Coord) String() string {
	return fmt.Sprintf("ch%d/r%d/b%d/row%d/col%d", c.Channel, c.Rank, c.Bank, c.Row, c.Col)
}

// AddrMapper translates physical addresses to DRAM coordinates.
type AddrMapper interface {
	Map(addr uint64) Coord
}

// field identifiers for interleaving orders.
type mapField uint8

const (
	fieldChannel mapField = iota
	fieldRank
	fieldBank
	fieldRow
	fieldColumn
)

// BitSliceMapper assigns consecutive address-bit fields to DRAM
// coordinates according to an interleaving order such as "RoBaRaCoCh"
// (row in the most significant bits, then bank, rank, column, channel —
// Ramulator's default, which interleaves consecutive lines across
// channels and keeps a row's lines contiguous within a bank).
type BitSliceMapper struct {
	geom   dram.Geometry
	order  string
	fields []mapField // LSB-first
	bits   []uint     // bits per field, LSB-first
	shift  uint       // line-offset bits
}

// orderTokens maps the interleaving-order tokens to their fields. The
// table is package-level and ordered: campaigns construct a mapper per
// simulation, and rebuilding token/size maps on every call showed up as
// pure allocation churn (see BenchmarkNewBitSliceMapper).
var orderTokens = [...]struct {
	tok   string
	field mapField
}{
	{"Ro", fieldRow}, {"Ba", fieldBank}, {"Ra", fieldRank},
	{"Co", fieldColumn}, {"Ch", fieldChannel},
}

// fieldSizes returns the geometry's field sizes indexed by mapField.
func fieldSizes(geom dram.Geometry) [5]int {
	var s [5]int
	s[fieldChannel] = geom.Channels
	s[fieldRank] = geom.Ranks
	s[fieldBank] = geom.Banks
	s[fieldRow] = geom.Rows
	s[fieldColumn] = geom.Columns
	return s
}

// NewBitSliceMapper builds a mapper for geom. order names the fields
// MSB-first using the tokens Ro, Ba, Ra, Co, Ch; each must appear exactly
// once.
func NewBitSliceMapper(geom dram.Geometry, order string) (*BitSliceMapper, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	sizes := fieldSizes(geom)
	var msbFirst [5]mapField
	n := 0
	rest := order
	for rest != "" {
		matched := false
		for _, e := range orderTokens {
			if strings.HasPrefix(rest, e.tok) {
				if n == 5 {
					return nil, fmt.Errorf("memctrl: mapping order %q must name all five fields once", order)
				}
				msbFirst[n] = e.field
				n++
				rest = rest[len(e.tok):]
				matched = true
				break
			}
		}
		if !matched {
			return nil, fmt.Errorf("memctrl: bad mapping order %q at %q", order, rest)
		}
	}
	if n != 5 {
		return nil, fmt.Errorf("memctrl: mapping order %q must name all five fields once", order)
	}
	var seen [5]bool
	m := &BitSliceMapper{
		geom:   geom,
		order:  order,
		shift:  log2(uint64(geom.LineBytes)),
		fields: make([]mapField, 0, 5),
		bits:   make([]uint, 0, 5),
	}
	for i := 4; i >= 0; i-- { // reverse: LSB-first
		f := msbFirst[i]
		if seen[f] {
			return nil, fmt.Errorf("memctrl: mapping order %q repeats a field", order)
		}
		seen[f] = true
		m.fields = append(m.fields, f)
		m.bits = append(m.bits, log2(uint64(sizes[f])))
	}
	return m, nil
}

// MustMapper is NewBitSliceMapper that panics on error, for presets.
func MustMapper(geom dram.Geometry, order string) *BitSliceMapper {
	m, err := NewBitSliceMapper(geom, order)
	if err != nil {
		panic(err)
	}
	return m
}

// Order returns the interleaving order string.
func (m *BitSliceMapper) Order() string { return m.order }

// Map implements AddrMapper.
func (m *BitSliceMapper) Map(addr uint64) Coord {
	a := addr >> m.shift
	var c Coord
	for i, f := range m.fields {
		bits := m.bits[i]
		v := int(a & ((1 << bits) - 1))
		a >>= bits
		switch f {
		case fieldChannel:
			c.Channel = v
		case fieldRank:
			c.Rank = v
		case fieldBank:
			c.Bank = v
		case fieldRow:
			c.Row = v
		case fieldColumn:
			c.Col = v
		}
	}
	return c
}

// Unmap is the inverse of Map (used by tests and trace tools).
func (m *BitSliceMapper) Unmap(c Coord) uint64 {
	var a uint64
	for i := len(m.fields) - 1; i >= 0; i-- {
		bits := m.bits[i]
		var v uint64
		switch m.fields[i] {
		case fieldChannel:
			v = uint64(c.Channel)
		case fieldRank:
			v = uint64(c.Rank)
		case fieldBank:
			v = uint64(c.Bank)
		case fieldRow:
			v = uint64(c.Row)
		case fieldColumn:
			v = uint64(c.Col)
		}
		a = a<<bits | v
	}
	return a << m.shift
}

func log2(v uint64) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
