package memctrl

import "repro/internal/dram"

// refreshEngine issues one all-bank REF per rank every tREFI and tracks
// which rows each REF covered, so the controller can answer "how long ago
// was row R last refreshed" (needed by NUAT and by the Figure 3
// refresh-distance metric).
//
// DDR3 retention is 64 ms and tREFI is 7.8 us, so 8192 REF commands walk
// the whole bank, each covering Rows/8192 rows. The rows of one REF are
// chosen by *bit-reversing* the low row bits rather than contiguously:
// JEDEC leaves the internal order unspecified, and the bit-reversed
// order spreads the refresh ages of any contiguous footprint uniformly
// over [0, retention), so short simulation windows measure the same
// age distribution a full 64 ms period would (e.g. the paper's ~12%
// of activations within 8 ms of a refresh).
type refreshEngine struct {
	refi     dram.Cycle
	slots    int  // REFs per retention window (8192)
	perRef   int  // rows covered by one REF
	slotBits uint // log2(slots), for the bit-reversed row mapping

	nextDue dram.Cycle
	pending bool
	counter uint64 // REFs issued so far

	// lastRef[s] is the cycle at which refresh slot s was last executed.
	lastRef []dram.Cycle
}

// refreshSlots is the number of refresh commands per retention window
// mandated by DDR3 (8192 for 64 ms / 7.8 us).
const refreshSlots = 8192

func newRefreshEngine(spec dram.Spec, channel, rankIndex int) *refreshEngine {
	slots := refreshSlots
	rows := spec.Geometry.Rows
	perRef := rows / slots
	if perRef < 1 {
		perRef = 1
		slots = rows
	}
	e := &refreshEngine{
		refi:     dram.Cycle(spec.Timing.REFI),
		slots:    slots,
		perRef:   perRef,
		slotBits: uint(bitsFor(slots)),
		lastRef:  make([]dram.Cycle, slots),
	}
	// Stagger the first REF across ranks so they do not collide.
	e.nextDue = e.refi * dram.Cycle(rankIndex+1) / 2

	// Start the refresh walk at a pseudo-random slot so the walk order
	// has no correlation with application access order (the paper's
	// premise: "the refresh schedule has no correlation with the memory
	// access characteristics of the application"). Without this, a
	// sequential sweep starting at row 0 would track the refresh walk.
	e.counter = uint64(channel*2654435761+rankIndex*40503+12345) % uint64(slots)

	// Initialize slot history as if the walk had been running forever:
	// the slot about to be refreshed is the oldest (one full retention
	// window ago), the one just refreshed is the youngest.
	window := dram.Cycle(spec.Timing.RetentionWindow)
	start := int(e.counter)
	for i := 0; i < slots; i++ {
		s := (start + i) % slots
		// Slot s will be refreshed i REFs from now; it was last
		// refreshed window - i*tREFI ago.
		e.lastRef[s] = dram.Cycle(i)*e.refi - window + e.nextDue
	}
	return e
}

// due reports whether a refresh should be scheduled at cycle now.
func (e *refreshEngine) due(now dram.Cycle) bool {
	if now >= e.nextDue {
		e.pending = true
	}
	return e.pending
}

// issued records that the REF command was issued at cycle now.
func (e *refreshEngine) issued(now dram.Cycle) {
	slot := int(e.counter % uint64(e.slots))
	e.lastRef[slot] = now
	e.counter++
	e.nextDue += e.refi
	e.pending = false
}

// slotOf maps a row to its refresh slot: the low slot bits of the row
// index, bit-reversed, so consecutive rows land in maximally-separated
// walk positions.
func (e *refreshEngine) slotOf(row int) int {
	v := uint(row) & (uint(e.slots) - 1)
	var r uint
	for i := uint(0); i < e.slotBits; i++ {
		r = r<<1 | (v & 1)
		v >>= 1
	}
	return int(r)
}

// ageOf returns the time since row was last refreshed, as of cycle now.
func (e *refreshEngine) ageOf(row int, now dram.Cycle) dram.Cycle {
	return now - e.lastRef[e.slotOf(row)]
}

// bitsFor returns log2(v) for power-of-two v.
func bitsFor(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
