package memctrl

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dram"
)

func ctrlConfig(policy RowPolicy) Config {
	spec := dram.DDR31600(1)
	return Config{
		Spec:          spec,
		Channel:       0,
		ReadQueueCap:  64,
		WriteQueueCap: 64,
		RowPolicy:     policy,
		WriteHigh:     48,
		WriteLow:      16,
		Mechanism:     core.NewBaseline(spec.Timing.DefaultClass()),
	}
}

func mustCtrl(t *testing.T, cfg Config) *Controller {
	t.Helper()
	c, err := NewController(cfg)
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	return c
}

// run ticks the controller through [from, to).
func run(c *Controller, from, to dram.Cycle) {
	for now := from; now < to; now++ {
		c.Tick(now)
	}
}

func readReq(coord Coord, done *dram.Cycle) *Request {
	return &Request{
		Kind:  ReadReq,
		Coord: coord,
		OnComplete: func(now dram.Cycle) {
			*done = now
		},
	}
}

func TestConfigValidate(t *testing.T) {
	bad := ctrlConfig(OpenRow)
	bad.Mechanism = nil
	if _, err := NewController(bad); err == nil {
		t.Error("accepted nil mechanism")
	}
	bad = ctrlConfig(OpenRow)
	bad.Channel = 7
	if _, err := NewController(bad); err == nil {
		t.Error("accepted out-of-range channel")
	}
	bad = ctrlConfig(OpenRow)
	bad.WriteHigh = 10
	bad.WriteLow = 20
	if _, err := NewController(bad); err == nil {
		t.Error("accepted inverted watermarks")
	}
	bad = ctrlConfig(OpenRow)
	bad.ReadQueueCap = 0
	if _, err := NewController(bad); err == nil {
		t.Error("accepted zero queue capacity")
	}
}

func TestSingleReadLatency(t *testing.T) {
	c := mustCtrl(t, ctrlConfig(OpenRow))
	tm := c.cfg.Spec.Timing
	var done dram.Cycle = -1
	c.Tick(0) // establish now
	if !c.EnqueueRead(readReq(Coord{Row: 5, Col: 3}, &done)) {
		t.Fatal("enqueue failed")
	}
	run(c, 1, 200)
	// ACT at cycle 1, RD at 1+tRCD, data at +tCL+tBL.
	want := dram.Cycle(1 + tm.RCD + tm.CL + tm.BL)
	if done != want {
		t.Errorf("read completed at %d, want %d", done, want)
	}
	s := c.Stats()
	if s.ReadsServed != 1 || s.Activations != 1 || s.RowMisses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestRowHitFasterThanMiss(t *testing.T) {
	c := mustCtrl(t, ctrlConfig(OpenRow))
	var d1, d2 dram.Cycle = -1, -1
	c.Tick(0)
	c.EnqueueRead(readReq(Coord{Row: 5, Col: 0}, &d1))
	run(c, 1, 100)
	first := d1
	c.EnqueueRead(readReq(Coord{Row: 5, Col: 1}, &d2))
	start := dram.Cycle(100)
	run(c, start, 200)
	// Open-row policy kept row 5 open: second access is a row hit and
	// needs only RD + data.
	tm := c.cfg.Spec.Timing
	hitLatency := d2 - start
	if hitLatency > dram.Cycle(tm.CL+tm.BL+1) {
		t.Errorf("row-hit latency = %d, want <= %d", hitLatency, tm.CL+tm.BL+1)
	}
	if first <= 0 {
		t.Fatal("first read never completed")
	}
	s := c.Stats()
	if s.RowHits != 1 || s.RowMisses != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.Activations != 1 {
		t.Errorf("activations = %d, want 1 (second access was a hit)", s.Activations)
	}
}

func TestRowConflictPrechargesAndReactivates(t *testing.T) {
	c := mustCtrl(t, ctrlConfig(OpenRow))
	var d1, d2 dram.Cycle = -1, -1
	c.Tick(0)
	c.EnqueueRead(readReq(Coord{Row: 5, Col: 0}, &d1))
	run(c, 1, 100)
	c.EnqueueRead(readReq(Coord{Row: 9, Col: 0}, &d2))
	run(c, 100, 300)
	if d2 < 0 {
		t.Fatal("conflicting read never completed")
	}
	s := c.Stats()
	if s.RowConflicts != 1 {
		t.Errorf("conflicts = %d, want 1", s.RowConflicts)
	}
	if s.Activations != 2 {
		t.Errorf("activations = %d, want 2", s.Activations)
	}
}

func TestClosedRowPolicyPrecharges(t *testing.T) {
	c := mustCtrl(t, ctrlConfig(ClosedRow))
	var d1 dram.Cycle = -1
	c.Tick(0)
	c.EnqueueRead(readReq(Coord{Row: 5, Col: 0}, &d1))
	run(c, 1, 200)
	if d1 < 0 {
		t.Fatal("read never completed")
	}
	// With no pending requests the bank must have been precharged.
	if _, open := c.Channel().OpenRow(0, 0); open {
		t.Error("closed-row policy left the bank open")
	}
}

func TestOpenRowPolicyKeepsRowOpen(t *testing.T) {
	c := mustCtrl(t, ctrlConfig(OpenRow))
	var d1 dram.Cycle = -1
	c.Tick(0)
	c.EnqueueRead(readReq(Coord{Row: 5, Col: 0}, &d1))
	run(c, 1, 200)
	if row, open := c.Channel().OpenRow(0, 0); !open || row != 5 {
		t.Errorf("open-row policy: row = (%d,%v), want (5,true)", row, open)
	}
}

func TestWriteCompletesOnIssue(t *testing.T) {
	c := mustCtrl(t, ctrlConfig(OpenRow))
	var done dram.Cycle = -1
	c.Tick(0)
	ok := c.EnqueueWrite(&Request{
		Kind:  WriteReq,
		Coord: Coord{Row: 2, Col: 0},
		OnComplete: func(now dram.Cycle) {
			done = now
		},
	})
	if !ok {
		t.Fatal("enqueue failed")
	}
	run(c, 1, 200)
	if done < 0 {
		t.Fatal("write never issued")
	}
	if got := c.Stats().WritesServed; got != 1 {
		t.Errorf("WritesServed = %d", got)
	}
}

func TestWriteDrainWatermarks(t *testing.T) {
	cfg := ctrlConfig(OpenRow)
	cfg.WriteHigh = 4
	cfg.WriteLow = 1
	c := mustCtrl(t, cfg)
	c.Tick(0)
	// Keep a read stream flowing while writes accumulate below the
	// watermark: reads must be served first.
	var reads int
	for i := 0; i < 3; i++ {
		c.EnqueueWrite(&Request{Kind: WriteReq, Coord: Coord{Row: 100 + i, Col: 0}})
	}
	var rdone dram.Cycle = -1
	c.EnqueueRead(readReq(Coord{Row: 5, Col: 0}, &rdone))
	run(c, 1, 120)
	if rdone < 0 {
		t.Fatal("read starved by sub-watermark writes")
	}
	reads = int(c.Stats().ReadsServed)
	if reads != 1 {
		t.Errorf("reads served = %d", reads)
	}
	// Now cross the high watermark: writes must drain.
	for i := 0; i < 4; i++ {
		c.EnqueueWrite(&Request{Kind: WriteReq, Coord: Coord{Row: 200 + i, Col: 0}})
	}
	run(c, 120, 2000)
	if got := c.Stats().WritesServed; got != 7 {
		t.Errorf("writes served = %d, want 7", got)
	}
}

func TestQueueCapacityEnforced(t *testing.T) {
	cfg := ctrlConfig(OpenRow)
	cfg.ReadQueueCap = 2
	cfg.WriteQueueCap = 2
	cfg.WriteHigh = 2
	cfg.WriteLow = 0
	c := mustCtrl(t, cfg)
	c.Tick(0)
	if !c.EnqueueRead(&Request{Coord: Coord{Row: 1}}) ||
		!c.EnqueueRead(&Request{Coord: Coord{Row: 2}}) {
		t.Fatal("first two enqueues failed")
	}
	if c.EnqueueRead(&Request{Coord: Coord{Row: 3}}) {
		t.Error("read queue overfilled")
	}
	if !c.EnqueueWrite(&Request{Kind: WriteReq, Coord: Coord{Row: 1}}) ||
		!c.EnqueueWrite(&Request{Kind: WriteReq, Coord: Coord{Row: 2}}) {
		t.Fatal("write enqueues failed")
	}
	if c.EnqueueWrite(&Request{Kind: WriteReq, Coord: Coord{Row: 3}}) {
		t.Error("write queue overfilled")
	}
	if c.QueuedReads() != 2 || c.QueuedWrites() != 2 {
		t.Errorf("depths = %d/%d", c.QueuedReads(), c.QueuedWrites())
	}
	if !c.Pending() {
		t.Error("Pending() = false with queued requests")
	}
}

func TestRefreshIssuedEveryREFI(t *testing.T) {
	c := mustCtrl(t, ctrlConfig(OpenRow))
	tm := c.cfg.Spec.Timing
	run(c, 0, dram.Cycle(tm.REFI)*4+dram.Cycle(tm.RFC))
	got := c.Stats().Refreshes
	if got < 3 || got > 5 {
		t.Errorf("refreshes in 4x tREFI = %d, want ~4", got)
	}
}

func TestRefreshClosesOpenBank(t *testing.T) {
	c := mustCtrl(t, ctrlConfig(OpenRow))
	tm := c.cfg.Spec.Timing
	var d dram.Cycle = -1
	c.Tick(0)
	c.EnqueueRead(readReq(Coord{Row: 5, Col: 0}, &d))
	// Run past the first refresh due time: the open row must be closed,
	// REF issued, and the bank left precharged.
	run(c, 1, dram.Cycle(tm.REFI)+dram.Cycle(tm.RFC)+100)
	if c.Stats().Refreshes == 0 {
		t.Fatal("no refresh issued")
	}
	if _, open := c.Channel().OpenRow(0, 0); open {
		t.Error("bank open right after refresh window")
	}
}

func TestRefreshAgeDecreasesAfterRefresh(t *testing.T) {
	c := mustCtrl(t, ctrlConfig(OpenRow))
	tm := c.cfg.Spec.Timing
	// The first refresh covers the slot the walk starts at; bit-reversal
	// is an involution, so slotOf doubles as the inverse mapping.
	eng := c.refresh[0]
	row := eng.slotOf(int(eng.counter % uint64(eng.slots)))
	before := c.RefreshAge(0, row, 0)
	if before <= 0 {
		t.Errorf("initial age = %d, want positive", before)
	}
	end := dram.Cycle(tm.REFI) + dram.Cycle(tm.RFC) + 10
	run(c, 0, end)
	after := c.RefreshAge(0, row, end)
	if after >= before {
		t.Errorf("age did not decrease after refresh: before=%d after=%d", before, after)
	}
	if after > end {
		t.Errorf("age = %d larger than elapsed time", after)
	}
}

func TestRefreshAgesSpreadAtStart(t *testing.T) {
	c := mustCtrl(t, ctrlConfig(OpenRow))
	window := c.cfg.Spec.Timing.RetentionWindow
	// Initial ages must span roughly (0, retention window]: uncorrelated
	// with row order and none wildly out of range.
	var minAge, maxAge dram.Cycle = 1 << 62, 0
	for row := 0; row < c.cfg.Spec.Geometry.Rows; row += 997 {
		age := c.RefreshAge(0, row, 0)
		if age <= 0 || age > window+dram.Cycle(c.cfg.Spec.Timing.REFI) {
			t.Fatalf("row %d initial age %d out of range", row, age)
		}
		if age < minAge {
			minAge = age
		}
		if age > maxAge {
			maxAge = age
		}
	}
	if maxAge-minAge < window/2 {
		t.Errorf("ages not spread: min=%d max=%d window=%d", minAge, maxAge, window)
	}
}

func TestFRFCFSPrefersRowHit(t *testing.T) {
	c := mustCtrl(t, ctrlConfig(OpenRow))
	var dHit, dMiss dram.Cycle = -1, -1
	c.Tick(0)
	// Open row 5.
	var d0 dram.Cycle = -1
	c.EnqueueRead(readReq(Coord{Row: 5, Col: 0}, &d0))
	run(c, 1, 100)
	// Oldest: a conflicting request to row 9; younger: a hit to row 5.
	c.EnqueueRead(readReq(Coord{Row: 9, Col: 0}, &dMiss))
	c.EnqueueRead(readReq(Coord{Row: 5, Col: 1}, &dHit))
	run(c, 100, 400)
	if dHit < 0 || dMiss < 0 {
		t.Fatal("requests did not complete")
	}
	if dHit >= dMiss {
		t.Errorf("row hit (%d) should complete before older conflict (%d)", dHit, dMiss)
	}
}

func TestMechanismDrivesFastActivations(t *testing.T) {
	spec := dram.DDR31600(1)
	cfg := ctrlConfig(OpenRow)
	cc, err := core.NewChargeCache(core.ChargeCacheConfig{
		Entries:  128,
		Assoc:    2,
		Duration: spec.MillisecondsToCycles(1),
		Fast:     dram.TimingClass{RCD: 7, RAS: 20},
		Default:  spec.Timing.DefaultClass(),
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Mechanism = cc
	c := mustCtrl(t, cfg)
	var d1, d2, d3 dram.Cycle = -1, -1, -1
	c.Tick(0)
	// First activation of row 5: miss. Then a conflict to row 9 closes
	// row 5 (inserting it into the HCRAC). Reactivating row 5 hits.
	c.EnqueueRead(readReq(Coord{Row: 5, Col: 0}, &d1))
	run(c, 1, 100)
	c.EnqueueRead(readReq(Coord{Row: 9, Col: 0}, &d2))
	run(c, 100, 300)
	c.EnqueueRead(readReq(Coord{Row: 5, Col: 1}, &d3))
	run(c, 300, 600)
	if d3 < 0 {
		t.Fatal("third read never completed")
	}
	if got := c.Stats().FastActivations; got != 1 {
		t.Errorf("fast activations = %d, want 1", got)
	}
	if got := cc.Stats().Hits; got != 1 {
		t.Errorf("HCRAC hits = %d, want 1", got)
	}
	// The fast activation must actually shorten the ACT->data latency.
	normalACT := d2 - 100 // row 9: PRE + ACT + RD
	fastACT := d3 - 300   // row 5: PRE + fast ACT + RD
	if fastACT >= normalACT {
		t.Errorf("fast path (%d) not faster than normal (%d)", fastACT, normalACT)
	}
}

type recordingObserver struct {
	acts, pres int
	lastFast   bool
}

func (r *recordingObserver) ObserveActivate(_ int, _ core.RowKey, _, _ dram.Cycle, fast bool) {
	r.acts++
	r.lastFast = fast
}

func (r *recordingObserver) ObservePrecharge(_ int, _ core.RowKey, _ dram.Cycle) {
	r.pres++
}

func TestObserverSeesActivatesAndPrecharges(t *testing.T) {
	cfg := ctrlConfig(OpenRow)
	obs := &recordingObserver{}
	cfg.Observer = obs
	c := mustCtrl(t, cfg)
	var d1, d2 dram.Cycle = -1, -1
	c.Tick(0)
	c.EnqueueRead(readReq(Coord{Row: 5, Col: 0}, &d1))
	run(c, 1, 100)
	c.EnqueueRead(readReq(Coord{Row: 9, Col: 0}, &d2)) // conflict: forces PRE
	run(c, 100, 300)
	if obs.acts != 2 {
		t.Errorf("observed ACTs = %d, want 2", obs.acts)
	}
	if obs.pres != 1 {
		t.Errorf("observed PREs = %d, want 1", obs.pres)
	}
}

func TestStatsResetKeepsQueues(t *testing.T) {
	c := mustCtrl(t, ctrlConfig(OpenRow))
	c.Tick(0)
	var d dram.Cycle = -1
	c.EnqueueRead(readReq(Coord{Row: 5, Col: 0}, &d))
	run(c, 1, 100)
	c.ResetStats()
	if c.Stats().ReadsServed != 0 {
		t.Error("ResetStats did not clear counters")
	}
	if c.Mechanism() == nil {
		t.Error("Mechanism() nil")
	}
}

func TestAvgReadLatency(t *testing.T) {
	s := Stats{ReadsServed: 2, ReadLatencySum: 100}
	if s.AvgReadLatency() != 50 {
		t.Errorf("AvgReadLatency = %g", s.AvgReadLatency())
	}
	if (Stats{}).AvgReadLatency() != 0 {
		t.Error("empty AvgReadLatency not 0")
	}
	s = Stats{RowHits: 3, RowMisses: 1, RowConflicts: 0}
	if s.RowHitRate() != 0.75 {
		t.Errorf("RowHitRate = %g", s.RowHitRate())
	}
	if (Stats{}).RowHitRate() != 0 {
		t.Error("empty RowHitRate not 0")
	}
}

func TestRequestAndPolicyStrings(t *testing.T) {
	if ReadReq.String() != "read" || WriteReq.String() != "write" {
		t.Error("RequestKind.String misbehaves")
	}
	if OpenRow.String() != "open-row" || ClosedRow.String() != "closed-row" {
		t.Error("RowPolicy.String misbehaves")
	}
	r := &Request{Kind: ReadReq, Addr: 0x40, CoreID: 2, Coord: Coord{Row: 1}}
	if r.String() == "" {
		t.Error("Request.String empty")
	}
}

// TestManyRandomRequestsDrain is a smoke test: a burst of random-row
// requests must all complete, with refreshes interleaved, and the
// controller must end idle.
func TestManyRandomRequestsDrain(t *testing.T) {
	c := mustCtrl(t, ctrlConfig(ClosedRow))
	c.Tick(0)
	completed := 0
	rng := uint64(12345)
	next := func(mod int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(mod))
	}
	enqueued := 0
	for now := dram.Cycle(1); now < 100_000; now++ {
		if enqueued < 500 && now%50 == 0 {
			req := &Request{
				Kind:  ReadReq,
				Coord: Coord{Bank: next(8), Row: next(1024), Col: next(128)},
				OnComplete: func(dram.Cycle) {
					completed++
				},
			}
			if c.EnqueueRead(req) {
				enqueued++
			}
		}
		c.Tick(now)
	}
	if completed != enqueued {
		t.Errorf("completed %d of %d reads", completed, enqueued)
	}
	if c.Pending() {
		t.Error("controller still pending at end")
	}
	if c.Stats().Refreshes == 0 {
		t.Error("no refreshes over 100k cycles")
	}
}

func TestReadLatencyHistogram(t *testing.T) {
	c := mustCtrl(t, ctrlConfig(OpenRow))
	c.Tick(0)
	var done dram.Cycle = -1
	c.EnqueueRead(readReq(Coord{Row: 5, Col: 0}, &done))
	run(c, 1, 100)
	s := c.Stats()
	var total uint64
	for _, n := range s.ReadLatencyHist {
		total += n
	}
	if total != s.ReadsServed {
		t.Errorf("histogram total %d != reads served %d", total, s.ReadsServed)
	}
	p50 := s.ReadLatencyPercentile(0.5)
	p99 := s.ReadLatencyPercentile(0.99)
	if p50 <= 0 || p99 < p50 {
		t.Errorf("percentiles p50=%g p99=%g", p50, p99)
	}
	// The single read's latency (~26 cycles) must fall under its
	// percentile upper bound.
	if avg := s.AvgReadLatency(); avg > p99 {
		t.Errorf("avg %g above p99 %g", avg, p99)
	}
	if (Stats{}).ReadLatencyPercentile(0.5) != 0 {
		t.Error("empty percentile nonzero")
	}
}
