package memctrl

import (
	"testing"
	"testing/quick"

	"repro/internal/dram"
)

func TestMapperRejectsBadOrders(t *testing.T) {
	g := dram.DDR31600(2).Geometry
	for _, order := range []string{"", "RoBaRaCo", "RoBaRaCoChCh", "RoBaRaCoXx", "RoRoBaRaCo"} {
		if _, err := NewBitSliceMapper(g, order); err == nil {
			t.Errorf("order %q accepted", order)
		}
	}
	bad := g
	bad.Banks = 3
	if _, err := NewBitSliceMapper(bad, "RoBaRaCoCh"); err == nil {
		t.Error("invalid geometry accepted")
	}
}

func TestMapperFieldsInRange(t *testing.T) {
	g := dram.DDR31600(2).Geometry
	m := MustMapper(g, "RoBaRaCoCh")
	f := func(addr uint64) bool {
		c := m.Map(addr % g.TotalBytes())
		return c.Channel >= 0 && c.Channel < g.Channels &&
			c.Rank >= 0 && c.Rank < g.Ranks &&
			c.Bank >= 0 && c.Bank < g.Banks &&
			c.Row >= 0 && c.Row < g.Rows &&
			c.Col >= 0 && c.Col < g.Columns
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMapperRoundTrip(t *testing.T) {
	g := dram.DDR31600(2).Geometry
	for _, order := range []string{"RoBaRaCoCh", "RoRaBaCoCh", "RoCoRaBaCh", "ChRaBaRoCo"} {
		m := MustMapper(g, order)
		f := func(addr uint64) bool {
			a := (addr % g.TotalBytes()) &^ uint64(g.LineBytes-1)
			return m.Unmap(m.Map(a)) == a
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("order %s: %v", order, err)
		}
	}
}

func TestMapperChannelInterleaving(t *testing.T) {
	g := dram.DDR31600(2).Geometry
	m := MustMapper(g, "RoBaRaCoCh")
	// With Ch in the LSBs, consecutive cache lines alternate channels.
	c0 := m.Map(0)
	c1 := m.Map(uint64(g.LineBytes))
	if c0.Channel == c1.Channel {
		t.Errorf("consecutive lines map to same channel %d", c0.Channel)
	}
	// Lines within one channel stride through columns of the same row.
	c2 := m.Map(2 * uint64(g.LineBytes))
	if c2.Channel != c0.Channel || c2.Row != c0.Row || c2.Col != c0.Col+1 {
		t.Errorf("line 2 mapped to %+v, want same row next column of %+v", c2, c0)
	}
}

func TestMapperRowInMSBs(t *testing.T) {
	g := dram.DDR31600(1).Geometry
	m := MustMapper(g, "RoBaRaCoCh")
	// One full bank-row stride of addresses: row changes only after
	// columns x banks x ranks x channels lines.
	linesPerRow := uint64(g.Columns * g.Banks * g.Ranks * g.Channels)
	a0 := m.Map(0)
	a1 := m.Map(linesPerRow * uint64(g.LineBytes))
	if a1.Row != a0.Row+1 {
		t.Errorf("row after full stride = %d, want %d", a1.Row, a0.Row+1)
	}
	if m.Order() != "RoBaRaCoCh" {
		t.Errorf("Order = %q", m.Order())
	}
}

func TestCoordString(t *testing.T) {
	c := Coord{Channel: 1, Rank: 0, Bank: 3, Row: 42, Col: 7}
	if got, want := c.String(), "ch1/r0/b3/row42/col7"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestLog2(t *testing.T) {
	cases := map[uint64]uint{1: 0, 2: 1, 8: 3, 64: 6, 65536: 16}
	for v, want := range cases {
		if got := log2(v); got != want {
			t.Errorf("log2(%d) = %d, want %d", v, got, want)
		}
	}
}

// TestMapZeroAllocs pins the address-translation hot path allocation-
// free: Map runs once per memory access across entire campaigns.
func TestMapZeroAllocs(t *testing.T) {
	m := MustMapper(dram.DDR31600(2).Geometry, "RoBaRaCoCh")
	var sink Coord
	if n := testing.AllocsPerRun(1000, func() {
		sink = m.Map(0xdeadbeef)
	}); n != 0 {
		t.Errorf("Map allocates %v times per call, want 0", n)
	}
	_ = sink
}

// BenchmarkMapperMap measures one address translation.
func BenchmarkMapperMap(b *testing.B) {
	m := MustMapper(dram.DDR31600(2).Geometry, "RoBaRaCoCh")
	b.ReportAllocs()
	var sink Coord
	for i := 0; i < b.N; i++ {
		sink = m.Map(uint64(i) * 64)
	}
	_ = sink
}

// BenchmarkNewBitSliceMapper measures mapper construction, paid once per
// simulation during campaigns (the token/size tables are package-level,
// not rebuilt per call).
func BenchmarkNewBitSliceMapper(b *testing.B) {
	g := dram.DDR31600(2).Geometry
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewBitSliceMapper(g, "RoBaRaCoCh"); err != nil {
			b.Fatal(err)
		}
	}
}
