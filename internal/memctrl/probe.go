package memctrl

import "repro/internal/dram"

// RowOutcome is the scheduler's row-buffer classification of a request,
// counted exactly once per request (see Controller.classify).
type RowOutcome uint8

const (
	// RowHit: the request found its row open.
	RowHit RowOutcome = iota
	// RowMiss: the request found the bank precharged.
	RowMiss
	// RowConflict: the request found another row open.
	RowConflict
)

// String implements fmt.Stringer.
func (o RowOutcome) String() string {
	switch o {
	case RowHit:
		return "hit"
	case RowMiss:
		return "miss"
	default:
		return "conflict"
	}
}

// Probe receives controller-level perf-analyzer events (internal/
// analysis). Implementations must only observe — the controller's
// scheduling decisions are independent of the probe's presence, which
// the differential suite enforces by running analysis on and off.
type Probe interface {
	// ObserveEnqueue fires after a request joins its per-(rank, bank)
	// queue: a queue-depth sample at the arrival cycle. bankReads and
	// bankWrites are the target bank's queue depths after the push;
	// reads and writes are the controller-wide depths. Arrival order
	// and stamps are identical between the execution engines.
	ObserveEnqueue(coord Coord, isRead bool, bankReads, bankWrites, reads, writes int, now dram.Cycle)

	// ObserveRowOutcome fires when the scheduler classifies a request's
	// row-buffer outcome. arrive is the request's arrival cycle — the
	// engine-invariant bucket for outcome timelines (classification
	// call time differs between engines; the outcome and arrival stamp
	// do not).
	ObserveRowOutcome(coord Coord, outcome RowOutcome, arrive dram.Cycle)
}
