package memctrl

// The controller keeps its request queues per (rank, bank) rather than
// as one flat FIFO. FR-FCFS order is recovered from per-request arrival
// sequence numbers: within a bank the queue is arrival-ordered, so each
// bank contributes at most one scheduling candidate per pass (the oldest
// row-hit, or the oldest row-changer), and the global pick is the
// minimum sequence number among the banks whose candidate is legal this
// cycle. Banks whose rank gate or next-allowed register has not expired
// are skipped wholesale — the walks the flat queue paid on every cycle
// collapse to a handful of register comparisons.

// kindQ is one bank's queue for one request kind, arrival-ordered.
//
// uniform/uniformRow track whether every queued request targets one row
// — the overwhelmingly common case for streaming access patterns — so
// candidate lookups are O(1) instead of scans. The flag is maintained
// conservatively: enqueues update it exactly while the queue grows from
// empty, dequeues never restore it (a stale false only costs a scan,
// never a wrong answer), and it resets when the queue drains.
type kindQ struct {
	q          []*Request
	uniform    bool
	uniformRow int

	// Candidate memos: the scheduler asks for the same (queue, row)
	// lookups several times per cycle (both selection passes, the
	// next-issue-time computation) and across consecutive cycles while
	// the queue is unchanged. ver bumps on every mutation; a memo is
	// valid while its ver and row match. Deep non-uniform queues —
	// write drains, conflict-heavy workloads — go from a scan per
	// lookup to a scan per mutation.
	ver        uint32
	hitVer     uint32
	hitRow     int
	hitPos     int // -1: no request targets hitRow
	changerVer uint32
	changerRow int
	changerPos int // -1: every request targets changerRow
}

func (k *kindQ) push(req *Request) {
	if len(k.q) == 0 {
		k.uniform = true
		k.uniformRow = req.Coord.Row
	} else if k.uniform && req.Coord.Row != k.uniformRow {
		k.uniform = false
	}
	k.q = append(k.q, req)
	k.ver++
}

func (k *kindQ) remove(pos int) {
	q := k.q
	copy(q[pos:], q[pos+1:])
	q[len(q)-1] = nil
	k.q = q[:len(q)-1]
	k.ver++
}

// oldestRowHit returns the oldest request targeting row, or nil.
// Requests ahead of it targeting other rows do not block it (that is
// the "first-ready" half of FR-FCFS).
func (k *kindQ) oldestRowHit(row int) (*Request, int) {
	if k.uniform {
		if k.uniformRow == row && len(k.q) > 0 {
			return k.q[0], 0
		}
		return nil, -1
	}
	if k.hitVer == k.ver && k.hitRow == row {
		if k.hitPos < 0 {
			return nil, -1
		}
		return k.q[k.hitPos], k.hitPos
	}
	k.hitVer, k.hitRow, k.hitPos = k.ver, row, -1
	for pos, req := range k.q {
		if req.Coord.Row == row {
			k.hitPos = pos
			return req, pos
		}
	}
	return nil, -1
}

// oldestRowChanger returns the oldest request not targeting row: the
// request on whose behalf the scheduler would precharge an open row.
func (k *kindQ) oldestRowChanger(row int) *Request {
	if k.uniform {
		if k.uniformRow != row && len(k.q) > 0 {
			return k.q[0]
		}
		return nil
	}
	if k.changerVer == k.ver && k.changerRow == row {
		if k.changerPos < 0 {
			return nil
		}
		return k.q[k.changerPos]
	}
	k.changerVer, k.changerRow, k.changerPos = k.ver, row, -1
	for pos, req := range k.q {
		if req.Coord.Row != row {
			k.changerPos = pos
			return req
		}
	}
	return nil
}

// anyFor reports whether the queue holds a request for row.
func (k *kindQ) anyFor(row int) bool {
	if k.uniform {
		return len(k.q) > 0 && k.uniformRow == row
	}
	for _, req := range k.q {
		if req.Coord.Row == row {
			return true
		}
	}
	return false
}

// bankQ holds one bank's queued requests per kind.
type bankQ struct {
	reads  kindQ
	writes kindQ
}

// kind returns the queue for one request kind.
func (b *bankQ) kind(isRead bool) *kindQ {
	if isRead {
		return &b.reads
	}
	return &b.writes
}

// bankSet is a bitmask over a channel's banks (rank-major index), used
// to visit only banks with queued work.
type bankSet struct {
	words []uint64
}

func newBankSet(banks int) bankSet {
	return bankSet{words: make([]uint64, (banks+63)/64)}
}

func (s *bankSet) set(i int)   { s.words[i>>6] |= 1 << (uint(i) & 63) }
func (s *bankSet) clear(i int) { s.words[i>>6] &^= 1 << (uint(i) & 63) }

// noSeq is the "no candidate selected" sentinel: larger than any
// assigned arrival sequence number.
const noSeq = ^uint64(0)
