package cpu

import (
	"testing"
)

// The cycle-skipping contract (SkipBudget / RunAhead / AdvanceIdle)
// promises bit-identical evolution to per-cycle Tick calls. This test
// drives twin cores from the same trace against the same scripted
// memory: the reference twin is ticked every cycle; the skipping twin
// runs a miniature event loop that jumps wherever SkipBudget allows,
// bounded by the next scheduled load completion — exactly the
// structure of the simulator's event engine.

// scriptMem completes loads a fixed number of cycles after issue.
type scriptMem struct {
	delay   int64
	pending []scriptEvent
	stores  int
}

type scriptEvent struct {
	at int64
	fn func()
}

func (m *scriptMem) Load(addr uint64, coreID int, done func()) bool {
	m.pending = append(m.pending, scriptEvent{at: -1, fn: done}) // stamped by caller
	return true
}

func (m *scriptMem) Store(addr uint64, coreID int) bool {
	m.stores++
	return true
}

// stamp assigns the issue cycle to loads issued during the current
// cycle (Load does not know the clock).
func (m *scriptMem) stamp(now int64) {
	for i := range m.pending {
		if m.pending[i].at < 0 {
			m.pending[i].at = now + m.delay
		}
	}
}

// deliver fires completions due at now (after the core ticked, like the
// LLC's hit queue).
func (m *scriptMem) deliver(now int64) {
	kept := m.pending[:0]
	for _, ev := range m.pending {
		if ev.at >= 0 && ev.at <= now {
			ev.fn()
		} else {
			kept = append(kept, ev)
		}
	}
	m.pending = kept
}

// nextEvent returns the earliest scheduled completion, or max.
func (m *scriptMem) nextEvent(max int64) int64 {
	next := max
	for _, ev := range m.pending {
		if ev.at >= 0 && ev.at < next {
			next = ev.at
		}
	}
	return next
}

// seqTrace is a deterministic pseudo-random record stream; two
// instances with the same seed produce the same records.
type seqTrace struct{ state uint64 }

func (s *seqTrace) Next() TraceRecord {
	s.state ^= s.state << 13
	s.state ^= s.state >> 7
	s.state ^= s.state << 17
	return TraceRecord{
		Bubbles:      int(s.state % 23),
		Addr:         s.state & 0xffffff,
		HasWriteback: s.state%5 == 0,
		WBAddr:       (s.state >> 8) & 0xffffff,
	}
}

func TestSkipTrioMatchesPerCycleTick(t *testing.T) {
	for _, delay := range []int64{1, 7, 26, 140, 500} {
		for seed := uint64(1); seed <= 5; seed++ {
			const horizon = 30_000
			const target = ^uint64(0) >> 1

			// Reference: tick every cycle.
			refMem := &scriptMem{delay: delay}
			ref, err := New(DefaultConfig(0), &seqTrace{state: seed}, refMem)
			if err != nil {
				t.Fatal(err)
			}
			for now := int64(0); now < horizon; now++ {
				ref.Tick()
				refMem.stamp(now)
				refMem.deliver(now)
			}

			// Skipping twin: execute, then jump as far as allowed.
			evtMem := &scriptMem{delay: delay}
			evt, err := New(DefaultConfig(0), &seqTrace{state: seed}, evtMem)
			if err != nil {
				t.Fatal(err)
			}
			for now := int64(0); now < horizon; {
				evt.Tick()
				evtMem.stamp(now)
				evtMem.deliver(now)
				now++
				bulk := evtMem.nextEvent(horizon) - now
				if bulk <= 0 {
					continue
				}
				blocked, pure := evt.SkipBudget(target, bulk)
				switch {
				case blocked:
					evt.AdvanceIdle(bulk)
				case pure > 0:
					if pure < bulk {
						bulk = pure
					}
					evt.RunAhead(bulk)
				default:
					continue
				}
				now += bulk
			}

			if ref.Retired() != evt.Retired() || ref.Cycles() != evt.Cycles() ||
				ref.StallCycles() != evt.StallCycles() ||
				ref.LoadsSent() != evt.LoadsSent() || ref.StoresSent() != evt.StoresSent() ||
				ref.WindowOccupancy() != evt.WindowOccupancy() ||
				ref.InFlightLoads() != evt.InFlightLoads() {
				t.Fatalf("delay %d seed %d diverged:\n ref retired=%d cycles=%d stall=%d loads=%d stores=%d occ=%d inflight=%d\n evt retired=%d cycles=%d stall=%d loads=%d stores=%d occ=%d inflight=%d",
					delay, seed,
					ref.Retired(), ref.Cycles(), ref.StallCycles(), ref.LoadsSent(), ref.StoresSent(), ref.WindowOccupancy(), ref.InFlightLoads(),
					evt.Retired(), evt.Cycles(), evt.StallCycles(), evt.LoadsSent(), evt.StoresSent(), evt.WindowOccupancy(), evt.InFlightLoads())
			}
		}
	}
}

// TestSkipBudgetTargetClamp checks a jump can never carry retirement
// across the measurement target: crossings must happen on executed
// cycles, where the engine records them.
func TestSkipBudgetTargetClamp(t *testing.T) {
	mem := &scriptMem{delay: 1_000_000} // loads never return
	c, err := New(DefaultConfig(0), &seqTrace{state: 99}, mem)
	if err != nil {
		t.Fatal(err)
	}
	for now := int64(0); now < 5_000; now++ {
		target := c.Retired() + 4 // always just ahead
		blocked, pure := c.SkipBudget(target, 1<<30)
		if !blocked && pure > 0 {
			before := c.Retired()
			c.RunAhead(pure)
			if c.Retired() >= target {
				t.Fatalf("cycle %d: RunAhead(%d) carried retired %d -> %d past target %d",
					now, pure, before, c.Retired(), target)
			}
		} else {
			c.Tick()
			mem.stamp(now)
		}
	}
}
