// Package cpu implements the trace-driven processor core of the
// evaluated system (Table 1): 3-wide issue, a 128-entry instruction
// window, and 8 MSHRs per core, clocked at 4 GHz.
//
// Cores consume trace records in Ramulator's cpu-trace shape: a number of
// non-memory "bubble" instructions, a load address, and an optional
// writeback address. Bubbles retire at up to the issue width per cycle;
// loads occupy a window slot until their data returns from the cache
// hierarchy; writebacks are sent to the memory system without occupying
// the window.
package cpu

import "fmt"

// TraceRecord is one unit of work: Bubbles non-memory instructions
// followed by one load, optionally paired with a writeback that models a
// dirty line displaced from the upper-level caches by the load's fill.
type TraceRecord struct {
	Bubbles int
	Addr    uint64

	HasWriteback bool
	WBAddr       uint64
}

// TraceReader produces an endless stream of trace records. Generators in
// package workload implement it.
type TraceReader interface {
	Next() TraceRecord
}

// MemPort is the core's connection to the cache hierarchy. Both methods
// report false when the access cannot be accepted this cycle; the core
// retries on the next cycle.
type MemPort interface {
	// Load issues a read for addr; done runs when data is available.
	Load(addr uint64, coreID int, done func()) bool
	// Store issues a writeback for addr (fire and forget).
	Store(addr uint64, coreID int) bool
}

// Config parameterizes a core.
type Config struct {
	ID         int
	Width      int // instructions issued and retired per cycle (3)
	WindowSize int // reorder-window entries (128)
	MSHRs      int // outstanding loads (8)
}

// DefaultConfig returns the Table 1 core parameters.
func DefaultConfig(id int) Config {
	return Config{ID: id, Width: 3, WindowSize: 128, MSHRs: 8}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Width <= 0 || c.WindowSize <= 0 || c.MSHRs <= 0 {
		return fmt.Errorf("cpu: width/window/MSHRs must be positive: %+v", c)
	}
	return nil
}

// slot states within the instruction window.
const (
	slotDone    uint8 = iota // retired-ready (bubble, or load whose data arrived)
	slotWaiting              // load waiting for data
)

// Core is one trace-driven processor core. Not safe for concurrent use.
type Core struct {
	cfg   Config
	trace TraceReader
	mem   MemPort

	window []uint8 // ring buffer of slot states
	head   int     // oldest entry
	tail   int     // next free entry
	count  int

	inFlight int // loads outstanding (<= MSHRs)

	// Current trace record being issued. The record is fetched eagerly
	// (at construction and immediately after its predecessor's load
	// issues), which consumes the trace in exactly the same order as
	// lazy fetching but lets SkipBudget see bubble runs without a
	// stateful peek.
	rec         TraceRecord
	bubblesLeft int
	loadPending bool
	wbPending   bool

	// slotDone callbacks, one per window slot, allocated once so load
	// issue does not allocate a closure per access.
	onData []func()

	retired    uint64
	cycles     uint64
	stallFull  uint64 // cycles fully stalled with a full window
	stallMSHRs uint64 // issue stops due to MSHR exhaustion
	loadsSent  uint64
	storesSent uint64
}

// New builds a core reading from trace and accessing memory through mem.
func New(cfg Config, trace TraceReader, mem MemPort) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if trace == nil || mem == nil {
		return nil, fmt.Errorf("cpu: trace and mem must be non-nil")
	}
	c := &Core{
		cfg:    cfg,
		trace:  trace,
		mem:    mem,
		window: make([]uint8, cfg.WindowSize),
		onData: make([]func(), cfg.WindowSize),
	}
	for i := range c.onData {
		idx := i
		c.onData[i] = func() {
			c.window[idx] = slotDone
			c.inFlight--
		}
	}
	c.nextRecord()
	return c, nil
}

// nextRecord pulls the next trace record into the issue stage.
func (c *Core) nextRecord() {
	c.rec = c.trace.Next()
	c.bubblesLeft = c.rec.Bubbles
	c.loadPending = true
	c.wbPending = c.rec.HasWriteback
}

// ID returns the core's identifier.
func (c *Core) ID() int { return c.cfg.ID }

// Retired returns the number of retired instructions.
func (c *Core) Retired() uint64 { return c.retired }

// Cycles returns the number of executed cycles.
func (c *Core) Cycles() uint64 { return c.cycles }

// IPC returns retired instructions per cycle.
func (c *Core) IPC() float64 {
	if c.cycles == 0 {
		return 0
	}
	return float64(c.retired) / float64(c.cycles)
}

// LoadsSent returns the number of loads issued to the memory hierarchy.
func (c *Core) LoadsSent() uint64 { return c.loadsSent }

// StoresSent returns the number of writebacks issued.
func (c *Core) StoresSent() uint64 { return c.storesSent }

// StallCycles returns cycles in which the window was full and nothing
// retired (a pure memory stall).
func (c *Core) StallCycles() uint64 { return c.stallFull }

// ResetStats zeroes retired/cycle counters (after warm-up) while leaving
// the pipeline state intact.
func (c *Core) ResetStats() {
	c.retired = 0
	c.cycles = 0
	c.stallFull = 0
	c.stallMSHRs = 0
	c.loadsSent = 0
	c.storesSent = 0
}

// Tick advances the core by one CPU cycle: retire up to Width completed
// instructions in order, then issue up to Width new ones.
func (c *Core) Tick() {
	c.cycles++

	retiredThis := 0
	for retiredThis < c.cfg.Width && c.count > 0 && c.window[c.head] == slotDone {
		c.head++
		if c.head == len(c.window) {
			c.head = 0
		}
		c.count--
		c.retired++
		retiredThis++
	}

	if c.count == len(c.window) && retiredThis == 0 {
		c.stallFull++
		return
	}

	for issued := 0; issued < c.cfg.Width; issued++ {
		if !c.issueOne() {
			break
		}
	}
}

// issueOne tries to issue the next instruction; it reports whether
// anything was issued.
func (c *Core) issueOne() bool {
	if c.count == len(c.window) {
		return false
	}
	if c.bubblesLeft > 0 {
		c.pushSlot(slotDone)
		c.bubblesLeft--
		return true
	}
	// The record's writeback goes out alongside its load; retry until
	// the memory system accepts it, before issuing the load.
	if c.wbPending {
		if !c.mem.Store(c.rec.WBAddr, c.cfg.ID) {
			return false
		}
		c.wbPending = false
		c.storesSent++
	}
	if c.loadPending {
		if c.inFlight >= c.cfg.MSHRs {
			c.stallMSHRs++
			return false
		}
		idx := c.tail
		c.pushSlot(slotWaiting)
		if !c.mem.Load(c.rec.Addr, c.cfg.ID, c.onData[idx]) {
			c.popSlot()
			return false
		}
		c.inFlight++
		c.loadsSent++
		c.nextRecord()
		return true
	}
	// Record had no load component (not produced by current generators,
	// but legal): consume it.
	c.nextRecord()
	return true
}

func (c *Core) pushSlot(state uint8) {
	c.window[c.tail] = state
	c.tail++
	if c.tail == len(c.window) {
		c.tail = 0
	}
	c.count++
}

func (c *Core) popSlot() {
	c.tail--
	if c.tail < 0 {
		c.tail = len(c.window) - 1
	}
	c.count--
}

// Cycle skipping
//
// The event-driven engine (internal/sim) advances simulated time in
// jumps. The three methods below are the core's side of the contract:
// SkipBudget reports how far the core can jump, and AdvanceIdle /
// RunAhead apply a jump with state and counters bit-identical to the
// same number of Tick calls. The engine guarantees that no memory
// callback (load data return) fires inside a jump — callbacks only run
// during executed cycles, which bound every jump.

// SkipBudget classifies the core's next-cycle behaviour for the
// event-driven engine.
//
// blocked means the core provably cannot change architectural state
// without an external load completion: its window is full behind a
// waiting load, or its next instruction is a load and every MSHR is in
// flight. The engine may skip any number of such cycles (AdvanceIdle).
//
// Otherwise pure is the number of upcoming cycles (possibly 0) that are
// provably internal: every cycle issues a full width of bubbles and —
// when the window head is completed — retires a full width, never
// touching the memory port. The engine may fast-forward up to pure
// cycles (RunAhead). Cycles beyond the budget (partial-width
// boundaries, record fetches, load/writeback issue, retries after a
// rejected access) must run through Tick.
//
// target is the retirement goal of the current measurement window: the
// budget is clamped so retirement can never reach target inside a jump,
// keeping target crossings on executed cycles where the engine observes
// them, exactly like the reference stepper. max caps the answer (the
// engine never jumps past its external-event horizon, so the budget
// needs no look-ahead beyond it).
func (c *Core) SkipBudget(target uint64, max int64) (blocked bool, pure int64) {
	headDone := c.count > 0 && c.window[c.head] == slotDone
	if !headDone {
		if c.count == len(c.window) {
			return true, 0 // full window behind a waiting load
		}
		if c.bubblesLeft == 0 && !c.wbPending && c.loadPending &&
			c.inFlight >= c.cfg.MSHRs {
			return true, 0 // next instruction is a load; MSHRs exhausted
		}
	}
	if c.bubblesLeft < c.cfg.Width {
		return false, 0
	}
	w := c.cfg.Width
	pure = int64(c.bubblesLeft / w)
	if pure > max {
		pure = max
	}
	switch {
	case !headDone:
		// Head is a waiting load: no retirement, issue-only until the
		// window fills.
		free := int64((len(c.window) - c.count) / w)
		if free < pure {
			pure = free
		}
	case c.inFlight == 0:
		// Every occupied slot is completed: full-width flow as long as
		// at least a width can retire each cycle.
		if c.count < w {
			return false, 0
		}
	default:
		// Completed run at the head with waiting loads behind it:
		// full-width flow until retirement reaches the first waiting
		// slot.
		run := int64(c.doneRun(int(pure)*w) / w)
		if run < pure {
			pure = run
		}
	}
	if pure > 0 && c.retired < target {
		headroom := int64(target-c.retired-1) / int64(w)
		if headroom < pure {
			pure = headroom
		}
	}
	return false, pure
}

// doneRun counts consecutive completed slots from the head, up to max.
func (c *Core) doneRun(max int) int {
	if max > c.count {
		max = c.count
	}
	i := c.head
	n := 0
	for n < max && c.window[i] == slotDone {
		n++
		i++
		if i == len(c.window) {
			i = 0
		}
	}
	return n
}

// AdvanceIdle accounts k skipped cycles on a blocked core (see
// SkipBudget): the reference stepper would have spent each of them
// incrementing the cycle counter and one stall counter.
func (c *Core) AdvanceIdle(k int64) {
	c.cycles += uint64(k)
	if c.count == len(c.window) {
		c.stallFull += uint64(k)
	} else {
		c.stallMSHRs += uint64(k)
	}
}

// RunAhead fast-forwards k pure cycles (k must not exceed the pure
// budget SkipBudget reported with the core in its current state). Each
// cycle issues Width bubbles and, when the head run is completed,
// retires Width instructions — the bulk equivalent of k Ticks.
func (c *Core) RunAhead(k int64) {
	w := c.cfg.Width
	n := int(k) * w
	c.cycles += uint64(k)
	c.bubblesLeft -= n
	retiring := c.count > 0 && c.window[c.head] == slotDone
	// Mark the n issued slots completed in at most two contiguous
	// stretches (slotDone is the zero value, so these compile to
	// memclr). n can exceed the window size in steady full-width flow
	// (retire and issue pass over every slot); the ring then ends up
	// all-completed.
	size := len(c.window)
	if n >= size {
		for i := range c.window {
			c.window[i] = slotDone
		}
	} else {
		first := n
		if c.tail+first > size {
			first = size - c.tail
			rest := c.window[:n-first]
			for i := range rest {
				rest[i] = slotDone
			}
		}
		seg := c.window[c.tail : c.tail+first]
		for i := range seg {
			seg[i] = slotDone
		}
	}
	c.tail = (c.tail + n) % size
	if retiring {
		c.retired += uint64(n)
		c.head = (c.head + n) % size
	} else {
		c.count += n
	}
}

// WindowOccupancy returns the number of occupied window slots.
func (c *Core) WindowOccupancy() int { return c.count }

// InFlightLoads returns the number of loads awaiting data.
func (c *Core) InFlightLoads() int { return c.inFlight }
