// Package cpu implements the trace-driven processor core of the
// evaluated system (Table 1): 3-wide issue, a 128-entry instruction
// window, and 8 MSHRs per core, clocked at 4 GHz.
//
// Cores consume trace records in Ramulator's cpu-trace shape: a number of
// non-memory "bubble" instructions, a load address, and an optional
// writeback address. Bubbles retire at up to the issue width per cycle;
// loads occupy a window slot until their data returns from the cache
// hierarchy; writebacks are sent to the memory system without occupying
// the window.
package cpu

import "fmt"

// TraceRecord is one unit of work: Bubbles non-memory instructions
// followed by one load, optionally paired with a writeback that models a
// dirty line displaced from the upper-level caches by the load's fill.
type TraceRecord struct {
	Bubbles int
	Addr    uint64

	HasWriteback bool
	WBAddr       uint64
}

// TraceReader produces an endless stream of trace records. Generators in
// package workload implement it.
type TraceReader interface {
	Next() TraceRecord
}

// MemPort is the core's connection to the cache hierarchy. Both methods
// report false when the access cannot be accepted this cycle; the core
// retries on the next cycle.
type MemPort interface {
	// Load issues a read for addr; done runs when data is available.
	Load(addr uint64, coreID int, done func()) bool
	// Store issues a writeback for addr (fire and forget).
	Store(addr uint64, coreID int) bool
}

// Config parameterizes a core.
type Config struct {
	ID         int
	Width      int // instructions issued and retired per cycle (3)
	WindowSize int // reorder-window entries (128)
	MSHRs      int // outstanding loads (8)
}

// DefaultConfig returns the Table 1 core parameters.
func DefaultConfig(id int) Config {
	return Config{ID: id, Width: 3, WindowSize: 128, MSHRs: 8}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Width <= 0 || c.WindowSize <= 0 || c.MSHRs <= 0 {
		return fmt.Errorf("cpu: width/window/MSHRs must be positive: %+v", c)
	}
	return nil
}

// slot states within the instruction window.
const (
	slotDone    uint8 = iota // retired-ready (bubble, or load whose data arrived)
	slotWaiting              // load waiting for data
)

// Core is one trace-driven processor core. Not safe for concurrent use.
type Core struct {
	cfg   Config
	trace TraceReader
	mem   MemPort

	window []uint8 // ring buffer of slot states
	head   int     // oldest entry
	tail   int     // next free entry
	count  int

	inFlight int // loads outstanding (<= MSHRs)

	// Current trace record being issued.
	haveRec     bool
	rec         TraceRecord
	bubblesLeft int
	loadPending bool
	wbPending   bool

	retired    uint64
	cycles     uint64
	stallFull  uint64 // cycles fully stalled with a full window
	stallMSHRs uint64 // issue stops due to MSHR exhaustion
	loadsSent  uint64
	storesSent uint64
}

// New builds a core reading from trace and accessing memory through mem.
func New(cfg Config, trace TraceReader, mem MemPort) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if trace == nil || mem == nil {
		return nil, fmt.Errorf("cpu: trace and mem must be non-nil")
	}
	return &Core{
		cfg:    cfg,
		trace:  trace,
		mem:    mem,
		window: make([]uint8, cfg.WindowSize),
	}, nil
}

// ID returns the core's identifier.
func (c *Core) ID() int { return c.cfg.ID }

// Retired returns the number of retired instructions.
func (c *Core) Retired() uint64 { return c.retired }

// Cycles returns the number of executed cycles.
func (c *Core) Cycles() uint64 { return c.cycles }

// IPC returns retired instructions per cycle.
func (c *Core) IPC() float64 {
	if c.cycles == 0 {
		return 0
	}
	return float64(c.retired) / float64(c.cycles)
}

// LoadsSent returns the number of loads issued to the memory hierarchy.
func (c *Core) LoadsSent() uint64 { return c.loadsSent }

// StoresSent returns the number of writebacks issued.
func (c *Core) StoresSent() uint64 { return c.storesSent }

// StallCycles returns cycles in which the window was full and nothing
// retired (a pure memory stall).
func (c *Core) StallCycles() uint64 { return c.stallFull }

// ResetStats zeroes retired/cycle counters (after warm-up) while leaving
// the pipeline state intact.
func (c *Core) ResetStats() {
	c.retired = 0
	c.cycles = 0
	c.stallFull = 0
	c.stallMSHRs = 0
	c.loadsSent = 0
	c.storesSent = 0
}

// Tick advances the core by one CPU cycle: retire up to Width completed
// instructions in order, then issue up to Width new ones.
func (c *Core) Tick() {
	c.cycles++

	retiredThis := 0
	for retiredThis < c.cfg.Width && c.count > 0 && c.window[c.head] == slotDone {
		c.head++
		if c.head == len(c.window) {
			c.head = 0
		}
		c.count--
		c.retired++
		retiredThis++
	}

	if c.count == len(c.window) && retiredThis == 0 {
		c.stallFull++
		return
	}

	for issued := 0; issued < c.cfg.Width; issued++ {
		if !c.issueOne() {
			break
		}
	}
}

// issueOne tries to issue the next instruction; it reports whether
// anything was issued.
func (c *Core) issueOne() bool {
	if c.count == len(c.window) {
		return false
	}
	if !c.haveRec {
		c.rec = c.trace.Next()
		c.haveRec = true
		c.bubblesLeft = c.rec.Bubbles
		c.loadPending = true
		c.wbPending = c.rec.HasWriteback
	}
	if c.bubblesLeft > 0 {
		c.pushSlot(slotDone)
		c.bubblesLeft--
		return true
	}
	// The record's writeback goes out alongside its load; retry until
	// the memory system accepts it, before issuing the load.
	if c.wbPending {
		if !c.mem.Store(c.rec.WBAddr, c.cfg.ID) {
			return false
		}
		c.wbPending = false
		c.storesSent++
	}
	if c.loadPending {
		if c.inFlight >= c.cfg.MSHRs {
			c.stallMSHRs++
			return false
		}
		idx := c.tail
		c.pushSlot(slotWaiting)
		accepted := c.mem.Load(c.rec.Addr, c.cfg.ID, func() {
			c.window[idx] = slotDone
			c.inFlight--
		})
		if !accepted {
			c.popSlot()
			return false
		}
		c.inFlight++
		c.loadsSent++
		c.loadPending = false
		c.haveRec = false
		return true
	}
	// Record had no load component (not produced by current generators,
	// but legal): consume it.
	c.haveRec = false
	return true
}

func (c *Core) pushSlot(state uint8) {
	c.window[c.tail] = state
	c.tail++
	if c.tail == len(c.window) {
		c.tail = 0
	}
	c.count++
}

func (c *Core) popSlot() {
	c.tail--
	if c.tail < 0 {
		c.tail = len(c.window) - 1
	}
	c.count--
}

// WindowOccupancy returns the number of occupied window slots.
func (c *Core) WindowOccupancy() int { return c.count }

// InFlightLoads returns the number of loads awaiting data.
func (c *Core) InFlightLoads() int { return c.inFlight }
