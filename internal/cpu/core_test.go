package cpu

import "testing"

// scriptTrace replays a fixed list of records, then repeats the last one.
type scriptTrace struct {
	recs []TraceRecord
	i    int
}

func (s *scriptTrace) Next() TraceRecord {
	if s.i < len(s.recs) {
		r := s.recs[s.i]
		s.i++
		return r
	}
	return s.recs[len(s.recs)-1]
}

// fakeMem accepts loads/stores and completes loads on demand.
type fakeMem struct {
	pending     []func()
	loads       uint64
	stores      uint64
	rejectLoad  bool
	rejectStore bool
	latencyZero bool // complete loads immediately
}

func (m *fakeMem) Load(addr uint64, coreID int, done func()) bool {
	if m.rejectLoad {
		return false
	}
	m.loads++
	if m.latencyZero {
		done()
		return true
	}
	m.pending = append(m.pending, done)
	return true
}

func (m *fakeMem) Store(addr uint64, coreID int) bool {
	if m.rejectStore {
		return false
	}
	m.stores++
	return true
}

func (m *fakeMem) completeOne() {
	if len(m.pending) == 0 {
		return
	}
	done := m.pending[0]
	m.pending = m.pending[1:]
	done()
}

func newCore(t *testing.T, trace TraceReader, mem MemPort) *Core {
	t.Helper()
	c, err := New(DefaultConfig(0), trace, mem)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	bad := DefaultConfig(0)
	bad.Width = 0
	if _, err := New(bad, &scriptTrace{recs: []TraceRecord{{}}}, &fakeMem{}); err == nil {
		t.Error("accepted zero width")
	}
	if _, err := New(DefaultConfig(0), nil, &fakeMem{}); err == nil {
		t.Error("accepted nil trace")
	}
	if _, err := New(DefaultConfig(0), &scriptTrace{recs: []TraceRecord{{}}}, nil); err == nil {
		t.Error("accepted nil mem")
	}
	if c := DefaultConfig(3); c.ID != 3 || c.Width != 3 || c.WindowSize != 128 || c.MSHRs != 8 {
		t.Errorf("DefaultConfig = %+v", c)
	}
}

func TestBubblesRetireAtWidth(t *testing.T) {
	// A record with many bubbles and an instantly-completing load.
	tr := &scriptTrace{recs: []TraceRecord{{Bubbles: 299, Addr: 0x100}}}
	mem := &fakeMem{latencyZero: true}
	c := newCore(t, tr, mem)
	for i := 0; i < 100; i++ {
		c.Tick()
	}
	// Width 3, 100 cycles: at most 300 issued; retirement lags issue by
	// one cycle, so expect close to 3 IPC.
	if ipc := c.IPC(); ipc < 2.5 || ipc > 3.0 {
		t.Errorf("IPC = %g, want ~3 for bubble-dominated trace", ipc)
	}
}

func TestLoadBlocksRetirement(t *testing.T) {
	tr := &scriptTrace{recs: []TraceRecord{{Bubbles: 0, Addr: 0x40}}}
	mem := &fakeMem{}
	c := newCore(t, tr, mem)
	// With loads never completing, the window fills with waiting loads
	// (bounded by MSHRs) and retirement stops.
	for i := 0; i < 50; i++ {
		c.Tick()
	}
	if c.Retired() != 0 {
		t.Errorf("retired = %d with no load completions", c.Retired())
	}
	if c.InFlightLoads() != DefaultConfig(0).MSHRs {
		t.Errorf("in-flight = %d, want MSHR limit %d", c.InFlightLoads(), DefaultConfig(0).MSHRs)
	}
	// Complete one load: exactly one instruction becomes retirable.
	mem.completeOne()
	c.Tick()
	if c.Retired() != 1 {
		t.Errorf("retired = %d after one completion", c.Retired())
	}
}

func TestMSHRLimitEnforced(t *testing.T) {
	cfg := DefaultConfig(0)
	cfg.MSHRs = 2
	tr := &scriptTrace{recs: []TraceRecord{{Addr: 0x40}}}
	mem := &fakeMem{}
	c, err := New(cfg, tr, mem)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		c.Tick()
	}
	if mem.loads != 2 {
		t.Errorf("loads sent = %d, want MSHR limit 2", mem.loads)
	}
}

func TestWritebackAccompaniesLoad(t *testing.T) {
	tr := &scriptTrace{recs: []TraceRecord{
		{Bubbles: 1, Addr: 0x40, HasWriteback: true, WBAddr: 0x8000},
	}}
	mem := &fakeMem{latencyZero: true}
	c := newCore(t, tr, mem)
	c.Tick()
	if mem.stores == 0 {
		t.Error("no writeback sent")
	}
	if c.StoresSent() == 0 || c.LoadsSent() == 0 {
		t.Errorf("stats: loads=%d stores=%d", c.LoadsSent(), c.StoresSent())
	}
}

func TestStoreRejectionRetriesNextCycle(t *testing.T) {
	tr := &scriptTrace{recs: []TraceRecord{
		{Addr: 0x40, HasWriteback: true, WBAddr: 0x8000},
	}}
	mem := &fakeMem{latencyZero: true, rejectStore: true}
	c := newCore(t, tr, mem)
	c.Tick()
	if mem.loads != 0 {
		t.Error("load issued before its writeback was accepted")
	}
	mem.rejectStore = false
	c.Tick()
	// The trace repeats, so several records may issue this cycle; each
	// load must have been preceded by its accepted writeback.
	if mem.stores == 0 || mem.loads == 0 || mem.stores != mem.loads {
		t.Errorf("after retry: stores=%d loads=%d, want equal and nonzero", mem.stores, mem.loads)
	}
}

func TestLoadRejectionRetries(t *testing.T) {
	tr := &scriptTrace{recs: []TraceRecord{{Addr: 0x40}}}
	mem := &fakeMem{rejectLoad: true}
	c := newCore(t, tr, mem)
	c.Tick()
	if c.WindowOccupancy() != 0 {
		t.Error("rejected load left a window slot allocated")
	}
	mem.rejectLoad = false
	c.Tick()
	if mem.loads == 0 {
		t.Error("load not retried")
	}
}

func TestWindowFullStallCounted(t *testing.T) {
	cfg := DefaultConfig(0)
	cfg.WindowSize = 4
	cfg.MSHRs = 8
	tr := &scriptTrace{recs: []TraceRecord{{Addr: 0x40}}}
	mem := &fakeMem{}
	c, err := New(cfg, tr, mem)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		c.Tick()
	}
	if c.StallCycles() == 0 {
		t.Error("no full-window stalls with never-completing loads")
	}
	if c.WindowOccupancy() != 4 {
		t.Errorf("occupancy = %d, want full window 4", c.WindowOccupancy())
	}
}

func TestInOrderRetirement(t *testing.T) {
	// Two loads; the second completes first. Retirement must wait for
	// the first.
	tr := &scriptTrace{recs: []TraceRecord{
		{Addr: 0x40},
		{Addr: 0x80},
	}}
	mem := &fakeMem{}
	c := newCore(t, tr, mem)
	c.Tick() // issue both loads (width 3)
	if len(mem.pending) < 2 {
		t.Fatalf("loads issued = %d, want 2", len(mem.pending))
	}
	// Complete the second load only.
	mem.pending[1]()
	mem.pending = mem.pending[:1]
	c.Tick()
	if c.Retired() != 0 {
		t.Errorf("retired = %d with the oldest load outstanding", c.Retired())
	}
	mem.completeOne()
	c.Tick()
	if c.Retired() < 2 {
		t.Errorf("retired = %d after both completions", c.Retired())
	}
}

func TestResetStatsKeepsPipeline(t *testing.T) {
	tr := &scriptTrace{recs: []TraceRecord{{Bubbles: 10, Addr: 0x40}}}
	mem := &fakeMem{latencyZero: true}
	c := newCore(t, tr, mem)
	for i := 0; i < 10; i++ {
		c.Tick()
	}
	c.ResetStats()
	if c.Retired() != 0 || c.Cycles() != 0 || c.IPC() != 0 {
		t.Error("ResetStats did not clear counters")
	}
	c.Tick()
	if c.Cycles() != 1 {
		t.Error("core stopped ticking after reset")
	}
	if c.ID() != 0 {
		t.Errorf("ID = %d", c.ID())
	}
}

func TestIPCZeroWithoutCycles(t *testing.T) {
	tr := &scriptTrace{recs: []TraceRecord{{Addr: 0x40}}}
	c := newCore(t, tr, &fakeMem{})
	if c.IPC() != 0 {
		t.Error("IPC nonzero before any cycle")
	}
}
