// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6) on the simulated system. Each FigN function
// returns the rows of the corresponding plot; cmd/experiments renders
// them as text tables and the root-level benchmarks report their
// headline numbers as benchmark metrics.
//
// Every figure driver builds its full config list up front and submits
// it to the sweep engine (internal/sweep), so campaigns parallelize
// across Scale.Workers goroutines and can resume from a Scale.Cache
// results file. Row content is identical to a serial run regardless of
// worker count.
package experiments

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/dispatch"
	"repro/internal/memctrl"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// Scale controls the simulation budgets. The paper runs 1 B instructions
// per core after 200 M warm-up cycles; these budgets trade fidelity for
// runtime (see EXPERIMENTS.md for the effect).
type Scale struct {
	WarmupInstructions uint64
	RunInstructions    uint64
	Mixes              int // 8-core workload mixes (paper: 20)
	SweepMixes         int // mixes used in capacity/duration sweeps
	MixSeed            uint64

	// Workers is the sweep parallelism of the figure drivers (<= 0
	// means GOMAXPROCS).
	Workers int

	// Cache, when non-nil, memoizes simulation results across figures
	// and process restarts (see sweep.Cache). Figures sharing a config
	// — e.g. the Fig7 baselines and the sweep bases — run it once.
	// With Servers set it doubles as the local consult-first store and
	// write-back target of the distributed dispatcher.
	Cache *sweep.Cache

	// Progress, when non-nil, observes every config completion.
	Progress func(sweep.Event)

	// Servers, when non-empty, lists ccsimd endpoints: every figure
	// driver then dispatches its campaign across the fleet (see
	// internal/dispatch) instead of simulating in this process, with
	// capacity-weighted assignment and automatic failover. Workers is
	// ignored in that mode; LocalWorkers adds in-process slots.
	Servers []string

	// LocalWorkers adds that many in-process simulation slots to the
	// fleet (only meaningful with Servers; 0 = none).
	LocalWorkers int
}

// Quick returns a CI-sized scale (~2 min for everything).
func Quick() Scale {
	return Scale{
		WarmupInstructions: 300_000,
		RunInstructions:    150_000,
		Mixes:              4,
		SweepMixes:         2,
		MixSeed:            42,
	}
}

// Default returns the standard scale (~10-15 min for everything).
func Default() Scale {
	return Scale{
		WarmupInstructions: 1_000_000,
		RunInstructions:    400_000,
		Mixes:              20,
		SweepMixes:         5,
		MixSeed:            42,
	}
}

// Long returns a high-fidelity scale (hours).
func Long() Scale {
	return Scale{
		WarmupInstructions: 4_000_000,
		RunInstructions:    4_000_000,
		Mixes:              20,
		SweepMixes:         10,
		MixSeed:            42,
	}
}

// Mechanisms evaluated against the baseline, in presentation order.
var evaluated = []sim.MechanismKind{sim.NUAT, sim.ChargeCache, sim.ChargeCacheNUAT, sim.LLDRAM}

// runBatch executes jobs through the parallel sweep engine — or, when
// Servers is set, shards them across the ccsimd fleet via the
// distributed dispatcher — honouring the scale's result cache and
// progress sink. Results come back in job order with identical content
// either way.
func (s Scale) runBatch(jobs []sweep.Job) ([]sim.Result, error) {
	if len(s.Servers) > 0 {
		return dispatch.Run(context.Background(), jobs, dispatch.Options{
			Endpoints:    s.Servers,
			LocalWorkers: s.LocalWorkers,
			Cache:        s.Cache,
			Progress:     s.Progress,
		})
	}
	return sweep.Run(context.Background(), jobs, sweep.Options{
		Workers:  s.Workers,
		Cache:    s.Cache,
		Progress: s.Progress,
	})
}

func (s Scale) singleConfig(name string) sim.Config {
	cfg := sim.DefaultConfig(name)
	cfg.WarmupInstructions = s.WarmupInstructions
	cfg.RunInstructions = s.RunInstructions
	return cfg
}

func (s Scale) mixConfig(mix []string) sim.Config {
	cfg := sim.DefaultConfig(mix...)
	cfg.WarmupInstructions = s.WarmupInstructions
	cfg.RunInstructions = s.RunInstructions
	return cfg
}

// configLabel names a config in job labels: the workload for a single
// core, "first+N" for a mix.
func configLabel(cfg sim.Config) string {
	if len(cfg.Workloads) == 1 {
		return cfg.Workloads[0]
	}
	return fmt.Sprintf("%s+%d", cfg.Workloads[0], len(cfg.Workloads)-1)
}

// RLTLRow is one bar of Figures 3 and 4.
type RLTLRow struct {
	Name            string
	IntervalsMs     []float64
	Fractions       []float64 // t-RLTL per interval
	RefreshFraction float64   // "accessed 8ms after refresh"
	Policy          memctrl.RowPolicy
}

// Fig3 measures, per workload, the 8 ms RLTL against the fraction of
// activations within 8 ms of a refresh (Figure 3a single-core, 3b
// eight-core). The 8 ms entry of Fractions corresponds to the paper's
// bars. Fig3 rows reuse the Figure 4 interval set, so the same data
// renders both figures.
func (s Scale) Fig3(eightCore bool) ([]RLTLRow, error) {
	if eightCore {
		return s.rltlRows(workload.EightCoreMixes(s.MixSeed, s.Mixes), memctrl.ClosedRow)
	}
	var singles [][]string
	for _, n := range workload.Names() {
		singles = append(singles, []string{n})
	}
	return s.rltlRows(singles, memctrl.OpenRow)
}

// Fig4 measures the RLTL interval stack for both row policies (Figure 4).
func (s Scale) Fig4(eightCore bool, policy memctrl.RowPolicy) ([]RLTLRow, error) {
	if eightCore {
		return s.rltlRows(workload.EightCoreMixes(s.MixSeed, s.Mixes), policy)
	}
	var singles [][]string
	for _, n := range workload.Names() {
		singles = append(singles, []string{n})
	}
	return s.rltlRows(singles, policy)
}

func (s Scale) rltlRows(sets [][]string, policy memctrl.RowPolicy) ([]RLTLRow, error) {
	jobs := make([]sweep.Job, len(sets))
	names := make([]string, len(sets))
	for i, set := range sets {
		cfg := s.mixConfig(set)
		if len(set) == 1 {
			cfg = s.singleConfig(set[0])
		}
		cfg.RowPolicy = policy
		cfg.TrackRLTL = true
		name := set[0]
		if len(set) > 1 {
			name = fmt.Sprintf("w%d", i+1)
		}
		names[i] = name
		jobs[i] = sweep.Job{Label: fmt.Sprintf("rltl/%v/%s", policy, name), Config: cfg}
	}
	results, err := s.runBatch(jobs)
	if err != nil {
		return nil, err
	}
	rows := make([]RLTLRow, len(results))
	for i, res := range results {
		rows[i] = RLTLRow{
			Name:            names[i],
			IntervalsMs:     res.RLTL.IntervalsMs,
			Fractions:       res.RLTL.Fractions,
			RefreshFraction: res.RLTL.RefreshFraction,
			Policy:          policy,
		}
	}
	return rows, nil
}

// SpeedupRow is one workload (or mix) of Figures 7 and 8.
type SpeedupRow struct {
	Name  string
	RMPKC float64 // baseline row misses per kilo-cycle

	// Speedup maps mechanism -> relative performance gain over baseline
	// (IPC for single-core, weighted speedup for 8-core).
	Speedup map[sim.MechanismKind]float64

	// EnergyReduction maps mechanism -> DRAM energy saved vs baseline.
	EnergyReduction map[sim.MechanismKind]float64

	// HitRate is the ChargeCache HCRAC hit rate.
	HitRate float64
}

// speedupJobs builds one baseline config plus one config per evaluated
// mechanism, in that order — the per-row config group of Figure 7.
func speedupJobs(name string, base sim.Config) []sweep.Job {
	jobs := []sweep.Job{{Label: name + "/Baseline", Config: base}}
	for _, mech := range evaluated {
		cfg := base
		cfg.Mechanism = mech
		jobs = append(jobs, sweep.Job{Label: fmt.Sprintf("%s/%v", name, mech), Config: cfg})
	}
	return jobs
}

// speedupGroupLen is the stride of one speedupJobs group in a batch.
var speedupGroupLen = 1 + len(evaluated)

// Fig7Single produces Figure 7a (plus the Figure 8 single-core energy
// data): per-workload speedups for NUAT, ChargeCache, ChargeCache+NUAT
// and LL-DRAM, sorted by ascending baseline RMPKC as in the paper.
func (s Scale) Fig7Single() ([]SpeedupRow, error) {
	names := workload.Names()
	var jobs []sweep.Job
	for _, name := range names {
		jobs = append(jobs, speedupJobs(name, s.singleConfig(name))...)
	}
	results, err := s.runBatch(jobs)
	if err != nil {
		return nil, err
	}
	var rows []SpeedupRow
	for i, name := range names {
		group := results[i*speedupGroupLen : (i+1)*speedupGroupLen]
		base := group[0]
		row := SpeedupRow{
			Name:            name,
			RMPKC:           base.RMPKC(),
			Speedup:         map[sim.MechanismKind]float64{},
			EnergyReduction: map[sim.MechanismKind]float64{},
		}
		for j, mech := range evaluated {
			res := group[1+j]
			sp, err := stats.Speedup(res.PerCore[0].IPC, base.PerCore[0].IPC)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s baseline for %s: %w", name, mech, err)
			}
			row.Speedup[mech] = sp
			row.EnergyReduction[mech] = 1 - res.Energy.Total()/base.Energy.Total()
			if mech == sim.ChargeCache {
				row.HitRate = res.HitRate()
			}
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].RMPKC < rows[j].RMPKC })
	return rows, nil
}

// Fig7Eight produces Figure 7b (plus Figure 8's eight-core energy data):
// weighted-speedup gains for the multiprogrammed mixes.
func (s Scale) Fig7Eight() ([]SpeedupRow, error) {
	mixes := workload.EightCoreMixes(s.MixSeed, s.Mixes)
	alone, err := s.aloneIPCs(mixes)
	if err != nil {
		return nil, err
	}
	var jobs []sweep.Job
	for i, mix := range mixes {
		jobs = append(jobs, speedupJobs(fmt.Sprintf("w%d", i+1), s.mixConfig(mix))...)
	}
	results, err := s.runBatch(jobs)
	if err != nil {
		return nil, err
	}
	var rows []SpeedupRow
	for i, mix := range mixes {
		aloneVec := make([]float64, len(mix))
		for c, n := range mix {
			aloneVec[c] = alone[n]
		}
		group := results[i*speedupGroupLen : (i+1)*speedupGroupLen]
		base := group[0]
		wsBase, err := stats.WeightedSpeedup(base.IPCs(), aloneVec)
		if err != nil {
			return nil, err
		}
		row := SpeedupRow{
			Name:            fmt.Sprintf("w%d", i+1),
			RMPKC:           base.RMPKC(),
			Speedup:         map[sim.MechanismKind]float64{},
			EnergyReduction: map[sim.MechanismKind]float64{},
		}
		for j, mech := range evaluated {
			res := group[1+j]
			ws, err := stats.WeightedSpeedup(res.IPCs(), aloneVec)
			if err != nil {
				return nil, err
			}
			sp, err := stats.Speedup(ws, wsBase)
			if err != nil {
				return nil, fmt.Errorf("experiments: mix w%d baseline for %s: %w", i+1, mech, err)
			}
			row.Speedup[mech] = sp
			row.EnergyReduction[mech] = 1 - res.Energy.Total()/base.Energy.Total()
			if mech == sim.ChargeCache {
				row.HitRate = res.HitRate()
			}
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].RMPKC < rows[j].RMPKC })
	return rows, nil
}

// aloneIPCs runs every distinct workload of the mixes alone on the
// 8-core memory system (2 channels, closed-row), the weighted-speedup
// denominator.
func (s Scale) aloneIPCs(mixes [][]string) (map[string]float64, error) {
	var order []string
	seen := map[string]bool{}
	for _, mix := range mixes {
		for _, name := range mix {
			if !seen[name] {
				seen[name] = true
				order = append(order, name)
			}
		}
	}
	jobs := make([]sweep.Job, len(order))
	for i, name := range order {
		cfg := s.singleConfig(name)
		cfg.Channels = 2
		cfg.RowPolicy = memctrl.ClosedRow
		jobs[i] = sweep.Job{Label: "alone/" + name, Config: cfg}
	}
	results, err := s.runBatch(jobs)
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for i, res := range results {
		out[order[i]] = res.PerCore[0].IPC
	}
	return out, nil
}

// EnergySummary aggregates Figure 8 from Fig7 rows.
type EnergySummary struct {
	AvgReduction map[sim.MechanismKind]float64
	MaxReduction map[sim.MechanismKind]float64
}

// Fig8 summarizes DRAM energy reduction (average and maximum over
// workloads) from previously computed Fig7 rows.
func Fig8(rows []SpeedupRow) EnergySummary {
	sum := EnergySummary{
		AvgReduction: map[sim.MechanismKind]float64{},
		MaxReduction: map[sim.MechanismKind]float64{},
	}
	for _, mech := range evaluated {
		var vals []float64
		for _, r := range rows {
			vals = append(vals, r.EnergyReduction[mech])
		}
		sum.AvgReduction[mech] = stats.Mean(vals)
		sum.MaxReduction[mech] = stats.Max(vals)
	}
	return sum
}

// CapacityRow is one point of Figures 9 and 10.
type CapacityRow struct {
	Entries   int // per core; 0 = unlimited
	HitRate   float64
	Speedup   float64
	EightCore bool
}

// DefaultCapacitySweep lists the per-core entry counts of Figure 9/10.
var DefaultCapacitySweep = []int{32, 64, 128, 256, 512, 1024}

// Fig9And10 sweeps ChargeCache capacity (entries per core; 0 meaning
// unlimited) and reports hit rate (Figure 9) and speedup (Figure 10).
func (s Scale) Fig9And10(eightCore bool, entries []int) ([]CapacityRow, error) {
	configs, bases, err := s.sweepBases(eightCore)
	if err != nil {
		return nil, err
	}
	points := append(append([]int{}, entries...), 0)
	var jobs []sweep.Job
	for _, n := range points {
		for _, base := range configs {
			cfg := base
			cfg.Mechanism = sim.ChargeCache
			if n == 0 {
				cfg.CCUnlimited = true
			} else {
				cfg.CCEntriesPerCore = n
			}
			jobs = append(jobs, sweep.Job{
				Label:  fmt.Sprintf("fig9/entries=%d/%s", n, configLabel(base)),
				Config: cfg,
			})
		}
	}
	results, err := s.runBatch(jobs)
	if err != nil {
		return nil, err
	}
	var rows []CapacityRow
	for pi, n := range points {
		var hit, speedup []float64
		for i := range configs {
			res := results[pi*len(configs)+i]
			hit = append(hit, res.HitRate())
			sp, err := relativePerf(res, bases[i])
			if err != nil {
				return nil, fmt.Errorf("experiments: fig9 entries=%d: %w", n, err)
			}
			speedup = append(speedup, sp)
		}
		rows = append(rows, CapacityRow{
			Entries:   n,
			HitRate:   stats.Mean(hit),
			Speedup:   stats.Mean(speedup),
			EightCore: eightCore,
		})
	}
	return rows, nil
}

// DurationRow is one point of Figure 11.
type DurationRow struct {
	DurationMs float64
	HitRate    float64
	Speedup    float64
	EightCore  bool
}

// DefaultDurationSweepMs lists the caching durations of Figure 11.
var DefaultDurationSweepMs = []float64{1, 4, 8, 16}

// Fig11 sweeps the caching duration; longer durations raise the hit rate
// slightly but weaken the timing reduction (Table 2), so performance
// drops — the paper's argument for the 1 ms default.
func (s Scale) Fig11(eightCore bool, durationsMs []float64) ([]DurationRow, error) {
	configs, bases, err := s.sweepBases(eightCore)
	if err != nil {
		return nil, err
	}
	var jobs []sweep.Job
	for _, d := range durationsMs {
		for _, base := range configs {
			cfg := base
			cfg.Mechanism = sim.ChargeCache
			cfg.CCDurationMs = d
			jobs = append(jobs, sweep.Job{
				Label:  fmt.Sprintf("fig11/duration=%gms/%s", d, configLabel(base)),
				Config: cfg,
			})
		}
	}
	results, err := s.runBatch(jobs)
	if err != nil {
		return nil, err
	}
	var rows []DurationRow
	for di, d := range durationsMs {
		var hit, speedup []float64
		for i := range configs {
			res := results[di*len(configs)+i]
			hit = append(hit, res.HitRate())
			sp, err := relativePerf(res, bases[i])
			if err != nil {
				return nil, fmt.Errorf("experiments: fig11 duration=%gms: %w", d, err)
			}
			speedup = append(speedup, sp)
		}
		rows = append(rows, DurationRow{
			DurationMs: d,
			HitRate:    stats.Mean(hit),
			Speedup:    stats.Mean(speedup),
			EightCore:  eightCore,
		})
	}
	return rows, nil
}

// sweepBases builds the baseline configs and results for sweeps: a
// representative subset (all 22 workloads for single-core; SweepMixes
// mixes for eight-core).
func (s Scale) sweepBases(eightCore bool) ([]sim.Config, []sim.Result, error) {
	var configs []sim.Config
	if eightCore {
		for _, mix := range workload.EightCoreMixes(s.MixSeed, s.SweepMixes) {
			configs = append(configs, s.mixConfig(mix))
		}
	} else {
		for _, name := range workload.Names() {
			configs = append(configs, s.singleConfig(name))
		}
	}
	jobs := make([]sweep.Job, len(configs))
	for i, cfg := range configs {
		jobs[i] = sweep.Job{Label: "base/" + configLabel(cfg), Config: cfg}
	}
	bases, err := s.runBatch(jobs)
	if err != nil {
		return nil, nil, err
	}
	return configs, bases, nil
}

// relativePerf returns the performance of res relative to base: IPC
// ratio for one core, total-IPC ratio for many (equal weights — the
// sweeps compare the same mix against itself, where total IPC and
// weighted speedup move together).
func relativePerf(res, base sim.Result) (float64, error) {
	return stats.Speedup(stats.Sum(res.IPCs()), stats.Sum(base.IPCs()))
}
