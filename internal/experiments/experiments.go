// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6) on the simulated system. Each FigN function
// returns the rows of the corresponding plot; cmd/experiments renders
// them as text tables and the root-level benchmarks report their
// headline numbers as benchmark metrics.
package experiments

import (
	"fmt"
	"sort"

	"repro/internal/memctrl"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Scale controls the simulation budgets. The paper runs 1 B instructions
// per core after 200 M warm-up cycles; these budgets trade fidelity for
// runtime (see EXPERIMENTS.md for the effect).
type Scale struct {
	WarmupInstructions uint64
	RunInstructions    uint64
	Mixes              int // 8-core workload mixes (paper: 20)
	SweepMixes         int // mixes used in capacity/duration sweeps
	MixSeed            uint64
}

// Quick returns a CI-sized scale (~2 min for everything).
func Quick() Scale {
	return Scale{
		WarmupInstructions: 300_000,
		RunInstructions:    150_000,
		Mixes:              4,
		SweepMixes:         2,
		MixSeed:            42,
	}
}

// Default returns the standard scale (~10-15 min for everything).
func Default() Scale {
	return Scale{
		WarmupInstructions: 1_000_000,
		RunInstructions:    400_000,
		Mixes:              20,
		SweepMixes:         5,
		MixSeed:            42,
	}
}

// Long returns a high-fidelity scale (hours).
func Long() Scale {
	return Scale{
		WarmupInstructions: 4_000_000,
		RunInstructions:    4_000_000,
		Mixes:              20,
		SweepMixes:         10,
		MixSeed:            42,
	}
}

// Mechanisms evaluated against the baseline, in presentation order.
var evaluated = []sim.MechanismKind{sim.NUAT, sim.ChargeCache, sim.ChargeCacheNUAT, sim.LLDRAM}

// runOne executes one simulation.
func runOne(cfg sim.Config) (sim.Result, error) {
	s, err := sim.New(cfg)
	if err != nil {
		return sim.Result{}, err
	}
	return s.Run()
}

func (s Scale) singleConfig(name string) sim.Config {
	cfg := sim.DefaultConfig(name)
	cfg.WarmupInstructions = s.WarmupInstructions
	cfg.RunInstructions = s.RunInstructions
	return cfg
}

func (s Scale) mixConfig(mix []string) sim.Config {
	cfg := sim.DefaultConfig(mix...)
	cfg.WarmupInstructions = s.WarmupInstructions
	cfg.RunInstructions = s.RunInstructions
	return cfg
}

// RLTLRow is one bar of Figures 3 and 4.
type RLTLRow struct {
	Name            string
	IntervalsMs     []float64
	Fractions       []float64 // t-RLTL per interval
	RefreshFraction float64   // "accessed 8ms after refresh"
	Policy          memctrl.RowPolicy
}

// Fig3 measures, per workload, the 8 ms RLTL against the fraction of
// activations within 8 ms of a refresh (Figure 3a single-core, 3b
// eight-core). The 8 ms entry of Fractions corresponds to the paper's
// bars. Fig3 rows reuse the Figure 4 interval set, so the same data
// renders both figures.
func (s Scale) Fig3(eightCore bool) ([]RLTLRow, error) {
	if eightCore {
		return s.rltlRows(workload.EightCoreMixes(s.MixSeed, s.Mixes), memctrl.ClosedRow)
	}
	var singles [][]string
	for _, n := range workload.Names() {
		singles = append(singles, []string{n})
	}
	return s.rltlRows(singles, memctrl.OpenRow)
}

// Fig4 measures the RLTL interval stack for both row policies (Figure 4).
func (s Scale) Fig4(eightCore bool, policy memctrl.RowPolicy) ([]RLTLRow, error) {
	if eightCore {
		return s.rltlRows(workload.EightCoreMixes(s.MixSeed, s.Mixes), policy)
	}
	var singles [][]string
	for _, n := range workload.Names() {
		singles = append(singles, []string{n})
	}
	return s.rltlRows(singles, policy)
}

func (s Scale) rltlRows(sets [][]string, policy memctrl.RowPolicy) ([]RLTLRow, error) {
	var rows []RLTLRow
	for i, set := range sets {
		cfg := s.mixConfig(set)
		if len(set) == 1 {
			cfg = s.singleConfig(set[0])
		}
		cfg.RowPolicy = policy
		cfg.TrackRLTL = true
		res, err := runOne(cfg)
		if err != nil {
			return nil, err
		}
		name := set[0]
		if len(set) > 1 {
			name = fmt.Sprintf("w%d", i+1)
		}
		rows = append(rows, RLTLRow{
			Name:            name,
			IntervalsMs:     res.RLTL.IntervalsMs,
			Fractions:       res.RLTL.Fractions,
			RefreshFraction: res.RLTL.RefreshFraction,
			Policy:          policy,
		})
	}
	return rows, nil
}

// SpeedupRow is one workload (or mix) of Figures 7 and 8.
type SpeedupRow struct {
	Name  string
	RMPKC float64 // baseline row misses per kilo-cycle

	// Speedup maps mechanism -> relative performance gain over baseline
	// (IPC for single-core, weighted speedup for 8-core).
	Speedup map[sim.MechanismKind]float64

	// EnergyReduction maps mechanism -> DRAM energy saved vs baseline.
	EnergyReduction map[sim.MechanismKind]float64

	// HitRate is the ChargeCache HCRAC hit rate.
	HitRate float64
}

// Fig7Single produces Figure 7a (plus the Figure 8 single-core energy
// data): per-workload speedups for NUAT, ChargeCache, ChargeCache+NUAT
// and LL-DRAM, sorted by ascending baseline RMPKC as in the paper.
func (s Scale) Fig7Single() ([]SpeedupRow, error) {
	var rows []SpeedupRow
	for _, name := range workload.Names() {
		base, err := runOne(s.singleConfig(name))
		if err != nil {
			return nil, err
		}
		row := SpeedupRow{
			Name:            name,
			RMPKC:           base.RMPKC(),
			Speedup:         map[sim.MechanismKind]float64{},
			EnergyReduction: map[sim.MechanismKind]float64{},
		}
		for _, mech := range evaluated {
			cfg := s.singleConfig(name)
			cfg.Mechanism = mech
			res, err := runOne(cfg)
			if err != nil {
				return nil, err
			}
			row.Speedup[mech] = stats.Speedup(res.PerCore[0].IPC, base.PerCore[0].IPC)
			row.EnergyReduction[mech] = 1 - res.Energy.Total()/base.Energy.Total()
			if mech == sim.ChargeCache {
				row.HitRate = res.HitRate()
			}
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].RMPKC < rows[j].RMPKC })
	return rows, nil
}

// Fig7Eight produces Figure 7b (plus Figure 8's eight-core energy data):
// weighted-speedup gains for the multiprogrammed mixes.
func (s Scale) Fig7Eight() ([]SpeedupRow, error) {
	mixes := workload.EightCoreMixes(s.MixSeed, s.Mixes)
	alone, err := s.aloneIPCs(mixes)
	if err != nil {
		return nil, err
	}
	var rows []SpeedupRow
	for i, mix := range mixes {
		aloneVec := make([]float64, len(mix))
		for c, n := range mix {
			aloneVec[c] = alone[n]
		}
		base, err := runOne(s.mixConfig(mix))
		if err != nil {
			return nil, err
		}
		wsBase, err := stats.WeightedSpeedup(base.IPCs(), aloneVec)
		if err != nil {
			return nil, err
		}
		row := SpeedupRow{
			Name:            fmt.Sprintf("w%d", i+1),
			RMPKC:           base.RMPKC(),
			Speedup:         map[sim.MechanismKind]float64{},
			EnergyReduction: map[sim.MechanismKind]float64{},
		}
		for _, mech := range evaluated {
			cfg := s.mixConfig(mix)
			cfg.Mechanism = mech
			res, err := runOne(cfg)
			if err != nil {
				return nil, err
			}
			ws, err := stats.WeightedSpeedup(res.IPCs(), aloneVec)
			if err != nil {
				return nil, err
			}
			row.Speedup[mech] = stats.Speedup(ws, wsBase)
			row.EnergyReduction[mech] = 1 - res.Energy.Total()/base.Energy.Total()
			if mech == sim.ChargeCache {
				row.HitRate = res.HitRate()
			}
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].RMPKC < rows[j].RMPKC })
	return rows, nil
}

// aloneIPCs runs every distinct workload of the mixes alone on the
// 8-core memory system (2 channels, closed-row), the weighted-speedup
// denominator.
func (s Scale) aloneIPCs(mixes [][]string) (map[string]float64, error) {
	out := map[string]float64{}
	for _, mix := range mixes {
		for _, name := range mix {
			if _, ok := out[name]; ok {
				continue
			}
			cfg := s.singleConfig(name)
			cfg.Channels = 2
			cfg.RowPolicy = memctrl.ClosedRow
			res, err := runOne(cfg)
			if err != nil {
				return nil, err
			}
			out[name] = res.PerCore[0].IPC
		}
	}
	return out, nil
}

// EnergySummary aggregates Figure 8 from Fig7 rows.
type EnergySummary struct {
	AvgReduction map[sim.MechanismKind]float64
	MaxReduction map[sim.MechanismKind]float64
}

// Fig8 summarizes DRAM energy reduction (average and maximum over
// workloads) from previously computed Fig7 rows.
func Fig8(rows []SpeedupRow) EnergySummary {
	sum := EnergySummary{
		AvgReduction: map[sim.MechanismKind]float64{},
		MaxReduction: map[sim.MechanismKind]float64{},
	}
	for _, mech := range evaluated {
		var vals []float64
		for _, r := range rows {
			vals = append(vals, r.EnergyReduction[mech])
		}
		sum.AvgReduction[mech] = stats.Mean(vals)
		sum.MaxReduction[mech] = stats.Max(vals)
	}
	return sum
}

// CapacityRow is one point of Figures 9 and 10.
type CapacityRow struct {
	Entries   int // per core; 0 = unlimited
	HitRate   float64
	Speedup   float64
	EightCore bool
}

// DefaultCapacitySweep lists the per-core entry counts of Figure 9/10.
var DefaultCapacitySweep = []int{32, 64, 128, 256, 512, 1024}

// Fig9And10 sweeps ChargeCache capacity (entries per core; 0 meaning
// unlimited) and reports hit rate (Figure 9) and speedup (Figure 10).
func (s Scale) Fig9And10(eightCore bool, entries []int) ([]CapacityRow, error) {
	configs, bases, err := s.sweepBases(eightCore)
	if err != nil {
		return nil, err
	}
	var rows []CapacityRow
	for _, n := range append(append([]int{}, entries...), 0) {
		var hit, speedup []float64
		for i, base := range configs {
			cfg := base
			cfg.Mechanism = sim.ChargeCache
			if n == 0 {
				cfg.CCUnlimited = true
			} else {
				cfg.CCEntriesPerCore = n
			}
			res, err := runOne(cfg)
			if err != nil {
				return nil, err
			}
			hit = append(hit, res.HitRate())
			speedup = append(speedup, relativePerf(res, bases[i]))
		}
		rows = append(rows, CapacityRow{
			Entries:   n,
			HitRate:   stats.Mean(hit),
			Speedup:   stats.Mean(speedup),
			EightCore: eightCore,
		})
	}
	return rows, nil
}

// DurationRow is one point of Figure 11.
type DurationRow struct {
	DurationMs float64
	HitRate    float64
	Speedup    float64
	EightCore  bool
}

// DefaultDurationSweepMs lists the caching durations of Figure 11.
var DefaultDurationSweepMs = []float64{1, 4, 8, 16}

// Fig11 sweeps the caching duration; longer durations raise the hit rate
// slightly but weaken the timing reduction (Table 2), so performance
// drops — the paper's argument for the 1 ms default.
func (s Scale) Fig11(eightCore bool, durationsMs []float64) ([]DurationRow, error) {
	configs, bases, err := s.sweepBases(eightCore)
	if err != nil {
		return nil, err
	}
	var rows []DurationRow
	for _, d := range durationsMs {
		var hit, speedup []float64
		for i, base := range configs {
			cfg := base
			cfg.Mechanism = sim.ChargeCache
			cfg.CCDurationMs = d
			res, err := runOne(cfg)
			if err != nil {
				return nil, err
			}
			hit = append(hit, res.HitRate())
			speedup = append(speedup, relativePerf(res, bases[i]))
		}
		rows = append(rows, DurationRow{
			DurationMs: d,
			HitRate:    stats.Mean(hit),
			Speedup:    stats.Mean(speedup),
			EightCore:  eightCore,
		})
	}
	return rows, nil
}

// sweepBases builds the baseline configs and results for sweeps: a
// representative subset (all 22 workloads for single-core; SweepMixes
// mixes for eight-core).
func (s Scale) sweepBases(eightCore bool) ([]sim.Config, []sim.Result, error) {
	var configs []sim.Config
	if eightCore {
		for _, mix := range workload.EightCoreMixes(s.MixSeed, s.SweepMixes) {
			configs = append(configs, s.mixConfig(mix))
		}
	} else {
		for _, name := range workload.Names() {
			configs = append(configs, s.singleConfig(name))
		}
	}
	var bases []sim.Result
	for _, cfg := range configs {
		res, err := runOne(cfg)
		if err != nil {
			return nil, nil, err
		}
		bases = append(bases, res)
	}
	return configs, bases, nil
}

// relativePerf returns the performance of res relative to base: IPC
// ratio for one core, total-IPC ratio for many (equal weights — the
// sweeps compare the same mix against itself, where total IPC and
// weighted speedup move together).
func relativePerf(res, base sim.Result) float64 {
	perf := func(r sim.Result) float64 {
		total := 0.0
		for _, pc := range r.PerCore {
			total += pc.IPC
		}
		return total
	}
	return stats.Speedup(perf(res), perf(base))
}
