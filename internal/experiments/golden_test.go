package experiments

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sim"
)

var update = flag.Bool("update", false, "rewrite the golden files with freshly computed rows")

// TestGoldenQuickFig3Fig7 snapshots the Quick()-scale Figure 3a and
// Figure 7a rows against a golden file, so refactors of the controller,
// mechanisms or timing model cannot silently shift the reproduced paper
// numbers. Regenerate deliberately with:
//
//	go test ./internal/experiments -run TestGoldenQuickFig3Fig7 -update
func TestGoldenQuickFig3Fig7(t *testing.T) {
	if testing.Short() {
		t.Skip("golden regression runs Quick()-scale simulations; skipped in -short mode")
	}
	s := Quick()

	var b strings.Builder
	rows3, err := s.Fig3(false)
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString("== Fig3 single-core (Quick scale) ==\n")
	for _, r := range rows3 {
		fmt.Fprintf(&b, "%s policy=%v refresh=%.9g fractions=", r.Name, r.Policy, r.RefreshFraction)
		for i, f := range r.Fractions {
			fmt.Fprintf(&b, "%gms:%.9g ", r.IntervalsMs[i], f)
		}
		b.WriteString("\n")
	}

	rows7, err := s.Fig7Single()
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString("== Fig7 single-core (Quick scale) ==\n")
	for _, r := range rows7 {
		fmt.Fprintf(&b, "%s rmpkc=%.9g hit=%.9g", r.Name, r.RMPKC, r.HitRate)
		for _, mech := range []sim.MechanismKind{sim.NUAT, sim.ChargeCache, sim.ChargeCacheNUAT, sim.LLDRAM} {
			fmt.Fprintf(&b, " %v=%.9g/%.9g", mech, r.Speedup[mech], r.EnergyReduction[mech])
		}
		b.WriteString("\n")
	}

	got := b.String()
	path := filepath.Join("testdata", "quick_fig3_fig7.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d rows)", path, len(rows3)+len(rows7))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if got == string(want) {
		return
	}
	gotLines := strings.Split(got, "\n")
	wantLines := strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Errorf("line %d drifted from golden file:\n got  %s\n want %s", i+1, g, w)
		}
	}
	t.Fatalf("reproduced paper rows drifted from %s; if the change is intended, rerun with -update", path)
}
