package experiments

import (
	"testing"

	"repro/internal/memctrl"
	"repro/internal/sim"
)

// tinyScale keeps harness tests fast; it exercises plumbing, not
// fidelity.
func tinyScale() Scale {
	return Scale{
		WarmupInstructions: 30_000,
		RunInstructions:    40_000,
		Mixes:              2,
		SweepMixes:         1,
		MixSeed:            7,
	}
}

func TestScalePresetsOrdered(t *testing.T) {
	q, d, l := Quick(), Default(), Long()
	if !(q.RunInstructions < d.RunInstructions && d.RunInstructions < l.RunInstructions) {
		t.Error("scales not ordered by instruction budget")
	}
	if q.Mixes <= 0 || d.Mixes != 20 || l.Mixes != 20 {
		t.Error("mix counts wrong")
	}
}

func TestFig3SingleCoreRows(t *testing.T) {
	rows, err := tinyScale().Fig3(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 22 {
		t.Fatalf("rows = %d, want 22 workloads", len(rows))
	}
	for _, r := range rows {
		if len(r.Fractions) != len(r.IntervalsMs) {
			t.Fatalf("%s: fractions/intervals mismatch", r.Name)
		}
		for i, f := range r.Fractions {
			if f < 0 || f > 1 {
				t.Errorf("%s: fraction[%d] = %g", r.Name, i, f)
			}
		}
		if r.RefreshFraction < 0 || r.RefreshFraction > 1 {
			t.Errorf("%s: refresh fraction = %g", r.Name, r.RefreshFraction)
		}
	}
}

func TestFig3EightCoreRows(t *testing.T) {
	rows, err := tinyScale().Fig3(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want Mixes", len(rows))
	}
	if rows[0].Name != "w1" || rows[1].Name != "w2" {
		t.Errorf("mix names = %s, %s", rows[0].Name, rows[1].Name)
	}
}

func TestFig4PolicyPlumbs(t *testing.T) {
	s := tinyScale()
	rows, err := s.Fig4(false, memctrl.ClosedRow)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Policy != memctrl.ClosedRow {
		t.Error("policy not recorded")
	}
}

func TestFig7SingleShape(t *testing.T) {
	rows, err := tinyScale().Fig7Single()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 22 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Sorted ascending by RMPKC, as the paper plots.
	for i := 1; i < len(rows); i++ {
		if rows[i].RMPKC < rows[i-1].RMPKC {
			t.Fatal("rows not sorted by RMPKC")
		}
	}
	for _, r := range rows {
		for _, mech := range []sim.MechanismKind{sim.NUAT, sim.ChargeCache, sim.ChargeCacheNUAT, sim.LLDRAM} {
			if _, ok := r.Speedup[mech]; !ok {
				t.Fatalf("%s missing %v speedup", r.Name, mech)
			}
			if _, ok := r.EnergyReduction[mech]; !ok {
				t.Fatalf("%s missing %v energy", r.Name, mech)
			}
		}
	}
}

func TestFig7EightAndFig8(t *testing.T) {
	rows, err := tinyScale().Fig7Eight()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	sum := Fig8(rows)
	for _, mech := range []sim.MechanismKind{sim.ChargeCache, sim.LLDRAM} {
		if sum.MaxReduction[mech] < sum.AvgReduction[mech] {
			t.Errorf("%v: max < avg", mech)
		}
	}
}

func TestFig9And10CapacitySweep(t *testing.T) {
	rows, err := tinyScale().Fig9And10(false, []int{64, 256})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // 64, 256, unlimited
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[len(rows)-1].Entries != 0 {
		t.Error("unlimited row missing")
	}
	// More capacity cannot reduce the hit rate (modulo tiny noise).
	if rows[1].HitRate < rows[0].HitRate-0.02 {
		t.Errorf("hit rate fell with capacity: %v", rows)
	}
	if rows[2].HitRate < rows[1].HitRate-0.02 {
		t.Errorf("unlimited hit rate below bounded: %v", rows)
	}
}

func TestFig11DurationSweep(t *testing.T) {
	rows, err := tinyScale().Fig11(false, []float64{1, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Longer duration means weaker timing reduction: speedup must not
	// improve (the Figure 11 trend).
	if rows[1].Speedup > rows[0].Speedup+0.01 {
		t.Errorf("16ms speedup %g above 1ms %g", rows[1].Speedup, rows[0].Speedup)
	}
}
