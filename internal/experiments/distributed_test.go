package experiments

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/sweep"
)

// TestRunBatchDistributed pins the figure drivers' fleet path: a Scale
// with Servers set must route runBatch through the dispatcher and
// produce rows identical to in-process execution.
func TestRunBatchDistributed(t *testing.T) {
	var endpoints []string
	for i := 0; i < 2; i++ {
		m := server.NewManager(server.ManagerConfig{Workers: 2, QueueDepth: 32})
		ts := httptest.NewServer(server.New(m))
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
			defer cancel()
			_ = m.Drain(ctx)
			ts.Close()
		})
		endpoints = append(endpoints, ts.URL)
	}

	local := tinyScale()
	rows, err := local.Fig9And10(false, []int{64, 128})
	if err != nil {
		t.Fatal(err)
	}

	remote := tinyScale()
	remote.Servers = endpoints
	var events int
	remote.Progress = func(sweep.Event) { events++ }
	distRows, err := remote.Fig9And10(false, []int{64, 128})
	if err != nil {
		t.Fatal(err)
	}

	lb, err := json.Marshal(rows)
	if err != nil {
		t.Fatal(err)
	}
	db, err := json.Marshal(distRows)
	if err != nil {
		t.Fatal(err)
	}
	if string(lb) != string(db) {
		t.Errorf("distributed Fig9/10 rows differ from local rows:\nlocal  %s\nremote %s", lb, db)
	}
	if events == 0 {
		t.Error("distributed runBatch produced no progress events")
	}
}
