package experiments

import (
	"fmt"
	"os"
	"testing"
)

// benchScale picks the sweep-benchmark budget: Quick by default so the
// benchmark terminates fast; set CCSIM_BENCH_SCALE=default (or long)
// for the paper-sized campaign of the acceptance measurement.
func benchScale(b *testing.B) Scale {
	switch os.Getenv("CCSIM_BENCH_SCALE") {
	case "", "quick":
		return Quick()
	case "default":
		return Default()
	case "long":
		return Long()
	default:
		b.Fatalf("CCSIM_BENCH_SCALE=%q: want quick, default or long", os.Getenv("CCSIM_BENCH_SCALE"))
		return Scale{}
	}
}

// BenchmarkFig7SingleWorkers measures the wall clock of the full
// Figure 7a campaign (22 workloads x 5 mechanisms = 110 simulations)
// against the sweep worker count. The workers=1 case is the old serial
// path; on an 8-core host workers=8 completes the same row-for-row
// identical sweep several times faster:
//
//	CCSIM_BENCH_SCALE=default go test ./internal/experiments \
//	    -bench Fig7SingleWorkers -benchtime 1x -run '^$'
func BenchmarkFig7SingleWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			s := benchScale(b)
			s.Workers = workers
			for i := 0; i < b.N; i++ {
				rows, err := s.Fig7Single()
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) != 22 {
					b.Fatalf("rows = %d", len(rows))
				}
			}
		})
	}
}
