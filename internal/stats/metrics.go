package stats

import (
	"fmt"
	"math"
)

// WeightedSpeedup computes the multiprogrammed-throughput metric of the
// paper (Snavely & Tullsen): sum over cores of IPC_shared / IPC_alone.
func WeightedSpeedup(shared, alone []float64) (float64, error) {
	if len(shared) != len(alone) {
		return 0, fmt.Errorf("stats: shared (%d) and alone (%d) lengths differ", len(shared), len(alone))
	}
	ws := 0.0
	for i := range shared {
		if alone[i] <= 0 {
			return 0, fmt.Errorf("stats: core %d alone IPC %g must be positive", i, alone[i])
		}
		ws += shared[i] / alone[i]
	}
	return ws, nil
}

// Speedup returns the relative improvement of value over baseline
// (e.g. 0.086 for +8.6%). A zero baseline is an error: it means the
// reference run measured nothing (an aborted or mis-scoped campaign),
// and silently reporting 0 used to mask exactly that. An error keeps
// the value JSON-serializable where NaN would not be.
func Speedup(value, baseline float64) (float64, error) {
	if baseline == 0 {
		return 0, fmt.Errorf("stats: speedup baseline is zero (value %g)", value)
	}
	return value/baseline - 1, nil
}

// RMPKC returns row misses (activations) per kilo-cycle, the
// row-activation-intensity metric of Figure 7.
func RMPKC(activations uint64, cycles uint64) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(activations) * 1000 / float64(cycles)
}

// MPKI returns misses per kilo-instruction.
func MPKI(misses, instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(misses) * 1000 / float64(instructions)
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Mean returns the arithmetic mean of xs (0 for empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Max returns the maximum of xs (0 for empty).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// GeoMean returns the geometric mean of xs, which must be positive.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: geomean of empty slice")
	}
	logSum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: geomean needs positive values, got %g", x)
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs))), nil
}
