// Package stats implements the paper's measurement machinery: the
// Row-Level Temporal Locality (RLTL) tracker behind Figures 3 and 4, and
// the performance metrics used in the evaluation (IPC, weighted speedup,
// RMPKC).
package stats

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/dram"
)

// RLTL measures, for every row activation, how long ago the same row was
// precharged (t-RLTL, Section 3) and how long ago it was refreshed. An
// activation counts toward interval t if it occurs within t after the
// row's most recent precharge.
//
// RLTL implements memctrl.Observer.
type RLTL struct {
	intervals   []dram.Cycle // ascending thresholds
	withinSince []uint64     // activations with sincePre <= intervals[i]

	refreshWithin dram.Cycle // threshold for the "after refresh" metric
	refreshCount  uint64

	activations uint64
	firstActs   uint64 // activations of rows never seen precharged

	lastPre map[uint64]dram.Cycle
}

// NewRLTL builds a tracker. intervals must be ascending; refreshWithin is
// the refresh-distance threshold (the paper uses 8 ms for both).
func NewRLTL(intervals []dram.Cycle, refreshWithin dram.Cycle) (*RLTL, error) {
	if len(intervals) == 0 {
		return nil, fmt.Errorf("stats: need at least one RLTL interval")
	}
	if !sort.SliceIsSorted(intervals, func(i, j int) bool { return intervals[i] < intervals[j] }) {
		return nil, fmt.Errorf("stats: RLTL intervals must be ascending")
	}
	if refreshWithin <= 0 {
		return nil, fmt.Errorf("stats: refreshWithin must be positive")
	}
	return &RLTL{
		intervals:     append([]dram.Cycle(nil), intervals...),
		withinSince:   make([]uint64, len(intervals)),
		refreshWithin: refreshWithin,
		lastPre:       make(map[uint64]dram.Cycle),
	}, nil
}

func globalKey(channel int, key core.RowKey) uint64 {
	return uint64(channel)<<48 | uint64(key)
}

// ObserveActivate implements memctrl.Observer.
func (r *RLTL) ObserveActivate(channel int, key core.RowKey, now, refreshAge dram.Cycle, _ bool) {
	r.activations++
	if refreshAge <= r.refreshWithin {
		r.refreshCount++
	}
	pre, ok := r.lastPre[globalKey(channel, key)]
	if !ok {
		r.firstActs++
		return
	}
	since := now - pre
	for i, t := range r.intervals {
		if since <= t {
			r.withinSince[i]++
		}
	}
}

// ObservePrecharge implements memctrl.Observer.
func (r *RLTL) ObservePrecharge(channel int, key core.RowKey, now dram.Cycle) {
	r.lastPre[globalKey(channel, key)] = now
}

// Activations returns the number of observed activations.
func (r *RLTL) Activations() uint64 { return r.activations }

// Fraction returns the t-RLTL for intervals[i]: the fraction of all
// activations that occurred within that interval after the row's
// previous precharge.
func (r *RLTL) Fraction(i int) float64 {
	if r.activations == 0 {
		return 0
	}
	return float64(r.withinSince[i]) / float64(r.activations)
}

// Intervals returns the configured thresholds.
func (r *RLTL) Intervals() []dram.Cycle {
	return append([]dram.Cycle(nil), r.intervals...)
}

// RefreshFraction returns the fraction of activations that occurred
// within refreshWithin after the row's last refresh (the NUAT-favoring
// metric the paper contrasts with RLTL in Figure 3).
func (r *RLTL) RefreshFraction() float64 {
	if r.activations == 0 {
		return 0
	}
	return float64(r.refreshCount) / float64(r.activations)
}

// Reset clears all measurements (after warm-up) but keeps the
// last-precharge history so post-warm-up activations still know their
// distance.
func (r *RLTL) Reset() {
	r.activations = 0
	r.firstActs = 0
	r.refreshCount = 0
	for i := range r.withinSince {
		r.withinSince[i] = 0
	}
}

// TrackedRows returns the number of distinct rows seen precharged.
func (r *RLTL) TrackedRows() int { return len(r.lastPre) }
