package stats

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dram"
)

func newTracker(t *testing.T) *RLTL {
	t.Helper()
	r, err := NewRLTL([]dram.Cycle{100, 1000, 10000}, 5000)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewRLTLValidation(t *testing.T) {
	if _, err := NewRLTL(nil, 100); err == nil {
		t.Error("accepted empty intervals")
	}
	if _, err := NewRLTL([]dram.Cycle{100, 50}, 100); err == nil {
		t.Error("accepted descending intervals")
	}
	if _, err := NewRLTL([]dram.Cycle{100}, 0); err == nil {
		t.Error("accepted zero refresh threshold")
	}
}

func TestRLTLBuckets(t *testing.T) {
	r := newTracker(t)
	k := core.MakeRowKey(0, 0, 1)

	// First activation: no prior precharge -> counts in no bucket.
	r.ObserveActivate(0, k, 0, 1<<40, false)
	// Precharge at 100, reactivate at 150 (since=50 <= all intervals).
	r.ObservePrecharge(0, k, 100)
	r.ObserveActivate(0, k, 150, 1<<40, false)
	// Precharge at 200, reactivate at 700 (since=500: buckets 1000, 10000).
	r.ObservePrecharge(0, k, 200)
	r.ObserveActivate(0, k, 700, 1<<40, false)
	// Precharge at 1000, reactivate at 20000 (since=19000: no bucket).
	r.ObservePrecharge(0, k, 1000)
	r.ObserveActivate(0, k, 20000, 1<<40, false)

	if r.Activations() != 4 {
		t.Fatalf("activations = %d", r.Activations())
	}
	// Bucket 0 (<=100): 1 of 4. Bucket 1 (<=1000): 2 of 4. Bucket 2: 2 of 4.
	if got := r.Fraction(0); got != 0.25 {
		t.Errorf("Fraction(0) = %g, want 0.25", got)
	}
	if got := r.Fraction(1); got != 0.5 {
		t.Errorf("Fraction(1) = %g, want 0.5", got)
	}
	if got := r.Fraction(2); got != 0.5 {
		t.Errorf("Fraction(2) = %g, want 0.5", got)
	}
}

func TestRLTLRefreshFraction(t *testing.T) {
	r := newTracker(t)
	k := core.MakeRowKey(0, 0, 1)
	r.ObserveActivate(0, k, 0, 100, false)    // young refresh
	r.ObserveActivate(0, k, 10, 20000, false) // old refresh
	if got := r.RefreshFraction(); got != 0.5 {
		t.Errorf("RefreshFraction = %g, want 0.5", got)
	}
}

func TestRLTLChannelsIndependent(t *testing.T) {
	r := newTracker(t)
	k := core.MakeRowKey(0, 0, 1)
	// Precharge on channel 0 must not create history for channel 1.
	r.ObservePrecharge(0, k, 100)
	r.ObserveActivate(1, k, 150, 1<<40, false)
	if got := r.Fraction(0); got != 0 {
		t.Errorf("cross-channel Fraction = %g, want 0", got)
	}
	if r.TrackedRows() != 1 {
		t.Errorf("TrackedRows = %d", r.TrackedRows())
	}
}

func TestRLTLResetKeepsHistory(t *testing.T) {
	r := newTracker(t)
	k := core.MakeRowKey(0, 0, 1)
	r.ObservePrecharge(0, k, 100)
	r.ObserveActivate(0, k, 150, 1<<40, false)
	r.Reset()
	if r.Activations() != 0 || r.Fraction(0) != 0 {
		t.Error("Reset did not clear counters")
	}
	// History survives: an activation right after reset still sees the
	// old precharge.
	r.ObserveActivate(0, k, 180, 1<<40, false)
	if got := r.Fraction(0); got != 1 {
		t.Errorf("post-reset Fraction = %g, want 1", got)
	}
	if len(r.Intervals()) != 3 {
		t.Error("Intervals() wrong length")
	}
}

func TestRLTLEmpty(t *testing.T) {
	r := newTracker(t)
	if r.Fraction(0) != 0 || r.RefreshFraction() != 0 {
		t.Error("empty tracker fractions nonzero")
	}
}

func TestWeightedSpeedup(t *testing.T) {
	ws, err := WeightedSpeedup([]float64{1, 2}, []float64{2, 2})
	if err != nil || ws != 1.5 {
		t.Errorf("WeightedSpeedup = %g, %v", ws, err)
	}
	if _, err := WeightedSpeedup([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := WeightedSpeedup([]float64{1}, []float64{0}); err == nil {
		t.Error("zero alone IPC accepted")
	}
}

func TestSpeedup(t *testing.T) {
	got, err := Speedup(1.086, 1.0)
	if err != nil || math.Abs(got-0.086) > 1e-12 {
		t.Errorf("Speedup = %g, %v", got, err)
	}
	// A zero baseline means the reference run measured nothing; it must
	// surface as an error, not a silent 0 (the old behaviour) or a NaN
	// (which would break JSON-marshalled reports).
	if _, err := Speedup(1, 0); err == nil {
		t.Error("zero baseline accepted")
	}
}

func TestRMPKCAndMPKI(t *testing.T) {
	if got := RMPKC(500, 100_000); got != 5 {
		t.Errorf("RMPKC = %g", got)
	}
	if RMPKC(1, 0) != 0 {
		t.Error("zero cycles not handled")
	}
	if got := MPKI(20, 1000); got != 20 {
		t.Errorf("MPKI = %g", got)
	}
	if MPKI(1, 0) != 0 {
		t.Error("zero instructions not handled")
	}
}

func TestMeanMaxGeoMean(t *testing.T) {
	if Sum([]float64{1, 2, 3}) != 6 {
		t.Error("Sum wrong")
	}
	if Sum(nil) != 0 {
		t.Error("empty Sum nonzero")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("Mean wrong")
	}
	if Mean(nil) != 0 || Max(nil) != 0 {
		t.Error("empty aggregates nonzero")
	}
	if Max([]float64{1, 5, 3}) != 5 {
		t.Error("Max wrong")
	}
	g, err := GeoMean([]float64{1, 4})
	if err != nil || math.Abs(g-2) > 1e-12 {
		t.Errorf("GeoMean = %g, %v", g, err)
	}
	if _, err := GeoMean([]float64{1, -1}); err == nil {
		t.Error("negative GeoMean accepted")
	}
	if _, err := GeoMean(nil); err == nil {
		t.Error("empty GeoMean accepted")
	}
}
