package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"strings"
)

// KeyField guards the sweep.Key content-address contract: the result
// cache keys a simulation by the canonical JSON of sim.Config, so every
// field reachable from sim.Config must either
//
//   - marshal into the digest (no tag, or a plain rename), or
//   - carry an explicit exclusion — `json:"-"` or an `omitempty`
//     option — together with a `// key:` comment on the field
//     justifying why cached results stay valid across changes to it
//     (omitempty fields keep historical keys by aliasing their zero
//     value with absence; json:"-" fields never feed the digest at
//     all).
//
// Unexported fields never marshal, so they are the silent staleness
// hazard the analyzer exists for: they also require a `// key:`
// justification. Fields of unkeyable types (func, chan) must be
// excluded with json:"-" or json.Marshal fails outright.
//
// Exclusion tags on structs defined in *other* packages are accepted
// as-is (their justification lives with their declaration; export data
// carries tags but not comments).
var KeyField = NewKeyField("repro/internal/sim", "Config")

// NewKeyField builds a keyfield instance rooted at rootType in package
// rootPkg (the production instance is KeyField; tests root it at their
// fixture package).
func NewKeyField(rootPkg, rootType string) *Analyzer {
	a := &Analyzer{
		Name:  "keyfield",
		Doc:   "every field reachable from " + rootPkg + "." + rootType + " must feed the sweep.Key digest or carry an explicit exclusion tag plus a `// key:` comment",
		Match: func(path string) bool { return path == rootPkg },
	}
	a.Run = func(pass *Pass) error { return runKeyField(pass, rootType) }
	return a
}

func runKeyField(pass *Pass, rootType string) error {
	obj := pass.Pkg.Scope().Lookup(rootType)
	if obj == nil {
		pass.Reportf(pass.Files[0].Pos(), "root type %s not found in %s; the keyfield contract is unanchored", rootType, pass.Pkg.Path())
		return nil
	}

	fields := astFieldIndex(pass)

	seen := map[*types.Named]bool{}
	var visitType func(t types.Type)
	var visitStruct func(named *types.Named, st *types.Struct)

	visitType = func(t types.Type) {
		switch t := t.(type) {
		case *types.Pointer:
			visitType(t.Elem())
		case *types.Slice:
			visitType(t.Elem())
		case *types.Array:
			visitType(t.Elem())
		case *types.Map:
			visitType(t.Key())
			visitType(t.Elem())
		case *types.Named:
			if seen[t] {
				return
			}
			seen[t] = true
			if st, ok := t.Underlying().(*types.Struct); ok {
				visitStruct(t, st)
			}
		}
	}

	visitStruct = func(named *types.Named, st *types.Struct) {
		local := named.Obj().Pkg() == pass.Pkg
		for i := 0; i < st.NumFields(); i++ {
			field := st.Field(i)
			tag := reflect.StructTag(st.Tag(i))
			jsonName, opts := parseJSONTag(tag.Get("json"))
			excluded := jsonName == "-" || hasOption(opts, "omitempty")

			if !field.Exported() {
				// Never marshals: invisible to the digest.
				if local && !keyComment(fields, named.Obj().Name(), field.Name()) {
					pass.Reportf(fieldPos(pass, fields, named.Obj().Name(), field.Name()),
						"unexported field %s.%s never feeds the sweep.Key digest; justify with a `// key:` comment or export it", named.Obj().Name(), field.Name())
				}
				continue
			}

			if !keyable(field.Type()) && jsonName != "-" {
				if local {
					pass.Reportf(fieldPos(pass, fields, named.Obj().Name(), field.Name()),
						"field %s.%s has unkeyable type %s; it must carry json:\"-\" (json.Marshal would fail)", named.Obj().Name(), field.Name(), field.Type())
				}
				continue
			}

			if excluded {
				if local && !keyComment(fields, named.Obj().Name(), field.Name()) {
					pass.Reportf(fieldPos(pass, fields, named.Obj().Name(), field.Name()),
						"field %s.%s is excluded from the sweep.Key digest (%s) without a `// key:` comment justifying cache-key stability", named.Obj().Name(), field.Name(), describeExclusion(jsonName, opts))
				}
				// Excluded content does not feed the digest; do not recurse.
				// (omitempty fields feed it when non-zero, so their element
				// types still matter.)
				if jsonName == "-" {
					continue
				}
			}
			visitType(field.Type())
		}
	}

	visitType(obj.Type())
	return nil
}

// keyable reports whether json.Marshal can encode the type.
func keyable(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Signature, *types.Chan:
		return false
	case *types.Pointer:
		return keyable(u.Elem())
	case *types.Slice:
		return keyable(u.Elem())
	case *types.Array:
		return keyable(u.Elem())
	}
	return true
}

// parseJSONTag splits a json struct tag into name and options.
func parseJSONTag(tag string) (name string, opts []string) {
	parts := strings.Split(tag, ",")
	return parts[0], parts[1:]
}

func hasOption(opts []string, want string) bool {
	for _, o := range opts {
		if o == want {
			return true
		}
	}
	return false
}

func describeExclusion(jsonName string, opts []string) string {
	if jsonName == "-" {
		return `json:"-"`
	}
	return "omitempty"
}

// fieldKey indexes a struct field's AST node by (type name, field name).
type fieldKey struct{ typeName, fieldName string }

// astFieldIndex maps every named struct field declared in this package
// to its AST node, so comment checks can read doc and line comments.
func astFieldIndex(pass *Pass) map[fieldKey]*ast.Field {
	out := map[fieldKey]*ast.Field{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, f := range st.Fields.List {
					for _, name := range f.Names {
						out[fieldKey{ts.Name.Name, name.Name}] = f
					}
				}
			}
		}
	}
	return out
}

// keyComment reports whether the field's doc or line comment contains a
// `// key:` justification.
func keyComment(fields map[fieldKey]*ast.Field, typeName, fieldName string) bool {
	f, ok := fields[fieldKey{typeName, fieldName}]
	if !ok {
		return false
	}
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(c.Text), "//"))
			if strings.HasPrefix(text, "key:") {
				return true
			}
		}
	}
	return false
}

// fieldPos locates the field's declaration for the diagnostic, falling
// back to the file start when the AST node is unavailable.
func fieldPos(pass *Pass, fields map[fieldKey]*ast.Field, typeName, fieldName string) token.Pos {
	if f, ok := fields[fieldKey{typeName, fieldName}]; ok {
		return f.Pos()
	}
	return pass.Files[0].Pos()
}
