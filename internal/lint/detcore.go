package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// detCorePackages is the deterministic simulation core: every package
// whose behaviour must be bit-identical between the event-driven engine
// and the reference stepper (the differential suite's contract). The
// server/dispatch/sweep layers above are inherently concurrent and
// wall-clock-aware; they are deliberately out of scope.
var detCorePackages = map[string]bool{
	"repro/internal/sim":     true,
	"repro/internal/dram":    true,
	"repro/internal/memctrl": true,
	"repro/internal/core":    true,
	"repro/internal/cpu":     true,
	"repro/internal/cache":   true,
}

// DetCore rejects nondeterminism sources in the deterministic core:
//
//   - wall-clock reads (time.Now / Since / Until): simulated time is the
//     only clock the core may observe;
//   - package-level math/rand functions, whose global source is seeded
//     per-process — randomness must flow through an explicitly seeded
//     *rand.Rand (or the project's own deterministic rng);
//   - `go` statements: the core is single-goroutine by design, and a
//     data race between engines is exactly the bug class the
//     differential suite can only catch probabilistically;
//   - ranging over a map unless every statement in the loop body is an
//     order-insensitive sink: commutative accumulation (+=, -=, *=,
//     |=, &=, ^=, ++, --), delete, or appending to a slice that is
//     subsequently sorted in the same function.
//
// Deliberate exceptions carry //lint:allow detcore <reason>.
var DetCore = &Analyzer{
	Name:  "detcore",
	Doc:   "forbid nondeterminism sources (wall clock, unseeded rand, goroutines, order-sensitive map iteration) in the deterministic simulation core",
	Match: func(path string) bool { return detCorePackages[path] },
	Run:   runDetCore,
}

// NewDetCore builds a detcore instance scoped to the given package
// paths (the production instance is DetCore; tests scope it to their
// fixture package).
func NewDetCore(paths ...string) *Analyzer {
	set := make(map[string]bool, len(paths))
	for _, p := range paths {
		set[p] = true
	}
	a := *DetCore
	a.Match = func(path string) bool { return set[path] }
	return &a
}

func runDetCore(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			enclosing, _ := decl.(*ast.FuncDecl)
			ast.Inspect(decl, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					checkDetCall(pass, n)
				case *ast.GoStmt:
					pass.Reportf(n.Pos(), "go statement in the deterministic core; the simulation must stay single-goroutine (annotate deliberate exceptions with //lint:allow detcore <reason>)")
				case *ast.RangeStmt:
					checkMapRange(pass, n, enclosing)
				}
				return true
			})
		}
	}
	return nil
}

// randConstructors are math/rand and math/rand/v2 package-level
// functions that build a generator rather than draw from the global
// source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true,
	"NewChaCha8": true, "NewZipf": true,
}

// checkDetCall flags wall-clock reads and global-source randomness.
func checkDetCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			pass.Reportf(call.Pos(), "time.%s in the deterministic core; simulated cycles are the only clock the core may read", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		// Methods on an explicitly constructed *rand.Rand carry a seeded
		// source and are fine, as are the constructors that build one;
		// the remaining package-level functions draw from the per-process
		// global source.
		if randConstructors[fn.Name()] {
			return
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
			pass.Reportf(call.Pos(), "%s.%s uses the global random source; use an explicitly seeded *rand.Rand (or internal/workload's deterministic rng)", fn.Pkg().Name(), fn.Name())
		}
	}
}

// checkMapRange flags map iteration whose body is not provably
// order-insensitive.
func checkMapRange(pass *Pass, rng *ast.RangeStmt, enclosing *ast.FuncDecl) {
	tv, ok := pass.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	for _, stmt := range rng.Body.List {
		if target, ok := orderInsensitive(pass, stmt); !ok {
			pass.Reportf(stmt.Pos(), "map iteration feeds an order-sensitive sink; only commutative accumulation, delete, or append-then-sort are deterministic (annotate deliberate exceptions with //lint:allow detcore <reason>)")
		} else if target != nil && !sortedAfter(pass, enclosing, rng, target) {
			pass.Reportf(stmt.Pos(), "slice appended from map iteration is never sorted in this function; iteration order leaks into %s", target.Name())
		}
	}
}

// orderInsensitive reports whether stmt is an order-insensitive map-loop
// sink. When the statement is an append-accumulation it returns the
// slice variable, which the caller must verify is sorted afterwards.
func orderInsensitive(pass *Pass, stmt ast.Stmt) (appendTarget *types.Var, ok bool) {
	switch s := stmt.(type) {
	case *ast.IncDecStmt:
		return nil, true
	case *ast.AssignStmt:
		switch s.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
			token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
			return nil, true
		case token.ASSIGN:
			// s = append(s, ...) accumulation; order-insensitive only if
			// the result is sorted before use (caller checks).
			if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
				if call, isCall := s.Rhs[0].(*ast.CallExpr); isCall && isBuiltin(pass, call, "append") {
					if lhs, isIdent := s.Lhs[0].(*ast.Ident); isIdent && len(call.Args) > 0 {
						if arg, isIdent2 := call.Args[0].(*ast.Ident); isIdent2 && arg.Name == lhs.Name {
							if v, isVar := pass.Info.Uses[lhs].(*types.Var); isVar {
								return v, true
							}
							if v, isVar := pass.Info.Defs[lhs].(*types.Var); isVar {
								return v, true
							}
						}
					}
				}
			}
		}
	case *ast.ExprStmt:
		if call, isCall := s.X.(*ast.CallExpr); isCall && isBuiltin(pass, call, "delete") {
			return nil, true
		}
	}
	return nil, false
}

// sortedAfter reports whether v is passed to a sort.*/slices.Sort* call
// somewhere after rng inside the enclosing function.
func sortedAfter(pass *Pass, enclosing *ast.FuncDecl, rng *ast.RangeStmt, v *types.Var) bool {
	if enclosing == nil || enclosing.Body == nil {
		return false
	}
	sorted := false
	ast.Inspect(enclosing.Body, func(n ast.Node) bool {
		if sorted || n == nil || n.Pos() <= rng.End() {
			return !sorted
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		pkg := fn.Pkg().Path()
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && pass.Info.Uses[id] == v {
				sorted = true
			}
		}
		return true
	})
	return sorted
}

// isBuiltin reports whether call invokes the named builtin.
func isBuiltin(pass *Pass, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := pass.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// calleeFunc resolves the *types.Func a call invokes (method or
// package-level function), or nil for builtins, conversions, and calls
// of function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Package-qualified call: pkg.Func.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
