package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// LockIO flags calls that can block on I/O while a sync.Mutex (or
// RWMutex) acquired in the enclosing function is still held — the
// pattern PR 7 had to fix by hand when journal writes ran inside
// Manager.mu and a slow disk could stall every API request.
//
// "Can block on I/O" means:
//   - filesystem and process calls in os / os/exec / io/ioutil,
//     methods on *os.File;
//   - anything in net / net/http (dials, requests, response writes);
//   - the project's own storage and fleet layers: sweep.Key and the
//     sweep.Cache accessors that digest or persist (Key hashes trace
//     files; Put/PutKeyed rewrite the snapshot), and every
//     internal/client method (each one rides an *http.Client);
//   - any function in the analyzed package that transitively reaches
//     one of the above (intra-package propagation, so a helper like
//     jobJournal.writeLocked taints its callers).
//
// The walk is flow-approximate: statements are visited in source
// order, an Unlock anywhere clears the held state for what follows,
// and `defer mu.Unlock()` holds to the end of the function. Mutexes
// acquired by callers are invisible — the analyzer checks each
// function against the locks it takes itself. Dedicated I/O-
// serialization mutexes (whose entire job is ordering writes) are the
// deliberate exception; annotate them //lint:allow lockio <reason>.
var LockIO = &Analyzer{
	Name: "lockio",
	Doc:  "forbid blocking I/O (files, network, subprocesses, journal/cache writes) while a sync.Mutex acquired in the enclosing function is held",
	Run:  runLockIO,
}

// ioSinkFuncs lists os package functions that touch the filesystem or
// process table. Pure environment/string helpers (Getenv, Getpid, ...)
// are not here.
var ioSinkFuncs = map[string]map[string]bool{
	"os": {
		"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
		"ReadFile": true, "WriteFile": true, "Rename": true, "Remove": true,
		"RemoveAll": true, "Mkdir": true, "MkdirAll": true, "MkdirTemp": true,
		"ReadDir": true, "Stat": true, "Lstat": true, "Chmod": true,
		"Chtimes": true, "Truncate": true, "Link": true, "Symlink": true,
		"Readlink": true, "Pipe": true, "StartProcess": true, "Getwd": true,
	},
	// The whole package blocks by design.
	"net":       nil,
	"net/http":  nil,
	"os/exec":   nil,
	"io/ioutil": nil,
}

// projectSinks names project functions/methods that block on I/O, keyed
// by "pkgpath.TypeName.Method" or "pkgpath.Func". sweep.Key digests
// every referenced trace file; the Cache mutators rewrite the on-disk
// snapshot; internal/client calls cross the network.
var projectSinks = map[string]bool{
	"repro/internal/sweep.Key":            true,
	"repro/internal/sweep.OpenCache":      true,
	"repro/internal/sweep.Cache.Get":      true,
	"repro/internal/sweep.Cache.Put":      true,
	"repro/internal/sweep.Cache.PutKeyed": true,
	"repro/internal/sweep.Cache.Snapshot": true,
}

// clientPackages are project packages whose every *method* call is
// remote I/O (every Client and Peer method rides an *http.Client).
// Package-level functions there are pure constructors and validators
// (New, ValidateTraceFiles) and are not sinks.
var clientPackages = map[string]bool{
	"repro/internal/client": true,
}

func runLockIO(pass *Pass) error {
	// Pass 1: which functions in this package perform I/O directly?
	decls := packageFuncDecls(pass)
	tainted := map[*types.Func]string{} // func -> why
	for fn, decl := range decls {
		if why := directIOCall(pass, decl); why != "" {
			tainted[fn] = why
		}
	}

	// Pass 2: propagate through same-package calls to a fixed point, so
	// a helper that writes a file taints everything that calls it.
	for changed := true; changed; {
		changed = false
		for fn, decl := range decls {
			if _, done := tainted[fn]; done {
				continue
			}
			callee, why := firstTaintedCall(pass, decl, tainted)
			if callee != nil {
				tainted[fn] = fmt.Sprintf("calls %s, which %s", callee.Name(), why)
				changed = true
			}
		}
	}

	// Pass 3: walk every function body tracking locks it acquires, and
	// flag tainted or sink calls made while one is held.
	for _, decl := range decls {
		if decl.Body == nil {
			continue
		}
		w := &lockWalker{pass: pass, tainted: tainted, held: map[string]token.Pos{}}
		w.walkStmts(decl.Body.List)
	}
	return nil
}

// packageFuncDecls maps each function object declared in the package to
// its declaration (methods included).
func packageFuncDecls(pass *Pass) map[*types.Func]*ast.FuncDecl {
	out := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				out[fn] = fd
			}
		}
	}
	return out
}

// directIOCall returns a description of the first direct I/O sink call
// in the declaration, or "".
func directIOCall(pass *Pass, decl *ast.FuncDecl) string {
	var why string
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if s := sinkDescription(pass, call); s != "" {
			why = fmt.Sprintf("%s at %s", s, pass.Fset.Position(call.Pos()))
		}
		return true
	})
	return why
}

// sinkDescription classifies a call as blocking I/O, returning a short
// description or "".
func sinkDescription(pass *Pass, call *ast.CallExpr) string {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	pkg := fn.Pkg().Path()
	sig, _ := fn.Type().(*types.Signature)

	if sig != nil && sig.Recv() != nil {
		// Methods: *os.File always blocks; whole-package sinks (net,
		// net/http, os/exec, internal/client) block regardless of
		// receiver; otherwise match the explicit project sink list.
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
			if pkg == "os" && named.Obj().Name() == "File" {
				return fmt.Sprintf("calls (*os.File).%s", fn.Name())
			}
		}
		if names, listed := ioSinkFuncs[pkg]; listed && names == nil {
			return fmt.Sprintf("calls %s.%s", fn.Pkg().Name(), fn.Name())
		}
		if clientPackages[pkg] {
			return fmt.Sprintf("calls %s.%s (remote I/O)", fn.Pkg().Name(), fn.Name())
		}
		if projectSinks[fullFuncKey(fn)] {
			return fmt.Sprintf("calls %s (storage I/O)", fn.Name())
		}
		return ""
	}

	if names, listed := ioSinkFuncs[pkg]; listed {
		if names == nil || names[fn.Name()] {
			return fmt.Sprintf("calls %s.%s", fn.Pkg().Name(), fn.Name())
		}
	}
	if projectSinks[fullFuncKey(fn)] {
		return fmt.Sprintf("calls %s (storage I/O)", fn.Name())
	}
	return ""
}

// fullFuncKey renders "pkgpath.Type.Method" or "pkgpath.Func" for
// matching against projectSinks.
func fullFuncKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return ""
		}
		return fn.Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// firstTaintedCall finds a call in decl to an already-tainted function
// of the same package.
func firstTaintedCall(pass *Pass, decl *ast.FuncDecl, tainted map[*types.Func]string) (callee *types.Func, why string) {
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if callee != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil {
			return true
		}
		if w, ok := tainted[fn]; ok {
			callee, why = fn, w
		}
		return true
	})
	return callee, why
}

// lockWalker tracks, in source order, which mutexes the current
// function holds.
type lockWalker struct {
	pass    *Pass
	tainted map[*types.Func]string
	held    map[string]token.Pos // mutex expr -> Lock() position
}

func (w *lockWalker) walkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		w.walkStmt(s)
	}
}

func (w *lockWalker) walkStmt(stmt ast.Stmt) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if key, locked, isOp := w.lockOp(s.X); isOp {
			if locked {
				w.held[key] = s.Pos()
			} else {
				delete(w.held, key)
			}
			return
		}
		w.scanCalls(s)
	case *ast.DeferStmt:
		// defer mu.Unlock() releases at return: the lock stays held for
		// the remainder of the walk, which is exactly what we check.
		// Deferred I/O still runs while any still-held locks are held,
		// so scan the deferred call too.
		if _, _, isOp := w.lockOp(s.Call); isOp {
			return
		}
		w.scanCalls(s)
	case *ast.BlockStmt:
		w.walkStmts(s.List)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.scanExpr(s.Cond)
		w.walkStmt(s.Body)
		if s.Else != nil {
			w.walkStmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		if s.Cond != nil {
			w.scanExpr(s.Cond)
		}
		w.walkStmt(s.Body)
		if s.Post != nil {
			w.walkStmt(s.Post)
		}
	case *ast.RangeStmt:
		w.scanExpr(s.X)
		w.walkStmt(s.Body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		if s.Tag != nil {
			w.scanExpr(s.Tag)
		}
		w.walkStmt(s.Body)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.walkStmt(s.Body)
	case *ast.CaseClause:
		for _, e := range s.List {
			w.scanExpr(e)
		}
		w.walkStmts(s.Body)
	case *ast.SelectStmt:
		w.walkStmt(s.Body)
	case *ast.CommClause:
		if s.Comm != nil {
			w.walkStmt(s.Comm)
		}
		w.walkStmts(s.Body)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt)
	default:
		w.scanCalls(stmt)
	}
}

// lockOp classifies expr as mu.Lock/RLock (locked=true) or
// mu.Unlock/RUnlock (locked=false) on a sync mutex, returning the
// mutex's source rendering as its identity.
func (w *lockWalker) lockOp(expr ast.Expr) (key string, locked, isOp bool) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return "", false, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		locked = true
	case "Unlock", "RUnlock":
		locked = false
	default:
		return "", false, false
	}
	t := w.pass.Info.TypeOf(sel.X)
	if t == nil {
		return "", false, false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return "", false, false
	}
	if name := named.Obj().Name(); name != "Mutex" && name != "RWMutex" {
		return "", false, false
	}
	return types.ExprString(sel.X), locked, true
}

// scanCalls inspects a statement for calls that block while a lock is
// held. Function literals are skipped — they execute later, under
// whatever locks are held at *that* point, so charging them to this
// site would be wrong; their bodies are covered when they run inside a
// function the analyzer walks.
func (w *lockWalker) scanCalls(n ast.Node) {
	if len(w.held) == 0 {
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			// Spawning a goroutine does not block the lock holder; the
			// spawned work runs concurrently. Its arguments are still
			// evaluated here, so keep scanning them.
			for _, arg := range node.Call.Args {
				w.scanCalls(arg)
			}
			return false
		case *ast.CallExpr:
			w.checkCall(node)
		}
		return true
	})
}

func (w *lockWalker) scanExpr(e ast.Expr) {
	if e != nil {
		w.scanCalls(e)
	}
}

// checkCall reports call if it is a sink or a tainted same-package
// function while any lock is held.
func (w *lockWalker) checkCall(call *ast.CallExpr) {
	desc := sinkDescription(w.pass, call)
	if desc == "" {
		fn := calleeFunc(w.pass.Info, call)
		if fn == nil {
			return
		}
		why, ok := w.tainted[fn]
		if !ok {
			return
		}
		desc = fmt.Sprintf("calls %s, which %s", fn.Name(), why)
	}
	// One report per call, against a deterministically chosen lock.
	var key string
	for k := range w.held {
		if key == "" || k < key {
			key = k
		}
	}
	w.pass.Reportf(call.Pos(),
		"%s while %s is held (acquired at %s); move the I/O outside the critical section or annotate a dedicated I/O-serialization mutex with //lint:allow lockio <reason>",
		desc, key, w.pass.Fset.Position(w.held[key]))
}
