package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestHotAlloc(t *testing.T) {
	res := linttest.Run(t, lint.HotAlloc, "testdata/src/hotalloc")
	if got := len(res.Suppressed); got != 1 {
		t.Fatalf("suppressed = %d, want 1 (the //lint:allow'd warm-up allocation)", got)
	}
	if a := res.Suppressed[0].Analyzer; a != "hotalloc" {
		t.Fatalf("suppressed analyzer = %q, want hotalloc", a)
	}
}
