package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestDetCore(t *testing.T) {
	res := linttest.Run(t, lint.NewDetCore("detcore"), "testdata/src/detcore")
	if got := len(res.Suppressed); got != 1 {
		t.Fatalf("suppressed = %d, want 1 (the //lint:allow'd go statement)", got)
	}
	if a := res.Suppressed[0].Analyzer; a != "detcore" {
		t.Fatalf("suppressed analyzer = %q, want detcore", a)
	}
}

// TestDetCoreScope checks that the production instance is pinned to the
// deterministic core and nothing else: the server/sweep layers are
// concurrent and wall-clock-aware by design.
func TestDetCoreScope(t *testing.T) {
	in := []string{
		"repro/internal/sim", "repro/internal/dram", "repro/internal/memctrl",
		"repro/internal/core", "repro/internal/cpu", "repro/internal/cache",
	}
	out := []string{
		"repro/internal/server", "repro/internal/sweep", "repro/internal/dispatch",
		"repro/internal/prof", "repro/cmd/ccsim",
	}
	for _, p := range in {
		if !lint.DetCore.Match(p) {
			t.Errorf("detcore should cover %s", p)
		}
	}
	for _, p := range out {
		if lint.DetCore.Match(p) {
			t.Errorf("detcore should not cover %s", p)
		}
	}
}
