// Package detcore is the golden fixture for the detcore analyzer:
// nondeterminism sources the deterministic simulation core must reject.
package detcore

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// wallClock reads host time: forbidden in the core.
func wallClock() int64 {
	t := time.Now()   // want "time.Now in the deterministic core"
	_ = time.Since(t) // want "time.Since in the deterministic core"
	return t.UnixNano()
}

// globalRand draws from the process-global source: forbidden.
func globalRand() int {
	return rand.Intn(10) // want "rand.Intn uses the global random source"
}

// seededRand uses an explicitly seeded source: fine.
func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// spawn launches goroutines; the core is single-goroutine by design.
func spawn(done chan struct{}) {
	go func() { // want "go statement in the deterministic core"
		close(done)
	}()
}

// spawnAllowed is a deliberate, justified exception.
func spawnAllowed(done chan struct{}) {
	//lint:allow detcore construction-time prefetch, joined before simulation starts
	go func() {
		close(done)
	}()
}

// orderSensitive leaks map iteration order into output: forbidden.
func orderSensitive(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want "map iteration feeds an order-sensitive sink"
	}
}

// commutative accumulates order-insensitively: fine.
func commutative(m map[string]int) int {
	sum := 0
	n := 0
	for _, v := range m {
		sum += v
		n++
	}
	_ = n
	return sum
}

// appendThenSort collects keys and sorts them: fine.
func appendThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// appendNoSort collects keys but never sorts: iteration order leaks.
func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "never sorted in this function"
	}
	return keys
}

// deleteEntries is an order-insensitive mutation: fine.
func deleteEntries(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}

// sliceRange is not a map: fine regardless of body.
func sliceRange(s []string) {
	for _, v := range s {
		fmt.Println(v)
	}
}
