// Package lockio is the golden fixture for the lockio analyzer:
// blocking I/O performed while a mutex acquired in the same function is
// held.
package lockio

import (
	"net/http"
	"os"
	"sync"
)

type store struct {
	mu   sync.Mutex
	wmu  sync.Mutex
	path string
	data []byte
}

// flushUnderLock writes to disk inside the critical section: the exact
// stall PR 7 fixed by hand in the job journal.
func (s *store) flushUnderLock() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return os.WriteFile(s.path, s.data, 0o644) // want "calls os.WriteFile while s.mu is held"
}

// flushAfterUnlock snapshots under the lock and writes after releasing
// it: the pattern the analyzer wants.
func (s *store) flushAfterUnlock() error {
	s.mu.Lock()
	data := make([]byte, len(s.data))
	copy(data, s.data)
	s.mu.Unlock()
	return os.WriteFile(s.path, data, 0o644)
}

// persist does I/O but takes no lock itself: clean here, but it taints
// every same-package caller.
func (s *store) persist() error {
	return os.WriteFile(s.path, s.data, 0o644)
}

// checkpoint reaches the filesystem transitively through persist.
func (s *store) checkpoint() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.persist() // want "calls persist, which calls os.WriteFile"
}

// fetch blocks on the network while holding the lock.
func (s *store) fetch(url string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	http.Get(url) // want "calls http.Get while s.mu is held"
}

// readEnv touches only the environment: not a blocking sink.
func (s *store) readEnv() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return os.Getenv("CCSIM_HOME")
}

// deferredWriter returns a closure that does I/O. The literal runs
// later, under whatever locks are held then, so it is not charged here.
func (s *store) deferredWriter() func() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return func() error { return os.WriteFile(s.path, s.data, 0o644) }
}

// spawnPersist hands the tainted call to a goroutine: spawning does not
// block the lock holder.
func (s *store) spawnPersist() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go s.persist()
}

// write serializes snapshot writes; wmu exists only for that, so the
// hold-while-writing is the point.
func (s *store) write() error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	//lint:allow lockio wmu is a dedicated write-serialization mutex; no request path ever holds it
	return os.WriteFile(s.path, s.data, 0o644)
}
