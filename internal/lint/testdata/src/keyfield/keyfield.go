// Package keyfield is the golden fixture for the keyfield analyzer:
// the Config type stands in for sim.Config, whose canonical JSON is
// the sweep result cache's content address.
package keyfield

// Config is the fixture root (the analyzer is constructed with
// NewKeyField("keyfield", "Config")).
type Config struct {
	// Workers feeds the digest: no tag needed.
	Workers int

	// Renamed still feeds the digest under another name: fine.
	Renamed string `json:"renamed"`

	// Stale is excluded without a recorded justification.
	Stale bool `json:",omitempty"` // want "excluded from the sweep.Key digest .omitempty. without a"

	// Justified is excluded with the justification the contract wants.
	// key: pointer-with-omitempty so default configs keep their
	// historical cache keys; non-nil values still feed the digest.
	Justified *Nested `json:",omitempty"`

	// Dropped never feeds the digest, with a recorded reason.
	// key: debug-only toggle; results are bit-identical either way.
	Dropped bool `json:"-"`

	// Hook is unkeyable and must be excluded.
	// key: arbitrary code cannot be content-addressed; Key() rejects
	// configs that set it.
	Hook func() `json:"-"`

	// BadHook is unkeyable but not excluded: json.Marshal would fail.
	BadHook func() // want "unkeyable type"

	// hidden never marshals, silently bypassing the digest.
	hidden int // want "unexported field Config.hidden never feeds the sweep.Key digest"

	// seed never marshals either, but says why.
	// key: derived from Workers at construction; never an input.
	seed int64

	// Sub pulls a nested struct into the reachable set.
	Sub Nested

	// Allowed is excluded without a comment but carries an explicit
	// suppression (counted by the driver).
	//lint:allow keyfield migration shim, removed once clients stop sending it
	Allowed string `json:",omitempty"`
}

// Nested is reachable from Config, so its fields are under contract.
type Nested struct {
	Depth int

	// Cached is excluded with no justification.
	Cached string `json:"-"` // want "excluded from the sweep.Key digest"

	// Scratch is justified.
	// key: recomputed from Depth on load; never an input to simulation.
	Scratch []byte `json:"-"`
}

// Unreachable is not reachable from Config: no contract applies.
type Unreachable struct {
	Whatever func()
	secret   int
}
