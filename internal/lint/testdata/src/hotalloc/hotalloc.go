// Package hotalloc is the golden fixture for the hotalloc analyzer:
// heap-allocating constructs inside //ccsim:zeroalloc functions.
package hotalloc

import "fmt"

type ring struct {
	buf [8]int
	n   int
}

// step is a clean hot-path function: fixed backing array, no
// allocation.
//
//ccsim:zeroalloc
func (r *ring) step(v int) int {
	r.buf[r.n%len(r.buf)] = v
	r.n++
	return r.buf[0]
}

//ccsim:zeroalloc
func badMake() []int {
	return make([]int, 4) // want "calls make; it allocates"
}

//ccsim:zeroalloc
func badNew() *ring {
	return new(ring) // want "calls new; it allocates"
}

//ccsim:zeroalloc
func badAppend(s []int, v int) []int {
	return append(s, v) // want "calls append; growth reallocates"
}

//ccsim:zeroalloc
func badSliceLit() []int {
	return []int{1, 2, 3} // want "builds a slice literal"
}

//ccsim:zeroalloc
func badMapLit() map[string]int {
	return map[string]int{"a": 1} // want "builds a map literal"
}

//ccsim:zeroalloc
func badEscape() *ring {
	return &ring{} // want "takes the address of a composite literal"
}

//ccsim:zeroalloc
func badClosure(v int) func() int {
	return func() int { return v } // want "contains a function literal"
}

//ccsim:zeroalloc
func badFmt(v int) string {
	return fmt.Sprintf("%d", v) // want "calls fmt.Sprintf; formatting boxes its arguments"
}

//ccsim:zeroalloc
func badBox(v int) any {
	return any(v) // want "converts int to interface"
}

// guarded panics on illegal input; formatting on the way into a panic
// is an assertion failure, not hot-path work.
//
//ccsim:zeroalloc
func guarded(v int) int {
	if v < 0 {
		panic(fmt.Sprintf("negative %d", v))
	}
	return v
}

// warmup allocates once, deliberately, before the measured region.
//
//ccsim:zeroalloc
func warmup() []int {
	//lint:allow hotalloc one-time warm-up allocation before the measured steady state
	return make([]int, 64)
}

// coldPath is unannotated: it may allocate freely.
func coldPath() []int {
	return append(make([]int, 0, 4), 1)
}
