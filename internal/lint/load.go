package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listEntry is the subset of `go list -json` output the loader needs.
type listEntry struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load resolves patterns (e.g. "./...") relative to dir into fully
// type-checked packages. It shells out to `go list -export -json -deps`
// once: the go command resolves the build graph and produces compiler
// export data for every dependency, and the loader then parses and
// type-checks only the matched packages' own source — the same division
// of labor a `go vet` driver uses. Test files are not loaded; the
// invariants ccsimlint enforces live in production code.
func Load(dir string, patterns ...string) ([]*Package, error) {
	entries, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string, len(entries))
	var roots []listEntry
	for _, e := range entries {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
		if e.DepOnly {
			continue
		}
		if e.Error != nil {
			return nil, fmt.Errorf("lint: loading %s: %s", e.ImportPath, e.Error.Err)
		}
		roots = append(roots, e)
	}

	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)

	var pkgs []*Package
	for _, e := range roots {
		if len(e.GoFiles) == 0 {
			continue
		}
		pkg, err := typecheck(fset, imp, e.ImportPath, e.Dir, e.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// goList runs the go command and decodes its JSON package stream.
func goList(dir string, patterns ...string) ([]listEntry, error) {
	args := append([]string{"list", "-e", "-export", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list failed: %v\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var entries []listEntry
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// typecheck parses and type-checks one package from source, resolving
// its imports through compiler export data.
func typecheck(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	files := make([]*ast.File, 0, len(goFiles))
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %v", name, err)
		}
		files = append(files, f)
	}

	info := newTypesInfo()
	conf := types.Config{
		Importer: imp,
		Error:    func(error) {}, // collect the first hard error below
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// newTypesInfo allocates the type-information maps the analyzers read.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// newExportImporter builds a types.Importer that serves import paths
// from the export-data files `go list -export` produced.
func newExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	return &unsafeAwareImporter{gc: importer.ForCompiler(fset, "gc", lookup)}
}

// unsafeAwareImporter resolves "unsafe" to the canonical types.Unsafe
// package (it has no export data) and everything else via gc export
// data.
type unsafeAwareImporter struct {
	gc types.Importer
}

func (i *unsafeAwareImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return i.gc.Import(path)
}

// ExportData resolves the named packages (and their dependencies) to
// compiler export-data files via one `go list -export` invocation, for
// callers that type-check sources outside the module graph (the
// linttest fixture loader).
func ExportData(dir string, pkgs ...string) (map[string]string, error) {
	entries, err := goList(dir, pkgs...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(entries))
	for _, e := range entries {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}
	return exports, nil
}

// CheckFixture type-checks an already-parsed fixture package under the
// given package path, resolving imports through the provided export
// map. It exists for linttest; production loading goes through Load.
func CheckFixture(fset *token.FileSet, path string, files []*ast.File, exports map[string]string) (*Package, error) {
	info := newTypesInfo()
	conf := types.Config{
		Importer: newExportImporter(fset, exports),
		Error:    func(error) {},
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking fixture %s: %v", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// ModuleRoot returns the directory of the main module containing dir,
// so callers (the self-check test, the ccsimlint binary) can run the
// suite over the whole tree regardless of the working directory.
func ModuleRoot(dir string) (string, error) {
	cmd := exec.Command("go", "list", "-m", "-f", "{{.Dir}}")
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("lint: resolving module root: %v\n%s", err, stderr.String())
	}
	root := strings.TrimSpace(string(out))
	if root == "" {
		return "", fmt.Errorf("lint: no module found from %s", dir)
	}
	return root, nil
}
