package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const suppressSrc = `package p

func a() {
	//lint:allow detcore prefetch joins before simulation
	_ = 1
}

func b() {
	//lint:allow detcore
	_ = 2
}

func c() {
	_ = 3 //lint:allow lockio dedicated write mutex
}
`

func TestCollectAllows(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", suppressSrc, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	dirs, malformed := collectAllows(fset, []*ast.File{f})

	if len(dirs) != 2 {
		t.Fatalf("directives = %d, want 2 (the reasonless one is malformed)", len(dirs))
	}
	if dirs[0].analyzer != "detcore" || !strings.Contains(dirs[0].reason, "prefetch") {
		t.Errorf("first directive = %+v", dirs[0])
	}
	if dirs[1].analyzer != "lockio" {
		t.Errorf("second directive = %+v", dirs[1])
	}

	if len(malformed) != 1 {
		t.Fatalf("malformed = %d, want 1", len(malformed))
	}
	if malformed[0].Analyzer != "lint" || !strings.Contains(malformed[0].Message, "malformed suppression") {
		t.Errorf("malformed diagnostic = %s", malformed[0])
	}
}

func TestApplyAllows(t *testing.T) {
	dirs := []allowDirective{
		{analyzer: "detcore", reason: "r", file: "p.go", line: 4},
		{analyzer: "lockio", reason: "r", file: "p.go", line: 14},
	}
	diags := []Diagnostic{
		{Analyzer: "detcore", Pos: token.Position{Filename: "p.go", Line: 5}},  // line below directive: suppressed
		{Analyzer: "detcore", Pos: token.Position{Filename: "p.go", Line: 6}},  // two lines below: kept
		{Analyzer: "lockio", Pos: token.Position{Filename: "p.go", Line: 14}},  // same line: suppressed
		{Analyzer: "hotalloc", Pos: token.Position{Filename: "p.go", Line: 5}}, // wrong analyzer: kept
		{Analyzer: "detcore", Pos: token.Position{Filename: "q.go", Line: 5}},  // wrong file: kept
	}
	kept, suppressed := applyAllows(diags, dirs)
	if len(suppressed) != 2 {
		t.Fatalf("suppressed = %d, want 2", len(suppressed))
	}
	if len(kept) != 3 {
		t.Fatalf("kept = %d, want 3", len(kept))
	}
}
