package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowPrefix is the suppression-comment grammar:
//
//	//lint:allow <analyzer> <reason>
//
// placed on the flagged line or on the line immediately above it. The
// reason is mandatory — an exception without a recorded justification
// is itself a finding. Honored suppressions are counted and surfaced in
// the driver summary, so deliberate exceptions stay visible instead of
// silently accumulating.
const allowPrefix = "//lint:allow"

// allowDirective is one parsed suppression comment.
type allowDirective struct {
	analyzer string
	reason   string
	file     string
	line     int
}

// collectAllows extracts every //lint:allow directive in the files.
// Malformed directives (missing analyzer or reason) are reported as
// diagnostics under the pseudo-analyzer "lint" so they fail the run
// rather than silently suppressing nothing.
func collectAllows(fset *token.FileSet, files []*ast.File) ([]allowDirective, []Diagnostic) {
	var dirs []allowDirective
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
				name, reason, _ := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				if name == "" || reason == "" {
					bad = append(bad, Diagnostic{
						Analyzer: "lint",
						Pos:      pos,
						Message:  "malformed suppression: want //lint:allow <analyzer> <reason>",
					})
					continue
				}
				dirs = append(dirs, allowDirective{
					analyzer: name,
					reason:   reason,
					file:     pos.Filename,
					line:     pos.Line,
				})
			}
		}
	}
	return dirs, bad
}

// applyAllows splits diagnostics into kept and suppressed. A diagnostic
// is suppressed when a directive for its analyzer sits on the same line
// or the line immediately above.
func applyAllows(diags []Diagnostic, dirs []allowDirective) (kept []Diagnostic, suppressed []Diagnostic) {
	type key struct {
		file     string
		line     int
		analyzer string
	}
	index := make(map[key]bool, len(dirs)*2)
	for _, d := range dirs {
		index[key{d.file, d.line, d.analyzer}] = true
		index[key{d.file, d.line + 1, d.analyzer}] = true
	}
	for _, d := range diags {
		if index[key{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			suppressed = append(suppressed, d)
			continue
		}
		kept = append(kept, d)
	}
	return kept, suppressed
}
