package lint

import "fmt"

// Summary is the outcome of one lint run.
type Summary struct {
	// Diagnostics are the surviving (unsuppressed) findings, sorted by
	// position. A clean tree has none.
	Diagnostics []Diagnostic

	// Suppressed are findings silenced by an in-source
	// //lint:allow directive — honored, but counted and kept visible.
	Suppressed []Diagnostic

	// Packages is how many packages were analyzed.
	Packages int
}

// SuppressedByAnalyzer tallies honored suppressions per analyzer.
func (s Summary) SuppressedByAnalyzer() map[string]int {
	out := map[string]int{}
	for _, d := range s.Suppressed {
		out[d.Analyzer]++
	}
	return out
}

// Run loads the packages matched by patterns (relative to dir) and
// applies every analyzer, honoring //lint:allow suppressions.
func Run(dir string, analyzers []*Analyzer, patterns ...string) (Summary, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return Summary{}, err
	}
	return RunPackages(analyzers, pkgs)
}

// RunPackages applies the analyzers to already-loaded packages.
func RunPackages(analyzers []*Analyzer, pkgs []*Package) (Summary, error) {
	var sum Summary
	var all []Diagnostic
	for _, pkg := range pkgs {
		sum.Packages++
		diags, err := analyzePackage(analyzers, pkg)
		if err != nil {
			return Summary{}, err
		}
		all = append(all, diags...)
	}
	sortDiagnostics(all)

	// Suppression directives are collected per package above and folded
	// into the diagnostics stream by analyzePackage; the split happens
	// there so directive positions and diagnostics share a FileSet.
	var kept, suppressed []Diagnostic
	for _, d := range all {
		if d.Analyzer == suppressedMarker {
			d.Analyzer = d.origAnalyzer
			suppressed = append(suppressed, d)
			continue
		}
		kept = append(kept, d)
	}
	sum.Diagnostics = kept
	sum.Suppressed = suppressed
	return sum, nil
}

// suppressedMarker tags suppressed diagnostics inside the combined
// stream; origAnalyzer preserves the real analyzer name.
const suppressedMarker = "\x00suppressed"

// analyzePackage runs every applicable analyzer over one package and
// applies the package's //lint:allow directives.
func analyzePackage(analyzers []*Analyzer, pkg *Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.Match != nil && !a.Match(pkg.Path) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %v", a.Name, pkg.Path, err)
		}
	}
	dirs, malformed := collectAllows(pkg.Fset, pkg.Files)
	kept, suppressed := applyAllows(diags, dirs)
	out := append(kept, malformed...)
	for _, d := range suppressed {
		d.origAnalyzer = d.Analyzer
		d.Analyzer = suppressedMarker
		out = append(out, d)
	}
	return out, nil
}
