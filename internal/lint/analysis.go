// Package lint is ccsimlint: a suite of project-specific static
// analyzers that enforce the simulator's cross-cutting invariants at
// build time instead of trusting runtime tests to catch violations
// after they ship:
//
//   - detcore: the deterministic simulation core must stay free of
//     nondeterminism sources (wall clock, unseeded randomness,
//     goroutines, order-sensitive map iteration). The differential
//     suite can only catch such bugs probabilistically; this rejects
//     them structurally.
//   - keyfield: every field reachable from sim.Config either feeds the
//     sweep.Key content-address digest or carries an explicit
//     exclusion tag plus a `// key:` comment justifying it, so a new
//     config knob can never silently serve stale cached results.
//   - lockio: calls that can block on I/O (file writes, network,
//     subprocesses — including the journal and result-cache paths)
//     must not run while a sync.Mutex acquired in the same function is
//     held.
//   - hotalloc: functions annotated `//ccsim:zeroalloc` (the DRAM
//     command issue, ChargeCache op, probe-collector and phase-timer
//     hot paths gated by `make zero-alloc-check`) must not contain
//     constructs that heap-allocate, turning the runtime AllocsPerRun
//     gates into compile-time diagnostics with precise positions.
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis
// API shape (Analyzer with a Run func over a Pass) but is built on the
// standard library alone — the module has zero external dependencies
// and keeps it that way. Type information for imports comes from
// compiler export data via `go list -export` (see load.go), exactly how
// gopls-less vet drivers work. Deliberate exceptions are annotated in
// the source as `//lint:allow <analyzer> <reason>` and are honored and
// counted by the driver (see suppress.go).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named check, mirroring the x/tools analysis.Analyzer
// surface the project would use if external dependencies were allowed.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `//lint:allow <name> <reason>` suppression comments.
	Name string

	// Doc is a one-paragraph description, shown by `ccsimlint -list`.
	Doc string

	// Match, when non-nil, restricts the analyzer to packages whose
	// import path it accepts. A nil Match runs everywhere.
	Match func(pkgPath string) bool

	// Run inspects one type-checked package and reports findings
	// through pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one package's syntax and type information to an
// analyzer's Run function.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, positioned for editors (path:line:col).
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string

	// origAnalyzer carries the real analyzer name while a suppressed
	// diagnostic travels through the combined stream (see run.go).
	origAnalyzer string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// sortDiagnostics orders findings by file, then line, then column, so
// output is deterministic regardless of analyzer or package order.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// All returns the full ccsimlint analyzer suite in presentation order.
func All() []*Analyzer {
	return []*Analyzer{DetCore, KeyField, LockIO, HotAlloc}
}
