package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// zeroAllocMarker annotates a function whose body must stay free of
// heap-allocating constructs. The runtime side of the contract is
// `make zero-alloc-check` (testing.AllocsPerRun over the DRAM command
// issue, ChargeCache op, probe-collector and phase-timer paths); this
// analyzer turns the same contract into compile-time diagnostics with
// precise positions, so a violation is rejected before a benchmark
// ever runs.
const zeroAllocMarker = "//ccsim:zeroalloc"

// HotAlloc checks every function annotated //ccsim:zeroalloc for
// constructs that heap-allocate or are very likely to:
//
//   - make, new, and composite literals of slice/map/chan type;
//   - &T{...} literals (the address forces the value to escape unless
//     the compiler proves otherwise — on these paths we do not gamble);
//   - function literals (closure environments allocate when they
//     capture by reference);
//   - fmt.* calls (interface boxing plus formatting state), except
//     when the result feeds directly into panic — a path legal
//     simulations never take;
//   - append (growth reallocates; hot paths use preallocated rings);
//   - explicit conversions to interface types (boxing).
//
// The check is intraprocedural by design: the AllocsPerRun gates cover
// whole call trees at runtime, the analyzer pins the constructs at the
// exact source position inside every annotated function. Deliberate
// exceptions carry //lint:allow hotalloc <reason>.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "functions annotated //ccsim:zeroalloc must not contain heap-allocating constructs (make/new, escaping composite literals, closures, fmt, append, interface boxing)",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasZeroAllocMarker(fd) {
				continue
			}
			checkZeroAlloc(pass, fd)
		}
	}
	return nil
}

// hasZeroAllocMarker reports whether the function's doc comment carries
// the //ccsim:zeroalloc directive.
func hasZeroAllocMarker(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), zeroAllocMarker) {
			return true
		}
	}
	return false
}

func checkZeroAlloc(pass *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	// Subtrees that only execute on the way into a panic are exempt:
	// the simulator treats them as assertion failures, not hot-path
	// work (e.g. panic(fmt.Sprintf(...)) guarding an illegal command).
	inPanic := panicArgRanges(pass, fd)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if inPanic(n) {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "%s is //ccsim:zeroalloc but contains a function literal; closures allocate their environment", name)
			return false
		case *ast.UnaryExpr:
			if cl, ok := n.X.(*ast.CompositeLit); ok {
				pass.Reportf(cl.Pos(), "%s is //ccsim:zeroalloc but takes the address of a composite literal; it escapes to the heap", name)
				return false
			}
		case *ast.CompositeLit:
			if t := pass.Info.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map, *types.Chan:
					pass.Reportf(n.Pos(), "%s is //ccsim:zeroalloc but builds a %s literal; it allocates backing storage", name, describeComposite(t))
				}
			}
		case *ast.CallExpr:
			checkZeroAllocCall(pass, fd, n)
		}
		return true
	})
}

func describeComposite(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	case *types.Chan:
		return "channel"
	}
	return t.String()
}

func checkZeroAllocCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	name := fd.Name.Name

	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make", "new":
				pass.Reportf(call.Pos(), "%s is //ccsim:zeroalloc but calls %s; it allocates", name, id.Name)
			case "append":
				pass.Reportf(call.Pos(), "%s is //ccsim:zeroalloc but calls append; growth reallocates — use a preallocated buffer or ring", name)
			}
			return
		}
	}

	fn := calleeFunc(pass.Info, call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "%s is //ccsim:zeroalloc but calls fmt.%s; formatting boxes its arguments and allocates", name, fn.Name())
		return
	}

	// Explicit conversion to an interface type boxes the operand.
	if len(call.Args) == 1 {
		if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
			if _, isIface := tv.Type.Underlying().(*types.Interface); isIface {
				if argT := pass.Info.TypeOf(call.Args[0]); argT != nil {
					if _, already := argT.Underlying().(*types.Interface); !already {
						pass.Reportf(call.Pos(), "%s is //ccsim:zeroalloc but converts %s to interface %s; boxing allocates", name, argT, tv.Type)
					}
				}
			}
		}
	}
}

// panicArgRanges returns a predicate reporting whether a node lies
// inside the argument list of a panic call in fd.
func panicArgRanges(pass *Pass, fd *ast.FuncDecl) func(ast.Node) bool {
	type span struct{ lo, hi int }
	var spans []span
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "panic" {
			return true
		}
		if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
			return true
		}
		for _, arg := range call.Args {
			spans = append(spans, span{int(arg.Pos()), int(arg.End())})
		}
		return true
	})
	return func(n ast.Node) bool {
		p := int(n.Pos())
		for _, s := range spans {
			if p >= s.lo && p < s.hi {
				return true
			}
		}
		return false
	}
}
