package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestKeyField(t *testing.T) {
	res := linttest.Run(t, lint.NewKeyField("keyfield", "Config"), "testdata/src/keyfield")
	if got := len(res.Suppressed); got != 1 {
		t.Fatalf("suppressed = %d, want 1 (the //lint:allow'd omitempty field)", got)
	}
	if a := res.Suppressed[0].Analyzer; a != "keyfield" {
		t.Fatalf("suppressed analyzer = %q, want keyfield", a)
	}
}

// TestKeyFieldScope checks the production instance anchors at
// sim.Config and runs only on the sim package.
func TestKeyFieldScope(t *testing.T) {
	if !lint.KeyField.Match("repro/internal/sim") {
		t.Error("keyfield should cover repro/internal/sim")
	}
	if lint.KeyField.Match("repro/internal/sweep") {
		t.Error("keyfield anchors at sim.Config; it should not run elsewhere")
	}
}
