package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestLockIO(t *testing.T) {
	res := linttest.Run(t, lint.LockIO, "testdata/src/lockio")
	if got := len(res.Suppressed); got != 1 {
		t.Fatalf("suppressed = %d, want 1 (the //lint:allow'd dedicated write mutex)", got)
	}
	if a := res.Suppressed[0].Analyzer; a != "lockio" {
		t.Fatalf("suppressed analyzer = %q, want lockio", a)
	}
}
