// Package linttest is the project's analysistest equivalent: it runs
// one analyzer over a golden-file fixture package and compares the
// diagnostics against `// want "regexp"` comments in the fixture
// source, exercising the same suppression pipeline the real driver
// uses. Fixtures live under internal/lint/testdata/src/<analyzer>/.
//
// Grammar, mirroring x/tools analysistest:
//
//	code()        // want "substring or regexp matching the message"
//	clean()       // (no comment: any diagnostic here fails the test)
//
// A fixture line carrying //lint:allow <analyzer> <reason> exercises
// the suppression path: the diagnostic must be produced AND suppressed,
// and Run returns the suppressed findings so tests can assert the
// count.
package linttest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint"
)

// Result reports what one fixture run produced beyond the matched
// expectations.
type Result struct {
	// Suppressed are diagnostics silenced by //lint:allow directives in
	// the fixture.
	Suppressed []lint.Diagnostic
}

// Run applies the analyzer to the fixture package in dir (relative to
// the caller's working directory, conventionally
// "testdata/src/<name>") and fails the test on any mismatch between
// produced diagnostics and // want comments.
func Run(t *testing.T, a *lint.Analyzer, dir string) Result {
	t.Helper()

	pkg, err := loadFixture(dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}

	sum, err := lint.RunPackages([]*lint.Analyzer{a}, []*lint.Package{pkg})
	if err != nil {
		t.Fatalf("linttest: running %s: %v", a.Name, err)
	}

	wants := collectWants(t, pkg.Fset, pkg.Files)
	matchDiagnostics(t, a.Name, sum.Diagnostics, wants)
	return Result{Suppressed: sum.Suppressed}
}

// want is one expectation: a diagnostic whose message matches rx on the
// given file:line.
type want struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

// collectWants parses // want comments from the fixture files.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pat := strings.ReplaceAll(m[1], `\"`, `"`)
				rx, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("linttest: bad want pattern %q: %v", m[1], err)
				}
				pos := fset.Position(c.Pos())
				wants = append(wants, &want{file: pos.Filename, line: pos.Line, rx: rx})
			}
		}
	}
	return wants
}

// matchDiagnostics pairs diagnostics with expectations one-to-one.
func matchDiagnostics(t *testing.T, analyzer string, diags []lint.Diagnostic, wants []*want) {
	t.Helper()
outer:
	for _, d := range diags {
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.rx.MatchString(d.Message) {
				w.matched = true
				continue outer
			}
		}
		t.Errorf("unexpected diagnostic: %s", d.String())
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("missing diagnostic: %s:%d: expected message matching %q", w.file, w.line, w.rx)
		}
	}
}

// loadFixture parses and type-checks the fixture package in dir. The
// package path is the directory's base name, so analyzers constructed
// with that path (e.g. lint.NewKeyField("keyfield", "Config")) match.
func loadFixture(dir string) (*lint.Package, error) {
	names, err := fixtureFiles(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	imports := map[string]bool{}
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", name, err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			imports[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	return lint.CheckFixture(fset, filepath.Base(dir), files, stdExporter(imports))
}

// fixtureFiles lists the fixture's .go files, sorted.
func fixtureFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("reading fixture dir: %v", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, filepath.Join(dir, e.Name()))
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no fixture files in %s", dir)
	}
	return names, nil
}

// stdExports resolves standard-library export data once per test
// binary: `go list -export` produces (and caches) compiler export
// files for whatever stdlib packages the fixtures import.
var (
	stdOnce    sync.Once
	stdExports map[string]string
	stdErr     error
)

func stdExporter(imports map[string]bool) map[string]string {
	stdOnce.Do(func() {
		// Load the superset every fixture needs; one go list invocation
		// amortized across all tests in the binary.
		stdExports, stdErr = lint.ExportData(".",
			"fmt", "math/rand", "net/http", "os", "os/exec", "sort", "strings", "sync", "time")
	})
	if stdErr != nil {
		panic(fmt.Sprintf("linttest: loading stdlib export data: %v", stdErr))
	}
	return stdExports
}
