package lint_test

import (
	"testing"

	"repro/internal/lint"
)

// TestSelfCheck runs the full ccsimlint suite over the repository's own
// source and requires it to come back clean. This is the contract the
// Makefile lint target enforces; keeping it as a test means `go test
// ./...` alone catches a regression that introduces nondeterminism, an
// unkeyed config field, I/O under a lock, or an allocating hot path.
func TestSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("self-check loads and type-checks the whole module")
	}
	root, err := lint.ModuleRoot(".")
	if err != nil {
		t.Fatalf("resolving module root: %v", err)
	}
	sum, err := lint.Run(root, lint.All(), "./...")
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range sum.Diagnostics {
		t.Errorf("finding on own tree: %s", d.String())
	}
	// The tree carries deliberate, annotated exceptions (the sweep
	// cache's dedicated write mutex, the job journal's flush) — the
	// suppression path must be exercised by the real tree, not only by
	// fixtures.
	if len(sum.Suppressed) == 0 {
		t.Error("expected at least one honored //lint:allow suppression in the tree")
	}
}
