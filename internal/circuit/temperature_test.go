package circuit

import (
	"math"
	"testing"
)

func TestAtTemperatureIdentityAtWorstCase(t *testing.T) {
	m := mustModel(t)
	same, err := m.AtTemperature(WorstCaseTempC)
	if err != nil {
		t.Fatal(err)
	}
	r1, a1 := m.ActivateLatency(1)
	r2, a2 := same.ActivateLatency(1)
	if math.Abs(r1-r2) > 1e-9 || math.Abs(a1-a2) > 1e-9 {
		t.Errorf("worst-case temperature changed timings: %g/%g vs %g/%g", r1, a1, r2, a2)
	}
}

func TestCoolerCellsLeakSlower(t *testing.T) {
	m := mustModel(t)
	cool, err := m.AtTemperature(45)
	if err != nil {
		t.Fatal(err)
	}
	// After the same decay time a cooler cell holds more charge.
	if cool.CellVoltage(16) <= m.CellVoltage(16) {
		t.Errorf("45°C cell voltage %g not above 85°C %g", cool.CellVoltage(16), m.CellVoltage(16))
	}
	// And activates faster.
	rcdCool, _ := cool.ActivateLatency(16)
	rcdHot, _ := m.ActivateLatency(16)
	if rcdCool >= rcdHot {
		t.Errorf("45°C tRCD %g not below 85°C %g", rcdCool, rcdHot)
	}
}

func TestChargeCacheTimingsHoldAtWorstCase(t *testing.T) {
	// Section 7.1: the ChargeCache hit timings are derived at the
	// worst-case temperature, so they are valid at any temperature —
	// unlike AL-DRAM-style scaling, which needs low temperature.
	m := mustModel(t)
	rcdWorst, rasWorst := m.ActivateLatency(1)
	for _, temp := range []float64{25, 45, 65, WorstCaseTempC} {
		cooled, err := m.AtTemperature(temp)
		if err != nil {
			t.Fatal(err)
		}
		rcd, ras := cooled.ActivateLatency(1)
		if rcd > rcdWorst+1e-9 || ras > rasWorst+1e-9 {
			t.Errorf("%g°C: %g/%g exceeds worst-case derivation %g/%g", temp, rcd, ras, rcdWorst, rasWorst)
		}
	}
}

func TestRetentionGrowsExponentiallyWhenCooled(t *testing.T) {
	m := mustModel(t)
	r85, err := m.RetentionAt(WorstCaseTempC, 64)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r85-64) > 1 {
		t.Errorf("worst-case retention = %g ms, want ~64", r85)
	}
	r75, err := m.RetentionAt(75, 64)
	if err != nil {
		t.Fatal(err)
	}
	// 10°C cooler: leakage halves, retention roughly doubles.
	if r75 < 1.8*r85 || r75 > 2.2*r85 {
		t.Errorf("75°C retention = %g ms, want ~2x %g", r75, r85)
	}
}

func TestAtTemperatureRejectsOutOfRange(t *testing.T) {
	m := mustModel(t)
	if _, err := m.AtTemperature(-100); err == nil {
		t.Error("accepted -100°C")
	}
	if _, err := m.AtTemperature(200); err == nil {
		t.Error("accepted 200°C")
	}
}
