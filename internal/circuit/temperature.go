package circuit

import (
	"fmt"
	"math"
)

// Temperature handling (Section 7.1 of the paper).
//
// DRAM charge leakage approximately doubles for every 10°C increase.
// Mechanisms like AL-DRAM exploit *low* temperature to lower timings;
// ChargeCache instead relies on the charge put into the row by its own
// recent activation, which holds at the worst-case temperature. The
// functions here let the harness demonstrate exactly that: the timings
// TimingsFor derives at the worst-case temperature are what ChargeCache
// ships with, and AtTemperature shows how retention (and hence
// refresh-based mechanisms) degrade as temperature rises.

// WorstCaseTempC is the DDR3 operating ceiling the spec timings assume.
const WorstCaseTempC = 85.0

// leakDoublingC is the temperature increase that doubles leakage.
const leakDoublingC = 10.0

// AtTemperature returns a model whose leakage is rescaled from the
// worst-case calibration point to tempC: cooler cells leak slower (the
// effective retention time constant grows), hotter cells leak faster.
// The default model is calibrated at the worst case, so
// AtTemperature(WorstCaseTempC) is an identity.
func (m *Model) AtTemperature(tempC float64) (*Model, error) {
	if tempC < -40 || tempC > 125 {
		return nil, fmt.Errorf("circuit: temperature %g°C outside device range", tempC)
	}
	factor := math.Pow(2, (WorstCaseTempC-tempC)/leakDoublingC)
	p := m.p
	// "Leakage doubles per 10°C" is a time-axis scaling: a cell at a
	// temperature with leak factor f reaches in t the state a worst-case
	// cell reaches in t*f. Scaling the stretched-exponential time
	// constant by 1/f implements exactly that.
	p.LeakTauMs *= factor
	return NewModel(p)
}

// RetentionAt returns the time (ms) until a cell decays to the voltage a
// worst-case cell reaches at the retention limit — i.e. the effective
// retention time at tempC. At the worst case this is the spec's 64 ms;
// at lower temperatures it is exponentially longer.
func (m *Model) RetentionAt(tempC float64, specRetentionMs float64) (float64, error) {
	cooled, err := m.AtTemperature(tempC)
	if err != nil {
		return 0, err
	}
	target := m.CellVoltage(specRetentionMs)
	// Invert the stretched exponential of the cooled model.
	// v = 0.5 + 0.5 exp(-(t/tau)^beta)  =>  t = tau * (-ln(2v-1))^(1/beta)
	x := 2*target - 1
	if x <= 0 || x >= 1 {
		return 0, fmt.Errorf("circuit: target voltage %g out of range", target)
	}
	t := cooled.p.LeakTauMs * math.Pow(-math.Log(x), 1/cooled.p.LeakBeta)
	return t, nil
}
