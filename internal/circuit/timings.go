package circuit

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dram"
)

// TimingRow is one row of Table 2: the activation timings that are safe
// when every hit row is at most DurationMs old.
type TimingRow struct {
	DurationMs float64
	TRCDNs     float64
	TRASNs     float64

	// Class is the timing pair converted to bus cycles for spec, clamped
	// to the specification values.
	Class dram.TimingClass
}

// TimingsFor returns the lowered timing class safe for rows that were
// precharged at most durationMs ago, converted to bus cycles of spec.
// The result never exceeds the specification timings.
func (m *Model) TimingsFor(spec dram.Spec, durationMs float64) (TimingRow, error) {
	if durationMs <= 0 {
		return TimingRow{}, fmt.Errorf("circuit: duration %g ms must be positive", durationMs)
	}
	rcdNs, rasNs := m.ActivateLatency(durationMs)
	row := TimingRow{
		DurationMs: durationMs,
		TRCDNs:     rcdNs,
		TRASNs:     rasNs,
		Class: dram.TimingClass{
			RCD: spec.CyclesFromNanos(rcdNs),
			RAS: spec.CyclesFromNanos(rasNs),
		},
	}
	if row.Class.RCD > spec.Timing.RCD {
		row.Class.RCD = spec.Timing.RCD
	}
	if row.Class.RAS > spec.Timing.RAS {
		row.Class.RAS = spec.Timing.RAS
	}
	return row, nil
}

// Table2 reproduces the paper's Table 2: the baseline timings plus the
// lowered timings for the given caching durations (the paper lists 1, 4
// and 16 ms).
func (m *Model) Table2(spec dram.Spec, durationsMs []float64) ([]TimingRow, error) {
	rows := []TimingRow{{
		DurationMs: 0, // baseline marker
		TRCDNs:     spec.NanosFromCycles(dram.Cycle(spec.Timing.RCD)),
		TRASNs:     spec.NanosFromCycles(dram.Cycle(spec.Timing.RAS)),
		Class:      spec.Timing.DefaultClass(),
	}}
	for _, d := range durationsMs {
		row, err := m.TimingsFor(spec, d)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// NUATBins derives the refresh-age bins used by the NUAT comparison
// point: rows refreshed within each age bound get the timing class that
// is safe at that bound. The paper's "5PB" configuration is modeled as
// five bins up to the retention window.
func (m *Model) NUATBins(spec dram.Spec, boundsMs []float64) ([]core.NUATBin, error) {
	if len(boundsMs) == 0 {
		return nil, fmt.Errorf("circuit: need at least one NUAT bound")
	}
	var bins []core.NUATBin
	for _, b := range boundsMs {
		row, err := m.TimingsFor(spec, b)
		if err != nil {
			return nil, err
		}
		bins = append(bins, core.NUATBin{
			MaxAge: spec.MillisecondsToCycles(b),
			Class:  row.Class,
		})
	}
	return bins, nil
}

// DefaultNUATBoundsMs are the five refresh-age bins used for NUAT.
var DefaultNUATBoundsMs = []float64{4, 8, 16, 32, 64}
