package circuit

import (
	"math"
	"testing"

	"repro/internal/dram"
)

func mustModel(t *testing.T) *Model {
	t.Helper()
	m, err := NewModel(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParamsValidate(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.Coupling = 0 },
		func(p *Params) { p.Coupling = 1 },
		func(p *Params) { p.TauSense = 0 },
		func(p *Params) { p.StepNs = 0 },
		func(p *Params) { p.ChargeShareDelay = -1 },
		func(p *Params) { p.LeakBeta = 0 },
		func(p *Params) { p.LeakBeta = 1.5 },
		func(p *Params) { p.ReadyDelta = 0 },
		func(p *Params) { p.RestoreDelta = 0.2 }, // <= ReadyDelta
		func(p *Params) { p.RestoreDelta = 0.6 },
		func(p *Params) { p.Vdd = 0 },
	}
	for i, mutate := range cases {
		p := DefaultParams()
		mutate(&p)
		if _, err := NewModel(p); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
	if _, err := NewModel(DefaultParams()); err != nil {
		t.Errorf("default params rejected: %v", err)
	}
}

func TestCellVoltageDecaysMonotonically(t *testing.T) {
	m := mustModel(t)
	if v := m.CellVoltage(0); v != 1.0 {
		t.Errorf("fresh cell voltage = %g, want 1", v)
	}
	prev := 1.0
	for _, d := range []float64{0.1, 1, 4, 16, 64, 256} {
		v := m.CellVoltage(d)
		if v >= prev {
			t.Errorf("voltage not decreasing at %g ms: %g >= %g", d, v, prev)
		}
		if v <= 0.5 {
			t.Errorf("voltage at %g ms fell to %g (<= Vdd/2)", d, v)
		}
		prev = v
	}
}

// TestTable2Timings checks the paper's Table 2 in nanoseconds:
//
//	duration  tRCD  tRAS
//	baseline  13.75 35
//	1 ms       8    22
//	4 ms       9    24
//	16 ms     11    28
func TestTable2Timings(t *testing.T) {
	m := mustModel(t)
	cases := []struct {
		durMs      float64
		rcd, ras   float64
		toleranceN float64
	}{
		{1, 8, 22, 0.5},
		{4, 9, 24, 0.5},
		{16, 11, 28, 0.5},
		{64, 13.75, 35, 0.5}, // worst case must match the DDR3 spec
	}
	for _, c := range cases {
		rcd, ras := m.ActivateLatency(c.durMs)
		if math.Abs(rcd-c.rcd) > c.toleranceN {
			t.Errorf("%g ms: tRCD = %.2f ns, paper says %.2f", c.durMs, rcd, c.rcd)
		}
		if math.Abs(ras-c.ras) > c.toleranceN {
			t.Errorf("%g ms: tRAS = %.2f ns, paper says %.2f", c.durMs, ras, c.ras)
		}
	}
}

// TestFigure6Reductions checks the headline Figure 6 numbers: a
// fully-charged cell reaches ready-to-access and full restoration several
// ns before the worst-case cell.
func TestFigure6Reductions(t *testing.T) {
	m := mustModel(t)
	rcdFull, rasFull := m.ActivateLatency(0.001) // effectively fresh
	rcdWorst, rasWorst := m.ActivateLatency(64)
	rcdRed := rcdWorst - rcdFull
	rasRed := rasWorst - rasFull
	// The paper reports 4.5 ns / 9.6 ns vs its Figure 6 calibration; our
	// model is calibrated to Table 2, which implies somewhat larger
	// full-charge reductions. Require the right order of magnitude and
	// ordering.
	if rcdRed < 3 || rcdRed > 9 {
		t.Errorf("full-charge tRCD reduction = %.2f ns, want 3-9", rcdRed)
	}
	if rasRed < 7 || rasRed > 18 {
		t.Errorf("full-charge tRAS reduction = %.2f ns, want 7-18", rasRed)
	}
	if rasRed <= rcdRed {
		t.Errorf("tRAS reduction (%.2f) should exceed tRCD reduction (%.2f)", rasRed, rcdRed)
	}
}

func TestActivateLatencyMonotonicInAge(t *testing.T) {
	m := mustModel(t)
	prevRCD, prevRAS := 0.0, 0.0
	for _, d := range []float64{0.125, 0.25, 0.5, 1, 2, 4, 8, 16, 32, 64} {
		rcd, ras := m.ActivateLatency(d)
		if rcd < prevRCD || ras < prevRAS {
			t.Errorf("latency not monotone at %g ms: rcd %g ras %g", d, rcd, ras)
		}
		if ras <= rcd {
			t.Errorf("tRAS (%g) <= tRCD (%g) at %g ms", ras, rcd, d)
		}
		prevRCD, prevRAS = rcd, ras
	}
}

func TestTimingsForConversion(t *testing.T) {
	m := mustModel(t)
	spec := dram.DDR31600(1)
	row, err := m.TimingsFor(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 8 ns / 22 ns at 1.25 ns per cycle -> 7 / 18 cycles. The paper uses
	// a slightly conservative 4/8-cycle reduction (7/20); accept 7 and
	// 17-20 for tRAS.
	if row.Class.RCD != 7 {
		t.Errorf("1ms tRCD = %d cycles, want 7", row.Class.RCD)
	}
	if row.Class.RAS < 17 || row.Class.RAS > 20 {
		t.Errorf("1ms tRAS = %d cycles, want 17-20", row.Class.RAS)
	}
	if _, err := m.TimingsFor(spec, 0); err == nil {
		t.Error("zero duration accepted")
	}
	// Very long durations clamp to the spec class.
	long, err := m.TimingsFor(spec, 500)
	if err != nil {
		t.Fatal(err)
	}
	if long.Class != spec.Timing.DefaultClass() {
		t.Errorf("500ms class = %+v, want clamped to spec", long.Class)
	}
}

func TestTable2Builder(t *testing.T) {
	m := mustModel(t)
	spec := dram.DDR31600(1)
	rows, err := m.Table2(spec, []float64{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want baseline + 3", len(rows))
	}
	if rows[0].Class != spec.Timing.DefaultClass() {
		t.Error("baseline row wrong")
	}
	for i := 2; i < len(rows); i++ {
		if rows[i].TRCDNs < rows[i-1].TRCDNs || rows[i].TRASNs < rows[i-1].TRASNs {
			t.Errorf("Table 2 not monotone at row %d", i)
		}
	}
	if _, err := m.Table2(spec, []float64{-1}); err == nil {
		t.Error("negative duration accepted")
	}
}

func TestNUATBins(t *testing.T) {
	m := mustModel(t)
	spec := dram.DDR31600(1)
	bins, err := m.NUATBins(spec, DefaultNUATBoundsMs)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 5 {
		t.Fatalf("bins = %d, want 5", len(bins))
	}
	// The last bin (64 ms) must be the spec class; earlier bins must be
	// at least as fast, and ages ascending.
	last := bins[len(bins)-1]
	if last.Class != spec.Timing.DefaultClass() {
		t.Errorf("oldest bin class = %+v, want spec", last.Class)
	}
	for i := 1; i < len(bins); i++ {
		if bins[i].MaxAge <= bins[i-1].MaxAge {
			t.Error("bins not ascending")
		}
		if bins[i].Class.RCD < bins[i-1].Class.RCD || bins[i].Class.RAS < bins[i-1].Class.RAS {
			t.Error("older bin faster than younger")
		}
	}
	if _, err := m.NUATBins(spec, nil); err == nil {
		t.Error("empty bounds accepted")
	}
}

func TestBitlineSeriesShape(t *testing.T) {
	m := mustModel(t)
	full := m.BitlineSeries(0.001, 0.5, 40)
	worst := m.BitlineSeries(64, 0.5, 40)
	if len(full) != len(worst) || len(full) == 0 {
		t.Fatal("series lengths differ or empty")
	}
	vdd := m.Params().Vdd
	// Both start at Vdd/2 and end at Vdd; the fresh cell stays ahead.
	if math.Abs(full[0].Volts-vdd/2) > 1e-9 {
		t.Errorf("series starts at %g, want Vdd/2", full[0].Volts)
	}
	lastFull := full[len(full)-1]
	if math.Abs(lastFull.Volts-vdd) > 0.01*vdd {
		t.Errorf("series ends at %g, want ~Vdd", lastFull.Volts)
	}
	crossed := false
	for i := range full {
		if full[i].Volts+1e-12 < worst[i].Volts {
			t.Fatalf("worst-case cell ahead of fresh cell at %g ns", full[i].TimeNs)
		}
		if full[i].Volts > worst[i].Volts+1e-9 {
			crossed = true
		}
		if full[i].Volts > vdd+1e-9 {
			t.Fatalf("voltage exceeded Vdd at %g ns", full[i].TimeNs)
		}
	}
	if !crossed {
		t.Error("fresh and worst-case curves identical")
	}
}

func TestModelParamsAccessor(t *testing.T) {
	m := mustModel(t)
	if m.Params().Vdd != 1.5 {
		t.Errorf("Vdd = %g", m.Params().Vdd)
	}
}
