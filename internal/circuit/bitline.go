// Package circuit is the SPICE substitute: a numerical model of the DRAM
// cell / bitline / sense-amplifier system that the paper simulates with
// 55 nm DDR3 models (Section 4.3). It produces the two artifacts the
// paper consumes from SPICE:
//
//   - Figure 6: bitline voltage vs. time during activation, for cells
//     with different initial charge, and the resulting tRCD/tRAS
//     reductions.
//   - Table 2: the lowered (tRCD, tRAS) pairs safe for each ChargeCache
//     caching duration.
//
// The model has three stages. (1) Cell leakage: between a precharge and
// the next activation the cell voltage decays from Vdd toward Vdd/2
// following a stretched exponential exp(-(t/tau)^beta) — the standard
// shape for DRAM retention. (2) Charge sharing: when the wordline rises,
// the bitline deviates from Vdd/2 by the coupling ratio times the
// remaining cell overdrive. (3) Regenerative sensing and restore: the
// sense amplifier amplifies the deviation exponentially; the bitline is
// ready to access at Vdd/4 overdrive (3/4 Vdd absolute, the
// ready-to-access level in Figure 6) and the cell is restored at 0.475
// Vdd overdrive, plus a fixed wordline-lowering margin.
//
// Default parameters are calibrated so the integrated crossing times
// match the paper's Table 2 within ~0.3 ns (see circuit_test.go).
package circuit

import (
	"fmt"
	"math"
)

// Params are the model's physical constants. Voltages are normalized to
// Vdd = 1; times are nanoseconds unless noted.
type Params struct {
	// Coupling is Cc/(Cc+Cb): the fraction of the cell's overdrive that
	// appears on the bitline after charge sharing.
	Coupling float64

	// ChargeShareDelay is the wordline-rise plus charge-sharing time.
	ChargeShareDelay float64

	// TauSense is the sense amplifier's regenerative time constant.
	TauSense float64

	// TauRestore is the (slower) cell-restore time constant.
	TauRestore float64

	// RestoreMargin is the fixed tail after full restore (wordline
	// lowering margin) included in tRAS.
	RestoreMargin float64

	// LeakTauMs and LeakBeta parameterize the stretched-exponential
	// retention decay, with time in milliseconds.
	LeakTauMs float64
	LeakBeta  float64

	// ReadyDelta is the bitline overdrive (fraction of Vdd) at which a
	// column access may begin (0.25: bitline at 3/4 Vdd).
	ReadyDelta float64

	// RestoreDelta is the overdrive at which the cell counts as fully
	// restored (0.475: bitline at 97.5% of Vdd).
	RestoreDelta float64

	// Vdd in volts, used only to scale reported voltages.
	Vdd float64

	// StepNs is the Euler integration step.
	StepNs float64
}

// DefaultParams returns constants calibrated against the paper's SPICE
// results (Table 2 and Figure 6; see the package comment).
func DefaultParams() Params {
	return Params{
		Coupling:         0.0527,
		ChargeShareDelay: 2.0,
		TauSense:         2.0,
		TauRestore:       4.53,
		RestoreMargin:    3.30,
		LeakTauMs:        2.1322,
		LeakBeta:         0.38,
		ReadyDelta:       0.25,
		RestoreDelta:     0.475,
		Vdd:              1.5,
		StepNs:           0.0005,
	}
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	switch {
	case p.Coupling <= 0 || p.Coupling >= 1:
		return fmt.Errorf("circuit: coupling %g out of (0,1)", p.Coupling)
	case p.TauSense <= 0 || p.TauRestore <= 0 || p.StepNs <= 0:
		return fmt.Errorf("circuit: time constants must be positive")
	case p.ChargeShareDelay < 0 || p.RestoreMargin < 0:
		return fmt.Errorf("circuit: delays must be non-negative")
	case p.LeakTauMs <= 0 || p.LeakBeta <= 0 || p.LeakBeta > 1:
		return fmt.Errorf("circuit: leak tau %g / beta %g invalid", p.LeakTauMs, p.LeakBeta)
	case p.ReadyDelta <= 0 || p.RestoreDelta <= p.ReadyDelta || p.RestoreDelta >= 0.5:
		return fmt.Errorf("circuit: deltas ready=%g restore=%g invalid", p.ReadyDelta, p.RestoreDelta)
	case p.Vdd <= 0:
		return fmt.Errorf("circuit: Vdd must be positive")
	}
	return nil
}

// Model evaluates the bitline dynamics.
type Model struct {
	p Params
}

// NewModel builds a model; params must validate.
func NewModel(p Params) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Model{p: p}, nil
}

// Params returns the model parameters.
func (m *Model) Params() Params { return m.p }

// CellVoltage returns the normalized cell voltage (0.5 .. 1.0) after the
// cell has leaked for afterMs milliseconds since its last full restore.
func (m *Model) CellVoltage(afterMs float64) float64 {
	if afterMs <= 0 {
		return 1.0
	}
	decay := math.Exp(-math.Pow(afterMs/m.p.LeakTauMs, m.p.LeakBeta))
	return 0.5 + 0.5*decay
}

// ActivateLatency integrates an activation of a cell that has leaked for
// afterMs and returns the analog latency to the ready-to-access level
// (tRCD) and to full restoration (tRAS), in nanoseconds.
func (m *Model) ActivateLatency(afterMs float64) (tRCD, tRAS float64) {
	dv0 := m.p.Coupling * (m.CellVoltage(afterMs) - 0.5)
	sense, restore := dv0, dv0
	t := m.p.ChargeShareDelay
	dt := m.p.StepNs
	var readyAt, restoredAt float64
	for readyAt == 0 || restoredAt == 0 {
		if readyAt == 0 && sense >= m.p.ReadyDelta {
			readyAt = t
		}
		if restoredAt == 0 && restore >= m.p.RestoreDelta {
			restoredAt = t
		}
		sense += sense * dt / m.p.TauSense
		restore += restore * dt / m.p.TauRestore
		t += dt
	}
	return readyAt, restoredAt + m.p.RestoreMargin
}

// Point is one sample of the Figure 6 bitline-voltage series.
type Point struct {
	TimeNs  float64
	Volts   float64 // absolute bitline voltage
	Overdrv float64 // normalized overdrive above Vdd/2
}

// BitlineSeries returns the bitline voltage over time for a cell that
// has leaked for afterMs, sampled every sampleNs up to maxNs (the raw
// material of Figure 6).
func (m *Model) BitlineSeries(afterMs, sampleNs, maxNs float64) []Point {
	dv0 := m.p.Coupling * (m.CellVoltage(afterMs) - 0.5)
	var pts []Point
	for t := 0.0; t <= maxNs; t += sampleNs {
		var dv float64
		if t >= m.p.ChargeShareDelay {
			dv = dv0 * math.Exp((t-m.p.ChargeShareDelay)/m.p.TauSense)
		}
		if dv > 0.5 {
			dv = 0.5
		}
		pts = append(pts, Point{
			TimeNs:  t,
			Volts:   (0.5 + dv) * m.p.Vdd,
			Overdrv: dv,
		})
	}
	return pts
}
