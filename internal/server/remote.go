package server

import (
	"context"
	"errors"
	"fmt"
)

// ErrIneligible marks a job a particular daemon cannot faithfully
// execute — today, a trace-file config whose paths the daemon's
// advertised trace root does not cover. The client wraps its
// pre-submission rejections with it so fleet schedulers can tell "this
// worker must not run this job" (route it elsewhere, keep the worker)
// from a transport failure (the worker is gone).
var ErrIneligible = errors.New("job not executable on this daemon")

// Remote is an execution backend that runs one job off-process — in
// practice a peer ccsimd daemon reached through internal/client's Peer
// adapter (the interface lives here, not in the client package, so the
// manager can depend on it without an import cycle). A Manager
// configured with Remotes dedicates Slots() worker goroutines to each,
// turning one daemon into the front of a fleet: queued flights are
// pulled by whichever worker — local or remote — frees up first.
//
// Run must distinguish the two failure modes the manager treats
// differently: a *RemoteJobError means the peer accepted the job and
// the simulation itself failed (the flight fails — retrying elsewhere
// would fail identically); any other error means the peer is
// unreachable or unhealthy, and the flight is handed back to the queue
// for another worker.
type Remote interface {
	// Name identifies the backend in logs and errors (its base URL).
	Name() string
	// Slots is the backend's concurrent-job capacity: how many worker
	// goroutines the manager dedicates to it.
	Slots() int
	// Run executes one job to a terminal state and returns its final
	// status (result included). Cancelling ctx must cancel the remote
	// job best-effort.
	Run(ctx context.Context, spec JobSpec) (JobStatus, error)
}

// RemoteJobError reports a job that a remote daemon accepted and then
// finished unsuccessfully — failed or canceled server-side — as opposed
// to a transport error, after which the peer's state is unknown and the
// job is retryable on another worker.
type RemoteJobError struct {
	Endpoint string   // base URL of the daemon that ran the job
	JobID    string   // the daemon's job ID
	State    JobState // failed or canceled
	Message  string   // the daemon's error string
}

// Error implements error.
func (e *RemoteJobError) Error() string {
	return fmt.Sprintf("remote job %s on %s %s: %s", e.JobID, e.Endpoint, e.State, e.Message)
}
