package server

import (
	"context"
	"errors"
	"fmt"
)

// ErrIneligible marks a job a particular daemon cannot faithfully
// execute — today, a trace-file config whose paths the daemon's
// advertised trace root does not cover. The client wraps its
// pre-submission rejections with it so fleet schedulers can tell "this
// worker must not run this job" (route it elsewhere, keep the worker)
// from a transport failure (the worker is gone).
var ErrIneligible = errors.New("job not executable on this daemon")

// Machine-readable failure reasons carried on JobStatus.Reason (and
// through RemoteJobError.Reason), so fleet schedulers classify terminal
// failures without parsing error strings.
const (
	// ReasonDeadline: the job's propagated deadline expired before it
	// could finish — retryable on a less loaded worker, not evidence the
	// simulation or the daemon is broken.
	ReasonDeadline = "deadline"
	// ReasonQuarantined: the job was poison-quarantined after killing
	// successive workers; resubmitting it fails fast.
	ReasonQuarantined = "quarantined"
)

// ErrCodeDeadlineUnmeetable is the structured error code of an
// admission-time load shed: the daemon's estimated queue drain time
// already exceeds the submission's deadline, so accepting the job would
// only waste a scheduler slot.
const ErrCodeDeadlineUnmeetable = "deadline_unmeetable"

// DeadlineHeader carries a request's absolute deadline (milliseconds
// since the Unix epoch) from client to daemon, letting the manager
// enforce the caller's context deadline queue-side.
const DeadlineHeader = "X-Ccsimd-Deadline-Ms"

// Remote is an execution backend that runs one job off-process — in
// practice a peer ccsimd daemon reached through internal/client's Peer
// adapter (the interface lives here, not in the client package, so the
// manager can depend on it without an import cycle). A Manager
// configured with Remotes dedicates Slots() worker goroutines to each,
// turning one daemon into the front of a fleet: queued flights are
// pulled by whichever worker — local or remote — frees up first.
//
// Run must distinguish the two failure modes the manager treats
// differently: a *RemoteJobError means the peer accepted the job and
// the simulation itself failed (the flight fails — retrying elsewhere
// would fail identically); any other error means the peer is
// unreachable or unhealthy, and the flight is handed back to the queue
// for another worker.
type Remote interface {
	// Name identifies the backend in logs and errors (its base URL).
	Name() string
	// Slots is the backend's concurrent-job capacity: how many worker
	// goroutines the manager dedicates to it.
	Slots() int
	// Run executes one job to a terminal state and returns its final
	// status (result included). Cancelling ctx must cancel the remote
	// job best-effort.
	Run(ctx context.Context, spec JobSpec) (JobStatus, error)
}

// RemoteJobError reports a job that a remote daemon accepted and then
// finished unsuccessfully — failed or canceled server-side — as opposed
// to a transport error, after which the peer's state is unknown and the
// job is retryable on another worker.
type RemoteJobError struct {
	Endpoint string   // base URL of the daemon that ran the job
	JobID    string   // the daemon's job ID
	State    JobState // failed or canceled
	Message  string   // the daemon's error string
	Reason   string   // machine-readable cause (ReasonDeadline, ReasonQuarantined, or "")
}

// Error implements error.
func (e *RemoteJobError) Error() string {
	return fmt.Sprintf("remote job %s on %s %s: %s", e.JobID, e.Endpoint, e.State, e.Message)
}
