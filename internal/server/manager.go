// Package server turns the simulator into a long-running network
// service: a job manager layered on the internal/sweep engine, HTTP
// handlers exposing it as a JSON API (see server.go), Server-Sent
// Events streaming per-job progress (sse.go), and operational metrics
// (metrics.go).
//
// The manager's core guarantees:
//
//   - bounded intake: at most QueueDepth simulations wait at once;
//     beyond that submissions are rejected (ErrQueueFull), never
//     silently buffered,
//   - singleflight deduplication: identical configs (same sweep.Key)
//     submitted concurrently by any number of clients — or tenants —
//     run exactly one simulation, and every subscriber receives that
//     one result,
//   - content-addressed persistence: completed results land in the
//     sweep.Cache (fronted by a hot in-memory LRU, see store.go), so a
//     restarted daemon serves previously computed configs instantly
//     and GET /v1/results/{key} works across runs,
//   - multi-tenant fairness: with a tenant Registry configured,
//     staging is weighted fair-share across tenants (schedq.go) with
//     per-tenant queue/concurrency quotas; without one the manager
//     degenerates to the original single-FIFO behavior exactly,
//   - graceful shutdown: Drain stops intake, cancels still-queued
//     jobs, and waits for running simulations to finish.
package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/sim"
	"repro/internal/sweep"
)

// Submission errors, mapped to HTTP statuses by the handler layer.
var (
	// ErrQueueFull rejects submissions when the bounded queue is at
	// capacity (HTTP 429).
	ErrQueueFull = errors.New("server: job queue is full")
	// ErrDraining rejects submissions during graceful shutdown (503).
	ErrDraining = errors.New("server: shutting down, not accepting jobs")
	// ErrUnknownJob reports a job ID the manager has never issued (404).
	ErrUnknownJob = errors.New("server: unknown job")
	// ErrDeadlineExceeded fails a job whose propagated deadline expired
	// while it was still queued — it fails fast instead of occupying a
	// scheduler slot it can no longer use.
	ErrDeadlineExceeded = errors.New("server: job deadline exceeded")
	// ErrQuarantined fails a poison job: one whose execution killed
	// PoisonThreshold successive workers. Resubmissions of the same
	// config fail fast instead of cascading through the fleet.
	ErrQuarantined = errors.New("server: job quarantined")
)

// JobState is the lifecycle position of one job.
type JobState string

const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// JobSpec is one submitted simulation: a config plus an optional
// client-chosen label echoed back in statuses and progress events.
type JobSpec struct {
	Label  string     `json:"label,omitempty"`
	Config sim.Config `json:"config"`
	// Tenant attributes the job to a tenant other than the submitting
	// principal. Honored only in open mode (no registry) or when the
	// authenticated caller is a Gateway tenant — the mechanism by which
	// a fleet front forwards the original caller's identity to its
	// peers, keeping fleet-wide quotas and attribution correct.
	// Excluded from sweep.Key: attribution never changes cache keys.
	Tenant string `json:"tenant,omitempty"`
	// DeadlineMs, when positive, is the job's absolute deadline in
	// milliseconds since the Unix epoch. The manager enforces it
	// queue-side: a job still queued past its deadline fails fast with
	// Reason "deadline", and a submission whose deadline the estimated
	// queue drain already exceeds is shed at admission. Normally filled
	// from the X-Ccsimd-Deadline-Ms header (the client's context
	// deadline); excluded from sweep.Key like Tenant — urgency never
	// changes content addresses.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
}

// JobStatus is the wire representation of one job's state. Result is
// populated only on done jobs, and only by the detail/terminal paths
// (job GET, final SSE event), not by listings.
type JobStatus struct {
	ID          string      `json:"id"`
	Label       string      `json:"label,omitempty"`
	Tenant      string      `json:"tenant,omitempty"` // owning tenant ("" in open mode)
	Key         string      `json:"key,omitempty"` // content address of the config
	State       JobState    `json:"state"`
	Cached      bool        `json:"cached,omitempty"`  // served from the persistent cache
	Deduped     bool        `json:"deduped,omitempty"` // attached to another job's in-flight run
	Error       string      `json:"error,omitempty"`
	// Reason is the machine-readable cause of a terminal failure
	// (ReasonDeadline, ReasonQuarantined) so fleet schedulers classify
	// failures without parsing Error strings.
	Reason      string      `json:"reason,omitempty"`
	SubmittedAt time.Time   `json:"submitted_at"`
	StartedAt   *time.Time  `json:"started_at,omitempty"`
	FinishedAt  *time.Time  `json:"finished_at,omitempty"`
	ElapsedMs   float64     `json:"elapsed_ms,omitempty"` // simulation wall clock
	Result      *sim.Result `json:"result,omitempty"`
}

// job is the manager-side state of one submission. All fields are
// guarded by Manager.mu.
type job struct {
	id          string
	label       string
	tenant      string // owning tenant name ("" = anonymous/open mode)
	key         string
	state       JobState
	flight      *flight
	cached      bool
	deduped     bool
	err         error
	reason      string    // machine-readable failure cause (ReasonDeadline, ...)
	deadline    time.Time // queue-side enforcement bound; zero = none
	submittedAt time.Time
	startedAt   time.Time
	finishedAt  time.Time
	elapsed     time.Duration
	result      *sim.Result

	events  []jobEvent // status history, the SSE resume source
	subs    map[int]chan jobEvent
	nextSub int
}

// flight is one physical simulation execution. Concurrent submissions
// of the same config attach their jobs to the existing flight instead
// of creating a second one — the singleflight core of the dedup
// guarantee.
type flight struct {
	key    string // content address; flights are indexed by it
	label  string
	cfg    sim.Config
	jobs   []*job
	state  JobState // queued or running
	ctx    context.Context
	cancel context.CancelFunc

	// tenant is the owner for scheduling and quota accounting: the
	// tenant whose submission created the flight (attached tenants ride
	// along without consuming their own concurrency). priority is the
	// highest Priority among attached tenants — preemption must never
	// cancel a flight a high-priority tenant is waiting on. seq orders
	// arrivals for newest-first preemption.
	tenant   string
	priority int
	seq      uint64

	// handbacks counts how many successive workers this flight's
	// execution has killed (each retireSlot hand-back increments it).
	// At ManagerConfig.PoisonThreshold the flight is quarantined instead
	// of requeued, so one poison job cannot cascade through the fleet.
	handbacks int

	// stream, set when the config enables analysis, fans the flight's
	// live epoch batches out to SSE subscribers and retains the final
	// report for late ones.
	stream *analysisBroker
}

// NoLocalWorkers as ManagerConfig.Workers makes the manager a pure
// dispatch front: it runs no simulations itself and needs at least one
// Remote to make progress (NewManager rejects it otherwise).
const NoLocalWorkers = -1

// ManagerConfig sizes a Manager.
type ManagerConfig struct {
	// Workers is the number of simulations running concurrently on
	// this machine (0 means GOMAXPROCS; NoLocalWorkers means none —
	// valid only together with Remotes).
	Workers int
	// QueueDepth bounds how many distinct simulations may wait for a
	// worker (<= 0 means 64). Submissions beyond it fail ErrQueueFull.
	QueueDepth int
	// Cache, when non-nil, persists every completed result and serves
	// previously computed configs without re-simulating.
	Cache *sweep.Cache
	// Retention bounds how many terminal jobs stay queryable (<= 0
	// means 1024). The daemon is long-running, so finished jobs —
	// each pinning a full sim.Result — are evicted oldest-first beyond
	// this cap; their results remain reachable through the cache via
	// GET /v1/results/{key}. Live jobs are never evicted.
	Retention int

	// Remotes are peer execution backends (ccsimd -peers): each adds
	// Slots() worker goroutines that run queued flights on that peer
	// instead of this machine, with automatic hand-back to the queue
	// when the peer becomes unreachable.
	Remotes []Remote

	// Tenants, when non-nil, turns the manager into a multi-tenant
	// gateway: submissions are attributed to tenants, staged by
	// weighted fair share with per-tenant quotas, and surfaced
	// per-tenant on /metrics. Nil is "open mode": every submission is
	// anonymous and scheduling degenerates to the original single FIFO.
	Tenants *Registry

	// HotResults sizes the hot in-memory LRU fronting the persistent
	// cache (<= 0 means 256). Ignored without a Cache.
	HotResults int

	// TraceRoot, when non-empty, is advertised on /healthz as a shared
	// trace directory: clients may submit trace-file configs whose
	// absolute paths live under it, because this daemon sees the same
	// files at the same paths (NFS mount, shared volume). Without it,
	// trace-file configs are rejected client-side — the daemon would
	// otherwise open the paths on its own filesystem, failing or,
	// worse, silently reading a different file.
	TraceRoot string

	// HedgeAfter, when positive, hedges straggler remote flights: a
	// flight a peer has been running for longer than this launches a
	// local backup execution, first result wins. Safe because the
	// fleet-wide singleflight on sweep.Key guarantees at most one
	// *counted* simulation per config — the losing attempt is canceled
	// and never finishes the flight. Zero disables hedging.
	HedgeAfter time.Duration
	// PoisonThreshold quarantines a flight after its execution killed
	// this many successive workers (0 means 3; negative disables
	// quarantine entirely).
	PoisonThreshold int
	// StorageProbeInterval overrides how often degraded (memory-only)
	// storage probes the disk for recovery; <= 0 keeps the one-second
	// default.
	StorageProbeInterval time.Duration
}

// Manager owns the job table, the dedup index, and the worker pool
// feeding the sweep engine.
type Manager struct {
	cache *sweep.Cache
	// store fronts the cache with a hot LRU (nil without a cache); all
	// manager-side result lookups go through it.
	store *resultStore
	// registry is the tenant table (nil = open mode).
	registry *Registry
	// journal durably maps job IDs to cache keys (<cache path>.jobs) so
	// analysis lookups and fleet metrics survive restarts and retention
	// pruning. Nil without a cache.
	journal *jobJournal

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	retention  int
	workers    int // local worker goroutines
	traceRoot  string
	hedgeAfter time.Duration // straggler threshold for remote flights (0 = no hedging)
	poison     int           // successive worker kills before quarantine (<=0 = never)

	mu       sync.Mutex
	qcond    *sync.Cond // workers wait here for startable flights
	jobs     map[string]*job
	order    []string           // job IDs in submission order
	flights  map[string]*flight // key -> in-flight execution
	sched    *schedQueue        // per-tenant staging queues (schedq.go)
	qclosed  bool               // set by Drain; workers exit once the queue empties
	draining bool
	nextID   uint64
	slots    int // live worker goroutines, local + remote; remote slots retire on peer loss

	// quarantined maps content-address keys of poison jobs to the
	// human-readable quarantine cause; resubmissions fail fast.
	quarantined map[string]string
	// avgFlightNs is an EWMA of fresh (non-cached) flight durations,
	// the basis of admission-time deadline shedding: a submission whose
	// deadline the estimated queue drain exceeds is rejected instead of
	// occupying a slot it cannot use.
	avgFlightNs float64

	counters counters
	tstats   map[string]*tenantCounters
}

// tenantCounters is one tenant's share of the job counters, the
// per-tenant block of /metrics. Guarded by Manager.mu.
type tenantCounters struct {
	submitted     uint64
	completed     uint64
	failed        uint64
	canceled      uint64
	deduped       uint64
	cacheHits     uint64
	preempted     uint64 // queued jobs canceled by higher-priority submissions
	quotaRejected uint64 // submissions rejected by MaxQueued/MaxConcurrent quotas
}

// tenantCountersLocked returns (allocating on first use) name's
// counter block. Caller holds m.mu.
func (m *Manager) tenantCountersLocked(name string) *tenantCounters {
	tc := m.tstats[name]
	if tc == nil {
		tc = &tenantCounters{}
		m.tstats[name] = tc
	}
	return tc
}

// NewManager starts cfg.Workers local worker goroutines plus Slots()
// goroutines per remote backend and returns the manager. Call Drain to
// stop it.
func NewManager(cfg ManagerConfig) *Manager {
	workers := cfg.Workers
	switch {
	case workers == NoLocalWorkers:
		workers = 0
		if len(cfg.Remotes) == 0 {
			// A manager with no execution capacity would accept jobs
			// and never run them; keep one local worker instead.
			workers = 1
		}
	case workers <= 0:
		workers = runtime.GOMAXPROCS(0)
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 64
	}
	retention := cfg.Retention
	if retention <= 0 {
		retention = 1024
	}
	poison := cfg.PoisonThreshold
	if poison == 0 {
		poison = 3
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cache:       cfg.Cache,
		store:       newResultStore(cfg.Cache, cfg.HotResults),
		registry:    cfg.Tenants,
		retention:   retention,
		workers:     workers,
		traceRoot:   cfg.TraceRoot,
		hedgeAfter:  cfg.HedgeAfter,
		poison:      poison,
		ctx:         ctx,
		cancel:      cancel,
		jobs:        map[string]*job{},
		flights:     map[string]*flight{},
		sched:       newSchedQueue(depth),
		tstats:      map[string]*tenantCounters{},
		quarantined: map[string]string{},
	}
	m.qcond = sync.NewCond(&m.mu)
	if cfg.Cache != nil {
		if cfg.StorageProbeInterval > 0 {
			cfg.Cache.SetStorageProbeInterval(cfg.StorageProbeInterval)
		}
		// The journal keeps a wider window than the job table: an entry is
		// a one-line ID->key mapping, so retaining 8x the in-memory
		// retention is cheap, and it is exactly the evicted jobs — the ones
		// no longer in the table — whose IDs the journal must still resolve.
		m.journal = openJournal(cfg.Cache.Path()+".jobs", 8*retention)
		if cfg.StorageProbeInterval > 0 {
			m.journal.setStorageProbeInterval(cfg.StorageProbeInterval)
		}
		if max := m.journal.maxID(); max > m.nextID {
			m.nextID = max
		}
		m.replayJournal()
	}
	m.slots = workers
	m.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go m.worker()
	}
	for _, r := range cfg.Remotes {
		slots := r.Slots()
		if slots < 1 {
			slots = 1
		}
		m.slots += slots
		m.wg.Add(slots)
		for i := 0; i < slots; i++ {
			go m.remoteWorker(r)
		}
	}
	// The deadline sweeper fails queued jobs whose deadline passed. Not
	// in m.wg: it lives on m.ctx, which Drain cancels after the workers
	// finish.
	go m.expireLoop()
	return m
}

// replayJournal rebuilds the fleet analysis aggregates from the
// journaled jobs whose reports still live in the cache, so /metrics
// reflects the daemon's history across restarts. One accumulation per
// distinct key, mirroring the live rule of one per executed flight
// (cache-hit submissions of the same config do not double-count).
// Runs before the workers start, so no locking is needed.
func (m *Manager) replayJournal() {
	seen := map[string]bool{}
	for _, e := range m.journal.entries() {
		if e.State != StateDone || e.Key == "" || seen[e.Key] {
			continue
		}
		seen[e.Key] = true
		res, ok := m.cache.Lookup(e.Key)
		if !ok || res.Analysis == nil {
			continue
		}
		m.counters.accumulateAnalysisLocked(res.Analysis.Totals)
		if e.Worker != "" {
			ws := m.counters.worker(e.Worker)
			ws.flights++
			if e.Worker == "cache" {
				ws.cacheHits++
			}
			ws.accumulate(res.Analysis)
		}
	}
}

// Cache returns the manager's persistent result store (may be nil).
func (m *Manager) Cache() *sweep.Cache { return m.cache }

// Registry returns the tenant registry (nil in open mode).
func (m *Manager) Registry() *Registry { return m.registry }

// LookupResult resolves a content-address key through the tiered
// result store (hot LRU, then the persistent cache).
func (m *Manager) LookupResult(key string) (sim.Result, bool) {
	return m.store.Lookup(key)
}

// Workers returns the local simulation concurrency, advertised on
// /healthz so fleet dispatchers can weight assignment by capacity.
func (m *Manager) Workers() int { return m.workers }

// TraceRoot returns the advertised shared trace directory ("" when the
// daemon has none).
func (m *Manager) TraceRoot() string { return m.traceRoot }

// StorageDegraded reports whether any durable tier (result cache, job
// journal) is currently running memory-only after disk write failures.
// Surfaced as a /readyz warning and the storage_degraded metric; the
// daemon keeps serving — results and job state stay correct in memory
// and the disk is re-probed automatically.
func (m *Manager) StorageDegraded() bool {
	if m.cache != nil {
		if degraded, _, _ := m.cache.StorageHealth(); degraded {
			return true
		}
	}
	degraded, _, _ := m.journal.health()
	return degraded
}

// Submit validates and enqueues a batch of jobs as the anonymous
// caller — the open-mode entry point, byte-identical to the
// pre-gateway behavior when no registry is configured.
func (m *Manager) Submit(specs []JobSpec) ([]JobStatus, error) {
	return m.SubmitAs(Tenant{}, specs)
}

// SubmitAs validates and enqueues a batch of jobs atomically on behalf
// of caller: either every spec is accepted (each getting a job ID) or
// none is. Identical configs — within the batch or against jobs
// already queued/running, across tenants — share one simulation;
// configs already in the result store complete immediately without
// queueing. Batches that would push the owning tenant past MaxQueued
// fail with a QuotaError; batches overflowing the shared queue either
// preempt queued lower-priority flights or fail ErrQueueFull.
func (m *Manager) SubmitAs(caller Tenant, specs []JobSpec) ([]JobStatus, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("server: empty submission")
	}
	keys := make([]string, len(specs))
	owners := make([]Tenant, len(specs))
	deadlines := make([]time.Time, len(specs))
	for i, spec := range specs {
		if err := spec.Config.Validate(); err != nil {
			return nil, fmt.Errorf("server: job %d: %w", i, err)
		}
		if spec.DeadlineMs > 0 {
			deadlines[i] = time.UnixMilli(spec.DeadlineMs)
		}
		// Hash outside the lock: keys are a pure function of the spec,
		// and marshal+SHA-256 per config would otherwise stall every
		// status poll and completing flight behind this batch.
		if key, err := sweep.Key(spec.Config); err == nil {
			keys[i] = key
		}
		// Uncacheable (custom-mechanism) configs cannot arrive over
		// JSON, but guard anyway: they run as unique key-less flights.

		// Resolve the owning tenant: the caller, unless the spec names
		// another tenant and the caller may speak for it (fleet fronts
		// forwarding the original submitter, or open mode).
		name := caller.Name
		if spec.Tenant != "" && (caller.Gateway || m.registry == nil) {
			name = spec.Tenant
		}
		owners[i] = m.registry.Lookup(name)
	}

	// Journal writes do file I/O; this defer is registered before the
	// unlock defer so it runs after the lock is released.
	var recs []journalEntry
	defer func() { m.journal.record(recs...) }()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return nil, ErrDraining
	}
	// Poison quarantine: a config that killed PoisonThreshold successive
	// workers fails fast on resubmission instead of cascading again.
	for i, key := range keys {
		if cause, ok := m.quarantined[key]; ok && key != "" {
			return nil, fmt.Errorf("server: job %d: %w (%s)", i, ErrQuarantined, cause)
		}
	}

	// Count the fresh flights this batch needs, so a batch that would
	// overflow the queue (or a tenant quota) is rejected before any job
	// is created.
	type plan struct {
		key    string
		cached *sim.Result
		flight *flight // existing flight to attach to
		fresh  bool    // creates a new flight (queue capacity consumer)
	}
	plans := make([]plan, len(specs))
	fresh := 0
	batchFlights := map[string]bool{}
	queuedAdd := map[string]int{} // per-tenant jobs this batch would queue
	for i := range specs {
		key := keys[i]
		plans[i].key = key
		if key != "" {
			if res, ok := m.store.Lookup(key); ok {
				plans[i].cached = &res
				continue
			}
			if f, ok := m.flights[key]; ok {
				plans[i].flight = f
				if f.state == StateQueued {
					queuedAdd[owners[i].Name]++
				}
				continue
			}
			if batchFlights[key] {
				queuedAdd[owners[i].Name]++
				continue // attaches to a flight created earlier in this batch
			}
			batchFlights[key] = true
		}
		plans[i].fresh = true
		fresh++
		queuedAdd[owners[i].Name]++
	}

	// Admission-time load shedding: a fresh submission whose deadline
	// the estimated queue drain already exceeds (or has already passed)
	// would only waste a scheduler slot — reject it now so the client
	// retries a less loaded worker while there is still time.
	est := m.drainEstimateLocked(fresh)
	for i := range specs {
		if !plans[i].fresh || deadlines[i].IsZero() {
			continue
		}
		if wait := time.Until(deadlines[i]); wait <= 0 || (est > 0 && wait < est) {
			m.counters.deadlineShed++
			return nil, &DeadlineError{JobIndex: i, Wait: wait, Estimate: est}
		}
	}

	// Per-tenant MaxQueued quota: the tenant's jobs already waiting plus
	// what this batch would add must fit.
	for name, add := range queuedAdd {
		owner := m.registry.Lookup(name)
		if owner.MaxQueued <= 0 {
			continue
		}
		waiting := 0
		for _, j := range m.jobs {
			if j.tenant == name && j.state == StateQueued {
				waiting++
			}
		}
		if waiting+add > owner.MaxQueued {
			m.tenantCountersLocked(name).quotaRejected++
			return nil, &QuotaError{Tenant: name, Quota: "queued", Limit: owner.MaxQueued}
		}
	}

	if m.sched.total+fresh > m.sched.capacity {
		// A higher-priority submission may make room by preempting
		// queued (never running) flights of strictly lower classes.
		prio, hasFresh := 0, false
		for i := range specs {
			if plans[i].cached == nil && plans[i].flight == nil {
				if p := owners[i].Priority; !hasFresh || p < prio {
					prio, hasFresh = p, true
				}
			}
		}
		need := m.sched.total + fresh - m.sched.capacity
		victims := m.sched.preemptible(need, prio)
		if victims == nil {
			return nil, ErrQueueFull
		}
		for _, v := range victims {
			m.tenantCountersLocked(v.tenant).preempted++
			for _, j := range v.jobs {
				if !j.state.Terminal() {
					m.cancelJobLocked(j, "preempted by a higher-priority submission")
				}
			}
		}
	}

	now := time.Now()
	statuses := make([]JobStatus, len(specs))
	for i, spec := range specs {
		owner := owners[i]
		m.nextID++
		j := &job{
			id:          fmt.Sprintf("job-%06d", m.nextID),
			label:       spec.Label,
			tenant:      owner.Name,
			key:         plans[i].key,
			deadline:    deadlines[i],
			submittedAt: now,
			subs:        map[int]chan jobEvent{},
		}
		m.jobs[j.id] = j
		m.order = append(m.order, j.id)
		m.counters.submitted++
		var tc *tenantCounters
		if owner.Name != "" {
			tc = m.tenantCountersLocked(owner.Name)
			tc.submitted++
		}

		switch {
		case plans[i].cached != nil:
			j.state = StateDone
			j.cached = true
			j.finishedAt = now
			j.result = plans[i].cached
			m.counters.completed++
			m.counters.cacheHits++
			if tc != nil {
				tc.completed++
				tc.cacheHits++
			}
			// The "cache" slot counts service, not production: the report
			// was accumulated when the producing flight finished, so no
			// analysis accumulate here.
			ws := m.counters.worker("cache")
			ws.flights++
			ws.cacheHits++
			recs = append(recs, journalEntry{
				ID: j.id, Key: j.key, Label: j.label, Tenant: j.tenant,
				State: StateDone, Worker: "cache", FinishedAt: now,
			})
		case plans[i].flight != nil:
			m.attachLocked(j, plans[i].flight, owner)
		default:
			var f *flight
			if j.key != "" {
				f = m.flights[j.key] // flight created earlier in this batch
			}
			if f != nil {
				m.attachLocked(j, f, owner)
				break
			}
			fctx, fcancel := context.WithCancel(m.ctx)
			f = &flight{
				key:      j.key,
				label:    spec.Label,
				cfg:      spec.Config,
				state:    StateQueued,
				ctx:      fctx,
				cancel:   fcancel,
				tenant:   owner.Name,
				priority: owner.Priority,
			}
			if ac := spec.Config.Analysis; ac != nil && ac.Enabled {
				f.stream = newAnalysisBroker()
			}
			j.state = StateQueued
			j.flight = f
			f.jobs = append(f.jobs, j)
			if f.key != "" {
				m.flights[f.key] = f
			}
			m.sched.push(f, owner) // capacity pre-checked above
			m.qcond.Broadcast()
		}
		// Seed the event history with the submission snapshot, so SSE
		// subscribers can replay the full lifecycle from sequence 1.
		m.recordEventLocked(j, m.statusLocked(j, j.state.Terminal()))
		statuses[i] = m.statusLocked(j, true)
	}
	m.pruneLocked()
	return statuses, nil
}

// attachLocked joins j to an existing flight: it will complete with the
// flight's result without a simulation of its own. The flight's
// preemption shield rises to the highest attached priority, so a
// higher-class tenant's deduped wait is never undone by a preemption
// aimed at the flight's original owner.
func (m *Manager) attachLocked(j *job, f *flight, owner Tenant) {
	j.deduped = true
	j.flight = f
	j.state = f.state // queued or running
	if f.state == StateRunning {
		j.startedAt = time.Now()
	}
	f.jobs = append(f.jobs, j)
	m.counters.deduped++
	if owner.Name != "" {
		m.tenantCountersLocked(owner.Name).deduped++
	}
	if owner.Priority > f.priority {
		f.priority = owner.Priority
	}
}

// Job returns the status of one job, result included when done.
func (m *Manager) Job(id string) (JobStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobStatus{}, ErrUnknownJob
	}
	return m.statusLocked(j, true), nil
}

// Jobs lists every job in submission order, without result payloads.
func (m *Manager) Jobs() []JobStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobStatus, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.statusLocked(m.jobs[id], false))
	}
	return out
}

// JobsByID returns the statuses of the named jobs, without result
// payloads, omitting IDs the manager no longer (or never) knew.
func (m *Manager) JobsByID(ids []string) []JobStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		if j, ok := m.jobs[id]; ok {
			out = append(out, m.statusLocked(j, false))
		}
	}
	return out
}

// Cancel moves a non-terminal job to canceled. A queued simulation
// whose subscribers are all canceled is skipped entirely; a running
// one finishes (a single simulation cannot be interrupted) and its
// result is still cached, but no canceled job flips back to done.
func (m *Manager) Cancel(id string) (JobStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobStatus{}, ErrUnknownJob
	}
	if j.state.Terminal() {
		return m.statusLocked(j, true), nil
	}
	m.cancelJobLocked(j, "canceled by client")
	st := m.statusLocked(j, true)
	m.pruneLocked()
	return st, nil
}

// canSeeLocked reports whether caller may observe (or act on) j: in
// open mode everyone sees everything; with a registry, tenants see only
// their own jobs while Gateway principals (fleet fronts, operators)
// see all.
func (m *Manager) canSeeLocked(caller Tenant, j *job) bool {
	return m.registry == nil || caller.Gateway || j.tenant == caller.Name
}

// JobAs is Job scoped to caller's visibility; another tenant's job
// reads as unknown, never leaking its existence.
func (m *Manager) JobAs(caller Tenant, id string) (JobStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok || !m.canSeeLocked(caller, j) {
		return JobStatus{}, ErrUnknownJob
	}
	return m.statusLocked(j, true), nil
}

// JobsAs is Jobs scoped to caller's visibility.
func (m *Manager) JobsAs(caller Tenant) []JobStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobStatus, 0, len(m.order))
	for _, id := range m.order {
		if j := m.jobs[id]; m.canSeeLocked(caller, j) {
			out = append(out, m.statusLocked(j, false))
		}
	}
	return out
}

// JobsByIDAs is JobsByID scoped to caller's visibility; invisible IDs
// are omitted exactly like unknown ones.
func (m *Manager) JobsByIDAs(caller Tenant, ids []string) []JobStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		if j, ok := m.jobs[id]; ok && m.canSeeLocked(caller, j) {
			out = append(out, m.statusLocked(j, false))
		}
	}
	return out
}

// jobVisibleAs reports whether caller may reference job id, consulting
// the live table then the durable journal (for evicted and pre-restart
// IDs). Unknown IDs read as visible — the downstream lookup 404s
// uniformly, so invisibility and nonexistence are indistinguishable.
func (m *Manager) jobVisibleAs(caller Tenant, id string) bool {
	if m.registry == nil || caller.Gateway {
		return true
	}
	m.mu.Lock()
	if j, ok := m.jobs[id]; ok {
		vis := j.tenant == caller.Name
		m.mu.Unlock()
		return vis
	}
	m.mu.Unlock()
	if e, ok := m.journal.lookup(id); ok {
		// Pre-gateway journal generations carry no tenant; their results
		// were produced in open mode and stay readable.
		return e.Tenant == "" || e.Tenant == caller.Name
	}
	return true
}

// CancelAs is Cancel scoped to caller's visibility.
func (m *Manager) CancelAs(caller Tenant, id string) (JobStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok || !m.canSeeLocked(caller, j) {
		return JobStatus{}, ErrUnknownJob
	}
	if j.state.Terminal() {
		return m.statusLocked(j, true), nil
	}
	m.cancelJobLocked(j, "canceled by client")
	st := m.statusLocked(j, true)
	m.pruneLocked()
	return st, nil
}

// cancelJobLocked finalizes one job as canceled and, when it was the
// last live subscriber of a still-queued flight, drops the flight from
// the dedup index (so later identical submissions start fresh instead
// of attaching to a doomed flight) and cancels its context so the
// simulation never starts. A running flight is left alone: a single
// simulation cannot be interrupted, and poisoning its context would
// fail jobs that attach between now and its completion.
func (m *Manager) cancelJobLocked(j *job, reason string) {
	j.state = StateCanceled
	j.err = errors.New(reason)
	j.finishedAt = time.Now()
	m.counters.canceled++
	if j.tenant != "" {
		m.tenantCountersLocked(j.tenant).canceled++
	}
	m.notifyLocked(j)
	if f := j.flight; f != nil && f.state == StateQueued {
		live := false
		for _, other := range f.jobs {
			if !other.state.Terminal() {
				live = true
				break
			}
		}
		if !live {
			f.state = StateCanceled
			m.dropFlightLocked(f)
			// Drop the dead flight from its subqueue so the slot frees
			// immediately instead of tombstoning the bounded queue until
			// a worker skips it.
			m.sched.remove(f)
		}
	}
}

// DeadlineError rejects a submission at admission because its deadline
// cannot be met: either it already passed, or the estimated queue drain
// time exceeds it. The handler layer maps it to 503 with the structured
// code ErrCodeDeadlineUnmeetable, so clients distinguish "this worker
// is too loaded" (retry elsewhere) from a permanent rejection.
type DeadlineError struct {
	JobIndex int           // position in the submitted batch
	Wait     time.Duration // time left until the deadline (<= 0: passed)
	Estimate time.Duration // estimated queue drain at admission (0: unknown)
}

// Error implements error.
func (e *DeadlineError) Error() string {
	if e.Wait <= 0 {
		return fmt.Sprintf("server: job %d: deadline already expired at submission", e.JobIndex)
	}
	return fmt.Sprintf("server: job %d: deadline unmeetable: estimated queue drain %v exceeds the %v left before the deadline",
		e.JobIndex, e.Estimate.Round(time.Millisecond), e.Wait.Round(time.Millisecond))
}

// drainEstimateLocked estimates how long the queue (plus fresh incoming
// flights) takes to drain, from the EWMA of fresh flight durations and
// the live slot count. Zero until enough history exists. Caller holds
// m.mu.
func (m *Manager) drainEstimateLocked(fresh int) time.Duration {
	if m.avgFlightNs <= 0 || m.slots <= 0 {
		return 0
	}
	backlog := m.sched.total + fresh + m.counters.running
	return time.Duration(float64(backlog) * m.avgFlightNs / float64(m.slots))
}

// expireLoop periodically fails queued jobs whose deadline passed, so
// they stop occupying scheduler slots they can no longer use. Running
// jobs are left alone — a single simulation cannot be interrupted, and
// its result is still worth caching.
func (m *Manager) expireLoop() {
	t := time.NewTicker(50 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-m.ctx.Done():
			return
		case now := <-t.C:
			m.expireQueued(now)
		}
	}
}

// expireQueued fails every queued job whose deadline passed, dropping
// flights left with no live subscribers from the queue entirely.
func (m *Manager) expireQueued(now time.Time) {
	var recs []journalEntry
	m.mu.Lock()
	for _, id := range m.order {
		j := m.jobs[id]
		if j.state != StateQueued || j.deadline.IsZero() || now.Before(j.deadline) {
			continue
		}
		recs = append(recs, m.failJobLocked(j, fmt.Errorf("%w: expired after %v queued", ErrDeadlineExceeded, now.Sub(j.submittedAt).Round(time.Millisecond)), ReasonDeadline))
		if f := j.flight; f != nil && f.state == StateQueued {
			live := false
			for _, other := range f.jobs {
				if !other.state.Terminal() {
					live = true
					break
				}
			}
			if !live {
				f.state = StateCanceled
				m.dropFlightLocked(f)
				m.sched.remove(f)
			}
		}
	}
	if len(recs) > 0 {
		m.pruneLocked()
	}
	m.mu.Unlock()
	m.journal.record(recs...)
}

// failJobLocked finalizes one job as failed with a machine-readable
// reason and returns its journal entry. The caller owns any flight
// cleanup. Caller holds m.mu.
func (m *Manager) failJobLocked(j *job, err error, reason string) journalEntry {
	j.state = StateFailed
	j.err = err
	j.reason = reason
	j.finishedAt = time.Now()
	m.counters.failed++
	if reason == ReasonDeadline {
		m.counters.deadlineExpired++
	}
	if j.tenant != "" {
		m.tenantCountersLocked(j.tenant).failed++
	}
	m.notifyLocked(j)
	return journalEntry{
		ID: j.id, Key: j.key, Label: j.label, Tenant: j.tenant,
		State: StateFailed, FinishedAt: j.finishedAt,
	}
}

// failureReason maps a flight error to the machine-readable Reason
// carried on JobStatus ("" for unclassified failures).
func failureReason(err error) string {
	var remoteErr *RemoteJobError
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrDeadlineExceeded):
		return ReasonDeadline
	case errors.Is(err, ErrQuarantined):
		return ReasonQuarantined
	case errors.As(err, &remoteErr):
		return remoteErr.Reason // propagate the peer's classification
	}
	return ""
}

// nextFlight blocks until the scheduler has a startable flight,
// returning ok=false once Drain closed the queue and nothing startable
// remains. Picking accounts one running slot to the flight's tenant,
// released by finishFlight (or startFlight when the flight is dead).
func (m *Manager) nextFlight() (*flight, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if f := m.sched.pick(); f != nil {
			return f, true
		}
		if m.qclosed {
			return nil, false
		}
		m.qcond.Wait()
	}
}

// worker picks flights until Drain closes the queue.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		f, ok := m.nextFlight()
		if !ok {
			return
		}
		m.runFlight(f)
	}
}

// remoteWorker is one execution slot on a peer daemon: it picks flights
// like a local worker but ships them to r. When the peer becomes
// unreachable the slot retires — the in-flight flight is handed back to
// the queue (or executed locally when it cannot be), and if this was
// the manager's last live slot the goroutine degrades to a local worker
// so queued flights are never orphaned.
func (m *Manager) remoteWorker(r Remote) {
	defer m.wg.Done()
	for {
		f, ok := m.nextFlight()
		if !ok {
			return
		}
		if !m.startFlight(f) {
			continue
		}
		switch m.execFlightRemote(r, f) {
		case flightSettled:
			continue
		case peerLostSettled:
			// A hedge finished the flight after the peer vanished: retire
			// the slot without a hand-back.
			if last := m.dropSlot(); !last {
				return
			}
		case peerLost:
			if last := m.retireSlot(f); !last {
				return
			}
		}
		for {
			f, ok := m.nextFlight()
			if !ok {
				return
			}
			m.runFlight(f)
		}
	}
}

// runFlight executes one flight locally, start to finish.
func (m *Manager) runFlight(f *flight) {
	if !m.startFlight(f) {
		return
	}
	m.execFlightLocal(f)
}

// startFlight moves a dequeued flight to running and reports whether it
// should execute; a flight whose subscribers all canceled while it was
// queued (or whose context died) is finalized instead.
func (m *Manager) startFlight(f *flight) bool {
	// Journal writes do file I/O; registered before the lock so it runs
	// after the explicit unlocks below.
	var recs []journalEntry
	defer func() { m.journal.record(recs...) }()
	m.mu.Lock()
	// Deadline enforcement at the last queue-side moment: subscribers
	// whose deadline passed while the flight waited fail fast instead of
	// riding a simulation they can no longer use.
	now := time.Now()
	for _, j := range f.jobs {
		if !j.state.Terminal() && !j.deadline.IsZero() && now.After(j.deadline) {
			recs = append(recs, m.failJobLocked(j, fmt.Errorf("%w: expired before the simulation could start", ErrDeadlineExceeded), ReasonDeadline))
		}
	}
	live := 0
	for _, j := range f.jobs {
		if !j.state.Terminal() {
			live++
		}
	}
	if live == 0 || f.ctx.Err() != nil {
		// Every subscriber canceled while queued (or the manager is
		// tearing down): skip the simulation. Finalize any straggler
		// jobs so no subscriber waits on a flight that will never run.
		for _, j := range f.jobs {
			if !j.state.Terminal() {
				m.cancelJobLocked(j, "canceled before the simulation started")
			}
		}
		m.dropFlightLocked(f)
		m.sched.release(f) // the pick's running slot, never used
		m.qcond.Broadcast()
		m.pruneLocked()
		m.mu.Unlock()
		return false
	}
	f.state = StateRunning
	m.counters.running++
	now = time.Now()
	for _, j := range f.jobs {
		if j.state == StateQueued {
			j.state = StateRunning
			j.startedAt = now
			m.notifyLocked(j)
		}
	}
	m.mu.Unlock()
	return true
}

// simulateFlight runs a started flight through the sweep engine on this
// machine, without finishing it — the caller decides what the outcome
// means (the normal local path finishes the flight with it; a hedge
// only wins if the remote attempt has not already finished). When the
// flight carries a stream broker and hedge is false, the analysis
// collector's live batches are routed into it on the simulation
// goroutine; the cloned config keeps the content address unchanged
// (Stream is excluded from the key). Hedge runs skip the broker so a
// losing backup never races the winner's stream seal.
func (m *Manager) simulateFlight(f *flight, hedge bool) (sim.Result, sweep.Event, error) {
	cfg := f.cfg
	if !hedge && f.stream != nil && cfg.Analysis != nil {
		ac := *cfg.Analysis
		ac.Stream = f.stream.ingest
		cfg.Analysis = &ac
	}
	var ev sweep.Event
	results, err := sweep.Run(f.ctx, []sweep.Job{{Label: f.label, Config: cfg}}, sweep.Options{
		Workers:  1,
		Cache:    m.cache,
		Progress: func(e sweep.Event) { ev = e },
	})
	var res sim.Result
	if err == nil {
		res = results[0]
		if f.key != "" {
			// sweep.Run already wrote the cold tier; promote into the
			// hot LRU so local completions are served hot just like
			// remote ones (store.Put on the peer path).
			m.store.promote(f.key, res)
		}
	}
	return res, ev, err
}

// execFlightLocal runs a started flight locally, start to finish.
func (m *Manager) execFlightLocal(f *flight) {
	res, ev, err := m.simulateFlight(f, false)
	m.finishFlight(f, "local", res, ev.Elapsed, ev.Cached, false, err)
}

// remoteVerdict is the outcome of one remote flight execution.
type remoteVerdict int

const (
	// flightSettled: the flight reached a terminal state (on the peer, or
	// locally via the ineligible fallback or a winning hedge while the
	// peer stayed healthy); the slot keeps serving the peer.
	flightSettled remoteVerdict = iota
	// peerLost: transport failure with the flight still running; the
	// caller hands it back via retireSlot.
	peerLost
	// peerLostSettled: the transport died but a hedge finished the
	// flight; the slot retires without a hand-back.
	peerLostSettled
)

// remoteSpec builds the JobSpec forwarded to a peer: the owning tenant
// (so the peer attributes work — and its fleet-wide dedup and quotas —
// to the original caller, not to this forwarding daemon) and the widest
// deadline shared by every live subscriber. The deadline is forwarded
// only when every live subscriber has one: a peer must never fail a
// flight early while a deadline-less subscriber is still waiting on it.
func (m *Manager) remoteSpec(f *flight) JobSpec {
	spec := JobSpec{Label: f.label, Config: f.cfg, Tenant: f.tenant}
	m.mu.Lock()
	latest, all := time.Time{}, true
	for _, j := range f.jobs {
		if j.state.Terminal() {
			continue
		}
		if j.deadline.IsZero() {
			all = false
			break
		}
		if j.deadline.After(latest) {
			latest = j.deadline
		}
	}
	m.mu.Unlock()
	if all && !latest.IsZero() {
		spec.DeadlineMs = latest.UnixMilli()
	}
	return spec
}

// execFlightRemote runs a started flight on r, hedging stragglers with
// a local backup when the manager was configured with HedgeAfter.
func (m *Manager) execFlightRemote(r Remote, f *flight) remoteVerdict {
	if m.hedgeAfter > 0 {
		return m.execFlightHedged(r, f)
	}
	start := time.Now()
	st, err := r.Run(f.ctx, m.remoteSpec(f))
	if m.settleRemote(r, f, st, err, time.Since(start), false) {
		return flightSettled
	}
	return peerLost
}

// execFlightHedged races the peer against a local backup: the remote
// attempt starts immediately, and if it is still running after
// hedgeAfter a local execution launches too — first finished result
// wins and cancels the loser, so hedges never double-finish a flight
// (and never double-count SimulationsRun: only the winner reaches
// finishFlight).
func (m *Manager) execFlightHedged(r Remote, f *flight) remoteVerdict {
	type remoteOut struct {
		st  JobStatus
		err error
	}
	type localOut struct {
		res sim.Result
		ev  sweep.Event
		err error
	}
	start := time.Now()
	rctx, rcancel := context.WithCancel(f.ctx)
	defer rcancel()
	rch := make(chan remoteOut, 1)
	spec := m.remoteSpec(f)
	go func() {
		st, err := r.Run(rctx, spec)
		rch <- remoteOut{st, err}
	}()
	var lch chan localOut // nil until the hedge launches; nil in select blocks forever
	timer := time.NewTimer(m.hedgeAfter)
	defer timer.Stop()
	for {
		select {
		case o := <-rch:
			elapsed := time.Since(start)
			hedged := lch != nil
			if m.settleRemote(r, f, o.st, o.err, elapsed, hedged) {
				return flightSettled
			}
			if !hedged {
				return peerLost
			}
			// The peer is gone (or became ineligible) but the hedge is
			// already simulating this flight locally: let it finish —
			// handing the flight back would run it a third time.
			lo := <-lch
			m.finishFlight(f, "local", lo.res, lo.ev.Elapsed, lo.ev.Cached, false, lo.err)
			m.mu.Lock()
			m.counters.hedgesWon++
			m.mu.Unlock()
			if errors.Is(o.err, ErrIneligible) {
				return flightSettled // the peer is healthy; keep its slot
			}
			return peerLostSettled
		case <-timer.C:
			if lch != nil {
				continue
			}
			lch = make(chan localOut, 1)
			m.mu.Lock()
			m.counters.hedgesLaunched++
			m.mu.Unlock()
			go func() {
				res, ev, err := m.simulateFlight(f, true)
				lch <- localOut{res, ev, err}
			}()
		case lo := <-lch:
			// The local backup beat the straggling peer: cancel the remote
			// attempt and finish with the local result.
			rcancel()
			m.finishFlight(f, "local", lo.res, lo.ev.Elapsed, lo.ev.Cached, false, lo.err)
			m.mu.Lock()
			m.counters.hedgesWon++
			m.mu.Unlock()
			return flightSettled
		}
	}
}

// settleRemote applies one remote outcome to the flight. It reports
// true when the flight reached a terminal state; false means a
// transport failure (the peer is unreachable — the caller retires the
// slot or falls back to a running hedge) or, when hedged, an
// ineligibility verdict the running hedge will resolve.
func (m *Manager) settleRemote(r Remote, f *flight, st JobStatus, err error, elapsed time.Duration, hedged bool) bool {
	var remoteErr *RemoteJobError
	switch {
	case err == nil && st.Result == nil:
		m.finishFlight(f, r.Name(), sim.Result{}, elapsed, false, true,
			fmt.Errorf("server: peer %s finished job without a result", r.Name()))
	case err == nil:
		res := *st.Result
		if f.key != "" {
			// Land the peer's result in this daemon's result store (hot
			// tier + persistent cache) so restarts and identical
			// submissions serve it locally, under the key computed at
			// submission — never re-digested, so a trace rewritten
			// mid-flight cannot fail a successful run (key-less flights
			// skip caching, like the local path; cacheless managers have
			// a nil store; a degraded cache absorbs the write in memory).
			if perr := m.store.Put(f.key, res); perr != nil {
				m.finishFlight(f, r.Name(), sim.Result{}, elapsed, false, true, perr)
				return true
			}
		}
		m.finishFlight(f, r.Name(), res, elapsed, st.Cached, true, nil)
	case errors.As(err, &remoteErr) || f.ctx.Err() != nil:
		// The peer ran the job and the simulation failed (retrying
		// elsewhere would fail identically), or our own flight was
		// canceled: terminal either way.
		m.finishFlight(f, r.Name(), sim.Result{}, elapsed, false, true, err)
	case errors.Is(err, ErrIneligible):
		// This peer must not run the job (e.g. it cannot see the
		// config's trace files) but it is perfectly healthy: execute
		// the flight on this goroutine instead — requeueing would
		// livelock a fleet whose every peer is ineligible, and failing
		// would punish a job local execution can still satisfy. With a
		// hedge already running, that local execution exists: defer to it.
		if hedged {
			return false
		}
		m.execFlightLocal(f)
	default:
		return false
	}
	return true
}

// retireSlot hands back the flight a vanished peer was running and
// removes this worker from the live-slot count. The flight returns to
// the queue for another worker when possible; otherwise — queue full,
// draining, or no other slot left to ever pick it up — it executes
// locally on this goroutine, because a started flight must reach a
// terminal state. Returns true when this was the last live slot, in
// which case the caller keeps serving the queue locally.
func (m *Manager) retireSlot(f *flight) (last bool) {
	m.mu.Lock()
	m.slots--
	last = m.slots == 0
	// Poison quarantine: a flight whose execution has now killed
	// m.poison successive workers is the common cause, not the victim.
	// Fail and quarantine it instead of handing it to yet another
	// worker.
	f.handbacks++
	if m.poison > 0 && f.handbacks >= m.poison {
		m.counters.quarantined++
		if f.key != "" {
			m.quarantined[f.key] = fmt.Sprintf("killed %d successive workers", f.handbacks)
		}
		m.mu.Unlock()
		m.finishFlight(f, "quarantine", sim.Result{}, 0, false, true,
			fmt.Errorf("%w: execution killed %d successive workers", ErrQuarantined, f.handbacks))
		return last
	}
	if !last && !m.draining && m.sched.total < m.sched.capacity {
		// Hand-back visible to pollers/SSE as running -> queued.
		f.state = StateQueued
		for _, j := range f.jobs {
			if j.state == StateRunning {
				j.state = StateQueued
				m.notifyLocked(j)
			}
		}
		m.counters.running--
		m.counters.requeued++
		m.sched.release(f) // re-picked later, re-accounted then
		m.sched.push(f, m.registry.Lookup(f.tenant))
		m.qcond.Broadcast()
		m.mu.Unlock()
		return last
	}
	m.mu.Unlock()
	m.execFlightLocal(f)
	return last
}

// dropSlot removes a retiring worker from the live-slot count without a
// flight hand-back (the flight already settled). Returns true when this
// was the last live slot.
func (m *Manager) dropSlot() (last bool) {
	m.mu.Lock()
	m.slots--
	last = m.slots == 0
	m.mu.Unlock()
	return last
}

// finishFlight completes every job attached to a started flight with
// its outcome. worker names the slot that resolved the flight ("local"
// or a peer) for the journal and the per-worker metrics; cached marks
// results served from a cache (this daemon's or the executing peer's);
// remote marks executions that happened on a peer, counted separately
// because the peer's own counters record the simulation.
func (m *Manager) finishFlight(f *flight, worker string, res sim.Result, elapsed time.Duration, cached, remote bool, err error) {
	var recs []journalEntry
	m.mu.Lock()
	m.counters.running--
	m.dropFlightLocked(f)
	m.sched.release(f)
	// A finished flight frees capacity and (for capped tenants) a
	// concurrency slot; wake waiting workers to re-pick.
	m.qcond.Broadcast()
	switch {
	case err != nil:
		reason := failureReason(err)
		for _, j := range f.jobs {
			if j.state.Terminal() {
				continue
			}
			j.state = StateFailed
			j.err = err
			j.reason = reason
			j.finishedAt = time.Now()
			j.elapsed = elapsed
			m.counters.failed++
			if j.tenant != "" {
				m.tenantCountersLocked(j.tenant).failed++
			}
			m.notifyLocked(j)
			recs = append(recs, journalEntry{
				ID: j.id, Key: j.key, Label: j.label, Tenant: j.tenant,
				State: StateFailed, Worker: worker, FinishedAt: j.finishedAt,
			})
		}
	default:
		switch {
		case cached:
			m.counters.cacheHits++
		case remote:
			m.counters.remoteSims++
		default:
			m.counters.simulations++
		}
		if !cached && elapsed > 0 {
			// Fresh execution: fold its duration into the drain-estimate
			// EWMA that admission-time deadline shedding consults.
			const alpha = 0.3
			if m.avgFlightNs == 0 {
				m.avgFlightNs = float64(elapsed)
			} else {
				m.avgFlightNs += alpha * (float64(elapsed) - m.avgFlightNs)
			}
		}
		if res.Analysis != nil {
			m.counters.accumulateAnalysisLocked(res.Analysis.Totals)
		}
		ws := m.counters.worker(worker)
		ws.flights++
		if cached {
			ws.cacheHits++
		}
		ws.accumulate(res.Analysis)
		done := time.Now()
		for _, j := range f.jobs {
			if j.state.Terminal() {
				continue
			}
			j.state = StateDone
			j.cached = j.cached || cached
			j.finishedAt = done
			j.elapsed = elapsed
			j.result = &res
			m.counters.completed++
			if j.tenant != "" {
				m.tenantCountersLocked(j.tenant).completed++
			}
			m.notifyLocked(j)
			recs = append(recs, journalEntry{
				ID: j.id, Key: j.key, Label: j.label, Tenant: j.tenant,
				State: StateDone, Worker: worker, FinishedAt: done,
			})
		}
	}
	m.pruneLocked()
	m.mu.Unlock()
	// Broker seal and journal write happen outside m.mu: finish closes
	// subscriber channels (its own lock) and record does file I/O.
	if f.stream != nil {
		f.stream.finish(res.Analysis, err)
	}
	m.journal.record(recs...)
}

// dropFlightLocked removes f from the dedup index so later identical
// submissions hit the cache (or start fresh) instead of attaching to a
// finished flight.
func (m *Manager) dropFlightLocked(f *flight) {
	if f.key != "" && m.flights[f.key] == f {
		delete(m.flights, f.key)
	}
	f.cancel()
}

// pruneLocked evicts the oldest terminal jobs beyond the retention
// cap, keeping the long-running daemon's memory bounded. Live jobs
// are always kept; evicted results stay reachable via the cache.
func (m *Manager) pruneLocked() {
	terminal := 0
	for _, id := range m.order {
		if m.jobs[id].state.Terminal() {
			terminal++
		}
	}
	if terminal <= m.retention {
		return
	}
	keep := m.order[:0]
	for _, id := range m.order {
		if j := m.jobs[id]; terminal > m.retention && j.state.Terminal() {
			delete(m.jobs, id)
			terminal--
			continue
		}
		keep = append(keep, id)
	}
	m.order = keep
}

// Drain gracefully shuts the manager down: new submissions fail with
// ErrDraining, still-queued jobs are canceled, and running simulations
// are awaited until ctx expires. It is idempotent; concurrent calls
// all block until the drain completes.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	if !m.draining {
		m.draining = true
		// Walk jobs, not the dedup index: key-less (uncacheable)
		// flights never enter m.flights but must be canceled too.
		for _, j := range m.jobs {
			if !j.state.Terminal() && j.flight != nil && j.flight.state == StateQueued {
				m.cancelJobLocked(j, "server shutting down")
			}
		}
		// SubmitAs holds mu and checks draining, so no racing push;
		// workers exit nextFlight once nothing startable remains.
		m.qclosed = true
		m.qcond.Broadcast()
	}
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		m.cancel()
		return nil
	case <-ctx.Done():
		m.cancel()
		return fmt.Errorf("server: drain: %w", ctx.Err())
	}
}

// statusLocked renders a job for the wire.
func (m *Manager) statusLocked(j *job, withResult bool) JobStatus {
	st := JobStatus{
		ID:          j.id,
		Label:       j.label,
		Tenant:      j.tenant,
		Key:         j.key,
		State:       j.state,
		Cached:      j.cached,
		Deduped:     j.deduped,
		SubmittedAt: j.submittedAt,
		ElapsedMs:   float64(j.elapsed) / float64(time.Millisecond),
	}
	if j.err != nil {
		st.Error = j.err.Error()
		st.Reason = j.reason
	}
	if !j.startedAt.IsZero() {
		t := j.startedAt
		st.StartedAt = &t
	}
	if !j.finishedAt.IsZero() {
		t := j.finishedAt
		st.FinishedAt = &t
	}
	if withResult && j.state == StateDone {
		st.Result = j.result
	}
	return st
}
