package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// jobEvent is one entry of a job's event history: a status snapshot
// plus the sequence number SSE clients use as the Last-Event-ID resume
// cursor. Sequences start at 1 with the submission snapshot and
// increase by 1 per transition, so a reconnecting client replays
// exactly the events it missed — no gaps, no duplicates.
type jobEvent struct {
	seq uint64
	st  JobStatus
}

// recordEventLocked appends j's status st to its event history and
// returns the stamped event. Callers hold m.mu.
func (m *Manager) recordEventLocked(j *job, st JobStatus) jobEvent {
	ev := jobEvent{seq: uint64(len(j.events)) + 1, st: st}
	j.events = append(j.events, ev)
	return ev
}

// Subscribe registers for a job's lifecycle events after sequence
// afterSeq (0 replays everything). It returns the missed events, a
// channel of subsequent ones, and an unsubscribe function. The channel
// is closed after the terminal event (immediately when the job is
// already terminal). Slow consumers never block the manager: events
// beyond the channel buffer are dropped, and the SSE handler
// resubscribes after close so the terminal state (and anything dropped
// before it) is always delivered.
func (m *Manager) Subscribe(id string, afterSeq uint64) ([]jobEvent, <-chan jobEvent, func(), error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, nil, nil, ErrUnknownJob
	}
	var replay []jobEvent
	for _, ev := range j.events {
		if ev.seq > afterSeq {
			replay = append(replay, ev)
		}
	}
	if j.state.Terminal() {
		ch := make(chan jobEvent)
		close(ch)
		return replay, ch, func() {}, nil
	}
	ch := make(chan jobEvent, 16)
	sub := j.nextSub
	j.nextSub++
	j.subs[sub] = ch
	cancel := func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		delete(j.subs, sub) // sends happen under mu, so no racing close
	}
	return replay, ch, cancel, nil
}

// notifyLocked records j's current status in its event history and fans
// it out to subscribers, closing every channel when the state is
// terminal. Callers hold m.mu.
func (m *Manager) notifyLocked(j *job) {
	ev := m.recordEventLocked(j, m.statusLocked(j, j.state.Terminal()))
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default: // slow consumer: drop; history replay covers the gap
		}
	}
	if j.state.Terminal() {
		for sub, ch := range j.subs {
			close(ch)
			delete(j.subs, sub)
		}
	}
}

// writeSSE emits one Server-Sent Event frame. data must not contain
// newlines (our payloads are single-line JSON).
func writeSSE(w io.Writer, event string, data []byte) error {
	_, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	return err
}

// writeSSEID emits one Server-Sent Event frame carrying an event id,
// the cursor browsers echo back in Last-Event-ID on reconnect.
func writeSSEID(w io.Writer, id, event string, data []byte) error {
	_, err := fmt.Fprintf(w, "id: %s\nevent: %s\ndata: %s\n\n", id, event, data)
	return err
}

// handleJobEvents streams a job's lifecycle over SSE: a status event
// per transition (id: the event sequence), then a final "done" event
// once the job is terminal. Last-Event-ID (or ?last_event_id=) resumes
// after the given sequence, replaying missed transitions from the
// job's event history.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.manager.jobVisibleAs(caller(r), id) {
		writeError(w, http.StatusNotFound, ErrUnknownJob)
		return
	}
	last := lastEventID(r)
	replay, ch, unsubscribe, err := s.manager.Subscribe(id, last)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	defer unsubscribe()
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("server: response writer cannot stream"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	lastState := JobState("")
	send := func(ev jobEvent) bool {
		blob, err := json.Marshal(ev.st)
		if err != nil {
			return false
		}
		if err := writeSSEID(w, strconv.FormatUint(ev.seq, 10), "status", blob); err != nil {
			return false
		}
		flusher.Flush()
		last = ev.seq
		lastState = ev.st.State
		return true
	}
	for _, ev := range replay {
		if !send(ev) {
			return
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-ch:
			if !open {
				// Closed on the terminal transition. Replay anything a
				// slow consumer dropped (including the terminal status
				// itself) from the history, then signal completion.
				if !lastState.Terminal() {
					if missed, _, unsub, err := s.manager.Subscribe(id, last); err == nil {
						unsub()
						for _, ev := range missed {
							if !send(ev) {
								return
							}
						}
					}
				}
				_ = writeSSE(w, "done", []byte("{}"))
				flusher.Flush()
				return
			}
			if ev.seq <= last {
				continue // already delivered via replay
			}
			if !send(ev) {
				return
			}
		}
	}
}
