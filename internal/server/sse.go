package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// Subscribe registers for a job's lifecycle events. It returns the
// current status snapshot, a channel of subsequent statuses, and an
// unsubscribe function. The channel is closed after the terminal event
// (immediately when the job is already terminal). Slow consumers never
// block the manager: events beyond the channel buffer are dropped, and
// the SSE handler re-reads the final status after close so the
// terminal state is always delivered.
func (m *Manager) Subscribe(id string) (JobStatus, <-chan JobStatus, func(), error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobStatus{}, nil, nil, ErrUnknownJob
	}
	snap := m.statusLocked(j, true)
	if j.state.Terminal() {
		ch := make(chan JobStatus)
		close(ch)
		return snap, ch, func() {}, nil
	}
	ch := make(chan JobStatus, 16)
	sub := j.nextSub
	j.nextSub++
	j.subs[sub] = ch
	cancel := func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		delete(j.subs, sub) // sends happen under mu, so no racing close
	}
	return snap, ch, cancel, nil
}

// notifyLocked fans j's current status out to its subscribers, closing
// every channel when the state is terminal. Callers hold m.mu.
func (m *Manager) notifyLocked(j *job) {
	st := m.statusLocked(j, j.state.Terminal())
	for _, ch := range j.subs {
		select {
		case ch <- st:
		default: // slow consumer: drop; the close below still signals
		}
	}
	if j.state.Terminal() {
		for sub, ch := range j.subs {
			close(ch)
			delete(j.subs, sub)
		}
	}
}

// writeSSE emits one Server-Sent Event frame. data must not contain
// newlines (our payloads are single-line JSON).
func writeSSE(w io.Writer, event string, data []byte) error {
	_, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	return err
}

// handleJobEvents streams a job's lifecycle over SSE: a status event
// per transition (the current state first), then a final "done" event
// once the job is terminal.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	snap, ch, unsubscribe, err := s.manager.Subscribe(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	defer unsubscribe()
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("server: response writer cannot stream"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	send := func(event string, v any) bool {
		blob, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if err := writeSSE(w, event, blob); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	if !send("status", snap) {
		return
	}
	last := snap.State
	for {
		select {
		case <-r.Context().Done():
			return
		case st, open := <-ch:
			if !open {
				// Channel closed on the terminal transition. If the
				// terminal status was dropped (slow consumer) re-read
				// and deliver the authoritative final state; when it
				// already went out, don't repeat the full-result frame.
				if !last.Terminal() {
					if final, err := s.manager.Job(snap.ID); err == nil {
						if !send("status", final) {
							return
						}
					}
				}
				_ = writeSSE(w, "done", []byte("{}"))
				flusher.Flush()
				return
			}
			if !send("status", st) {
				return
			}
			last = st.State
		}
	}
}
