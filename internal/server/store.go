package server

import (
	"container/list"
	"sync"

	"repro/internal/sim"
	"repro/internal/sweep"
)

// resultStore is the gateway's tiered result store: a bounded hot
// in-memory LRU in front of the persistent content-addressed
// sweep.Cache. Submission-path lookups (the operation every client of
// a busy daemon performs) hit the LRU first; misses fall through to
// the cache and promote the entry, so the working set of a campaign —
// typically a small, hot subset of a daemon's accumulated history —
// is served without touching the cold tier. Hit/miss/eviction
// counters surface on /metrics as the result_store block.
//
// The store only changes where reads are answered from; every write
// still lands in the sweep.Cache under the same content-address key,
// so cache files, sweep.Key semantics, and restart behavior are
// byte-identical with and without it.
type resultStore struct {
	cache *sweep.Cache // cold tier; never nil (cacheless managers have no store)

	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element

	hits      uint64 // hot-tier lookups answered from the LRU
	coldHits  uint64 // misses answered by the persistent cache (then promoted)
	misses    uint64 // lookups absent from both tiers
	evictions uint64 // hot entries displaced by promotion past capacity
}

// storeEntry is one hot-tier element.
type storeEntry struct {
	key string
	res sim.Result
}

// defaultHotResults sizes the hot tier when the config leaves it 0.
const defaultHotResults = 256

func newResultStore(cache *sweep.Cache, capacity int) *resultStore {
	if cache == nil {
		return nil
	}
	if capacity <= 0 {
		capacity = defaultHotResults
	}
	return &resultStore{
		cache:    cache,
		capacity: capacity,
		ll:       list.New(),
		items:    map[string]*list.Element{},
	}
}

// Lookup returns the stored result for key, hot tier first. All
// methods are nil-safe: a cacheless manager has no store and every
// lookup misses.
func (s *resultStore) Lookup(key string) (sim.Result, bool) {
	if s == nil {
		return sim.Result{}, false
	}
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		s.hits++
		s.ll.MoveToFront(el)
		res := el.Value.(*storeEntry).res
		s.mu.Unlock()
		return res, true
	}
	s.mu.Unlock()
	res, ok := s.cache.Lookup(key)
	s.mu.Lock()
	if ok {
		s.coldHits++
		s.promoteLocked(key, res)
	} else {
		s.misses++
	}
	s.mu.Unlock()
	return res, ok
}

// Put writes res through to the persistent cache and promotes it into
// the hot tier, so the just-finished flight's subscribers (and the
// resubmissions that immediately follow a campaign) are served hot.
func (s *resultStore) Put(key string, res sim.Result) error {
	if s == nil {
		return nil
	}
	if err := s.cache.PutKeyed(key, res); err != nil {
		return err
	}
	s.mu.Lock()
	s.promoteLocked(key, res)
	s.mu.Unlock()
	return nil
}

// promote inserts res into the hot tier without touching the cold
// tier — for results whose persistent write already happened elsewhere
// (the local execution path, where sweep.Run owns the cache write).
func (s *resultStore) promote(key string, res sim.Result) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.promoteLocked(key, res)
	s.mu.Unlock()
}

// promoteLocked inserts (or refreshes) key at the LRU front, evicting
// the coldest entry beyond capacity. Caller holds s.mu.
func (s *resultStore) promoteLocked(key string, res sim.Result) {
	if el, ok := s.items[key]; ok {
		el.Value.(*storeEntry).res = res
		s.ll.MoveToFront(el)
		return
	}
	s.items[key] = s.ll.PushFront(&storeEntry{key: key, res: res})
	for s.ll.Len() > s.capacity {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.items, oldest.Value.(*storeEntry).key)
		s.evictions++
	}
}

// StoreMetrics is the result_store block of /metrics: the tiered
// store's hot-tier occupancy and traffic split.
type StoreMetrics struct {
	HotEntries  int    `json:"hot_entries"`
	HotCapacity int    `json:"hot_capacity"`
	HotHits     uint64 `json:"hot_hits"`
	ColdHits    uint64 `json:"cold_hits"`
	Misses      uint64 `json:"misses"`
	Evictions   uint64 `json:"evictions"`
}

// metrics snapshots the store counters.
func (s *resultStore) metrics() *StoreMetrics {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return &StoreMetrics{
		HotEntries:  s.ll.Len(),
		HotCapacity: s.capacity,
		HotHits:     s.hits,
		ColdHits:    s.coldHits,
		Misses:      s.misses,
		Evictions:   s.evictions,
	}
}
