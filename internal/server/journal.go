package server

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
)

// jobJournal is the durable job index the manager keeps beside the
// result cache (<cache path>.jobs). The cache stores results by content
// address only; the journal remembers which job IDs resolved to which
// keys, so after a restart (or after retention pruning evicts the job
// table entry) GET /v1/analysis/{id} and the stream endpoint still
// resolve an old job ID to its cached report, the fleet /metrics
// aggregates are rebuilt from the cached reports, and freshly issued
// IDs never collide with journaled ones.
//
// All methods are safe on a nil receiver (a manager without a cache has
// no journal) and the file is written atomically (tmp + rename), so a
// crash mid-write leaves the previous generation intact.
type jobJournal struct {
	mu    sync.Mutex
	path  string
	limit int // entries retained, oldest dropped first (<=0: unbounded)
	byID  map[string]journalEntry
	order []string // IDs oldest-first

	// Degraded-mode state: after a disk write fails the journal flips to
	// memory-only — record keeps upserting the in-memory index (so ID
	// resolution and numbering stay correct for the life of the process)
	// and the disk is retried once per probeEvery window. The file is a
	// complete snapshot, so the first probe that lands restores every
	// entry accumulated while degraded.
	degraded   bool
	writeErrs  uint64
	restores   uint64
	lastProbe  time.Time
	probeEvery time.Duration // 0 = defaultStorageProbe
}

// defaultStorageProbe spaces restore probes while a journal or cache is
// degraded.
const defaultStorageProbe = time.Second

// journalEntry records one terminal job.
type journalEntry struct {
	ID         string    `json:"id"`
	Key        string    `json:"key,omitempty"` // content address of the config
	Label      string    `json:"label,omitempty"`
	Tenant     string    `json:"tenant,omitempty"` // owning tenant ("" in open mode)
	State      JobState  `json:"state"`
	Worker     string    `json:"worker,omitempty"` // "local", "cache", or a peer name
	FinishedAt time.Time `json:"finished_at"`
}

// journalFile is the on-disk format.
type journalFile struct {
	Version int            `json:"version"`
	Jobs    []journalEntry `json:"jobs"`
}

// openJournal loads the journal at path, starting empty when the file
// does not exist. A file that no longer parses is quarantined to
// path+".corrupt" — the bytes survive for inspection and the daemon
// keeps running — rather than aborting startup or being overwritten.
func openJournal(path string, limit int) *jobJournal {
	l := &jobJournal{path: path, limit: limit, byID: map[string]journalEntry{}}
	blob, err := os.ReadFile(path)
	if err != nil {
		return l
	}
	var f journalFile
	if err := json.Unmarshal(blob, &f); err != nil {
		_ = os.Rename(path, path+".corrupt")
		return l
	}
	for _, e := range f.Jobs {
		if e.ID == "" {
			continue
		}
		if _, dup := l.byID[e.ID]; !dup {
			l.order = append(l.order, e.ID)
		}
		l.byID[e.ID] = e
	}
	return l
}

// record upserts the entries and persists the journal. Entries beyond
// the retention limit are dropped oldest-first, mirroring the
// manager's job-table pruning.
func (l *jobJournal) record(entries ...journalEntry) {
	if l == nil || len(entries) == 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, e := range entries {
		if e.ID == "" {
			continue
		}
		if _, dup := l.byID[e.ID]; !dup {
			l.order = append(l.order, e.ID)
		}
		l.byID[e.ID] = e
	}
	if drop := len(l.order) - l.limit; l.limit > 0 && drop > 0 {
		for _, id := range l.order[:drop] {
			delete(l.byID, id)
		}
		l.order = append([]string(nil), l.order[drop:]...)
	}
	//lint:allow lockio l.mu is the journal's own serialization mutex, never held by request paths; the manager journals outside Manager.mu precisely so a slow disk stalls only the journal (see PR 7)
	l.writeLocked()
}

// writeLocked persists the current entries atomically. Write errors
// never fail the caller: the journal is an availability optimization,
// and a daemon on a full or read-only disk should keep serving rather
// than crash — it degrades to memory-only (health reports it, /readyz
// warns) and probes the disk once per probe window until a write lands.
func (l *jobJournal) writeLocked() {
	now := time.Now()
	if l.degraded && now.Sub(l.lastProbe) < l.probeInterval() {
		return // memory-only: skip the disk until the next probe window
	}
	f := journalFile{Version: 1, Jobs: make([]journalEntry, 0, len(l.order))}
	for _, id := range l.order {
		f.Jobs = append(f.Jobs, l.byID[id])
	}
	blob, err := json.Marshal(f)
	if err != nil {
		return
	}
	tmp := l.path + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		l.noteWriteErrorLocked(now)
		return
	}
	if err := os.Rename(tmp, l.path); err != nil {
		l.noteWriteErrorLocked(now)
		return
	}
	if l.degraded {
		l.degraded = false
		l.restores++
	}
}

// noteWriteErrorLocked records a failed disk write and (re)enters
// degraded memory-only mode. Caller holds l.mu.
func (l *jobJournal) noteWriteErrorLocked(now time.Time) {
	l.writeErrs++
	l.degraded = true
	l.lastProbe = now
}

// probeInterval returns the configured restore-probe spacing.
func (l *jobJournal) probeInterval() time.Duration {
	if l.probeEvery > 0 {
		return l.probeEvery
	}
	return defaultStorageProbe
}

// setStorageProbeInterval overrides how often a degraded journal probes
// the disk for recovery (default one second).
func (l *jobJournal) setStorageProbeInterval(d time.Duration) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if d < 0 {
		d = 0
	}
	l.probeEvery = d
}

// health reports the journal's degraded-mode state. Nil-safe: a
// journal-less manager reports healthy.
func (l *jobJournal) health() (degraded bool, writeErrs, restores uint64) {
	if l == nil {
		return false, 0, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.degraded, l.writeErrs, l.restores
}

// lookup returns the journaled entry for a job ID.
func (l *jobJournal) lookup(id string) (journalEntry, bool) {
	if l == nil {
		return journalEntry{}, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.byID[id]
	return e, ok
}

// entries returns a snapshot of every journaled entry, oldest first.
func (l *jobJournal) entries() []journalEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]journalEntry, 0, len(l.order))
	for _, id := range l.order {
		out = append(out, l.byID[id])
	}
	return out
}

// maxID returns the highest numeric job ID in the journal, so a
// restarted manager resumes numbering above every ID it ever persisted
// instead of reissuing them.
func (l *jobJournal) maxID() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var max uint64
	for id := range l.byID {
		var n uint64
		if _, err := fmt.Sscanf(id, "job-%d", &n); err == nil && n > max {
			max = n
		}
	}
	return max
}
