package server

import (
	"sort"

	"repro/internal/analysis"
	"repro/internal/prof"
)

// counters aggregates the manager's operational numbers. All fields
// are guarded by Manager.mu.
type counters struct {
	submitted   uint64
	completed   uint64
	failed      uint64
	canceled    uint64
	deduped     uint64 // jobs attached to an in-flight identical config
	cacheHits   uint64 // jobs/flights served from the persistent cache
	simulations uint64 // fresh simulations executed on this machine
	remoteSims  uint64 // flights executed on peer daemons (-peers)
	requeued    uint64 // flights handed back after a peer became unreachable
	running     int    // flights currently simulating

	// Resilience counters (PR 10): hedged straggler flights, queue-side
	// deadline enforcement, and poison-job quarantine.
	hedgesLaunched  uint64 // local backup executions started for straggler remote flights
	hedgesWon       uint64 // flights the backup finished first (or salvaged after peer loss)
	quarantined     uint64 // flights failed after killing PoisonThreshold successive workers
	deadlineExpired uint64 // queued jobs failed because their deadline passed
	deadlineShed    uint64 // submissions rejected at admission as deadline-unmeetable

	// Fleet-wide perf-analyzer aggregates: the Totals of every completed
	// flight whose config enabled analysis, plus how many such reports
	// contributed. Event-exact sums (they bypass the bounded epoch
	// rings), so the /metrics rates stay correct however long the runs.
	analysisReports uint64
	analysisTotals  analysis.Totals

	// perWorker breaks flight resolution down by executing slot:
	// "local", "cache" (journal-replayed submission hits), or a peer
	// name. Phase attribution aggregates the sampled PhaseProfile of
	// every report the worker produced.
	perWorker map[string]*workerStats
}

// workerStats is one execution slot's share of the fleet aggregates.
type workerStats struct {
	flights    uint64
	cacheHits  uint64
	reports    uint64 // completed flights carrying an analysis report
	phaseCalls [prof.NumPhases]uint64
	phaseCells [prof.NumPhases]analysis.PhaseCell
}

// worker returns (allocating on first use) the stats bucket for name.
func (c *counters) worker(name string) *workerStats {
	if c.perWorker == nil {
		c.perWorker = map[string]*workerStats{}
	}
	ws := c.perWorker[name]
	if ws == nil {
		ws = &workerStats{}
		c.perWorker[name] = ws
	}
	return ws
}

// accumulate folds one report's analysis (and, when profiled, phase
// attribution) into the worker's share.
func (ws *workerStats) accumulate(rep *analysis.Report) {
	if rep == nil {
		return
	}
	ws.reports++
	if rep.Phases == nil {
		return
	}
	for p := 0; p < int(prof.NumPhases); p++ {
		ws.phaseCalls[p] += rep.Phases.Calls[p]
		ws.phaseCells[p].Samples += rep.Phases.Totals[p].Samples
		ws.phaseCells[p].Ns += rep.Phases.Totals[p].Ns
	}
}

// AnalysisMetrics is the fleet-wide perf-analyzer block of /metrics,
// present once at least one analysis-enabled flight completed.
type AnalysisMetrics struct {
	// Reports counts completed flights that carried an analysis report.
	Reports uint64 `json:"reports"`

	RowHits      uint64  `json:"row_hits"`
	RowMisses    uint64  `json:"row_misses"`
	RowConflicts uint64  `json:"row_conflicts"`
	RowHitRate   float64 `json:"row_hit_rate"`

	CCLookups uint64  `json:"cc_lookups"`
	CCHits    uint64  `json:"cc_hits"`
	CCHitRate float64 `json:"cc_hit_rate"`

	FAWStallCycles uint64 `json:"faw_stall_cycles"`
	QueueSamples   uint64 `json:"queue_samples"`
	QueueDepthSum  uint64 `json:"queue_depth_sum"`
}

// Metrics is the /metrics snapshot.
type Metrics struct {
	QueueDepth    int  `json:"queue_depth"`
	QueueCapacity int  `json:"queue_capacity"`
	Running       int  `json:"running"`
	Draining      bool `json:"draining"`

	JobsSubmitted uint64 `json:"jobs_submitted"`
	JobsCompleted uint64 `json:"jobs_completed"`
	JobsFailed    uint64 `json:"jobs_failed"`
	JobsCanceled  uint64 `json:"jobs_canceled"`
	JobsDeduped   uint64 `json:"jobs_deduped"`
	JobsRetained  int    `json:"jobs_retained"` // still queryable (bounded by -retain)

	SimulationsRun uint64 `json:"simulations_run"`
	// RemoteSimulations counts flights executed on peer daemons
	// (-peers); JobsRequeued counts flights handed back to the queue
	// after their peer became unreachable mid-run.
	RemoteSimulations uint64 `json:"remote_simulations,omitempty"`
	JobsRequeued      uint64 `json:"jobs_requeued,omitempty"`
	CacheHits         uint64 `json:"cache_hits"`
	// CacheHitRate is cache-satisfied resolutions over all resolutions:
	// cache_hits / (cache_hits + simulations_run + remote_simulations).
	// A resolution is a submission answered straight from the cache or a
	// flight executed — locally (simulations_run) or on a peer daemon
	// (remote_simulations); deduped jobs join an existing flight's
	// resolution and count in no term.
	CacheHitRate float64 `json:"cache_hit_rate"`
	CacheEntries int     `json:"cache_entries"`

	// Analysis aggregates the perf-analyzer totals of every completed
	// analysis-enabled flight; absent until one completes.
	Analysis *AnalysisMetrics `json:"analysis,omitempty"`

	// Workers breaks flight resolution down per execution slot, with
	// per-phase wall-clock attribution when the configs enabled
	// PhaseProfile; absent until a flight completes (or is replayed
	// from the journal at startup).
	Workers []WorkerMetrics `json:"workers,omitempty"`

	// Tenants breaks jobs and quota state down per tenant: every
	// registered tenant plus any tenant that has submitted. Absent in
	// open mode with no attributed submissions.
	Tenants []TenantMetrics `json:"tenants,omitempty"`

	// ResultStore reports the tiered result store's hot-tier traffic;
	// absent on cacheless daemons.
	ResultStore *StoreMetrics `json:"result_store,omitempty"`

	// Resilience block (PR 10). HedgesLaunched/HedgesWon count straggler
	// flights raced against a local backup; hedges never double-count
	// SimulationsRun because only the winning attempt finishes the
	// flight.
	HedgesLaunched uint64 `json:"hedges_launched,omitempty"`
	HedgesWon      uint64 `json:"hedges_won,omitempty"`
	// PoisonQuarantined counts flights failed after killing
	// PoisonThreshold successive workers; resubmissions fail fast.
	PoisonQuarantined uint64 `json:"poison_quarantined,omitempty"`
	// DeadlineExpired counts queued jobs failed fast after their
	// propagated deadline passed; DeadlineShed counts submissions
	// rejected at admission because the estimated queue drain already
	// exceeded their deadline.
	DeadlineExpired uint64 `json:"deadline_expired,omitempty"`
	DeadlineShed    uint64 `json:"deadline_shed,omitempty"`

	// StorageDegraded is true while any durable tier (result cache, job
	// journal) runs memory-only after disk write failures; Storage
	// carries the per-tier detail. Absent on cacheless daemons.
	StorageDegraded bool            `json:"storage_degraded,omitempty"`
	Storage         *StorageMetrics `json:"storage,omitempty"`
}

// StorageMetrics is the degraded-mode storage block of /metrics: the
// per-tier memory-only state, how many disk writes failed, and how many
// times a probe restored write-through.
type StorageMetrics struct {
	CacheDegraded    bool   `json:"cache_degraded"`
	CacheWriteErrors uint64 `json:"cache_write_errors,omitempty"`
	CacheRestores    uint64 `json:"cache_restores,omitempty"`

	JournalDegraded    bool   `json:"journal_degraded"`
	JournalWriteErrors uint64 `json:"journal_write_errors,omitempty"`
	JournalRestores    uint64 `json:"journal_restores,omitempty"`
}

// TenantMetrics is one tenant's block of /metrics: live gauges (queued,
// running, token bucket) plus lifetime counters.
type TenantMetrics struct {
	Name    string `json:"name"`
	Queued  int    `json:"queued"`  // flights waiting in the tenant's subqueue
	Running int    `json:"running"` // flights the scheduler picked and not yet finished

	Submitted     uint64 `json:"submitted"`
	Completed     uint64 `json:"completed"`
	Failed        uint64 `json:"failed,omitempty"`
	Canceled      uint64 `json:"canceled,omitempty"`
	Deduped       uint64 `json:"deduped,omitempty"`
	CacheHits     uint64 `json:"cache_hits,omitempty"`
	Preempted     uint64 `json:"preempted,omitempty"`
	QuotaRejected uint64 `json:"quota_rejected,omitempty"`
	RateLimited   uint64 `json:"rate_limited,omitempty"`

	// RateTokens is the live token-bucket level, present only for
	// rate-limited tenants. Never negative.
	RateTokens *float64 `json:"rate_tokens,omitempty"`
}

// PhaseMetrics is one profiled phase's share of a worker's wall clock.
type PhaseMetrics struct {
	Calls   uint64  `json:"calls"`
	Samples uint64  `json:"samples"`
	AvgNs   float64 `json:"avg_ns"`
	// EstimatedMs extrapolates the sampled average over every call.
	EstimatedMs float64 `json:"estimated_ms"`
}

// WorkerMetrics is the per-worker block of /metrics.
type WorkerMetrics struct {
	Name            string                  `json:"name"`
	Flights         uint64                  `json:"flights"`
	CacheHits       uint64                  `json:"cache_hits,omitempty"`
	AnalysisReports uint64                  `json:"analysis_reports,omitempty"`
	Phases          map[string]PhaseMetrics `json:"phases,omitempty"`
}

// Metrics returns a consistent snapshot of the manager's counters.
func (m *Manager) Metrics() Metrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Metrics{
		QueueDepth:        m.sched.total,
		QueueCapacity:     m.sched.capacity,
		Running:           m.counters.running,
		Draining:          m.draining,
		JobsSubmitted:     m.counters.submitted,
		JobsCompleted:     m.counters.completed,
		JobsFailed:        m.counters.failed,
		JobsCanceled:      m.counters.canceled,
		JobsDeduped:       m.counters.deduped,
		JobsRetained:      len(m.jobs),
		SimulationsRun:    m.counters.simulations,
		RemoteSimulations: m.counters.remoteSims,
		JobsRequeued:      m.counters.requeued,
		CacheHits:         m.counters.cacheHits,
		HedgesLaunched:    m.counters.hedgesLaunched,
		HedgesWon:         m.counters.hedgesWon,
		PoisonQuarantined: m.counters.quarantined,
		DeadlineExpired:   m.counters.deadlineExpired,
		DeadlineShed:      m.counters.deadlineShed,
	}
	if total := s.CacheHits + s.SimulationsRun + s.RemoteSimulations; total > 0 {
		s.CacheHitRate = float64(s.CacheHits) / float64(total)
	}
	if m.cache != nil {
		s.CacheEntries = m.cache.Len()
	}
	if m.counters.analysisReports > 0 {
		tot := m.counters.analysisTotals
		s.Analysis = &AnalysisMetrics{
			Reports:        m.counters.analysisReports,
			RowHits:        tot.RowHits,
			RowMisses:      tot.RowMisses,
			RowConflicts:   tot.RowConflicts,
			RowHitRate:     tot.RowHitRate(),
			CCLookups:      tot.CCLookups,
			CCHits:         tot.CCHits,
			CCHitRate:      tot.CCHitRate(),
			FAWStallCycles: tot.FAWStallCycles,
			QueueSamples:   tot.QueueSamples,
			QueueDepthSum:  tot.QueueDepthSum,
		}
	}
	if len(m.counters.perWorker) > 0 {
		names := make([]string, 0, len(m.counters.perWorker))
		for name := range m.counters.perWorker {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			ws := m.counters.perWorker[name]
			wm := WorkerMetrics{
				Name:            name,
				Flights:         ws.flights,
				CacheHits:       ws.cacheHits,
				AnalysisReports: ws.reports,
			}
			for p := 0; p < int(prof.NumPhases); p++ {
				cell := ws.phaseCells[p]
				if ws.phaseCalls[p] == 0 && cell.Samples == 0 {
					continue
				}
				pm := PhaseMetrics{Calls: ws.phaseCalls[p], Samples: cell.Samples}
				if cell.Samples > 0 {
					pm.AvgNs = float64(cell.Ns) / float64(cell.Samples)
					pm.EstimatedMs = pm.AvgNs * float64(ws.phaseCalls[p]) / 1e6
				}
				if wm.Phases == nil {
					wm.Phases = map[string]PhaseMetrics{}
				}
				wm.Phases[prof.Phase(p).String()] = pm
			}
			s.Workers = append(s.Workers, wm)
		}
	}
	// Per-tenant blocks: the union of registered tenants and tenants
	// that have submitted (gateway-forwarded names may not be registered).
	tset := map[string]bool{}
	for _, name := range m.registry.TenantNames() {
		tset[name] = true
	}
	for name := range m.tstats {
		tset[name] = true
	}
	if len(tset) > 0 {
		names := make([]string, 0, len(tset))
		for name := range tset {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			tc := m.tstats[name]
			if tc == nil {
				tc = &tenantCounters{}
			}
			tm := TenantMetrics{
				Name:          name,
				Queued:        m.sched.queuedFor(name),
				Running:       m.sched.runningFor(name),
				Submitted:     tc.submitted,
				Completed:     tc.completed,
				Failed:        tc.failed,
				Canceled:      tc.canceled,
				Deduped:       tc.deduped,
				CacheHits:     tc.cacheHits,
				Preempted:     tc.preempted,
				QuotaRejected: tc.quotaRejected,
			}
			if tokens, limited, ok := m.registry.bucketState(name); ok {
				tm.RateLimited = limited
				if t := m.registry.Lookup(name); t.RatePerSec > 0 {
					lvl := tokens
					tm.RateTokens = &lvl
				}
			}
			s.Tenants = append(s.Tenants, tm)
		}
	}
	s.ResultStore = m.store.metrics()
	if m.cache != nil {
		sm := &StorageMetrics{}
		sm.CacheDegraded, sm.CacheWriteErrors, sm.CacheRestores = m.cache.StorageHealth()
		sm.JournalDegraded, sm.JournalWriteErrors, sm.JournalRestores = m.journal.health()
		s.Storage = sm
		s.StorageDegraded = sm.CacheDegraded || sm.JournalDegraded
	}
	return s
}

// accumulateAnalysisLocked folds one completed flight's analysis totals
// into the fleet aggregates. Caller holds m.mu.
func (c *counters) accumulateAnalysisLocked(t analysis.Totals) {
	c.analysisReports++
	a := &c.analysisTotals
	a.ACT += t.ACT
	a.FastACT += t.FastACT
	a.PRE += t.PRE
	a.RD += t.RD
	a.WR += t.WR
	a.REF += t.REF
	a.FAWStallCycles += t.FAWStallCycles
	a.RowHits += t.RowHits
	a.RowMisses += t.RowMisses
	a.RowConflicts += t.RowConflicts
	a.CCLookups += t.CCLookups
	a.CCHits += t.CCHits
	a.CCInserts += t.CCInserts
	a.CCEvictions += t.CCEvictions
	a.CCExpiries += t.CCExpiries
	a.QueueSamples += t.QueueSamples
	a.QueueDepthSum += t.QueueDepthSum
	if t.QueueDepthPeak > a.QueueDepthPeak {
		a.QueueDepthPeak = t.QueueDepthPeak
	}
}
