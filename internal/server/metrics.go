package server

// counters aggregates the manager's operational numbers. All fields
// are guarded by Manager.mu.
type counters struct {
	submitted   uint64
	completed   uint64
	failed      uint64
	canceled    uint64
	deduped     uint64 // jobs attached to an in-flight identical config
	cacheHits   uint64 // jobs/flights served from the persistent cache
	simulations uint64 // fresh simulations executed on this machine
	remoteSims  uint64 // flights executed on peer daemons (-peers)
	requeued    uint64 // flights handed back after a peer became unreachable
	running     int    // flights currently simulating
}

// Metrics is the /metrics snapshot.
type Metrics struct {
	QueueDepth    int  `json:"queue_depth"`
	QueueCapacity int  `json:"queue_capacity"`
	Running       int  `json:"running"`
	Draining      bool `json:"draining"`

	JobsSubmitted uint64 `json:"jobs_submitted"`
	JobsCompleted uint64 `json:"jobs_completed"`
	JobsFailed    uint64 `json:"jobs_failed"`
	JobsCanceled  uint64 `json:"jobs_canceled"`
	JobsDeduped   uint64 `json:"jobs_deduped"`
	JobsRetained  int    `json:"jobs_retained"` // still queryable (bounded by -retain)

	SimulationsRun uint64 `json:"simulations_run"`
	// RemoteSimulations counts flights executed on peer daemons
	// (-peers); JobsRequeued counts flights handed back to the queue
	// after their peer became unreachable mid-run.
	RemoteSimulations uint64 `json:"remote_simulations,omitempty"`
	JobsRequeued      uint64 `json:"jobs_requeued,omitempty"`
	CacheHits         uint64 `json:"cache_hits"`
	// CacheHitRate is cache-satisfied resolutions over all resolutions:
	// cache_hits / (cache_hits + simulations_run). A resolution is a
	// submission answered straight from the cache or a flight executed;
	// deduped jobs join an existing flight's resolution and count in
	// neither term.
	CacheHitRate float64 `json:"cache_hit_rate"`
	CacheEntries int     `json:"cache_entries"`
}

// Metrics returns a consistent snapshot of the manager's counters.
func (m *Manager) Metrics() Metrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Metrics{
		QueueDepth:        len(m.queue),
		QueueCapacity:     cap(m.queue),
		Running:           m.counters.running,
		Draining:          m.draining,
		JobsSubmitted:     m.counters.submitted,
		JobsCompleted:     m.counters.completed,
		JobsFailed:        m.counters.failed,
		JobsCanceled:      m.counters.canceled,
		JobsDeduped:       m.counters.deduped,
		JobsRetained:      len(m.jobs),
		SimulationsRun:    m.counters.simulations,
		RemoteSimulations: m.counters.remoteSims,
		JobsRequeued:      m.counters.requeued,
		CacheHits:         m.counters.cacheHits,
	}
	if total := s.CacheHits + s.SimulationsRun + s.RemoteSimulations; total > 0 {
		s.CacheHitRate = float64(s.CacheHits) / float64(total)
	}
	if m.cache != nil {
		s.CacheEntries = m.cache.Len()
	}
	return s
}
