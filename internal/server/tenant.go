package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

// Gateway errors, mapped to HTTP statuses by the handler layer.
var (
	// ErrUnauthenticated rejects requests without a valid bearer token
	// while a tenant registry is configured (HTTP 401).
	ErrUnauthenticated = errors.New("server: missing or unknown bearer token")
	// ErrForbidden rejects requests whose token maps to a disabled
	// tenant, or actions on another tenant's jobs (HTTP 403).
	ErrForbidden = errors.New("server: forbidden")
)

// QuotaError rejects a submission that would push a tenant past one of
// its quotas, or one arriving faster than its token bucket refills
// (HTTP 429). RetryAfter, when positive, is surfaced in the
// Retry-After response header so well-behaved clients back off for
// exactly as long as the bucket needs.
type QuotaError struct {
	Tenant     string
	Quota      string // "rate", "queued", or "queue" (shared capacity)
	Limit      int
	RetryAfter time.Duration
}

// Error implements error.
func (e *QuotaError) Error() string {
	return fmt.Sprintf("server: tenant %s over its %s quota (limit %d)", e.Tenant, e.Quota, e.Limit)
}

// Tenant is one principal of the gateway: an identity (bearer token),
// its fair-share parameters, and its quotas. The zero value of every
// quota field means "unlimited", so a registry listing only names and
// tokens authenticates without constraining anyone.
type Tenant struct {
	// Name identifies the tenant in job attribution, metrics, and the
	// journal. Required, unique.
	Name string `json:"name"`
	// Token is the bearer credential (Authorization: Bearer <token>).
	// A tenant without a token cannot authenticate directly; it can
	// still be attributed jobs by a gateway principal (fleet fronts).
	Token string `json:"token,omitempty"`
	// Disabled rejects the tenant's requests with 403 while keeping its
	// history (metrics, journal attribution) intact.
	Disabled bool `json:"disabled,omitempty"`
	// Weight is the tenant's fair share of the staging loop relative to
	// other tenants in the same priority class (<= 0 means 1): a
	// weight-2 tenant is picked twice as often as a weight-1 one while
	// both have queued work.
	Weight int `json:"weight,omitempty"`
	// Priority is the tenant's scheduling class (default 0). Queued
	// work of a strictly higher class is always picked first, and on a
	// full queue a higher-class submission may preempt queued — never
	// running — lower-class flights.
	Priority int `json:"priority,omitempty"`
	// MaxQueued bounds how many of the tenant's jobs may wait in the
	// queued state at once (0 = unlimited).
	MaxQueued int `json:"max_queued,omitempty"`
	// MaxConcurrent bounds how many of the tenant's simulations may run
	// at once (0 = unlimited). Flights beyond it stay queued until one
	// finishes, without blocking other tenants' work.
	MaxConcurrent int `json:"max_concurrent,omitempty"`
	// RatePerSec refills the tenant's submission token bucket (0 =
	// unlimited). Each POST /v1/jobs costs one token; an empty bucket
	// answers 429 with Retry-After.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Burst is the bucket capacity (<= 0 means max(1, RatePerSec)).
	Burst int `json:"burst,omitempty"`
	// Gateway marks fleet-internal service accounts (a ccsimd front
	// forwarding to peers): their submissions may attribute jobs to
	// other tenants via JobSpec.Tenant, so fleet-wide quotas and dedup
	// follow the original caller instead of the forwarding daemon.
	Gateway bool `json:"gateway,omitempty"`
}

// weight returns the effective fair-share weight.
func (t Tenant) weight() int {
	if t.Weight <= 0 {
		return 1
	}
	return t.Weight
}

// burst returns the effective token-bucket capacity.
func (t Tenant) burst() float64 {
	if t.Burst > 0 {
		return float64(t.Burst)
	}
	if t.RatePerSec > 1 {
		return t.RatePerSec
	}
	return 1
}

// tenantState is one tenant's registry entry plus its live token
// bucket. Guarded by Registry.mu.
type tenantState struct {
	Tenant
	tokens      float64   // current bucket level, always in [0, burst]
	refilled    time.Time // last refill instant
	rateLimited uint64    // submissions rejected by the bucket
}

// Registry is the gateway's tenant table: token -> tenant for
// authentication, name -> quotas for scheduling and accounting. All
// methods are safe on a nil receiver — a nil registry is "open mode",
// where every request is anonymous, unlimited, and scheduled exactly
// like the pre-gateway daemon.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]*tenantState
	byToken map[string]*tenantState
	now     func() time.Time // test hook; time.Now when nil
}

// registryFile is the on-disk format of -tenants.
type registryFile struct {
	Tenants []Tenant `json:"tenants"`
}

// NewRegistry builds a registry from explicit tenant entries,
// rejecting duplicate names or tokens.
func NewRegistry(tenants []Tenant) (*Registry, error) {
	r := &Registry{byName: map[string]*tenantState{}, byToken: map[string]*tenantState{}}
	for i, t := range tenants {
		if t.Name == "" {
			return nil, fmt.Errorf("server: tenant %d has no name", i)
		}
		if _, dup := r.byName[t.Name]; dup {
			return nil, fmt.Errorf("server: duplicate tenant %q", t.Name)
		}
		st := &tenantState{Tenant: t, tokens: t.burst()}
		r.byName[t.Name] = st
		if t.Token != "" {
			if _, dup := r.byToken[t.Token]; dup {
				return nil, fmt.Errorf("server: tenant %q reuses another tenant's token", t.Name)
			}
			r.byToken[t.Token] = st
		}
	}
	return r, nil
}

// LoadRegistry reads a tenant registry: a JSON file
// ({"tenants":[{"name":...,"token":...,...}]}, path may be empty) plus
// env-style "name=token" pairs (comma-separated) that add tenants or
// override file tokens — the deployment pattern where quotas live in a
// checked-in file and credentials in the environment. Both empty
// returns (nil, nil): open mode.
func LoadRegistry(path, env string) (*Registry, error) {
	var tenants []Tenant
	if path != "" {
		blob, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("server: reading tenant registry: %w", err)
		}
		var f registryFile
		dec := json.NewDecoder(strings.NewReader(string(blob)))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&f); err != nil {
			return nil, fmt.Errorf("server: tenant registry %s: %w", path, err)
		}
		tenants = f.Tenants
	}
	for _, pair := range strings.Split(env, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, token, ok := strings.Cut(pair, "=")
		if !ok || name == "" || token == "" {
			return nil, fmt.Errorf("server: bad tenant env entry %q, want name=token", pair)
		}
		found := false
		for i := range tenants {
			if tenants[i].Name == name {
				tenants[i].Token = token
				found = true
				break
			}
		}
		if !found {
			tenants = append(tenants, Tenant{Name: name, Token: token})
		}
	}
	if len(tenants) == 0 {
		return nil, nil
	}
	return NewRegistry(tenants)
}

// Authenticate resolves an Authorization header to a tenant.
// ErrUnauthenticated covers a missing, malformed, or unknown token;
// ErrForbidden a disabled tenant. Nil registry: open mode, anonymous
// tenant, no error.
func (r *Registry) Authenticate(authorization string) (Tenant, error) {
	if r == nil {
		return Tenant{}, nil
	}
	token, ok := strings.CutPrefix(authorization, "Bearer ")
	if !ok || token == "" {
		return Tenant{}, ErrUnauthenticated
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.byToken[token]
	if !ok {
		return Tenant{}, ErrUnauthenticated
	}
	if st.Disabled {
		return Tenant{}, fmt.Errorf("tenant %s is disabled: %w", st.Name, ErrForbidden)
	}
	return st.Tenant, nil
}

// Lookup returns the tenant named name. Unknown names (and any name on
// a nil registry) return a zero-quota default so forwarded attributions
// from a fleet front never fail, only default to unlimited.
func (r *Registry) Lookup(name string) Tenant {
	if r == nil {
		return Tenant{Name: name}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if st, ok := r.byName[name]; ok {
		return st.Tenant
	}
	return Tenant{Name: name}
}

// AllowSubmit spends one submission token from name's bucket. It
// returns ok=true when the submission may proceed; otherwise the
// duration after which one token will be available. The bucket level
// never goes negative and never exceeds the burst capacity. Anonymous
// tenants, unknown names, rate-less tenants, and nil registries are
// always allowed.
func (r *Registry) AllowSubmit(name string) (ok bool, retryAfter time.Duration) {
	if r == nil {
		return true, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	st, found := r.byName[name]
	if !found || st.RatePerSec <= 0 {
		return true, 0
	}
	now := time.Now()
	if r.now != nil {
		now = r.now()
	}
	if !st.refilled.IsZero() {
		st.tokens += now.Sub(st.refilled).Seconds() * st.RatePerSec
		if max := st.burst(); st.tokens > max {
			st.tokens = max
		}
	}
	st.refilled = now
	if st.tokens >= 1 {
		st.tokens--
		return true, 0
	}
	st.rateLimited++
	need := (1 - st.tokens) / st.RatePerSec
	return false, time.Duration(need * float64(time.Second))
}

// TenantNames returns every registered tenant name, sorted.
func (r *Registry) TenantNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.byName))
	for name := range r.byName {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// bucketState reports name's live token-bucket level and how many
// submissions the bucket has rejected, for /metrics.
func (r *Registry) bucketState(name string) (tokens float64, limited uint64, limitedSet bool) {
	if r == nil {
		return 0, 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.byName[name]
	if !ok {
		return 0, 0, false
	}
	if st.RatePerSec <= 0 {
		return 0, st.rateLimited, true
	}
	tokens = st.tokens
	if !st.refilled.IsZero() {
		now := time.Now()
		if r.now != nil {
			now = r.now()
		}
		tokens += now.Sub(st.refilled).Seconds() * st.RatePerSec
		if max := st.burst(); tokens > max {
			tokens = max
		}
	}
	return tokens, st.rateLimited, true
}
