package server

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/sweep"
)

func TestRegistryLoadFileAndEnv(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tenants.json")
	blob := `{"tenants":[
		{"name":"alice","token":"tok-a","weight":2,"max_queued":4},
		{"name":"bob","rate_per_sec":5,"burst":2}
	]}`
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	// Env pairs add tenants and override file tokens: the
	// quotas-in-file, credentials-in-env deployment split.
	r, err := LoadRegistry(path, "bob=tok-b, carol=tok-c")
	if err != nil {
		t.Fatalf("LoadRegistry: %v", err)
	}
	if got := r.TenantNames(); len(got) != 3 {
		t.Fatalf("tenant names = %v, want 3", got)
	}
	a, err := r.Authenticate("Bearer tok-a")
	if err != nil || a.Name != "alice" || a.Weight != 2 || a.MaxQueued != 4 {
		t.Fatalf("alice auth = %+v, %v", a, err)
	}
	b, err := r.Authenticate("Bearer tok-b")
	if err != nil || b.Name != "bob" || b.RatePerSec != 5 {
		t.Fatalf("bob auth (env token over file quota) = %+v, %v", b, err)
	}
	if c, err := r.Authenticate("Bearer tok-c"); err != nil || c.Name != "carol" {
		t.Fatalf("carol auth (env-only tenant) = %+v, %v", c, err)
	}
}

func TestRegistryLoadErrors(t *testing.T) {
	if _, err := LoadRegistry("", "novalue"); err == nil {
		t.Fatal("malformed env pair accepted")
	}
	if r, err := LoadRegistry("", ""); err != nil || r != nil {
		t.Fatalf("empty config should be open mode (nil, nil); got %v, %v", r, err)
	}
	if _, err := NewRegistry([]Tenant{{Name: "a", Token: "t"}, {Name: "a", Token: "u"}}); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := NewRegistry([]Tenant{{Name: "a", Token: "t"}, {Name: "b", Token: "t"}}); err == nil {
		t.Fatal("duplicate token accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"tenants":[{"name":"a","unknown_field":1}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRegistry(bad, ""); err == nil {
		t.Fatal("unknown registry field accepted (typo-squatted quota keys must fail loudly)")
	}
}

func TestRegistryAuthenticate(t *testing.T) {
	r, err := NewRegistry([]Tenant{
		{Name: "alice", Token: "tok-a"},
		{Name: "mallory", Token: "tok-m", Disabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, hdr := range []string{"", "Bearer ", "Bearer wrong", "Basic tok-a", "tok-a"} {
		if _, err := r.Authenticate(hdr); !errors.Is(err, ErrUnauthenticated) {
			t.Fatalf("Authenticate(%q) = %v, want ErrUnauthenticated", hdr, err)
		}
	}
	if _, err := r.Authenticate("Bearer tok-m"); !errors.Is(err, ErrForbidden) {
		t.Fatalf("disabled tenant = %v, want ErrForbidden", err)
	}
	// Nil registry: open mode, everyone is the anonymous tenant.
	var open *Registry
	if tn, err := open.Authenticate(""); err != nil || tn.Name != "" {
		t.Fatalf("open mode auth = %+v, %v", tn, err)
	}
}

func TestTokenBucket(t *testing.T) {
	r, err := NewRegistry([]Tenant{{Name: "bob", Token: "t", RatePerSec: 2, Burst: 2}})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1000, 0)
	r.now = func() time.Time { return now }

	// Burst drains first, then the bucket rejects with the refill wait.
	for i := 0; i < 2; i++ {
		if ok, _ := r.AllowSubmit("bob"); !ok {
			t.Fatalf("burst submission %d rejected", i)
		}
	}
	ok, retry := r.AllowSubmit("bob")
	if ok {
		t.Fatal("empty bucket admitted a submission")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retry-after = %v, want (0, 500ms] at 2/s", retry)
	}
	if tokens, limited, present := r.bucketState("bob"); !present || limited != 1 || tokens < 0 {
		t.Fatalf("bucket state = %v tokens, %d limited, %v", tokens, limited, present)
	}

	// Refill admits again; the level is clamped at burst, never beyond.
	now = now.Add(10 * time.Second)
	if ok, _ := r.AllowSubmit("bob"); !ok {
		t.Fatal("refilled bucket rejected a submission")
	}
	if tokens, _, _ := r.bucketState("bob"); tokens < 0 || tokens > 2 {
		t.Fatalf("bucket level %v outside [0, burst]", tokens)
	}

	// Rate-less and unknown tenants are never limited.
	for i := 0; i < 100; i++ {
		if ok, _ := r.AllowSubmit("nobody"); !ok {
			t.Fatal("unknown tenant rate-limited")
		}
	}
	var open *Registry
	if ok, _ := open.AllowSubmit("anyone"); !ok {
		t.Fatal("open mode rate-limited")
	}
}

func TestTenantDefaults(t *testing.T) {
	if (Tenant{}).weight() != 1 || (Tenant{Weight: -3}).weight() != 1 || (Tenant{Weight: 4}).weight() != 4 {
		t.Fatal("weight defaulting broken")
	}
	if (Tenant{}).burst() != 1 {
		t.Fatalf("zero tenant burst = %v, want 1", (Tenant{}).burst())
	}
	if (Tenant{RatePerSec: 8}).burst() != 8 {
		t.Fatalf("rate-derived burst = %v, want 8", (Tenant{RatePerSec: 8}).burst())
	}
	if (Tenant{RatePerSec: 8, Burst: 3}).burst() != 3 {
		t.Fatalf("explicit burst = %v, want 3", (Tenant{RatePerSec: 8, Burst: 3}).burst())
	}
}

func TestResultStoreLRU(t *testing.T) {
	dir := t.TempDir()
	cache, err := sweep.OpenCache(filepath.Join(dir, "results.json"))
	if err != nil {
		t.Fatal(err)
	}
	s := newResultStore(cache, 2)

	res := func(i int) sim.Result {
		var r sim.Result
		r.CPUCycles = uint64(i + 1)
		return r
	}
	for i := 0; i < 3; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), res(i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	m := s.metrics()
	if m.HotEntries != 2 || m.Evictions != 1 {
		t.Fatalf("after 3 puts into capacity 2: %+v", m)
	}

	// k0 was evicted from the hot tier but persists in the cache: a
	// lookup is a cold hit that re-promotes it (evicting k1, the LRU).
	if r, ok := s.Lookup("k0"); !ok || r.CPUCycles != 1 {
		t.Fatalf("k0 lookup = %+v, %v", r, ok)
	}
	m = s.metrics()
	if m.ColdHits != 1 || m.Evictions != 2 {
		t.Fatalf("cold hit accounting: %+v", m)
	}
	if r, ok := s.Lookup("k0"); !ok || r.CPUCycles != 1 {
		t.Fatalf("promoted k0 = %+v, %v", r, ok)
	}
	if m = s.metrics(); m.HotHits != 1 {
		t.Fatalf("hot hit accounting: %+v", m)
	}
	if _, ok := s.Lookup("missing"); ok {
		t.Fatal("phantom result")
	}
	if m = s.metrics(); m.Misses != 1 {
		t.Fatalf("miss accounting: %+v", m)
	}

	// Every write landed in the persistent tier, not just the LRU.
	for i := 0; i < 3; i++ {
		if _, ok := cache.Lookup(fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("k%d missing from the persistent cache", i)
		}
	}

	// promote fills the hot tier only — the local execution path, where
	// sweep.Run owns the persistent write. It still evicts past
	// capacity and the promoted key serves as a hot hit.
	s.promote("hot-only", res(7))
	m = s.metrics()
	if m.HotEntries != 2 || m.Evictions != 3 {
		t.Fatalf("after promote into full tier: %+v", m)
	}
	if r, ok := s.Lookup("hot-only"); !ok || r.CPUCycles != 8 {
		t.Fatalf("promoted entry = %+v, %v", r, ok)
	}
	if _, ok := cache.Lookup("hot-only"); ok {
		t.Fatal("promote wrote the persistent tier")
	}

	// Nil store (cacheless manager): every operation is a no-op miss.
	var nilStore *resultStore
	if _, ok := nilStore.Lookup("k"); ok {
		t.Fatal("nil store hit")
	}
	if err := nilStore.Put("k", sim.Result{}); err != nil {
		t.Fatal(err)
	}
	nilStore.promote("k", sim.Result{})
	if nilStore.metrics() != nil {
		t.Fatal("nil store has metrics")
	}
}
