package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/version"
)

// Server exposes a Manager as a JSON HTTP API:
//
//	POST   /v1/jobs            submit one config or a batch -> job IDs
//	GET    /v1/jobs            list all jobs (no result payloads)
//	GET    /v1/jobs/{id}       status + result when done
//	GET    /v1/jobs/{id}/events  Server-Sent Events progress stream
//	DELETE /v1/jobs/{id}       cancel
//	GET    /v1/results         list stored content-address keys
//	GET    /v1/results/{key}   content-addressed result lookup
//	GET    /v1/analysis/{id}   perf-analyzer report of a done job
//	                           (alias: /analysis/{id}); evicted and
//	                           pre-restart job IDs resolve through the
//	                           durable job journal + result cache
//	GET    /v1/analysis/{id}/stream  Server-Sent Events live epoch
//	                           stream (Last-Event-ID resume)
//	GET    /healthz            liveness + version (200 even while draining)
//	GET    /readyz             readiness (503 while draining)
//	GET    /metrics            queue/dedup/cache counters + fleet
//	                           perf-analyzer aggregates
//	GET    /dashboard          embedded live HTML dashboard (campaign
//	                           progress, throughput, row-hit sparklines)
type Server struct {
	manager *Manager
	mux     *http.ServeMux
	started time.Time
}

// New wires the API around m. With a tenant Registry configured on the
// manager, every /v1/* and /analysis/* route requires a bearer token
// (Authorization: Bearer <token>); /healthz, /readyz, /metrics, and
// /dashboard stay open for probes and operators. Without a registry the
// auth layer is a no-op and the API behaves exactly as before.
func New(m *Manager) *Server {
	s := &Server{manager: m, mux: http.NewServeMux(), started: time.Now()}
	s.mux.HandleFunc("POST /v1/jobs", s.authed(s.handleSubmit))
	s.mux.HandleFunc("GET /v1/jobs", s.authed(s.handleListJobs))
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.authed(s.handleJob))
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.authed(s.handleCancel))
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.authed(s.handleJobEvents))
	s.mux.HandleFunc("GET /v1/results", s.authed(s.handleResultIndex))
	s.mux.HandleFunc("GET /v1/results/{key}", s.authed(s.handleResult))
	s.mux.HandleFunc("GET /v1/analysis/{id}", s.authed(s.handleAnalysis))
	s.mux.HandleFunc("GET /analysis/{id}", s.authed(s.handleAnalysis))
	s.mux.HandleFunc("GET /v1/analysis/{id}/stream", s.authed(s.handleAnalysisStream))
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /dashboard", s.handleDashboard)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// tenantKey carries the authenticated Tenant in the request context.
type tenantKey struct{}

// caller returns the authenticated tenant of an authed request (the
// zero Tenant in open mode).
func caller(r *http.Request) Tenant {
	t, _ := r.Context().Value(tenantKey{}).(Tenant)
	return t
}

// authed authenticates the request against the manager's tenant
// registry before invoking h. Open mode (nil registry) passes everyone
// through as the anonymous tenant.
func (s *Server) authed(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t, err := s.manager.Registry().Authenticate(r.Header.Get("Authorization"))
		if err != nil {
			if errors.Is(err, ErrUnauthenticated) {
				w.Header().Set("WWW-Authenticate", "Bearer")
				writeError(w, http.StatusUnauthorized, err)
				return
			}
			writeError(w, http.StatusForbidden, err)
			return
		}
		h(w, r.WithContext(context.WithValue(r.Context(), tenantKey{}, t)))
	}
}

// SubmitRequest is the POST /v1/jobs body: either a batch under
// "jobs", or the fields of a single JobSpec inlined at the top level.
type SubmitRequest struct {
	Jobs []JobSpec `json:"jobs"`
	JobSpec
}

// SubmitResponse returns one status (with ID) per accepted job, in
// submission order.
type SubmitResponse struct {
	Jobs []JobStatus `json:"jobs"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	t := caller(r)
	// Rate limit before reading the body: an over-rate tenant costs one
	// token-bucket check, not a JSON decode. Each POST spends one token
	// regardless of batch size — batching is the encouraged fast path.
	if ok, retryAfter := s.manager.Registry().AllowSubmit(t.Name); !ok {
		qe := &QuotaError{Tenant: t.Name, Quota: "rate", RetryAfter: retryAfter}
		writeQuotaError(w, qe)
		return
	}
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("server: decoding submission: %w", err))
		return
	}
	specs := req.Jobs
	if len(specs) == 0 {
		if len(req.Config.Workloads) == 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("server: submission needs a config or a jobs array"))
			return
		}
		specs = []JobSpec{req.JobSpec}
	}
	// Deadline propagation: the client stamps its context deadline on
	// the request; specs without an explicit deadline inherit it, so the
	// manager can enforce the caller's timeout queue-side (fail fast,
	// shed unmeetable load) instead of simulating for a caller that has
	// already given up.
	if raw := r.Header.Get(DeadlineHeader); raw != "" {
		if ms, perr := strconv.ParseInt(raw, 10, 64); perr == nil && ms > 0 {
			for i := range specs {
				if specs[i].DeadlineMs == 0 {
					specs[i].DeadlineMs = ms
				}
			}
		}
	}
	statuses, err := s.manager.SubmitAs(t, specs)
	if err != nil {
		var qe *QuotaError
		if errors.As(err, &qe) {
			writeQuotaError(w, qe)
			return
		}
		var de *DeadlineError
		if errors.As(err, &de) {
			// 503 + structured code: the load is unmeetable *here* — a
			// fleet dispatcher should try a less loaded peer, not mark
			// this daemon dead or retry the same queue.
			writeErrorCode(w, http.StatusServiceUnavailable, ErrCodeDeadlineUnmeetable, err)
			return
		}
		writeError(w, submitStatus(err), err)
		return
	}
	writeJSON(w, http.StatusAccepted, SubmitResponse{Jobs: statuses})
}

// submitStatus maps manager submission errors to HTTP codes.
func submitStatus(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

// writeQuotaError answers 429 with a Retry-After header when the quota
// knows how long the caller must back off (rate limits do; queue-state
// quotas clear on job completion, which has no deadline).
func writeQuotaError(w http.ResponseWriter, qe *QuotaError) {
	if qe.RetryAfter > 0 {
		secs := int(math.Ceil(qe.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeError(w, http.StatusTooManyRequests, qe)
}

// handleListJobs returns all retained jobs, or — with ?ids=a,b,c —
// only the named ones (unknown/evicted IDs are silently omitted, so
// pollers can detect eviction as absence).
func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	if raw := r.URL.Query().Get("ids"); raw != "" {
		writeJSON(w, http.StatusOK, SubmitResponse{Jobs: s.manager.JobsByIDAs(caller(r), strings.Split(raw, ","))})
		return
	}
	writeJSON(w, http.StatusOK, SubmitResponse{Jobs: s.manager.JobsAs(caller(r))})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	st, err := s.manager.JobAs(caller(r), r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.manager.CancelAs(caller(r), r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// ResultIndex is the GET /v1/results body: every content-address key
// in the persistent store, each fetchable via /v1/results/{key}.
type ResultIndex struct {
	Keys []string `json:"keys"`
}

func (s *Server) handleResultIndex(w http.ResponseWriter, r *http.Request) {
	idx := ResultIndex{Keys: []string{}}
	if cache := s.manager.Cache(); cache != nil {
		idx.Keys = cache.Keys()
	}
	writeJSON(w, http.StatusOK, idx)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	if s.manager.Cache() == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("server: no persistent result cache configured"))
		return
	}
	// Content-address lookups go through the tiered store: repeated
	// fetches of a campaign's working set are served from the hot LRU.
	res, ok := s.manager.LookupResult(r.PathValue("key"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("server: no result for key %s", r.PathValue("key")))
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleAnalysis serves a done job's perf-analyzer report. Job IDs the
// manager no longer retains (restart, retention pruning) resolve
// through the durable journal to the cached result. 404 covers every
// remaining absence uniformly: unknown job, not finished yet, or a
// config that never enabled analysis — the error text distinguishes
// them.
func (s *Server) handleAnalysis(w http.ResponseWriter, r *http.Request) {
	st, err := s.manager.JobAs(caller(r), r.PathValue("id"))
	if err != nil {
		if s.manager.jobVisibleAs(caller(r), r.PathValue("id")) {
			if rep, ok := s.manager.AnalysisByJobID(r.PathValue("id")); ok {
				writeJSON(w, http.StatusOK, rep)
				return
			}
		}
		writeError(w, http.StatusNotFound, err)
		return
	}
	if !st.State.Terminal() {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("server: job %s is %s; analysis is available once it is done", st.ID, st.State))
		return
	}
	if st.Result == nil || st.Result.Analysis == nil {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("server: job %s carries no analysis report (submit with config.Analysis.Enabled)", st.ID))
		return
	}
	writeJSON(w, http.StatusOK, st.Result.Analysis)
}

// Health is the /healthz body. Workers and TraceRoot let fleet
// dispatchers (internal/dispatch, ccsimd -peers) weight assignment by
// capacity and decide whether trace-file configs may be submitted here.
type Health struct {
	Status  string  `json:"status"`
	Version string  `json:"version"`
	UptimeS float64 `json:"uptime_s"`
	// Workers is the daemon's local simulation concurrency.
	Workers int `json:"workers"`
	// TraceRoot, when non-empty, is a directory the daemon shares with
	// its clients: trace-file configs whose absolute paths live under
	// it resolve to the same bytes on both sides.
	TraceRoot string `json:"trace_root,omitempty"`
	// Storage is "degraded" while the result cache or job journal runs
	// memory-only after disk write failures — a warning, not an outage:
	// the daemon keeps completing jobs and re-probes the disk. /readyz
	// still answers 200 so load balancers keep routing here.
	Storage string `json:"storage,omitempty"`
}

// health builds the shared /healthz//readyz body.
func (s *Server) health() Health {
	h := Health{
		Status:    "ok",
		Version:   version.String(),
		UptimeS:   time.Since(s.started).Seconds(),
		Workers:   s.manager.Workers(),
		TraceRoot: s.manager.TraceRoot(),
	}
	if s.manager.Metrics().Draining {
		h.Status = "draining"
	}
	if s.manager.StorageDegraded() {
		h.Storage = "degraded"
	}
	return h
}

// handleHealth reports liveness: always 200 while the process serves
// HTTP, including during a drain — a liveness probe must not kill the
// daemon while it finishes running simulations. The body still says
// "draining" so humans see the state. Routing decisions belong on
// /readyz.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.health())
}

// handleReady reports readiness: 503 while draining, when every new
// submission is rejected, so load balancers stop routing clients here
// during the shutdown grace window without the liveness probe killing
// in-flight work.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	h := s.health()
	status := http.StatusOK
	if h.Status == "draining" {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.manager.Metrics())
}

// apiError is the JSON error body of every non-2xx response. Code,
// when present, is a stable machine-readable classifier (e.g.
// ErrCodeDeadlineUnmeetable) so clients branch on it instead of
// parsing the human-readable message.
type apiError struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, apiError{Error: err.Error()})
}

// writeErrorCode is writeError with a structured error code attached.
func writeErrorCode(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, apiError{Error: err.Error(), Code: code})
}
