package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/analysis"
)

// errNoAnalysis answers analysis requests for jobs that never carried a
// report (HTTP 404 at the handler layer).
var errNoAnalysis = errors.New("server: job carries no analysis report (submit with config.Analysis.Enabled)")

// analysisBroker fans one flight's live analysis stream out to any
// number of SSE subscribers. The collector emits batches on the
// simulation goroutine (flight-side, via ingest); the broker folds them
// into a last-write-wins accumulator so late subscribers catch up with
// a single snapshot batch, and forwards them to current subscribers.
//
// Deltas are never re-sent, so a subscriber that cannot keep up is cut
// off (its channel closed) instead of being handed a gap; the SSE
// handler resubscribes with its last seen sequence number and receives
// a fresh snapshot. After finish the accumulator is dropped and the
// final report serves all future subscribers, so a terminal job costs
// one *Report (which the job table pins anyway), not a bucket map.
type analysisBroker struct {
	mu      sync.Mutex
	acc     *analysis.StreamAccumulator
	seq     uint64 // last ingested (or synthesized) batch sequence
	subs    map[int]chan analysis.StreamBatch
	nextSub int
	done    bool
	final   *analysis.Report
	err     error
}

func newAnalysisBroker() *analysisBroker {
	return &analysisBroker{
		acc:  analysis.NewStreamAccumulator(),
		subs: map[int]chan analysis.StreamBatch{},
	}
}

// ingest is the flight's analysis.StreamSink. It runs on the simulation
// goroutine; the send is non-blocking so a stalled subscriber can never
// stall the simulation.
func (b *analysisBroker) ingest(batch analysis.StreamBatch) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.done {
		return
	}
	b.acc.Apply(batch)
	b.seq = batch.Seq
	for id, ch := range b.subs {
		select {
		case ch <- batch:
		default:
			close(ch) // lagging: force a resubscribe-with-snapshot
			delete(b.subs, id)
		}
	}
}

// finish seals the broker with the flight's outcome. rep may be nil
// (failed flight, or analysis disabled after all); for flights that
// never streamed live (remote execution, cache hits inside the sweep)
// the synthesized snapshot gets sequence 1.
func (b *analysisBroker) finish(rep *analysis.Report, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.done {
		return
	}
	b.done = true
	b.final = rep
	b.err = err
	b.acc = nil
	if rep != nil && b.seq == 0 {
		b.seq = 1
	}
	for id, ch := range b.subs {
		close(ch)
		delete(b.subs, id)
	}
}

// analysisSub is one subscriber's view of a job's analysis stream.
type analysisSub struct {
	// replay is sent first: at most one snapshot batch bringing the
	// subscriber from afterSeq to the current state.
	replay []analysis.StreamBatch
	// ch carries live batches until the broker seals or the subscriber
	// lags; nil when the stream is already terminal.
	ch     <-chan analysis.StreamBatch
	cancel func()
	// done marks a terminal stream: after replay there is nothing to
	// wait for.
	done bool
	// err is the terminal failure of the flight, if any.
	err error
}

// subscribe registers a consumer whose last processed batch was
// afterSeq (0 for a fresh consumer).
func (b *analysisBroker) subscribe(afterSeq uint64) analysisSub {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.done {
		sub := analysisSub{done: true, err: b.err}
		if b.final != nil && afterSeq < b.seq {
			sub.replay = []analysis.StreamBatch{analysis.DeltasFromReport(b.final, b.seq)}
		}
		return sub
	}
	ch := make(chan analysis.StreamBatch, 64)
	id := b.nextSub
	b.nextSub++
	b.subs[id] = ch
	cancel := func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if c, ok := b.subs[id]; ok {
			delete(b.subs, id)
			close(c)
		}
	}
	var replay []analysis.StreamBatch
	if b.seq > 0 && afterSeq < b.seq {
		replay = []analysis.StreamBatch{b.acc.Snapshot(b.seq)}
	}
	return analysisSub{replay: replay, ch: ch, cancel: cancel, done: false}
}

// terminalSub wraps a finished report as a one-batch terminal stream
// (sequence 1), for jobs that resolved without a live broker: cache
// hits at submission, and jobs recovered from the journal after a
// restart or retention pruning.
func terminalSub(rep *analysis.Report, afterSeq uint64) analysisSub {
	sub := analysisSub{done: true}
	if afterSeq < 1 {
		sub.replay = []analysis.StreamBatch{analysis.DeltasFromReport(rep, 1)}
	}
	return sub
}

// SubscribeAnalysis opens a subscription to job id's analysis stream,
// resuming after batch afterSeq. Unknown IDs fall back to the durable
// journal + result cache, so streams of evicted or pre-restart jobs
// replay their final report. ErrUnknownJob / errNoAnalysis map to 404.
func (m *Manager) SubscribeAnalysis(id string, afterSeq uint64) (analysisSub, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		if rep, ok := m.analysisFromJournal(id); ok {
			return terminalSub(rep, afterSeq), nil
		}
		if _, ok := m.journal.lookup(id); ok {
			return analysisSub{}, errNoAnalysis
		}
		return analysisSub{}, ErrUnknownJob
	}
	if j.flight != nil && j.flight.stream != nil {
		b := j.flight.stream
		m.mu.Unlock()
		return b.subscribe(afterSeq), nil
	}
	// No broker: the job resolved straight from the cache at submission,
	// or its config never enabled analysis.
	if j.state == StateDone && j.result != nil && j.result.Analysis != nil {
		rep := j.result.Analysis
		m.mu.Unlock()
		return terminalSub(rep, afterSeq), nil
	}
	state := j.state
	m.mu.Unlock()
	if state.Terminal() && state != StateDone {
		return analysisSub{}, fmt.Errorf("server: job %s is %s; it carries no analysis stream", id, state)
	}
	return analysisSub{}, errNoAnalysis
}

// analysisFromJournal resolves a job ID the manager no longer retains
// to its cached analysis report via the durable journal.
func (m *Manager) analysisFromJournal(id string) (*analysis.Report, bool) {
	e, ok := m.journal.lookup(id)
	if !ok || e.State != StateDone || e.Key == "" || m.cache == nil {
		return nil, false
	}
	res, ok := m.cache.Lookup(e.Key)
	if !ok || res.Analysis == nil {
		return nil, false
	}
	return res.Analysis, true
}

// AnalysisByJobID returns the analysis report a job ID resolved to,
// consulting the live job table first and the journal + cache for IDs
// the table evicted (restart, retention pruning).
func (m *Manager) AnalysisByJobID(id string) (*analysis.Report, bool) {
	m.mu.Lock()
	if j, ok := m.jobs[id]; ok {
		if j.state == StateDone && j.result != nil && j.result.Analysis != nil {
			rep := j.result.Analysis
			m.mu.Unlock()
			return rep, true
		}
		m.mu.Unlock()
		return nil, false
	}
	m.mu.Unlock()
	return m.analysisFromJournal(id)
}

// lastEventID parses the SSE resume cursor: the standard Last-Event-ID
// header (browsers set it on reconnect), with a ?last_event_id= query
// fallback for clients that cannot set headers.
func lastEventID(r *http.Request) uint64 {
	v := r.Header.Get("Last-Event-ID")
	if v == "" {
		v = r.URL.Query().Get("last_event_id")
	}
	n, _ := strconv.ParseUint(v, 10, 64)
	return n
}

// handleAnalysisStream streams a job's analysis over SSE:
//
//	id: <seq>            batch sequence number (the resume cursor)
//	event: epochs        data: analysis.StreamBatch (dirty buckets)
//	event: summary       data: batch carrying the final report
//	event: error         data: {"error": ...} for failed flights
//	event: done          data: {}             stream complete
//
// A subscriber joining or resuming mid-run first receives one snapshot
// batch (Reset set) that brings it to the current state; applying every
// received batch to an analysis.StreamAccumulator reconstructs the
// job's final report byte-identically.
func (s *Server) handleAnalysisStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.manager.jobVisibleAs(caller(r), id) {
		writeError(w, http.StatusNotFound, ErrUnknownJob)
		return
	}
	lastSeq := lastEventID(r)
	sub, err := s.manager.SubscribeAnalysis(id, lastSeq)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		if sub.cancel != nil {
			sub.cancel()
		}
		writeError(w, http.StatusInternalServerError, fmt.Errorf("server: response writer cannot stream"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	send := func(b analysis.StreamBatch) bool {
		blob, err := json.Marshal(b)
		if err != nil {
			return false
		}
		event := "epochs"
		if b.Summary != nil {
			event = "summary"
		}
		if err := writeSSEID(w, strconv.FormatUint(b.Seq, 10), event, blob); err != nil {
			return false
		}
		flusher.Flush()
		lastSeq = b.Seq
		return true
	}
	for {
		for _, b := range sub.replay {
			if !send(b) {
				if sub.cancel != nil {
					sub.cancel()
				}
				return
			}
		}
		if sub.done {
			if sub.err != nil {
				blob, _ := json.Marshal(apiError{Error: sub.err.Error()})
				_ = writeSSE(w, "error", blob)
			}
			_ = writeSSE(w, "done", []byte("{}"))
			flusher.Flush()
			return
		}
		alive := true
		for alive {
			select {
			case <-r.Context().Done():
				sub.cancel()
				return
			case b, open := <-sub.ch:
				if !open {
					alive = false
					break
				}
				if !send(b) {
					sub.cancel()
					return
				}
			}
		}
		sub.cancel()
		// The channel closed: the flight finished, or we lagged. Either
		// way resubscribing from the last delivered sequence yields the
		// correct continuation (final replay + done, or a snapshot).
		next, err := s.manager.SubscribeAnalysis(id, lastSeq)
		if err != nil {
			_ = writeSSE(w, "done", []byte("{}"))
			flusher.Flush()
			return
		}
		sub = next
	}
}
