package server

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// journalOracle is the in-memory model the property test checks the
// real journal against: an ordered upsert map with oldest-first
// eviction beyond limit — the semantics record() promises.
type journalOracle struct {
	limit int
	byID  map[string]journalEntry
	order []string
}

func newJournalOracle(limit int) *journalOracle {
	return &journalOracle{limit: limit, byID: map[string]journalEntry{}}
}

func (o *journalOracle) record(entries ...journalEntry) {
	for _, e := range entries {
		if e.ID == "" {
			continue
		}
		if _, dup := o.byID[e.ID]; !dup {
			o.order = append(o.order, e.ID)
		}
		o.byID[e.ID] = e
	}
	if drop := len(o.order) - o.limit; o.limit > 0 && drop > 0 {
		for _, id := range o.order[:drop] {
			delete(o.byID, id)
		}
		o.order = append([]string(nil), o.order[drop:]...)
	}
}

func (o *journalOracle) entries() []journalEntry {
	out := make([]journalEntry, 0, len(o.order))
	for _, id := range o.order {
		out = append(out, o.byID[id])
	}
	return out
}

func (o *journalOracle) reset() {
	o.byID = map[string]journalEntry{}
	o.order = nil
}

// TestJournalProperty drives random append / upsert / restart /
// corrupt-truncate sequences against the journal and an in-memory
// oracle, asserting after every step that (1) the journal's view
// matches the oracle exactly, (2) no journaled done-job maps to a key
// missing from the "cache" (keys are registered before being recorded,
// mirroring the manager's cache-write-then-journal ordering), and
// (3) corruption is quarantined, never silently half-parsed.
func TestJournalProperty(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			path := filepath.Join(dir, "results.json.jobs")
			limit := 1 + rng.Intn(12)

			j := openJournal(path, limit)
			oracle := newJournalOracle(limit)
			cacheKeys := map[string]bool{} // stands in for sweep.Cache contents
			nextID := 1

			check := func(step int, op string) {
				t.Helper()
				got, want := j.entries(), oracle.entries()
				if len(got) == 0 && len(want) == 0 {
					// reflect.DeepEqual(nil, []journalEntry{}) is false;
					// both empty is equal for our purposes.
				} else if !reflect.DeepEqual(got, want) {
					t.Fatalf("step %d (%s): journal diverged from oracle\n got: %+v\nwant: %+v", step, op, got, want)
				}
				for _, e := range got {
					if e.State == StateDone && e.Key != "" && !cacheKeys[e.Key] {
						t.Fatalf("step %d (%s): journal maps live job %s to missing cache key %s", step, op, e.ID, e.Key)
					}
				}
				var wantMax uint64
				for id := range oracle.byID {
					var n uint64
					if _, err := fmt.Sscanf(id, "job-%d", &n); err == nil && n > wantMax {
						wantMax = n
					}
				}
				if gotMax := j.maxID(); gotMax != wantMax {
					t.Fatalf("step %d (%s): maxID = %d, oracle %d", step, op, gotMax, wantMax)
				}
			}

			for step := 0; step < 120; step++ {
				switch op := rng.Intn(10); {
				case op < 5: // append fresh entries (sometimes a batch)
					n := 1 + rng.Intn(3)
					batch := make([]journalEntry, 0, n)
					for i := 0; i < n; i++ {
						id := fmt.Sprintf("job-%d", nextID)
						nextID++
						e := journalEntry{
							ID:         id,
							State:      StateDone,
							Worker:     "local",
							Tenant:     []string{"", "alice", "bob"}[rng.Intn(3)],
							FinishedAt: time.Unix(1700000000+int64(step), 0).UTC(),
						}
						switch rng.Intn(4) {
						case 0:
							e.State = StateFailed // failed jobs have no key
						default:
							e.Key = fmt.Sprintf("key-%d", rng.Intn(20))
							cacheKeys[e.Key] = true // cache write precedes journaling
						}
						batch = append(batch, e)
					}
					j.record(batch...)
					oracle.record(batch...)
					check(step, "append")

				case op < 7: // upsert an existing ID (terminal-state rewrite)
					if len(oracle.order) == 0 {
						continue
					}
					id := oracle.order[rng.Intn(len(oracle.order))]
					e := oracle.byID[id]
					e.State = StateCanceled
					e.Key = ""
					j.record(e)
					oracle.record(e)
					check(step, "upsert")

				case op < 9: // restart: reload from disk
					j = openJournal(path, limit)
					check(step, "restart")

				default: // corrupt: truncate or scribble, then restart
					blob, err := os.ReadFile(path)
					if err != nil {
						continue // nothing persisted yet
					}
					os.Remove(path + ".corrupt")
					if rng.Intn(2) == 0 && len(blob) > 1 {
						blob = blob[:rng.Intn(len(blob))] // strict prefix
					} else {
						blob = append(blob, []byte("}{ not json")...)
					}
					if err := os.WriteFile(path, blob, 0o644); err != nil {
						t.Fatal(err)
					}
					j = openJournal(path, limit)
					if _, err := os.Stat(path + ".corrupt"); err != nil {
						t.Fatalf("step %d: corrupted journal not quarantined: %v", step, err)
					}
					if _, err := os.Stat(path); !os.IsNotExist(err) {
						t.Fatalf("step %d: corrupted journal left in place (stat: %v)", step, err)
					}
					oracle.reset() // quarantine means a fresh, empty journal
					check(step, "corrupt")
				}
			}
		})
	}
}
