package server

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func newTestRegistry(t *testing.T, tenants ...Tenant) *Registry {
	t.Helper()
	r, err := NewRegistry(tenants)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestFairShareAlternates holds the single worker busy, queues 4 jobs
// each for two equal-weight tenants (tenant A's all submitted first),
// and demands the scheduler interleave them instead of FIFO-draining
// tenant A.
func TestFairShareAlternates(t *testing.T) {
	reg := newTestRegistry(t,
		Tenant{Name: "a", Token: "ta"},
		Tenant{Name: "b", Token: "tb"},
	)
	m := NewManager(ManagerConfig{Workers: 1, QueueDepth: 32, Tenants: reg})
	defer drainManager(t, m)

	blocker, err := m.SubmitAs(Tenant{Name: "a"}, []JobSpec{{Label: "blocker", Config: blockerCfg()}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, blocker[0].ID, StateRunning)

	var ids []string
	for i := uint64(0); i < 4; i++ {
		sts, err := m.SubmitAs(Tenant{Name: "a"}, []JobSpec{{Label: "a", Config: tinyCfg(1000 + i)}})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, sts[0].ID)
	}
	for i := uint64(0); i < 4; i++ {
		sts, err := m.SubmitAs(Tenant{Name: "b"}, []JobSpec{{Label: "b", Config: tinyCfg(2000 + i)}})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, sts[0].ID)
	}

	for _, id := range ids {
		waitState(t, m, id, StateDone)
	}

	// Completion order (by StartedAt) must interleave tenants: with
	// equal weights, B's first job cannot wait behind all four of A's.
	type started struct {
		tenant string
		at     time.Time
	}
	var order []started
	for _, st := range m.Jobs() {
		if st.Label == "blocker" || st.StartedAt == nil {
			continue
		}
		order = append(order, started{st.Tenant, *st.StartedAt})
	}
	if len(order) != 8 {
		t.Fatalf("%d started jobs, want 8", len(order))
	}
	for i := 1; i < len(order); i++ {
		if order[i].at.Before(order[i-1].at) {
			order[i-1], order[i] = order[i], order[i-1]
			i = 0 // tiny insertion sort; n=8
		}
	}
	// Among the first 4 starts, both tenants must appear.
	seen := map[string]int{}
	for _, s := range order[:4] {
		seen[s.tenant]++
	}
	if seen["a"] == 0 || seen["b"] == 0 {
		t.Fatalf("first 4 scheduled jobs all from one tenant: %v (FIFO, not fair-share)", seen)
	}
}

// TestFairShareWeights gives tenant A twice tenant B's weight and
// checks A gets roughly two slots for B's one while both have backlog.
func TestFairShareWeights(t *testing.T) {
	reg := newTestRegistry(t,
		Tenant{Name: "heavy", Token: "th", Weight: 2},
		Tenant{Name: "light", Token: "tl", Weight: 1},
	)
	m := NewManager(ManagerConfig{Workers: 1, QueueDepth: 64, Tenants: reg})
	defer drainManager(t, m)

	blocker, err := m.SubmitAs(Tenant{Name: "light"}, []JobSpec{{Label: "blocker", Config: blockerCfg()}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, blocker[0].ID, StateRunning)

	var ids []string
	for i := uint64(0); i < 6; i++ {
		h, err := m.SubmitAs(Tenant{Name: "heavy"}, []JobSpec{{Label: "h", Config: tinyCfg(3000 + i)}})
		if err != nil {
			t.Fatal(err)
		}
		l, err := m.SubmitAs(Tenant{Name: "light"}, []JobSpec{{Label: "l", Config: tinyCfg(4000 + i)}})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, h[0].ID, l[0].ID)
	}
	for _, id := range ids {
		waitState(t, m, id, StateDone)
	}

	// While both tenants had backlog — i.e. before light's last job
	// starts — heavy must have started at least as many jobs as light
	// and no more than its 2:1 share plus slack for DRR quantization.
	var starts []JobStatus
	for _, st := range m.Jobs() {
		if st.Label == "blocker" || st.StartedAt == nil {
			continue
		}
		starts = append(starts, st)
	}
	// Order by start time.
	for i := 1; i < len(starts); i++ {
		for j := i; j > 0 && starts[j].StartedAt.Before(*starts[j-1].StartedAt); j-- {
			starts[j-1], starts[j] = starts[j], starts[j-1]
		}
	}
	heavyEarly := 0
	for _, st := range starts[:6] {
		if st.Tenant == "heavy" {
			heavyEarly++
		}
	}
	// In the first 6 starts a 2:1 weighting should give heavy ~4; allow
	// [3, 5] for quantization at the DRR round boundaries.
	if heavyEarly < 3 || heavyEarly > 5 {
		t.Fatalf("heavy started %d of the first 6 jobs, want 3..5 at weight 2:1", heavyEarly)
	}
}

// TestMaxConcurrent pins a tenant to 1 running job on a 2-worker
// manager: its second job must wait even though a worker idles.
func TestMaxConcurrent(t *testing.T) {
	reg := newTestRegistry(t, Tenant{Name: "capped", Token: "tc", MaxConcurrent: 1})
	m := NewManager(ManagerConfig{Workers: 2, QueueDepth: 16, Tenants: reg})
	defer drainManager(t, m)

	caller := Tenant{Name: "capped"}
	b1, err := m.SubmitAs(caller, []JobSpec{{Label: "b1", Config: blockerCfg()}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, b1[0].ID, StateRunning)

	cfg := blockerCfg()
	cfg.Seed = 100 // distinct key so it cannot dedup onto b1
	b2, err := m.SubmitAs(caller, []JobSpec{{Label: "b2", Config: cfg}})
	if err != nil {
		t.Fatal(err)
	}

	// b2 must stay queued while b1 runs despite the idle second worker.
	time.Sleep(50 * time.Millisecond)
	if st, _ := m.Job(b2[0].ID); st.State != StateQueued {
		t.Fatalf("second job is %s, want queued under max_concurrent=1", st.State)
	}
	waitState(t, m, b1[0].ID, StateDone)
	waitState(t, m, b2[0].ID, StateDone)
}

// TestMaxQueuedQuota rejects submissions past the tenant's queued cap
// with a typed QuotaError, while other tenants are unaffected.
func TestMaxQueuedQuota(t *testing.T) {
	reg := newTestRegistry(t,
		Tenant{Name: "small", Token: "ts", MaxQueued: 2},
		Tenant{Name: "other", Token: "to"},
	)
	m := NewManager(ManagerConfig{Workers: 1, QueueDepth: 32, Tenants: reg})
	defer drainManager(t, m)

	small := Tenant{Name: "small"}
	blocker, err := m.SubmitAs(small, []JobSpec{{Label: "blocker", Config: blockerCfg()}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, blocker[0].ID, StateRunning)

	for i := uint64(0); i < 2; i++ {
		if _, err := m.SubmitAs(small, []JobSpec{{Config: tinyCfg(5000 + i)}}); err != nil {
			t.Fatalf("queued submission %d: %v", i, err)
		}
	}
	_, err = m.SubmitAs(small, []JobSpec{{Config: tinyCfg(5100)}})
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.Quota != "queued" || qe.Tenant != "small" || qe.Limit != 2 {
		t.Fatalf("over-quota submit = %v, want QuotaError{queued, small, 2}", err)
	}
	// Batches are all-or-nothing against the quota too.
	if _, err := m.SubmitAs(small, []JobSpec{{Config: tinyCfg(5101)}, {Config: tinyCfg(5102)}}); !errors.As(err, &qe) {
		t.Fatalf("over-quota batch = %v, want QuotaError", err)
	}
	// The other tenant still has the whole shared queue.
	if _, err := m.SubmitAs(Tenant{Name: "other"}, []JobSpec{{Config: tinyCfg(5200)}}); err != nil {
		t.Fatalf("unaffected tenant rejected: %v", err)
	}
	if met := m.Metrics(); len(met.Tenants) == 0 {
		t.Fatal("no per-tenant metrics")
	} else {
		for _, tm := range met.Tenants {
			if tm.Name == "small" && tm.QuotaRejected != 2 {
				t.Errorf("small.quota_rejected = %d, want 2", tm.QuotaRejected)
			}
		}
	}
}

// TestPriorityPreemption fills the queue with low-priority work, then
// checks a high-priority submission evicts queued (never running)
// low-priority jobs to make room — and that the victims read as
// canceled with an explanatory error.
func TestPriorityPreemption(t *testing.T) {
	reg := newTestRegistry(t,
		Tenant{Name: "batch", Token: "tb", Priority: 0},
		Tenant{Name: "urgent", Token: "tu", Priority: 2},
	)
	m := NewManager(ManagerConfig{Workers: 1, QueueDepth: 2, Tenants: reg})
	defer drainManager(t, m)

	batch := Tenant{Name: "batch"}
	blocker, err := m.SubmitAs(batch, []JobSpec{{Label: "blocker", Config: blockerCfg()}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, blocker[0].ID, StateRunning)

	q1, err := m.SubmitAs(batch, []JobSpec{{Label: "q1", Config: tinyCfg(6001)}})
	if err != nil {
		t.Fatal(err)
	}
	q2, err := m.SubmitAs(batch, []JobSpec{{Label: "q2", Config: tinyCfg(6002)}})
	if err != nil {
		t.Fatal(err)
	}
	// Queue full: same-priority overflow still fails...
	if _, err := m.SubmitAs(batch, []JobSpec{{Config: tinyCfg(6003)}}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("same-priority overflow: %v, want ErrQueueFull", err)
	}
	// ...but the urgent tenant preempts the newest queued batch job.
	urgent, err := m.SubmitAs(Tenant{Name: "urgent"}, []JobSpec{{Label: "now", Config: tinyCfg(6010)}})
	if err != nil {
		t.Fatalf("priority submission rejected at full queue: %v", err)
	}

	if st, _ := m.Job(q2[0].ID); st.State != StateCanceled {
		t.Fatalf("newest low-priority job is %s, want canceled (preempted)", st.State)
	} else if st.Error == "" {
		t.Error("preempted job has no explanatory error")
	}
	if st, _ := m.Job(q1[0].ID); st.State != StateQueued {
		t.Fatalf("older low-priority job is %s, want still queued (only `need` victims)", st.State)
	}

	waitState(t, m, urgent[0].ID, StateDone)
	waitState(t, m, q1[0].ID, StateDone)

	// Urgent must have started before the surviving batch job.
	u, _ := m.Job(urgent[0].ID)
	b1, _ := m.Job(q1[0].ID)
	if u.StartedAt == nil || b1.StartedAt == nil || b1.StartedAt.Before(*u.StartedAt) {
		t.Error("high-priority job did not start before queued low-priority work")
	}

	met := m.Metrics()
	for _, tm := range met.Tenants {
		if tm.Name == "batch" && tm.Preempted != 1 {
			t.Errorf("batch.preempted = %d, want 1", tm.Preempted)
		}
	}

	// The running blocker was never touched.
	if st, _ := m.Job(blocker[0].ID); st.State != StateDone && st.State != StateRunning {
		t.Fatalf("running job was preempted: %s", st.State)
	}
}

// TestPreemptionAllOrNothing: a 2-job high-priority batch with only one
// preemptible victim must be rejected whole, leaving the victim queued.
func TestPreemptionAllOrNothing(t *testing.T) {
	reg := newTestRegistry(t,
		Tenant{Name: "batch", Token: "tb", Priority: 0},
		Tenant{Name: "urgent", Token: "tu", Priority: 1},
	)
	m := NewManager(ManagerConfig{Workers: 1, QueueDepth: 2, Tenants: reg})
	defer drainManager(t, m)

	blocker, err := m.SubmitAs(Tenant{Name: "urgent"}, []JobSpec{{Label: "blocker", Config: blockerCfg()}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, blocker[0].ID, StateRunning)
	// One urgent and one batch job fill the queue: only the batch one
	// is preemptible, so a 2-wide urgent batch (needing 2 slots) fails.
	uq, err := m.SubmitAs(Tenant{Name: "urgent"}, []JobSpec{{Config: tinyCfg(7001)}})
	if err != nil {
		t.Fatal(err)
	}
	bq, err := m.SubmitAs(Tenant{Name: "batch"}, []JobSpec{{Config: tinyCfg(7002)}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.SubmitAs(Tenant{Name: "urgent"}, []JobSpec{{Config: tinyCfg(7003)}, {Config: tinyCfg(7004)}}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("partial-preemption batch = %v, want ErrQueueFull", err)
	}
	if st, _ := m.Job(bq[0].ID); st.State != StateQueued {
		t.Fatalf("victim canceled by a rejected batch: %s", st.State)
	}
	waitState(t, m, uq[0].ID, StateDone)
	waitState(t, m, bq[0].ID, StateDone)
}

// TestTenantVisibility: non-gateway tenants see only their own jobs;
// gateways see everything and may attribute work to other tenants.
func TestTenantVisibility(t *testing.T) {
	reg := newTestRegistry(t,
		Tenant{Name: "a", Token: "ta"},
		Tenant{Name: "b", Token: "tb"},
		Tenant{Name: "fleet", Token: "tf", Gateway: true},
	)
	m := NewManager(ManagerConfig{Workers: 2, QueueDepth: 16, Tenants: reg})
	defer drainManager(t, m)

	a, b, fleet := Tenant{Name: "a"}, Tenant{Name: "b"}, reg.Lookup("fleet")
	aj, err := m.SubmitAs(a, []JobSpec{{Label: "a-job", Config: tinyCfg(8001)}})
	if err != nil {
		t.Fatal(err)
	}
	// A gateway submits on b's behalf.
	bj, err := m.SubmitAs(fleet, []JobSpec{{Label: "b-job", Config: tinyCfg(8002), Tenant: "b"}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, aj[0].ID, StateDone)
	waitState(t, m, bj[0].ID, StateDone)

	// Attribution followed the spec, not the gateway caller.
	if st, err := m.JobAs(b, bj[0].ID); err != nil || st.Tenant != "b" {
		t.Fatalf("gateway-submitted job: tenant %q, err %v; want b's job visible to b", st.Tenant, err)
	}
	// A non-gateway tenant cannot spoof attribution...
	cj, err := m.SubmitAs(a, []JobSpec{{Label: "spoof", Config: tinyCfg(8003), Tenant: "b"}})
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := m.JobAs(a, cj[0].ID); st.Tenant != "a" {
		t.Fatalf("non-gateway caller attributed a job to %q", st.Tenant)
	}

	// ...and cannot see, cancel, or even confirm the existence of
	// another tenant's job.
	if _, err := m.JobAs(b, aj[0].ID); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("cross-tenant Job = %v, want ErrUnknownJob", err)
	}
	if _, err := m.CancelAs(b, aj[0].ID); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("cross-tenant Cancel = %v, want ErrUnknownJob", err)
	}
	if m.jobVisibleAs(b, aj[0].ID) {
		t.Error("cross-tenant job visible through jobVisibleAs")
	}

	// Listings are filtered per caller; the gateway sees all.
	if jobs := m.JobsAs(a); len(jobs) != 2 { // a-job + spoof
		t.Errorf("a sees %d jobs, want 2", len(jobs))
	}
	if jobs := m.JobsAs(b); len(jobs) != 1 {
		t.Errorf("b sees %d jobs, want 1", len(jobs))
	}
	if jobs := m.JobsAs(fleet); len(jobs) != 3 {
		t.Errorf("gateway sees %d jobs, want 3", len(jobs))
	}
	if got := m.JobsByIDAs(b, []string{aj[0].ID, bj[0].ID}); len(got) != 1 {
		t.Errorf("filtered bulk lookup returned %d jobs, want 1", len(got))
	}
}

// TestOpenModeSubmitCompat: with no registry, Submit and SubmitAs with
// an anonymous caller behave identically to the pre-gateway manager —
// spec.Tenant is honored as a label and everything is visible.
func TestOpenModeSubmitCompat(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 1, QueueDepth: 8})
	defer drainManager(t, m)

	sts, err := m.Submit([]JobSpec{{Label: "open", Config: tinyCfg(9001), Tenant: "team-x"}})
	if err != nil {
		t.Fatal(err)
	}
	st := waitState(t, m, sts[0].ID, StateDone)
	if st.Tenant != "team-x" {
		t.Errorf("open-mode tenant label = %q, want team-x", st.Tenant)
	}
	// Any caller sees it.
	if _, err := m.JobAs(Tenant{Name: "someone-else"}, sts[0].ID); err != nil {
		t.Errorf("open-mode visibility: %v", err)
	}
}

// TestMetricsTenantConcurrency hammers submit/cancel/metrics in
// parallel and asserts the per-tenant invariants hold at every
// observation: queued <= max_queued, counters monotonic, rate tokens
// never negative.
func TestMetricsTenantConcurrency(t *testing.T) {
	reg := newTestRegistry(t,
		Tenant{Name: "q", Token: "tq", MaxQueued: 3},
		Tenant{Name: "r", Token: "tr", RatePerSec: 1000, Burst: 5},
	)
	m := NewManager(ManagerConfig{Workers: 2, QueueDepth: 64, Tenants: reg})
	defer drainManager(t, m)

	stop := make(chan struct{})
	var violations []string
	var vmu sync.Mutex
	violate := func(format string, args ...any) {
		vmu.Lock()
		violations = append(violations, fmt.Sprintf(format, args...))
		vmu.Unlock()
	}

	var observer sync.WaitGroup
	observer.Add(1)
	go func() {
		defer observer.Done()
		prev := map[string]TenantMetrics{}
		for {
			select {
			case <-stop:
				return
			default:
			}
			met := m.Metrics()
			for _, tm := range met.Tenants {
				if tm.Name == "q" && tm.Queued > 3 {
					violate("tenant q queued %d > max 3", tm.Queued)
				}
				if tm.RateTokens != nil && *tm.RateTokens < 0 {
					violate("tenant %s tokens %v < 0", tm.Name, *tm.RateTokens)
				}
				if p, ok := prev[tm.Name]; ok {
					if tm.Submitted < p.Submitted || tm.Completed < p.Completed ||
						tm.Canceled < p.Canceled || tm.QuotaRejected < p.QuotaRejected {
						violate("tenant %s counters went backwards: %+v -> %+v", tm.Name, p, tm)
					}
				}
				prev[tm.Name] = tm
			}
			time.Sleep(time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := "q"
			if w%2 == 1 {
				name = "r"
			}
			caller := Tenant{Name: name}
			for i := 0; i < 30; i++ {
				if name == "r" {
					// The HTTP layer owns rate limiting; exercise the
					// bucket here so RateTokens moves under load.
					reg.AllowSubmit("r")
				}
				sts, err := m.SubmitAs(caller, []JobSpec{{Config: tinyCfg(uint64(10_000 + w*1000 + i))}})
				if err != nil {
					var qe *QuotaError
					if errors.As(err, &qe) || errors.Is(err, ErrQueueFull) {
						time.Sleep(2 * time.Millisecond)
						continue
					}
					t.Errorf("worker %d submit: %v", w, err)
					return
				}
				if i%3 == 0 {
					m.CancelAs(caller, sts[0].ID)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	observer.Wait()

	vmu.Lock()
	defer vmu.Unlock()
	for _, v := range violations {
		t.Error(v)
	}
}
