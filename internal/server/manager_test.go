package server

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// tinyCfg is a fast (~2ms) simulation differentiated by seed.
func tinyCfg(seed uint64) sim.Config {
	cfg := sim.DefaultConfig("lbm")
	cfg.WarmupInstructions = 10_000
	cfg.RunInstructions = 20_000
	cfg.Seed = seed
	return cfg
}

// blockerCfg is a simulation long enough (hundreds of ms) to hold a
// worker busy while a test stages queued jobs behind it. Sized for the
// event-driven engine's throughput — if engine speedups shrink it below
// a few hundred ms, staging races on single-CPU runners come back.
func blockerCfg() sim.Config {
	cfg := sim.DefaultConfig("mcf")
	cfg.WarmupInstructions = 10_000
	cfg.RunInstructions = 32_000_000
	cfg.Seed = 99
	return cfg
}

// submitOne pushes a single spec and returns its job ID.
func submitOne(t *testing.T, m *Manager, label string, cfg sim.Config) string {
	t.Helper()
	sts, err := m.Submit([]JobSpec{{Label: label, Config: cfg}})
	if err != nil {
		t.Fatalf("submit %s: %v", label, err)
	}
	return sts[0].ID
}

// waitState polls until the job reaches want (or any terminal state
// when want is terminal and the job went elsewhere, which fails).
func waitState(t *testing.T, m *Manager, id string, want JobState) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st, err := m.Job(id)
		if err != nil {
			t.Fatalf("job %s: %v", id, err)
		}
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s finished as %s (error %q), want %s", id, st.State, st.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return JobStatus{}
}

func drainManager(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestManagerSingleflightDedup holds the single worker busy, submits
// the same config from 8 goroutines, and demands exactly one
// simulation with every job receiving the identical result.
func TestManagerSingleflightDedup(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 1, QueueDepth: 16})
	defer drainManager(t, m)

	blocker := submitOne(t, m, "blocker", blockerCfg())
	waitState(t, m, blocker, StateRunning)

	cfg := tinyCfg(42)
	const n = 8
	ids := make([]string, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			sts, err := m.Submit([]JobSpec{{Label: "dup", Config: cfg}})
			if err != nil {
				t.Errorf("concurrent submit %d: %v", i, err)
				return
			}
			ids[i] = sts[0].ID
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	var results []sim.Result
	for _, id := range ids {
		st := waitState(t, m, id, StateDone)
		if st.Result == nil {
			t.Fatalf("job %s done without a result", id)
		}
		results = append(results, *st.Result)
	}
	for i := 1; i < n; i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Fatalf("job %d received a different result than job 0", i)
		}
	}

	waitState(t, m, blocker, StateDone)
	met := m.Metrics()
	if met.SimulationsRun != 2 { // blocker + exactly one for the 8 dups
		t.Errorf("simulations_run = %d, want 2", met.SimulationsRun)
	}
	if met.JobsDeduped != n-1 {
		t.Errorf("jobs_deduped = %d, want %d", met.JobsDeduped, n-1)
	}
	if met.JobsCompleted != n+1 {
		t.Errorf("jobs_completed = %d, want %d", met.JobsCompleted, n+1)
	}
}

// TestManagerCancelQueued cancels a job stuck behind a blocker and
// checks its simulation never runs, without disturbing the manager.
func TestManagerCancelQueued(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 1, QueueDepth: 16})
	defer drainManager(t, m)

	blocker := submitOne(t, m, "blocker", blockerCfg())
	waitState(t, m, blocker, StateRunning)
	target := submitOne(t, m, "target", tinyCfg(7))
	if st, _ := m.Job(target); st.State != StateQueued {
		t.Fatalf("target is %s, want queued", st.State)
	}

	st, err := m.Cancel(target)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled {
		t.Fatalf("cancel left job %s, want canceled", st.State)
	}
	// Cancel of a terminal job is a no-op, not an error.
	if st, err = m.Cancel(target); err != nil || st.State != StateCanceled {
		t.Fatalf("second cancel: %v (state %s)", err, st.State)
	}

	waitState(t, m, blocker, StateDone)
	// A fresh job still runs after the canceled flight was skipped.
	after := submitOne(t, m, "after", tinyCfg(8))
	waitState(t, m, after, StateDone)

	met := m.Metrics()
	if met.SimulationsRun != 2 { // blocker + after; target never simulated
		t.Errorf("simulations_run = %d, want 2", met.SimulationsRun)
	}
	if met.JobsCanceled != 1 {
		t.Errorf("jobs_canceled = %d, want 1", met.JobsCanceled)
	}
}

// TestManagerCancelUnknown covers the 404 path.
func TestManagerCancelUnknown(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 1})
	defer drainManager(t, m)
	if _, err := m.Cancel("job-999999"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("cancel unknown: %v, want ErrUnknownJob", err)
	}
	if _, err := m.Job("job-999999"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("get unknown: %v, want ErrUnknownJob", err)
	}
}

// TestManagerDrain checks graceful shutdown: the running job finishes,
// the queued one is canceled, and new submissions are rejected.
func TestManagerDrain(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 1, QueueDepth: 16})

	running := submitOne(t, m, "running", blockerCfg())
	waitState(t, m, running, StateRunning)
	queued := submitOne(t, m, "queued", tinyCfg(3))

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		drained <- m.Drain(ctx)
	}()

	// Once draining is visible, submissions must fail.
	deadline := time.Now().Add(60 * time.Second)
	for !m.Metrics().Draining {
		if time.Now().After(deadline) {
			t.Fatal("manager never started draining")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := m.Submit([]JobSpec{{Config: tinyCfg(4)}}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining: %v, want ErrDraining", err)
	}

	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if st, _ := m.Job(running); st.State != StateDone {
		t.Errorf("running job drained to %s, want done", st.State)
	}
	if st, _ := m.Job(queued); st.State != StateCanceled {
		t.Errorf("queued job drained to %s, want canceled", st.State)
	}
	// Drain is idempotent.
	if err := m.Drain(context.Background()); err != nil {
		t.Errorf("second drain: %v", err)
	}
}

// TestManagerQueueFull checks the bounded-intake contract, including
// all-or-nothing batch rejection.
func TestManagerQueueFull(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 1, QueueDepth: 1})
	defer drainManager(t, m)

	blocker := submitOne(t, m, "blocker", blockerCfg())
	waitState(t, m, blocker, StateRunning) // worker busy, queue empty
	submitOne(t, m, "fills-queue", tinyCfg(1))

	if _, err := m.Submit([]JobSpec{{Config: tinyCfg(2)}}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: %v, want ErrQueueFull", err)
	}
	before := m.Metrics().JobsSubmitted
	_, err := m.Submit([]JobSpec{{Config: tinyCfg(5)}, {Config: tinyCfg(6)}})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow batch: %v, want ErrQueueFull", err)
	}
	if after := m.Metrics().JobsSubmitted; after != before {
		t.Errorf("rejected batch still created %d jobs", after-before)
	}

	// Duplicates of queued work need no fresh slot: dedup keeps
	// admitting them at full queue.
	if _, err := m.Submit([]JobSpec{{Config: tinyCfg(1)}}); err != nil {
		t.Errorf("dedup submit at full queue: %v", err)
	}
}

// TestManagerResubmitAfterCancel is the regression test for canceled
// queued flights lingering in the dedup index: resubmitting the same
// config must start a fresh simulation, not attach to the doomed
// flight and hang forever.
func TestManagerResubmitAfterCancel(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 1, QueueDepth: 16})
	defer drainManager(t, m)

	blocker := submitOne(t, m, "blocker", blockerCfg())
	waitState(t, m, blocker, StateRunning)
	cfg := tinyCfg(55)
	first := submitOne(t, m, "first", cfg)
	if _, err := m.Cancel(first); err != nil {
		t.Fatal(err)
	}

	second := submitOne(t, m, "second", cfg)
	st := waitState(t, m, second, StateDone)
	if st.Result == nil {
		t.Fatal("resubmitted job finished without a result")
	}
	if got, _ := m.Job(first); got.State != StateCanceled {
		t.Errorf("first job flipped to %s after resubmission", got.State)
	}
}

// TestManagerCancelDoesNotPoisonRunningFlight: canceling the only
// subscriber of a RUNNING flight must not fail a job that attaches to
// the same config while the simulation is still in flight.
func TestManagerCancelDoesNotPoisonRunningFlight(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 1, QueueDepth: 16})
	defer drainManager(t, m)

	orig := submitOne(t, m, "orig", blockerCfg())
	waitState(t, m, orig, StateRunning)
	if _, err := m.Cancel(orig); err != nil {
		t.Fatal(err)
	}
	attach := submitOne(t, m, "late-attacher", blockerCfg())
	st := waitState(t, m, attach, StateDone)
	if st.Result == nil {
		t.Fatal("late attacher finished without a result")
	}
	if !st.Deduped {
		t.Error("late attacher did not dedup against the running flight")
	}
}

// TestManagerRetention evicts the oldest terminal jobs beyond the cap
// while keeping their results reachable; live jobs are never evicted.
func TestManagerRetention(t *testing.T) {
	dir := t.TempDir()
	cache, err := sweep.OpenCache(filepath.Join(dir, "results.json"))
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(ManagerConfig{Workers: 2, Retention: 2, Cache: cache})
	defer drainManager(t, m)

	var ids []string
	var keys []string
	for i := uint64(0); i < 4; i++ {
		cfg := tinyCfg(100 + i)
		id := submitOne(t, m, "r", cfg)
		st := waitState(t, m, id, StateDone)
		ids = append(ids, id)
		keys = append(keys, st.Key)
	}

	if _, err := m.Job(ids[0]); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("oldest job survived retention: %v", err)
	}
	if _, err := m.Job(ids[3]); err != nil {
		t.Errorf("newest job evicted: %v", err)
	}
	if got := len(m.Jobs()); got != 2 {
		t.Errorf("%d jobs retained, want 2", got)
	}
	if met := m.Metrics(); met.JobsRetained != 2 {
		t.Errorf("jobs_retained = %d, want 2", met.JobsRetained)
	}
	// The evicted job's result is still content-addressable.
	if _, ok := cache.Lookup(keys[0]); !ok {
		t.Error("evicted job's result missing from the cache")
	}
}

// TestManagerCancelFreesQueueSlots: canceling queued jobs must free
// their bounded-queue slots immediately, not tombstone them until a
// worker gets around to skipping them.
func TestManagerCancelFreesQueueSlots(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 1, QueueDepth: 2})
	defer drainManager(t, m)

	blocker := submitOne(t, m, "blocker", blockerCfg())
	waitState(t, m, blocker, StateRunning)
	q1 := submitOne(t, m, "q1", tinyCfg(201))
	q2 := submitOne(t, m, "q2", tinyCfg(202))
	if _, err := m.Submit([]JobSpec{{Config: tinyCfg(203)}}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("queue not full: %v", err)
	}

	for _, id := range []string{q1, q2} {
		if _, err := m.Cancel(id); err != nil {
			t.Fatal(err)
		}
	}
	// Both slots must be free again while the blocker still runs.
	id := submitOne(t, m, "after-cancel", tinyCfg(203))
	waitState(t, m, id, StateDone)
}

// TestManagerDrainCancelsKeylessFlight: uncacheable (custom-mechanism)
// configs never enter the dedup index, but Drain must still cancel
// them while queued instead of running them during shutdown.
func TestManagerDrainCancelsKeylessFlight(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 1, QueueDepth: 16})

	blocker := submitOne(t, m, "blocker", blockerCfg())
	waitState(t, m, blocker, StateRunning)

	cfg := tinyCfg(301)
	cfg.Mechanism = sim.Custom
	cfg.CustomMechanism = func(channel int, spec dram.Spec, fast, def dram.TimingClass) (core.Mechanism, error) {
		return core.NewBaseline(def), nil
	}
	sts, err := m.Submit([]JobSpec{{Label: "keyless", Config: cfg}})
	if err != nil {
		t.Fatal(err)
	}
	if sts[0].Key != "" {
		t.Fatalf("custom-mechanism config got key %q", sts[0].Key)
	}

	drainManager(t, m)
	if st, _ := m.Job(sts[0].ID); st.State != StateCanceled {
		t.Errorf("key-less queued job drained to %s, want canceled", st.State)
	}
	if met := m.Metrics(); met.SimulationsRun != 1 {
		t.Errorf("simulations_run = %d, want 1 (the blocker only)", met.SimulationsRun)
	}
}

// TestManagerSubmitValidation rejects malformed submissions up front.
func TestManagerSubmitValidation(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 1})
	defer drainManager(t, m)
	if _, err := m.Submit(nil); err == nil {
		t.Error("empty submission accepted")
	}
	bad := tinyCfg(1)
	bad.Workloads = nil
	if _, err := m.Submit([]JobSpec{{Config: bad}}); err == nil {
		t.Error("invalid config accepted")
	}
}

// TestManagerBatchInternalDedup submits one batch containing the same
// config twice plus a distinct one: two flights, three jobs.
func TestManagerBatchInternalDedup(t *testing.T) {
	dir := t.TempDir()
	cache, err := sweep.OpenCache(filepath.Join(dir, "results.json"))
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(ManagerConfig{Workers: 2, QueueDepth: 8, Cache: cache})
	defer drainManager(t, m)

	sts, err := m.Submit([]JobSpec{
		{Label: "a", Config: tinyCfg(1)},
		{Label: "b", Config: tinyCfg(2)},
		{Label: "a-again", Config: tinyCfg(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	var a, dup JobStatus
	for _, st := range sts {
		final := waitState(t, m, st.ID, StateDone)
		switch st.Label {
		case "a":
			a = final
		case "a-again":
			dup = final
		}
	}
	if !reflect.DeepEqual(a.Result, dup.Result) {
		t.Error("duplicate batch entries returned different results")
	}
	met := m.Metrics()
	if met.SimulationsRun+met.CacheHits != 2 {
		t.Errorf("simulations+hits = %d, want 2 (batch dedup failed)", met.SimulationsRun+met.CacheHits)
	}
	if met.JobsCompleted != 3 {
		t.Errorf("jobs_completed = %d, want 3", met.JobsCompleted)
	}
}
