package server

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/sim"
	"repro/internal/sweep"
)

// remoteFunc is a scripted Remote backend for manager tests.
type remoteFunc struct {
	name  string
	slots int
	run   func(ctx context.Context, spec JobSpec) (JobStatus, error)
}

func (r *remoteFunc) Name() string { return r.name }
func (r *remoteFunc) Slots() int   { return r.slots }
func (r *remoteFunc) Run(ctx context.Context, spec JobSpec) (JobStatus, error) {
	return r.run(ctx, spec)
}

// simulatingRemote executes jobs for real in-process, standing in for a
// healthy peer daemon.
func simulatingRemote(name string, slots int, ran *atomic.Int64) *remoteFunc {
	return &remoteFunc{name: name, slots: slots, run: func(ctx context.Context, spec JobSpec) (JobStatus, error) {
		results, err := sweep.Run(ctx, []sweep.Job{{Label: spec.Label, Config: spec.Config}}, sweep.Options{Workers: 1})
		if err != nil {
			return JobStatus{}, &RemoteJobError{Endpoint: name, State: StateFailed, Message: err.Error()}
		}
		if ran != nil {
			ran.Add(1)
		}
		return JobStatus{State: StateDone, Result: &results[0]}, nil
	}}
}

// TestManagerRemoteExecution runs a pure dispatch front (no local
// workers) against a healthy fake peer: every job must complete with
// the same result a local run produces, counted as a remote simulation.
func TestManagerRemoteExecution(t *testing.T) {
	var ran atomic.Int64
	m := NewManager(ManagerConfig{
		Workers: NoLocalWorkers,
		Remotes: []Remote{simulatingRemote("peer-a", 2, &ran)},
	})
	defer drainManager(t, m)

	cfgs := []sim.Config{tinyCfg(1), tinyCfg(2), tinyCfg(3)}
	ids := make([]string, len(cfgs))
	for i, cfg := range cfgs {
		ids[i] = submitOne(t, m, fmt.Sprintf("job-%d", i), cfg)
	}
	for i, id := range ids {
		st := waitState(t, m, id, StateDone)
		want, err := sweep.Run(context.Background(), []sweep.Job{{Config: cfgs[i]}}, sweep.Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if st.Result == nil || st.Result.CPUCycles != want[0].CPUCycles {
			t.Errorf("job %d: remote result differs from local run", i)
		}
	}
	mt := m.Metrics()
	if mt.RemoteSimulations != 3 || mt.SimulationsRun != 0 {
		t.Errorf("remote=%d local=%d simulations, want 3/0", mt.RemoteSimulations, mt.SimulationsRun)
	}
	if ran.Load() != 3 {
		t.Errorf("fake peer ran %d jobs, want 3", ran.Load())
	}
}

// TestManagerRemoteJobFailureIsTerminal: a *RemoteJobError means the
// simulation itself failed on the peer — the flight fails instead of
// being retried (an identical retry would fail identically).
func TestManagerRemoteJobFailureIsTerminal(t *testing.T) {
	peer := &remoteFunc{name: "peer-a", slots: 1, run: func(ctx context.Context, spec JobSpec) (JobStatus, error) {
		return JobStatus{}, &RemoteJobError{Endpoint: "peer-a", JobID: "j1", State: StateFailed, Message: "bad workload"}
	}}
	m := NewManager(ManagerConfig{Workers: NoLocalWorkers, Remotes: []Remote{peer}})
	defer drainManager(t, m)

	id := submitOne(t, m, "doomed", tinyCfg(9))
	st := waitState(t, m, id, StateFailed)
	if st.Error == "" {
		t.Error("failed job carries no error message")
	}
	if mt := m.Metrics(); mt.JobsRequeued != 0 {
		t.Errorf("simulation failure was requeued %d times", mt.JobsRequeued)
	}
}

// TestManagerPeerLossDegradesToLocal: when the only peer dies and no
// other slot exists, the retiring slot must execute the in-flight
// flight locally and keep serving the queue, so queued jobs are never
// orphaned.
func TestManagerPeerLossDegradesToLocal(t *testing.T) {
	dead := &remoteFunc{name: "peer-dead", slots: 1, run: func(ctx context.Context, spec JobSpec) (JobStatus, error) {
		return JobStatus{}, errors.New("connection refused")
	}}
	m := NewManager(ManagerConfig{Workers: NoLocalWorkers, Remotes: []Remote{dead}})
	defer drainManager(t, m)

	a := submitOne(t, m, "a", tinyCfg(11))
	b := submitOne(t, m, "b", tinyCfg(12))
	waitState(t, m, a, StateDone)
	waitState(t, m, b, StateDone)
	mt := m.Metrics()
	if mt.SimulationsRun != 2 || mt.RemoteSimulations != 0 {
		t.Errorf("local=%d remote=%d simulations, want 2/0", mt.SimulationsRun, mt.RemoteSimulations)
	}
}

// TestManagerIneligiblePeerKeepsSlot: a peer that rejects a job as
// ineligible (e.g. it cannot see the config's trace files) is healthy —
// the flight must complete via local execution and the slot must keep
// serving instead of retiring as if the peer had died.
func TestManagerIneligiblePeerKeepsSlot(t *testing.T) {
	var rejections atomic.Int64
	picky := &remoteFunc{name: "peer-picky", slots: 1, run: func(ctx context.Context, spec JobSpec) (JobStatus, error) {
		rejections.Add(1)
		return JobStatus{}, fmt.Errorf("client: trace file /x outside root: %w", ErrIneligible)
	}}
	m := NewManager(ManagerConfig{Workers: NoLocalWorkers, Remotes: []Remote{picky}})
	defer drainManager(t, m)

	a := submitOne(t, m, "a", tinyCfg(31))
	b := submitOne(t, m, "b", tinyCfg(32))
	waitState(t, m, a, StateDone)
	waitState(t, m, b, StateDone)
	mt := m.Metrics()
	if mt.SimulationsRun != 2 || mt.JobsRequeued != 0 {
		t.Errorf("local=%d requeued=%d, want 2/0 (slot must survive and run locally)", mt.SimulationsRun, mt.JobsRequeued)
	}
	// Both flights reached the peer: the slot was never retired.
	if rejections.Load() != 2 {
		t.Errorf("peer saw %d flights, want 2", rejections.Load())
	}
}

// TestManagerPeerLossFailsOver: a flight whose peer vanishes mid-run is
// handed back to the queue and completed by the surviving peer.
func TestManagerPeerLossFailsOver(t *testing.T) {
	deadHit := make(chan struct{})
	var once atomic.Bool
	dead := &remoteFunc{name: "peer-dead", slots: 1, run: func(ctx context.Context, spec JobSpec) (JobStatus, error) {
		if once.CompareAndSwap(false, true) {
			close(deadHit)
		}
		return JobStatus{}, errors.New("connection reset")
	}}
	// The healthy peer holds its first flight until the dead peer has
	// failed once, so the dead peer deterministically receives a flight.
	gate := make(chan struct{})
	var gated atomic.Bool
	var ran atomic.Int64
	healthy := simulatingRemote("peer-ok", 1, &ran)
	inner := healthy.run
	healthy.run = func(ctx context.Context, spec JobSpec) (JobStatus, error) {
		if gated.CompareAndSwap(false, true) {
			<-gate
		}
		return inner(ctx, spec)
	}
	m := NewManager(ManagerConfig{Workers: NoLocalWorkers, Remotes: []Remote{dead, healthy}})
	defer drainManager(t, m)

	a := submitOne(t, m, "a", tinyCfg(21))
	b := submitOne(t, m, "b", tinyCfg(22))
	<-deadHit
	close(gate)
	waitState(t, m, a, StateDone)
	waitState(t, m, b, StateDone)
	mt := m.Metrics()
	if mt.JobsRequeued < 1 {
		t.Errorf("no flight was requeued after peer loss (requeued=%d)", mt.JobsRequeued)
	}
	if mt.RemoteSimulations != 2 {
		t.Errorf("remote simulations = %d, want 2", mt.RemoteSimulations)
	}
}
