package server

import "sort"

// schedQueue is the staging queue of the multi-tenant gateway: the
// single FIFO channel the manager used to feed its workers from is
// replaced by one FIFO subqueue per tenant plus a deficit-round-robin
// pick, so one tenant's giant campaign can no longer starve everyone
// behind it. Scheduling properties:
//
//   - strict priority between classes: queued work of a higher
//     Tenant.Priority class is always picked before lower classes,
//   - weighted fairness within a class: while several tenants have
//     queued work, each is picked in proportion to its Weight (deficit
//     counters replenished by weight, spent one per pick),
//   - per-tenant concurrency caps: a tenant at its MaxConcurrent is
//     skipped — its flights stay queued — without blocking anyone else,
//   - FIFO within a tenant, preserving the old single-caller behavior
//     exactly when only one (anonymous) tenant exists.
//
// The queue is owned by the Manager and every method is called with
// Manager.mu held; workers block on Manager.qcond when pick returns
// nil (empty, or every queued tenant is at its cap).
type schedQueue struct {
	capacity int
	total    int // queued flights across all tenants
	subs     map[string]*tenantSub
	active   []*tenantSub // tenants with queued flights, activation order
	seq      uint64       // arrival stamp, for newest-first preemption
}

// tenantSub is one tenant's subqueue plus its scheduling state.
type tenantSub struct {
	name          string
	weight        int
	priority      int
	maxConcurrent int
	flights       []*flight
	deficit       int
	running       int // flights picked and not yet finished or handed back
}

func newSchedQueue(capacity int) *schedQueue {
	return &schedQueue{capacity: capacity, subs: map[string]*tenantSub{}}
}

// sub returns (allocating on first use) the tenant's subqueue,
// refreshing its scheduling parameters from t so registry edits across
// restarts take effect.
func (q *schedQueue) sub(t Tenant) *tenantSub {
	s := q.subs[t.Name]
	if s == nil {
		s = &tenantSub{name: t.Name}
		q.subs[t.Name] = s
	}
	s.weight = t.weight()
	s.priority = t.Priority
	s.maxConcurrent = t.MaxConcurrent
	return s
}

// push queues f at the tail of its tenant's subqueue. The caller has
// already checked capacity (or preempted to make room).
func (q *schedQueue) push(f *flight, owner Tenant) {
	s := q.sub(owner)
	q.seq++
	f.seq = q.seq
	if len(s.flights) == 0 {
		q.active = append(q.active, s)
	}
	s.flights = append(s.flights, f)
	q.total++
}

// eligible reports whether s has queued work the scheduler may start.
func (s *tenantSub) eligible() bool {
	return len(s.flights) > 0 && (s.maxConcurrent <= 0 || s.running < s.maxConcurrent)
}

// pick dequeues the next flight to run: the highest eligible priority
// class, deficit-weighted round robin within it. It returns nil when
// nothing is startable (queue empty, or every tenant with work is at
// its concurrency cap); the picked flight's tenant is accounted one
// running slot, released via release().
func (q *schedQueue) pick() *flight {
	best, any := 0, false
	for _, s := range q.active {
		if s.eligible() && (!any || s.priority > best) {
			best, any = s.priority, true
		}
	}
	if !any {
		return nil
	}
	// Two passes: serve the first best-class tenant with deficit left;
	// when the whole class is spent, replenish each tenant by its
	// weight and serve again. A tenant staying busy therefore gets
	// weight picks per replenish round — proportional share.
	for pass := 0; pass < 2; pass++ {
		for _, s := range q.active {
			if !s.eligible() || s.priority != best {
				continue
			}
			if s.deficit > 0 {
				return q.serve(s)
			}
		}
		for _, s := range q.active {
			if s.eligible() && s.priority == best {
				s.deficit += s.weight
			}
		}
	}
	return nil // unreachable: replenish guarantees a positive deficit
}

// serve pops the head of s's subqueue and spends one deficit unit.
func (q *schedQueue) serve(s *tenantSub) *flight {
	f := s.flights[0]
	copy(s.flights, s.flights[1:])
	s.flights = s.flights[:len(s.flights)-1]
	s.deficit--
	s.running++
	q.total--
	if len(s.flights) == 0 {
		q.deactivate(s)
	}
	return f
}

// release returns the running slot a picked flight held, on finish or
// hand-back.
func (q *schedQueue) release(f *flight) {
	if s := q.subs[f.tenant]; s != nil && s.running > 0 {
		s.running--
	}
}

// remove drops a canceled flight from its subqueue so its slot frees
// immediately instead of tombstoning the queue. Reports whether the
// flight was queued.
func (q *schedQueue) remove(f *flight) bool {
	s := q.subs[f.tenant]
	if s == nil {
		return false
	}
	for i, queued := range s.flights {
		if queued == f {
			s.flights = append(s.flights[:i], s.flights[i+1:]...)
			q.total--
			if len(s.flights) == 0 {
				q.deactivate(s)
			}
			return true
		}
	}
	return false
}

// deactivate removes an emptied subqueue from the active rotation and
// resets its deficit, so a returning tenant starts a fresh round
// instead of cashing in banked credit.
func (q *schedQueue) deactivate(s *tenantSub) {
	s.deficit = 0
	for i, a := range q.active {
		if a == s {
			q.active = append(q.active[:i], q.active[i+1:]...)
			return
		}
	}
}

// preemptible returns up to need queued flights of classes strictly
// below priority, lowest class first and newest arrival first within a
// class — the flights a higher-priority submission may preempt when
// the queue is full. Returns nil when fewer than need exist (partial
// preemption would cancel work without making room).
func (q *schedQueue) preemptible(need, priority int) []*flight {
	var victims []*flight
	for _, s := range q.subs {
		for _, f := range s.flights {
			if f.priority < priority {
				victims = append(victims, f)
			}
		}
	}
	if len(victims) < need {
		return nil
	}
	sort.Slice(victims, func(i, j int) bool {
		if victims[i].priority != victims[j].priority {
			return victims[i].priority < victims[j].priority
		}
		return victims[i].seq > victims[j].seq
	})
	return victims[:need]
}

// queuedFor reports how many flights tenant name has queued.
func (q *schedQueue) queuedFor(name string) int {
	if s := q.subs[name]; s != nil {
		return len(s.flights)
	}
	return 0
}

// runningFor reports how many picked flights tenant name has in flight.
func (q *schedQueue) runningFor(name string) int {
	if s := q.subs[name]; s != nil {
		return s.running
	}
	return 0
}
