package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/prof"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// phaseCfg is analysisCfg with the sampled phase profiler on.
func phaseCfg(seed uint64) sim.Config {
	cfg := analysisCfg(seed)
	cfg.Analysis.PhaseProfile = true
	return cfg
}

// sseStream reads one SSE connection frame by frame, so tests can stop
// mid-stream to model a dropped connection.
type sseStream struct {
	body io.ReadCloser
	sc   *bufio.Scanner
}

func openSSE(t *testing.T, url string, lastEventID uint64) *sseStream {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID > 0 {
		req.Header.Set("Last-Event-ID", fmt.Sprint(lastEventID))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("GET %s: HTTP %d: %s", url, resp.StatusCode, body)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	return &sseStream{body: resp.Body, sc: sc}
}

// next returns the next frame; ok is false at EOF.
func (s *sseStream) next(t *testing.T) (sseEvent, bool) {
	t.Helper()
	var cur sseEvent
	for s.sc.Scan() {
		line := s.sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.event != "" {
				return cur, true
			}
		}
	}
	return sseEvent{}, false
}

func (s *sseStream) close() { _ = s.body.Close() }

// applyFrame folds one epochs/summary frame into the accumulator and
// returns its sequence number.
func applyFrame(t *testing.T, acc *analysis.StreamAccumulator, ev sseEvent) uint64 {
	t.Helper()
	var b analysis.StreamBatch
	if err := json.Unmarshal([]byte(ev.data), &b); err != nil {
		t.Fatalf("bad %s payload %q: %v", ev.event, ev.data, err)
	}
	acc.Apply(b)
	seq, err := strconv.ParseUint(ev.id, 10, 64)
	if err != nil {
		t.Fatalf("frame id %q is not a sequence number", ev.id)
	}
	if seq != b.Seq {
		t.Fatalf("frame id %d != batch seq %d", seq, b.Seq)
	}
	return seq
}

// fetchAnalysisJSON returns the canonical bytes of /v1/analysis/{id}.
func fetchAnalysisJSON(t *testing.T, d *testDaemon, id string) []byte {
	t.Helper()
	var rep analysis.Report
	if code := doJSON(t, http.MethodGet, d.url("/v1/analysis/"+id), nil, &rep); code != http.StatusOK {
		t.Fatalf("GET /v1/analysis/%s: HTTP %d", id, code)
	}
	blob, err := json.Marshal(&rep)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestHTTPAnalysisStreamLiveMatchesFinal is the byte-identity proof for
// the live path: a subscriber that joins while the job is still queued
// receives every epoch batch as the simulation produces them, and the
// report reconstructed purely from those streamed frames marshals to
// exactly the bytes /v1/analysis/{id} serves afterwards.
func TestHTTPAnalysisStreamLiveMatchesFinal(t *testing.T) {
	d := startDaemon(t, "", 1, 16)
	blocker := submitHTTP(t, d, JobSpec{Config: blockerCfg()})[0].ID
	id := submitHTTP(t, d, JobSpec{Label: "live", Config: phaseCfg(430)})[0].ID

	// Subscribe before the job starts running: the broker exists from
	// submission, so this stream sees the whole run live.
	s := openSSE(t, d.url("/v1/analysis/"+id+"/stream"), 0)
	defer s.close()

	acc := analysis.NewStreamAccumulator()
	var lastSeq uint64
	var frames int
	for {
		ev, ok := s.next(t)
		if !ok {
			t.Fatal("stream ended without a done frame")
		}
		switch ev.event {
		case "epochs", "summary":
			seq := applyFrame(t, acc, ev)
			if seq <= lastSeq {
				t.Fatalf("sequence went backwards: %d after %d", seq, lastSeq)
			}
			lastSeq = seq
			frames++
		case "done":
			goto finished
		case "error":
			t.Fatalf("stream error frame: %s", ev.data)
		default:
			t.Fatalf("unexpected event %q", ev.event)
		}
	}
finished:
	if frames == 0 {
		t.Fatal("no epoch batches streamed")
	}
	rep, err := acc.Report()
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	pollDone(t, d, id)
	if final := fetchAnalysisJSON(t, d, id); !bytes.Equal(streamed, final) {
		t.Errorf("streamed reconstruction differs from final report:\nstream: %s\nfinal:  %s", streamed, final)
	}
	pollDone(t, d, blocker)
}

// TestHTTPAnalysisStreamResume drops the connection mid-stream and
// resumes with Last-Event-ID: the union of the frames from both
// connections must still reconstruct the final report exactly — the
// catch-up snapshot heals whatever the dropped connection missed.
func TestHTTPAnalysisStreamResume(t *testing.T) {
	d := startDaemon(t, "", 1, 16)
	blocker := submitHTTP(t, d, JobSpec{Config: blockerCfg()})[0].ID
	id := submitHTTP(t, d, JobSpec{Label: "resume", Config: analysisCfg(431)})[0].ID

	acc := analysis.NewStreamAccumulator()
	var lastSeq uint64

	// First connection: read at most two batches, then drop it.
	s := openSSE(t, d.url("/v1/analysis/"+id+"/stream"), 0)
	for read := 0; read < 2; {
		ev, ok := s.next(t)
		if !ok || ev.event == "done" {
			break
		}
		if ev.event == "epochs" || ev.event == "summary" {
			lastSeq = applyFrame(t, acc, ev)
			read++
		}
	}
	s.close()
	if lastSeq == 0 {
		t.Fatal("first connection saw no batches")
	}

	// Second connection resumes past the last applied frame.
	s = openSSE(t, d.url("/v1/analysis/"+id+"/stream"), lastSeq)
	defer s.close()
	for {
		ev, ok := s.next(t)
		if !ok {
			t.Fatal("resumed stream ended without a done frame")
		}
		if ev.event == "done" {
			break
		}
		if ev.event == "error" {
			t.Fatalf("stream error frame: %s", ev.data)
		}
		seq := applyFrame(t, acc, ev)
		if seq <= lastSeq {
			t.Fatalf("resumed frame seq %d not after cursor %d", seq, lastSeq)
		}
		lastSeq = seq
	}
	rep, err := acc.Report()
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	pollDone(t, d, id)
	if final := fetchAnalysisJSON(t, d, id); !bytes.Equal(streamed, final) {
		t.Errorf("resumed reconstruction differs from final report")
	}
	pollDone(t, d, blocker)
}

// TestHTTPJobEventsResumeNoGaps drops the job-events SSE connection
// after the first frames and resumes with Last-Event-ID: the combined
// sequence must be exactly 1..N with no gap and no duplicate.
func TestHTTPJobEventsResumeNoGaps(t *testing.T) {
	d := startDaemon(t, "", 1, 16)
	blocker := submitHTTP(t, d, JobSpec{Config: blockerCfg()})[0].ID
	id := submitHTTP(t, d, JobSpec{Config: tinyCfg(432)})[0].ID

	var seqs []uint64
	s := openSSE(t, d.url("/v1/jobs/"+id+"/events"), 0)
	ev, ok := s.next(t)
	if !ok || ev.event != "status" {
		t.Fatalf("first frame = %+v, want a status", ev)
	}
	first, err := strconv.ParseUint(ev.id, 10, 64)
	if err != nil {
		t.Fatalf("frame id %q: %v", ev.id, err)
	}
	seqs = append(seqs, first)
	s.close() // dropped connection

	s = openSSE(t, d.url("/v1/jobs/"+id+"/events"), first)
	defer s.close()
	for {
		ev, ok := s.next(t)
		if !ok {
			t.Fatal("resumed stream ended without done")
		}
		if ev.event == "done" {
			break
		}
		if ev.event != "status" {
			t.Fatalf("unexpected event %q", ev.event)
		}
		seq, err := strconv.ParseUint(ev.id, 10, 64)
		if err != nil {
			t.Fatalf("frame id %q: %v", ev.id, err)
		}
		seqs = append(seqs, seq)
	}
	for i, seq := range seqs {
		if seq != uint64(i+1) {
			t.Fatalf("event sequence %v is not gap-free 1..N", seqs)
		}
	}
	var last JobStatus
	if code := doJSON(t, http.MethodGet, d.url("/v1/jobs/"+id), nil, &last); code != http.StatusOK || last.State != StateDone {
		t.Fatalf("job %s: HTTP %d state %s", id, code, last.State)
	}
	pollDone(t, d, blocker)
}

// TestAnalysisSurvivesEvictionAndRestart is the durability proof: a
// job's analysis stays resolvable by its original ID after retention
// evicts the job record, and again after the daemon restarts on the
// same cache — through the job journal written beside the cache file.
func TestAnalysisSurvivesEvictionAndRestart(t *testing.T) {
	dir := t.TempDir()
	cachePath := filepath.Join(dir, "results.json")
	d := startDaemonRetain(t, cachePath, 2)

	id := submitHTTP(t, d, JobSpec{Label: "durable", Config: phaseCfg(440)})[0].ID
	pollDone(t, d, id)
	want := fetchAnalysisJSON(t, d, id)

	// Push the job out of the retained table.
	for seed := uint64(441); seed < 444; seed++ {
		pollDone(t, d, submitHTTP(t, d, JobSpec{Config: tinyCfg(seed)})[0].ID)
	}
	if code := doJSON(t, http.MethodGet, d.url("/v1/jobs/"+id), nil, nil); code != http.StatusNotFound {
		t.Fatalf("evicted job still queryable: HTTP %d", code)
	}
	if got := fetchAnalysisJSON(t, d, id); !bytes.Equal(got, want) {
		t.Error("analysis after eviction differs from the original report")
	}
	assertStreamReplays(t, d, id, want)
	d.stop()

	// Restart on the same cache: the journal must resolve the old ID and
	// new IDs must not collide with journaled ones.
	d2 := startDaemonRetain(t, cachePath, 2)
	if got := fetchAnalysisJSON(t, d2, id); !bytes.Equal(got, want) {
		t.Error("analysis after restart differs from the original report")
	}
	assertStreamReplays(t, d2, id, want)

	met := d2.m.Metrics()
	if met.Analysis == nil || met.Analysis.Reports == 0 {
		t.Error("restarted daemon lost the fleet analysis aggregates")
	}
	fresh := submitHTTP(t, d2, JobSpec{Config: tinyCfg(450)})[0].ID
	var oldN, newN uint64
	fmt.Sscanf(id, "job-%d", &oldN)
	fmt.Sscanf(fresh, "job-%d", &newN)
	if newN <= oldN {
		t.Errorf("restarted daemon reissued ID %s at or below journaled %s", fresh, id)
	}
	pollDone(t, d2, fresh)
}

// startDaemonRetain is startDaemon with an explicit retention bound.
func startDaemonRetain(t *testing.T, cachePath string, retain int) *testDaemon {
	t.Helper()
	cache, err := sweep.OpenCache(cachePath)
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(ManagerConfig{Workers: 1, QueueDepth: 16, Cache: cache, Retention: retain})
	d := &testDaemon{ts: httptest.NewServer(New(m)), m: m}
	t.Cleanup(d.stop)
	return d
}

// assertStreamReplays checks the stream endpoint serves a terminal
// replay for id that reconstructs byte-identically to want.
func assertStreamReplays(t *testing.T, d *testDaemon, id string, want []byte) {
	t.Helper()
	s := openSSE(t, d.url("/v1/analysis/"+id+"/stream"), 0)
	defer s.close()
	acc := analysis.NewStreamAccumulator()
	for {
		ev, ok := s.next(t)
		if !ok {
			t.Fatal("terminal stream ended without done")
		}
		if ev.event == "done" {
			break
		}
		if ev.event == "error" {
			t.Fatalf("stream error frame: %s", ev.data)
		}
		applyFrame(t, acc, ev)
	}
	rep, err := acc.Report()
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("terminal stream replay differs from the stored report")
	}
}

// TestMetricsPerWorkerPhases checks the per-worker /metrics breakdown:
// a phase-profiled flight creates a "local" row whose phase block
// carries every profiled phase with nonzero calls, and a duplicate
// submission served from the cache creates a "cache" row without
// claiming a second analysis report.
func TestMetricsPerWorkerPhases(t *testing.T) {
	d := startDaemon(t, filepath.Join(t.TempDir(), "results.json"), 1, 16)
	cfg := phaseCfg(460)
	pollDone(t, d, submitHTTP(t, d, JobSpec{Config: cfg})[0].ID)
	pollDone(t, d, submitHTTP(t, d, JobSpec{Config: cfg})[0].ID) // cache hit

	var met Metrics
	if code := doJSON(t, http.MethodGet, d.url("/metrics"), nil, &met); code != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", code)
	}
	byName := map[string]WorkerMetrics{}
	for _, w := range met.Workers {
		byName[w.Name] = w
	}
	local, ok := byName["local"]
	if !ok {
		t.Fatalf("no local worker row in %+v", met.Workers)
	}
	if local.Flights != 1 || local.AnalysisReports != 1 {
		t.Errorf("local: flights=%d reports=%d, want 1/1", local.Flights, local.AnalysisReports)
	}
	for p := prof.Phase(0); p < prof.NumPhases; p++ {
		pm, ok := local.Phases[p.String()]
		if !ok {
			t.Errorf("local phases missing %s: %+v", p, local.Phases)
			continue
		}
		if pm.Calls == 0 {
			t.Errorf("phase %s has zero calls", p)
		}
		if pm.Samples > 0 && (pm.AvgNs <= 0 || pm.EstimatedMs <= 0) {
			t.Errorf("phase %s sampled but avg/estimate not positive: %+v", p, pm)
		}
	}
	cacheRow, ok := byName["cache"]
	if !ok {
		t.Fatalf("no cache worker row in %+v", met.Workers)
	}
	if cacheRow.Flights != 1 || cacheRow.CacheHits != 1 {
		t.Errorf("cache: flights=%d hits=%d, want 1/1", cacheRow.Flights, cacheRow.CacheHits)
	}
}

// TestStreamNoAnalysisJob: streaming a job whose config never enabled
// analysis fails fast with a 404 instead of hanging.
func TestStreamNoAnalysisJob(t *testing.T) {
	d := startDaemon(t, "", 1, 16)
	id := submitHTTP(t, d, JobSpec{Config: tinyCfg(470)})[0].ID
	pollDone(t, d, id)

	req, err := http.NewRequest(http.MethodGet, d.url("/v1/analysis/"+id+"/stream"), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("analysis-less stream: HTTP %d, want 404", resp.StatusCode)
	}

	// Unknown job is a 404 too.
	resp2, err := http.Get(d.url("/v1/analysis/job-999999/stream"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job stream: HTTP %d, want 404", resp2.StatusCode)
	}
}
