package server

import (
	_ "embed"
	"net/http"
)

// dashboardHTML is the entire dashboard: one self-contained page with
// inline CSS/JS and no external assets, so the daemon stays a single
// binary. The page polls the same JSON endpoints the CLI uses
// (/healthz, /metrics, /v1/jobs, /v1/analysis/{id}) every two seconds
// and renders campaign progress, fleet throughput, and per-job
// row-hit-rate sparklines from the perf-analyzer epoch timelines.
//
//go:embed dashboard.html
var dashboardHTML []byte

func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(dashboardHTML)
}
