package server

import (
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// analysisCfg is tinyCfg with the perf analyzer switched on, rings
// sized so nothing is dropped or clamped at this run length.
func analysisCfg(seed uint64) sim.Config {
	cfg := tinyCfg(seed)
	cfg.Analysis = &analysis.Config{Enabled: true, EpochCycles: 10_000, MaxEpochs: 1024}
	return cfg
}

// TestMetricsCacheHitRate is the regression test for the CacheHitRate
// formula: remote simulations are resolutions too, so they belong in
// the denominator. One flight runs on a peer, a second identical
// submission hits the cache — the rate must be 1/2, not the 1/1 the
// old doc comment (cache_hits / (cache_hits + simulations_run))
// implied.
func TestMetricsCacheHitRate(t *testing.T) {
	cache, err := sweep.OpenCache(filepath.Join(t.TempDir(), "results.json"))
	if err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int64
	m := NewManager(ManagerConfig{
		Workers: NoLocalWorkers,
		Remotes: []Remote{simulatingRemote("peer-a", 1, &ran)},
		Cache:   cache,
	})
	defer drainManager(t, m)

	cfg := tinyCfg(401)
	first := submitOne(t, m, "remote", cfg)
	waitState(t, m, first, StateDone)
	// Same config again: the flight's result is already in the in-memory
	// cache, so this resolves as a cache hit without touching the peer.
	second := submitOne(t, m, "cached", cfg)
	waitState(t, m, second, StateDone)

	met := m.Metrics()
	if met.RemoteSimulations != 1 || met.SimulationsRun != 0 || met.CacheHits != 1 {
		t.Fatalf("remote=%d local=%d hits=%d, want 1/0/1",
			met.RemoteSimulations, met.SimulationsRun, met.CacheHits)
	}
	want := float64(met.CacheHits) / float64(met.CacheHits+met.SimulationsRun+met.RemoteSimulations)
	if met.CacheHitRate != want {
		t.Errorf("cache_hit_rate = %g, want %g (remote simulations must count as resolutions)",
			met.CacheHitRate, want)
	}
	if met.CacheHitRate != 0.5 {
		t.Errorf("cache_hit_rate = %g, want 0.5", met.CacheHitRate)
	}
}

// TestHTTPAnalysisEndpoint drives the full analysis surface over HTTP:
// a done analysis-enabled job serves its report on /v1/analysis/{id}
// (and the /analysis/{id} alias) with epoch timelines that sum to the
// run's own row-outcome stats, and every absence — unknown job, job
// still queued, job without analysis — is a distinct 404.
func TestHTTPAnalysisEndpoint(t *testing.T) {
	d := startDaemon(t, "", 1, 16)

	cfg := analysisCfg(410)
	id := submitHTTP(t, d, JobSpec{Label: "analyzed", Config: cfg})[0].ID
	st := pollDone(t, d, id)
	if st.Result == nil || st.Result.Analysis == nil {
		t.Fatal("analysis-enabled job finished without a report")
	}

	for _, path := range []string{"/v1/analysis/", "/analysis/"} {
		var rep analysis.Report
		if code := doJSON(t, http.MethodGet, d.url(path+id), nil, &rep); code != http.StatusOK {
			t.Fatalf("GET %s%s: HTTP %d", path, id, code)
		}
		if rep.Totals != st.Result.Analysis.Totals {
			t.Errorf("%s totals differ from the job's result", path)
		}
		// The epoch timelines must account for every classified request:
		// summed per-epoch row outcomes equal the simulator's own stats.
		var hits, misses, conflicts uint64
		for _, ch := range rep.Channels {
			for _, e := range ch.Epochs {
				hits += e.RowHits
				misses += e.RowMisses
				conflicts += e.RowConflicts
			}
		}
		if hits != st.Result.Controller.RowHits ||
			misses != st.Result.Controller.RowMisses ||
			conflicts != st.Result.Controller.RowConflicts {
			t.Errorf("%s epoch sums h/m/c = %d/%d/%d, controller stats %d/%d/%d",
				path, hits, misses, conflicts,
				st.Result.Controller.RowHits, st.Result.Controller.RowMisses,
				st.Result.Controller.RowConflicts)
		}
	}

	// Unknown job.
	if code := doJSON(t, http.MethodGet, d.url("/v1/analysis/job-999999"), nil, nil); code != http.StatusNotFound {
		t.Errorf("unknown job: HTTP %d, want 404", code)
	}
	// Done job whose config never enabled analysis.
	plain := submitHTTP(t, d, JobSpec{Config: tinyCfg(411)})[0].ID
	pollDone(t, d, plain)
	var apiErr struct {
		Error string `json:"error"`
	}
	if code := doJSON(t, http.MethodGet, d.url("/v1/analysis/"+plain), nil, &apiErr); code != http.StatusNotFound {
		t.Errorf("analysis-less job: HTTP %d, want 404", code)
	}
	if apiErr.Error == "" {
		t.Error("analysis-less 404 carries no explanation")
	}
	// Job not finished yet: queue one behind a blocker.
	blocker := submitHTTP(t, d, JobSpec{Config: blockerCfg()})[0].ID
	queued := submitHTTP(t, d, JobSpec{Config: analysisCfg(412)})[0].ID
	if code := doJSON(t, http.MethodGet, d.url("/v1/analysis/"+queued), nil, &apiErr); code != http.StatusNotFound {
		t.Errorf("queued job: HTTP %d, want 404", code)
	}
	pollDone(t, d, blocker)
	pollDone(t, d, queued)
}

// TestMetricsFleetAnalysis checks the /metrics fleet aggregates: absent
// until an analysis-enabled flight completes, then the event-exact sum
// of every contributing report's totals.
func TestMetricsFleetAnalysis(t *testing.T) {
	d := startDaemon(t, "", 2, 16)

	var met Metrics
	doJSON(t, http.MethodGet, d.url("/metrics"), nil, &met)
	if met.Analysis != nil {
		t.Fatal("analysis block present before any analysis-enabled flight")
	}
	// A plain flight must not create the block either.
	pollDone(t, d, submitHTTP(t, d, JobSpec{Config: tinyCfg(420)})[0].ID)
	doJSON(t, http.MethodGet, d.url("/metrics"), nil, &met)
	if met.Analysis != nil {
		t.Fatal("analysis block present after an analysis-less flight")
	}

	var wantHits, wantMisses, wantConf, wantLookups, wantCCHits uint64
	for _, seed := range []uint64{421, 422} {
		st := pollDone(t, d, submitHTTP(t, d, JobSpec{Config: analysisCfg(seed)})[0].ID)
		tot := st.Result.Analysis.Totals
		wantHits += tot.RowHits
		wantMisses += tot.RowMisses
		wantConf += tot.RowConflicts
		wantLookups += tot.CCLookups
		wantCCHits += tot.CCHits
	}

	doJSON(t, http.MethodGet, d.url("/metrics"), nil, &met)
	a := met.Analysis
	if a == nil {
		t.Fatal("no analysis block after two analysis-enabled flights")
	}
	if a.Reports != 2 {
		t.Errorf("reports = %d, want 2", a.Reports)
	}
	if a.RowHits != wantHits || a.RowMisses != wantMisses || a.RowConflicts != wantConf {
		t.Errorf("fleet rows h/m/c = %d/%d/%d, want %d/%d/%d",
			a.RowHits, a.RowMisses, a.RowConflicts, wantHits, wantMisses, wantConf)
	}
	if a.CCLookups != wantLookups || a.CCHits != wantCCHits {
		t.Errorf("fleet cc = %d/%d, want %d/%d", a.CCLookups, a.CCHits, wantLookups, wantCCHits)
	}
	if total := wantHits + wantMisses + wantConf; total > 0 {
		if want := float64(wantHits) / float64(total); a.RowHitRate != want {
			t.Errorf("fleet row_hit_rate = %g, want %g", a.RowHitRate, want)
		}
	}
}

// TestHTTPDashboard serves the embedded page.
func TestHTTPDashboard(t *testing.T) {
	d := startDaemon(t, "", 1, 16)
	resp, err := http.Get(d.url("/dashboard"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dashboard: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/html; charset=utf-8" {
		t.Errorf("dashboard content type %q", ct)
	}
	if len(dashboardHTML) == 0 {
		t.Fatal("embedded dashboard is empty")
	}
}

// noFlushWriter hides httptest.ResponseRecorder's Flusher so the SSE
// handler sees a writer that cannot stream.
type noFlushWriter struct {
	rec *httptest.ResponseRecorder
}

func (w *noFlushWriter) Header() http.Header         { return w.rec.Header() }
func (w *noFlushWriter) Write(b []byte) (int, error) { return w.rec.Write(b) }
func (w *noFlushWriter) WriteHeader(code int)        { w.rec.WriteHeader(code) }

// TestHTTPSSENonFlushableWriter: a front end that buffers responses
// (no http.Flusher) cannot carry SSE — the handler must answer with an
// explicit 500 instead of silently serving a stream that never moves.
func TestHTTPSSENonFlushableWriter(t *testing.T) {
	d := startDaemon(t, "", 1, 16)
	blocker := submitHTTP(t, d, JobSpec{Config: blockerCfg()})[0]

	req := httptest.NewRequest(http.MethodGet, "/v1/jobs/"+blocker.ID+"/events", nil)
	w := &noFlushWriter{rec: httptest.NewRecorder()}
	New(d.m).ServeHTTP(w, req)
	if w.rec.Code != http.StatusInternalServerError {
		t.Errorf("non-flushable SSE: HTTP %d, want 500", w.rec.Code)
	}
	if w.rec.Body.Len() == 0 {
		t.Error("500 response carries no error body")
	}
	pollDone(t, d, blocker.ID)
}

// TestMetricsConcurrent hammers Metrics() while jobs are submitted,
// canceled, and drained. Run under -race this is the locking proof; the
// assertions additionally pin two invariants every snapshot must hold:
// monotone counters and queue_depth within queue_capacity.
func TestMetricsConcurrent(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 2, QueueDepth: 8})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var prev Metrics
			for {
				select {
				case <-stop:
					return
				default:
				}
				met := m.Metrics()
				if met.QueueDepth < 0 || met.QueueDepth > met.QueueCapacity {
					t.Errorf("queue_depth %d outside [0, %d]", met.QueueDepth, met.QueueCapacity)
					return
				}
				if met.JobsSubmitted < prev.JobsSubmitted ||
					met.JobsCompleted < prev.JobsCompleted ||
					met.JobsFailed < prev.JobsFailed ||
					met.JobsCanceled < prev.JobsCanceled ||
					met.SimulationsRun < prev.SimulationsRun ||
					met.CacheHits < prev.CacheHits {
					t.Errorf("counters went backwards: %+v -> %+v", prev, met)
					return
				}
				prev = met
			}
		}()
	}

	var ids []string
	for i := uint64(0); i < 12; i++ {
		sts, err := m.Submit([]JobSpec{{Config: analysisCfg(500 + i)}})
		if err != nil { // queue full under slow CI is fine; keep hammering
			time.Sleep(time.Millisecond)
			continue
		}
		ids = append(ids, sts[0].ID)
		if i%3 == 2 {
			_, _ = m.Cancel(sts[0].ID)
		}
	}
	for _, id := range ids {
		deadline := time.Now().Add(120 * time.Second)
		for {
			st, err := m.Job(id)
			if err != nil || st.State.Terminal() {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s never finished", id)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	drainManager(t, m)
	close(stop)
	wg.Wait()

	met := m.Metrics()
	if met.JobsCompleted+met.JobsCanceled+met.JobsFailed != met.JobsSubmitted {
		t.Errorf("terminal jobs %d+%d+%d != submitted %d",
			met.JobsCompleted, met.JobsCanceled, met.JobsFailed, met.JobsSubmitted)
	}
	if met.QueueDepth != 0 || met.Running != 0 {
		t.Errorf("drained manager still shows depth=%d running=%d", met.QueueDepth, met.Running)
	}
}
