package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sweep"
)

// TestManagerDeadlineExpiresQueuedJob: a queued job whose propagated
// deadline passes before a worker frees up is failed fast with reason
// "deadline" — it never occupies a scheduler slot.
func TestManagerDeadlineExpiresQueuedJob(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 1, QueueDepth: 16})
	defer drainManager(t, m)

	blocker := submitOne(t, m, "blocker", blockerCfg())
	waitState(t, m, blocker, StateRunning)

	sts, err := m.Submit([]JobSpec{{
		Label:      "doomed",
		Config:     tinyCfg(50),
		DeadlineMs: time.Now().Add(80 * time.Millisecond).UnixMilli(),
	}})
	if err != nil {
		t.Fatal(err)
	}
	st := waitState(t, m, sts[0].ID, StateFailed)
	if st.Reason != ReasonDeadline {
		t.Errorf("Reason = %q, want %q", st.Reason, ReasonDeadline)
	}
	if !strings.Contains(st.Error, "deadline") {
		t.Errorf("error %q does not mention the deadline", st.Error)
	}
	if mt := m.Metrics(); mt.DeadlineExpired != 1 {
		t.Errorf("DeadlineExpired = %d, want 1", mt.DeadlineExpired)
	}

	// The expiry must not disturb the running flight.
	waitState(t, m, blocker, StateDone)
}

// TestManagerDeadlineShedsAtAdmission covers both admission-shed
// branches: a deadline already in the past, and a deadline the
// estimated queue drain (EWMA of fresh flight durations) cannot meet.
func TestManagerDeadlineShedsAtAdmission(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 1, QueueDepth: 16})
	defer drainManager(t, m)

	// Past deadline: shed even on an idle manager.
	_, err := m.Submit([]JobSpec{{
		Label:      "late",
		Config:     tinyCfg(60),
		DeadlineMs: time.Now().Add(-50 * time.Millisecond).UnixMilli(),
	}})
	var derr *DeadlineError
	if !errors.As(err, &derr) {
		t.Fatalf("past-deadline submit returned %v, want *DeadlineError", err)
	}

	// Seed the drain estimate with one real flight, occupy the worker,
	// and submit a deadline far shorter than the estimated drain.
	seed := submitOne(t, m, "seed", tinyCfg(61))
	waitState(t, m, seed, StateDone)
	blocker := submitOne(t, m, "blocker", blockerCfg())
	waitState(t, m, blocker, StateRunning)

	_, err = m.Submit([]JobSpec{{
		Label:      "unmeetable",
		Config:     tinyCfg(62),
		DeadlineMs: time.Now().Add(time.Millisecond).UnixMilli(),
	}})
	if !errors.As(err, &derr) {
		t.Fatalf("unmeetable submit returned %v, want *DeadlineError", err)
	}
	if mt := m.Metrics(); mt.DeadlineShed != 2 {
		t.Errorf("DeadlineShed = %d, want 2", mt.DeadlineShed)
	}
}

// TestSubmitDeadlineHeaderSheds: the HTTP layer parses the client's
// X-Ccsimd-Deadline-Ms header into the specs, and an unmeetable
// deadline is answered 503 with the machine-readable code so fleet
// dispatchers classify it as load, not as a dead daemon.
func TestSubmitDeadlineHeaderSheds(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 1, QueueDepth: 16})
	defer drainManager(t, m)
	ts := httptest.NewServer(New(m))
	defer ts.Close()

	submit := func(deadline time.Time) *http.Response {
		t.Helper()
		blob, err := json.Marshal(struct {
			Jobs []JobSpec `json:"jobs"`
		}{[]JobSpec{{Label: "x", Config: tinyCfg(70)}}})
		if err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(DeadlineHeader, strconv.FormatInt(deadline.UnixMilli(), 10))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp := submit(time.Now().Add(-time.Second))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("expired-deadline submit: status %d, want 503", resp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Code != ErrCodeDeadlineUnmeetable {
		t.Errorf("error code = %q, want %q", e.Code, ErrCodeDeadlineUnmeetable)
	}

	// A generous header deadline is accepted and the job completes.
	resp = submit(time.Now().Add(time.Minute))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("future-deadline submit: status %d, want 202", resp.StatusCode)
	}
	var sr SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	waitState(t, m, sr.Jobs[0].ID, StateDone)
}

// TestManagerHedgesStragglerPeer: with HedgeAfter set, a flight stuck
// on a straggling peer gets a local second attempt; the first result
// wins, the loser is cancelled, the peer keeps its slot, and
// SimulationsRun is never double-counted.
func TestManagerHedgesStragglerPeer(t *testing.T) {
	var calls atomic.Int64
	peer := &remoteFunc{name: "peer-slow", slots: 1, run: func(ctx context.Context, spec JobSpec) (JobStatus, error) {
		if calls.Add(1) == 1 {
			<-ctx.Done() // straggle until the winning hedge cancels us
			return JobStatus{}, ctx.Err()
		}
		results, err := sweep.Run(ctx, []sweep.Job{{Label: spec.Label, Config: spec.Config}}, sweep.Options{Workers: 1})
		if err != nil {
			return JobStatus{}, &RemoteJobError{Endpoint: "peer-slow", State: StateFailed, Message: err.Error()}
		}
		return JobStatus{State: StateDone, Result: &results[0]}, nil
	}}
	m := NewManager(ManagerConfig{
		Workers:    NoLocalWorkers,
		Remotes:    []Remote{peer},
		HedgeAfter: 40 * time.Millisecond,
	})
	defer drainManager(t, m)

	cfg := tinyCfg(80)
	a := submitOne(t, m, "straggler", cfg)
	st := waitState(t, m, a, StateDone)
	want, err := sweep.Run(context.Background(), []sweep.Job{{Config: cfg}}, sweep.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Result == nil || st.Result.CPUCycles != want[0].CPUCycles {
		t.Error("hedged result differs from a local run")
	}
	mt := m.Metrics()
	if mt.HedgesLaunched != 1 || mt.HedgesWon != 1 {
		t.Errorf("HedgesLaunched=%d HedgesWon=%d, want 1/1", mt.HedgesLaunched, mt.HedgesWon)
	}
	if mt.SimulationsRun != 1 || mt.RemoteSimulations != 0 {
		t.Errorf("local=%d remote=%d simulations after hedge, want 1/0 (no double count)",
			mt.SimulationsRun, mt.RemoteSimulations)
	}

	// The straggler was slow, not dead: its slot survived and serves the
	// next flight remotely.
	b := submitOne(t, m, "healthy", tinyCfg(81))
	waitState(t, m, b, StateDone)
	mt = m.Metrics()
	if mt.RemoteSimulations != 1 {
		t.Errorf("RemoteSimulations = %d after recovery, want 1 (the peer kept its slot)", mt.RemoteSimulations)
	}
	if mt.SimulationsRun != 1 {
		t.Errorf("SimulationsRun = %d, want still 1", mt.SimulationsRun)
	}
}

// TestManagerPoisonQuarantine: a flight whose execution kills three
// successive workers is failed with reason "quarantined" instead of
// cascading through the fleet, and resubmissions of the same config
// fail fast at admission.
func TestManagerPoisonQuarantine(t *testing.T) {
	mkDead := func(name string) *remoteFunc {
		return &remoteFunc{name: name, slots: 1, run: func(ctx context.Context, spec JobSpec) (JobStatus, error) {
			return JobStatus{}, errors.New("connection reset by " + name)
		}}
	}
	m := NewManager(ManagerConfig{
		Workers: NoLocalWorkers,
		Remotes: []Remote{mkDead("p1"), mkDead("p2"), mkDead("p3")},
	})
	defer drainManager(t, m)

	cfg := tinyCfg(90)
	id := submitOne(t, m, "poison", cfg)
	st := waitState(t, m, id, StateFailed)
	if st.Reason != ReasonQuarantined {
		t.Errorf("Reason = %q, want %q", st.Reason, ReasonQuarantined)
	}
	if !strings.Contains(st.Error, "quarantined") {
		t.Errorf("error %q does not mention quarantine", st.Error)
	}
	mt := m.Metrics()
	if mt.PoisonQuarantined != 1 {
		t.Errorf("PoisonQuarantined = %d, want 1", mt.PoisonQuarantined)
	}
	if mt.JobsRequeued != 2 {
		t.Errorf("JobsRequeued = %d, want 2 (two hand-backs before the third crash quarantined)", mt.JobsRequeued)
	}

	// Resubmitting the poison config fails fast instead of eating more
	// workers.
	_, err := m.Submit([]JobSpec{{Label: "again", Config: cfg}})
	if !errors.Is(err, ErrQuarantined) {
		t.Errorf("resubmit of quarantined config returned %v, want ErrQuarantined", err)
	}

	// The manager survived losing every peer: other jobs run locally.
	ok := submitOne(t, m, "survivor", tinyCfg(91))
	waitState(t, m, ok, StateDone)
	if mt := m.Metrics(); mt.SimulationsRun != 1 {
		t.Errorf("SimulationsRun = %d after peer loss, want 1", mt.SimulationsRun)
	}
}

// TestManagerStorageDegradedMode: when every durable-tier disk write
// fails (disk full, read-only filesystem), jobs keep completing, the
// daemon reports storage_degraded on /metrics and a warning (not a
// failure) on /readyz, and the first successful probe restores the
// complete state to disk.
func TestManagerStorageDegradedMode(t *testing.T) {
	dir := t.TempDir()
	cachePath := filepath.Join(dir, "results.json")
	cache, err := sweep.OpenCache(cachePath)
	if err != nil {
		t.Fatal(err)
	}
	// Directories squatting on the atomic-write temp paths make every
	// cache and journal write fail, like a dead disk would.
	for _, p := range []string{cachePath + ".tmp", cachePath + ".jobs.tmp"} {
		if err := os.Mkdir(p, 0o755); err != nil {
			t.Fatal(err)
		}
	}

	m := NewManager(ManagerConfig{
		Workers:              1,
		QueueDepth:           16,
		Cache:                cache,
		StorageProbeInterval: time.Millisecond,
	})
	defer drainManager(t, m)
	ts := httptest.NewServer(New(m))
	defer ts.Close()

	// The dead disk must not fail the job.
	id := submitOne(t, m, "a", tinyCfg(95))
	waitState(t, m, id, StateDone)

	// Journal writes land asynchronously after job completion: poll.
	var mt Metrics
	deadline := time.Now().Add(10 * time.Second)
	for {
		mt = m.Metrics()
		if mt.Storage != nil && mt.Storage.CacheDegraded && mt.Storage.JournalDegraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("storage never reported degraded: %+v", mt.Storage)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !mt.StorageDegraded {
		t.Error("StorageDegraded flag not set while both tiers are degraded")
	}
	if mt.Storage.CacheWriteErrors < 1 || mt.Storage.JournalWriteErrors < 1 {
		t.Errorf("write errors cache=%d journal=%d, want >= 1 each",
			mt.Storage.CacheWriteErrors, mt.Storage.JournalWriteErrors)
	}
	if mt.JobsFailed != 0 {
		t.Errorf("JobsFailed = %d while degraded, want 0", mt.JobsFailed)
	}

	// /readyz warns but stays ready: a memory-only daemon still serves.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz status %d while degraded, want 200", resp.StatusCode)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Storage != "degraded" {
		t.Errorf("/readyz storage = %q, want \"degraded\"", h.Storage)
	}

	// The disk comes back: the next write probes and restores the full
	// snapshot — nothing accumulated while degraded is lost.
	for _, p := range []string{cachePath + ".tmp", cachePath + ".jobs.tmp"} {
		if err := os.Remove(p); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(2 * time.Millisecond) // let the probe window lapse
	id2 := submitOne(t, m, "b", tinyCfg(96))
	waitState(t, m, id2, StateDone)

	deadline = time.Now().Add(10 * time.Second)
	for {
		mt = m.Metrics()
		if mt.Storage != nil && !mt.Storage.CacheDegraded && !mt.Storage.JournalDegraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("storage never recovered: %+v", mt.Storage)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if mt.StorageDegraded {
		t.Error("StorageDegraded flag still set after recovery")
	}
	if mt.Storage.CacheRestores < 1 || mt.Storage.JournalRestores < 1 {
		t.Errorf("restores cache=%d journal=%d, want >= 1 each",
			mt.Storage.CacheRestores, mt.Storage.JournalRestores)
	}

	// Both results — including the one completed while memory-only —
	// reached disk.
	reopened, err := sweep.OpenCache(cachePath)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Len() != 2 {
		t.Errorf("restored cache holds %d results, want 2 (degraded-era result included)", reopened.Len())
	}
}
