package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/sweep"
)

// testDaemon is one daemon instance under test: HTTP front end plus
// the manager behind it.
type testDaemon struct {
	ts *httptest.Server
	m  *Manager
}

func startDaemon(t *testing.T, cachePath string, workers, queue int) *testDaemon {
	t.Helper()
	var cache *sweep.Cache
	if cachePath != "" {
		var err error
		cache, err = sweep.OpenCache(cachePath)
		if err != nil {
			t.Fatal(err)
		}
	}
	m := NewManager(ManagerConfig{Workers: workers, QueueDepth: queue, Cache: cache})
	d := &testDaemon{ts: httptest.NewServer(New(m)), m: m}
	t.Cleanup(d.stop)
	return d
}

// stop mirrors the ccsimd shutdown order: drain, then close HTTP.
func (d *testDaemon) stop() {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	_ = d.m.Drain(ctx)
	d.ts.Close()
}

func (d *testDaemon) url(path string) string { return d.ts.URL + path }

// doJSON performs one request and decodes the JSON response into out.
func doJSON(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		blob, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(blob)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && len(blob) > 0 {
		if err := json.Unmarshal(blob, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, blob, err)
		}
	}
	return resp.StatusCode
}

func submitHTTP(t *testing.T, d *testDaemon, specs ...JobSpec) []JobStatus {
	t.Helper()
	var resp SubmitResponse
	code := doJSON(t, http.MethodPost, d.url("/v1/jobs"), SubmitRequest{Jobs: specs}, &resp)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	if len(resp.Jobs) != len(specs) {
		t.Fatalf("submitted %d specs, got %d jobs", len(specs), len(resp.Jobs))
	}
	return resp.Jobs
}

func pollDone(t *testing.T, d *testDaemon, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		var st JobStatus
		if code := doJSON(t, http.MethodGet, d.url("/v1/jobs/"+id), nil, &st); code != http.StatusOK {
			t.Fatalf("poll %s: HTTP %d", id, code)
		}
		if st.State.Terminal() {
			if st.State != StateDone {
				t.Fatalf("job %s finished %s: %s", id, st.State, st.Error)
			}
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return JobStatus{}
}

// localRun computes the reference result the daemon must reproduce.
func localRun(t *testing.T, cfg sim.Config) sim.Result {
	t.Helper()
	sys, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestHTTPSubmitPollResult is the basic lifecycle: submit one config,
// poll to completion, and check the returned result is bit-identical
// to a local run, reachable both via the job and via its
// content-address key.
func TestHTTPSubmitPollResult(t *testing.T) {
	d := startDaemon(t, filepath.Join(t.TempDir(), "results.json"), 2, 16)
	cfg := tinyCfg(21)

	jobs := submitHTTP(t, d, JobSpec{Label: "one", Config: cfg})
	st := pollDone(t, d, jobs[0].ID)
	if st.Result == nil {
		t.Fatal("done job has no result")
	}
	want := localRun(t, cfg)
	if !reflect.DeepEqual(*st.Result, want) {
		t.Error("daemon result differs from local simulation")
	}

	wantKey, err := sweep.Key(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Key != wantKey {
		t.Errorf("job key %q, want %q", st.Key, wantKey)
	}
	var byKey sim.Result
	if code := doJSON(t, http.MethodGet, d.url("/v1/results/"+st.Key), nil, &byKey); code != http.StatusOK {
		t.Fatalf("result by key: HTTP %d", code)
	}
	if !reflect.DeepEqual(byKey, want) {
		t.Error("content-addressed result differs from local simulation")
	}
	var idx ResultIndex
	if code := doJSON(t, http.MethodGet, d.url("/v1/results"), nil, &idx); code != http.StatusOK {
		t.Fatalf("result index: HTTP %d", code)
	}
	if len(idx.Keys) != 1 || idx.Keys[0] != st.Key {
		t.Errorf("result index = %v, want [%s]", idx.Keys, st.Key)
	}

	// Listings carry the job without the (large) result payload.
	var list SubmitResponse
	if code := doJSON(t, http.MethodGet, d.url("/v1/jobs"), nil, &list); code != http.StatusOK {
		t.Fatalf("list: HTTP %d", code)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != jobs[0].ID {
		t.Fatalf("listing = %+v, want the one submitted job", list.Jobs)
	}
	if list.Jobs[0].Result != nil {
		t.Error("listing includes result payloads")
	}

	// The ?ids= filter returns only the named jobs, silently omitting
	// unknown (or evicted) IDs.
	var filtered SubmitResponse
	if code := doJSON(t, http.MethodGet, d.url("/v1/jobs?ids="+jobs[0].ID+",job-zzzzzz"), nil, &filtered); code != http.StatusOK {
		t.Fatalf("filtered list: HTTP %d", code)
	}
	if len(filtered.Jobs) != 1 || filtered.Jobs[0].ID != jobs[0].ID {
		t.Fatalf("filtered listing = %+v, want only %s", filtered.Jobs, jobs[0].ID)
	}
}

// TestHTTPAcceptance is the PR's acceptance scenario: 8 concurrent
// submissions of an identical config run exactly one simulation and
// all callers receive bit-identical results; a restarted daemon then
// serves the same config from the persisted cache without
// re-simulating.
func TestHTTPAcceptance(t *testing.T) {
	cachePath := filepath.Join(t.TempDir(), "results.json")
	d1 := startDaemon(t, cachePath, 4, 32)
	cfg := tinyCfg(1234)

	const n = 8
	ids := make([]string, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			blob, err := json.Marshal(SubmitRequest{Jobs: []JobSpec{{Label: fmt.Sprintf("client-%d", i), Config: cfg}}})
			if err != nil {
				t.Error(err)
				return
			}
			resp, err := http.Post(d1.url("/v1/jobs"), "application/json", bytes.NewReader(blob))
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			var sr SubmitResponse
			if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil || resp.StatusCode != http.StatusAccepted {
				t.Errorf("client %d: HTTP %d (%v)", i, resp.StatusCode, err)
				return
			}
			ids[i] = sr.Jobs[0].ID
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	want := localRun(t, cfg)
	for i, id := range ids {
		st := pollDone(t, d1, id)
		if st.Result == nil {
			t.Fatalf("caller %d: no result", i)
		}
		if !reflect.DeepEqual(*st.Result, want) {
			t.Fatalf("caller %d received a non-identical result", i)
		}
	}

	var met Metrics
	doJSON(t, http.MethodGet, d1.url("/metrics"), nil, &met)
	if met.SimulationsRun != 1 {
		t.Errorf("simulations_run = %d, want exactly 1 for 8 identical submissions", met.SimulationsRun)
	}
	if met.JobsCompleted != n {
		t.Errorf("jobs_completed = %d, want %d", met.JobsCompleted, n)
	}
	if met.JobsDeduped+met.CacheHits != n-1 {
		t.Errorf("deduped(%d) + cache hits(%d) = %d, want %d", met.JobsDeduped, met.CacheHits, met.JobsDeduped+met.CacheHits, n-1)
	}

	// Restart: a fresh daemon over the same cache file must serve the
	// config instantly from disk, with zero new simulations.
	d1.stop()
	d2 := startDaemon(t, cachePath, 4, 32)
	jobs := submitHTTP(t, d2, JobSpec{Label: "after-restart", Config: cfg})
	st := jobs[0]
	if st.State != StateDone || !st.Cached {
		t.Fatalf("restart submission = state %s cached %v, want an immediate cached done", st.State, st.Cached)
	}
	if st.Result == nil || !reflect.DeepEqual(*st.Result, want) {
		t.Fatal("restarted daemon served a non-identical result")
	}
	var met2 Metrics
	doJSON(t, http.MethodGet, d2.url("/metrics"), nil, &met2)
	if met2.SimulationsRun != 0 {
		t.Errorf("restarted daemon ran %d simulations, want 0", met2.SimulationsRun)
	}
	if met2.CacheHits != 1 {
		t.Errorf("restarted daemon cache_hits = %d, want 1", met2.CacheHits)
	}
}

// sseEvent is one parsed Server-Sent Event frame.
type sseEvent struct {
	id    string
	event string
	data  string
}

// readSSE consumes the stream until the "done" event (or EOF),
// returning every frame.
func readSSE(t *testing.T, r io.Reader) []sseEvent {
	t.Helper()
	var (
		events []sseEvent
		cur    sseEvent
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.event != "" {
				events = append(events, cur)
				if cur.event == "done" {
					return events
				}
				cur = sseEvent{}
			}
		}
	}
	return events
}

// TestHTTPSSEStream watches a job that starts queued behind a blocker
// and demands the stream deliver its lifecycle in order — queued,
// running, done-with-result — followed by the done frame.
func TestHTTPSSEStream(t *testing.T) {
	d := startDaemon(t, "", 1, 16)
	blocker := submitHTTP(t, d, JobSpec{Label: "blocker", Config: blockerCfg()})[0]
	target := submitHTTP(t, d, JobSpec{Label: "target", Config: tinyCfg(5)})[0]

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, d.url("/v1/jobs/"+target.ID+"/events"), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}

	events := readSSE(t, resp.Body)
	if len(events) == 0 || events[len(events)-1].event != "done" {
		t.Fatalf("stream did not end with a done frame: %+v", events)
	}
	var states []JobState
	var final JobStatus
	for _, ev := range events[:len(events)-1] {
		if ev.event != "status" {
			t.Fatalf("unexpected event %q", ev.event)
		}
		var st JobStatus
		if err := json.Unmarshal([]byte(ev.data), &st); err != nil {
			t.Fatalf("bad status payload %q: %v", ev.data, err)
		}
		states = append(states, st.State)
		final = st
	}
	rank := map[JobState]int{StateQueued: 0, StateRunning: 1, StateDone: 2}
	terminalFrames := 0
	for i, s := range states {
		if i > 0 && rank[s] < rank[states[i-1]] {
			t.Fatalf("states went backwards: %v", states)
		}
		if s.Terminal() {
			terminalFrames++
		}
	}
	if states[0] != StateQueued {
		t.Errorf("first streamed state = %s, want queued (job was behind a blocker)", states[0])
	}
	if final.State != StateDone {
		t.Fatalf("final streamed state = %s, want done", final.State)
	}
	if final.Result == nil {
		t.Error("terminal SSE status carries no result")
	}
	if terminalFrames != 1 {
		t.Errorf("%d terminal status frames (%v), want exactly 1", terminalFrames, states)
	}
	pollDone(t, d, blocker.ID)
}

// TestHTTPSSETerminalJob streams a job that is already finished: the
// full lifecycle replays from the event history (ids 1, 2, 3, ...),
// ending in the terminal status with result, then done.
func TestHTTPSSETerminalJob(t *testing.T) {
	d := startDaemon(t, "", 2, 16)
	id := submitHTTP(t, d, JobSpec{Config: tinyCfg(77)})[0].ID
	pollDone(t, d, id)

	resp, err := http.Get(d.url("/v1/jobs/" + id + "/events"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events := readSSE(t, resp.Body)
	if len(events) < 2 || events[len(events)-1].event != "done" {
		t.Fatalf("terminal stream = %+v, want status history then done", events)
	}
	for i, ev := range events[:len(events)-1] {
		if ev.event != "status" || ev.id != fmt.Sprint(i+1) {
			t.Fatalf("frame %d = %s id %q, want status id %d", i, ev.event, ev.id, i+1)
		}
	}
	var st JobStatus
	if err := json.Unmarshal([]byte(events[len(events)-2].data), &st); err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Result == nil {
		t.Errorf("final replayed status = %s (result %v), want done with result", st.State, st.Result != nil)
	}

	// Resuming past the history replays nothing: just the done frame.
	req, _ := http.NewRequest(http.MethodGet, d.url("/v1/jobs/"+id+"/events"), nil)
	req.Header.Set("Last-Event-ID", events[len(events)-2].id)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	tail := readSSE(t, resp2.Body)
	if len(tail) != 1 || tail[0].event != "done" {
		t.Fatalf("resumed-past-end stream = %+v, want just done", tail)
	}
}

// TestHTTPCancel cancels a queued job over the API.
func TestHTTPCancel(t *testing.T) {
	d := startDaemon(t, "", 1, 16)
	blocker := submitHTTP(t, d, JobSpec{Label: "blocker", Config: blockerCfg()})[0]
	target := submitHTTP(t, d, JobSpec{Label: "target", Config: tinyCfg(9)})[0]

	var st JobStatus
	if code := doJSON(t, http.MethodDelete, d.url("/v1/jobs/"+target.ID), nil, &st); code != http.StatusOK {
		t.Fatalf("cancel: HTTP %d", code)
	}
	if st.State != StateCanceled {
		t.Fatalf("canceled job is %s", st.State)
	}
	if code := doJSON(t, http.MethodDelete, d.url("/v1/jobs/nope"), nil, nil); code != http.StatusNotFound {
		t.Fatalf("cancel unknown: HTTP %d, want 404", code)
	}
	pollDone(t, d, blocker.ID)
	met := d.m.Metrics()
	if met.SimulationsRun != 1 {
		t.Errorf("simulations_run = %d, want 1 (canceled job must not run)", met.SimulationsRun)
	}
}

// TestHTTPErrors covers the handler-level failure statuses.
func TestHTTPErrors(t *testing.T) {
	d := startDaemon(t, "", 1, 16)

	resp, err := http.Post(d.url("/v1/jobs"), "application/json", strings.NewReader("not json{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body: HTTP %d, want 400", resp.StatusCode)
	}

	var apiErr struct {
		Error string `json:"error"`
	}
	if code := doJSON(t, http.MethodPost, d.url("/v1/jobs"), map[string]any{}, &apiErr); code != http.StatusBadRequest {
		t.Errorf("empty submission: HTTP %d, want 400", code)
	}
	if apiErr.Error == "" {
		t.Error("error response carries no error message")
	}
	bad := tinyCfg(1)
	bad.Workloads = nil
	if code := doJSON(t, http.MethodPost, d.url("/v1/jobs"), SubmitRequest{Jobs: []JobSpec{{Config: bad}}}, nil); code != http.StatusBadRequest {
		t.Errorf("invalid config: HTTP %d, want 400", code)
	}
	if code := doJSON(t, http.MethodGet, d.url("/v1/jobs/job-000042"), nil, nil); code != http.StatusNotFound {
		t.Errorf("unknown job: HTTP %d, want 404", code)
	}
	if code := doJSON(t, http.MethodGet, d.url("/v1/results/deadbeef"), nil, nil); code != http.StatusNotFound {
		t.Errorf("unknown result on cacheless daemon: HTTP %d, want 404", code)
	}
}

// TestHTTPQueueFull maps ErrQueueFull to 429.
func TestHTTPQueueFull(t *testing.T) {
	d := startDaemon(t, "", 1, 1)
	blocker := submitHTTP(t, d, JobSpec{Config: blockerCfg()})[0]
	// Wait until the worker picked the blocker up so the queue is free.
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st JobStatus
		doJSON(t, http.MethodGet, d.url("/v1/jobs/"+blocker.ID), nil, &st)
		if st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("blocker never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	submitHTTP(t, d, JobSpec{Config: tinyCfg(50)}) // fills the queue
	if code := doJSON(t, http.MethodPost, d.url("/v1/jobs"), SubmitRequest{Jobs: []JobSpec{{Config: tinyCfg(51)}}}, nil); code != http.StatusTooManyRequests {
		t.Fatalf("overflow: HTTP %d, want 429", code)
	}
}

// TestHTTPHealthAndMetrics sanity-checks the operational endpoints.
func TestHTTPHealthAndMetrics(t *testing.T) {
	d := startDaemon(t, filepath.Join(t.TempDir(), "results.json"), 2, 16)
	var h Health
	if code := doJSON(t, http.MethodGet, d.url("/healthz"), nil, &h); code != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", code)
	}
	if h.Status != "ok" || h.Version == "" {
		t.Errorf("healthz = %+v", h)
	}
	id := submitHTTP(t, d, JobSpec{Config: tinyCfg(60)})[0].ID
	pollDone(t, d, id)
	var met Metrics
	if code := doJSON(t, http.MethodGet, d.url("/metrics"), nil, &met); code != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", code)
	}
	if met.JobsSubmitted != 1 || met.JobsCompleted != 1 || met.SimulationsRun != 1 {
		t.Errorf("metrics = %+v", met)
	}
	if met.QueueCapacity != 16 {
		t.Errorf("queue_capacity = %d, want 16", met.QueueCapacity)
	}
	if met.CacheEntries != 1 {
		t.Errorf("cache_entries = %d, want 1", met.CacheEntries)
	}

	var ready Health
	if code := doJSON(t, http.MethodGet, d.url("/readyz"), nil, &ready); code != http.StatusOK || ready.Status != "ok" {
		t.Errorf("readyz = HTTP %d %+v, want 200 ok", code, ready)
	}

	// While draining, readiness must fail (stop routing new clients)
	// but liveness must NOT (a liveness probe killing the daemon would
	// abort the very drain it is waiting for).
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := d.m.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if code := doJSON(t, http.MethodGet, d.url("/readyz"), nil, &ready); code != http.StatusServiceUnavailable || ready.Status != "draining" {
		t.Errorf("draining readyz = HTTP %d %+v, want 503 draining", code, ready)
	}
	if code := doJSON(t, http.MethodGet, d.url("/healthz"), nil, &h); code != http.StatusOK {
		t.Errorf("draining healthz: HTTP %d, want 200", code)
	}
	if h.Status != "draining" {
		t.Errorf("draining healthz status = %q", h.Status)
	}
}

// TestHTTPSingleSpecForm accepts the inlined single-job body shape.
func TestHTTPSingleSpecForm(t *testing.T) {
	d := startDaemon(t, "", 2, 16)
	body := map[string]any{"label": "inline", "config": tinyCfg(70)}
	var resp SubmitResponse
	if code := doJSON(t, http.MethodPost, d.url("/v1/jobs"), body, &resp); code != http.StatusAccepted {
		t.Fatalf("single-form submit: HTTP %d", code)
	}
	if len(resp.Jobs) != 1 || resp.Jobs[0].Label != "inline" {
		t.Fatalf("single-form response = %+v", resp.Jobs)
	}
	pollDone(t, d, resp.Jobs[0].ID)
}
