// Fault-injection harness for the multi-tenant gateway: a 3-tenant
// campaign over a 3-daemon fleet with a peer killed mid-flight, a
// rate-limited tenant, a stalled SSE consumer, wire-level chaos
// (dropped / stalled / half-written responses, 401/403/429 storms) and
// journal corruption — asserting byte-identical results, exactly-once
// simulation, and quota invariants throughout.
//
// External test package: it drives the daemon through internal/client
// (which imports internal/server), exactly like production traffic.
package server_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/client"
	"repro/internal/client/clienttest"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// fiTiny is a ~2ms simulation differentiated by seed.
func fiTiny(seed uint64) sim.Config {
	cfg := sim.DefaultConfig("lbm")
	cfg.WarmupInstructions = 10_000
	cfg.RunInstructions = 20_000
	cfg.Seed = seed
	return cfg
}

// fiMedium is a ~100ms simulation: long enough that a peer killed a few
// hundred ms into the campaign is overwhelmingly likely to be holding a
// flight, short enough to keep the campaign seconds-scale.
func fiMedium(seed uint64) sim.Config {
	cfg := fiTiny(seed)
	cfg.RunInstructions = 2_000_000
	return cfg
}

// fiAnalysis enables the per-epoch analysis stream on a tiny config.
func fiAnalysis(seed uint64) sim.Config {
	cfg := fiTiny(seed)
	cfg.Analysis = &analysis.Config{Enabled: true, EpochCycles: 10_000, MaxEpochs: 1024}
	return cfg
}

// fiDaemon is one daemon of the fleet under test.
type fiDaemon struct {
	ts *httptest.Server
	m  *server.Manager
}

func startFleetDaemon(t *testing.T, cfg server.ManagerConfig) *fiDaemon {
	t.Helper()
	m := server.NewManager(cfg)
	d := &fiDaemon{ts: httptest.NewServer(server.New(m)), m: m}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		_ = d.m.Drain(ctx)
		d.ts.Close()
	})
	return d
}

// fiClient returns a fast-polling authenticated client for d.
func fiClient(d *fiDaemon, token string) *client.Client {
	c := client.New(d.ts.URL)
	c.Token = token
	c.PollInterval = 5 * time.Millisecond
	return c
}

// fiBaseline computes the local sweep.Run reference result the fleet
// must reproduce byte-identically.
func fiBaseline(t *testing.T, cfg sim.Config) sim.Result {
	t.Helper()
	sys, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// dumpFaultArtifacts writes the daemon's job journal and a metrics
// snapshot under $CCSIMD_FAULT_ARTIFACTS when the test failed, so CI
// can upload the forensics from a red gateway-e2e run.
func dumpFaultArtifacts(t *testing.T, d *fiDaemon, journalPath string) {
	t.Helper()
	t.Cleanup(func() {
		dir := os.Getenv("CCSIMD_FAULT_ARTIFACTS")
		if !t.Failed() || dir == "" {
			return
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Logf("artifacts: %v", err)
			return
		}
		name := strings.ReplaceAll(t.Name(), "/", "_")
		blob, err := json.MarshalIndent(d.m.Metrics(), "", "  ")
		if err == nil {
			_ = os.WriteFile(filepath.Join(dir, name+"-metrics.json"), blob, 0o644)
		}
		if journalPath != "" {
			if jb, err := os.ReadFile(journalPath); err == nil {
				_ = os.WriteFile(filepath.Join(dir, name+"-journal.json"), jb, 0o644)
			}
		}
		t.Logf("fault artifacts written to %s", dir)
	})
}

// TestFleetFaultCampaign is the flagship end-to-end: three tenants
// (alice: weight 2; bob: rate-limited at 0.5 submissions/s; carol:
// max 2 queued jobs, priority 1) run overlapping campaigns against a
// front daemon fronting two peers — one peer requiring gateway auth,
// the other killed mid-flight — while one SSE consumer sits on a job's
// event stream without ever reading it. Every result must match a
// local sweep.Run byte-for-byte, every distinct config must simulate
// exactly once fleet-wide (as accounted by the front), and per-tenant
// quota invariants must hold at every metrics observation.
func TestFleetFaultCampaign(t *testing.T) {
	// Two peers: peer1 behind a gateway-tenant registry (the front must
	// authenticate and forward the original caller's tenant), peer2 in
	// open mode, doomed to die mid-campaign.
	peer1Reg, err := server.NewRegistry([]server.Tenant{
		{Name: "fleet", Token: "tok-fleet", Gateway: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	peer1 := startFleetDaemon(t, server.ManagerConfig{Workers: 1, QueueDepth: 16, Tenants: peer1Reg})
	peer2 := startFleetDaemon(t, server.ManagerConfig{Workers: 1, QueueDepth: 16})

	pr1 := client.NewPeer(peer1.ts.URL, 1)
	pr1.Token = "tok-fleet"
	pr2 := client.NewPeer(peer2.ts.URL, 1)

	frontReg, err := server.NewRegistry([]server.Tenant{
		{Name: "alice", Token: "tok-alice", Weight: 2},
		{Name: "bob", Token: "tok-bob", RatePerSec: 0.5, Burst: 1},
		{Name: "carol", Token: "tok-carol", MaxQueued: 2, Priority: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	cachePath := filepath.Join(t.TempDir(), "results.json")
	cache, err := sweep.OpenCache(cachePath)
	if err != nil {
		t.Fatal(err)
	}
	front := startFleetDaemon(t, server.ManagerConfig{
		Workers:    1,
		QueueDepth: 32,
		Cache:      cache,
		Tenants:    frontReg,
		HotResults: 4, // force hot-tier evictions during the campaign
		Remotes:    []server.Remote{pr1, pr2},
	})
	dumpFaultArtifacts(t, front, cachePath+".jobs")

	// Overlapping seed sets: alice 1-8, carol 5-10, bob 2-3. Ten
	// distinct configs fleet-wide; the overlaps exercise cross-tenant
	// dedup and cache hits.
	aliceSeeds := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	carolSeeds := []uint64{5, 6, 7, 8, 9, 10}
	bobSeeds := []uint64{2, 3}
	baseline := map[uint64]sim.Result{}
	for s := uint64(1); s <= 10; s++ {
		baseline[s] = fiBaseline(t, fiMedium(s))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 180*time.Second)
	defer cancel()
	alice := fiClient(front, "tok-alice")
	bob := fiClient(front, "tok-bob")
	carol := fiClient(front, "tok-carol")

	// Stalled SSE consumer: carol pre-submits her first job and parks a
	// never-read connection on its event stream for the whole campaign.
	// The daemon must not let one dead-slow subscriber block anything.
	pre, err := carol.Submit(ctx, []server.JobSpec{{Label: "stalled-sub", Config: fiMedium(carolSeeds[0])}})
	if err != nil {
		t.Fatal(err)
	}
	sseReq, err := http.NewRequestWithContext(ctx, http.MethodGet, front.ts.URL+"/v1/jobs/"+pre[0].ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	sseReq.Header.Set("Authorization", "Bearer tok-carol")
	sseResp, err := (&http.Client{}).Do(sseReq)
	if err != nil {
		t.Fatal(err)
	}
	defer sseResp.Body.Close()
	if sseResp.StatusCode != http.StatusOK {
		t.Fatalf("SSE subscribe: HTTP %d", sseResp.StatusCode)
	}

	// Quota watchdog: every observation of /metrics must satisfy the
	// tenant invariants — carol never has more than MaxQueued flights
	// waiting, no token bucket goes negative, counters are monotonic.
	watchStop := make(chan struct{})
	var watchWG sync.WaitGroup
	var violations []string
	var vmu sync.Mutex
	watchWG.Add(1)
	go func() {
		defer watchWG.Done()
		prev := map[string]server.TenantMetrics{}
		for {
			select {
			case <-watchStop:
				return
			default:
			}
			met := front.m.Metrics()
			vmu.Lock()
			for _, tm := range met.Tenants {
				if tm.Name == "carol" && tm.Queued > 2 {
					violations = append(violations, fmt.Sprintf("carol queued %d > max 2", tm.Queued))
				}
				if tm.RateTokens != nil && *tm.RateTokens < 0 {
					violations = append(violations, fmt.Sprintf("%s rate tokens %v < 0", tm.Name, *tm.RateTokens))
				}
				if p, ok := prev[tm.Name]; ok && (tm.Submitted < p.Submitted || tm.Completed < p.Completed) {
					violations = append(violations, fmt.Sprintf("%s counters regressed", tm.Name))
				}
				prev[tm.Name] = tm
			}
			vmu.Unlock()
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// Kill peer2 mid-campaign: sever its live connections, then close
	// the listener. In-flight work hands back to the front's queue.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		time.Sleep(250 * time.Millisecond)
		peer2.ts.CloseClientConnections()
		peer2.ts.Close()
	}()

	var wg sync.WaitGroup
	var aliceRes, carolRes []sim.Result
	var aliceErr, carolErr, bobErr error
	var bobRes []server.JobStatus
	wg.Add(3)
	go func() {
		defer wg.Done()
		jobs := make([]sweep.Job, len(aliceSeeds))
		for i, s := range aliceSeeds {
			jobs[i] = sweep.Job{Label: fmt.Sprintf("alice-%d", s), Config: fiMedium(s)}
		}
		aliceRes, aliceErr = alice.RunSweep(ctx, jobs, nil)
	}()
	go func() {
		defer wg.Done()
		jobs := make([]sweep.Job, len(carolSeeds))
		for i, s := range carolSeeds {
			jobs[i] = sweep.Job{Label: fmt.Sprintf("carol-%d", s), Config: fiMedium(s)}
		}
		carolRes, carolErr = carol.RunSweep(ctx, jobs, nil)
	}()
	go func() {
		defer wg.Done()
		// Two back-to-back submissions through a 1-token bucket at 0.5/s:
		// the second MUST bounce with 429 + Retry-After before RunJob
		// pushes both through by honoring the hint.
		if _, err := bob.Submit(ctx, []server.JobSpec{{Label: "bob-first", Config: fiMedium(bobSeeds[0])}}); err != nil {
			bobErr = fmt.Errorf("bob first submit: %w", err)
			return
		}
		_, err := bob.Submit(ctx, []server.JobSpec{{Label: "bob-burst", Config: fiMedium(bobSeeds[1])}})
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
			bobErr = fmt.Errorf("bob burst submit = %v, want HTTP 429", err)
			return
		}
		if apiErr.RetryAfter <= 0 {
			bobErr = fmt.Errorf("429 without a Retry-After hint: %v", apiErr)
			return
		}
		for _, s := range bobSeeds {
			st, err := bob.RunJob(ctx, server.JobSpec{Label: fmt.Sprintf("bob-%d", s), Config: fiMedium(s)})
			if err != nil {
				bobErr = fmt.Errorf("bob seed %d: %w", s, err)
				return
			}
			bobRes = append(bobRes, st)
		}
	}()
	wg.Wait()
	<-killed
	close(watchStop)
	watchWG.Wait()

	for name, err := range map[string]error{"alice": aliceErr, "carol": carolErr, "bob": bobErr} {
		if err != nil {
			t.Fatalf("%s campaign: %v", name, err)
		}
	}

	// Byte-identical results for every tenant, against local sweep.Run.
	for i, s := range aliceSeeds {
		if !reflect.DeepEqual(aliceRes[i], baseline[s]) {
			t.Errorf("alice seed %d: fleet result differs from local run", s)
		}
	}
	for i, s := range carolSeeds {
		if !reflect.DeepEqual(carolRes[i], baseline[s]) {
			t.Errorf("carol seed %d: fleet result differs from local run", s)
		}
	}
	for i, s := range bobSeeds {
		if bobRes[i].Result == nil || !reflect.DeepEqual(*bobRes[i].Result, baseline[s]) {
			t.Errorf("bob seed %d: fleet result differs from local run", s)
		}
	}
	// The stalled consumer's job finished too, unbothered.
	if st, err := carol.Job(ctx, pre[0].ID); err != nil || st.State != server.StateDone {
		t.Errorf("stalled-subscriber job: state %v, err %v", st.State, err)
	}

	vmu.Lock()
	for _, v := range violations {
		t.Errorf("quota invariant violated: %s", v)
	}
	vmu.Unlock()

	met := front.m.Metrics()
	// Exactly-once: ten distinct configs, ten simulations fleet-wide as
	// accounted by the front (local + remote), regardless of dedup,
	// cache hits, rate-limit retries, or the killed peer's handbacks.
	if got := met.SimulationsRun + met.RemoteSimulations; got != 10 {
		t.Errorf("fleet simulations = %d (local %d + remote %d), want exactly 10",
			got, met.SimulationsRun, met.RemoteSimulations)
	}
	byName := map[string]server.TenantMetrics{}
	for _, tm := range met.Tenants {
		byName[tm.Name] = tm
	}
	if byName["bob"].RateLimited == 0 {
		t.Error("bob was never rate-limited")
	}
	if c := byName["alice"].Completed; c != 8 {
		t.Errorf("alice completed %d jobs, want 8", c)
	}
	if c := byName["bob"].Completed; c != 3 { // bob-first + the two RunJobs
		t.Errorf("bob completed %d jobs, want 3", c)
	}
	if c := byName["carol"].Completed; c != 7 { // 6 sweep + the pre-submitted job
		t.Errorf("carol completed %d jobs, want 7", c)
	}
	if met.ResultStore == nil || met.ResultStore.HotCapacity != 4 {
		t.Errorf("result store metrics missing or wrong capacity: %+v", met.ResultStore)
	} else if met.ResultStore.Evictions == 0 {
		t.Error("10 results through a 4-entry hot tier evicted nothing")
	}

	// Tenant isolation on the wire: alice's listing contains only her
	// jobs; carol cannot fetch an alice job even by ID.
	aliceJobs, err := alice.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(aliceJobs) == 0 {
		t.Error("alice sees no jobs")
	}
	var anAliceJob string
	for _, st := range aliceJobs {
		if st.Tenant != "alice" {
			t.Errorf("alice's listing leaked a %q job", st.Tenant)
		}
		anAliceJob = st.ID
	}
	_, err = carol.Job(ctx, anAliceJob)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Errorf("cross-tenant job fetch = %v, want HTTP 404", err)
	}

	// The gateway peer attributed forwarded jobs to the original
	// tenants, not to its "fleet" service account.
	for _, st := range peer1.m.Jobs() {
		if st.Tenant == "fleet" || st.Tenant == "" {
			t.Errorf("peer1 job %s attributed to %q, want a forwarded tenant", st.ID, st.Tenant)
		}
	}
}

// TestGatewayAuthStorm covers the HTTP auth matrix against a registry
// daemon: 401 with a WWW-Authenticate challenge for missing/bad
// tokens, 403 for disabled tenants, 404 (not 403 — no existence leak)
// for cross-tenant access, and unauthenticated health/metrics.
func TestGatewayAuthStorm(t *testing.T) {
	reg, err := server.NewRegistry([]server.Tenant{
		{Name: "alice", Token: "tok-alice"},
		{Name: "eve", Token: "tok-eve"},
		{Name: "mallory", Token: "tok-mallory", Disabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := startFleetDaemon(t, server.ManagerConfig{Workers: 1, QueueDepth: 8, Tenants: reg})

	get := func(path, token string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, d.ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// A storm of bad credentials, all rejected without touching jobs.
	for i := 0; i < 20; i++ {
		if resp := get("/v1/jobs", ""); resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("tokenless: HTTP %d, want 401", resp.StatusCode)
		} else if resp.Header.Get("WWW-Authenticate") == "" {
			t.Fatal("401 without a WWW-Authenticate challenge")
		}
		if resp := get("/v1/jobs", fmt.Sprintf("guess-%d", i)); resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("bad token: HTTP %d, want 401", resp.StatusCode)
		}
		if resp := get("/v1/jobs", "tok-mallory"); resp.StatusCode != http.StatusForbidden {
			t.Fatalf("disabled tenant: HTTP %d, want 403", resp.StatusCode)
		}
	}
	// Health and metrics stay open: probes and scrapers carry no tokens.
	if resp := get("/healthz", ""); resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz: HTTP %d, want 200", resp.StatusCode)
	}
	if resp := get("/metrics", ""); resp.StatusCode != http.StatusOK {
		t.Errorf("/metrics: HTTP %d, want 200", resp.StatusCode)
	}

	// Alice's job is invisible to eve at every endpoint — always a 404,
	// never a 403 that would confirm the ID exists.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	alice := fiClient(d, "tok-alice")
	st, err := alice.RunJob(ctx, server.JobSpec{Label: "private", Config: fiTiny(1)})
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{
		"/v1/jobs/" + st.ID,
		"/v1/jobs/" + st.ID + "/events",
		"/v1/analysis/" + st.ID,
		"/v1/analysis/" + st.ID + "/stream",
	} {
		if resp := get(path, "tok-eve"); resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s as eve: HTTP %d, want 404", path, resp.StatusCode)
		}
	}
	req, _ := http.NewRequest(http.MethodDelete, d.ts.URL+"/v1/jobs/"+st.ID, nil)
	req.Header.Set("Authorization", "Bearer tok-eve")
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("DELETE as eve: HTTP %d, want 404", resp.StatusCode)
		}
	}
}

// TestChaosClientStorms drives the client through wire-level faults
// against a healthy open-mode daemon: transient 429 storms are
// retried, Retry-After hints are decoded and honored, auth failures
// fail fast, stalls are absorbed, and dropped connections surface as
// errors instead of hangs or corrupted results.
func TestChaosClientStorms(t *testing.T) {
	d := startFleetDaemon(t, server.ManagerConfig{Workers: 1, QueueDepth: 8})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	t.Run("429 storm retried", func(t *testing.T) {
		chaos := clienttest.NewChaosTransport(nil).Add(clienttest.Rule{
			Name:   "submit-429",
			Match:  func(r *http.Request) bool { return r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/v1/jobs") },
			Times:  3,
			Status: http.StatusTooManyRequests,
			Body:   `{"error":"synthetic storm"}`,
		}).Add(clienttest.Rule{
			Name:  "poll-stall",
			Match: func(r *http.Request) bool { return r.Method == http.MethodGet },
			Times: 2,
			Stall: 100 * time.Millisecond,
		})
		c := fiClient(d, "")
		c.SetTransport(chaos)
		st, err := c.RunJob(ctx, server.JobSpec{Label: "stormy", Config: fiTiny(11)})
		if err != nil {
			t.Fatalf("RunJob through 429 storm: %v", err)
		}
		if st.Result == nil || !reflect.DeepEqual(*st.Result, fiBaseline(t, fiTiny(11))) {
			t.Error("result corrupted by the storm")
		}
		inj := chaos.Injected()
		if inj["submit-429"] != 3 || inj["poll-stall"] == 0 {
			t.Errorf("injections = %v, want submit-429:3 and at least one poll-stall", inj)
		}
	})

	t.Run("retry-after decoded", func(t *testing.T) {
		chaos := clienttest.NewChaosTransport(nil).Add(clienttest.Rule{
			Name:   "hinted-429",
			Times:  1,
			Status: http.StatusTooManyRequests,
			Header: http.Header{"Retry-After": []string{"7"}},
			Body:   `{"error":"cool down"}`,
		})
		c := fiClient(d, "")
		c.SetTransport(chaos)
		_, err := c.Submit(ctx, []server.JobSpec{{Config: fiTiny(12)}})
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
			t.Fatalf("submit = %v, want APIError 429", err)
		}
		if apiErr.RetryAfter != 7*time.Second {
			t.Errorf("RetryAfter = %v, want 7s", apiErr.RetryAfter)
		}
	})

	t.Run("401 fails fast", func(t *testing.T) {
		chaos := clienttest.NewChaosTransport(nil).Add(clienttest.Rule{
			Name:   "deny",
			Status: http.StatusUnauthorized,
			Body:   `{"error":"who are you"}`,
		})
		c := fiClient(d, "")
		c.SetTransport(chaos)
		_, err := c.RunJob(ctx, server.JobSpec{Config: fiTiny(13)})
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) || apiErr.Status != http.StatusUnauthorized {
			t.Fatalf("RunJob = %v, want fail-fast APIError 401", err)
		}
		if n := chaos.Injected()["deny"]; n != 1 {
			t.Errorf("client retried a 401 (%d attempts); auth failures are not transient", n)
		}
	})

	t.Run("dropped connection surfaces", func(t *testing.T) {
		chaos := clienttest.NewChaosTransport(nil).Add(clienttest.Rule{
			Name: "drop",
			Drop: true,
		})
		c := fiClient(d, "")
		c.SetTransport(chaos)
		_, err := c.RunJob(ctx, server.JobSpec{Config: fiTiny(14)})
		if err == nil || !strings.Contains(err.Error(), "connection dropped") {
			t.Fatalf("RunJob over dead wire = %v, want transport error", err)
		}
	})
}

// TestSSETruncationHeals half-writes the analysis SSE stream — the
// connection dies mid-body, twice — and asserts the client's
// Last-Event-ID resume rebuilds the final report byte-identically to
// the daemon's canonical /v1/analysis/{id} document.
func TestSSETruncationHeals(t *testing.T) {
	d := startFleetDaemon(t, server.ManagerConfig{Workers: 1, QueueDepth: 8})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	c := fiClient(d, "")
	st, err := c.RunJob(ctx, server.JobSpec{Label: "truncated", Config: fiAnalysis(21)})
	if err != nil {
		t.Fatal(err)
	}

	chaos := clienttest.NewChaosTransport(nil).
		Add(clienttest.Rule{
			Name:  "drop-stream",
			Match: func(r *http.Request) bool { return strings.HasSuffix(r.URL.Path, "/stream") },
			Times: 1,
			Drop:  true,
		}).
		Add(clienttest.Rule{
			Name:         "truncate-stream",
			Match:        func(r *http.Request) bool { return strings.HasSuffix(r.URL.Path, "/stream") },
			Times:        2,
			TruncateBody: 2048,
		})
	c.SetTransport(chaos)

	acc := analysis.NewStreamAccumulator()
	var attempts int
	for {
		err := c.StreamAnalysis(ctx, st.ID, acc.Seq(), func(b analysis.StreamBatch) { acc.Apply(b) })
		if err == nil {
			break
		}
		if attempts++; attempts > 6 {
			t.Fatalf("stream never healed after %d attempts: %v", attempts, err)
		}
	}
	inj := chaos.Injected()
	if inj["drop-stream"] != 1 || inj["truncate-stream"] == 0 {
		t.Fatalf("faults not exercised: %v", inj)
	}

	rep, err := acc.Report()
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Analysis(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	canonical, err := json.Marshal(final)
	if err != nil {
		t.Fatal(err)
	}
	if string(streamed) != string(canonical) {
		t.Errorf("report rebuilt over a half-written stream differs from canonical:\nstream: %s\nfinal:  %s", streamed, canonical)
	}
}

// TestJournalCorruptionRecovery corrupts the on-disk job journal
// between daemon generations: the restarted daemon must quarantine the
// bytes to .corrupt, keep serving (including cache hits for results
// the journal no longer remembers), and journal new completions.
func TestJournalCorruptionRecovery(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	dir := t.TempDir()
	cachePath := filepath.Join(dir, "results.json")
	journalPath := cachePath + ".jobs"

	cache, err := sweep.OpenCache(cachePath)
	if err != nil {
		t.Fatal(err)
	}
	m1 := server.NewManager(server.ManagerConfig{Workers: 1, QueueDepth: 8, Cache: cache})
	ts1 := httptest.NewServer(server.New(m1))
	c1 := client.New(ts1.URL)
	c1.PollInterval = 5 * time.Millisecond
	st, err := c1.RunJob(ctx, server.JobSpec{Label: "gen1", Config: fiTiny(31)})
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	if _, err := os.Stat(journalPath); err != nil {
		t.Fatalf("no journal after a completed job: %v", err)
	}

	// Scribble over the journal; the next daemon must quarantine it.
	if err := os.WriteFile(journalPath, []byte(`{"version":1,"jobs":[{"id":"job-`), 0o644); err != nil {
		t.Fatal(err)
	}
	cache2, err := sweep.OpenCache(cachePath)
	if err != nil {
		t.Fatal(err)
	}
	d2 := startFleetDaemon(t, server.ManagerConfig{Workers: 1, QueueDepth: 8, Cache: cache2})
	if _, err := os.Stat(journalPath + ".corrupt"); err != nil {
		t.Fatalf("corrupted journal not quarantined: %v", err)
	}

	c2 := fiClient(d2, "")
	// The old job ID is gone with the journal: a clean 404, not a crash.
	_, err = c2.Job(ctx, st.ID)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("pre-corruption job lookup = %v, want 404", err)
	}
	// Its result survived in the content-addressed cache.
	res, err := c2.Result(ctx, st.Key)
	if err != nil {
		t.Fatalf("cached result lost to journal corruption: %v", err)
	}
	if !reflect.DeepEqual(res, *st.Result) {
		t.Error("cached result differs across the corruption")
	}
	// Resubmitting the same config is a cache hit, and the daemon
	// journals fresh completions again.
	st2, err := c2.RunJob(ctx, server.JobSpec{Label: "gen2", Config: fiTiny(31)})
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Cached {
		t.Error("identical config resimulated after journal corruption")
	}
	if _, err := os.Stat(journalPath); err != nil {
		t.Errorf("no fresh journal after recovery: %v", err)
	}
}
